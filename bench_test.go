package repro

// One benchmark per table, figure, and ablation of the paper, each wrapping
// the corresponding experiment driver (internal/experiments), plus
// micro-benchmarks of the load-bearing primitives. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks execute the full driver — workload generation,
// validation of the smallest instance against a reference implementation,
// and the timing sweep over all sizes and both platforms — so one iteration
// is one complete regeneration of that figure's data.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hetsim"
	"repro/internal/problems"
	"repro/internal/sched"
	"repro/internal/table"
	"repro/internal/trace"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Table I: classification of all 15 contributing sets.
func BenchmarkTable1Classify(b *testing.B) { benchExperiment(b, "table1") }

// Table II: transfer needs per pattern.
func BenchmarkTable2Transfer(b *testing.B) { benchExperiment(b, "table2") }

// Figure 7: t_switch sweep for LCS 4k x 4k at t_share = 0.
func BenchmarkFig7TSwitchSweep(b *testing.B) { benchExperiment(b, "fig7") }

// Figure 8: inverted-L vs horizontal case-1 on CPU and GPU.
func BenchmarkFig8ILvsH1(b *testing.B) { benchExperiment(b, "fig8") }

// Figure 9: horizontal case-1 CPU/GPU/Framework sweep on both platforms.
func BenchmarkFig9Horizontal(b *testing.B) { benchExperiment(b, "fig9") }

// Figure 10: Levenshtein CPU/GPU/Framework sweep on both platforms.
func BenchmarkFig10Levenshtein(b *testing.B) { benchExperiment(b, "fig10") }

// Figure 12: Floyd-Steinberg dithering sweep on both platforms.
func BenchmarkFig12Dither(b *testing.B) { benchExperiment(b, "fig12") }

// Figure 13: checkerboard sweep on both platforms.
func BenchmarkFig13Checkerboard(b *testing.B) { benchExperiment(b, "fig13") }

// Ablation A1: pipelined vs synchronous one-way transfers.
func BenchmarkAblationPipeline(b *testing.B) { benchExperiment(b, "ablation-pipeline") }

// Ablation A2: pinned vs pageable two-way transfers.
func BenchmarkAblationPinned(b *testing.B) { benchExperiment(b, "ablation-pinned") }

// Ablation A3: coalesced vs row-major GPU layout.
func BenchmarkAblationCoalescing(b *testing.B) { benchExperiment(b, "ablation-coalesce") }

// Ablation A4: CPU chunking vs thread-per-cell.
func BenchmarkAblationChunking(b *testing.B) { benchExperiment(b, "ablation-chunking") }

// Ablation A5: autotuned vs heuristic parameters.
func BenchmarkAblationTuning(b *testing.B) { benchExperiment(b, "ablation-tuning") }

// ---- Micro-benchmarks of the primitives ----

// Real (not simulated) sequential DP throughput on Levenshtein.
func BenchmarkSolveSequentialLevenshtein1k(b *testing.B) {
	a, s := workload.SimilarStrings(1, 1023, workload.ASCIIAlphabet, 0.2)
	p := problems.Levenshtein(a, s)
	cells := float64(p.Rows * p.Cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// Real goroutine wavefront solver on the same workload.
func BenchmarkSolveParallelLevenshtein1k(b *testing.B) {
	a, s := workload.SimilarStrings(1, 1023, workload.ASCIIAlphabet, 0.2)
	p := problems.Levenshtein(a, s)
	cells := float64(p.Rows * p.Cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveParallel(p, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// Full heterogeneous solve (real values + simulated timeline) on dithering.
func BenchmarkSolveHeteroDither512(b *testing.B) {
	img := workload.GrayImage(3, 512, 512)
	p := problems.Dither(img)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveHetero(p, core.Options{TSwitch: -1, TShare: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// Timing-model-only heterogeneous solve: the cost of the simulator alone.
func BenchmarkSolveHeteroTimingOnlyLevenshtein4k(b *testing.B) {
	p := experiments.Fig10Problem(1, 4096)
	opts := core.Options{TSwitch: -1, TShare: -1, SkipCompute: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveHetero(p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Simulator op submission throughput.
func BenchmarkSimSubmit(b *testing.B) {
	s := hetsim.NewSim(hetsim.HeteroHigh())
	op := hetsim.Op{Resource: hetsim.ResGPU, Duration: 1000, Label: "k"}
	b.ResetTimer()
	prev := hetsim.NoOp
	for i := 0; i < b.N; i++ {
		prev = s.Submit(op, prev)
	}
}

// Layout index maps, the hot path of every cell access.
func BenchmarkLayoutIndex(b *testing.B) {
	layouts := []struct {
		name string
		l    table.Layout
	}{
		{"RowMajor", table.RowMajor{}},
		{"AntiDiagMajor", table.AntiDiagMajor{}},
		{"LMajor", table.LMajor{}},
		{"KnightMajor", table.NewKnightMajor(1024, 1024)},
	}
	for _, lt := range layouts {
		b.Run(lt.name, func(b *testing.B) {
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += lt.l.Index(1024, 1024, i%1024, (i*7)%1024)
			}
			if sink == -1 {
				b.Fatal("impossible")
			}
		})
	}
}

// The autotuner end to end on a mid-size anti-diagonal problem.
func BenchmarkTuneLevenshtein2k(b *testing.B) {
	p := experiments.Fig10Problem(1, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Tune(p, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension: K20 vs Xeon Phi (the paper's future-work question).
func BenchmarkExtPhi(b *testing.B) { benchExperiment(b, "ext-phi") }

// The tiled cache-efficient multicore baseline across tile sizes, solving
// for real (not simulated): the ablation for the CMP-style CPU algorithms
// the paper cites as related work.
func BenchmarkSolveTiledLevenshtein1k(b *testing.B) {
	a, s := workload.SimilarStrings(1, 1023, workload.ASCIIAlphabet, 0.2)
	p := problems.Levenshtein(a, s)
	for _, tile := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("tile%d", tile), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveTiled(p, tile, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Affine-gap (Gotoh) alignment: the multi-state cell type end to end.
func BenchmarkAffineAlign512(b *testing.B) {
	a, s := workload.SimilarStrings(5, 511, workload.DNAAlphabet, 0.2)
	p := problems.AffineAlign(a, s, problems.DefaultAffineScores())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// Traceback cost on a solved table.
func BenchmarkLevenshteinScript4k(b *testing.B) {
	a, s := workload.SimilarStrings(9, 4095, workload.ASCIIAlphabet, 0.2)
	g, err := core.Solve(problems.Levenshtein(a, s))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops := problems.LevenshteinScript(g, a, s)
		if len(ops) == 0 {
			b.Fatal("empty script")
		}
	}
}

// Extension: multi-accelerator horizontal execution.
func BenchmarkExtMulti(b *testing.B) { benchExperiment(b, "ext-multi") }

// Extension: 3-D LDDP over anti-diagonal planes.
func BenchmarkExt3D(b *testing.B) { benchExperiment(b, "ext-3d") }

// Extension: calibration sensitivity sweep.
func BenchmarkExtSensitivity(b *testing.B) { benchExperiment(b, "ext-sensitivity") }

// Extension: power-law scaling fits.
func BenchmarkExtScaling(b *testing.B) { benchExperiment(b, "ext-scaling") }

// Extension: energy accounting.
func BenchmarkExtEnergy(b *testing.B) { benchExperiment(b, "ext-energy") }

// Ablation A6: GPU threading strategies.
func BenchmarkAblationGPUChunking(b *testing.B) { benchExperiment(b, "ablation-gpu-chunking") }

// Extension: modern-hardware what-if.
func BenchmarkExtModern(b *testing.B) { benchExperiment(b, "ext-modern") }

// Extension: critical-path attribution.
func BenchmarkExtBottleneck(b *testing.B) { benchExperiment(b, "ext-bottleneck") }

// Native pool runtime family (-bench=NativePool): the persistent
// worker-pool wavefront executor against the seed spawn-per-front
// baseline. Run with -benchmem: the Sim alloc counts are part of the
// recorded evidence (BENCH_native.json).

// Seed baseline: fresh goroutines + WaitGroup barrier per front.
func BenchmarkNativePoolSpawnLevenshtein4k(b *testing.B) {
	p := experiments.Fig10Problem(1, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveParallelSpawn(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Pool runtime at the default configuration on the same workload.
func BenchmarkNativePoolLevenshtein4k(b *testing.B) {
	p := experiments.Fig10Problem(1, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveParallel(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Horizontal pattern: global epoch barrier vs row-band lookahead handoff.
func BenchmarkNativePoolCheckerboard2k(b *testing.B) {
	p := experiments.Fig13Problem(1, 2048)
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"barrier", core.Options{NativeNoLookahead: true}},
		{"lookahead", core.Options{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveParallelOpt(p, mode.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Simulated hetero path at 4k: the lazy-label fix means the per-op
// fmt.Sprintf and dep-slice allocations are gone; allocs/op here is the
// headline number for that satellite.
func BenchmarkNativePoolSimPath4k(b *testing.B) {
	p := experiments.Fig10Problem(1, 4096)
	opts := core.Options{TSwitch: -1, TShare: -1, SkipCompute: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveHetero(p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Tracing overhead: the same pool workload untraced (the one-nil-check
// fast path the ±2% acceptance bound guards) vs recording into the
// per-worker rings. Compare the off case against
// BenchmarkNativePoolLevenshtein4k for the disabled-tracer cost.
func BenchmarkNativePoolTraceLevenshtein4k(b *testing.B) {
	p := experiments.Fig10Problem(1, 4096)
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveParallelOpt(p, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := trace.NewRecorder(0)
			if _, err := core.SolveParallelOpt(p, core.Options{Tracer: rec}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Shared-scheduler multi-solve throughput: one batch iteration is 16
// concurrent 1024x1024 anti-diagonal solves submitted to one shared
// scheduler, versus the same 16 solves as back-to-back per-solve pool
// runs (what a service without the scheduler would do). Run both at the
// same GOMAXPROCS (use -cpu) to compare aggregate throughput; the
// recorded numbers live in EXPERIMENTS.md. Worker counts and chunks are
// pinned equal on both sides so the comparison isolates the scheduling
// structure, not the configuration.
func BenchmarkSchedulerBatch16x1024(b *testing.B) {
	const (
		batch = 16
		size  = 1024
		chunk = 256
	)
	workers := runtime.GOMAXPROCS(0)
	problem := func(k int) *core.Problem[int64] {
		return &core.Problem[int64]{
			Name: fmt.Sprintf("batch-%d", k),
			Rows: size, Cols: size, Deps: core.DepW | core.DepN,
			F: func(i, j int, nb core.Neighbors[int64]) int64 {
				return (nb.W*2 + nb.N + int64(i*31+j*17)) % 1_000_003
			},
			Boundary:     func(i, j int) int64 { return int64(i + 2*j) },
			BytesPerCell: 8,
		}
	}
	b.Run("scheduler", func(b *testing.B) {
		s, err := sched.New(sched.Config{Workers: workers, Chunk: chunk})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.SetBytes(int64(batch) * size * size * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make([]error, batch)
			for k := 0; k < batch; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					_, errs[k] = sched.Solve(context.Background(), s, problem(k), sched.SubmitOptions{})
				}(k)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		opts := core.Options{NativeWorkers: workers, NativeChunk: chunk}
		b.SetBytes(int64(batch) * size * size * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < batch; k++ {
				if _, err := core.SolveParallelOpt(problem(k), opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
