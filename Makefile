# Convenience targets for the LDDP framework reproduction.

GO ?= go

.PHONY: all build test vet bench experiments figures quick cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark pass: one testing.B benchmark per paper table/figure plus
# the ablations, extensions and micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table of the evaluation into results/.
experiments:
	$(GO) run ./cmd/lddpbench -exp all -out results

# Regenerate the measured figures as SVG charts into results/figures/.
figures:
	$(GO) run ./cmd/lddpbench -svg results/figures

# Fast smoke pass.
quick:
	$(GO) test ./...
	$(GO) run ./cmd/lddpbench -exp all -quick > /dev/null

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
