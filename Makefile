# Convenience targets for the LDDP framework reproduction.

GO ?= go

.PHONY: all build test vet check race bench bench-server bench-wire bench-all experiments figures quick cover trace sched-smoke async-smoke serve-smoke fleet-smoke sim-smoke soak soak-server soak-sim conformance e2e clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The per-PR gate: build, vet (the concurrency code leans on it), tests.
check: build vet test

# Race-detector pass over the whole module; the pool runtime tests in
# internal/core are written to stress the barrier and band handoff paths.
race:
	$(GO) test -race ./...

# Native pool runtime benchmarks vs the spawn baseline, archived as
# BENCH_native.json (real wall-clock numbers — machine-dependent).
bench:
	$(GO) test -run '^$$' -bench=NativePool -benchmem -cpu 4 -benchtime 3x . | tee bench_output.txt
	$(GO) run ./cmd/benchjson < bench_output.txt > BENCH_native.json

# Full benchmark pass: one testing.B benchmark per paper table/figure plus
# the ablations, extensions and micro-benchmarks.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table of the evaluation into results/.
experiments:
	$(GO) run ./cmd/lddpbench -exp all -out results

# Regenerate the measured figures as SVG charts into results/figures/.
figures:
	$(GO) run ./cmd/lddpbench -svg results/figures

# Fast smoke pass.
quick:
	$(GO) test ./...
	$(GO) run ./cmd/lddpbench -exp all -quick > /dev/null

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Record a runtime trace of the pool on the 2048x2048 anti-diagonal
# case study and print its analysis. trace.json loads in ui.perfetto.dev.
trace:
	$(GO) run ./cmd/lddprun -problem levenshtein -size 2048 -solver parallel -workers 4 -traceout trace.json
	$(GO) run ./cmd/lddptrace trace.json

# Scheduler smoke: drive 16 concurrent solves through the shared
# scheduler via the load driver (exit 1 on any unexpected outcome), then
# a mixed batch with deadlines exercising cancellation and rejection.
sched-smoke:
	$(GO) run ./cmd/lddpserve -mode compare -solves 16 -size 512
	$(GO) run ./cmd/lddpserve -mix -solves 32 -size 400 -timeout 50ms

# Async-executor smoke: the dependency-counter engine's conformance,
# metamorphic and unit batteries under the race detector, then the
# stall proof — trace the same seeded 2048x2048 solve through the
# epoch-barrier pool and the barrier-free async executor and require
# the async trace's total barrier stall to be strictly below the
# pool's (it is structurally zero: async emits no barrier spans).
async-smoke:
	$(GO) test -race -count=1 -run 'Async' ./internal/core/ ./lddp/
	$(GO) run ./cmd/lddprun -problem levenshtein -size 2048 -solver parallel -workers 4 -seed 7 -traceout pool_trace.json
	$(GO) run ./cmd/lddprun -problem levenshtein -size 2048 -solver async -workers 4 -seed 7 -traceout async_trace.json
	$(GO) run ./cmd/lddptrace -barrier-under pool_trace.json async_trace.json

# Network service smoke: boot lddpd on an ephemeral local port, fire a
# remote batch through cmd/lddpserve -url (the client's retry/backoff
# absorbs the startup window), fetch /metrics into serve_metrics.json,
# then shut the server down via SIGTERM and let it drain.
serve-smoke:
	$(GO) build -o lddpd.bin ./cmd/lddpd
	./lddpd.bin -addr 127.0.0.1:18080 -workers 4 & \
	  pid=$$!; \
	  $(GO) run ./cmd/lddpserve -url http://127.0.0.1:18080 -solves 16 -size 256 -metrics serve_metrics.json; \
	  rc=$$?; \
	  kill -TERM $$pid; wait $$pid; \
	  rm -f lddpd.bin; \
	  exit $$rc

# Fleet smoke, three layers. First the in-process recovery and trace
# stitching proofs under the race detector: three lddpd node stacks, one
# killed mid-solve, the coordinator relocates its blocks and the
# assembled digest still matches the sequential oracle. Then the
# real-process run: three lddpd binaries on local ports with per-node
# -tracedir, the driver band-sharding a batch across them over the
# binary halo protocol (every fleet digest cross-checked against a
# single-node solve) while stitching one multi-node timeline per solve;
# every node's /v1/metrics?format=prometheus scrape must pass the strict
# exposition checker. Finally the observability gate: lddptrace over a
# stitched timeline must report per-node lanes, halo spans, and a fleet
# critical path.
fleet-smoke:
	$(GO) test -race -run 'TestFleetKillNodeMidSolve|TestFleetSpreadsWork|TestFleetTraceStitching' -count=1 ./internal/fleet/
	$(GO) build -o lddpd.bin ./cmd/lddpd
	$(GO) build -o lddppromlint.bin ./cmd/lddppromlint
	$(GO) build -o lddptrace.bin ./cmd/lddptrace
	rm -rf fleet-traces && mkdir -p fleet-traces/n1 fleet-traces/n2 fleet-traces/n3
	./lddpd.bin -addr 127.0.0.1:18081 -workers 2 -tracedir fleet-traces/n1 & p1=$$!; \
	  ./lddpd.bin -addr 127.0.0.1:18082 -workers 2 -tracedir fleet-traces/n2 & p2=$$!; \
	  ./lddpd.bin -addr 127.0.0.1:18083 -workers 2 -tracedir fleet-traces/n3 & p3=$$!; \
	  $(GO) run ./cmd/lddpserve -fleet http://127.0.0.1:18081,http://127.0.0.1:18082,http://127.0.0.1:18083 -solves 4 -size 256 -tracedir fleet-traces; \
	  rc=$$?; \
	  for port in 18081 18082 18083; do \
	    ./lddppromlint.bin -url "http://127.0.0.1:$$port/v1/metrics?format=prometheus" || rc=1; \
	  done; \
	  kill -TERM $$p1 $$p2 $$p3; wait $$p1 $$p2 $$p3; \
	  rm -f lddpd.bin; \
	  exit $$rc
	f=$$(ls fleet-traces/fleet-*.json | head -1); \
	  ./lddptrace.bin $$f | tee fleet_trace_summary.txt
	grep -q '^node ' fleet_trace_summary.txt
	grep -q 'halo' fleet_trace_summary.txt
	grep -q 'fleet critical path' fleet_trace_summary.txt
	rm -f lddppromlint.bin lddptrace.bin

# Scenario-engine smoke: the seeded, replayable fleet simulations under
# the race detector — baseline, admission saturation, kill+drain, and
# the replay-determinism proof — then the everything scenario plus one
# live lddpsim run with kills and drains, all through cmd/lddpsim's
# record/replay round trip. A failing scenario prints its seed and op
# log; `lddpsim -replay <oplog>` reproduces the exact schedule.
sim-smoke:
	$(GO) test -race -count=1 -run 'TestScenario|TestReplay|TestRun' ./internal/sim/ ./cmd/lddpsim/
	$(GO) run ./cmd/lddpsim -seed 9 -nodes 3 -ops 50 -kills 1 -drains 1 -record sim_oplog.json
	$(GO) run ./cmd/lddpsim -replay sim_oplog.json
	rm -f sim_oplog.json

# Server-mode throughput: the full network stack (codec + HTTP + handler +
# scheduler) vs direct facade submission, archived as BENCH_server.json.
bench-server:
	$(GO) test -run '^$$' -bench=ServerSolve -benchmem -cpu 4 -benchtime 3x ./internal/server/ | tee bench_server_output.txt
	$(GO) run ./cmd/benchjson -desc "Server-mode reference run: wire vs direct batch throughput. Regenerate with \`make bench-server\`." < bench_server_output.txt > BENCH_server.json

# Wire-codec benchmark gate: the json/binary/cached server variants plus
# the frame codec micro-benchmark, archived as BENCH_server.json with the
# allocation budgets asserted (exit 1 on regression). Budgets: the cold
# binary batch (8 HTTP round trips; ~180 allocs each, nearly all
# net/http) and the pure frame codec (pooled; single digits).
# 30 iterations, not 3: the first op pays the cold sync.Pool fills, so
# short runs over-report allocs/op by hundreds and flake the gate.
bench-wire:
	$(GO) test -run '^$$' -bench=ServerSolve -benchmem -cpu 4 -benchtime 30x ./internal/server/ | tee bench_server_output.txt
	$(GO) test -run '^$$' -bench=EncodeDecode -benchmem -benchtime 100x ./internal/wire/ | tee -a bench_server_output.txt
	$(GO) run ./cmd/benchjson \
	  -desc "Server-mode reference run: wire (json/binary/cached) vs direct batch throughput, plus the frame codec. Regenerate with \`make bench-wire\`." \
	  -assert 'wire-binary<=1600' -assert 'EncodeDecode512x512<=64' -assert 'HaloEncodeDecode2048<=16' \
	  < bench_server_output.txt > BENCH_server.json

# Wire-boundary differential suite: all 15 masks x adversarial shapes
# through lddpd's handler stack and the public client, exact equality
# against the sequential oracle, under the race detector.
e2e:
	$(GO) test -race -run 'E2EDifferential|DrainSoak|FuzzSolveRequest' -timeout 10m ./internal/server/

# Extended randomized scheduler soak under the race detector (the short
# soak runs in the normal test pass; this is the long opt-in variant).
soak:
	$(GO) test -race -tags soak -run SchedulerSoakLong -timeout 20m ./internal/sched/

# Extended server drain soak: randomized remote batches with client-side
# cancels and mid-batch drains, leak-checked, under the race detector.
soak-server:
	$(GO) test -race -tags soak -run ServerDrainSoakLong -timeout 20m ./internal/server/

# Extended scenario sweep: twelve seeds across four cluster shapes with
# the full fault mix (kills, drains, saturation bursts, wire faults),
# each run leak-checked under the race detector.
soak-sim:
	$(GO) test -race -tags soak -run TestScenarioSweepSoak -timeout 30m ./internal/sim/

# Cross-executor differential conformance suite: all 15 masks x every
# public executor path x adversarial shapes, under the race detector.
conformance:
	$(GO) test -race -run 'Conformance|Metamorphic' -timeout 10m ./internal/core/ ./internal/sched/

clean:
	rm -f cover.out test_output.txt bench_output.txt bench_server_output.txt trace.json pool_trace.json async_trace.json serve_metrics.json lddpd.bin lddppromlint.bin lddptrace.bin fleet_trace_summary.txt sim_oplog.json
	rm -rf fleet-traces
