// Package repro is a Go reproduction of "A Novel Heterogeneous Framework
// for Local Dependency Dynamic Programming Problems" (Kumar & Kothapalli,
// 2015): a framework that classifies LDDP-Plus problems by their
// contributing cells and executes them across a CPU+GPU platform with
// pattern-specific work division, transfer pipelining, and memory-layout
// coalescing.
//
// The library lives under internal/: core (the framework), hetsim (the
// simulated heterogeneous platform substituting for the paper's CUDA
// testbeds), table, problems, workload, trace, and experiments. The
// cmd/ tools and examples/ programs are the user-facing entry points, and
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation as Go benchmarks.
package repro
