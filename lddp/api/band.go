package api

import (
	"fmt"

	"repro/lddp"
)

// AlignMask is the fixed contributing set of the "align" workload kind.
const AlignMask = lddp.DepW | lddp.DepNW | lddp.DepN

// DefaultMask is the contributing set a request selects by leaving Mask
// empty (all kinds except "align", whose recurrence fixes AlignMask).
const DefaultMask = lddp.DepW | lddp.DepN

// ResolveMask resolves a request's contributing set from its workload
// kind and mask string, applying the service's defaulting rules: the
// "align" kind runs the fixed AlignMask recurrence (a conflicting mask
// is an error), every other kind defaults to DefaultMask. It is the one
// source of truth both the server's problem builder and the fleet
// coordinator's band planner derive the mask from.
func ResolveMask(kind, mask string) (lddp.DepMask, error) {
	if kind == KindAlign {
		if mask == "" {
			return AlignMask, nil
		}
		m, err := lddp.ParseDepMask(mask)
		if err != nil {
			return 0, err
		}
		if m != AlignMask {
			return 0, fmt.Errorf("the align workload runs the fixed %s recurrence; omit mask or pass %q", AlignMask, AlignMask.String())
		}
		return AlignMask, nil
	}
	if mask == "" {
		return DefaultMask, nil
	}
	return lddp.ParseDepMask(mask)
}

// BandRequest is the body of POST /v1/band/solve: one rectangular block
// of a larger DP table, solved in isolation given the halo values along
// its exposed edges. The workload is the same declarative spec as a
// full solve — the node rebuilds the full-table recurrence from
// (kind, seed, full shape) and evaluates only rows [Row0, Row1) x cols
// [Col0, Col1), reading across-block neighbours from the halos. In the
// binary frame encoding the halos travel as tagged halo sections
// (wire.SectionNorth/West/East) instead of JSON arrays.
type BandRequest struct {
	// Rows and Cols are the FULL table dimensions the workload generator
	// is defined over; the block below is a sub-rectangle of it.
	Rows int `json:"rows"`
	Cols int `json:"cols"`

	// Row0/Row1 and Col0/Col1 bound the block: rows [Row0, Row1) x cols
	// [Col0, Col1), half-open, inside the full table.
	Row0 int `json:"row0"`
	Row1 int `json:"row1"`
	Col0 int `json:"col0"`
	Col1 int `json:"col1"`

	// Mask, Strategy, Workload, Chunk and DeadlineMS have SolveRequest
	// semantics. Inline workload cells are not valid in band requests —
	// band workloads must be regenerable from the seed on any node.
	Mask       string       `json:"mask,omitempty"`
	Strategy   string       `json:"strategy,omitempty"`
	Workload   WorkloadSpec `json:"workload"`
	Chunk      int          `json:"chunk,omitempty"`
	DeadlineMS int64        `json:"deadline_ms,omitempty"`

	// Trace identifies the originating fleet solve for cross-node trace
	// stitching; absent on standalone band requests. In the binary frame
	// encoding it rides the JSON frame header like every other field, so
	// propagating it costs no wire-format change.
	Trace *TraceContext `json:"trace,omitempty"`

	// HaloNorth carries full-table row Row0-1 over global columns
	// [NorthLo, NorthLo+len), exactly the span HaloSpec requires for the
	// mask. Present only when the mask reads the row above (NW/N/NE) and
	// Row0 > 0.
	HaloNorth []int64 `json:"halo_north,omitempty"`
	// NorthLo is the global column of HaloNorth[0].
	NorthLo int `json:"north_lo,omitempty"`
	// HaloWest carries full-table column Col0-1 over rows [Row0, Row1).
	// Present only when the mask reads leftward (W/NW) and Col0 > 0.
	HaloWest []int64 `json:"halo_west,omitempty"`
	// HaloEast carries full-table column Col1 over rows [Row0, Row1).
	// Present only when the mask includes NE and Col1 < Cols — the
	// right-to-left phase pipeline supplies it from the block already
	// solved to the east.
	HaloEast []int64 `json:"halo_east,omitempty"`
}

// TraceContext ties one band request to the fleet solve that issued it,
// so the executing node can tag its trace events with the originating
// solve and the coordinator can collect them back into one timeline
// (GET /v1/trace/{fleet_id}).
type TraceContext struct {
	// FleetID is the coordinator-assigned fleet solve identifier.
	FleetID string `json:"fleet_id"`
	// Band is the row-band index of the block; Phase its column-phase
	// processing index.
	Band  int `json:"band"`
	Phase int `json:"phase"`
}

// BandResponse is the 200 body of a completed band solve.
type BandResponse struct {
	// ID is the scheduler-assigned solve ID of the block solve on the
	// executing node.
	ID int64 `json:"id"`
	// Status is "done".
	Status string `json:"status"`
	// Row0/Row1/Col0/Col1 echo the solved block.
	Row0 int `json:"row0"`
	Row1 int `json:"row1"`
	Col0 int `json:"col0"`
	Col1 int `json:"col1"`
	// Mask echoes the resolved contributing set.
	Mask string `json:"mask"`
	// Digest is the FNV-1a-64 hex digest of the BLOCK's cells (digested
	// as a (Row1-Row0) x (Col1-Col0) table) — a per-block transfer
	// integrity witness, not the full-table result digest.
	Digest string `json:"digest"`
	// Cells is the solved block, row-major, (Row1-Row0) rows of
	// (Col1-Col0) values. Always present: the coordinator needs every
	// block to assemble the table.
	Cells [][]int64 `json:"cells,omitempty"`
	// ElapsedMS is the node-side wall time of the block solve.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// HaloLens is the halo coverage a band request must carry, as computed
// by HaloSpec. Zero lengths mean the corresponding halo is absent.
type HaloLens struct {
	// NorthLo is the global column of the first north-halo value;
	// NorthLen its length. The north halo covers row Row0-1.
	NorthLo, NorthLen int
	// WestLen values of column Col0-1 over rows [Row0, Row1).
	WestLen int
	// EastLen values of column Col1 over rows [Row0, Row1).
	EastLen int
}

// HaloSpec computes the exact halo coverage a block needs under a mask:
// the north halo spans the block's columns widened one column left when
// NW contributes and one column right when NE does (clipped to the
// table); the west halo exists when W or NW contribute and Col0 > 0;
// the east halo when NE contributes and Col1 < cols. Out-of-table
// neighbour reads are not halo material — nodes resolve those through
// the workload's own boundary function. Both the coordinator (to slice
// halos) and the server (to validate them) call this, so coverage
// disagreements are structurally impossible.
func HaloSpec(mask lddp.DepMask, rows, cols, row0, row1, col0, col1 int) HaloLens {
	var h HaloLens
	if row0 > 0 && mask&(lddp.DepNW|lddp.DepN|lddp.DepNE) != 0 {
		lo, hi := col0, col1-1
		if mask.Has(lddp.DepNW) {
			lo--
		}
		if mask.Has(lddp.DepNE) {
			hi++
		}
		if lo < 0 {
			lo = 0
		}
		if hi > cols-1 {
			hi = cols - 1
		}
		h.NorthLo, h.NorthLen = lo, hi-lo+1
	}
	if col0 > 0 && mask&(lddp.DepW|lddp.DepNW) != 0 {
		h.WestLen = row1 - row0
	}
	if col1 < cols && mask.Has(lddp.DepNE) {
		h.EastLen = row1 - row0
	}
	return h
}
