// Package api holds the wire-level types of the lddpd solve service:
// the request/response documents of POST /v1/solve and the band-solve
// peer protocol, the error body, and the workload kind names. It is the
// neutral contract both sides depend on — repro/internal/server
// implements the service and repro/lddp/client consumes it — so neither
// has to import the other. The JSON encoding of every type here is the
// wire format itself (DESIGN.md §10–§12); field names and tags are
// frozen by the golden wire-compat fixtures in internal/server.
package api

// SolveRequest is the body of POST /v1/solve. The server builds the DP
// problem from the declarative spec (shape, mask, workload), runs it on
// the shared scheduler, and returns a SolveResponse. Cell values are
// int64 on the wire.
type SolveRequest struct {
	// Rows and Cols are the DP-table dimensions. Both must be positive
	// and Rows*Cols must not exceed the server's per-request cell cap.
	Rows int `json:"rows"`
	Cols int `json:"cols"`

	// Mask is the contributing set, e.g. "W,N" or "{W,NW,NE}"
	// (case-insensitive, parsed by lddp.ParseDepMask). Empty selects the
	// workload kind's default mask.
	Mask string `json:"mask,omitempty"`

	// Strategy selects the executor: "auto" (default), "parallel", or
	// "async" (the barrier-free dependency-counter executor) — the
	// strategies the shared scheduler can run.
	Strategy string `json:"strategy,omitempty"`

	// Workload selects the problem generator; the zero value is the
	// seeded "mix" generator.
	Workload WorkloadSpec `json:"workload"`

	// Chunk overrides the scheduler's cells-per-claim chunk for this
	// solve; 0 inherits the server default.
	Chunk int `json:"chunk,omitempty"`

	// DeadlineMS bounds the solve (queue wait + run) in milliseconds,
	// enforced server-side; 0 means no deadline beyond the connection's.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// ReturnCells asks for the full table in the response. Honored only
	// when Rows*Cols is at or under the server's response-cell cap;
	// larger tables return the digest alone.
	ReturnCells bool `json:"return_cells,omitempty"`
}

// WorkloadSpec selects the server-side problem generator of a solve
// request. Kinds:
//
//	"mix"   (default) seeded wraparound multiply-xor recurrence — the
//	        adversarial instance family of the conformance suite; any mask.
//	"serve" the load driver's cheap integer-mixing recurrence; any mask.
//	"cost"  min-plus over a cost grid: inline Cells when provided
//	        (small tables), otherwise generated from Seed; any mask.
//	"align" edit distance over two similar strings generated from Seed
//	        (lengths Rows and Cols); mask fixed to {W,NW,N}.
type WorkloadSpec struct {
	Kind string `json:"kind,omitempty"`
	Seed int64  `json:"seed,omitempty"`
	// Cells is the inline row-major cost payload of the "cost" kind:
	// Rows rows of Cols values. Bounded by the server's inline-cell cap.
	Cells [][]int64 `json:"cells,omitempty"`
}

// SolveResponse is the 200 body of a completed solve.
type SolveResponse struct {
	// ID is the scheduler-assigned solve ID, also echoed in the
	// X-Lddp-Solve-Id header and carried by the solve's trace and
	// Collector events server-side.
	ID int64 `json:"id"`
	// Status is "done".
	Status string `json:"status"`
	// Rows, Cols, Mask and Pattern echo the executed instance
	// (mask normalized to lddp.DepMask.String form).
	Rows    int    `json:"rows"`
	Cols    int    `json:"cols"`
	Mask    string `json:"mask"`
	Pattern string `json:"pattern"`
	// Digest is the FNV-1a 64-bit digest of the row-major cell values
	// (hex), comparable across executors for the same instance.
	Digest string `json:"digest"`
	// Cells is the full table, present only when requested and within
	// the server's response-cell cap.
	Cells [][]int64 `json:"cells,omitempty"`
	// Cached reports that the response was served from the server's
	// result cache (also surfaced as the X-Lddp-Cache header); ID then
	// names the solve that originally produced the table.
	Cached bool `json:"cached,omitempty"`
	// ElapsedMS is the server-side wall time of the solve (submit to
	// completion, including queue wait). For cached responses it is the
	// lookup time.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ErrorBody is the JSON body of every non-2xx solve response.
type ErrorBody struct {
	// Status classifies the failure: "invalid" (malformed or out-of-cap
	// request), "rejected" (admission refused: in-flight limit or queue
	// full), "draining" (server shutting down), "canceled" (deadline or
	// disconnect after admission), "not_found" (unknown path), or
	// "error".
	Status string `json:"status"`
	// Error is the human-readable cause.
	Error string `json:"error"`
	// ID is the scheduler-assigned solve ID when one was assigned.
	ID int64 `json:"id,omitempty"`
	// RetryAfterMS is the server's pushback hint for retryable statuses
	// (429/503), mirroring the Retry-After header at millisecond
	// resolution.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Workload kind names accepted by the server.
const (
	KindMix   = "mix"
	KindServe = "serve"
	KindCost  = "cost"
	KindAlign = "align"
)

// SolveIDHeader is the response header echoing the scheduler-assigned
// solve ID (also in the body) so proxies and access logs can correlate
// requests with server-side traces without parsing bodies.
const SolveIDHeader = "X-Lddp-Solve-Id"

// CacheHeader is the response header reporting the result-cache outcome
// of a 200: "hit", "miss", or "bypass" (lookup skipped on request).
const CacheHeader = "X-Lddp-Cache"
