package lddp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
)

// Strategy selects the executor Solve runs a problem through.
type Strategy int

const (
	// Auto selects the native parallel pool, the fastest way to actually
	// compute a table on the host.
	Auto Strategy = iota
	// Sequential runs the row-major reference solver.
	Sequential
	// Parallel runs the native worker-pool wavefront runtime.
	Parallel
	// Tiled runs the cache-efficient tiled multicore baseline.
	Tiled
	// Hetero runs the paper's heterogeneous CPU+GPU framework on the
	// simulated platform (real cell values, simulated timing).
	Hetero
	// SimCPU runs the simulated multicore-CPU baseline.
	SimCPU
	// SimGPU runs the simulated pure-GPU baseline.
	SimGPU
	// Multi runs the multi-accelerator extension (horizontal-pattern
	// problems; requires WithAccelerators).
	Multi
	// Async runs the asynchronous dependency-counter executor: no
	// wavefronts, no barriers — cells are scheduled the moment their last
	// dependency publishes.
	Async
)

func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Sequential:
		return "sequential"
	case Parallel:
		return "parallel"
	case Tiled:
		return "tiled"
	case Hetero:
		return "hetero"
	case SimCPU:
		return "sim-cpu"
	case SimGPU:
		return "sim-gpu"
	case Multi:
		return "multi"
	case Async:
		return "async"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// config is the resolved option set; options record errors instead of
// panicking and Solve reports the first one.
type config struct {
	strategy Strategy
	opts     core.Options
	tile     int
	accels   []Accelerator
	shares   []int
	err      error
}

// Option configures a Solve call.
type Option func(*config)

// WithStrategy selects the executor; the default is Auto.
func WithStrategy(s Strategy) Option {
	return func(c *config) {
		if s < Auto || s > Async {
			c.err = fmt.Errorf("lddp: unknown strategy %d", int(s))
			return
		}
		c.strategy = s
	}
}

// WithWorkers sets the worker count of the native pool and tiled executors.
// Zero or negative selects the default min(GOMAXPROCS, NumCPU).
func WithWorkers(n int) Option {
	return func(c *config) { c.opts.NativeWorkers = n }
}

// WithChunk sets the native pool's cells-per-claim chunk (and serial
// cutoff). Zero or negative selects the default (512).
func WithChunk(n int) Option {
	return func(c *config) { c.opts.NativeChunk = n }
}

// WithoutLookahead forces the global per-front barrier on
// horizontal-pattern problems instead of the row-band lookahead handoff.
func WithoutLookahead() Option {
	return func(c *config) { c.opts.NativeNoLookahead = true }
}

// WithTile sets the block size of the Tiled strategy. Unset or
// non-positive selects DefaultTile for the problem's cell size.
func WithTile(n int) Option {
	return func(c *config) { c.tile = n }
}

// WithPlatform selects the simulated platform preset by name
// ("Hetero-High", "Hetero-Low", "Hetero-Phi", "Hetero-Modern") for the
// Hetero/SimCPU/SimGPU/Multi strategies.
func WithPlatform(name string) Option {
	return func(c *config) {
		p, err := PlatformByName(name)
		if err != nil {
			c.err = err
			return
		}
		c.opts.Platform = p
	}
}

// WithPlatformModel supplies a platform model directly.
func WithPlatformModel(p *Platform) Option {
	return func(c *config) { c.opts.Platform = p }
}

// WithTSwitch overrides the number of CPU-only low-work iterations of the
// heterogeneous strategies; negative (the default) auto-tunes it.
func WithTSwitch(n int) Option {
	return func(c *config) { c.opts.TSwitch = n }
}

// WithTShare overrides the CPU's per-iteration cell share of the
// heterogeneous strategies; negative (the default) auto-tunes it.
func WithTShare(n int) Option {
	return func(c *config) { c.opts.TShare = n }
}

// WithPreferInvertedL runs inverted-L problems through the genuine
// inverted-L strategy instead of the (faster) horizontal case-1 route.
func WithPreferInvertedL() Option {
	return func(c *config) { c.opts.PreferInvertedL = true }
}

// WithCollector attaches a runtime observability sink (e.g. *Metrics) to
// the solve. Nil keeps instrumentation disabled.
func WithCollector(coll Collector) Option {
	return func(c *config) { c.opts.Collector = coll }
}

// WithTracer attaches a runtime event tracer (see NewTracer) to the
// solve. Nil keeps tracing disabled. The tracer's rings must not be read
// (WriteTrace, AnalyzeTrace) until Solve has returned.
func WithTracer(t *Tracer) Option {
	return func(c *config) { c.opts.Tracer = t }
}

// WithAccelerators resolves the named accelerator models ("k20", "gt650m",
// "phi") for the Multi strategy; ordering fixes the device order after the
// host CPU.
func WithAccelerators(names ...string) Option {
	return func(c *config) {
		accels := make([]Accelerator, 0, len(names))
		for _, n := range names {
			a, err := AcceleratorByName(n)
			if err != nil {
				c.err = err
				return
			}
			accels = append(accels, a)
		}
		c.accels = accels
	}
}

// WithShares fixes the per-device column spans of the Multi strategy (CPU
// first); nil derives throughput-balanced spans.
func WithShares(shares []int) Option {
	return func(c *config) { c.shares = shares }
}

// Result is the outcome of a Solve.
type Result[T any] struct {
	// Grid holds the computed table; nil only for simulated strategies
	// asked to skip computation (not reachable through public options).
	Grid *Grid[T]

	// Strategy is the executor that ran (Auto resolved).
	Strategy Strategy
	// Pattern is the problem's Table-I pattern; Executed is the canonical
	// pattern the strategy ran after symmetry reduction (simulated
	// strategies only; otherwise equal to the canonical pattern).
	Pattern, Executed Pattern
	// Transfer is the problem's Table-II transfer requirement.
	Transfer TransferKind

	// TSwitch and TShare are the work-division parameters used by the
	// Hetero strategy (zero otherwise).
	TSwitch, TShare int
	// Shares holds the Multi strategy's per-device column spans.
	Shares []int

	// SimTime is the simulated makespan of the
	// Hetero/SimCPU/SimGPU/Multi strategies (zero for native execution);
	// Timeline the corresponding schedule.
	SimTime  time.Duration
	Timeline Timeline
}

// Solve runs the problem through the selected executor. The context is
// polled at wavefront granularity by every executor; cancellation returns
// a nil result and a *Canceled error. The zero option set solves natively
// on the worker pool with auto-sized workers.
func Solve[T any](ctx context.Context, p *Problem[T], options ...Option) (*Result[T], error) {
	cfg := config{
		strategy: Auto,
		// Negative TSwitch/TShare mean auto-tune in core.Options.
		opts: core.Options{TSwitch: -1, TShare: -1},
	}
	for _, o := range options {
		o(&cfg)
		if cfg.err != nil {
			return nil, cfg.err
		}
	}

	strategy := cfg.strategy
	if strategy == Auto {
		strategy = Parallel
	}

	res := &Result[T]{
		Strategy: strategy,
		Pattern:  core.Classify(p.Deps),
		Transfer: core.TransferNeed(p.Deps),
	}
	res.Executed = res.Pattern

	switch strategy {
	case Sequential:
		g, err := core.SolveContext(ctx, p)
		if err != nil {
			return nil, err
		}
		res.Grid = g
	case Parallel:
		g, err := core.SolveParallelContext(ctx, p, cfg.opts)
		if err != nil {
			return nil, err
		}
		res.Grid = g
	case Async:
		g, err := core.SolveAsyncContext(ctx, p, cfg.opts)
		if err != nil {
			return nil, err
		}
		res.Grid = g
	case Tiled:
		tile := cfg.tile
		if tile <= 0 {
			tile = core.DefaultTile(p.BytesPerCell)
		}
		g, err := core.SolveTiledContext(ctx, p, tile, cfg.opts)
		if err != nil {
			return nil, err
		}
		res.Grid = g
	case Hetero, SimCPU, SimGPU:
		solve := core.SolveHeteroContext[T]
		switch strategy {
		case SimCPU:
			solve = core.SolveCPUOnlyContext[T]
		case SimGPU:
			solve = core.SolveGPUOnlyContext[T]
		}
		r, err := solve(ctx, p, cfg.opts)
		if err != nil {
			return nil, err
		}
		res.Grid = r.Grid
		res.Executed = r.Executed
		res.TSwitch, res.TShare = r.TSwitch, r.TShare
		res.SimTime = r.Time
		res.Timeline = r.Timeline
	case Multi:
		if len(cfg.accels) == 0 {
			return nil, fmt.Errorf("lddp: the Multi strategy requires WithAccelerators")
		}
		r, err := core.SolveHeteroMultiContext(ctx, p, cfg.opts, cfg.accels, cfg.shares)
		if err != nil {
			return nil, err
		}
		res.Grid = r.Grid
		res.Executed = Horizontal
		res.Shares = r.Shares
		res.SimTime = r.Timeline.Makespan()
		res.Timeline = r.Timeline
	default:
		return nil, fmt.Errorf("lddp: unknown strategy %d", int(strategy))
	}
	return res, nil
}
