package lddp_test

import (
	"context"
	"errors"
	"testing"

	"repro/lddp"
)

func schedProblem(rows, cols int) *lddp.Problem[int64] {
	return &lddp.Problem[int64]{
		Name: "facade-sched", Rows: rows, Cols: cols,
		Deps: lddp.DepW | lddp.DepN,
		F: func(i, j int, nb lddp.Neighbors[int64]) int64 {
			return (nb.W*3 + nb.N + int64(i*7+j)) % 1_000_003
		},
		Boundary:     func(i, j int) int64 { return int64(i - j) },
		BytesPerCell: 8,
	}
}

func TestSchedulerFacadeMatchesSolve(t *testing.T) {
	metrics := &lddp.Metrics{}
	s, err := lddp.NewScheduler(
		lddp.WithSchedulerWorkers(2),
		lddp.WithSchedulerChunk(16),
		lddp.WithSchedulerCollector(metrics),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := schedProblem(50, 60)
	want, err := lddp.Solve(context.Background(), p, lddp.WithStrategy(lddp.Sequential))
	if err != nil {
		t.Fatal(err)
	}
	got, err := lddp.SolveOn(context.Background(), s, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Rows; i++ {
		for j := 0; j < p.Cols; j++ {
			if want.Grid.At(i, j) != got.At(i, j) {
				t.Fatalf("cell (%d,%d): scheduler %d != sequential %d", i, j, got.At(i, j), want.Grid.At(i, j))
			}
		}
	}
	snap := metrics.Snapshot()
	if snap.Sched.Submitted != 1 || snap.Sched.Started != 1 || snap.Sched.Done != 1 {
		t.Errorf("sched metrics = %+v, want submitted/started/done = 1", snap.Sched)
	}
	if snap.Solver != "sched" {
		t.Errorf("metrics solver = %q, want \"sched\"", snap.Solver)
	}
}

// TestSchedulerFacadeAsyncStrategy submits an async-strategy solve to the
// shared scheduler and checks the dependency-counter engine's grid
// matches the sequential reference when assembled by scheduler workers.
func TestSchedulerFacadeAsyncStrategy(t *testing.T) {
	s, err := lddp.NewScheduler(lddp.WithSchedulerWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := schedProblem(77, 61)
	want, err := lddp.Solve(context.Background(), p, lddp.WithStrategy(lddp.Sequential))
	if err != nil {
		t.Fatal(err)
	}
	got, err := lddp.SolveOn(context.Background(), s, p, lddp.WithStrategy(lddp.Async))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Rows; i++ {
		for j := 0; j < p.Cols; j++ {
			if want.Grid.At(i, j) != got.At(i, j) {
				t.Fatalf("cell (%d,%d): async-on-scheduler %d != sequential %d", i, j, got.At(i, j), want.Grid.At(i, j))
			}
		}
	}
}

func TestSubmitRejectsUnsupportedOptions(t *testing.T) {
	s, err := lddp.NewScheduler(lddp.WithSchedulerWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := schedProblem(4, 4)
	if _, err := lddp.Submit(context.Background(), s, p, lddp.WithStrategy(lddp.Tiled)); err == nil {
		t.Error("Tiled strategy accepted by Submit")
	}
	if _, err := lddp.Submit(context.Background(), s, p, lddp.WithCollector(&lddp.Metrics{})); err == nil {
		t.Error("per-submission collector accepted by Submit")
	}
}

func TestSchedulerFacadeRejectionTypes(t *testing.T) {
	s, err := lddp.NewScheduler(lddp.WithSchedulerWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, err = lddp.SolveOn(context.Background(), s, schedProblem(4, 4))
	var rej *lddp.Rejected
	if !errors.As(err, &rej) || !errors.Is(err, lddp.ErrSchedulerClosed) {
		t.Fatalf("submit after close: got %v, want *Rejected wrapping ErrSchedulerClosed", err)
	}
}

func TestSchedulerFacadeTracer(t *testing.T) {
	s, err := lddp.NewScheduler(lddp.WithSchedulerWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr := lddp.NewTracer()
	if _, err := lddp.SolveOn(context.Background(), s, schedProblem(40, 40),
		lddp.WithChunk(8), lddp.WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	if tr.Meta().Solver != "sched" {
		t.Errorf("trace solver = %q, want \"sched\"", tr.Meta().Solver)
	}
	if len(tr.Events()) == 0 {
		t.Error("tracer recorded no events")
	}
}
