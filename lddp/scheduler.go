package lddp

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
)

// Scheduler is the process-wide shared solve scheduler (alias of the
// internal sched type): one long-lived worker pool serving many
// concurrent solve submissions, interleaving chunks of different solves
// on the same workers with bounded-FIFO admission control. Create one
// with NewScheduler, submit problems with Submit, and Close it to drain.
//
// Use a Scheduler instead of concurrent Solve calls when many solves
// share one process: N concurrent Solve calls each spin up their own
// pool and stall it on their own narrow fronts, while a Scheduler covers
// one solve's narrow-front regions with another solve's bulk.
type Scheduler = sched.Scheduler

// SchedulerStats is a point-in-time snapshot of a Scheduler's counters.
type SchedulerStats = sched.Stats

// SchedulerWorkerLoad is one scheduler worker's cumulative load.
type SchedulerWorkerLoad = sched.WorkerLoad

// Rejected is the error of a submission that never ran: queue full,
// scheduler closed, or its context ended while still queued. A solve
// interrupted after admission returns *Canceled instead; together with a
// nil error the three cases partition every submission's outcome.
type Rejected = sched.Rejected

// Rejection causes, surfaced through Rejected (use errors.Is).
var (
	// ErrQueueFull: the admission queue was at its bound.
	ErrQueueFull = sched.ErrQueueFull
	// ErrSchedulerClosed: the scheduler had been closed.
	ErrSchedulerClosed = sched.ErrClosed
)

// SchedEvent is one scheduler lifecycle event; SchedEventKind classifies
// it. A Collector that also implements SchedCollector (as *Metrics does)
// receives the stream when attached with WithSchedulerCollector.
type (
	SchedEvent     = core.SchedEvent
	SchedEventKind = core.SchedEventKind
	SchedCollector = core.SchedCollector
)

// The scheduler lifecycle event kinds.
const (
	SchedEnqueued = core.SchedEnqueued
	SchedStarted  = core.SchedStarted
	SchedDone     = core.SchedDone
	SchedCanceled = core.SchedCanceled
	SchedRejected = core.SchedRejected
	SchedSteal    = core.SchedSteal
)

// SchedulerOption configures NewScheduler.
type SchedulerOption func(*sched.Config)

// WithSchedulerWorkers sets the shared pool size; zero or negative
// selects min(GOMAXPROCS, NumCPU).
func WithSchedulerWorkers(n int) SchedulerOption {
	return func(c *sched.Config) { c.Workers = n }
}

// WithSchedulerQueue sets the admission queue depth; a Submit that would
// exceed it is rejected with ErrQueueFull. Zero or negative selects the
// default (256).
func WithSchedulerQueue(n int) SchedulerOption {
	return func(c *sched.Config) { c.QueueBound = n }
}

// WithSchedulerMaxActive caps the solves executing concurrently; zero or
// negative selects twice the worker count.
func WithSchedulerMaxActive(n int) SchedulerOption {
	return func(c *sched.Config) { c.MaxActive = n }
}

// WithSchedulerChunk sets the default cells-per-claim chunk for
// submissions that do not set their own via WithChunk; zero or negative
// selects 512.
func WithSchedulerChunk(n int) SchedulerOption {
	return func(c *sched.Config) { c.Chunk = n }
}

// WithSchedulerCollector attaches an observability sink to every solve
// the scheduler admits. SolveStart events carry the scheduler-assigned
// SolveInfo.ID; a sink that also implements SchedCollector (e.g.
// *Metrics) additionally receives the SchedEvent lifecycle stream —
// queue depths, time-in-queue, cross-solve steals.
func WithSchedulerCollector(coll Collector) SchedulerOption {
	return func(c *sched.Config) { c.Collector = coll }
}

// WithSmallSolveBoost tunes size-aware admission: submissions of at most
// cells total cells may jump up to boost positions of the FIFO admission
// queue. Zero or negative values select the defaults (65536 cells, 8
// positions). The jump is bounded, so large solves cannot starve.
func WithSmallSolveBoost(cells int64, boost int) SchedulerOption {
	return func(c *sched.Config) {
		c.SmallCells = cells
		c.SmallBoost = boost
	}
}

// NewScheduler starts a shared solve scheduler. The zero option set uses
// all defaults; out-of-range values are reported as an error, never
// clamped or panicked on.
func NewScheduler(options ...SchedulerOption) (*Scheduler, error) {
	var cfg sched.Config
	for _, o := range options {
		o(&cfg)
	}
	return sched.New(cfg)
}

// Submission tracks one accepted scheduler submission of a typed problem.
type Submission[T any] struct {
	h      *sched.Handle
	finish func() *Grid[T]
}

// ID returns the scheduler-assigned solve ID (matches SolveInfo.ID and
// the SchedEvent stream).
func (s *Submission[T]) ID() int64 { return s.h.ID() }

// Done returns a channel closed when the submission reaches its end
// state; Wait is then non-blocking.
func (s *Submission[T]) Done() <-chan struct{} { return s.h.Done() }

// Wait blocks until the submission finishes and returns the computed
// grid. The error is nil (grid valid), *Canceled (interrupted mid-run),
// or *Rejected (never ran); on error the grid is nil.
func (s *Submission[T]) Wait() (*Grid[T], error) {
	if err := s.h.Wait(); err != nil {
		return nil, err
	}
	return s.finish(), nil
}

// Submit enqueues a problem on the shared scheduler. The per-solve
// options honored are WithChunk (claim granularity) and WithTracer (a
// per-submission Tracer recording queue wait, chunk claims, and steals);
// WithWorkers is ignored — the scheduler owns the pool — and WithCollector
// is rejected in favor of the scheduler-wide WithSchedulerCollector.
// Only the Auto, Parallel and Async strategies can run on the scheduler.
//
// An Async submission is a single front of independent worker loops over
// the shared dependency-counter engine (core.NewAsyncWorkload), claimed
// one loop at a time, so scheduler workers join and leave the solve like
// any other chunked submission.
//
// A nil error means the submission was accepted; its outcome arrives via
// the Submission. A *Rejected error means it was refused synchronously
// (queue full, scheduler closed, or the context already ended). ctx
// governs both the queue wait and the run: expiry while queued rejects
// the submission without running it, expiry mid-run cancels the solve at
// chunk granularity.
func Submit[T any](ctx context.Context, s *Scheduler, p *Problem[T], options ...Option) (*Submission[T], error) {
	cfg := config{strategy: Auto, opts: core.Options{TSwitch: -1, TShare: -1}}
	for _, o := range options {
		o(&cfg)
		if cfg.err != nil {
			return nil, cfg.err
		}
	}
	if cfg.strategy != Auto && cfg.strategy != Parallel && cfg.strategy != Async {
		return nil, fmt.Errorf("lddp: the %s strategy cannot run on the shared scheduler (only Auto, Parallel and Async)", cfg.strategy)
	}
	if cfg.opts.Collector != nil {
		return nil, fmt.Errorf("lddp: per-submission collectors are not supported; attach one scheduler-wide with WithSchedulerCollector")
	}
	var (
		wl     *core.Workload
		finish func() *Grid[T]
		err    error
		chunk  = cfg.opts.NativeChunk
	)
	if cfg.strategy == Async {
		// The async workload's "cells" are whole worker loops; cap them at
		// the scheduler's pool size and claim them one at a time.
		if w := s.Config().Workers; cfg.opts.NativeWorkers <= 0 || cfg.opts.NativeWorkers > w {
			cfg.opts.NativeWorkers = w
		}
		wl, finish, err = core.NewAsyncWorkload(ctx, p, cfg.opts)
		chunk = 1
	} else {
		wl, finish, err = core.NewWorkload(p, cfg.opts)
	}
	if err != nil {
		return nil, err
	}
	h, err := s.Submit(ctx, wl, sched.SubmitOptions{Chunk: chunk, Tracer: cfg.opts.Tracer})
	if err != nil {
		return nil, err
	}
	return &Submission[T]{h: h, finish: finish}, nil
}

// SolveOn submits p and waits: the scheduler-routed equivalent of Solve
// with the Parallel strategy.
func SolveOn[T any](ctx context.Context, s *Scheduler, p *Problem[T], options ...Option) (*Grid[T], error) {
	sub, err := Submit(ctx, s, p, options...)
	if err != nil {
		return nil, err
	}
	return sub.Wait()
}
