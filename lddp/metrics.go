package lddp

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math/bits"
	"sync"
	"time"
)

// Metrics is a ready-made Collector that aggregates solver observability
// events into a JSON-marshalable snapshot: per-phase wall times, a
// power-of-two front-size histogram, pool worker utilization, and
// simulated transfer volumes split boundary/bulk by direction. It is safe
// for concurrent use and may be reused across solves (counters accumulate;
// Reset clears them).
type Metrics struct {
	mu   sync.Mutex
	snap MetricsSnapshot
}

// MetricsSnapshot is the aggregate view of a Metrics collector. All
// durations are nanoseconds, so the document round-trips through JSON
// without float loss.
type MetricsSnapshot struct {
	// Solver/Problem/Pattern/Executed describe the most recent solve.
	Solver   string `json:"solver"`
	Problem  string `json:"problem,omitempty"`
	Pattern  string `json:"pattern,omitempty"`
	Executed string `json:"executed,omitempty"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	Fronts   int    `json:"fronts"`

	// Solves counts completed solves; Errors those that returned one.
	Solves int `json:"solves"`
	Errors int `json:"errors"`
	// LastError holds the most recent solve error, if any.
	LastError string `json:"last_error,omitempty"`

	// Phases lists per-phase wall times in first-seen order.
	Phases []PhaseStat `json:"phases"`

	// FrontSizes is a power-of-two histogram of wavefront sizes;
	// TotalFronts and TotalCells are its marginals.
	FrontSizes  []SizeBucket `json:"front_sizes"`
	TotalFronts int64        `json:"total_fronts"`
	TotalCells  int64        `json:"total_cells"`

	// Workers lists per-worker pool utilization, in worker order of the
	// most recent pool solve.
	Workers []WorkerSnapshot `json:"worker_stats"`

	// Transfers aggregates simulated device traffic.
	Transfers TransferSummary `json:"transfers"`

	// Sched aggregates shared-scheduler lifecycle events when the Metrics
	// is attached via WithSchedulerCollector; zero otherwise.
	Sched SchedSnapshot `json:"sched,omitzero"`

	// Cache reports the lddpd result cache when the snapshot comes from
	// the server's /metrics endpoint; zero elsewhere (the cache lives in
	// internal/server and fills this section at scrape time).
	Cache CacheSnapshot `json:"cache,omitzero"`

	// Wire reports the lddpd codec counters (JSON vs binary frame
	// traffic) when the snapshot comes from /metrics; zero elsewhere.
	Wire WireSnapshot `json:"wire,omitzero"`

	// Server reports lddpd process-level gauges (in-flight solves, drain
	// state, trace-ring drops) filled at /metrics scrape time; zero
	// elsewhere.
	Server ServerSnapshot `json:"server,omitzero"`

	// Fleet reports the fleet coordinator's counters on nodes running
	// one (-peers); zero elsewhere.
	Fleet FleetSnapshot `json:"fleet,omitzero"`
}

// ServerSnapshot is the lddpd process section of a server metrics
// snapshot.
type ServerSnapshot struct {
	// InflightSolves is the number of requests currently holding an
	// admission slot; Draining is 1 once drain began, else 0.
	InflightSolves int64 `json:"inflight_solves"`
	Draining       int64 `json:"draining"`
	// TraceDroppedEvents totals trace-ring overwrites across every
	// traced solve on this node — non-zero means timelines are missing
	// their oldest events and -tracedir analysis is partial.
	TraceDroppedEvents int64 `json:"trace_dropped_events"`
	// TraceSolves counts trace files written; TraceFleets the fleet
	// solves currently indexed for GET /v1/trace/{fleetID}.
	TraceSolves int64 `json:"trace_solves"`
	TraceFleets int64 `json:"trace_fleets"`
}

// FleetSnapshot is the band-fleet coordinator section of a server
// metrics snapshot.
type FleetSnapshot struct {
	// Solves counts completed fleet solves; Blocks the block round trips
	// they issued; Relocations the blocks retried on a different node
	// after a relocatable failure.
	Solves      int64 `json:"solves"`
	Blocks      int64 `json:"blocks"`
	Relocations int64 `json:"relocations"`
	// HaloValues and HaloBytes total the halo values sliced into band
	// requests and their encoded volume (8 bytes per value).
	HaloValues int64 `json:"halo_values"`
	HaloBytes  int64 `json:"halo_bytes"`
}

// CacheSnapshot is the lddpd result-cache section of a server metrics
// snapshot: a bounded, size-aware LRU keyed on the declarative workload
// tuple (DESIGN.md §11).
type CacheSnapshot struct {
	// Hits, Misses and Bypasses count lookups: served from cache, not
	// present, and skipped because the request carried
	// Cache-Control: no-cache.
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Bypasses int64 `json:"bypasses"`
	// Stores counts insertions; Evictions entries dropped under size
	// pressure.
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	// Entries and Bytes are the current population; CapacityBytes the
	// configured bound.
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
}

// WireSnapshot counts lddpd requests and responses per codec, plus
// binary frames the decoder refused.
type WireSnapshot struct {
	JSONRequests    int64 `json:"json_requests"`
	BinaryRequests  int64 `json:"binary_requests"`
	JSONResponses   int64 `json:"json_responses"`
	BinaryResponses int64 `json:"binary_responses"`
	// BinaryRejects counts binary request bodies the frame decoder
	// refused (truncated, wrong version, digest mismatch).
	BinaryRejects int64 `json:"binary_rejects"`
	// RequestBytes and ResponseBytes total the solve and band-solve body
	// bytes read and written, across both codecs.
	RequestBytes  int64 `json:"request_bytes"`
	ResponseBytes int64 `json:"response_bytes"`
	// HaloValues and HaloBytes total the halo values band requests
	// carried into this node (north + west + east) and their encoded
	// volume (8 bytes per value).
	HaloValues int64 `json:"halo_values"`
	HaloBytes  int64 `json:"halo_bytes"`
}

// SchedSnapshot aggregates the SchedEvent stream of a shared scheduler.
type SchedSnapshot struct {
	// Submitted counts admissions into the queue; Started, Done, Canceled
	// and Rejected the lifecycle outcomes (Rejected includes synchronous
	// refusals and queue expiries).
	Submitted int64 `json:"submitted"`
	Started   int64 `json:"started"`
	Done      int64 `json:"done"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
	// Steals counts cross-solve steals (a worker switching solves).
	Steals int64 `json:"steals"`
	// PeakQueueDepth and PeakActive are high-water marks observed on the
	// event stream.
	PeakQueueDepth int `json:"peak_queue_depth"`
	PeakActive     int `json:"peak_active"`
	// QueueWaitNS sums the time-in-queue of started submissions;
	// MaxQueueWaitNS is the largest single wait. QueueWaitNS/Started is
	// the mean admission latency.
	QueueWaitNS    int64 `json:"queue_wait_ns"`
	MaxQueueWaitNS int64 `json:"max_queue_wait_ns"`
	// QueueWait histograms the time-in-queue of admitted submissions
	// (the SchedStarted Wait stream); SolveLatency the full
	// submit-to-done latency of successful solves (the SchedDone Wait
	// stream).
	QueueWait    Hist `json:"queue_wait,omitzero"`
	SolveLatency Hist `json:"solve_latency,omitzero"`
}

// histBoundsNS are the shared upper bounds of the duration histograms:
// powers of four from 1µs to ~16.8s (13 buckets), a range wide enough to
// resolve both sub-millisecond admission waits and multi-second solves
// at a fixed, merge-friendly bucket layout.
func histBoundsNS() []int64 {
	b := make([]int64, 13)
	v := int64(1000)
	for i := range b {
		b[i] = v
		v *= 4
	}
	return b
}

// Hist is a fixed-bound duration histogram over histBoundsNS. Counts has
// one entry per bound plus a final overflow bucket, so the cumulative
// Prometheus rendering (le="...", le="+Inf") falls out by prefix-summing
// Counts.
type Hist struct {
	// BoundsNS are the inclusive upper bounds, ascending.
	BoundsNS []int64 `json:"bounds_ns"`
	// Counts[i] counts observations <= BoundsNS[i] (and > BoundsNS[i-1]);
	// the final extra entry counts overflows.
	Counts []int64 `json:"counts"`
	// Count and SumNS are the marginals; MaxNS the largest observation.
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	MaxNS int64 `json:"max_ns"`
}

// Observe adds one duration (in nanoseconds) to the histogram,
// allocating the fixed bucket layout on first use.
func (h *Hist) Observe(ns int64) {
	if h.BoundsNS == nil {
		h.BoundsNS = histBoundsNS()
		h.Counts = make([]int64, len(h.BoundsNS)+1)
	}
	i := 0
	for i < len(h.BoundsNS) && ns > h.BoundsNS[i] {
		i++
	}
	h.Counts[i]++
	h.Count++
	h.SumNS += ns
	if ns > h.MaxNS {
		h.MaxNS = ns
	}
}

// IsZero reports whether the histogram has no observations; it makes
// empty histograms disappear from JSON under omitzero.
func (h Hist) IsZero() bool { return h.Count == 0 }

// clone deep-copies the histogram's bucket slices.
func (h Hist) clone() Hist {
	h.BoundsNS = append([]int64(nil), h.BoundsNS...)
	h.Counts = append([]int64(nil), h.Counts...)
	return h
}

// PhaseStat accumulates the wall time of one named execution phase.
type PhaseStat struct {
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
	Count  int64  `json:"count"`
}

// SizeBucket counts fronts whose size falls in [Lo, Hi].
type SizeBucket struct {
	Lo    int   `json:"lo"`
	Hi    int   `json:"hi"`
	Count int64 `json:"count"`
}

// WorkerSnapshot reports one pool worker's share of the work.
type WorkerSnapshot struct {
	Worker      int     `json:"worker"`
	Chunks      int64   `json:"chunks"`
	Cells       int64   `json:"cells"`
	BusyNS      int64   `json:"busy_ns"`
	WallNS      int64   `json:"wall_ns"`
	Utilization float64 `json:"utilization"`
}

// TransferSummary splits simulated transfers boundary/bulk by direction.
type TransferSummary struct {
	BoundaryH2D TransferCounter `json:"boundary_h2d"`
	BoundaryD2H TransferCounter `json:"boundary_d2h"`
	BulkH2D     TransferCounter `json:"bulk_h2d"`
	BulkD2H     TransferCounter `json:"bulk_d2h"`
}

// TransferCounter accumulates one transfer class.
type TransferCounter struct {
	Count int64 `json:"count"`
	Bytes int64 `json:"bytes"`
	Cells int64 `json:"cells"`
}

var (
	_ Collector      = (*Metrics)(nil)
	_ SchedCollector = (*Metrics)(nil)
)

// SolveStart implements Collector.
func (m *Metrics) SolveStart(info SolveInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap.Solver = info.Solver
	m.snap.Problem = info.Problem
	m.snap.Pattern = info.Pattern
	m.snap.Executed = info.Executed
	m.snap.Rows, m.snap.Cols, m.snap.Fronts = info.Rows, info.Cols, info.Fronts
	// A new solve reports a fresh worker roster.
	m.snap.Workers = m.snap.Workers[:0]
}

// Phase implements Collector.
func (m *Metrics) Phase(name string, wall time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.snap.Phases {
		if m.snap.Phases[i].Name == name {
			m.snap.Phases[i].WallNS += wall.Nanoseconds()
			m.snap.Phases[i].Count++
			return
		}
	}
	m.snap.Phases = append(m.snap.Phases, PhaseStat{Name: name, WallNS: wall.Nanoseconds(), Count: 1})
}

// FrontSize implements Collector.
func (m *Metrics) FrontSize(cells int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap.TotalFronts++
	m.snap.TotalCells += int64(cells)
	lo, hi := bucketRange(cells)
	for i := range m.snap.FrontSizes {
		if m.snap.FrontSizes[i].Lo == lo {
			m.snap.FrontSizes[i].Count++
			return
		}
	}
	m.snap.FrontSizes = append(m.snap.FrontSizes, SizeBucket{Lo: lo, Hi: hi, Count: 1})
}

// bucketRange maps a front size to its power-of-two histogram bucket.
func bucketRange(cells int) (lo, hi int) {
	if cells <= 0 {
		return 0, 0
	}
	n := bits.Len(uint(cells)) - 1 // floor(log2)
	return 1 << n, 1<<(n+1) - 1
}

// WorkerStats implements Collector.
func (m *Metrics) WorkerStats(ws WorkerStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := WorkerSnapshot{
		Worker: ws.Worker,
		Chunks: int64(ws.Chunks),
		Cells:  int64(ws.Cells),
		BusyNS: ws.Busy.Nanoseconds(),
		WallNS: ws.Wall.Nanoseconds(),
	}
	if snap.WallNS > 0 {
		snap.Utilization = float64(snap.BusyNS) / float64(snap.WallNS)
	}
	m.snap.Workers = append(m.snap.Workers, snap)
}

// Transfer implements Collector.
func (m *Metrics) Transfer(ts TransferStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var c *TransferCounter
	switch {
	case ts.Boundary && ts.ToDevice:
		c = &m.snap.Transfers.BoundaryH2D
	case ts.Boundary:
		c = &m.snap.Transfers.BoundaryD2H
	case ts.ToDevice:
		c = &m.snap.Transfers.BulkH2D
	default:
		c = &m.snap.Transfers.BulkD2H
	}
	c.Count++
	c.Bytes += int64(ts.Bytes)
	c.Cells += int64(ts.Cells)
}

// SolveEnd implements Collector.
func (m *Metrics) SolveEnd(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap.Solves++
	if err != nil {
		m.snap.Errors++
		m.snap.LastError = err.Error()
	}
}

// SchedEvent implements SchedCollector: attached scheduler-wide via
// WithSchedulerCollector, the Metrics aggregates the scheduler's
// lifecycle stream into the Sched section of the snapshot.
func (m *Metrics) SchedEvent(ev SchedEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &m.snap.Sched
	switch ev.Kind {
	case SchedEnqueued:
		s.Submitted++
	case SchedStarted:
		s.Started++
		w := ev.Wait.Nanoseconds()
		s.QueueWaitNS += w
		if w > s.MaxQueueWaitNS {
			s.MaxQueueWaitNS = w
		}
		s.QueueWait.Observe(w)
	case SchedDone:
		s.Done++
		// The terminal event's Wait is the submit-to-done latency
		// (internal/sched documents the contract), so the latency
		// histogram is one Observe here.
		s.SolveLatency.Observe(ev.Wait.Nanoseconds())
	case SchedCanceled:
		s.Canceled++
	case SchedRejected:
		s.Rejected++
	case SchedSteal:
		s.Steals++
	}
	if ev.QueueDepth > s.PeakQueueDepth {
		s.PeakQueueDepth = ev.QueueDepth
	}
	if ev.Active > s.PeakActive {
		s.PeakActive = ev.Active
	}
}

// Snapshot returns a deep copy of the current aggregates.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.snap
	s.Phases = append([]PhaseStat(nil), m.snap.Phases...)
	s.FrontSizes = append([]SizeBucket(nil), m.snap.FrontSizes...)
	s.Workers = append([]WorkerSnapshot(nil), m.snap.Workers...)
	s.Sched.QueueWait = m.snap.Sched.QueueWait.clone()
	s.Sched.SolveLatency = m.snap.Sched.SolveLatency.clone()
	return s
}

// Reset clears all aggregates.
func (m *Metrics) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap = MetricsSnapshot{}
}

// MarshalJSON renders the current snapshot, so a *Metrics can be encoded
// directly.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot())
}

// publishMu serializes the duplicate check in PublishExpvar against
// concurrent publishes of the same name; expvar.Publish itself panics on
// duplicates, so the check must be atomic with the registration.
var publishMu sync.Mutex

// PublishExpvar registers the metrics under the given expvar name, making
// the live snapshot visible on /debug/vars. Unlike expvar.Publish, a name
// already taken reports an error instead of panicking (expvar offers no
// unregister, so re-publishing after a restart-style reinit is a common
// collision).
func (m *Metrics) PublishExpvar(name string) error {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return fmt.Errorf("lddp: expvar name %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
	return nil
}
