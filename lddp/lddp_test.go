package lddp_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/table"
	"repro/lddp"
)

// testProblem mixes every contributing neighbour with a positional term so
// any mis-scheduled read changes the output.
func testProblem(m lddp.DepMask, rows, cols int) *lddp.Problem[int64] {
	return &lddp.Problem[int64]{
		Name: "facade-" + m.String(),
		Rows: rows,
		Cols: cols,
		Deps: m,
		F: func(i, j int, nb lddp.Neighbors[int64]) int64 {
			v := int64(i*31+j*17) % 13
			if m.Has(lddp.DepW) {
				v += 2*nb.W + 1
			}
			if m.Has(lddp.DepNW) {
				v += 3 * nb.NW
			}
			if m.Has(lddp.DepN) {
				v += max(nb.N, v)
			}
			if m.Has(lddp.DepNE) {
				v += nb.NE ^ 5
			}
			return v % 1_000_003
		},
		Boundary:     func(i, j int) int64 { return int64(i + 2*j) },
		BytesPerCell: 8,
	}
}

// TestSolveMatchesReferenceAllMasksAllStrategies checks lddp.Solve
// reproduces the sequential reference for every one of the 15 contributing
// sets on every grid-producing strategy.
func TestSolveMatchesReferenceAllMasksAllStrategies(t *testing.T) {
	ctx := context.Background()
	for _, m := range core.AllDepMasks() {
		p := testProblem(m, 48, 37)
		want, err := core.Solve(p)
		if err != nil {
			t.Fatalf("mask %s: reference solve: %v", m, err)
		}
		for _, s := range []lddp.Strategy{
			lddp.Auto, lddp.Sequential, lddp.Parallel, lddp.Tiled,
			lddp.Hetero, lddp.SimCPU, lddp.SimGPU, lddp.Async,
		} {
			res, err := lddp.Solve(ctx, p, lddp.WithStrategy(s), lddp.WithWorkers(3))
			if err != nil {
				t.Fatalf("mask %s strategy %s: %v", m, s, err)
			}
			if res.Grid == nil {
				t.Fatalf("mask %s strategy %s: nil grid", m, s)
			}
			if !table.EqualComparable(want, res.Grid) {
				t.Errorf("mask %s strategy %s: grid differs from reference", m, s)
			}
			if res.Pattern != core.Classify(m) {
				t.Errorf("mask %s strategy %s: Pattern = %s, want %s", m, s, res.Pattern, core.Classify(m))
			}
		}
	}
}

// TestSolveMultiStrategy exercises the multi-accelerator path through the
// facade on a horizontal-pattern problem.
func TestSolveMultiStrategy(t *testing.T) {
	p := testProblem(lddp.DepNW|lddp.DepN, 48, 64)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lddp.Solve(context.Background(), p,
		lddp.WithStrategy(lddp.Multi),
		lddp.WithAccelerators("k20", "gt650m"))
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, res.Grid) {
		t.Error("multi grid differs from reference")
	}
	if len(res.Shares) != 3 {
		t.Errorf("Shares = %v, want 3 device spans", res.Shares)
	}
	if res.SimTime <= 0 {
		t.Errorf("SimTime = %v, want > 0", res.SimTime)
	}
}

// TestSolveOptionErrors checks option failures surface before any work.
func TestSolveOptionErrors(t *testing.T) {
	p := testProblem(lddp.DepN, 8, 8)
	ctx := context.Background()
	if _, err := lddp.Solve(ctx, p, lddp.WithPlatform("Hetero-Imaginary")); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := lddp.Solve(ctx, p, lddp.WithAccelerators("warp9")); err == nil {
		t.Error("unknown accelerator accepted")
	}
	if _, err := lddp.Solve(ctx, p, lddp.WithStrategy(lddp.Multi)); err == nil {
		t.Error("Multi without accelerators accepted")
	}
	if _, err := lddp.Solve(ctx, p, lddp.WithStrategy(lddp.Strategy(99))); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestSolveCancellation checks the facade propagates *Canceled from every
// strategy.
func TestSolveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := testProblem(lddp.DepW|lddp.DepNW|lddp.DepN, 64, 64)
	for _, s := range []lddp.Strategy{
		lddp.Sequential, lddp.Parallel, lddp.Tiled, lddp.Hetero, lddp.SimCPU, lddp.SimGPU, lddp.Async,
	} {
		_, err := lddp.Solve(ctx, p, lddp.WithStrategy(s))
		var c *lddp.Canceled
		if !errors.As(err, &c) {
			t.Errorf("strategy %s: error %v is not *Canceled", s, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("strategy %s: error %v does not unwrap to context.Canceled", s, err)
		}
	}
}

// TestMetricsCountersMatchKnownTotals solves a horizontal-pattern problem
// with a fixed split and checks the collector's counters against the
// analytically known front and transfer totals.
func TestMetricsCountersMatchKnownTotals(t *testing.T) {
	const rows, cols, tShare = 32, 64, 16
	p := testProblem(lddp.DepNW|lddp.DepN|lddp.DepNE, rows, cols) // two-way horizontal
	metrics := &lddp.Metrics{}
	res, err := lddp.Solve(context.Background(), p,
		lddp.WithStrategy(lddp.Hetero),
		lddp.WithTSwitch(0), lddp.WithTShare(tShare),
		lddp.WithCollector(metrics))
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != lddp.Horizontal {
		t.Fatalf("executed %s, want Horizontal", res.Executed)
	}
	snap := metrics.Snapshot()

	// Every row is one front of cols cells.
	if snap.TotalFronts != rows {
		t.Errorf("TotalFronts = %d, want %d", snap.TotalFronts, rows)
	}
	if snap.TotalCells != rows*cols {
		t.Errorf("TotalCells = %d, want %d", snap.TotalCells, rows*cols)
	}
	if snap.Fronts != rows {
		t.Errorf("Fronts = %d, want %d", snap.Fronts, rows)
	}

	// The horizontal strategy is single-phase (Table II row "horizontal"):
	// exactly one compute phase label ("p1").
	if len(snap.Phases) != 1 {
		t.Errorf("phases = %+v, want exactly one", snap.Phases)
	}

	// Two-way boundary exchange: one H2D and one D2H cell per row.
	tr := snap.Transfers
	if tr.BoundaryH2D.Count != rows || tr.BoundaryH2D.Cells != rows {
		t.Errorf("BoundaryH2D = %+v, want %d single-cell transfers", tr.BoundaryH2D, rows)
	}
	if tr.BoundaryD2H.Count != rows || tr.BoundaryD2H.Cells != rows {
		t.Errorf("BoundaryD2H = %+v, want %d single-cell transfers", tr.BoundaryD2H, rows)
	}
	if wantBytes := int64(rows * 8); tr.BoundaryH2D.Bytes != wantBytes || tr.BoundaryD2H.Bytes != wantBytes {
		t.Errorf("boundary bytes h2d=%d d2h=%d, want %d each", tr.BoundaryH2D.Bytes, tr.BoundaryD2H.Bytes, wantBytes)
	}
	// One bulk result extraction of the GPU's final-row share; no input
	// upload (InputBytes is zero).
	if tr.BulkH2D.Count != 0 {
		t.Errorf("BulkH2D = %+v, want none", tr.BulkH2D)
	}
	if wantBytes := int64((cols - tShare) * 8); tr.BulkD2H.Count != 1 || tr.BulkD2H.Bytes != wantBytes {
		t.Errorf("BulkD2H = %+v, want one transfer of %d bytes", tr.BulkD2H, wantBytes)
	}

	if snap.Solves != 1 || snap.Errors != 0 {
		t.Errorf("Solves/Errors = %d/%d, want 1/0", snap.Solves, snap.Errors)
	}
}

// TestMetricsPhaseCountsMatchTableII checks the phase structure the
// collector reports matches the paper's Table-II strategies: three phases
// for anti-diagonal and knight-move, one for horizontal.
func TestMetricsPhaseCountsMatchTableII(t *testing.T) {
	cases := []struct {
		name   string
		mask   lddp.DepMask
		phases int
		opts   []lddp.Option
	}{
		{"anti-diagonal", lddp.DepW | lddp.DepN, 3, nil},
		{"horizontal", lddp.DepNW | lddp.DepN, 1, nil},
		{"knight-move", lddp.DepW | lddp.DepNE, 3, nil},
		{"inverted-l", lddp.DepNW, 2, []lddp.Option{lddp.WithPreferInvertedL()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			metrics := &lddp.Metrics{}
			opts := append([]lddp.Option{
				lddp.WithStrategy(lddp.Hetero),
				lddp.WithTSwitch(8), lddp.WithTShare(4),
				lddp.WithCollector(metrics),
			}, tc.opts...)
			if _, err := lddp.Solve(context.Background(), testProblem(tc.mask, 64, 64), opts...); err != nil {
				t.Fatal(err)
			}
			snap := metrics.Snapshot()
			if len(snap.Phases) != tc.phases {
				names := make([]string, 0, len(snap.Phases))
				for _, ph := range snap.Phases {
					names = append(names, ph.Name)
				}
				t.Errorf("phases %v, want %d", names, tc.phases)
			}
		})
	}
}

// TestMetricsWorkerStats checks the pool reports one entry per worker and
// that chunk/cell counts add up.
func TestMetricsWorkerStats(t *testing.T) {
	const rows, cols, workers = 128, 128, 4
	metrics := &lddp.Metrics{}
	_, err := lddp.Solve(context.Background(), testProblem(lddp.DepW|lddp.DepN, rows, cols),
		lddp.WithWorkers(workers), lddp.WithChunk(32), lddp.WithCollector(metrics))
	if err != nil {
		t.Fatal(err)
	}
	snap := metrics.Snapshot()
	if len(snap.Workers) != workers {
		t.Fatalf("worker stats for %d workers, want %d", len(snap.Workers), workers)
	}
	var cells int64
	for _, w := range snap.Workers {
		cells += w.Cells
		if w.Utilization < 0 || w.Utilization > 1 {
			t.Errorf("worker %d utilization %f out of [0,1]", w.Worker, w.Utilization)
		}
	}
	// The workers' chunk cells plus the serial prefix/suffix fronts (run
	// inline, not attributed to workers) cover the table.
	if cells <= 0 || cells > rows*cols {
		t.Errorf("workers computed %d cells, want within (0, %d]", cells, rows*cols)
	}
}

// TestMetricsJSONRoundTrip checks the snapshot marshals to JSON with the
// documented field names.
func TestMetricsJSONRoundTrip(t *testing.T) {
	metrics := &lddp.Metrics{}
	if _, err := lddp.Solve(context.Background(), testProblem(lddp.DepW|lddp.DepN, 32, 32),
		lddp.WithStrategy(lddp.Hetero), lddp.WithCollector(metrics)); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"solver", "phases", "front_sizes", "worker_stats", "transfers", "fronts"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("marshaled metrics missing %q: %s", key, data)
		}
	}
}
