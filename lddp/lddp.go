// Package lddp is the public facade of the LDDP-Plus framework: one entry
// point, Solve, that runs any local-dependency dynamic-programming problem
// through the framework's executors — sequential reference, native
// worker-pool runtime, cache-tiled multicore baseline, the paper's
// heterogeneous CPU+GPU strategies on a simulated platform, and the
// multi-accelerator extension — selected and configured with functional
// options.
//
// The package re-exports every type needed to define a problem and consume
// a result, so importers never reach into the internal packages:
//
//	p := &lddp.Problem[int32]{
//		Name: "lcs", Rows: n, Cols: m,
//		Deps: lddp.DepW | lddp.DepNW | lddp.DepN,
//		F:    func(i, j int, nb lddp.Neighbors[int32]) int32 { ... },
//	}
//	res, err := lddp.Solve(context.Background(), p,
//		lddp.WithStrategy(lddp.Hetero), lddp.WithPlatform("Hetero-High"))
//
// Solves honor the context: cancellation is observed at wavefront
// granularity on every executor and surfaces as a *Canceled error wrapping
// context.Cause. Passing WithCollector (e.g. a *Metrics) instruments the
// solve with phase wall times, front-size and worker-utilization counters,
// and simulated transfer volumes; without it instrumentation costs nothing.
package lddp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/hetsim"
	"repro/internal/table"
	"repro/internal/trace"
)

// Problem is a complete 2-D LDDP problem instance (alias of the internal
// core type, so values are interchangeable with the internal API).
type Problem[T any] = core.Problem[T]

// Problem3 is a 3-D LDDP problem instance.
type Problem3[T any] = core.Problem3[T]

// Neighbors carries the resolved contributing-neighbour values for one
// evaluation of the recurrence.
type Neighbors[T any] = core.Neighbors[T]

// CellFunc is the user-supplied recurrence.
type CellFunc[T any] = core.CellFunc[T]

// BoundaryFunc resolves out-of-table neighbour reads.
type BoundaryFunc[T any] = core.BoundaryFunc[T]

// Grid is the computed DP table.
type Grid[T any] = table.Grid[T]

// Grid3 is the computed 3-D DP table.
type Grid3[T any] = table.Grid3[T]

// DepMask is a contributing set: a bit set over the four representative
// neighbours W, NW, N, NE (paper §II).
type DepMask = core.DepMask

// Contributing-set bits.
const (
	DepW  = core.DepW
	DepNW = core.DepNW
	DepN  = core.DepN
	DepNE = core.DepNE
)

// Pattern is a Table-I dependency pattern.
type Pattern = core.Pattern

// The six Table-I patterns.
const (
	AntiDiagonal = core.AntiDiagonal
	Horizontal   = core.Horizontal
	InvertedL    = core.InvertedL
	KnightMove   = core.KnightMove
	Vertical     = core.Vertical
	MInvertedL   = core.MInvertedL
)

// TransferKind is a Table-II per-iteration transfer requirement.
type TransferKind = core.TransferKind

// The Table-II transfer kinds.
const (
	TransferNone   = core.TransferNone
	TransferOneWay = core.TransferOneWay
	TransferTwoWay = core.TransferTwoWay
)

// Reduction is the symmetry transform applied before execution.
type Reduction = core.Reduction

// Canceled is the error returned when a solve observes context
// cancellation; it records the executor and the wavefront reached, and
// unwraps to context.Cause of the solve context.
type Canceled = core.Canceled

// Collector receives runtime observability events; see core.Collector for
// the event contract. A nil Collector disables instrumentation at zero
// overhead.
type Collector = core.Collector

// SolveInfo describes a starting solve to a Collector.
type SolveInfo = core.SolveInfo

// WorkerStats reports one pool worker's utilization to a Collector.
type WorkerStats = core.WorkerStats

// TransferStats reports one simulated transfer to a Collector.
type TransferStats = core.TransferStats

// Tracer is the per-worker ring-buffer event recorder; attach one with
// WithTracer to capture timestamped runtime events (front begin/end,
// chunk claims, barrier waits, lookahead handoffs, simulated transfers).
// Like Collector, a nil Tracer disables tracing at zero overhead. Export
// a finished trace with WriteTrace (Chrome/Perfetto JSON) or
// WriteTraceSummary (plain text); the lddptrace command analyzes the
// JSON offline.
type Tracer = trace.Recorder

// TraceEvent is one recorded runtime event.
type TraceEvent = trace.Event

// TraceMeta describes the solve a trace belongs to.
type TraceMeta = trace.Meta

// TraceReport is the analyzed view of a trace: per-worker utilization
// timelines, barrier-stall breakdown, and the critical path through the
// front DAG.
type TraceReport = trace.Report

// NewTracer returns a Tracer with the default per-worker ring capacity
// (trace.DefaultLaneCap events per lane). Rings overwrite their oldest
// events when full; use NewTracerCap for bigger windows.
func NewTracer() *Tracer { return trace.NewRecorder(0) }

// NewTracerCap returns a Tracer whose per-worker rings hold laneCap
// events each (rounded up to a power of two; <= 0 selects the default).
func NewTracerCap(laneCap int) *Tracer { return trace.NewRecorder(laneCap) }

// WriteTrace writes the recorded events as Chrome trace-event JSON,
// loadable in ui.perfetto.dev or chrome://tracing. Call only after the
// solve has returned.
func WriteTrace(w io.Writer, t *Tracer) error { return trace.WriteChrome(w, t) }

// WriteTraceSummary writes the analyzed trace as a plain-text summary:
// per-worker utilization with ASCII timelines, barrier-stall breakdown,
// and the critical-path decomposition.
func WriteTraceSummary(w io.Writer, t *Tracer) error {
	return trace.WriteSummary(w, AnalyzeTrace(t, 0))
}

// AnalyzeTrace computes the analyzed report of a recorded trace;
// buckets sizes the utilization timeline (<= 0 selects 60).
func AnalyzeTrace(t *Tracer, buckets int) *TraceReport {
	meta := t.Meta()
	meta.Dropped = t.Dropped()
	return trace.Analyze(meta, t.Events(), buckets)
}

// Timeline is the resolved schedule of a simulated solve.
type Timeline = hetsim.Timeline

// Platform is a calibrated CPU+GPU node model for the simulated executors.
type Platform = hetsim.Platform

// Accelerator pairs a device model with a display name for the
// multi-accelerator strategy.
type Accelerator = core.Accelerator

// Classify returns the Table-I pattern of a contributing set.
func Classify(m DepMask) Pattern { return core.Classify(m) }

// ParseDepMask parses a contributing set like "{W,NW}" or "w,nw"
// (case-insensitive), the inverse of DepMask.String.
func ParseDepMask(s string) (DepMask, error) { return core.ParseDepMask(s) }

// AllDepMasks enumerates the 15 valid contributing sets.
func AllDepMasks() []DepMask { return core.AllDepMasks() }

// TransferNeed returns the Table-II transfer requirement of a contributing
// set.
func TransferNeed(m DepMask) TransferKind { return core.TransferNeed(m) }

// PlatformByName resolves a calibrated platform preset by exact name:
// "Hetero-High", "Hetero-Low", "Hetero-Phi" or "Hetero-Modern".
func PlatformByName(name string) (*Platform, error) { return hetsim.PlatformByName(name) }

// AcceleratorByName resolves the accelerator models usable with
// WithAccelerators: "k20", "gt650m" and "phi".
func AcceleratorByName(name string) (Accelerator, error) {
	switch name {
	case "k20":
		return Accelerator{Name: name, Model: hetsim.HeteroHigh().GPU}, nil
	case "gt650m":
		return Accelerator{Name: name, Model: hetsim.HeteroLow().GPU}, nil
	case "phi":
		return Accelerator{Name: name, Model: hetsim.HeteroPhi().GPU}, nil
	default:
		return Accelerator{}, fmt.Errorf("lddp: unknown accelerator %q (want k20, gt650m or phi)", name)
	}
}

// DefaultTile returns the largest tile size whose block still fits a
// typical per-core L2 slice; the default for WithTile-less tiled solves.
func DefaultTile(bytesPerCell int) int { return core.DefaultTile(bytesPerCell) }
