package lddp_test

import (
	"bytes"
	"context"
	"expvar"
	"strings"
	"testing"

	"repro/lddp"
)

func TestWithTracerRecordsParallelSolve(t *testing.T) {
	tr := lddp.NewTracer()
	p := testProblem(lddp.DepW|lddp.DepN, 64, 64)
	if _, err := lddp.Solve(context.Background(), p,
		lddp.WithWorkers(4), lddp.WithChunk(16), lddp.WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("tracer recorded no events")
	}

	var buf bytes.Buffer
	if err := lddp.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Error("WriteTrace output is not a Chrome trace document")
	}

	rep := lddp.AnalyzeTrace(tr, 0)
	if rep.Events != len(events) {
		t.Errorf("report covers %d events, tracer holds %d", rep.Events, len(events))
	}
	if rep.Meta.Solver != "pool" {
		t.Errorf("report solver = %q, want pool", rep.Meta.Solver)
	}

	buf.Reset()
	if err := lddp.WriteTraceSummary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "solver=pool") {
		t.Errorf("summary = %q", buf.String())
	}
}

func TestWithTracerRecordsSimSolve(t *testing.T) {
	tr := lddp.NewTracerCap(1 << 12)
	p := testProblem(lddp.DepW|lddp.DepN, 64, 64)
	if _, err := lddp.Solve(context.Background(), p,
		lddp.WithStrategy(lddp.Hetero), lddp.WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	rep := lddp.AnalyzeTrace(tr, 0)
	if rep.Meta.Clock != "sim" {
		t.Errorf("sim trace clock = %q, want sim", rep.Meta.Clock)
	}
	if rep.Events == 0 {
		t.Error("sim trace has no imported events")
	}
}

func TestPublishExpvarDuplicate(t *testing.T) {
	m := &lddp.Metrics{}
	const name = "lddp_test_publish_expvar_duplicate"
	if err := m.PublishExpvar(name); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	if expvar.Get(name) == nil {
		t.Fatal("first publish did not register the name")
	}
	// A second publish of the same name must report an error, not panic
	// (expvar.Publish would panic here).
	if err := m.PublishExpvar(name); err == nil {
		t.Fatal("duplicate publish returned nil error")
	}
	other := &lddp.Metrics{}
	if err := other.PublishExpvar(name); err == nil {
		t.Fatal("duplicate publish from another collector returned nil error")
	}
	if err := other.PublishExpvar(name + "_second"); err != nil {
		t.Fatalf("fresh name: %v", err)
	}
}
