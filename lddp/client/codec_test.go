package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestEncodeRequestJSONDefault: the default codec sends a JSON document
// with JSON headers.
func TestEncodeRequestJSONDefault(t *testing.T) {
	var gotCT, gotAccept string
	var gotBody []byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotCT = r.Header.Get("Content-Type")
		gotAccept = r.Header.Get("Accept")
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		gotBody = buf.Bytes()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(SolveResponse{ID: 1, Status: "done", Digest: "feed"})
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Solve(context.Background(), &SolveRequest{Rows: 4, Cols: 4}); err != nil {
		t.Fatal(err)
	}
	if gotCT != "application/json" || gotAccept != "application/json" {
		t.Errorf("headers Content-Type=%q Accept=%q, want application/json for both", gotCT, gotAccept)
	}
	var req SolveRequest
	if err := json.Unmarshal(gotBody, &req); err != nil || req.Rows != 4 {
		t.Errorf("body is not the JSON request: %v (%q)", err, gotBody)
	}
}

// TestWithCacheControlHeader: the option attaches Cache-Control to
// every solve request.
func TestWithCacheControlHeader(t *testing.T) {
	var got string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get("Cache-Control")
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(SolveResponse{ID: 1, Status: "done", Digest: "feed"})
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 1}), WithCacheControl("no-store"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Solve(context.Background(), &SolveRequest{Rows: 4, Cols: 4}); err != nil {
		t.Fatal(err)
	}
	if got != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", got)
	}
}

// TestBinaryCodecRoundTrip: a binary-codec client frames the request
// (inline cells in the cell section, not the header), advertises both
// media types, and decodes a framed response back into row slices.
func TestBinaryCodecRoundTrip(t *testing.T) {
	inline := [][]int64{{1, 2, 3}, {4, 5, 6}}
	result := []int64{10, 11, 12, 13, 14, 15}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != wire.MediaType {
			t.Errorf("request Content-Type = %q, want %q", ct, wire.MediaType)
		}
		if accept := r.Header.Get("Accept"); accept != wire.MediaType+", application/json" {
			t.Errorf("request Accept = %q", accept)
		}
		d := wire.NewDecoder(r.Body)
		hdr, err := d.Header()
		if err != nil {
			t.Errorf("decoding request frame: %v", err)
			return
		}
		var req SolveRequest
		if err := json.Unmarshal(hdr, &req); err != nil {
			t.Errorf("request header: %v", err)
			return
		}
		if req.Workload.Cells != nil {
			t.Errorf("frame header still carries inline cells")
		}
		cells, err := d.Cells(nil)
		if err != nil {
			t.Errorf("request cells: %v", err)
			return
		}
		if err := d.Close(); err != nil {
			t.Errorf("request digest: %v", err)
			return
		}
		if want := []int64{1, 2, 3, 4, 5, 6}; len(cells) != len(want) {
			t.Errorf("request cells = %v, want %v", cells, want)
		} else {
			for i := range want {
				if cells[i] != want[i] {
					t.Errorf("request cell %d = %d, want %d", i, cells[i], want[i])
				}
			}
		}

		w.Header().Set("Content-Type", wire.MediaType)
		enc := wire.NewEncoder(w)
		enc.Header(SolveResponse{ID: 7, Status: "done", Rows: 2, Cols: 3, Digest: "feed"})
		enc.Cells(result)
		if err := enc.Close(); err != nil {
			t.Errorf("encoding response: %v", err)
		}
	}))
	defer ts.Close()

	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 1}), WithCodec(CodecBinary))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Solve(context.Background(), &SolveRequest{
		Rows: 2, Cols: 3, ReturnCells: true,
		Workload: WorkloadSpec{Kind: KindCost, Cells: inline},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 7 || resp.Digest != "feed" {
		t.Errorf("response = %+v", resp)
	}
	if len(resp.Cells) != 2 || len(resp.Cells[0]) != 3 {
		t.Fatalf("response cells shape %v, want 2x3", resp.Cells)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if resp.Cells[i][j] != result[i*3+j] {
				t.Errorf("cell (%d,%d) = %d, want %d", i, j, resp.Cells[i][j], result[i*3+j])
			}
		}
	}
	// The caller owns the decoded cells: mutating the request's inline
	// payload afterwards must be safe (no aliasing of pooled scratch).
	inline[0][0] = 99
}

// TestBinaryCodecJSONResponseFallback: a binary-codec client still
// decodes a JSON 200 (a server that negotiates down) and JSON error
// bodies.
func TestBinaryCodecJSONResponseFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(SolveResponse{ID: 3, Status: "done", Digest: "beef"})
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 1}), WithCodec(CodecBinary))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Solve(context.Background(), &SolveRequest{Rows: 4, Cols: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 3 || resp.Digest != "beef" {
		t.Errorf("response = %+v", resp)
	}
}

// TestBinaryCodecErrorBodyStaysTyped: non-2xx responses to a binary
// request decode into *APIError exactly like the JSON codec's.
func TestBinaryCodecErrorBodyStaysTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(ErrorBody{Status: "invalid", Error: "bad mask"})
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 3}), WithCodec(CodecBinary))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Solve(context.Background(), &SolveRequest{Rows: 4, Cols: 4})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}

// TestWireVersionMismatchNotRetried: a response frame in an unknown
// version fails with ErrWireVersion after exactly one attempt — the
// mismatch is deterministic, so retrying would resend the same frame.
func TestWireVersionMismatchNotRetried(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", wire.MediaType)
		w.Write([]byte{wire.Version + 1, 0})
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 5}), WithCodec(CodecBinary))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Solve(context.Background(), &SolveRequest{Rows: 4, Cols: 4})
	if !errors.Is(err, ErrWireVersion) {
		t.Fatalf("err = %v, want ErrWireVersion", err)
	}
	if n := hits.Load(); n != 1 {
		t.Errorf("server saw %d attempts, want 1 (version mismatch must not retry)", n)
	}
}

// TestBinaryCodecShapeMismatchRejected: a frame whose cell count does
// not match the header's dimensions is an error, not a mis-sliced table.
func TestBinaryCodecShapeMismatchRejected(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", wire.MediaType)
		enc := wire.NewEncoder(w)
		enc.Header(SolveResponse{ID: 1, Status: "done", Rows: 2, Cols: 3, Digest: "feed"})
		enc.Cells([]int64{1, 2, 3, 4}) // 4 cells for a 2x3 table
		enc.Close()
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 1}), WithCodec(CodecBinary))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Solve(context.Background(), &SolveRequest{Rows: 2, Cols: 3, ReturnCells: true}); err == nil {
		t.Fatal("shape-mismatched frame decoded without error")
	}
}

// TestEncodeRequestReusableAcrossRetries: the pooled encode buffer must
// survive every retry attempt — the second POST needs the same bytes.
func TestEncodeRequestReusableAcrossRetries(t *testing.T) {
	var bodies [][]byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		bodies = append(bodies, append([]byte(nil), buf.Bytes()...))
		w.Header().Set("Content-Type", "application/json")
		if len(bodies) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(ErrorBody{Status: "rejected", Error: "busy", RetryAfterMS: 1})
			return
		}
		json.NewEncoder(w).Encode(SolveResponse{ID: 2, Status: "done", Digest: "feed"})
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 2}), WithCodec(CodecBinary))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	resp, err := c.Solve(context.Background(), &SolveRequest{
		Rows: 2, Cols: 2,
		Workload: WorkloadSpec{Kind: KindCost, Cells: [][]int64{{1, 2}, {3, 4}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 2 {
		t.Errorf("response = %+v", resp)
	}
	if len(bodies) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(bodies))
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("retry resent a different body: %d vs %d bytes", len(bodies[0]), len(bodies[1]))
	}
	if len(bodies[0]) == 0 || bodies[0][0] != wire.Version {
		t.Errorf("body is not a wire frame: % x", bodies[0][:min(8, len(bodies[0]))])
	}
}

// TestPooledBodyRefcount pins the encode-buffer lifecycle: the buffer
// may only return to the pool once Solve's own reference AND every
// reader handed to the transport are released — a reader can outlive
// Do on context cancellation while the write loop drains.
func TestPooledBodyRefcount(t *testing.T) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteString("frame bytes")
	b := newPooledBody(buf)
	r1 := b.reader()
	r2 := b.reader() // e.g. a GetBody replay
	if got := b.refs.Load(); got != 3 {
		t.Fatalf("refs = %d after two readers, want 3", got)
	}
	var p1 bytes.Buffer
	if _, err := p1.ReadFrom(r1); err != nil || p1.String() != "frame bytes" {
		t.Fatalf("reader 1 read %q (%v)", p1.String(), err)
	}
	r1.Close()
	r1.Close() // transport and Client.Do may both close; must not double-release
	if got := b.refs.Load(); got != 2 {
		t.Fatalf("refs = %d after closing reader 1, want 2", got)
	}
	b.release() // Solve returns while reader 2 is still in flight
	if got := b.refs.Load(); got != 1 {
		t.Fatalf("refs = %d after Solve's release, want 1: buffer must stay out of the pool", got)
	}
	var p2 bytes.Buffer
	if _, err := p2.ReadFrom(r2); err != nil || p2.String() != "frame bytes" {
		t.Fatalf("reader 2 read %q after Solve released (%v)", p2.String(), err)
	}
	r2.Close()
	if got := b.refs.Load(); got != 0 {
		t.Fatalf("refs = %d after final close, want 0", got)
	}
}

// TestSolveBodyContentLength: handing the transport a custom ReadCloser
// must not regress the request to chunked encoding — the server should
// still see an exact Content-Length.
func TestSolveBodyContentLength(t *testing.T) {
	var gotLen int64
	var gotBody int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotLen = r.ContentLength
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		gotBody = buf.Len()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(SolveResponse{ID: 1, Status: "done", Digest: "feed"})
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Solve(context.Background(), &SolveRequest{Rows: 4, Cols: 4}); err != nil {
		t.Fatal(err)
	}
	if gotLen <= 0 || int64(gotBody) != gotLen {
		t.Errorf("server saw Content-Length %d for a %d-byte body", gotLen, gotBody)
	}
}
