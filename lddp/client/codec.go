package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// Codec selects the solve-request wire encoding.
type Codec int

const (
	// CodecJSON (the default) speaks the HTTP/JSON protocol of DESIGN.md
	// §10: debuggable with curl, accepted by every lddpd.
	CodecJSON Codec = iota
	// CodecBinary speaks the length-prefixed binary frame format of
	// DESIGN.md §11: requests and responses carry cell payloads as raw
	// little-endian words with an FNV-1a digest trailer. The client
	// still advertises JSON as an acceptable fallback, so a server that
	// answers JSON (error bodies always are) is decoded transparently —
	// but the request body itself is a frame, which only a
	// binary-capable lddpd understands.
	CodecBinary
)

// ErrWireVersion: the server answered with a binary frame version this
// client does not speak. Not retryable — the same frame would come back.
var ErrWireVersion = errors.New("lddp client: unsupported binary wire version from server")

// WithCodec selects the request/response encoding (default CodecJSON).
func WithCodec(c Codec) Option {
	return func(cl *Client) { cl.codec = c }
}

// WithCacheControl attaches a Cache-Control header to every solve
// request: "no-cache" skips the server's result-cache lookup (the solve
// still runs and is stored), "no-store" skips both — what a load driver
// or benchmark wants, since a cache hit would measure the lookup, not
// the solve.
func WithCacheControl(v string) Option {
	return func(cl *Client) { cl.cacheControl = v }
}

// encodeBufPool holds request-encode scratch: one buffer per in-flight
// Solve, returned when the call (including retries, which re-read the
// same bytes) finishes.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeRequest renders req under the client's codec into a pooled
// buffer; the caller must hand the buffer back via putEncodeBuf once no
// retry can re-read it.
func (c *Client) encodeRequest(req *SolveRequest) (*bytes.Buffer, error) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if c.codec != CodecBinary {
		if err := json.NewEncoder(buf).Encode(req); err != nil {
			encodeBufPool.Put(buf)
			return nil, fmt.Errorf("lddp client: encoding request: %w", err)
		}
		return buf, nil
	}
	// Binary frame: the header is the request document minus the inline
	// cells, which travel flattened in the cell section.
	hdr := *req
	hdr.Workload.Cells = nil
	enc := wire.NewEncoder(buf)
	err := enc.Header(&hdr)
	if err == nil && len(req.Workload.Cells) > 0 {
		n := 0
		for _, row := range req.Workload.Cells {
			n += len(row)
		}
		flat := wire.GetCells(n)
		for _, row := range req.Workload.Cells {
			flat = append(flat, row...)
		}
		err = enc.Cells(flat)
		wire.PutCells(flat)
	}
	if err != nil {
		enc.Abort()
		encodeBufPool.Put(buf)
		return nil, fmt.Errorf("lddp client: encoding request frame: %w", err)
	}
	if err := enc.Close(); err != nil {
		encodeBufPool.Put(buf)
		return nil, fmt.Errorf("lddp client: encoding request frame: %w", err)
	}
	return buf, nil
}

func putEncodeBuf(buf *bytes.Buffer) {
	// Drop outsized buffers instead of pinning megabytes in the pool.
	if buf.Cap() <= 1<<20 {
		encodeBufPool.Put(buf)
	}
}

// pooledBody hands out request-body readers over one pooled encode
// buffer. On context cancellation http.Client.Do can return while the
// transport's write loop is still reading an attempt's body, so the
// buffer is refcounted — one reference held by Solve for the retry
// loop, plus one per reader handed to the transport (which closes
// every request body it is given, even on error paths) — and only the
// final release returns it to the pool. Without this, a reused buffer
// could be overwritten under an in-flight write.
type pooledBody struct {
	buf  *bytes.Buffer
	data []byte
	refs atomic.Int32
}

func newPooledBody(buf *bytes.Buffer) *pooledBody {
	b := &pooledBody{buf: buf, data: buf.Bytes()}
	b.refs.Store(1) // Solve's own reference, dropped by release
	return b
}

func (b *pooledBody) len() int { return len(b.data) }

// release drops one reference; the last one returns the buffer to the
// pool.
func (b *pooledBody) release() {
	if b.refs.Add(-1) == 0 {
		putEncodeBuf(b.buf)
	}
}

// reader hands out a fresh ReadCloser over the body, holding one
// reference until Close (idempotent — the transport and Client.Do can
// both close a body). One allocation: the Reader is embedded by value.
func (b *pooledBody) reader() io.ReadCloser {
	b.refs.Add(1)
	r := &pooledBodyReader{body: b}
	r.Reset(b.data)
	return r
}

type pooledBodyReader struct {
	bytes.Reader
	body   *pooledBody
	closed atomic.Bool
}

func (r *pooledBodyReader) Close() error {
	if r.closed.CompareAndSwap(false, true) {
		r.body.release()
	}
	return nil
}

// contentType returns the request Content-Type for the codec.
func (c *Client) contentType() string {
	if c.codec == CodecBinary {
		return wire.MediaType
	}
	return "application/json"
}

// accept returns the Accept header: a binary client offers the frame
// format first but keeps JSON acceptable, so servers predating the
// binary codec still interoperate on responses.
func (c *Client) accept() string {
	if c.codec == CodecBinary {
		return wire.MediaType + ", application/json"
	}
	return "application/json"
}

// responseIsBinary reports whether a 200 response body is a wire frame,
// by Content-Type media type (parameters and case ignored).
func responseIsBinary(hresp *http.Response) bool {
	ct := hresp.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.EqualFold(strings.TrimSpace(ct), wire.MediaType)
}

// decodeBinaryResponse decodes a 200 wire-frame response body. The
// body is capped at the same 64MB as the JSON path — the decoder's own
// header/cell caps bound each section, and the outer limit bounds total
// client memory even against a server that streams garbage framing.
func decodeBinaryResponse(hresp *http.Response) (*SolveResponse, error) {
	d := wire.NewDecoder(io.LimitReader(hresp.Body, 64<<20))
	defer d.Release()
	hdr, err := d.Header()
	if err != nil {
		if errors.Is(err, wire.ErrVersion) {
			return nil, fmt.Errorf("%w: %v", ErrWireVersion, err)
		}
		return nil, fmt.Errorf("lddp client: decoding response frame: %w", err)
	}
	var out SolveResponse
	if err := json.Unmarshal(hdr, &out); err != nil {
		return nil, fmt.Errorf("lddp client: decoding response header: %w", err)
	}
	flat, err := d.Cells(nil)
	if err != nil {
		return nil, fmt.Errorf("lddp client: decoding response cells: %w", err)
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("lddp client: verifying response frame: %w", err)
	}
	if len(flat) > 0 {
		if out.Rows <= 0 || out.Cols <= 0 || out.Rows*out.Cols != len(flat) {
			return nil, fmt.Errorf("lddp client: response frame carries %d cells for a %dx%d table", len(flat), out.Rows, out.Cols)
		}
		// One flat backing plus row headers: two allocations for the
		// whole table, owned by the caller.
		out.Cells = make([][]int64, out.Rows)
		for i := range out.Cells {
			out.Cells[i] = flat[i*out.Cols : (i+1)*out.Cols]
		}
	}
	return &out, nil
}
