package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedServer answers /v1/solve from a fixed status script, then 200s.
type scriptedServer struct {
	ts     *httptest.Server
	script []scriptedStep
	hits   atomic.Int64
}

type scriptedStep struct {
	status       int
	retryAfterMS int64
	headerOnly   bool // Retry-After header without a JSON body hint
}

func newScriptedServer(t *testing.T, script ...scriptedStep) *scriptedServer {
	t.Helper()
	s := &scriptedServer{script: script}
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(s.hits.Add(1)) - 1
		if n >= len(s.script) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(SolveResponse{ID: int64(n + 1), Status: "done", Digest: "feed"})
			return
		}
		step := s.script[n]
		if step.retryAfterMS > 0 {
			w.Header().Set("Retry-After", "1")
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(step.status)
		body := ErrorBody{Status: "scripted", Error: "scripted failure"}
		if step.retryAfterMS > 0 && !step.headerOnly {
			body.RetryAfterMS = step.retryAfterMS
		}
		json.NewEncoder(w).Encode(body)
	}))
	t.Cleanup(s.ts.Close)
	return s
}

// newTestClient builds a client with deterministic jitter (always the
// lower edge) and a sleep recorder instead of real time.
func newTestClient(t *testing.T, url string, p RetryPolicy, slept *[]time.Duration) *Client {
	t.Helper()
	c, err := New(url, WithRetry(p), WithJitterSource(func() float64 { return 0 }))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return ctx.Err()
	}
	return c
}

// TestSolveRetriesUntilSuccess: two 429s then a 200; the client must make
// three attempts, honoring the server's Retry-After over its own backoff.
func TestSolveRetriesUntilSuccess(t *testing.T) {
	srv := newScriptedServer(t,
		scriptedStep{status: 429, retryAfterMS: 7},
		scriptedStep{status: 503},
	)
	var slept []time.Duration
	c := newTestClient(t, srv.ts.URL, RetryPolicy{MaxAttempts: 4, BaseDelay: 80 * time.Millisecond, MaxDelay: time.Second}, &slept)
	resp, err := c.Solve(context.Background(), &SolveRequest{Rows: 4, Cols: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "done" {
		t.Errorf("response %+v, want done", resp)
	}
	if got := srv.hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	// Sleep 1 follows the 429: the body's 7 ms Retry-After, verbatim.
	// Sleep 2 follows the 503 without a hint: computed backoff, second
	// retry, rnd=0 -> (80ms << 1)/2 = 80ms.
	want := []time.Duration{7 * time.Millisecond, 80 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("sleeps = %v, want %v", slept, want)
	}
}

// TestSolveRetryAfterHeaderFallback: a 429 whose only hint is the coarse
// Retry-After header (whole seconds) — the client must still honor it.
func TestSolveRetryAfterHeaderFallback(t *testing.T) {
	srv := newScriptedServer(t, scriptedStep{status: 429, retryAfterMS: 1000, headerOnly: true})
	var slept []time.Duration
	c := newTestClient(t, srv.ts.URL, RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond}, &slept)
	if _, err := c.Solve(context.Background(), &SolveRequest{Rows: 4, Cols: 4}); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != time.Second {
		t.Errorf("sleeps = %v, want [1s] from the Retry-After header", slept)
	}
}

// TestSolveBudgetExhaustionReturnsLastTypedError: every attempt 429s;
// after MaxAttempts the client must hand back the final *APIError, still
// matching ErrOverloaded.
func TestSolveBudgetExhaustionReturnsLastTypedError(t *testing.T) {
	srv := newScriptedServer(t,
		scriptedStep{status: 429, retryAfterMS: 3},
		scriptedStep{status: 429, retryAfterMS: 3},
		scriptedStep{status: 429, retryAfterMS: 3},
	)
	var slept []time.Duration
	c := newTestClient(t, srv.ts.URL, RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond}, &slept)
	_, err := c.Solve(context.Background(), &SolveRequest{Rows: 4, Cols: 4})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("error = %v, want ErrOverloaded", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %T does not carry *APIError", err)
	}
	if apiErr.HTTPStatus != 429 || apiErr.Status != "scripted" || apiErr.RetryAfter != 3*time.Millisecond {
		t.Errorf("last typed error = %+v, want the final 429 with its hint", apiErr)
	}
	if got := srv.hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want exactly MaxAttempts=3", got)
	}
	if len(slept) != 2 {
		t.Errorf("%d sleeps for 3 attempts, want 2", len(slept))
	}
}

// TestSolveNonRetryableReturnsImmediately: a 400 must not be retried.
func TestSolveNonRetryableReturnsImmediately(t *testing.T) {
	srv := newScriptedServer(t,
		scriptedStep{status: 400},
		scriptedStep{status: 400},
	)
	var slept []time.Duration
	c := newTestClient(t, srv.ts.URL, RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond}, &slept)
	_, err := c.Solve(context.Background(), &SolveRequest{Rows: 4, Cols: 4})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("error = %v, want ErrInvalid", err)
	}
	if got := srv.hits.Load(); got != 1 {
		t.Errorf("server saw %d attempts for a 400, want 1", got)
	}
	if len(slept) != 0 {
		t.Errorf("client slept %v before a non-retryable error", slept)
	}
}

// TestSolveTimeoutNotRetried: 408 and 499 map to ErrTimeout and are
// terminal — the deadline was the caller's budget, not the client's.
func TestSolveTimeoutNotRetried(t *testing.T) {
	for _, status := range []int{408, 499} {
		srv := newScriptedServer(t, scriptedStep{status: status})
		var slept []time.Duration
		c := newTestClient(t, srv.ts.URL, RetryPolicy{MaxAttempts: 4}, &slept)
		_, err := c.Solve(context.Background(), &SolveRequest{Rows: 4, Cols: 4})
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("status %d: error = %v, want ErrTimeout", status, err)
		}
		if got := srv.hits.Load(); got != 1 {
			t.Errorf("status %d: %d attempts, want 1", status, got)
		}
	}
}

// TestSolveCancelDuringBackoff: a context canceled while the client is
// waiting out a backoff must end the loop with the context's cause.
func TestSolveCancelDuringBackoff(t *testing.T) {
	srv := newScriptedServer(t,
		scriptedStep{status: 429, retryAfterMS: 5},
		scriptedStep{status: 429, retryAfterMS: 5},
	)
	var slept []time.Duration
	c := newTestClient(t, srv.ts.URL, RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond}, &slept)
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // the caller gives up mid-backoff
		return context.Cause(ctx)
	}
	_, err := c.Solve(ctx, &SolveRequest{Rows: 4, Cols: 4})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", err)
	}
	if got := srv.hits.Load(); got != 1 {
		t.Errorf("server saw %d attempts after cancel, want 1", got)
	}
}

// TestNewRejectsBadBase pins the constructor's URL validation.
func TestNewRejectsBadBase(t *testing.T) {
	for _, base := range []string{"", "localhost:8080", "ftp://x", "http//x"} {
		if _, err := New(base); err == nil {
			t.Errorf("New(%q) accepted an invalid base URL", base)
		}
	}
	c, err := New("http://localhost:8080/")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.base != "http://localhost:8080" {
		t.Errorf("trailing slash not trimmed: %q", c.base)
	}
}
