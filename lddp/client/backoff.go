package client

import (
	"math"
	"time"
)

// RetryPolicy bounds the client's retry loop. Retries apply only to
// retryable failures: HTTP 429 and 503 (the server's admission pushback)
// and transport errors; 4xx semantic failures and solve timeouts are
// returned immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Values below 1 behave as 1 (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it. Zero selects DefaultRetryPolicy.BaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the computed backoff (a server Retry-After above the
	// cap is honored as sent — the server knows its own drain horizon).
	// Zero selects DefaultRetryPolicy.MaxDelay.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is used by New when WithRetry is not given: four
// total attempts, 50 ms first backoff, 2 s cap.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}

// withDefaults resolves zero fields to the documented defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryPolicy.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryPolicy.MaxDelay
	}
	return p
}

// backoffDelay computes the sleep before retry number attempt (0-based:
// attempt 0 is the delay after the first failed try). A server-provided
// Retry-After takes precedence over the computed backoff, verbatim — the
// server's pushback is better information than the client's guess.
// Otherwise the delay is BaseDelay*2^attempt capped at MaxDelay, with
// equal jitter: uniform in [d/2, d) driven by rnd in [0, 1), so
// synchronized clients decorrelate without ever retrying sooner than half
// the nominal backoff.
func backoffDelay(p RetryPolicy, attempt int, retryAfter time.Duration, rnd float64) time.Duration {
	if retryAfter > 0 {
		return retryAfter
	}
	d := p.MaxDelay
	// Guard the shift: past 62 doublings (or on overflow) the cap rules.
	if attempt < 63 {
		if scaled := p.BaseDelay << uint(attempt); scaled > 0 && scaled < d {
			d = scaled
		}
	}
	half := d / 2
	return half + time.Duration(math.Floor(rnd*float64(d-half)))
}
