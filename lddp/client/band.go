package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/wire"
)

// SolveBand submits one band solve (POST /v1/band/solve) and returns
// the decoded block. Retry semantics match Solve: 429/503 and transport
// errors retry under the client's policy, everything else returns a
// typed error immediately. The fleet coordinator layers node relocation
// on top of this — a SolveBand that exhausts its retry budget against
// one node is the signal to try the next.
func (c *Client) SolveBand(ctx context.Context, req *BandRequest) (*BandResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("lddp client: nil band request")
	}
	buf, err := c.encodeBandRequest(req)
	if err != nil {
		return nil, err
	}
	body := newPooledBody(buf)
	defer body.release()
	var last error
	for attempt := 0; attempt < c.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			var retryAfter time.Duration
			var apiErr *APIError
			if errors.As(last, &apiErr) {
				retryAfter = apiErr.RetryAfter
			}
			d := backoffDelay(c.policy, attempt-1, retryAfter, c.rnd())
			if err := c.sleep(ctx, d); err != nil {
				return nil, err
			}
		}
		resp, err := c.trySolveBand(ctx, body)
		if err == nil {
			return resp, nil
		}
		last = err
		var apiErr *APIError
		if errors.As(err, &apiErr) && !apiErr.retryable() {
			return nil, err
		}
		if errors.Is(err, ErrWireVersion) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, last
		}
	}
	return nil, last
}

// encodeBandRequest renders req under the client's codec into a pooled
// buffer. The binary frame's header is the request document minus the
// halo arrays, which travel as tagged halo sections.
func (c *Client) encodeBandRequest(req *BandRequest) (*bytes.Buffer, error) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if c.codec != CodecBinary {
		if err := json.NewEncoder(buf).Encode(req); err != nil {
			encodeBufPool.Put(buf)
			return nil, fmt.Errorf("lddp client: encoding band request: %w", err)
		}
		return buf, nil
	}
	hdr := *req
	hdr.HaloNorth, hdr.HaloWest, hdr.HaloEast = nil, nil, nil
	enc := wire.NewEncoder(buf)
	err := enc.Header(&hdr)
	if err == nil {
		// Band frames always carry a section list, even an empty one —
		// the server drains it unconditionally.
		err = enc.BeginSections()
	}
	for _, s := range []struct {
		tag   uint64
		cells []int64
	}{
		{wire.SectionNorth, req.HaloNorth},
		{wire.SectionWest, req.HaloWest},
		{wire.SectionEast, req.HaloEast},
	} {
		if err == nil && len(s.cells) > 0 {
			err = enc.Section(s.tag, s.cells)
		}
	}
	if err != nil {
		enc.Abort()
		encodeBufPool.Put(buf)
		return nil, fmt.Errorf("lddp client: encoding band frame: %w", err)
	}
	if err := enc.Close(); err != nil {
		encodeBufPool.Put(buf)
		return nil, fmt.Errorf("lddp client: encoding band frame: %w", err)
	}
	return buf, nil
}

// trySolveBand performs one POST /v1/band/solve round trip.
func (c *Client) trySolveBand(ctx context.Context, body *pooledBody) (*BandResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/band/solve", nil)
	if err != nil {
		return nil, err
	}
	hreq.Body = body.reader()
	hreq.ContentLength = int64(body.len())
	hreq.GetBody = func() (io.ReadCloser, error) { return body.reader(), nil }
	hreq.Header.Set("Content-Type", c.contentType())
	hreq.Header.Set("Accept", c.accept())
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("lddp client: %w", err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(hresp)
	}
	if responseIsBinary(hresp) {
		return decodeBinaryBandResponse(hresp)
	}
	var out BandResponse
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 64<<20)).Decode(&out); err != nil {
		return nil, fmt.Errorf("lddp client: decoding band response: %w", err)
	}
	return &out, nil
}

// decodeBinaryBandResponse decodes a 200 wire-frame band response: the
// header is the BandResponse document and the cell section carries the
// solved block, row-major.
func decodeBinaryBandResponse(hresp *http.Response) (*BandResponse, error) {
	d := wire.NewDecoder(io.LimitReader(hresp.Body, 64<<20))
	defer d.Release()
	hdr, err := d.Header()
	if err != nil {
		if errors.Is(err, wire.ErrVersion) {
			return nil, fmt.Errorf("%w: %v", ErrWireVersion, err)
		}
		return nil, fmt.Errorf("lddp client: decoding band frame: %w", err)
	}
	var out BandResponse
	if err := json.Unmarshal(hdr, &out); err != nil {
		return nil, fmt.Errorf("lddp client: decoding band frame header: %w", err)
	}
	flat, err := d.Cells(nil)
	if err != nil {
		return nil, fmt.Errorf("lddp client: decoding band frame cells: %w", err)
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("lddp client: verifying band frame: %w", err)
	}
	bRows, bCols := out.Row1-out.Row0, out.Col1-out.Col0
	if bRows <= 0 || bCols <= 0 || bRows*bCols != len(flat) {
		return nil, fmt.Errorf("lddp client: band frame carries %d cells for a %dx%d block", len(flat), bRows, bCols)
	}
	out.Cells = make([][]int64, bRows)
	for i := range out.Cells {
		out.Cells[i] = flat[i*bCols : (i+1)*bCols]
	}
	return &out, nil
}
