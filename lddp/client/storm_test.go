package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// A sustained 429 storm: every attempt in the budget is pushed back
// with a fresh Retry-After hint. The jitter-bound and budget-exhaustion
// paths are covered elsewhere; these tests pin the storm path — the
// client must sleep the server's hint verbatim before every retry (its
// own exponential backoff never kicks in while hints keep arriving) and
// end with ErrOverloaded carrying the final hint.

func TestRetryAfterStormHonoredVerbatim(t *testing.T) {
	// Distinct per-response hints so a backoff-derived sleep (which
	// doubles) cannot pass by coincidence.
	hints := []int64{7, 3, 11, 5}
	script := make([]scriptedStep, len(hints))
	for i, ms := range hints {
		script[i] = scriptedStep{status: 429, retryAfterMS: ms}
	}
	srv := newScriptedServer(t, script...)
	var slept []time.Duration
	c := newTestClient(t, srv.ts.URL, RetryPolicy{MaxAttempts: 4, BaseDelay: 80 * time.Millisecond, MaxDelay: time.Second}, &slept)

	_, err := c.Solve(context.Background(), &SolveRequest{Rows: 4, Cols: 4})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("storm outcome = %v, want ErrOverloaded", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("storm error %T carries no *APIError", err)
	}
	if want := time.Duration(hints[3]) * time.Millisecond; apiErr.RetryAfter != want {
		t.Errorf("final error RetryAfter = %v, want the last hint %v", apiErr.RetryAfter, want)
	}
	if got := srv.hits.Load(); got != 4 {
		t.Errorf("server saw %d attempts, want the full budget of 4", got)
	}
	// One sleep per retry, each the preceding response's hint verbatim —
	// no jitter, no doubling, no clamping to BaseDelay.
	want := []time.Duration{7 * time.Millisecond, 3 * time.Millisecond, 11 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("sleeps = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want hint %v verbatim", i, slept[i], want[i])
		}
	}
}

// TestRetryAfterStormClears: the storm ends one attempt before the
// budget does; the client must ride every hint and then succeed.
func TestRetryAfterStormClears(t *testing.T) {
	srv := newScriptedServer(t,
		scriptedStep{status: 429, retryAfterMS: 2},
		scriptedStep{status: 429, retryAfterMS: 9},
		scriptedStep{status: 429, retryAfterMS: 4},
	)
	var slept []time.Duration
	c := newTestClient(t, srv.ts.URL, RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond}, &slept)
	resp, err := c.Solve(context.Background(), &SolveRequest{Rows: 4, Cols: 4})
	if err != nil {
		t.Fatalf("storm that clears within budget must succeed, got %v", err)
	}
	if resp.Status != "done" {
		t.Errorf("response %+v, want done", resp)
	}
	want := []time.Duration{2 * time.Millisecond, 9 * time.Millisecond, 4 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("sleeps = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want hint %v verbatim", i, slept[i], want[i])
		}
	}
}

// storm429Transport fabricates 429+Retry-After responses without a
// network — proving WithTransport is the seam the retry loop sees.
type storm429Transport struct {
	hits atomic.Int64
}

func (tr *storm429Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	tr.hits.Add(1)
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	body, _ := json.Marshal(ErrorBody{Status: "rejected", Error: "storm", RetryAfterMS: 6})
	return &http.Response{
		StatusCode: http.StatusTooManyRequests,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(bytes.NewReader(body)),
		Request:    req,
	}, nil
}

func TestRetryAfterStormThroughInjectedTransport(t *testing.T) {
	tr := &storm429Transport{}
	c, err := New("http://stormhost", WithTransport(tr),
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: 40 * time.Millisecond}),
		WithJitterSource(func() float64 { return 0 }))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	if _, err := c.Solve(context.Background(), &SolveRequest{Rows: 4, Cols: 4}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("storm outcome = %v, want ErrOverloaded", err)
	}
	if got := tr.hits.Load(); got != 3 {
		t.Errorf("injected transport saw %d attempts, want 3", got)
	}
	want := []time.Duration{6 * time.Millisecond, 6 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("sleeps = %v, want %v (hint verbatim each retry)", slept, want)
	}
}
