// Package client is the Go client of the lddpd network solve service
// (cmd/lddpd): typed requests and responses for POST /v1/solve and the
// band-solve peer protocol, context support, and retry with exponential
// backoff + jitter that honors the server's Retry-After pushback. The
// wire protocol is documented in DESIGN.md §10–§12; the wire types
// themselves live in repro/lddp/api (the neutral contract package this
// package and internal/server both depend on) and are re-exported here
// as aliases, so existing importers keep compiling unchanged.
package client

import "repro/lddp/api"

// SolveRequest is the body of POST /v1/solve (alias of api.SolveRequest).
type SolveRequest = api.SolveRequest

// WorkloadSpec selects the server-side problem generator of a solve
// request (alias of api.WorkloadSpec).
type WorkloadSpec = api.WorkloadSpec

// SolveResponse is the 200 body of a completed solve (alias of
// api.SolveResponse).
type SolveResponse = api.SolveResponse

// ErrorBody is the JSON body of every non-2xx solve response (alias of
// api.ErrorBody).
type ErrorBody = api.ErrorBody

// BandRequest is the body of POST /v1/band/solve (alias of
// api.BandRequest).
type BandRequest = api.BandRequest

// BandResponse is the 200 body of a completed band solve (alias of
// api.BandResponse).
type BandResponse = api.BandResponse

// Workload kind names accepted by the server.
const (
	KindMix   = api.KindMix
	KindServe = api.KindServe
	KindCost  = api.KindCost
	KindAlign = api.KindAlign
)

// SolveIDHeader is the response header echoing the scheduler-assigned
// solve ID; see api.SolveIDHeader.
const SolveIDHeader = api.SolveIDHeader
