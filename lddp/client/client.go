package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/lddp"
)

// Sentinel errors matching the server's status mapping; match them with
// errors.Is against any error a Client method returns. The concrete type
// carrying the details is *APIError.
var (
	// ErrOverloaded: HTTP 429 — the in-flight limiter or admission queue
	// refused the solve. Retryable; the server suggests when.
	ErrOverloaded = errors.New("lddp client: server overloaded")
	// ErrUnavailable: HTTP 503 — the server is draining or its scheduler
	// is closed. Retryable against a replica; this instance is going away.
	ErrUnavailable = errors.New("lddp client: server unavailable")
	// ErrTimeout: HTTP 408 (deadline expired server-side) or 499 (the
	// request was abandoned mid-solve). Not retried — the deadline was the
	// caller's budget.
	ErrTimeout = errors.New("lddp client: solve timed out")
	// ErrInvalid: any other 4xx — the request itself is wrong and a retry
	// would fail identically.
	ErrInvalid = errors.New("lddp client: invalid request")
)

// APIError is a non-2xx solve response decoded from the server's
// ErrorBody. It unwraps to the matching sentinel (ErrOverloaded,
// ErrUnavailable, ErrTimeout, ErrInvalid).
type APIError struct {
	// HTTPStatus is the response status code.
	HTTPStatus int
	// Status is the wire status classifier ("rejected", "draining", ...).
	Status string
	// Message is the server's error text.
	Message string
	// SolveID is the scheduler-assigned solve ID, when one was assigned.
	SolveID int64
	// RetryAfter is the server's pushback hint (zero when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("lddp client: server returned %d (%s): %s", e.HTTPStatus, e.Status, e.Message)
}

// Unwrap maps the HTTP status onto the sentinel errors.
func (e *APIError) Unwrap() error {
	switch e.HTTPStatus {
	case http.StatusTooManyRequests:
		return ErrOverloaded
	case http.StatusServiceUnavailable:
		return ErrUnavailable
	case http.StatusRequestTimeout, 499:
		return ErrTimeout
	default:
		if e.HTTPStatus >= 400 && e.HTTPStatus < 500 {
			return ErrInvalid
		}
		return nil
	}
}

// retryable reports whether a retry could succeed: admission pushback
// can clear; everything else returns the same answer again.
func (e *APIError) retryable() bool {
	return e.HTTPStatus == http.StatusTooManyRequests || e.HTTPStatus == http.StatusServiceUnavailable
}

// Client talks to one lddpd server. It is safe for concurrent use; the
// zero value is not usable — construct with New.
type Client struct {
	base         string
	hc           *http.Client
	policy       RetryPolicy
	codec        Codec
	cacheControl string

	ownTransport *http.Transport // closed by Close when the client made it

	jitterMu sync.Mutex
	jitter   func() float64
	sleep    func(context.Context, time.Duration) error
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient supplies the underlying HTTP client (connection pool,
// TLS, proxies). Without it the Client builds its own from a clone of
// http.DefaultTransport, which Close releases.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithTransport supplies the underlying HTTP transport while keeping
// the client's own defaults for everything else — the seam the
// scenario engine (internal/sim) uses to wrap delays, drops and
// truncations around real exchanges. The later of WithTransport and
// WithHTTPClient wins; Close never touches a supplied transport.
func WithTransport(rt http.RoundTripper) Option {
	return func(c *Client) { c.hc = &http.Client{Transport: rt} }
}

// WithRetry sets the retry policy; zero fields select the defaults.
// RetryPolicy{MaxAttempts: 1} disables retries entirely.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.policy = p }
}

// WithJitterSource replaces the backoff jitter source with rnd (must
// return values in [0, 1)); for deterministic tests.
func WithJitterSource(rnd func() float64) Option {
	return func(c *Client) { c.jitter = rnd }
}

// New returns a Client for the server at base (e.g. "http://host:8080").
func New(base string, opts ...Option) (*Client, error) {
	base = strings.TrimRight(base, "/")
	if base == "" || (!strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://")) {
		return nil, fmt.Errorf("lddp client: base URL %q must be http(s)://host[:port]", base)
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	c := &Client{
		base:   base,
		policy: DefaultRetryPolicy,
		jitter: rng.Float64,
		sleep:  sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	c.policy = c.policy.withDefaults()
	if c.hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		// The client talks to exactly one host; the transport default of 2
		// idle connections per host makes every concurrent batch beyond 2
		// redial, which dominates small-solve latency and allocations.
		tr.MaxIdleConnsPerHost = tr.MaxIdleConns
		c.ownTransport = tr
		c.hc = &http.Client{Transport: tr}
	}
	return c, nil
}

// Close releases the client's own connection pool (a no-op when the
// transport was supplied via WithHTTPClient).
func (c *Client) Close() {
	if c.ownTransport != nil {
		c.ownTransport.CloseIdleConnections()
	}
}

// rnd draws one jitter sample; the lock keeps the default math/rand
// source safe under concurrent Solve calls.
func (c *Client) rnd() float64 {
	c.jitterMu.Lock()
	defer c.jitterMu.Unlock()
	return c.jitter()
}

// sleepCtx sleeps for d or until the context ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-t.C:
		return nil
	}
}

// Solve submits one solve request and returns the decoded response. On
// 429/503 (and transport errors) it retries under the client's
// RetryPolicy, honoring the server's Retry-After over its own backoff;
// when the budget is exhausted the last typed error is returned. All
// other non-2xx responses return a *APIError immediately.
//
// The request travels under the client's codec (WithCodec); responses
// are decoded by their Content-Type, so a JSON answer from a
// binary-negotiating exchange still decodes. A binary response frame in
// a version this client does not speak fails with ErrWireVersion.
func (c *Client) Solve(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("lddp client: nil request")
	}
	buf, err := c.encodeRequest(req)
	if err != nil {
		return nil, err
	}
	// The encoded body lives in a pooled buffer for the whole retry
	// loop (every attempt re-reads the same bytes). The buffer returns
	// to the pool only after the loop ends AND the transport has closed
	// every body reader handed to it — an abandoned attempt's write
	// loop can outlive Do on context cancellation (see pooledBody).
	body := newPooledBody(buf)
	defer body.release()
	var last error
	for attempt := 0; attempt < c.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			var retryAfter time.Duration
			var apiErr *APIError
			if errors.As(last, &apiErr) {
				retryAfter = apiErr.RetryAfter
			}
			d := backoffDelay(c.policy, attempt-1, retryAfter, c.rnd())
			if err := c.sleep(ctx, d); err != nil {
				return nil, err
			}
		}
		resp, err := c.trySolve(ctx, body)
		if err == nil {
			return resp, nil
		}
		last = err
		var apiErr *APIError
		if errors.As(err, &apiErr) && !apiErr.retryable() {
			return nil, err
		}
		if errors.Is(err, ErrWireVersion) {
			// A version mismatch is deterministic; retrying resends the
			// same frame at the same server.
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, last
		}
	}
	return nil, last
}

// trySolve performs one POST /v1/solve round trip.
func (c *Client) trySolve(ctx context.Context, body *pooledBody) (*SolveResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/solve", nil)
	if err != nil {
		return nil, err
	}
	// Hand the transport a refcounted reader (it closes every request
	// body, even on error/cancel paths) so the pooled bytes stay alive
	// until the write loop is truly done with them. ContentLength and
	// GetBody match what NewRequest derives for a *bytes.Reader.
	hreq.Body = body.reader()
	hreq.ContentLength = int64(body.len())
	hreq.GetBody = func() (io.ReadCloser, error) { return body.reader(), nil }
	hreq.Header.Set("Content-Type", c.contentType())
	hreq.Header.Set("Accept", c.accept())
	if c.cacheControl != "" {
		hreq.Header.Set("Cache-Control", c.cacheControl)
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("lddp client: %w", err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(hresp)
	}
	if responseIsBinary(hresp) {
		return decodeBinaryResponse(hresp)
	}
	var out SolveResponse
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 64<<20)).Decode(&out); err != nil {
		return nil, fmt.Errorf("lddp client: decoding response: %w", err)
	}
	return &out, nil
}

// decodeError builds the *APIError of a non-2xx response, surviving
// non-JSON bodies (proxies, panics) with the raw text as the message.
func decodeError(hresp *http.Response) *APIError {
	apiErr := &APIError{HTTPStatus: hresp.StatusCode, Status: "error"}
	raw, _ := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
	var body ErrorBody
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		apiErr.Status = body.Status
		apiErr.Message = body.Error
		apiErr.SolveID = body.ID
		apiErr.RetryAfter = time.Duration(body.RetryAfterMS) * time.Millisecond
	} else {
		apiErr.Message = strings.TrimSpace(string(raw))
	}
	// The header is coarser (whole seconds) but authoritative when the
	// body carried no hint.
	if apiErr.RetryAfter <= 0 {
		if s, err := strconv.Atoi(hresp.Header.Get("Retry-After")); err == nil && s > 0 {
			apiErr.RetryAfter = time.Duration(s) * time.Second
		}
	}
	return apiErr
}

// Health reports whether the server process is up (GET /v1/healthz).
func (c *Client) Health(ctx context.Context) error {
	return c.getOK(ctx, "/v1/healthz")
}

// Ready reports whether the server is accepting solves (GET /v1/readyz);
// a draining server returns ErrUnavailable.
func (c *Client) Ready(ctx context.Context) error {
	return c.getOK(ctx, "/v1/readyz")
}

// Metrics fetches the server's metrics snapshot (GET /v1/metrics).
func (c *Client) Metrics(ctx context.Context) (*lddp.MetricsSnapshot, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("lddp client: %w", err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(hresp)
	}
	var snap lddp.MetricsSnapshot
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 16<<20)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("lddp client: decoding metrics: %w", err)
	}
	return &snap, nil
}

// Trace fetches the node's block trace dumps for one fleet solve
// (GET /v1/trace/{fleetID}). A node that recorded nothing for the solve
// — tracing disabled, or the blocks all ran elsewhere — answers 404,
// which surfaces as an *APIError; fleet-side callers treat that as "no
// lanes from this node", not a failure.
func (c *Client) Trace(ctx context.Context, fleetID string) (*trace.NodeTrace, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/trace/"+url.PathEscape(fleetID), nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("lddp client: %w", err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(hresp)
	}
	var nt trace.NodeTrace
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 64<<20)).Decode(&nt); err != nil {
		return nil, fmt.Errorf("lddp client: decoding trace: %w", err)
	}
	return &nt, nil
}

// Base returns the client's base URL — fleet-side observability labels
// nodes with it (trace process lanes, relocation logs).
func (c *Client) Base() string { return c.base }

func (c *Client) getOK(ctx context.Context, path string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("lddp client: %w", err)
	}
	defer hresp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(hresp.Body, 4096))
	if hresp.StatusCode != http.StatusOK {
		return &APIError{HTTPStatus: hresp.StatusCode, Status: "error", Message: path + " returned " + hresp.Status}
	}
	return nil
}
