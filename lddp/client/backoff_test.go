package client

import (
	"math"
	"testing"
	"time"
)

// TestBackoffDelayTable pins the backoff schedule: exponential doubling
// from BaseDelay, capped at MaxDelay, equal jitter in [d/2, d), and a
// server Retry-After overriding everything verbatim.
func TestBackoffDelayTable(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
	cases := []struct {
		name       string
		attempt    int
		retryAfter time.Duration
		rnd        float64
		want       time.Duration
	}{
		// rnd=0 pins the lower jitter edge: exactly half the nominal delay.
		{"attempt0-low", 0, 0, 0, 25 * time.Millisecond},
		{"attempt1-low", 1, 0, 0, 50 * time.Millisecond},
		{"attempt2-low", 2, 0, 0, 100 * time.Millisecond},
		{"attempt3-low", 3, 0, 0, 200 * time.Millisecond},
		// 50ms << 6 = 3.2s exceeds the 2s cap: the cap rules from here on.
		{"attempt6-capped-low", 6, 0, 0, time.Second},
		{"attempt9-capped-low", 9, 0, 0, time.Second},
		// The shift guard: doubling past any representable duration still
		// lands on the cap instead of wrapping negative.
		{"attempt70-guarded", 70, 0, 0, time.Second},
		// rnd=0.5 lands mid-window: d/2 + (d - d/2)/2 = 3d/4.
		{"attempt0-mid", 0, 0, 0.5, 37500 * time.Microsecond},
		{"attempt2-mid", 2, 0, 0.5, 150 * time.Millisecond},
		// Retry-After wins over the computed backoff, verbatim — even above
		// MaxDelay, and jitter does not apply to it.
		{"retry-after-precedence", 0, 700 * time.Millisecond, 0.99, 700 * time.Millisecond},
		{"retry-after-above-cap", 5, 10 * time.Second, 0.01, 10 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := backoffDelay(p, tc.attempt, tc.retryAfter, tc.rnd); got != tc.want {
				t.Errorf("backoffDelay(attempt=%d, retryAfter=%v, rnd=%v) = %v, want %v",
					tc.attempt, tc.retryAfter, tc.rnd, got, tc.want)
			}
		})
	}
}

// TestBackoffDelayJitterBounds sweeps the jitter window edges: for every
// attempt the delay must stay in [d/2, d) — never sooner than half the
// nominal backoff, never the full nominal value (rnd < 1).
func TestBackoffDelayJitterBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 30 * time.Millisecond, MaxDelay: time.Second}.withDefaults()
	almostOne := math.Nextafter(1, 0)
	for attempt := 0; attempt < 12; attempt++ {
		nominal := p.MaxDelay
		if attempt < 63 {
			if scaled := p.BaseDelay << uint(attempt); scaled > 0 && scaled < nominal {
				nominal = scaled
			}
		}
		for _, rnd := range []float64{0, 0.25, 0.5, 0.75, almostOne} {
			got := backoffDelay(p, attempt, 0, rnd)
			if got < nominal/2 || got >= nominal {
				t.Errorf("attempt %d rnd %v: delay %v outside [%v, %v)", attempt, rnd, got, nominal/2, nominal)
			}
		}
	}
}

// TestRetryPolicyWithDefaults pins the zero-value resolution rules.
func TestRetryPolicyWithDefaults(t *testing.T) {
	got := RetryPolicy{}.withDefaults()
	if got.MaxAttempts != 1 {
		t.Errorf("zero MaxAttempts resolved to %d, want 1 (no retries)", got.MaxAttempts)
	}
	if got.BaseDelay != DefaultRetryPolicy.BaseDelay || got.MaxDelay != DefaultRetryPolicy.MaxDelay {
		t.Errorf("zero delays resolved to %v/%v, want defaults %v/%v",
			got.BaseDelay, got.MaxDelay, DefaultRetryPolicy.BaseDelay, DefaultRetryPolicy.MaxDelay)
	}
	full := RetryPolicy{MaxAttempts: 7, BaseDelay: time.Millisecond, MaxDelay: time.Minute}
	if got := full.withDefaults(); got != full {
		t.Errorf("non-zero policy altered by withDefaults: %+v -> %+v", full, got)
	}
}
