// Quickstart: define an LDDP-Plus problem with nothing but its recurrence
// and contributing set, let the framework classify it, and solve it four
// ways — sequentially, with real goroutines, and on both simulated devices
// plus the heterogeneous framework.
//
// The problem here is a toy "weighted paths" recurrence
//
//	f(i,j) = (i*j mod 7) + max(f(i-1,j-1), f(i-1,j))
//
// whose contributing set {NW, N} makes it a horizontal-pattern problem
// (paper Table I, row 6).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hetsim"
	"repro/internal/trace"
)

func main() {
	p := &core.Problem[int64]{
		Name: "weighted-paths",
		Rows: 1024,
		Cols: 1024,
		Deps: core.DepNW | core.DepN,
		F: func(i, j int, nb core.Neighbors[int64]) int64 {
			return int64((i*j)%7) + max(nb.NW, nb.N)
		},
		BytesPerCell: 8,
	}

	// 1. The framework classifies the problem from its contributing set.
	fmt.Printf("contributing set %s -> pattern %s, transfers: %s\n",
		p.Deps, core.Classify(p.Deps), core.TransferNeed(p.Deps))

	// 2. Sequential reference solve.
	seq, err := core.Solve(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential:    f(n-1,n-1) = %d\n", seq.At(p.Rows-1, p.Cols-1))

	// 3. Native multicore solve (real goroutines, same values).
	par, err := core.SolveParallel(p, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel:      f(n-1,n-1) = %d\n", par.At(p.Rows-1, p.Cols-1))

	// 4. Simulated single-device baselines and the heterogeneous framework.
	for _, mode := range []struct {
		name  string
		solve func(*core.Problem[int64], core.Options) (*core.Result[int64], error)
	}{
		{"cpu-only  ", core.SolveCPUOnly[int64]},
		{"gpu-only  ", core.SolveGPUOnly[int64]},
		{"framework ", core.SolveHetero[int64]},
	} {
		res, err := mode.solve(p, core.Options{
			Platform: hetsim.HeteroHigh(),
			TSwitch:  -1, // auto
			TShare:   -1, // auto
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s f(n-1,n-1) = %d  simulated %s  (t_share=%d)\n",
			mode.name, res.Grid.At(p.Rows-1, p.Cols-1),
			trace.FormatDuration(res.Time), res.TShare)
	}
}
