// Quickstart: define an LDDP-Plus problem with nothing but its recurrence
// and contributing set, let the framework classify it, and solve it four
// ways — sequentially, with real goroutines, and on both simulated devices
// plus the heterogeneous framework — all through the public lddp facade.
//
// The problem here is a toy "weighted paths" recurrence
//
//	f(i,j) = (i*j mod 7) + max(f(i-1,j-1), f(i-1,j))
//
// whose contributing set {NW, N} makes it a horizontal-pattern problem
// (paper Table I, row 6).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/lddp"
)

func main() {
	ctx := context.Background()

	p := &lddp.Problem[int64]{
		Name: "weighted-paths",
		Rows: 1024,
		Cols: 1024,
		Deps: lddp.DepNW | lddp.DepN,
		F: func(i, j int, nb lddp.Neighbors[int64]) int64 {
			return int64((i*j)%7) + max(nb.NW, nb.N)
		},
		BytesPerCell: 8,
	}

	// 1. The framework classifies the problem from its contributing set.
	fmt.Printf("contributing set %s -> pattern %s, transfers: %s\n",
		p.Deps, lddp.Classify(p.Deps), lddp.TransferNeed(p.Deps))

	// 2. Sequential reference solve.
	seq, err := lddp.Solve(ctx, p, lddp.WithStrategy(lddp.Sequential))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential:    f(n-1,n-1) = %d\n", seq.Grid.At(p.Rows-1, p.Cols-1))

	// 3. Native multicore solve (real goroutines, same values). The zero
	// option set defaults to this strategy with auto-sized workers.
	par, err := lddp.Solve(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel:      f(n-1,n-1) = %d\n", par.Grid.At(p.Rows-1, p.Cols-1))

	// 4. Simulated single-device baselines and the heterogeneous framework.
	for _, mode := range []struct {
		name     string
		strategy lddp.Strategy
	}{
		{"cpu-only  ", lddp.SimCPU},
		{"gpu-only  ", lddp.SimGPU},
		{"framework ", lddp.Hetero},
	} {
		res, err := lddp.Solve(ctx, p,
			lddp.WithStrategy(mode.strategy),
			lddp.WithPlatform("Hetero-High"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s f(n-1,n-1) = %d  simulated %s  (t_share=%d)\n",
			mode.name, res.Grid.At(p.Rows-1, p.Cols-1), res.SimTime, res.TShare)
	}
}
