// Threeway: the k = 3 instantiation of the LDDP-Plus class — the paper
// defines the class for k >= 2 but treats only k = 2. Computes the longest
// common subsequence of three DNA sequences over anti-diagonal planes,
// sequentially, with real goroutines, and on the simulated heterogeneous
// platform.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/problems"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const n = 96
	a, b := workload.SimilarStrings(1, n, workload.DNAAlphabet, 0.2)
	c, _ := workload.SimilarStrings(2, n, workload.DNAAlphabet, 0.25)

	p := problems.LCS3(a, b, c)
	fmt.Printf("three-sequence LCS over a %dx%dx%d box (%d cells, %d planes)\n\n",
		p.NX, p.NY, p.NZ, p.NX*p.NY*p.NZ, p.Planes())

	seq, err := core.Solve3(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential:  |LCS3| = %d\n", problems.LCS3Length(seq, a, b, c))

	par, err := core.SolveParallel3(p, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel:    |LCS3| = %d\n", problems.LCS3Length(par, a, b, c))

	het, err := core.SolveHetero3(p, core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("framework:   |LCS3| = %d  (simulated %s, t_switch=%d plane-band=%d layers)\n\n",
		problems.LCS3Length(het.Grid, a, b, c),
		trace.FormatDuration(het.Duration()), het.TSwitch, het.TShare)

	// Pairwise sanity: the three-way LCS can never exceed a pairwise one.
	gab, _ := core.Solve(problems.LCS(a, b))
	fmt.Printf("pairwise |LCS(a,b)| = %d >= |LCS3| as required\n",
		problems.LCSLength(gab, a, b))

	fmt.Println("\nsimulated schedule:")
	fmt.Printf("  %s\n", trace.StatsLine(het.Timeline))
}
