// Dithering: Floyd-Steinberg error diffusion as a knight-move LDDP problem
// (paper §VI-B). Dithers a generated grayscale gradient, prints an ASCII
// preview of input and output, and shows the heterogeneous schedule the
// framework builds for the two-way-transfer knight pattern.
package main

import (
	"flag"
	"fmt"
	"image"
	"image/png"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/problems"
	"repro/internal/trace"
	"repro/internal/workload"
)

const (
	rows, cols = 48, 96
)

func main() {
	outDir := flag.String("out", "", "directory to write input.png and dithered.png (empty = skip)")
	flag.Parse()
	img := workload.GrayImage(7, rows, cols)

	p := problems.Dither(img)
	fmt.Printf("Floyd-Steinberg on a %dx%d image: pattern %s, transfers %s\n\n",
		rows, cols, core.Classify(p.Deps), core.TransferNeed(p.Deps))

	res, err := core.SolveHetero(p, core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		log.Fatal(err)
	}
	out := problems.DitherOutput(res.Grid)

	fmt.Println("input (grayscale ramp):")
	preview(func(i, j int) byte { return shade(img[i][j]) })
	fmt.Println("\ndithered output (1-bit):")
	preview(func(i, j int) byte {
		if out[i][j] == 255 {
			return '#'
		}
		return ' '
	})

	fmt.Println("\nheterogeneous schedule:")
	fmt.Printf("  t_switch=%d t_share=%d  %s\n", res.TSwitch, res.TShare, trace.StatsLine(res.Timeline))

	// Sanity check against the classic scatter implementation.
	refOut, _ := problems.DitherRef(img)
	for i := range refOut {
		for j := range refOut[i] {
			if refOut[i][j] != out[i][j] {
				log.Fatalf("framework output diverges from scatter reference at (%d,%d)", i, j)
			}
		}
	}
	fmt.Println("\noutput verified bit-identical to the scatter-form reference implementation")

	if *outDir != "" {
		if err := writePNG(filepath.Join(*outDir, "input.png"), img); err != nil {
			log.Fatal(err)
		}
		if err := writePNG(filepath.Join(*outDir, "dithered.png"), out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s/input.png and %s/dithered.png\n", *outDir, *outDir)
	}
}

// writePNG stores a grayscale pixel grid as a PNG file.
func writePNG(path string, pix [][]uint8) error {
	im := image.NewGray(image.Rect(0, 0, len(pix[0]), len(pix)))
	for y := range pix {
		for x, v := range pix[y] {
			im.Pix[y*im.Stride+x] = v
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := png.Encode(f, im); err != nil {
		return err
	}
	return f.Close()
}

// shade maps an 8-bit level to a 5-step ASCII ramp.
func shade(v uint8) byte {
	ramp := []byte(" .:=#")
	return ramp[int(v)*len(ramp)/256]
}

// preview prints every other row so the aspect ratio looks roughly square
// in a terminal.
func preview(pix func(i, j int) byte) {
	for i := 0; i < rows; i += 2 {
		line := make([]byte, cols)
		for j := 0; j < cols; j++ {
			line[j] = pix(i, j)
		}
		fmt.Printf("  %s\n", line)
	}
}
