// Seamcarve: content-aware image resizing's energy accumulation is the
// checkerboard recurrence (horizontal case-2) on pixel energies. This
// example computes the accumulated-energy table with the native parallel
// solver, recovers the minimum seam by walking the table backwards, and
// prints where the seam runs.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/problems"
	"repro/internal/table"
	"repro/internal/workload"
)

func main() {
	const rows, cols = 64, 120
	energy := workload.EnergyGrid(11, rows, cols)

	p := problems.SeamCarve(energy)
	fmt.Printf("seam carving a %dx%d energy map: pattern %s (case-2: %s)\n",
		rows, cols, core.Classify(p.Deps), core.TransferNeed(p.Deps))

	acc, err := core.SolveParallel(p, 0)
	if err != nil {
		log.Fatal(err)
	}

	seam := recoverSeam(acc, energy)
	fmt.Printf("minimum seam cost = %d\n", problems.SeamCost(acc))
	fmt.Printf("seam column range: first row j=%d ... last row j=%d\n", seam[0], seam[rows-1])

	// Render the seam over a coarse energy preview.
	fmt.Println("\nenergy map with seam (|):")
	for i := 0; i < rows; i += 4 {
		line := make([]byte, cols)
		for j := 0; j < cols; j++ {
			switch {
			case j == seam[i]:
				line[j] = '|'
			case energy[i][j] >= 128:
				line[j] = '#'
			default:
				line[j] = '.'
			}
		}
		fmt.Printf("  %s\n", line)
	}

	// The seam's summed energy must equal the DP answer.
	var total int32
	for i, j := range seam {
		total += energy[i][j]
	}
	if total != problems.SeamCost(acc) {
		log.Fatalf("recovered seam cost %d != DP cost %d", total, problems.SeamCost(acc))
	}
	fmt.Println("\nrecovered seam cost matches the DP table")
}

// recoverSeam walks the accumulated-energy table from the cheapest cell of
// the last row upwards, always moving to the cheapest of the three parents.
func recoverSeam(acc *table.Grid[int32], energy [][]int32) []int32ColIdx {
	rows, cols := acc.Rows(), acc.Cols()
	seam := make([]int32ColIdx, rows)
	best := 0
	for j := 1; j < cols; j++ {
		if acc.At(rows-1, j) < acc.At(rows-1, best) {
			best = j
		}
	}
	seam[rows-1] = best
	for i := rows - 2; i >= 0; i-- {
		j := seam[i+1]
		bestJ := j
		for _, cand := range []int{j - 1, j, j + 1} {
			if cand >= 0 && cand < cols && acc.At(i, cand) < acc.At(i, bestJ) {
				bestJ = cand
			}
		}
		seam[i] = bestJ
	}
	return seam
}

// int32ColIdx documents that seam entries are column indices.
type int32ColIdx = int
