// Autotune: the paper's §V-A empirical parameter search. Sweeps t_switch
// at t_share=0 (the concave Figure-7 curve), then t_share at the chosen
// t_switch, and compares the tuned configuration against the framework's
// model-derived defaults on both platforms.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hetsim"
	"repro/internal/problems"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const n = 4096
	a, b := workload.SimilarStrings(99, n-1, workload.DNAAlphabet, 0.3)
	p := problems.LCS(a, b)
	fmt.Printf("tuning %s on a %dx%d table (pattern %s)\n\n", p.Name, p.Rows, p.Cols, core.Classify(p.Deps))

	for _, plat := range hetsim.Platforms() {
		fmt.Printf("== %s\n", plat.Name)
		tuned, err := core.Tune(p, core.Options{Platform: plat})
		if err != nil {
			log.Fatal(err)
		}

		// Sketch the t_switch curve: sample ~12 points across the sweep.
		fmt.Println("t_switch sweep (t_share=0):")
		step := len(tuned.SwitchCurve)/12 + 1
		for i := 0; i < len(tuned.SwitchCurve); i += step {
			pt := tuned.SwitchCurve[i]
			bar := int(pt.Time.Microseconds() / 400)
			if bar > 60 {
				bar = 60
			}
			fmt.Printf("  %6d %-9s %s\n", pt.Value, trace.FormatDuration(pt.Time), repeat('*', bar))
		}

		def, err := core.SolveHetero(p, core.Options{Platform: plat, TSwitch: -1, TShare: -1, SkipCompute: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("heuristic defaults: t_switch=%d t_share=%d -> %s\n",
			def.TSwitch, def.TShare, trace.FormatDuration(def.Time))
		fmt.Printf("tuned:              t_switch=%d t_share=%d -> %s (%.1f%% faster)\n\n",
			tuned.TSwitch, tuned.TShare, trace.FormatDuration(tuned.Time),
			100*(1-float64(tuned.Time)/float64(def.Time)))
	}
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
