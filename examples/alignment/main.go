// Alignment: the bioinformatics workloads that motivate LDDP frameworks —
// edit distance, global alignment (Needleman-Wunsch) and local alignment
// (Smith-Waterman) over DNA sequences — solved through the heterogeneous
// framework on both of the paper's platforms.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hetsim"
	"repro/internal/problems"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const n = 2000
	// Two sequences differing in ~15% of positions: a realistic pair of
	// homologous reads.
	a, b := workload.SimilarStrings(2024, n, workload.DNAAlphabet, 0.15)
	fmt.Printf("aligning two DNA sequences of length %d (%.0f%% mutated)\n\n", n, 15.0)

	scores := problems.DefaultAlignScores()

	// Edit distance (anti-diagonal pattern).
	lev := problems.Levenshtein(a, b)
	levRes, err := core.SolveHetero(lev, core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("levenshtein distance  = %d   [pattern %s, %s]\n",
		problems.LevenshteinDistance(levRes.Grid, a, b), levRes.Pattern, trace.FormatDuration(levRes.Time))

	// Global alignment score.
	nw := problems.NeedlemanWunsch(a, b, scores)
	nwRes, err := core.SolveHetero(nw, core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global align score    = %d  [pattern %s, %s]\n",
		problems.GlobalScore(nwRes.Grid, a, b), nwRes.Pattern, trace.FormatDuration(nwRes.Time))

	// Local alignment score.
	sw := problems.SmithWaterman(a, b, scores)
	swRes, err := core.SolveHetero(sw, core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local align score     = %d  [pattern %s, %s]\n\n",
		problems.LocalBestScore(swRes.Grid), swRes.Pattern, trace.FormatDuration(swRes.Time))

	// How the framework would divide this work on each platform.
	fmt.Println("heterogeneous execution profile (Levenshtein):")
	for _, plat := range hetsim.Platforms() {
		res, err := core.SolveHetero(lev, core.Options{
			Platform: plat, TSwitch: -1, TShare: -1, SkipCompute: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats()
		fmt.Printf("  %-12s t_switch=%-5d t_share=%-5d cpuCells=%-8d gpuCells=%-8d %s\n",
			plat.Name, res.TSwitch, res.TShare, st.CPUCells, st.GPUCells,
			trace.FormatDuration(res.Time))
	}
}
