// Alignment: the bioinformatics workloads that motivate LDDP frameworks —
// edit distance, global alignment (Needleman-Wunsch) and local alignment
// (Smith-Waterman) over DNA sequences — solved through the public lddp
// facade on both of the paper's platforms, with a metrics collector
// showing the runtime's observability output.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/problems"
	"repro/internal/workload"
	"repro/lddp"
)

func main() {
	ctx := context.Background()

	const n = 2000
	// Two sequences differing in ~15% of positions: a realistic pair of
	// homologous reads.
	a, b := workload.SimilarStrings(2024, n, workload.DNAAlphabet, 0.15)
	fmt.Printf("aligning two DNA sequences of length %d (%.0f%% mutated)\n\n", n, 15.0)

	scores := problems.DefaultAlignScores()

	// Edit distance (anti-diagonal pattern).
	lev := problems.Levenshtein(a, b)
	levRes, err := lddp.Solve(ctx, lev, lddp.WithStrategy(lddp.Hetero))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("levenshtein distance  = %d   [pattern %s, %s]\n",
		problems.LevenshteinDistance(levRes.Grid, a, b), levRes.Pattern, levRes.SimTime)

	// Global alignment score.
	nw := problems.NeedlemanWunsch(a, b, scores)
	nwRes, err := lddp.Solve(ctx, nw, lddp.WithStrategy(lddp.Hetero))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global align score    = %d  [pattern %s, %s]\n",
		problems.GlobalScore(nwRes.Grid, a, b), nwRes.Pattern, nwRes.SimTime)

	// Local alignment score.
	sw := problems.SmithWaterman(a, b, scores)
	swRes, err := lddp.Solve(ctx, sw, lddp.WithStrategy(lddp.Hetero))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local align score     = %d  [pattern %s, %s]\n\n",
		problems.LocalBestScore(swRes.Grid), swRes.Pattern, swRes.SimTime)

	// How the framework divides this work on each platform, observed
	// through a metrics collector.
	fmt.Println("heterogeneous execution profile (Levenshtein):")
	for _, platform := range []string{"Hetero-High", "Hetero-Low"} {
		metrics := &lddp.Metrics{}
		res, err := lddp.Solve(ctx, lev,
			lddp.WithStrategy(lddp.Hetero),
			lddp.WithPlatform(platform),
			lddp.WithCollector(metrics))
		if err != nil {
			log.Fatal(err)
		}
		st := res.Timeline.Summarize()
		fmt.Printf("  %-12s t_switch=%-5d t_share=%-5d cpuCells=%-8d gpuCells=%-8d %s\n",
			platform, res.TSwitch, res.TShare, st.CPUCells, st.GPUCells, res.SimTime)
		snap := metrics.Snapshot()
		for _, ph := range snap.Phases {
			fmt.Printf("    phase %-4s wall=%s\n", ph.Name, fmt.Sprintf("%dns", ph.WallNS))
		}
	}
}
