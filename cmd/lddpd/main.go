// Command lddpd is the network solve service: an HTTP/JSON server
// exposing the shared multi-solve scheduler (lddp.Scheduler) behind
// POST /v1/solve, with health/readiness/metrics endpoints and graceful
// drain on SIGTERM. The wire protocol is documented in DESIGN.md §10;
// repro/lddp/client is the Go client and cmd/lddpserve -url the load
// driver.
//
// Usage:
//
//	lddpd                                  # serve on :8080, default limits
//	lddpd -addr 127.0.0.1:9000 -workers 8  # pin address and pool size
//	lddpd -tracedir traces                 # record a per-solve trace file
//	lddpd -debug-addr 127.0.0.1:6060       # pprof/expvar on a separate port
//
// Profiling recipe: with -debug-addr 127.0.0.1:6060 set, capture a
// 10-second CPU profile of a busy node with
// `go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10`.
//
// Shutdown: on SIGTERM/SIGINT the server stops advertising readiness
// (GET /readyz -> 503) and refuses new solves, lets admitted solves
// finish for up to -drain, then closes the listener and the scheduler.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only on -debug-addr
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
	"repro/lddp"
	"repro/lddp/client"
)

type options struct {
	addr       string
	debugAddr  string
	workers    int
	queue      int
	active     int
	chunk      int
	inflight   int
	maxCells   int64
	cacheBytes int64
	drain      time.Duration
	tracedir   string
	peers      string
	bands      int
	phaseCols  int
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", ":8080", "listen address")
	flag.StringVar(&opts.debugAddr, "debug-addr", "", "serve net/http/pprof and expvar on this extra address (never on the serving port); empty disables")
	flag.IntVar(&opts.workers, "workers", 0, "scheduler workers (0 = min(GOMAXPROCS, NumCPU))")
	flag.IntVar(&opts.queue, "queue", 0, "admission queue bound (0 = default)")
	flag.IntVar(&opts.active, "active", 0, "max concurrently active solves (0 = default)")
	flag.IntVar(&opts.chunk, "chunk", 0, "cells per claim chunk (0 = default)")
	flag.IntVar(&opts.inflight, "inflight", 0, "max in-flight solve requests (0 = 4x workers)")
	flag.Int64Var(&opts.maxCells, "max-cells", 0, "per-request table cell cap (0 = default)")
	flag.Int64Var(&opts.cacheBytes, "cache-bytes", 0, "result cache bound in bytes (0 = default 64 MiB, negative disables)")
	flag.DurationVar(&opts.drain, "drain", 10*time.Second, "graceful drain bound on shutdown")
	flag.StringVar(&opts.tracedir, "tracedir", "", "write a per-solve trace file into this directory")
	flag.StringVar(&opts.peers, "peers", "", "comma-separated peer lddpd base URLs; when set, POST /v1/fleet/solve shards solves across them")
	flag.IntVar(&opts.bands, "bands", 0, "fleet row bands (0 = one per peer; only with -peers)")
	flag.IntVar(&opts.phaseCols, "phase-cols", 0, "fleet block phase width in columns (0 = default; only with -peers)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts, os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "lddpd:", err)
		os.Exit(1)
	}
}

// run boots the service and blocks until ctx ends (the shutdown signal),
// then drains in the documented order: readiness flips first, the
// listener closes after in-flight requests finish (bounded by -drain),
// and the scheduler closes last. addrCh, when non-nil, receives the
// bound listener address once serving — the test hook for -addr :0.
func run(ctx context.Context, opts options, out io.Writer, addrCh chan<- string) error {
	if opts.tracedir != "" {
		if err := os.MkdirAll(opts.tracedir, 0o755); err != nil {
			return err
		}
	}
	// The fleet coordinator is built before the node server so its
	// counters can ride the node's /v1/metrics through the ExtraMetrics
	// hook; the handler still mounts beside the node mux, so
	// internal/server stays ignorant of the fleet layer.
	var coord *fleet.Coordinator
	var peerCount int
	if opts.peers != "" {
		var nodes []*client.Client
		for _, u := range strings.Split(opts.peers, ",") {
			c, err := client.New(strings.TrimSpace(u), client.WithCodec(client.CodecBinary))
			if err != nil {
				return fmt.Errorf("-peers: %w", err)
			}
			defer c.Close()
			nodes = append(nodes, c)
		}
		peerCount = len(nodes)
		var err error
		coord, err = fleet.New(fleet.Config{
			Nodes: nodes, Bands: opts.bands, PhaseCols: opts.phaseCols,
			TraceDir: opts.tracedir,
		})
		if err != nil {
			return err
		}
	}
	cfg := server.Config{
		Workers:     opts.workers,
		Queue:       opts.queue,
		MaxActive:   opts.active,
		Chunk:       opts.chunk,
		MaxInflight: opts.inflight,
		MaxCells:    opts.maxCells,
		CacheBytes:  opts.cacheBytes,
		TraceDir:    opts.tracedir,
	}
	if coord != nil {
		cfg.ExtraMetrics = func(snap *lddp.MetricsSnapshot) {
			snap.Fleet = coord.MetricsSnapshot()
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		srv.Close()
		return err
	}
	handler := srv.Handler()
	if coord != nil {
		mux := http.NewServeMux()
		mux.Handle("/v1/fleet/solve", fleet.NewHandler(coord, nil))
		mux.Handle("/", handler)
		handler = mux
		fmt.Fprintf(out, "lddpd: fleet coordinator over %d peers\n", peerCount)
	}
	if opts.debugAddr != "" {
		// The pprof/expvar surface rides http.DefaultServeMux (the pprof
		// import registers there) on its own listener, never the serving
		// port: profiling endpoints are an operator tool, not part of the
		// v1 API, and must not be exposed wherever the service is.
		dln, err := net.Listen("tcp", opts.debugAddr)
		if err != nil {
			srv.Close()
			return fmt.Errorf("-debug-addr: %w", err)
		}
		defer dln.Close()
		go http.Serve(dln, nil) //nolint:errcheck // closed on shutdown
		fmt.Fprintf(out, "lddpd: debug (pprof) on %s\n", dln.Addr())
	}
	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	// One structured line per boot: fleet-smoke runs several nodes into
	// one log stream, and every fact needed to tell them apart (and to
	// reproduce their config) is on this line.
	codec := "json"
	if coord != nil {
		codec = "binary"
	}
	fmt.Fprintf(out, "lddpd: serving on %s workers=%d inflight=%d peers=%d codec=%s cache-bytes=%d gomaxprocs=%d\n",
		ln.Addr(), srv.Config().Workers, srv.Config().MaxInflight,
		peerCount, codec, srv.Config().CacheBytes, runtime.GOMAXPROCS(0))
	if addrCh != nil {
		addrCh <- ln.Addr().String()
	}

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "lddpd: draining %s bound=%s\n", ln.Addr(), opts.drain)
	// Readiness flips before the listener closes, so a load balancer
	// polling /readyz sees the drain while the port still answers.
	srv.BeginDrain()
	shCtx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	shutdownErr := hs.Shutdown(shCtx)
	if coord != nil {
		// Detached trace stitches may still be fetching from peers; wait
		// them out so shutdown leaves no goroutine behind and every
		// stitched file announced to clients is on disk.
		coord.Close()
	}
	srv.Close()
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return fmt.Errorf("drain bound expired: %w", shutdownErr)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// The drain-complete line names the same address as the startup
	// line, so interleaved multi-node logs pair up.
	fmt.Fprintf(out, "lddpd: drained %s\n", ln.Addr())
	return nil
}
