// Command lddpd is the network solve service: an HTTP/JSON server
// exposing the shared multi-solve scheduler (lddp.Scheduler) behind
// POST /v1/solve, with health/readiness/metrics endpoints and graceful
// drain on SIGTERM. The wire protocol is documented in DESIGN.md §10;
// repro/lddp/client is the Go client and cmd/lddpserve -url the load
// driver.
//
// Usage:
//
//	lddpd                                  # serve on :8080, default limits
//	lddpd -addr 127.0.0.1:9000 -workers 8  # pin address and pool size
//	lddpd -tracedir traces                 # record a per-solve trace file
//
// Shutdown: on SIGTERM/SIGINT the server stops advertising readiness
// (GET /readyz -> 503) and refuses new solves, lets admitted solves
// finish for up to -drain, then closes the listener and the scheduler.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
	"repro/lddp/client"
)

type options struct {
	addr       string
	workers    int
	queue      int
	active     int
	chunk      int
	inflight   int
	maxCells   int64
	cacheBytes int64
	drain      time.Duration
	tracedir   string
	peers      string
	bands      int
	phaseCols  int
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", ":8080", "listen address")
	flag.IntVar(&opts.workers, "workers", 0, "scheduler workers (0 = min(GOMAXPROCS, NumCPU))")
	flag.IntVar(&opts.queue, "queue", 0, "admission queue bound (0 = default)")
	flag.IntVar(&opts.active, "active", 0, "max concurrently active solves (0 = default)")
	flag.IntVar(&opts.chunk, "chunk", 0, "cells per claim chunk (0 = default)")
	flag.IntVar(&opts.inflight, "inflight", 0, "max in-flight solve requests (0 = 4x workers)")
	flag.Int64Var(&opts.maxCells, "max-cells", 0, "per-request table cell cap (0 = default)")
	flag.Int64Var(&opts.cacheBytes, "cache-bytes", 0, "result cache bound in bytes (0 = default 64 MiB, negative disables)")
	flag.DurationVar(&opts.drain, "drain", 10*time.Second, "graceful drain bound on shutdown")
	flag.StringVar(&opts.tracedir, "tracedir", "", "write a per-solve trace file into this directory")
	flag.StringVar(&opts.peers, "peers", "", "comma-separated peer lddpd base URLs; when set, POST /v1/fleet/solve shards solves across them")
	flag.IntVar(&opts.bands, "bands", 0, "fleet row bands (0 = one per peer; only with -peers)")
	flag.IntVar(&opts.phaseCols, "phase-cols", 0, "fleet block phase width in columns (0 = default; only with -peers)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts, os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "lddpd:", err)
		os.Exit(1)
	}
}

// run boots the service and blocks until ctx ends (the shutdown signal),
// then drains in the documented order: readiness flips first, the
// listener closes after in-flight requests finish (bounded by -drain),
// and the scheduler closes last. addrCh, when non-nil, receives the
// bound listener address once serving — the test hook for -addr :0.
func run(ctx context.Context, opts options, out io.Writer, addrCh chan<- string) error {
	if opts.tracedir != "" {
		if err := os.MkdirAll(opts.tracedir, 0o755); err != nil {
			return err
		}
	}
	srv, err := server.New(server.Config{
		Workers:     opts.workers,
		Queue:       opts.queue,
		MaxActive:   opts.active,
		Chunk:       opts.chunk,
		MaxInflight: opts.inflight,
		MaxCells:    opts.maxCells,
		CacheBytes:  opts.cacheBytes,
		TraceDir:    opts.tracedir,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		srv.Close()
		return err
	}
	handler := srv.Handler()
	if opts.peers != "" {
		// The fleet coordinator mounts beside the node mux rather than
		// inside it: internal/server stays ignorant of the fleet layer.
		var nodes []*client.Client
		for _, u := range strings.Split(opts.peers, ",") {
			c, err := client.New(strings.TrimSpace(u), client.WithCodec(client.CodecBinary))
			if err != nil {
				srv.Close()
				return fmt.Errorf("-peers: %w", err)
			}
			defer c.Close()
			nodes = append(nodes, c)
		}
		coord, err := fleet.New(fleet.Config{Nodes: nodes, Bands: opts.bands, PhaseCols: opts.phaseCols})
		if err != nil {
			srv.Close()
			return err
		}
		mux := http.NewServeMux()
		mux.Handle("/v1/fleet/solve", fleet.NewHandler(coord, nil))
		mux.Handle("/", handler)
		handler = mux
		fmt.Fprintf(out, "lddpd: fleet coordinator over %d peers\n", len(nodes))
	}
	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(out, "lddpd: serving on %s (workers %d, inflight %d)\n",
		ln.Addr(), srv.Config().Workers, srv.Config().MaxInflight)
	if addrCh != nil {
		addrCh <- ln.Addr().String()
	}

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "lddpd: draining (bound %s)\n", opts.drain)
	// Readiness flips before the listener closes, so a load balancer
	// polling /readyz sees the drain while the port still answers.
	srv.BeginDrain()
	shCtx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	shutdownErr := hs.Shutdown(shCtx)
	srv.Close()
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return fmt.Errorf("drain bound expired: %w", shutdownErr)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "lddpd: drained")
	return nil
}
