package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/lddp/client"
)

// bootDaemon runs the daemon on an ephemeral port and returns its bound
// address, the shutdown trigger, and the exit channel.
func bootDaemon(t *testing.T, opts options, out *bytes.Buffer) (string, context.CancelFunc, chan error) {
	t.Helper()
	opts.addr = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, opts, out, addrCh) }()
	select {
	case addr := <-addrCh:
		return addr, cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited before serving: %v", err)
		return "", nil, nil
	}
}

// TestRunServeAndDrain boots the real daemon path — flags, listener,
// signal context — solves over the wire, then triggers shutdown and
// checks the drain order and log lines.
func TestRunServeAndDrain(t *testing.T) {
	var out bytes.Buffer
	tracedir := filepath.Join(t.TempDir(), "traces")
	addr, cancel, done := bootDaemon(t, options{
		workers: 2, drain: 5 * time.Second, tracedir: tracedir,
	}, &out)
	defer cancel()

	c, err := client.New("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("readyz while serving: %v", err)
	}
	resp, err := c.Solve(context.Background(), &client.SolveRequest{Rows: 16, Cols: 16, Mask: "W,N"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "done" || resp.Digest == "" {
		t.Errorf("solve response malformed: %+v", resp)
	}
	// -tracedir was created by run and holds the per-solve file.
	if _, err := os.Stat(filepath.Join(tracedir, "solve-"+strconv.FormatInt(resp.ID, 10)+".json")); err != nil {
		t.Errorf("trace file missing: %v", err)
	}

	// Shutdown: the signal context ends, the daemon drains and exits nil.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit within the drain bound")
	}
	log := out.String()
	for _, want := range []string{"serving on", "draining", "drained"} {
		if !strings.Contains(log, want) {
			t.Errorf("daemon log missing %q:\n%s", want, log)
		}
	}
	// The listener is gone: a new request must fail at the transport.
	if err := c.Health(context.Background()); err == nil {
		t.Error("healthz still answering after drain")
	} else if apiErr := new(client.APIError); errors.As(err, &apiErr) {
		t.Errorf("post-drain healthz returned HTTP %d; want a transport error", apiErr.HTTPStatus)
	}
}

// TestRunListenFailure pins the error path: a bad address must surface
// from run, not hang.
func TestRunListenFailure(t *testing.T) {
	var out bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := run(ctx, options{addr: "256.0.0.1:bad", workers: 1, drain: time.Second}, &out, nil)
	if err == nil {
		t.Fatal("run with an unusable address returned nil")
	}
}
