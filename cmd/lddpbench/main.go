// Command lddpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	lddpbench -exp all            # every experiment, full sizes
//	lddpbench -exp fig10          # one experiment
//	lddpbench -exp fig13 -quick   # shrunken workloads
//	lddpbench -list               # enumerate experiment IDs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID to run, or 'all'")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	seed := flag.Uint64("seed", experiments.DefaultConfig().Seed, "workload generator seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	outDir := flag.String("out", "", "also write each experiment's tables to <out>/<id>.txt")
	svgDir := flag.String("svg", "", "render the paper's measured figures as SVG charts into this directory and exit")
	traceRuns := flag.Bool("trace", false, "print per-experiment wall times as they complete")
	metricsFile := flag.String("metrics", "", "write a JSON timing document of the run to this file")
	flag.Parse()

	if *svgDir != "" {
		charts, err := experiments.Charts(experiments.Config{Quick: *quick, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for stem, chart := range charts {
			path := filepath.Join(*svgDir, stem+".svg")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := chart.WriteSVG(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
		return
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}

	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.Registry()
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	type runTiming struct {
		ID     string `json:"id"`
		Title  string `json:"title"`
		WallNS int64  `json:"wall_ns"`
		Tables int    `json:"tables"`
	}
	var timings []runTiming

	for _, e := range toRun {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		fmt.Printf("   %s\n\n", e.Description)
		start := time.Now()
		tables, err := e.Run(cfg)
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *traceRuns {
			fmt.Printf("-- %s done in %s (%d tables)\n\n", e.ID, wall.Round(time.Millisecond), len(tables))
		}
		timings = append(timings, runTiming{ID: e.ID, Title: e.Title, WallNS: wall.Nanoseconds(), Tables: len(tables)})
		for _, t := range tables {
			t.Format(os.Stdout)
		}
		if *outDir != "" {
			if err := writeTables(*outDir, e, tables); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	}

	if *metricsFile != "" {
		doc := struct {
			Quick       bool        `json:"quick"`
			Seed        uint64      `json:"seed"`
			Experiments []runTiming `json:"experiments"`
		}{Quick: *quick, Seed: *seed, Experiments: timings}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*metricsFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", *metricsFile)
	}
}

// writeTables stores one experiment's formatted tables under dir.
func writeTables(dir string, e experiments.Experiment, tables []experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, e.ID+".txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "%s\n%s\n\n", e.Title, e.Description)
	for _, t := range tables {
		t.Format(f)
	}
	return f.Close()
}
