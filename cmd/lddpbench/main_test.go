package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestWriteTables(t *testing.T) {
	dir := t.TempDir()
	e, err := experiments.ByID("table2")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(experiments.Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeTables(dir, e, tables); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, e.Title) || !strings.Contains(out, "Anti-diagonal") {
		t.Errorf("written file missing content:\n%s", out)
	}
}

func TestWriteTablesBadDir(t *testing.T) {
	e, _ := experiments.ByID("table1")
	if err := writeTables("/dev/null/nope", e, nil); err == nil {
		t.Error("unwritable dir should error")
	}
}
