// Command lddprun solves one LDDP case-study problem and reports the
// answer plus, for simulated solvers, the heterogeneous execution profile.
//
// Usage:
//
//	lddprun -problem levenshtein -size 2048 -solver hetero
//	lddprun -problem dither -size 512 -solver parallel -workers 8
//	lddprun -problem checkerboard -size 1024 -solver hetero -platform Hetero-Low -gantt
//	lddprun -problem checkerboard -size 4096 -solver multi -accels k20,phi
//	lddprun -problem lcs -size 2048 -solver hetero -metrics
//	lddprun -problem levenshtein -size 2048 -solver parallel -traceout t.json
//	lddprun -problem levenshtein -size 2048 -solver async -traceout a.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/hetsim"
	"repro/internal/trace"
	"repro/lddp"
)

func main() {
	problem := flag.String("problem", "levenshtein", fmt.Sprintf("one of %v", cli.ProblemNames()))
	size := flag.Int("size", 1024, "table side length")
	solver := flag.String("solver", "hetero", "seq, parallel, async, tiled, resilient, cpu, gpu, hetero or multi")
	workers := flag.Int("workers", 0, "workers for -solver parallel/async/tiled (0 = min(GOMAXPROCS, NumCPU))")
	platform := flag.String("platform", "Hetero-High", "simulated platform (Hetero-High, Hetero-Low, Hetero-Phi, Hetero-Modern)")
	platformFile := flag.String("platform-file", "", "load a custom platform calibration from a JSON file (overrides -platform)")
	tswitch := flag.Int("tswitch", -1, "t_switch (-1 = auto)")
	tshare := flag.Int("tshare", -1, "t_share (-1 = auto)")
	seed := flag.Uint64("seed", 1, "workload seed")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart of the simulated timeline")
	csv := flag.Bool("csv", false, "dump the simulated timeline as CSV")
	accels := flag.String("accels", "", "comma-separated accelerators for -solver multi (k20,gt650m,phi)")
	tile := flag.Int("tile", 0, "tile size for -solver tiled (0 = auto)")
	replicas := flag.Int("replicas", 3, "memory replicas for -solver resilient")
	faultRate := flag.Int("faultrate", 1, "percent of writes corrupted per replica for -solver resilient")
	htmlOut := flag.String("html", "", "write an HTML Gantt chart of the simulated timeline to this file")
	metricsOut := flag.Bool("metrics", false, "emit the collected runtime metrics as JSON on stdout")
	traceOut := flag.Bool("trace", false, "print a phase/worker trace table of the solve")
	traceFile := flag.String("traceout", "", "record runtime events and write them as Chrome trace-event JSON to this file (analyze with lddptrace or ui.perfetto.dev)")
	flag.Parse()

	inst, err := cli.BuildInstance(*problem, *size, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("problem=%s table=%dx%d pattern=%s\n", inst.Name, inst.Rows, inst.Cols, inst.Pattern)

	// One collector serves both reporting flags; solvers that never emit
	// events (seq, resilient) just yield an empty document.
	var metrics *lddp.Metrics
	var coll core.Collector
	if *metricsOut || *traceOut {
		metrics = &lddp.Metrics{}
		coll = metrics
	}
	var tracer *lddp.Tracer
	if *traceFile != "" {
		tracer = lddp.NewTracer()
	}

	switch *solver {
	case "seq":
		ans, err := inst.SolveSeq()
		if err != nil {
			fatal(err)
		}
		fmt.Println(ans)
	case "tiled":
		tl := *tile
		if tl <= 0 {
			tl = core.DefaultTile(4)
		}
		ans, err := inst.SolveTiled(tl, core.Options{NativeWorkers: *workers, Collector: coll, Tracer: tracer})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s (tile=%d)\n", ans, tl)
	case "resilient":
		ans, corrected, err := inst.SolveResilient(*replicas, *faultRate, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s (replicas=%d, detected faults at %d cells)\n", ans, *replicas, corrected)
	case "parallel":
		ans, err := inst.SolveParallel(core.Options{NativeWorkers: *workers, Collector: coll, Tracer: tracer})
		if err != nil {
			fatal(err)
		}
		fmt.Println(ans)
	case "async":
		ans, err := inst.SolveAsync(core.Options{NativeWorkers: *workers, Collector: coll, Tracer: tracer})
		if err != nil {
			fatal(err)
		}
		fmt.Println(ans)
	case "cpu", "gpu", "hetero", "multi":
		var plat *hetsim.Platform
		var err error
		if *platformFile != "" {
			data, rerr := os.ReadFile(*platformFile)
			if rerr != nil {
				fatal(rerr)
			}
			plat, err = hetsim.LoadPlatform(data)
		} else {
			plat, err = hetsim.PlatformByName(*platform)
		}
		if err != nil {
			fatal(err)
		}
		opts := core.Options{Platform: plat, TSwitch: *tswitch, TShare: *tshare, Collector: coll, Tracer: tracer}
		var info cli.SimInfo
		if *solver == "multi" {
			names := strings.Split(*accels, ",")
			if *accels == "" {
				names = []string{"k20", "gt650m"}
			}
			info, err = inst.SolveMulti(names, opts)
		} else {
			info, err = inst.SolveSim(*solver, opts)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println(info.Result)
		fmt.Printf("executed=%s transfer=%s t_switch=%d t_share=%d\n",
			info.Executed, info.Transfer, info.TSwitch, info.TShare)
		fmt.Printf("simulated: %s\n", trace.StatsLine(info.Timeline))
		if *gantt {
			fmt.Print(trace.Gantt(info.Timeline, 100))
		}
		if *csv {
			if err := trace.WriteCSV(os.Stdout, info.Timeline); err != nil {
				fatal(err)
			}
		}
		if *htmlOut != "" {
			f, err := os.Create(*htmlOut)
			if err != nil {
				fatal(err)
			}
			title := fmt.Sprintf("%s %dx%d (%s)", inst.Name, inst.Rows, inst.Cols, *solver)
			if err := trace.WriteHTMLGantt(f, info.Timeline, title); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *htmlOut)
		}
	default:
		fatal(fmt.Errorf("unknown solver %q", *solver))
	}

	if tracer != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		if err := lddp.WriteTrace(f, tracer); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		n := len(tracer.Events())
		if n == 0 {
			fmt.Printf("wrote %s (no events: solver %q is untraced)\n", *traceFile, *solver)
		} else {
			fmt.Printf("wrote %s (%d events, %d dropped)\n", *traceFile, n, tracer.Dropped())
		}
	}
	if *traceOut {
		printTrace(metrics.Snapshot())
	}
	if *metricsOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(metrics.Snapshot()); err != nil {
			fatal(err)
		}
	}
}

// printTrace renders the collected metrics as a readable table.
func printTrace(s lddp.MetricsSnapshot) {
	fmt.Printf("trace: solver=%s fronts=%d cells=%d\n", s.Solver, s.TotalFronts, s.TotalCells)
	for _, ph := range s.Phases {
		fmt.Printf("  phase %-12s wall=%-14s spans=%d\n", ph.Name, time.Duration(ph.WallNS), ph.Count)
	}
	for _, w := range s.Workers {
		fmt.Printf("  worker %-3d chunks=%-6d cells=%-10d busy=%-14s util=%.2f\n",
			w.Worker, w.Chunks, w.Cells, time.Duration(w.BusyNS), w.Utilization)
	}
	tr := s.Transfers
	if tr.BoundaryH2D.Count+tr.BoundaryD2H.Count+tr.BulkH2D.Count+tr.BulkD2H.Count > 0 {
		fmt.Printf("  transfers boundary h2d=%dB/%d d2h=%dB/%d bulk h2d=%dB/%d d2h=%dB/%d\n",
			tr.BoundaryH2D.Bytes, tr.BoundaryH2D.Count, tr.BoundaryD2H.Bytes, tr.BoundaryD2H.Count,
			tr.BulkH2D.Bytes, tr.BulkH2D.Count, tr.BulkD2H.Bytes, tr.BulkD2H.Count)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lddprun:", err)
	os.Exit(1)
}
