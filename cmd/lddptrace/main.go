// Command lddptrace analyzes a runtime trace written by
// `lddprun -traceout` (or lddp.WriteTrace): per-worker utilization
// timelines, the barrier-stall breakdown per front, and the critical
// path through the front DAG.
//
// Usage:
//
//	lddprun -problem levenshtein -size 2048 -solver parallel -traceout t.json
//	lddptrace t.json
//	lddptrace -json t.json | jq .stall
//	lddptrace -buckets 120 t.json
//
// The input is Chrome trace-event JSON; "-" reads stdin. With -json the
// full analyzed report is emitted as JSON instead of the text summary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the analyzed report as JSON")
	buckets := flag.Int("buckets", 0, "utilization timeline buckets (0 = 60)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lddptrace [-json] [-buckets n] <trace.json | ->")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	meta, events, err := trace.ReadChrome(in)
	if err != nil {
		fatal(err)
	}
	rep := trace.Analyze(meta, events, *buckets)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	if err := trace.WriteSummary(os.Stdout, rep); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lddptrace:", err)
	os.Exit(1)
}
