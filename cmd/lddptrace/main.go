// Command lddptrace analyzes a runtime trace written by
// `lddprun -traceout` (or lddp.WriteTrace): per-worker utilization
// timelines, the barrier-stall breakdown per front, and the critical
// path through the front DAG.
//
// Usage:
//
//	lddprun -problem levenshtein -size 2048 -solver parallel -traceout t.json
//	lddptrace t.json
//	lddptrace -json t.json | jq .stall
//	lddptrace -buckets 120 t.json
//	lddptrace -barrier-under pool.json async.json
//
// With -barrier-under the tool analyzes both traces and exits non-zero
// unless the main trace's total barrier stall is strictly below the
// reference trace's — the assertion the async-smoke CI gate runs to
// prove the barrier-free executor actually removes epoch stalls.
//
// The input is Chrome trace-event JSON; "-" reads stdin. With -json the
// full analyzed report is emitted as JSON instead of the text summary.
//
// Stitched fleet timelines (written by the fleet coordinator's
// -tracedir, one process lane per node) are detected by their fleet_id
// metadata and routed through the fleet analyzer instead: per-node
// utilization, halo wait/transfer totals, and the fleet critical path
// through the block DAG.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the analyzed report as JSON")
	buckets := flag.Int("buckets", 0, "utilization timeline buckets (0 = 60)")
	barrierUnder := flag.String("barrier-under", "", "reference trace file; fail unless this trace's barrier stall is strictly below the reference's")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lddptrace [-json] [-buckets n] <trace.json | ->")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	// Buffer the document before parsing: stdin cannot be re-read, and a
	// fleet trace needs the second (PID-retaining) parse.
	data, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}

	doc, err := trace.ReadFleetChrome(bytes.NewReader(data))
	if err != nil {
		fatal(err)
	}
	if trace.IsFleetDoc(doc.Meta) {
		emit(trace.AnalyzeFleet(doc), func(w io.Writer, rep *trace.FleetReport) error {
			return trace.WriteFleetSummary(w, rep)
		}, *jsonOut)
		return
	}

	meta, events, err := trace.ReadChrome(bytes.NewReader(data))
	if err != nil {
		fatal(err)
	}
	rep := trace.Analyze(meta, events, *buckets)
	emit(rep, func(w io.Writer, rep *trace.Report) error {
		return trace.WriteSummary(w, rep)
	}, *jsonOut)

	if *barrierUnder != "" {
		ref := analyzeFile(*barrierUnder, *buckets)
		fmt.Printf("barrier stall: %s=%dns (%s) reference %s=%dns (%s)\n",
			flag.Arg(0), rep.Stall.BarrierNS, rep.Meta.Solver,
			*barrierUnder, ref.Stall.BarrierNS, ref.Meta.Solver)
		if rep.Stall.BarrierNS >= ref.Stall.BarrierNS {
			fatal(fmt.Errorf("barrier-under: %s stalled %dns at barriers, not below %s's %dns",
				flag.Arg(0), rep.Stall.BarrierNS, *barrierUnder, ref.Stall.BarrierNS))
		}
	}
}

// analyzeFile reads and analyzes a single-process trace file.
func analyzeFile(name string, buckets int) *trace.Report {
	data, err := os.ReadFile(name)
	if err != nil {
		fatal(err)
	}
	meta, events, err := trace.ReadChrome(bytes.NewReader(data))
	if err != nil {
		fatal(err)
	}
	return trace.Analyze(meta, events, buckets)
}

// emit writes the report as indented JSON or through its text renderer.
func emit[T any](rep T, text func(io.Writer, T) error, jsonOut bool) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	if err := text(os.Stdout, rep); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lddptrace:", err)
	os.Exit(1)
}
