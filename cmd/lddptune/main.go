// Command lddptune runs the paper's §V-A empirical parameter search for a
// problem and prints both sweep curves (Figure 7 is the first of them).
//
// Usage:
//
//	lddptune -problem lcs -size 4096
//	lddptune -problem dither -size 2048 -platform Hetero-Low
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/hetsim"
	"repro/internal/trace"
)

func main() {
	problem := flag.String("problem", "lcs", fmt.Sprintf("one of %v", cli.ProblemNames()))
	size := flag.Int("size", 4096, "table side length")
	platform := flag.String("platform", "Hetero-High", "simulated platform")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	inst, err := cli.BuildInstance(*problem, *size, *seed)
	if err != nil {
		fatal(err)
	}
	plat, err := hetsim.PlatformByName(*platform)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("problem=%s table=%dx%d pattern=%s platform=%s\n",
		inst.Name, inst.Rows, inst.Cols, inst.Pattern, plat.Name)

	res, err := inst.Tune(core.Options{Platform: plat})
	if err != nil {
		fatal(err)
	}

	fmt.Println("\nt_switch sweep (t_share = 0):")
	for _, pt := range res.SwitchCurve {
		mark := ""
		if pt.Value == res.TSwitch {
			mark = "  <-- optimal"
		}
		fmt.Printf("  t_switch=%-8d %s%s\n", pt.Value, trace.FormatDuration(pt.Time), mark)
	}
	fmt.Printf("\nt_share sweep (t_switch = %d):\n", res.TSwitch)
	for _, pt := range res.ShareCurve {
		mark := ""
		if pt.Value == res.TShare {
			mark = "  <-- optimal"
		}
		fmt.Printf("  t_share=%-8d %s%s\n", pt.Value, trace.FormatDuration(pt.Time), mark)
	}
	fmt.Printf("\nchosen: t_switch=%d t_share=%d time=%s\n",
		res.TSwitch, res.TShare, trace.FormatDuration(res.Time))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lddptune:", err)
	os.Exit(1)
}
