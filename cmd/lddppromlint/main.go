// Command lddppromlint validates Prometheus text exposition (format
// 0.0.4) produced by lddpd's /v1/metrics?format=prometheus. It is the
// fleet smoke test's scrape checker: stricter than a real scraper, so a
// formatting regression fails CI instead of silently dropping series.
//
// Usage:
//
//	lddppromlint metrics.txt            # lint a saved scrape
//	curl -s $NODE/v1/metrics?format=prometheus | lddppromlint -
//	lddppromlint -url http://127.0.0.1:8080/v1/metrics?format=prometheus
//
// With -url the endpoint is fetched directly (no curl needed). On
// success it prints one line per input — family and sample counts — and
// exits 0; any lint problem lists every finding and exits 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/promlint"
)

func main() {
	url := flag.String("url", "", "scrape this URL and lint the response body")
	flag.Parse()
	if (*url == "") == (flag.NArg() == 0) {
		fmt.Fprintln(os.Stderr, "usage: lddppromlint <metrics.txt | -> | lddppromlint -url <endpoint>")
		os.Exit(2)
	}

	failed := false
	if *url != "" {
		failed = lintOne(*url, fetch(*url))
	} else {
		for _, name := range flag.Args() {
			var in io.ReadCloser = os.Stdin
			if name != "-" {
				f, err := os.Open(name)
				if err != nil {
					fatal(err)
				}
				in = f
			}
			if lintOne(name, in) {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// lintOne lints one document, reports, and returns whether it failed.
func lintOne(name string, in io.ReadCloser) bool {
	defer in.Close()
	res, err := promlint.Lint(in)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	if len(res.Problems) > 0 {
		fmt.Fprintf(os.Stderr, "lddppromlint: %s: %d problem(s)\n", name, len(res.Problems))
		for _, p := range res.Problems {
			fmt.Fprintf(os.Stderr, "  %s\n", p)
		}
		return true
	}
	fmt.Printf("%s: ok (%d families, %d samples)\n", name, len(res.Families), res.Samples)
	return false
}

// fetch GETs the metrics endpoint and returns its body, failing the
// process on transport or status errors.
func fetch(url string) io.ReadCloser {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		resp.Body.Close()
		fatal(fmt.Errorf("%s: status %s: %s", url, resp.Status, body))
	}
	return resp.Body
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lddppromlint:", err)
	os.Exit(1)
}
