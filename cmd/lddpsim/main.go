// Command lddpsim runs one seeded fleet scenario through the scenario
// engine (repro/internal/sim): it boots -nodes in-process lddpd
// serving stacks, drives a randomized operation mix (solves across
// workload kinds and dependency masks, fleet band solves, cache
// replays, metrics/Prometheus/trace scrapes) while injecting faults
// (node kills, drains, response delay/drop/truncation, context
// cancellations, admission saturation), and verifies the run's
// invariants: oracle digest equality for every 200, typed errors only,
// Retry-After honored on the wire, readiness flipping before listeners
// close, lint-clean Prometheus output, relocation accounting, zero
// goroutine leaks.
//
// Usage:
//
//	lddpsim -seed 7                        # one scenario, default shape
//	lddpsim -seed 7 -nodes 4 -ops 120 -kills 1 -drains 1
//	lddpsim -seed 7 -record oplog.json     # save the schedule it ran
//	lddpsim -replay oplog.json             # re-run a recorded schedule
//
// On an invariant violation lddpsim prints the seed, writes the op log
// (to -record, or a temp file when unset), and exits 1 — the printed
// -replay invocation reproduces the exact operation schedule.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/sim"
)

type options struct {
	seed     int64
	nodes    int
	ops      int
	maxdim   int
	kills    int
	drains   int
	arms     int
	record   string
	replay   string
	tracedir string
	timeout  time.Duration
	verbose  bool
}

func main() {
	var opts options
	flag.Int64Var(&opts.seed, "seed", 1, "scenario seed (ignored with -replay)")
	flag.IntVar(&opts.nodes, "nodes", 3, "in-process lddpd nodes to boot")
	flag.IntVar(&opts.ops, "ops", 60, "scheduled operations")
	flag.IntVar(&opts.maxdim, "maxdim", 24, "max rows/cols of one solve")
	flag.IntVar(&opts.kills, "kills", 1, "nodes killed mid-run (capped to keep one alive)")
	flag.IntVar(&opts.drains, "drains", 0, "nodes drained mid-run")
	flag.IntVar(&opts.arms, "arms", 0, "admission-saturation bursts (0 = one on big runs, negative = none)")
	flag.StringVar(&opts.record, "record", "", "write the executed schedule (op log) to this file")
	flag.StringVar(&opts.replay, "replay", "", "replay a recorded op log instead of generating")
	flag.StringVar(&opts.tracedir, "tracedir", "", "keep node and fleet traces here (default: temp, removed)")
	flag.DurationVar(&opts.timeout, "timeout", 2*time.Minute, "whole-run bound; expiry is a hang violation")
	flag.BoolVar(&opts.verbose, "v", false, "log every op outcome")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lddpsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, opts options, out io.Writer) error {
	cfg := sim.Config{
		Gen: sim.GenConfig{
			Seed: opts.seed, Nodes: opts.nodes, Ops: opts.ops,
			MaxDim: opts.maxdim, Kills: opts.kills, Drains: opts.drains,
			Arms: opts.arms,
		},
		TraceDir: opts.tracedir,
		Timeout:  opts.timeout,
		Verbose:  opts.verbose,
		Out:      out,
	}
	if opts.replay != "" {
		s, err := sim.LoadSchedule(opts.replay)
		if err != nil {
			return err
		}
		cfg.Schedule = s
		fmt.Fprintf(out, "lddpsim: replaying %s (seed %d, %d ops, %d nodes)\n",
			opts.replay, s.Seed, len(s.Ops), s.Nodes)
	}
	rep, err := sim.Run(ctx, cfg)
	if err != nil {
		return err
	}
	if opts.record != "" {
		if err := sim.SaveSchedule(opts.record, rep.Schedule); err != nil {
			return fmt.Errorf("recording op log: %w", err)
		}
		fmt.Fprintf(out, "lddpsim: op log recorded to %s\n", opts.record)
	}
	fmt.Fprintf(out, "lddpsim: seed %d: %d ops, classes %v, relocations %d, 429s %d in %s\n",
		rep.Schedule.Seed, len(rep.Schedule.Ops), rep.Classes, rep.Relocations,
		rep.Rejected429, rep.Elapsed.Round(time.Millisecond))
	if verr := rep.Err(); verr != nil {
		// A failing run must leave a reproducer behind even without
		// -record: the op log plus the printed seed is the whole bug
		// report.
		path := opts.record
		if path == "" {
			path = filepath.Join(os.TempDir(), fmt.Sprintf("lddpsim-oplog-%d.json", rep.Schedule.Seed))
			if err := sim.SaveSchedule(path, rep.Schedule); err != nil {
				fmt.Fprintf(out, "lddpsim: could not save op log: %v\n", err)
				path = ""
			}
		}
		if path != "" {
			fmt.Fprintf(out, "lddpsim: reproduce with: lddpsim -replay %s\n", path)
		}
		return verr
	}
	fmt.Fprintln(out, "lddpsim: all invariants held")
	return nil
}
