// CLI-level pins: a clean run reports success, -record/-replay round
// trip, and a hand-broken op log is rejected before anything boots.
package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunRecordReplay(t *testing.T) {
	dir := t.TempDir()
	oplog := filepath.Join(dir, "oplog.json")
	opts := options{
		seed: 5, nodes: 2, ops: 20, maxdim: 16, arms: -1,
		record: oplog, timeout: 90 * time.Second,
	}
	var out bytes.Buffer
	if err := run(context.Background(), opts, &out); err != nil {
		t.Fatalf("clean run failed: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all invariants held") {
		t.Errorf("success line missing from output:\n%s", out.String())
	}
	if _, err := os.Stat(oplog); err != nil {
		t.Fatalf("-record wrote no op log: %v", err)
	}

	out.Reset()
	ropts := options{replay: oplog, timeout: 90 * time.Second}
	if err := run(context.Background(), ropts, &out); err != nil {
		t.Fatalf("replay failed: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replaying "+oplog) {
		t.Errorf("replay banner missing:\n%s", out.String())
	}
}

func TestRunRejectsBrokenOplog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.json")
	if err := os.WriteFile(path, []byte(`{"nodes": 0, "ops": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), options{replay: path, timeout: time.Minute}, new(bytes.Buffer))
	if err == nil {
		t.Fatal("broken op log accepted")
	}
}
