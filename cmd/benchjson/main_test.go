package main

import (
	"runtime"
	"testing"
	"time"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkNativePoolLevenshtein4k-8   	       3	 123456789 ns/op	     120 B/op	       7 allocs/op")
	if !ok {
		t.Fatal("parseLine rejected a valid result line")
	}
	if r.Name != "BenchmarkNativePoolLevenshtein4k-8" || r.Iterations != 3 ||
		r.NsPerOp != 123456789 || r.BytesPerOp != 120 || r.AllocsPerOp != 7 {
		t.Errorf("parsed %+v", r)
	}
	if _, ok := parseLine("BenchmarkBroken-8"); ok {
		t.Error("parseLine accepted a truncated line")
	}
	if _, ok := parseLine("BenchmarkNoTime-8  5  garbage ns/op"); ok {
		t.Error("parseLine accepted a line without a numeric time")
	}
}

func TestCheckAssert(t *testing.T) {
	benchmarks := []result{
		{Name: "BenchmarkServerSolveBatch8x512/wire-8", NsPerOp: 5e7, AllocsPerOp: 1300},
		{Name: "BenchmarkServerSolveBatch8x512/wire-binary-8", NsPerOp: 5e7, AllocsPerOp: 1450},
		{Name: "BenchmarkServerSolveBatch8x512/direct-8", NsPerOp: 5e7},
	}
	if msgs := checkAssert("wire-binary<=1600", benchmarks); len(msgs) != 0 {
		t.Errorf("within-budget assert failed: %v", msgs)
	}
	if msgs := checkAssert("wire-binary<=1000", benchmarks); len(msgs) != 1 {
		t.Errorf("over-budget assert produced %v, want one violation", msgs)
	}
	// "wire" matches both wire variants; the binary one breaks a budget of
	// 1400.
	if msgs := checkAssert("wire<=1400", benchmarks); len(msgs) != 1 {
		t.Errorf("substring assert produced %v, want one violation", msgs)
	}
	if msgs := checkAssert("no-such-bench<=10", benchmarks); len(msgs) != 1 {
		t.Errorf("unmatched assert produced %v, want one no-match error", msgs)
	}
	if msgs := checkAssert("garbage", benchmarks); len(msgs) != 1 {
		t.Errorf("malformed assert produced %v, want one parse error", msgs)
	}
	if msgs := checkAssert("wire<=not-a-number", benchmarks); len(msgs) != 1 {
		t.Errorf("bad-limit assert produced %v, want one parse error", msgs)
	}
}

func TestRunMetadata(t *testing.T) {
	rep := report{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Commit:     gitCommit(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	if rep.GoVersion == "" || rep.GoMaxProcs < 1 {
		t.Errorf("metadata incomplete: %+v", rep)
	}
	if _, err := time.Parse(time.RFC3339, rep.Timestamp); err != nil {
		t.Errorf("timestamp %q is not RFC3339: %v", rep.Timestamp, err)
	}
	// Commit is best-effort (empty outside a git checkout); this test runs
	// inside the repo, so it should resolve.
	if rep.Commit == "" {
		t.Log("gitCommit returned empty (no git in environment?)")
	}
}
