package main

import (
	"runtime"
	"testing"
	"time"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkNativePoolLevenshtein4k-8   	       3	 123456789 ns/op	     120 B/op	       7 allocs/op")
	if !ok {
		t.Fatal("parseLine rejected a valid result line")
	}
	if r.Name != "BenchmarkNativePoolLevenshtein4k-8" || r.Iterations != 3 ||
		r.NsPerOp != 123456789 || r.BytesPerOp != 120 || r.AllocsPerOp != 7 {
		t.Errorf("parsed %+v", r)
	}
	if _, ok := parseLine("BenchmarkBroken-8"); ok {
		t.Error("parseLine accepted a truncated line")
	}
	if _, ok := parseLine("BenchmarkNoTime-8  5  garbage ns/op"); ok {
		t.Error("parseLine accepted a line without a numeric time")
	}
}

func TestRunMetadata(t *testing.T) {
	rep := report{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Commit:     gitCommit(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	if rep.GoVersion == "" || rep.GoMaxProcs < 1 {
		t.Errorf("metadata incomplete: %+v", rep)
	}
	if _, err := time.Parse(time.RFC3339, rep.Timestamp); err != nil {
		t.Errorf("timestamp %q is not RFC3339: %v", rep.Timestamp, err)
	}
	// Commit is best-effort (empty outside a git checkout); this test runs
	// inside the repo, so it should resolve.
	if rep.Commit == "" {
		t.Log("gitCommit returned empty (no git in environment?)")
	}
}
