// Command benchjson converts `go test -bench -benchmem` output on stdin
// into the JSON records committed as BENCH_*.json. It keeps only the
// benchmark result lines plus the goos/goarch/cpu header, so a reference
// run can be diffed and archived without the test-runner chatter. -desc
// overrides the description line (e.g. to name the make target that
// regenerates the file).
//
// -assert turns the converter into a budget gate: each
// "substring<=limit" (repeatable) selects the benchmarks whose name
// contains the substring and fails the run (exit 1, JSON still written)
// when any of them exceeds the limit in allocs/op — the CI hook that
// keeps a perf-sensitive path from silently regressing its allocation
// budget. A pattern matching no benchmark is also an error: a renamed
// benchmark must not turn the gate into a no-op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type report struct {
	Description string   `json:"description"`
	Goos        string   `json:"goos,omitempty"`
	Goarch      string   `json:"goarch,omitempty"`
	CPU         string   `json:"cpu,omitempty"`
	GoVersion   string   `json:"go_version,omitempty"`
	GoMaxProcs  int      `json:"gomaxprocs,omitempty"`
	Commit      string   `json:"commit,omitempty"`
	Timestamp   string   `json:"timestamp,omitempty"`
	Benchmarks  []result `json:"benchmarks"`
}

// assertList collects repeated -assert flags.
type assertList []string

func (a *assertList) String() string     { return strings.Join(*a, ",") }
func (a *assertList) Set(v string) error { *a = append(*a, v); return nil }

func main() {
	desc := flag.String("desc", "Reference benchmark run; real wall-clock numbers from one machine. Regenerate with `make bench`.",
		"description line embedded in the report")
	var asserts assertList
	flag.Var(&asserts, "assert", "allocs/op budget as 'substring<=limit' (repeatable); fail when any matching benchmark exceeds it")
	flag.Parse()
	rep := report{
		Description: *desc,
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Commit:      gitCommit(),
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	failed := false
	for _, a := range asserts {
		for _, msg := range checkAssert(a, rep.Benchmarks) {
			fmt.Fprintln(os.Stderr, "benchjson:", msg)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkAssert evaluates one 'substring<=limit' budget against the parsed
// results and returns one message per violation (malformed spec and
// no-match are violations too — a silent gate is worse than none).
func checkAssert(spec string, benchmarks []result) []string {
	name, limitStr, ok := strings.Cut(spec, "<=")
	if !ok {
		return []string{fmt.Sprintf("assert %q: want 'substring<=limit'", spec)}
	}
	limit, err := strconv.ParseInt(strings.TrimSpace(limitStr), 10, 64)
	if err != nil {
		return []string{fmt.Sprintf("assert %q: bad limit: %v", spec, err)}
	}
	name = strings.TrimSpace(name)
	var msgs []string
	matched := false
	for _, r := range benchmarks {
		if !strings.Contains(r.Name, name) {
			continue
		}
		matched = true
		if r.AllocsPerOp > limit {
			msgs = append(msgs, fmt.Sprintf("assert %q: %s at %d allocs/op exceeds budget %d",
				spec, r.Name, r.AllocsPerOp, limit))
		}
	}
	if !matched {
		msgs = append(msgs, fmt.Sprintf("assert %q: no benchmark matched %q (renamed without updating the budget?)", spec, name))
	}
	return msgs
}

// gitCommit resolves the short commit hash of the working tree,
// best-effort: runs outside a checkout (or without git) produce records
// without a commit field rather than failing.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// parseLine decodes one `BenchmarkName-P  N  X ns/op  [Y B/op  Z allocs/op]`
// result line. Unknown units are ignored so custom ReportMetric columns
// pass through harmlessly.
func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return r, r.NsPerOp > 0
}
