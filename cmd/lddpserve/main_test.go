package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunSchedMode(t *testing.T) {
	var out strings.Builder
	opts := options{solves: 8, size: 96, mask: "W,N", seed: 1, mode: "sched", workers: 2}
	if err := run(opts, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "sched: 8 solves, 8 done") {
		t.Errorf("output missing completed batch line:\n%s", got)
	}
}

func TestRunCompareModeWritesRatioAndMetrics(t *testing.T) {
	var out strings.Builder
	metricsPath := filepath.Join(t.TempDir(), "metrics.json")
	opts := options{
		solves: 4, size: 64, mask: "W,NW,N", seed: 1,
		mode: "compare", workers: 2, metrics: metricsPath,
	}
	if err := run(opts, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "compare: scheduler/sequential throughput ratio") {
		t.Errorf("output missing compare line:\n%s", got)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("metrics file is not JSON: %v", err)
	}
	sched, ok := doc["sched"].(map[string]any)
	if !ok {
		t.Fatalf("metrics document has no sched section: %s", data)
	}
	if sched["done"].(float64) != 4 {
		t.Errorf("metrics sched.done = %v, want 4", sched["done"])
	}
}

func TestRunMixWithDeadlines(t *testing.T) {
	var out strings.Builder
	opts := options{
		solves: 12, size: 128, mask: "W,N", mix: true, seed: 7,
		mode: "sched", workers: 2, timeout: 5 * time.Millisecond,
	}
	// With deadlines, canceled/rejected outcomes are expected and must
	// not fail the run; only unexpected error types do.
	if err := run(opts, &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run(options{solves: 4, size: 32, mask: "W,N", mode: "nope"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run(options{solves: 0, size: 32, mask: "W,N", mode: "sched"}, &out); err == nil {
		t.Error("zero solves accepted")
	}
	if err := run(options{solves: 1, size: 32, mask: "E,Q", mode: "sched"}, &out); err == nil {
		t.Error("bad mask accepted")
	}
}
