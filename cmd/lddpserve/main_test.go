package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func TestRunSchedMode(t *testing.T) {
	var out strings.Builder
	opts := options{solves: 8, size: 96, mask: "W,N", seed: 1, mode: "sched", workers: 2}
	if err := run(opts, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "sched: 8 solves, 8 done") {
		t.Errorf("output missing completed batch line:\n%s", got)
	}
}

func TestRunCompareModeWritesRatioAndMetrics(t *testing.T) {
	var out strings.Builder
	metricsPath := filepath.Join(t.TempDir(), "metrics.json")
	opts := options{
		solves: 4, size: 64, mask: "W,NW,N", seed: 1,
		mode: "compare", workers: 2, metrics: metricsPath,
	}
	if err := run(opts, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "compare: scheduler/sequential throughput ratio") {
		t.Errorf("output missing compare line:\n%s", got)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("metrics file is not JSON: %v", err)
	}
	sched, ok := doc["sched"].(map[string]any)
	if !ok {
		t.Fatalf("metrics document has no sched section: %s", data)
	}
	if sched["done"].(float64) != 4 {
		t.Errorf("metrics sched.done = %v, want 4", sched["done"])
	}
}

func TestRunMixWithDeadlines(t *testing.T) {
	var out strings.Builder
	opts := options{
		solves: 12, size: 128, mask: "W,N", mix: true, seed: 7,
		mode: "sched", workers: 2, timeout: 5 * time.Millisecond,
	}
	// With deadlines, canceled/rejected outcomes are expected and must
	// not fail the run; only unexpected error types do.
	if err := run(opts, &out); err != nil {
		t.Fatal(err)
	}
}

// TestRunRemoteMode drives -url against an in-process lddpd handler
// stack: the batch goes through the client and HTTP, the outcome line
// switches to "remote:", and -metrics fetches the server's snapshot.
func TestRunRemoteMode(t *testing.T) {
	srv, err := server.New(server.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out strings.Builder
	metricsPath := filepath.Join(t.TempDir(), "server_metrics.json")
	opts := options{
		solves: 8, size: 64, mask: "W,NW,N", seed: 1, mode: "sched",
		url: ts.URL, retries: 2, metrics: metricsPath,
	}
	if err := run(opts, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "remote: 8 solves, 8 done") {
		t.Errorf("output missing remote batch line:\n%s", got)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("server metrics file is not JSON: %v", err)
	}
	sched, ok := doc["sched"].(map[string]any)
	if !ok {
		t.Fatalf("metrics document has no sched section: %s", data)
	}
	if sched["done"].(float64) < 8 {
		t.Errorf("server metrics sched.done = %v, want >= 8", sched["done"])
	}
}

// TestRunRemoteRejectsLocalModes pins the flag guard: -url only makes
// sense for the sched batch, not the local seq/compare baselines.
func TestRunRemoteRejectsLocalModes(t *testing.T) {
	var out strings.Builder
	opts := options{solves: 2, size: 32, mask: "W,N", mode: "compare", url: "http://127.0.0.1:1"}
	if err := run(opts, &out); err == nil {
		t.Error("-url with -mode compare accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run(options{solves: 4, size: 32, mask: "W,N", mode: "nope"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run(options{solves: 0, size: 32, mask: "W,N", mode: "sched"}, &out); err == nil {
		t.Error("zero solves accepted")
	}
	if err := run(options{solves: 1, size: 32, mask: "E,Q", mode: "sched"}, &out); err == nil {
		t.Error("bad mask accepted")
	}
}
