// Command lddpserve is the shared-scheduler load driver: it fires a batch
// of concurrent solve submissions at one lddp.Scheduler and reports
// aggregate throughput, outcome counts, and scheduler statistics. It is
// both the CI smoke test for the scheduler under real concurrency and the
// tool behind the multi-solve throughput numbers in EXPERIMENTS.md. With
// -url it drives a remote lddpd server through the repro/lddp/client
// package instead of an in-process scheduler, running the identical
// kernel (the requests carry the "serve" workload kind).
//
// Usage:
//
//	lddpserve -solves 16 -size 1024                  # 16 concurrent 1024x1024 solves
//	lddpserve -mode compare -solves 16 -size 512     # scheduler vs back-to-back Solve
//	lddpserve -mix -solves 32 -timeout 50ms          # mixed sizes and masks, deadlines
//	lddpserve -metrics out.json                      # dump the metrics snapshot
//	lddpserve -url http://127.0.0.1:8080 -solves 16  # same batch against a lddpd server
//	lddpserve -fleet http://n1:8080,http://n2:8080   # band-shard each solve across nodes
//
// Exit status is 0 when every submission ends in an expected state (done,
// or canceled/rejected under -timeout), 1 otherwise.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
	"repro/lddp"
	"repro/lddp/client"
)

type options struct {
	solves  int
	size    int
	mask    string
	mix     bool
	seed    int64
	workers int
	queue   int
	active  int
	chunk   int
	timeout time.Duration
	mode    string
	metrics string
	url     string
	retries int
	codec   string

	fleet     string
	bands     int
	phaseCols int
	verify    bool
	tracedir  string
}

func main() {
	var opts options
	flag.IntVar(&opts.solves, "solves", 16, "number of concurrent solve submissions")
	flag.IntVar(&opts.size, "size", 512, "table dimension (rows = cols = size)")
	flag.StringVar(&opts.mask, "mask", "W,N", "contributing set, e.g. 'W,N' or '{W,NW,NE}'")
	flag.BoolVar(&opts.mix, "mix", false, "randomize masks and sizes per submission (seeded)")
	flag.Int64Var(&opts.seed, "seed", 1, "seed for -mix randomization")
	flag.IntVar(&opts.workers, "workers", 0, "scheduler workers (0 = min(GOMAXPROCS, NumCPU))")
	flag.IntVar(&opts.queue, "queue", 0, "admission queue bound (0 = default)")
	flag.IntVar(&opts.active, "active", 0, "max concurrently active solves (0 = default)")
	flag.IntVar(&opts.chunk, "chunk", 0, "cells per claim chunk (0 = default)")
	flag.DurationVar(&opts.timeout, "timeout", 0, "per-submission deadline (0 = none)")
	flag.StringVar(&opts.mode, "mode", "sched", "sched | seq | compare")
	flag.StringVar(&opts.metrics, "metrics", "", "write the metrics JSON snapshot to this file")
	flag.StringVar(&opts.url, "url", "", "drive a remote lddpd server at this base URL instead of an in-process scheduler")
	flag.IntVar(&opts.retries, "retries", 8, "client retry attempts per solve in -url mode (covers server startup)")
	flag.StringVar(&opts.codec, "codec", "json", "wire encoding in -url mode: json | binary")
	flag.StringVar(&opts.fleet, "fleet", "", "comma-separated lddpd node URLs; shard each solve into row bands across them")
	flag.IntVar(&opts.bands, "bands", 0, "row bands per fleet solve (0 = one per node; only with -fleet)")
	flag.IntVar(&opts.phaseCols, "phase-cols", 0, "fleet block phase width in columns (0 = default; only with -fleet)")
	flag.BoolVar(&opts.verify, "verify", true, "in -fleet mode, cross-check each fleet digest against a single-node solve")
	flag.StringVar(&opts.tracedir, "tracedir", "", "in -fleet mode, collect node traces and write one stitched fleet timeline per solve into this directory")
	flag.Parse()
	if err := run(opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lddpserve:", err)
		os.Exit(1)
	}
}

// workItem is one submission of the batch.
type workItem struct {
	problem    *lddp.Problem[int64]
	mask       lddp.DepMask
	rows, cols int
	cells      int64
}

// buildBatch materializes the submission list. With -mix, masks and sizes
// are drawn from the seeded generator; otherwise every submission is the
// same size x size problem on the flag mask.
func buildBatch(opts options) ([]workItem, error) {
	mask, err := lddp.ParseDepMask(opts.mask)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.seed))
	masks := lddp.AllDepMasks()
	items := make([]workItem, opts.solves)
	for k := range items {
		m, size := mask, opts.size
		if opts.mix {
			m = masks[rng.Intn(len(masks))]
			size = 1 + rng.Intn(opts.size)
		}
		items[k] = workItem{
			problem: loadProblem(m, size, size),
			mask:    m, rows: size, cols: size,
			cells: int64(size) * int64(size),
		}
	}
	return items, nil
}

// loadProblem builds the driver's benchmark recurrence — the "serve"
// workload kind of the network service, so local and -url runs execute
// the identical kernel (cheap integer mixing of every contributing
// neighbour; int64 overflow wraps, fine for a load test).
func loadProblem(m lddp.DepMask, rows, cols int) *lddp.Problem[int64] {
	return server.ServeProblem(m, rows, cols)
}

// outcome tallies one batch run.
type outcome struct {
	done, canceled, rejected, failed int
	cells                            int64
	elapsed                          time.Duration
}

func (o outcome) throughput() float64 {
	if o.elapsed <= 0 {
		return 0
	}
	return float64(o.cells) / o.elapsed.Seconds()
}

func run(opts options, out io.Writer) error {
	switch opts.mode {
	case "sched", "seq", "compare":
	default:
		return fmt.Errorf("unknown -mode %q (want sched, seq or compare)", opts.mode)
	}
	if opts.solves <= 0 || opts.size <= 0 {
		return fmt.Errorf("-solves and -size must be positive")
	}
	if opts.url != "" && opts.mode != "sched" {
		return fmt.Errorf("-url drives a remote scheduler; -mode %s is local-only", opts.mode)
	}
	if opts.fleet != "" && opts.url != "" {
		return fmt.Errorf("-fleet and -url are mutually exclusive")
	}
	if opts.fleet != "" && opts.mode != "sched" {
		return fmt.Errorf("-fleet drives remote nodes; -mode %s is local-only", opts.mode)
	}
	items, err := buildBatch(opts)
	if err != nil {
		return err
	}
	if opts.fleet != "" {
		return runFleet(opts, items, out)
	}
	if opts.url != "" {
		return runRemote(opts, items, out)
	}

	var schedRes, seqRes outcome
	metrics := &lddp.Metrics{}
	if opts.mode != "sched" {
		seqRes = runSequential(opts, items)
		fmt.Fprintf(out, "seq:   %d solves, %d done, %d canceled, %.3gs, %.3g cells/s\n",
			opts.solves, seqRes.done, seqRes.canceled, seqRes.elapsed.Seconds(), seqRes.throughput())
	}
	if opts.mode != "seq" {
		s, err := lddp.NewScheduler(
			lddp.WithSchedulerWorkers(opts.workers),
			lddp.WithSchedulerQueue(opts.queue),
			lddp.WithSchedulerMaxActive(opts.active),
			lddp.WithSchedulerChunk(opts.chunk),
			lddp.WithSchedulerCollector(metrics),
		)
		if err != nil {
			return err
		}
		schedRes = runScheduled(opts, s, items)
		st := s.Stats()
		s.Close()
		fmt.Fprintf(out, "sched: %d solves, %d done, %d canceled, %d rejected, %.3gs, %.3g cells/s\n",
			opts.solves, schedRes.done, schedRes.canceled, schedRes.rejected,
			schedRes.elapsed.Seconds(), schedRes.throughput())
		fmt.Fprintf(out, "sched: %d steals, peak queue %d, peak active %d, workers %d\n",
			st.Steals, st.PeakQueueDepth, st.PeakActive, len(st.Workers))
	}
	if opts.mode == "compare" && seqRes.throughput() > 0 {
		fmt.Fprintf(out, "compare: scheduler/sequential throughput ratio %.2fx\n",
			schedRes.throughput()/seqRes.throughput())
	}
	if opts.metrics != "" {
		doc, err := json.MarshalIndent(metrics.Snapshot(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.metrics, doc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", opts.metrics)
	}

	failed := schedRes.failed + seqRes.failed
	if failed > 0 {
		return fmt.Errorf("%d submissions failed unexpectedly", failed)
	}
	if opts.timeout == 0 && opts.mode != "seq" && schedRes.done != opts.solves {
		return fmt.Errorf("without -timeout all %d submissions must complete; %d did", opts.solves, schedRes.done)
	}
	return nil
}

// runScheduled fires every submission at the shared scheduler at once and
// waits for all outcomes.
func runScheduled(opts options, s *lddp.Scheduler, items []workItem) outcome {
	var (
		res outcome
		mu  sync.Mutex
		wg  sync.WaitGroup
	)
	start := time.Now()
	for _, it := range items {
		wg.Add(1)
		go func(it workItem) {
			defer wg.Done()
			ctx := context.Background()
			if opts.timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, opts.timeout)
				defer cancel()
			}
			_, err := lddp.SolveOn(ctx, s, it.problem)
			mu.Lock()
			defer mu.Unlock()
			var rej *lddp.Rejected
			var can *lddp.Canceled
			switch {
			case err == nil:
				res.done++
				res.cells += it.cells
			case errors.As(err, &rej):
				res.rejected++
			case errors.As(err, &can):
				res.canceled++
			default:
				res.failed++
				fmt.Fprintf(os.Stderr, "lddpserve: %s: unexpected error: %v\n", it.problem.Name, err)
			}
		}(it)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	return res
}

// runRemote fires the batch at a remote lddpd server through the client
// package: the same concurrency structure as runScheduled, with the
// scheduler behind HTTP. The client's retry/backoff also absorbs the
// server's startup window (connection refused retries like a 503), which
// is what lets `make serve-smoke` start lddpd and the driver together.
func runRemote(opts options, items []workItem, out io.Writer) error {
	// A load driver measures the solve path; a server-side cache hit
	// would measure a map lookup instead, so every request opts out.
	copts := []client.Option{client.WithRetry(client.RetryPolicy{
		MaxAttempts: opts.retries,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    2 * time.Second,
	}), client.WithCacheControl("no-store")}
	switch opts.codec {
	case "", "json":
	case "binary":
		copts = append(copts, client.WithCodec(client.CodecBinary))
	default:
		return fmt.Errorf("unknown -codec %q (want json or binary)", opts.codec)
	}
	c, err := client.New(opts.url, copts...)
	if err != nil {
		return err
	}
	defer c.Close()
	var (
		res outcome
		mu  sync.Mutex
		wg  sync.WaitGroup
	)
	start := time.Now()
	for _, it := range items {
		wg.Add(1)
		go func(it workItem) {
			defer wg.Done()
			req := &client.SolveRequest{
				Rows: it.rows, Cols: it.cols,
				Mask:       it.mask.String(),
				Workload:   client.WorkloadSpec{Kind: client.KindServe},
				Chunk:      opts.chunk,
				DeadlineMS: opts.timeout.Milliseconds(),
			}
			_, err := c.Solve(context.Background(), req)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				res.done++
				res.cells += it.cells
			case errors.Is(err, client.ErrTimeout):
				res.canceled++
			case errors.Is(err, client.ErrOverloaded), errors.Is(err, client.ErrUnavailable):
				res.rejected++
			default:
				res.failed++
				fmt.Fprintf(os.Stderr, "lddpserve: %s: unexpected error: %s\n", it.problem.Name, remoteErrDetail(err))
			}
		}(it)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	fmt.Fprintf(out, "remote: %d solves, %d done, %d canceled, %d rejected, %.3gs, %.3g cells/s\n",
		opts.solves, res.done, res.canceled, res.rejected, res.elapsed.Seconds(), res.throughput())
	if opts.metrics != "" {
		snap, err := c.Metrics(context.Background())
		if err != nil {
			return fmt.Errorf("fetching /metrics: %w", err)
		}
		doc, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.metrics, doc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (server sched: %d done, %d steals, peak active %d)\n",
			opts.metrics, snap.Sched.Done, snap.Sched.Steals, snap.Sched.PeakActive)
	}
	if res.failed > 0 {
		return fmt.Errorf("%d submissions failed unexpectedly", res.failed)
	}
	if opts.timeout == 0 && res.done != opts.solves {
		return fmt.Errorf("without -timeout all %d submissions must complete; %d did", opts.solves, res.done)
	}
	return nil
}

// remoteErrDetail renders a remote failure for the per-request error
// line. When the server assigned a solve ID before failing, the ID is
// prepended so the failure can be matched against that node's logs and
// trace files — the attribution handle for fleet debugging.
func remoteErrDetail(err error) string {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.SolveID != 0 {
		return fmt.Sprintf("solve %d: %v", apiErr.SolveID, err)
	}
	return err.Error()
}

// runFleet shards each submission into row bands across the -fleet node
// list through the internal/fleet coordinator — the driver-side variant
// of `lddpd -peers`. With -verify (the default) every fleet digest is
// cross-checked against a single-node solve of the same request on the
// first node, making this a differential smoke as well as a load driver.
func runFleet(opts options, items []workItem, out io.Writer) error {
	copts := []client.Option{
		client.WithCodec(client.CodecBinary),
		client.WithRetry(client.RetryPolicy{
			MaxAttempts: opts.retries,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    2 * time.Second,
		}),
		client.WithCacheControl("no-store"),
	}
	var nodes []*client.Client
	for _, u := range strings.Split(opts.fleet, ",") {
		c, err := client.New(strings.TrimSpace(u), copts...)
		if err != nil {
			return fmt.Errorf("-fleet: %w", err)
		}
		defer c.Close()
		nodes = append(nodes, c)
	}
	if opts.tracedir != "" {
		if err := os.MkdirAll(opts.tracedir, 0o755); err != nil {
			return err
		}
	}
	coord, err := fleet.New(fleet.Config{
		Nodes: nodes, Bands: opts.bands, PhaseCols: opts.phaseCols,
		TraceDir: opts.tracedir,
	})
	if err != nil {
		return err
	}
	var (
		res         outcome
		relocations int
		mismatches  int
		stitched    int
		mu          sync.Mutex
		wg          sync.WaitGroup
	)
	start := time.Now()
	for _, it := range items {
		wg.Add(1)
		go func(it workItem) {
			defer wg.Done()
			req := &client.SolveRequest{
				Rows: it.rows, Cols: it.cols,
				Mask:       it.mask.String(),
				Workload:   client.WorkloadSpec{Kind: client.KindServe},
				Chunk:      opts.chunk,
				DeadlineMS: opts.timeout.Milliseconds(),
			}
			fres, err := coord.Solve(context.Background(), req)
			var oracle string
			if err == nil && opts.verify {
				sres, serr := nodes[0].Solve(context.Background(), req)
				if serr != nil {
					err = fmt.Errorf("verify solve: %w", serr)
				} else {
					oracle = sres.Digest
				}
			}
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				res.done++
				res.cells += it.cells
				relocations += fres.Stats.Relocations
				if fres.TracePath != "" {
					stitched++
				}
				if opts.verify && fres.Digest != oracle {
					mismatches++
					fmt.Fprintf(os.Stderr, "lddpserve: %s: fleet digest %s != single-node digest %s\n",
						it.problem.Name, fres.Digest, oracle)
				}
			case errors.Is(err, client.ErrTimeout):
				res.canceled++
			case errors.Is(err, client.ErrOverloaded), errors.Is(err, client.ErrUnavailable):
				res.rejected++
			default:
				res.failed++
				fmt.Fprintf(os.Stderr, "lddpserve: %s: unexpected error: %s\n", it.problem.Name, remoteErrDetail(err))
			}
		}(it)
	}
	wg.Wait()
	// Stitching runs detached from each Solve; wait it out so every
	// TracePath counted below is actually on disk before we report (and
	// before fleet-smoke lists the directory).
	coord.Close()
	res.elapsed = time.Since(start)
	fmt.Fprintf(out, "fleet: %d solves over %d nodes, %d done, %d canceled, %d rejected, %d relocations, %.3gs, %.3g cells/s\n",
		opts.solves, len(nodes), res.done, res.canceled, res.rejected, relocations, res.elapsed.Seconds(), res.throughput())
	if opts.tracedir != "" {
		fmt.Fprintf(out, "fleet: %d stitched timelines in %s\n", stitched, opts.tracedir)
	}
	if mismatches > 0 {
		return fmt.Errorf("%d fleet solves diverged from the single-node oracle", mismatches)
	}
	if res.failed > 0 {
		return fmt.Errorf("%d submissions failed unexpectedly", res.failed)
	}
	if opts.timeout == 0 && res.done != opts.solves {
		return fmt.Errorf("without -timeout all %d submissions must complete; %d did", opts.solves, res.done)
	}
	return nil
}

// runSequential is the baseline: the same batch as back-to-back
// lddp.Solve calls, each with its own per-solve pool — what a service
// without the scheduler would do.
func runSequential(opts options, items []workItem) outcome {
	var res outcome
	start := time.Now()
	for _, it := range items {
		ctx := context.Background()
		if opts.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, opts.timeout)
			defer cancel()
		}
		solveOpts := []lddp.Option{lddp.WithWorkers(opts.workers)}
		if opts.chunk > 0 {
			solveOpts = append(solveOpts, lddp.WithChunk(opts.chunk))
		}
		_, err := lddp.Solve(ctx, it.problem, solveOpts...)
		var can *lddp.Canceled
		switch {
		case err == nil:
			res.done++
			res.cells += it.cells
		case errors.As(err, &can):
			res.canceled++
		default:
			res.failed++
			fmt.Fprintf(os.Stderr, "lddpserve: %s: unexpected error: %v\n", it.problem.Name, err)
		}
	}
	res.elapsed = time.Since(start)
	return res
}
