package cli

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestBuildInstanceAllNames(t *testing.T) {
	for _, name := range ProblemNames() {
		inst, err := BuildInstance(name, 40, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if inst.Rows < 2 || inst.Cols < 2 {
			t.Errorf("%s: degenerate dims %dx%d", name, inst.Rows, inst.Cols)
		}
		ans, err := inst.SolveSeq()
		if err != nil {
			t.Fatalf("%s seq: %v", name, err)
		}
		if !strings.Contains(ans, "=") {
			t.Errorf("%s: answer %q has no key=value form", name, ans)
		}
		par, err := inst.SolveParallel(core.Options{NativeWorkers: 2})
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if par != ans {
			t.Errorf("%s: parallel answer %q != seq %q", name, par, ans)
		}
		for _, mode := range []string{"cpu", "gpu", "hetero"} {
			info, err := inst.SolveSim(mode, core.Options{TSwitch: -1, TShare: -1})
			if err != nil {
				t.Fatalf("%s %s: %v", name, mode, err)
			}
			if info.Result != ans {
				t.Errorf("%s %s: answer %q != seq %q", name, mode, info.Result, ans)
			}
			if len(info.Timeline.Records) == 0 {
				t.Errorf("%s %s: empty timeline", name, mode)
			}
		}
	}
}

func TestBuildInstanceErrors(t *testing.T) {
	if _, err := BuildInstance("nope", 16, 1); err == nil {
		t.Error("unknown problem should error")
	}
	if _, err := BuildInstance("lcs", 1, 1); err == nil {
		t.Error("tiny size should error")
	}
}

func TestSolveSimUnknownMode(t *testing.T) {
	inst, err := BuildInstance("lcs", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.SolveSim("quantum", core.Options{}); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestInstanceTune(t *testing.T) {
	inst, err := BuildInstance("levenshtein", 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Tune(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SwitchCurve) == 0 || len(res.ShareCurve) == 0 {
		t.Error("tune produced empty curves")
	}
}

func TestProblemNamesSorted(t *testing.T) {
	names := ProblemNames()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	if len(names) != 8 {
		t.Errorf("expected 8 problems, got %d", len(names))
	}
}

func TestSolveTiledAndResilientAgreeWithSeq(t *testing.T) {
	inst, err := BuildInstance("checkerboard", 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := inst.SolveSeq()
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := inst.SolveTiled(8, core.Options{NativeWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tiled != want {
		t.Errorf("tiled %q != seq %q", tiled, want)
	}
	res, corrected, err := inst.SolveResilient(3, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res != want {
		t.Errorf("resilient %q != seq %q (corrected=%d)", res, want, corrected)
	}
	if corrected == 0 {
		t.Error("fault injector never fired at 1% on 2500 cells")
	}
}

func TestSolveMultiHorizontalProblem(t *testing.T) {
	inst, err := BuildInstance("checkerboard", 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := inst.SolveSeq()
	info, err := inst.SolveMulti([]string{"k20", "phi"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Result != want {
		t.Errorf("multi %q != seq %q", info.Result, want)
	}
	if _, err := inst.SolveMulti([]string{"warp9"}, core.Options{}); err == nil {
		t.Error("unknown accelerator should error")
	}
}

func TestAcceleratorByName(t *testing.T) {
	for _, n := range []string{"k20", "gt650m", "phi"} {
		a, err := AcceleratorByName(n)
		if err != nil || a.Name != n {
			t.Errorf("AcceleratorByName(%s) = %v, %v", n, a, err)
		}
	}
	if _, err := AcceleratorByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
}
