// Package cli builds named problem instances for the command-line tools:
// a type-erased facade over the generic problems so lddprun and lddptune
// can dispatch on a -problem flag.
package cli

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hetsim"
	"repro/internal/problems"
	"repro/internal/table"
	"repro/internal/workload"
)

// SimInfo summarizes a simulated solve for printing.
type SimInfo struct {
	Result   string
	Time     string
	Pattern  core.Pattern
	Executed core.Pattern
	Transfer core.TransferKind
	TSwitch  int
	TShare   int
	Timeline hetsim.Timeline
}

// Instance is a type-erased problem instance.
type Instance struct {
	Name       string
	Rows, Cols int
	Pattern    core.Pattern

	// SolveSeq runs the sequential reference and returns the answer.
	SolveSeq func() (string, error)
	// SolveParallel runs the native goroutine solver; opts carries the
	// runtime knobs (workers, chunk, lookahead) and an optional Collector.
	SolveParallel func(opts core.Options) (string, error)
	// SolveAsync runs the barrier-free dependency-counter executor; opts
	// carries workers and the optional Collector/Tracer.
	SolveAsync func(opts core.Options) (string, error)
	// SolveSim runs a simulated solver: mode is "cpu", "gpu" or "hetero".
	SolveSim func(mode string, opts core.Options) (SimInfo, error)
	// SolveMulti runs the multi-accelerator extension (horizontal-pattern
	// problems only) with the named accelerators.
	SolveMulti func(accelNames []string, opts core.Options) (SimInfo, error)
	// SolveTiled runs the cache-efficient tiled multicore baseline; worker
	// count and Collector ride in opts.
	SolveTiled func(tile int, opts core.Options) (string, error)
	// SolveResilient runs the unreliable-memory solver with seeded faults
	// at ratePercent per replica write, and reports the answer plus the
	// number of cells where corruption was detected.
	SolveResilient func(replicas, ratePercent int, seed uint64) (answer string, corrected int, err error)
	// Tune runs the §V-A parameter search.
	Tune func(opts core.Options) (*core.TuneResult, error)
}

// AcceleratorByName resolves the accelerator models available to the CLI:
// "k20", "gt650m", and "phi".
func AcceleratorByName(name string) (core.Accelerator, error) {
	switch name {
	case "k20":
		return core.Accelerator{Name: name, Model: hetsim.HeteroHigh().GPU}, nil
	case "gt650m":
		return core.Accelerator{Name: name, Model: hetsim.HeteroLow().GPU}, nil
	case "phi":
		return core.Accelerator{Name: name, Model: hetsim.HeteroPhi().GPU}, nil
	default:
		return core.Accelerator{}, fmt.Errorf("cli: unknown accelerator %q (want k20, gt650m or phi)", name)
	}
}

func makeInstance[T comparable](p *core.Problem[T], answer func(*table.Grid[T]) string) *Instance {
	inst := &Instance{
		Name:    p.Name,
		Rows:    p.Rows,
		Cols:    p.Cols,
		Pattern: p.Pattern(),
	}
	inst.SolveSeq = func() (string, error) {
		g, err := core.Solve(p)
		if err != nil {
			return "", err
		}
		return answer(g), nil
	}
	inst.SolveParallel = func(opts core.Options) (string, error) {
		g, err := core.SolveParallelOpt(p, opts)
		if err != nil {
			return "", err
		}
		return answer(g), nil
	}
	inst.SolveAsync = func(opts core.Options) (string, error) {
		g, err := core.SolveAsyncOpt(p, opts)
		if err != nil {
			return "", err
		}
		return answer(g), nil
	}
	inst.SolveSim = func(mode string, opts core.Options) (SimInfo, error) {
		var solve func(*core.Problem[T], core.Options) (*core.Result[T], error)
		switch mode {
		case "cpu":
			solve = core.SolveCPUOnly[T]
		case "gpu":
			solve = core.SolveGPUOnly[T]
		case "hetero":
			solve = core.SolveHetero[T]
		default:
			return SimInfo{}, fmt.Errorf("cli: unknown solver mode %q (want cpu, gpu or hetero)", mode)
		}
		r, err := solve(p, opts)
		if err != nil {
			return SimInfo{}, err
		}
		info := SimInfo{
			Time:     r.Time.String(),
			Pattern:  r.Pattern,
			Executed: r.Executed,
			Transfer: r.Transfer,
			TSwitch:  r.TSwitch,
			TShare:   r.TShare,
			Timeline: r.Timeline,
		}
		if r.Grid != nil {
			info.Result = answer(r.Grid)
		}
		return info, nil
	}
	inst.SolveMulti = func(accelNames []string, opts core.Options) (SimInfo, error) {
		accels := make([]core.Accelerator, 0, len(accelNames))
		for _, n := range accelNames {
			a, err := AcceleratorByName(n)
			if err != nil {
				return SimInfo{}, err
			}
			accels = append(accels, a)
		}
		r, err := core.SolveHeteroMulti(p, opts, accels, nil)
		if err != nil {
			return SimInfo{}, err
		}
		info := SimInfo{
			Time:     r.Timeline.Makespan().String(),
			Pattern:  p.Pattern(),
			Executed: core.Horizontal,
			Transfer: core.TransferNeed(p.Deps),
			Timeline: r.Timeline,
		}
		if r.Grid != nil {
			info.Result = answer(r.Grid)
		}
		return info, nil
	}
	inst.SolveTiled = func(tile int, opts core.Options) (string, error) {
		g, err := core.SolveTiledContext(context.Background(), p, tile, opts)
		if err != nil {
			return "", err
		}
		return answer(g), nil
	}
	inst.SolveResilient = func(replicas, ratePercent int, seed uint64) (string, int, error) {
		rngs := map[int]*workload.RNG{}
		fault := func(replica, i, j int, v T) T {
			r, ok := rngs[replica]
			if !ok {
				r = workload.NewRNG(seed + uint64(replica)*0x9e3779b9)
				rngs[replica] = r
			}
			if r.Intn(100) < ratePercent {
				var zero T
				return zero // corrupt to the zero value
			}
			return v
		}
		g, corrected, err := core.SolveResilient(p, replicas, fault)
		if err != nil {
			return "", 0, err
		}
		return answer(g), corrected, nil
	}
	inst.Tune = func(opts core.Options) (*core.TuneResult, error) {
		return core.Tune(p, opts)
	}
	return inst
}

// ProblemNames lists the problems BuildInstance accepts, sorted.
func ProblemNames() []string {
	names := []string{"levenshtein", "lcs", "needleman-wunsch", "smith-waterman",
		"dtw", "checkerboard", "seamcarve", "dither"}
	sort.Strings(names)
	return names
}

// BuildInstance constructs a named problem at the given size with seeded
// workloads.
func BuildInstance(name string, size int, seed uint64) (*Instance, error) {
	if size < 2 {
		return nil, fmt.Errorf("cli: size %d too small", size)
	}
	switch name {
	case "levenshtein":
		a, b := workload.SimilarStrings(seed, size-1, workload.ASCIIAlphabet, 0.2)
		return makeInstance(problems.Levenshtein(a, b), func(g *table.Grid[int32]) string {
			return fmt.Sprintf("distance=%d", problems.LevenshteinDistance(g, a, b))
		}), nil
	case "lcs":
		a, b := workload.SimilarStrings(seed, size-1, workload.DNAAlphabet, 0.3)
		return makeInstance(problems.LCS(a, b), func(g *table.Grid[int32]) string {
			return fmt.Sprintf("lcs_length=%d", problems.LCSLength(g, a, b))
		}), nil
	case "needleman-wunsch":
		a, b := workload.SimilarStrings(seed, size-1, workload.DNAAlphabet, 0.2)
		s := problems.DefaultAlignScores()
		return makeInstance(problems.NeedlemanWunsch(a, b, s), func(g *table.Grid[int32]) string {
			return fmt.Sprintf("global_score=%d", problems.GlobalScore(g, a, b))
		}), nil
	case "smith-waterman":
		a, b := workload.SimilarStrings(seed, size-1, workload.DNAAlphabet, 0.25)
		s := problems.DefaultAlignScores()
		return makeInstance(problems.SmithWaterman(a, b, s), func(g *table.Grid[int32]) string {
			return fmt.Sprintf("local_best=%d", problems.LocalBestScore(g))
		}), nil
	case "dtw":
		x := workload.TimeSeries(seed, size-1, -1, 1)
		y := workload.TimeSeries(seed+1, size-1, -1, 1)
		return makeInstance(problems.DTW(x, y), func(g *table.Grid[float64]) string {
			return fmt.Sprintf("dtw_distance=%.4f", problems.DTWDistance(g, x, y))
		}), nil
	case "checkerboard":
		cost := workload.CostGrid(seed, size, size, 100)
		return makeInstance(problems.Checkerboard(cost), func(g *table.Grid[int32]) string {
			return fmt.Sprintf("best_path=%d", problems.CheckerboardBest(g))
		}), nil
	case "seamcarve":
		energy := workload.EnergyGrid(seed, size, size)
		return makeInstance(problems.SeamCarve(energy), func(g *table.Grid[int32]) string {
			return fmt.Sprintf("seam_cost=%d", problems.SeamCost(g))
		}), nil
	case "dither":
		img := workload.GrayImage(seed, size, size)
		return makeInstance(problems.Dither(img), func(g *table.Grid[int32]) string {
			out := problems.DitherOutput(g)
			white := 0
			for _, row := range out {
				for _, v := range row {
					if v == 255 {
						white++
					}
				}
			}
			return fmt.Sprintf("white_pixels=%d/%d", white, size*size)
		}), nil
	default:
		return nil, fmt.Errorf("cli: unknown problem %q (want one of %v)", name, ProblemNames())
	}
}
