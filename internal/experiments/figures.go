package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hetsim"
	"repro/internal/problems"
	"repro/internal/table"
	"repro/internal/workload"
)

// RunFig7 regenerates Figure 7: heterogeneous time against t_switch for
// the longest-common-subsequence problem on a 4k x 4k table with t_share
// fixed to 0. The curve is concave-up; the printed minimum is the t_switch
// the tuner selects.
func RunFig7(cfg Config) ([]Table, error) {
	// The interior minimum only exists once fronts grow past the GPU
	// break-even width (~1.4k cells on Hetero-High); below that the whole
	// table belongs on the CPU and the curve is monotone. Quick mode
	// therefore still uses a 2k table — the sweep runs on the timing model
	// and stays fast.
	n := 4096
	if cfg.Quick {
		n = 2048
	}
	a, b := workload.SimilarStrings(cfg.Seed, n-1, workload.DNAAlphabet, 0.3)
	p := problems.LCS(a, b)
	res, err := core.Tune(p, core.Options{Platform: hetsim.HeteroHigh()})
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  fmt.Sprintf("Figure 7: LCS %dx%d heterogeneous time vs t_switch (t_share=0)", n, n),
		Header: []string{"t_switch", "time", "minimum"},
	}
	for _, pt := range res.SwitchCurve {
		mark := ""
		if pt.Value == res.TSwitch {
			mark = "<-- optimal"
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", pt.Value), fd(pt.Time), mark})
	}
	return []Table{t}, nil
}

// Fig8Measure runs the Figure 8 comparison at one size: the paper's
// f(i,j) = max(cell[i][j], f(i-1,j-1)) + c recurrence, executed through
// the genuine inverted-L strategy (naive row-major table, as implemented
// in the paper) and through horizontal case-1 (its coalescing-friendly
// default), on CPU-only and GPU-only execution.
func Fig8Measure(n int) (il, h1 map[string]TriTimes, err error) {
	p := &core.Problem[int32]{
		Name: "fig8", Rows: n, Cols: n, Deps: core.DepNW,
		F: func(i, j int, nb core.Neighbors[int32]) int32 {
			base := int32((i*7 + j*3) % 64)
			return max(base, nb.NW) + 1
		},
		BytesPerCell: 4,
	}
	il = map[string]TriTimes{}
	h1 = map[string]TriTimes{}
	for _, plat := range hetsim.Platforms() {
		oIL := core.Options{Platform: plat, TSwitch: -1, TShare: -1, SkipCompute: true,
			PreferInvertedL: true, Layout: table.RowMajor{}}
		oH := core.Options{Platform: plat, TSwitch: -1, TShare: -1, SkipCompute: true}
		cIL, err := core.SolveCPUOnly(p, oIL)
		if err != nil {
			return nil, nil, err
		}
		gIL, err := core.SolveGPUOnly(p, oIL)
		if err != nil {
			return nil, nil, err
		}
		cH, err := core.SolveCPUOnly(p, oH)
		if err != nil {
			return nil, nil, err
		}
		gH, err := core.SolveGPUOnly(p, oH)
		if err != nil {
			return nil, nil, err
		}
		il[plat.Name] = TriTimes{Size: n, CPU: cIL.Time, GPU: gIL.Time}
		h1[plat.Name] = TriTimes{Size: n, CPU: cH.Time, GPU: gH.Time}
	}
	return il, h1, nil
}

// RunFig8 regenerates Figure 8: inverted-L vs horizontal case-1 on CPU and
// GPU across sizes.
func RunFig8(cfg Config) ([]Table, error) {
	sizes := figSizes(cfg, []int{1024, 2048, 4096, 8192})
	var tables []Table
	for _, plat := range hetsim.Platforms() {
		t := Table{
			Title:  "Figure 8: inverted-L (iL) vs horizontal case-1 (H1) — " + plat.Name,
			Header: []string{"size", "cpu iL", "cpu H1", "gpu iL", "gpu H1", "iL/H1 (gpu)"},
		}
		for _, n := range sizes {
			il, h1, err := Fig8Measure(n)
			if err != nil {
				return nil, err
			}
			a, b := il[plat.Name], h1[plat.Name]
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dx%d", n, n),
				fd(a.CPU), fd(b.CPU), fd(a.GPU), fd(b.GPU),
				ratio(a.GPU, b.GPU),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig9Problem builds the horizontal case-1 workload of Figure 9:
// f(i,j) = min(f(i-1,j-1), f(i-1,j)) + c.
func Fig9Problem(n int) *core.Problem[int32] {
	return &core.Problem[int32]{
		Name: "fig9", Rows: n, Cols: n, Deps: core.DepNW | core.DepN,
		F: func(i, j int, nb core.Neighbors[int32]) int32 {
			if i == 0 {
				return int32(j % 17)
			}
			return min(nb.NW, nb.N) + 1
		},
		BytesPerCell: 4,
	}
}

// RunFig9 regenerates Figure 9: CPU/GPU/Framework times of a horizontal
// case-1 problem across sizes on both platforms.
func RunFig9(cfg Config) ([]Table, error) {
	sizes := figSizes(cfg, []int{1024, 2048, 4096, 8192})
	series, err := CaseStudySeries(sizes, Fig9Problem)
	if err != nil {
		return nil, err
	}
	return caseStudyTables("Figure 9: horizontal case-1", series), nil
}

// Fig10Problem builds the Levenshtein workload of Figure 10 at one size:
// two similar strings of length n-1 (table size n x n).
func Fig10Problem(seed uint64, n int) *core.Problem[int32] {
	a, b := workload.SimilarStrings(seed, n-1, workload.ASCIIAlphabet, 0.2)
	return problems.Levenshtein(a, b)
}

// RunFig10 regenerates Figure 10: Levenshtein CPU/GPU/Framework times
// across sizes on both platforms, with the smallest instance solved for
// real and validated against the reference implementation.
func RunFig10(cfg Config) ([]Table, error) {
	sizes := figSizes(cfg, []int{1024, 2048, 4096, 8192})
	if err := validateFig10(cfg, sizes[0]); err != nil {
		return nil, err
	}
	series, err := CaseStudySeries(sizes, func(n int) *core.Problem[int32] {
		return Fig10Problem(cfg.Seed, n)
	})
	if err != nil {
		return nil, err
	}
	return caseStudyTables("Figure 10: Levenshtein distance", series), nil
}

func validateFig10(cfg Config, n int) error {
	a, b := workload.SimilarStrings(cfg.Seed, n-1, workload.ASCIIAlphabet, 0.2)
	res, err := core.SolveHetero(problems.Levenshtein(a, b), core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		return err
	}
	got := problems.LevenshteinDistance(res.Grid, a, b)
	want := problems.LevenshteinRef(a, b)
	if got != want {
		return fmt.Errorf("fig10 validation: framework distance %d != reference %d", got, want)
	}
	return nil
}

// Fig12Problem builds the dithering workload of Figure 12 at one size.
func Fig12Problem(seed uint64, n int) *core.Problem[int32] {
	return problems.Dither(workload.GrayImage(seed, n, n))
}

// RunFig12 regenerates Figure 12: Floyd-Steinberg dithering CPU/GPU/
// Framework times across image sizes on both platforms, validating the
// smallest image against the scatter reference.
func RunFig12(cfg Config) ([]Table, error) {
	sizes := figSizes(cfg, []int{512, 1024, 2048, 4096})
	if err := validateFig12(cfg, sizes[0]); err != nil {
		return nil, err
	}
	series, err := CaseStudySeries(sizes, func(n int) *core.Problem[int32] {
		return Fig12Problem(cfg.Seed, n)
	})
	if err != nil {
		return nil, err
	}
	return caseStudyTables("Figure 12: Floyd-Steinberg dithering", series), nil
}

func validateFig12(cfg Config, n int) error {
	img := workload.GrayImage(cfg.Seed, n, n)
	res, err := core.SolveHetero(problems.Dither(img), core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		return err
	}
	wantOut, _ := problems.DitherRef(img)
	got := problems.DitherOutput(res.Grid)
	for i := range wantOut {
		for j := range wantOut[i] {
			if got[i][j] != wantOut[i][j] {
				return fmt.Errorf("fig12 validation: pixel (%d,%d) = %d, reference %d", i, j, got[i][j], wantOut[i][j])
			}
		}
	}
	return nil
}

// Fig13Problem builds the checkerboard workload of Figure 13 at one size.
func Fig13Problem(seed uint64, n int) *core.Problem[int32] {
	return problems.Checkerboard(workload.CostGrid(seed, n, n, 100))
}

// RunFig13 regenerates Figure 13: checkerboard CPU/GPU/Framework times
// across sizes on both platforms, validating the smallest instance.
func RunFig13(cfg Config) ([]Table, error) {
	sizes := figSizes(cfg, []int{1024, 2048, 4096, 8192})
	if err := validateFig13(cfg, sizes[0]); err != nil {
		return nil, err
	}
	series, err := CaseStudySeries(sizes, func(n int) *core.Problem[int32] {
		return Fig13Problem(cfg.Seed, n)
	})
	if err != nil {
		return nil, err
	}
	return caseStudyTables("Figure 13: checkerboard problem", series), nil
}

func validateFig13(cfg Config, n int) error {
	cost := workload.CostGrid(cfg.Seed, n, n, 100)
	res, err := core.SolveHetero(problems.Checkerboard(cost), core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		return err
	}
	got := problems.CheckerboardBest(res.Grid)
	_, want := problems.CheckerboardRef(cost)
	if got != want {
		return fmt.Errorf("fig13 validation: framework best %d != reference %d", got, want)
	}
	return nil
}
