package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hetsim"
)

// multiProblem is a horizontal case-1 recurrence on a short, very wide
// table: 2048 rows by cols columns, with no materialized input, so the
// sweep isolates the compute-sharing effect and can reach row widths where
// weak accelerators finally amortize their launch latency.
func multiProblem(cols int) *core.Problem[int32] {
	return &core.Problem[int32]{
		Name: "ext-multi", Rows: 2048, Cols: cols, Deps: core.DepNW | core.DepN,
		F: func(i, j int, nb core.Neighbors[int32]) int32 {
			if i == 0 {
				return int32(j % 13)
			}
			return min(nb.NW, nb.N) + 1
		},
		BytesPerCell: 4,
	}
}

// MultiTimes measures the four device configurations at one row width, for
// the driver and its tests. The returned order is cpu+k20, cpu+k20+gt650m,
// cpu+k20+phi, cpu+k20+phi+gt650m.
func MultiTimes(cfg Config, cols int) ([]time.Duration, error) {
	plat := hetsim.HeteroHigh()
	k20 := core.Accelerator{Name: "k20", Model: hetsim.HeteroHigh().GPU}
	gt := core.Accelerator{Name: "gt650m", Model: hetsim.HeteroLow().GPU}
	phi := core.Accelerator{Name: "phi", Model: hetsim.HeteroPhi().GPU}
	p := multiProblem(cols)
	var out []time.Duration
	for _, accels := range [][]core.Accelerator{
		{k20}, {k20, gt}, {k20, phi}, {k20, phi, gt},
	} {
		res, err := core.SolveHeteroMulti(p, core.Options{Platform: plat, SkipCompute: true}, accels, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, res.Timeline.Makespan())
	}
	return out, nil
}

// RunExtMulti extends the paper's future-work direction past one extra
// accelerator: a horizontal case-1 workload across the Hetero-High host
// CPU plus one, two, and three accelerators. Shares are water-filled per
// DefaultMultiShares, so a weak device that cannot amortize its launch
// latency at a given row width receives no work — adding hardware never
// hurts, and starts paying off once rows grow wide enough.
func RunExtMulti(cfg Config) ([]Table, error) {
	widths := []int{8192, 32768, 131072, 524288}
	if cfg.Quick {
		widths = []int{4096, 65536}
	}
	t := Table{
		Title:  "Extension: multi-accelerator horizontal case-1 (2048 rows, Hetero-High host)",
		Header: []string{"row width", "cpu+k20", "cpu+k20+gt650m", "cpu+k20+phi", "cpu+k20+phi+gt650m", "gain over cpu+k20"},
	}
	for _, cols := range widths {
		times, err := MultiTimes(cfg, cols)
		if err != nil {
			return nil, err
		}
		best := times[0]
		for _, d := range times[1:] {
			if d < best {
				best = d
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cols),
			fd(times[0]), fd(times[1]), fd(times[2]), fd(times[3]),
			ratio(times[0], best),
		})
	}
	return []Table{t}, nil
}
