package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hetsim"
	"repro/internal/stats"
)

// RunExtScaling fits power laws T(n) = C * n^alpha to the Figure 10 and
// Figure 13 series on Hetero-High and reports the effective scaling
// exponents. A quadratic table filled at fixed throughput scales with
// alpha = 2; sub-quadratic effective exponents expose per-iteration
// overheads still amortizing across the measured range (the GPU's
// kernel-launch floor), and the framework's exponent sits between the
// devices it blends.
func RunExtScaling(cfg Config) ([]Table, error) {
	sizes := []int{1024, 2048, 4096, 8192}
	if cfg.Quick {
		sizes = []int{256, 512, 1024}
	}
	plat := hetsim.HeteroHigh()

	var tables []Table
	for _, workloadRow := range []struct {
		title string
		build func(n int) *core.Problem[int32]
	}{
		{"Levenshtein (Fig 10)", func(n int) *core.Problem[int32] { return Fig10Problem(cfg.Seed, n) }},
		{"checkerboard (Fig 13)", func(n int) *core.Problem[int32] { return Fig13Problem(cfg.Seed, n) }},
	} {
		xs := make([]float64, len(sizes))
		series := map[string][]float64{"cpu": nil, "gpu": nil, "framework": nil}
		for i, n := range sizes {
			xs[i] = float64(n)
			tri, err := triMeasure(workloadRow.build(n), plat)
			if err != nil {
				return nil, err
			}
			series["cpu"] = append(series["cpu"], tri.CPU.Seconds())
			series["gpu"] = append(series["gpu"], tri.GPU.Seconds())
			series["framework"] = append(series["framework"], tri.Framework.Seconds())
		}
		t := Table{
			Title:  "Extension: scaling exponents T(n) = C*n^alpha — " + workloadRow.title + " (Hetero-High)",
			Header: []string{"implementation", "alpha", "R^2"},
		}
		for _, name := range []string{"cpu", "gpu", "framework"} {
			fit, err := stats.FitPower(xs, series[name])
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprintf("%.3f", fit.Alpha), fmt.Sprintf("%.4f", fit.R2),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// ScalingExponents returns the fitted exponents (cpu, gpu, framework) of
// the Levenshtein series, for tests.
func ScalingExponents(cfg Config, sizes []int) (cpu, gpu, fw float64, err error) {
	plat := hetsim.HeteroHigh()
	xs := make([]float64, len(sizes))
	var cs, gs, fs []float64
	for i, n := range sizes {
		xs[i] = float64(n)
		tri, err := triMeasure(Fig10Problem(cfg.Seed, n), plat)
		if err != nil {
			return 0, 0, 0, err
		}
		cs = append(cs, tri.CPU.Seconds())
		gs = append(gs, tri.GPU.Seconds())
		fs = append(fs, tri.Framework.Seconds())
	}
	fc, err := stats.FitPower(xs, cs)
	if err != nil {
		return 0, 0, 0, err
	}
	fg, err := stats.FitPower(xs, gs)
	if err != nil {
		return 0, 0, 0, err
	}
	ff, err := stats.FitPower(xs, fs)
	if err != nil {
		return 0, 0, 0, err
	}
	return fc.Alpha, fg.Alpha, ff.Alpha, nil
}
