package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommittedResultsAreFresh regenerates every experiment at the
// published configuration and compares it against the committed artifacts
// under results/. A mismatch means the code changed the published numbers
// without `make experiments` being re-run — regenerate and re-commit.
//
// Skipped under -short and when the results directory is absent (e.g. a
// stripped checkout).
func TestCommittedResultsAreFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size regeneration; skipped under -short")
	}
	resultsDir := filepath.Join("..", "..", "results")
	if _, err := os.Stat(resultsDir); err != nil {
		t.Skipf("no committed results directory: %v", err)
	}
	cfg := DefaultConfig()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if e.Live {
				t.Skipf("%s measures real wall-clock time; committed artifact is a reference run, not reproducible", e.ID)
			}
			path := filepath.Join(resultsDir, e.ID+".txt")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing committed artifact %s: %v (run `make experiments`)", path, err)
			}
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			sb.WriteString(e.Title + "\n" + e.Description + "\n\n")
			for _, tb := range tables {
				tb.Format(&sb)
			}
			if sb.String() != string(want) {
				t.Errorf("%s drifted from the committed artifact; run `make experiments` and re-commit", e.ID)
			}
		})
	}
}
