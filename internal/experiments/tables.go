package experiments

import (
	"repro/internal/core"
)

// RunTable1 regenerates paper Table I: every contributing set and the
// pattern the framework classifies it into.
func RunTable1(cfg Config) ([]Table, error) {
	t := Table{
		Title:  "Table I: contributing sets -> patterns",
		Header: []string{"cell[i][j-1]", "cell[i-1][j-1]", "cell[i-1][j]", "cell[i-1][j+1]", "pattern"},
	}
	yn := func(b bool) string {
		if b {
			return "Y"
		}
		return "N"
	}
	for _, m := range core.AllDepMasks() {
		t.Rows = append(t.Rows, []string{
			yn(m.Has(core.DepW)), yn(m.Has(core.DepNW)),
			yn(m.Has(core.DepN)), yn(m.Has(core.DepNE)),
			core.Classify(m).String(),
		})
	}
	return []Table{t}, nil
}

// RunTable2 regenerates paper Table II: the transfer requirement per
// pattern, using one representative contributing set per row plus the
// horizontal sub-cases.
func RunTable2(cfg Config) ([]Table, error) {
	t := Table{
		Title:  "Table II: patterns -> transfer needs",
		Header: []string{"pattern", "example set", "1-way / 2-way"},
	}
	rows := []struct {
		name string
		mask core.DepMask
	}{
		{"Anti-diagonal", core.DepW | core.DepNW | core.DepN},
		{"Horizontal (case-1)", core.DepNW | core.DepN},
		{"Horizontal (case-2)", core.DepNW | core.DepN | core.DepNE},
		{"Horizontal ({N} only)", core.DepN},
		{"Inverted-L", core.DepNW},
		{"Knight-Move", core.DepW | core.DepNE},
		{"Vertical", core.DepW | core.DepNW},
		{"mInverted-L", core.DepNE},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.name, r.mask.String(), core.TransferNeed(r.mask).String(),
		})
	}
	return []Table{t}, nil
}
