package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/hetsim"
)

func quickCfg() Config {
	c := DefaultConfig()
	c.Quick = true
	return c
}

// Every registered experiment must run and produce at least one non-empty
// table in quick mode.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.Title == "" || len(tb.Header) == 0 || len(tb.Rows) == 0 {
					t.Errorf("%s: degenerate table %+v", e.ID, tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Errorf("%s: row width %d != header width %d", e.ID, len(row), len(tb.Header))
					}
				}
			}
		})
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" || e.Description == "" {
			t.Errorf("experiment %q incompletely registered", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig10")
	if err != nil || e.ID != "fig10" {
		t.Errorf("ByID(fig10) = %v, %v", e.ID, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("expected error for unknown id")
	}
}

func TestTable1Content(t *testing.T) {
	tables, err := RunTable1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 15 {
		t.Fatalf("Table I has %d rows, want 15", len(tb.Rows))
	}
	// Spot-check the paper's rows: {W,N} -> Anti-diagonal, {W,NE} -> Knight.
	var sawAntiDiag, sawKnight bool
	for _, row := range tb.Rows {
		if row[0] == "Y" && row[1] == "N" && row[2] == "Y" && row[3] == "N" {
			sawAntiDiag = row[4] == "Anti-diagonal"
		}
		if row[0] == "Y" && row[1] == "N" && row[2] == "N" && row[3] == "Y" {
			sawKnight = row[4] == "Knight-Move"
		}
	}
	if !sawAntiDiag || !sawKnight {
		t.Error("Table I rows do not match the paper")
	}
}

func TestTable2Content(t *testing.T) {
	tables, err := RunTable2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"Anti-diagonal":         "1 way",
		"Horizontal (case-1)":   "1 way",
		"Horizontal (case-2)":   "2 way",
		"Horizontal ({N} only)": "none",
		"Inverted-L":            "1 way",
		"Knight-Move":           "2 way",
	}
	for _, row := range tables[0].Rows {
		if w, ok := want[row[0]]; ok && row[2] != w {
			t.Errorf("Table II %s = %q, want %q", row[0], row[2], w)
		}
	}
}

func TestFig7CurveIsConcave(t *testing.T) {
	tables, err := RunFig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var optimal int
	for i, row := range tables[0].Rows {
		if strings.Contains(row[2], "optimal") {
			optimal = i
		}
	}
	if optimal == 0 || optimal == len(tables[0].Rows)-1 {
		t.Errorf("optimal t_switch at curve endpoint (row %d of %d); expected interior minimum",
			optimal, len(tables[0].Rows))
	}
}

func TestFig8InvertedLLoses(t *testing.T) {
	il, h1, err := Fig8Measure(512)
	if err != nil {
		t.Fatal(err)
	}
	for plat, a := range il {
		b := h1[plat]
		if a.GPU <= b.GPU {
			t.Errorf("%s: GPU inverted-L %v should be slower than horizontal %v", plat, a.GPU, b.GPU)
		}
		if a.CPU <= b.CPU {
			t.Errorf("%s: CPU inverted-L %v should be slower than horizontal %v", plat, a.CPU, b.CPU)
		}
	}
}

func TestCaseStudySeriesMonotone(t *testing.T) {
	series, err := CaseStudySeries([]int{128, 256, 512}, Fig9Problem)
	if err != nil {
		t.Fatal(err)
	}
	for plat, pts := range series {
		for i := 1; i < len(pts); i++ {
			if pts[i].CPU <= pts[i-1].CPU || pts[i].GPU <= pts[i-1].GPU || pts[i].Framework <= pts[i-1].Framework {
				t.Errorf("%s: times not increasing with size at point %d", plat, i)
			}
		}
	}
}

func TestTableFormat(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
	}
	var sb strings.Builder
	tb.Format(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "# demo\n") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "xxx  y") {
		t.Errorf("columns not aligned: %q", out)
	}
}

func TestExtPhiShapes(t *testing.T) {
	tables, err := RunExtPhi(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	// Structural check: each row has both accelerators' framework columns.
	for _, tb := range tables {
		for _, row := range tb.Rows {
			if len(row) != 8 {
				t.Fatalf("%s: row has %d columns, want 8", tb.Title, len(row))
			}
		}
	}
}

func TestExtMultiNeverSlower(t *testing.T) {
	// Water-filled shares mean extra accelerators never slow a row, and on
	// very wide rows the three-accelerator configuration must win.
	for _, cols := range []int{4096, 524288} {
		times, err := MultiTimes(quickCfg(), cols)
		if err != nil {
			t.Fatal(err)
		}
		base := times[0]
		for i, d := range times[1:] {
			if d > base+base/100 {
				t.Errorf("cols=%d: config %d time %v exceeds cpu+k20 %v", cols, i+1, d, base)
			}
		}
	}
	wide, err := MultiTimes(quickCfg(), 524288)
	if err != nil {
		t.Fatal(err)
	}
	if wide[3] >= wide[0] {
		t.Errorf("524288-wide rows: three accelerators %v should beat one %v", wide[3], wide[0])
	}
}

func TestExtSensitivityFrameworkAlwaysWins(t *testing.T) {
	tables, err := RunExtSensitivity(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[5] != "yes" {
			t.Errorf("scale %s: framework lost to a baseline", row[0])
		}
	}
}

func TestScalingExponents(t *testing.T) {
	cpu, gpu, fw, err := ScalingExponents(DefaultConfig(), []int{1024, 2048, 4096, 8192})
	if err != nil {
		t.Fatal(err)
	}
	// The multicore CPU fills n^2 cells at fixed throughput with a
	// per-front dispatch term: effective alpha slightly under 2.
	if cpu < 1.5 || cpu > 2.1 {
		t.Errorf("cpu alpha = %.3f, want near 2", cpu)
	}
	// The GPU is launch-bound across this range: markedly sub-quadratic.
	if gpu >= cpu {
		t.Errorf("gpu alpha %.3f should be below cpu alpha %.3f (launch amortization)", gpu, cpu)
	}
	if gpu < 0.8 {
		t.Errorf("gpu alpha = %.3f implausibly low", gpu)
	}
	// The framework blends both devices; its exponent tracks the GPU's.
	if fw > cpu+0.05 {
		t.Errorf("framework alpha %.3f exceeds cpu %.3f", fw, cpu)
	}
}

func TestEnergyTripleConsistency(t *testing.T) {
	plat := hetsim.HeteroHigh()
	ec, eg, eh, err := EnergyTriple(DefaultConfig(), 4096, plat)
	if err != nil {
		t.Fatal(err)
	}
	if ec <= 0 || eg <= 0 || eh <= 0 {
		t.Fatalf("non-positive energies: %v %v %v", ec, eg, eh)
	}
	// The framework's energy is bounded below by base power over its
	// (shorter) makespan and above by running both devices flat out for the
	// GPU-only duration plus CPU-only busy energy.
	if eh >= ec+eg {
		t.Errorf("framework energy %v exceeds the sum of both baselines", eh)
	}
}

// Every experiment is fully deterministic: two runs of the same driver
// produce byte-identical tables (fixed seeds, integer-exact simulation).
func TestExperimentsDeterministic(t *testing.T) {
	render := func(tables []Table) string {
		var sb strings.Builder
		for _, tb := range tables {
			tb.Format(&sb)
		}
		return sb.String()
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if e.Live {
				t.Skipf("%s reports real wall-clock times, which vary run to run", e.ID)
			}
			a, err := e.Run(quickCfg())
			if err != nil {
				t.Fatal(err)
			}
			b, err := e.Run(quickCfg())
			if err != nil {
				t.Fatal(err)
			}
			if render(a) != render(b) {
				t.Errorf("%s: two runs differ", e.ID)
			}
		})
	}
}

func TestChartsQuick(t *testing.T) {
	charts, err := Charts(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// fig7 plus four figures x two platforms.
	if len(charts) != 9 {
		t.Fatalf("got %d charts, want 9: %v", len(charts), len(charts))
	}
	for stem, c := range charts {
		if len(c.Series) == 0 || c.Title == "" {
			t.Errorf("chart %s degenerate", stem)
		}
		var sb strings.Builder
		if err := c.WriteSVG(&sb); err != nil {
			t.Errorf("chart %s failed to render: %v", stem, err)
		}
	}
}

func TestBottleneckAttributionSumsToMakespan(t *testing.T) {
	for _, hetero := range []bool{false, true} {
		attr, makespan, err := BottleneckAttribution(DefaultConfig(), 1024, hetero)
		if err != nil {
			t.Fatal(err)
		}
		var total time.Duration
		for _, v := range attr {
			total += v
		}
		if total != makespan {
			t.Errorf("hetero=%v: attribution %v != makespan %v", hetero, total, makespan)
		}
	}
	// The pure GPU at 1k is launch-dominated: that's the whole reason the
	// framework's low-work regions pay off.
	attr, makespan, err := BottleneckAttribution(DefaultConfig(), 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	if float64(attr["kernel-launch"]) < 0.5*float64(makespan) {
		t.Errorf("kernel-launch share = %v of %v, want > 50%% at 1k", attr["kernel-launch"], makespan)
	}
}
