package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hetsim"
	"repro/internal/problems"
	"repro/internal/workload"
)

// RunExt3D carries the framework to k = 3, the dimensionality the paper
// defines LDDP-Plus for but leaves untreated: the three-sequence LCS over
// anti-diagonal planes, with the same three-phase CPU/GPU split as the 2-D
// anti-diagonal strategy. The same shape emerges: the framework keeps the
// narrow early/late planes on the CPU and beats the pure accelerator.
func RunExt3D(cfg Config) ([]Table, error) {
	sizes := []int{64, 128, 256, 384}
	if cfg.Quick {
		sizes = []int{32, 64}
	}
	var tables []Table
	for _, plat := range hetsim.Platforms() {
		t := Table{
			Title:  "Extension: 3-D LDDP (three-sequence LCS) — " + plat.Name,
			Header: []string{"box", "cpu", "gpu", "framework", "gpu/fw", "t_switch"},
		}
		for _, n := range sizes {
			// Validate values at the smallest size only; larger boxes run
			// the timing model (n^3 cells grow quickly).
			if n == sizes[0] {
				if err := validateLCS3(cfg, n); err != nil {
					return nil, err
				}
			}
			p := ext3DProblem(cfg.Seed, n)
			o := core.Options{Platform: plat, TSwitch: -1, TShare: -1, SkipCompute: true}
			rc, err := core.SolveCPUOnly3(p, o)
			if err != nil {
				return nil, err
			}
			rg, err := core.SolveGPUOnly3(p, o)
			if err != nil {
				return nil, err
			}
			rh, err := core.SolveHetero3(p, o)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d^3", n),
				fd(rc.Duration()), fd(rg.Duration()), fd(rh.Duration()),
				ratio(rg.Duration(), rh.Duration()),
				fmt.Sprintf("%d", rh.TSwitch),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func ext3DProblem(seed uint64, n int) *core.Problem3[int32] {
	a, b := workload.SimilarStrings(seed, n-1, workload.DNAAlphabet, 0.3)
	c := workload.RandomString(seed+7, n-1, workload.DNAAlphabet)
	return problems.LCS3(a, b, c)
}

func validateLCS3(cfg Config, n int) error {
	a, b := workload.SimilarStrings(cfg.Seed, n-1, workload.DNAAlphabet, 0.3)
	c := workload.RandomString(cfg.Seed+7, n-1, workload.DNAAlphabet)
	res, err := core.SolveHetero3(problems.LCS3(a, b, c), core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		return err
	}
	got := problems.LCS3Length(res.Grid, a, b, c)
	want := problems.LCS3Ref(a, b, c)
	if got != want {
		return fmt.Errorf("ext-3d validation: framework LCS3 %d != reference %d", got, want)
	}
	return nil
}
