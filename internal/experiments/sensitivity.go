package experiments

import (
	"fmt"
	"time"

	"repro/internal/hetsim"
)

// RunExtSensitivity probes how robust the reproduced orderings are to the
// platform calibration: it scales the GPU's sustained throughput (WaveCost)
// across a 16x range around the Hetero-High preset and re-measures the
// Figure 10 comparison at 4k. The framework-beats-GPU claim must hold at
// every scale — the low-work regions the CPU absorbs are launch-bound, not
// throughput-bound — while the CPU/GPU crossover moves as expected.
func RunExtSensitivity(cfg Config) ([]Table, error) {
	n := 4096
	if cfg.Quick {
		n = 1024
	}
	p := Fig10Problem(cfg.Seed, n)
	scales := []float64{0.25, 0.5, 1, 2, 4}

	t := Table{
		Title:  fmt.Sprintf("Extension: calibration sensitivity (Levenshtein %dx%d, Hetero-High, GPU wave-cost scaled)", n, n),
		Header: []string{"wave-cost scale", "cpu", "gpu", "framework", "gpu/fw", "framework wins"},
	}
	for _, scale := range scales {
		plat := hetsim.HeteroHigh()
		plat.GPU.WaveCost = time.Duration(float64(plat.GPU.WaveCost) * scale)
		tri, err := triMeasure(p, plat)
		if err != nil {
			return nil, err
		}
		// "wins" tolerates the sub-percent phase-plumbing overhead of runs
		// that degenerate to CPU-only on small tables (cf. Fig 10 at 1k).
		wins := "yes"
		if tri.Framework > tri.GPU || tri.Framework > tri.CPU+tri.CPU/100 {
			wins = "NO"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2fx", scale),
			fd(tri.CPU), fd(tri.GPU), fd(tri.Framework),
			ratio(tri.GPU, tri.Framework),
			wins,
		})
	}
	return []Table{t}, nil
}
