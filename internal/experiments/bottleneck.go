package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hetsim"
	"repro/internal/trace"
)

// RunExtBottleneck decomposes the critical path of the Figure 10 runs —
// the chain of waits that composes the makespan — into overhead and work
// classes, an analysis real hardware makes difficult but the simulator
// gives exactly. Expected reading: the pure GPU's makespan is dominated by
// kernel-launch latency at small sizes (which is why the framework's
// low-work regions pay), and compute only takes over as tables grow.
func RunExtBottleneck(cfg Config) ([]Table, error) {
	sizes := figSizes(cfg, []int{1024, 2048, 4096, 8192})
	plat := hetsim.HeteroHigh()

	var tables []Table
	for _, mode := range []struct {
		name  string
		solve func(*core.Problem[int32], core.Options) (*core.Result[int32], error)
	}{
		{"pure GPU", core.SolveGPUOnly[int32]},
		{"framework", core.SolveHetero[int32]},
	} {
		t := Table{
			Title:  "Extension: critical-path attribution (Levenshtein, Hetero-High) — " + mode.name,
			Header: []string{"size", "makespan", "kernel-launch", "gpu-compute", "cpu-dispatch", "cpu-compute", "transfer"},
		}
		for _, n := range sizes {
			p := Fig10Problem(cfg.Seed, n)
			res, err := mode.solve(p, core.Options{Platform: plat, TSwitch: -1, TShare: -1, SkipCompute: true})
			if err != nil {
				return nil, err
			}
			attr := trace.AttributeCriticalPath(res.Critical, plat)
			pct := func(key string) string {
				if res.Time == 0 {
					return "-"
				}
				return fmt.Sprintf("%.0f%%", 100*float64(attr[key])/float64(res.Time))
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dx%d", n, n), fd(res.Time),
				pct("kernel-launch"), pct("gpu-compute"),
				pct("cpu-dispatch"), pct("cpu-compute"), pct("transfer"),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// BottleneckAttribution returns the attribution map of one solve for tests.
func BottleneckAttribution(cfg Config, n int, hetero bool) (map[string]time.Duration, time.Duration, error) {
	plat := hetsim.HeteroHigh()
	p := Fig10Problem(cfg.Seed, n)
	solve := core.SolveGPUOnly[int32]
	if hetero {
		solve = core.SolveHetero[int32]
	}
	res, err := solve(p, core.Options{Platform: plat, TSwitch: -1, TShare: -1, SkipCompute: true})
	if err != nil {
		return nil, 0, err
	}
	return trace.AttributeCriticalPath(res.Critical, plat), res.Time, nil
}
