package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hetsim"
)

// RunExtEnergy extends the evaluation with an energy dimension the paper's
// era cared about but its figures omit: the modeled energy of the three
// implementations on the Levenshtein workload. Energy and time pull in
// different directions for a heterogeneous framework — it finishes sooner
// but keeps two devices drawing power — so the framework's energy verdict
// depends on how much idle base power the shorter makespan saves.
func RunExtEnergy(cfg Config) ([]Table, error) {
	sizes := figSizes(cfg, []int{1024, 2048, 4096, 8192})
	var tables []Table
	for _, plat := range hetsim.Platforms() {
		t := Table{
			Title:  "Extension: modeled energy (Levenshtein) — " + plat.Name,
			Header: []string{"size", "cpu (J)", "gpu (J)", "framework (J)", "gpu/fw"},
		}
		for _, n := range sizes {
			p := Fig10Problem(cfg.Seed, n)
			o := core.Options{Platform: plat, TSwitch: -1, TShare: -1, SkipCompute: true}
			rc, err := core.SolveCPUOnly(p, o)
			if err != nil {
				return nil, err
			}
			rg, err := core.SolveGPUOnly(p, o)
			if err != nil {
				return nil, err
			}
			rh, err := core.SolveHetero(p, o)
			if err != nil {
				return nil, err
			}
			ec := plat.Energy(rc.Timeline)
			eg := plat.Energy(rg.Timeline)
			eh := plat.Energy(rh.Timeline)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dx%d", n, n),
				fmt.Sprintf("%.3f", ec), fmt.Sprintf("%.3f", eg), fmt.Sprintf("%.3f", eh),
				fmt.Sprintf("%.2f", eg/eh),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// EnergyTriple returns (cpu, gpu, framework) joules at one size, for tests.
func EnergyTriple(cfg Config, n int, plat *hetsim.Platform) (ec, eg, eh float64, err error) {
	p := Fig10Problem(cfg.Seed, n)
	o := core.Options{Platform: plat, TSwitch: -1, TShare: -1, SkipCompute: true}
	rc, err := core.SolveCPUOnly(p, o)
	if err != nil {
		return 0, 0, 0, err
	}
	rg, err := core.SolveGPUOnly(p, o)
	if err != nil {
		return 0, 0, 0, err
	}
	rh, err := core.SolveHetero(p, o)
	if err != nil {
		return 0, 0, 0, err
	}
	return plat.Energy(rc.Timeline), plat.Energy(rg.Timeline), plat.Energy(rh.Timeline), nil
}
