package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/table"
)

// Ablation: the persistent worker-pool wavefront runtime of the native
// executor (internal/core/pool.go) against the seed spawn-per-front
// executor. Unlike every other experiment, these are *real* wall-clock
// measurements of host goroutines, not simulated timelines — the numbers
// depend on the machine running them, so the experiment is registered as
// Live and excluded from the golden-artifact freshness test.

// measureBest runs f reps times and returns the fastest wall-clock run:
// minimum, not mean, is the standard estimator for the noise-free runtime
// of a deterministic computation.
func measureBest(reps int, f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// RunNativePool measures the pool runtime against the spawn baseline on an
// anti-diagonal workload (Levenshtein, barrier-synchronized fronts) and a
// horizontal one (checkerboard, where the pool's row-band lookahead mode
// replaces the barrier with point-to-point neighbour handoff), plus a
// chunk-size sweep of the dynamic chunking.
func RunNativePool(cfg Config) ([]Table, error) {
	sizes := []int{1024, 2048, 4096}
	reps := 3
	if cfg.Quick {
		sizes = []int{256}
		reps = 1
	}

	// Correctness gate: the pool must agree with the sequential reference
	// on both workloads before any timing is reported.
	checkSize := sizes[0]
	lev := Fig10Problem(cfg.Seed, checkSize)
	wantLev, err := core.Solve(lev)
	if err != nil {
		return nil, err
	}
	gotLev, err := core.SolveParallel(lev, 0)
	if err != nil {
		return nil, err
	}
	if !table.EqualComparable(wantLev, gotLev) {
		return nil, fmt.Errorf("nativepool: pool disagrees with Solve on Levenshtein %d", checkSize)
	}
	chk := Fig13Problem(cfg.Seed, checkSize)
	wantChk, err := core.Solve(chk)
	if err != nil {
		return nil, err
	}
	gotChk, err := core.SolveParallel(chk, 0)
	if err != nil {
		return nil, err
	}
	if !table.EqualComparable(wantChk, gotChk) {
		return nil, fmt.Errorf("nativepool: pool disagrees with Solve on checkerboard %d", checkSize)
	}

	antiDiag := Table{
		Title:  "Anti-diagonal (Levenshtein): spawn-per-front vs persistent pool",
		Header: []string{"n", "spawn", "pool", "speedup"},
	}
	for _, n := range sizes {
		p := Fig10Problem(cfg.Seed, n)
		spawn, err := measureBest(reps, func() error { _, err := core.SolveParallelSpawn(p, 0); return err })
		if err != nil {
			return nil, err
		}
		pool, err := measureBest(reps, func() error { _, err := core.SolveParallel(p, 0); return err })
		if err != nil {
			return nil, err
		}
		antiDiag.Rows = append(antiDiag.Rows, []string{
			fmt.Sprint(n), fd(spawn), fd(pool), ratio(spawn, pool)})
	}

	horiz := Table{
		Title:  "Horizontal (checkerboard): barrier vs row-band lookahead",
		Header: []string{"n", "spawn", "pool barrier", "pool lookahead", "speedup vs spawn"},
	}
	for _, n := range sizes {
		p := Fig13Problem(cfg.Seed, n)
		spawn, err := measureBest(reps, func() error { _, err := core.SolveParallelSpawn(p, 0); return err })
		if err != nil {
			return nil, err
		}
		barrier, err := measureBest(reps, func() error {
			_, err := core.SolveParallelOpt(p, core.Options{NativeNoLookahead: true})
			return err
		})
		if err != nil {
			return nil, err
		}
		look, err := measureBest(reps, func() error { _, err := core.SolveParallelOpt(p, core.Options{}); return err })
		if err != nil {
			return nil, err
		}
		horiz.Rows = append(horiz.Rows, []string{
			fmt.Sprint(n), fd(spawn), fd(barrier), fd(look), ratio(spawn, look)})
	}

	chunkN := sizes[len(sizes)-1]
	chunkP := Fig10Problem(cfg.Seed, chunkN)
	chunks := Table{
		Title:  fmt.Sprintf("Dynamic chunk-size sweep (Levenshtein %d, pool)", chunkN),
		Header: []string{"chunk", "pool"},
	}
	for _, c := range []int{64, 128, 256, 512, 1024, 2048} {
		d, err := measureBest(reps, func() error {
			_, err := core.SolveParallelOpt(chunkP, core.Options{NativeChunk: c})
			return err
		})
		if err != nil {
			return nil, err
		}
		chunks.Rows = append(chunks.Rows, []string{fmt.Sprint(c), fd(d)})
	}

	return []Table{antiDiag, horiz, chunks}, nil
}
