package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hetsim"
	"repro/internal/problems"
	"repro/internal/table"
	"repro/internal/workload"
)

// RunAblationPipeline regenerates ablation A1: heterogeneous horizontal
// case-1 with the transfer pipeline on (DMA engines overlap kernels) and
// off (synchronous default-stream copies).
func RunAblationPipeline(cfg Config) ([]Table, error) {
	sizes := figSizes(cfg, []int{1024, 2048, 4096, 8192})
	t := Table{
		Title:  "Ablation A1: pipelined vs synchronous one-way transfers (horizontal case-1, Hetero-High)",
		Header: []string{"size", "pipelined", "synchronous", "slowdown"},
	}
	for _, n := range sizes {
		p := Fig9Problem(n)
		on, err := core.SolveHetero(p, core.Options{TSwitch: -1, TShare: -1, SkipCompute: true})
		if err != nil {
			return nil, err
		}
		off, err := core.SolveHetero(p, core.Options{TSwitch: -1, TShare: -1, SkipCompute: true, DisablePipeline: true})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", n, n), fd(on.Time), fd(off.Time), ratio(off.Time, on.Time),
		})
	}
	return []Table{t}, nil
}

// RunAblationPinned regenerates ablation A2: heterogeneous horizontal
// case-2 (checkerboard) with pinned vs pageable boundary transfers.
func RunAblationPinned(cfg Config) ([]Table, error) {
	sizes := figSizes(cfg, []int{1024, 2048, 4096, 8192})
	t := Table{
		Title:  "Ablation A2: pinned vs pageable two-way boundary transfers (checkerboard, Hetero-High)",
		Header: []string{"size", "pinned", "pageable", "slowdown"},
	}
	for _, n := range sizes {
		p := Fig13Problem(cfg.Seed, n)
		pin, err := core.SolveHetero(p, core.Options{TSwitch: -1, TShare: -1, SkipCompute: true})
		if err != nil {
			return nil, err
		}
		page, err := core.SolveHetero(p, core.Options{TSwitch: -1, TShare: -1, SkipCompute: true, UsePageable: true})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", n, n), fd(pin.Time), fd(page.Time), ratio(page.Time, pin.Time),
		})
	}
	return []Table{t}, nil
}

// RunAblationCoalesce regenerates ablation A3: GPU-only anti-diagonal
// execution under the coalescing-friendly anti-diagonal-major layout vs a
// naive row-major table.
func RunAblationCoalesce(cfg Config) ([]Table, error) {
	sizes := figSizes(cfg, []int{1024, 2048, 4096, 8192})
	t := Table{
		Title:  "Ablation A3: coalesced (antidiag-major) vs uncoalesced (row-major) GPU layout (Levenshtein, Hetero-High)",
		Header: []string{"size", "coalesced", "row-major", "slowdown"},
	}
	for _, n := range sizes {
		p := Fig10Problem(cfg.Seed, n)
		good, err := core.SolveGPUOnly(p, core.Options{SkipCompute: true})
		if err != nil {
			return nil, err
		}
		bad, err := core.SolveGPUOnly(p, core.Options{SkipCompute: true, Layout: table.RowMajor{}})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", n, n), fd(good.Time), fd(bad.Time), ratio(bad.Time, good.Time),
		})
	}
	return []Table{t}, nil
}

// RunAblationChunking regenerates ablation A4: CPU-only execution with the
// chunked (thread-per-block) strategy vs one task per cell (§IV-A).
func RunAblationChunking(cfg Config) ([]Table, error) {
	sizes := figSizes(cfg, []int{512, 1024, 2048, 4096})
	t := Table{
		Title:  "Ablation A4: CPU thread-per-chunk vs thread-per-cell (Levenshtein, Hetero-High)",
		Header: []string{"size", "chunked", "thread-per-cell", "slowdown"},
	}
	for _, n := range sizes {
		p := Fig10Problem(cfg.Seed, n)
		chunked, err := core.SolveCPUOnly(p, core.Options{SkipCompute: true})
		if err != nil {
			return nil, err
		}
		percell, err := core.SolveCPUOnly(p, core.Options{SkipCompute: true, CPUThreadPerCell: true})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", n, n), fd(chunked.Time), fd(percell.Time), ratio(percell.Time, chunked.Time),
		})
	}
	return []Table{t}, nil
}

// RunAblationTuning regenerates ablation A5: the autotuner's parameters
// against the model-derived defaults on the Levenshtein workload, for both
// platforms.
func RunAblationTuning(cfg Config) ([]Table, error) {
	n := 4096
	if cfg.Quick {
		n = 256
	}
	a, b := workload.SimilarStrings(cfg.Seed, n-1, workload.ASCIIAlphabet, 0.2)
	p := problems.Levenshtein(a, b)
	t := Table{
		Title:  fmt.Sprintf("Ablation A5: tuned vs heuristic parameters (Levenshtein %dx%d)", n, n),
		Header: []string{"platform", "heuristic t_sw/t_sh", "heuristic time", "tuned t_sw/t_sh", "tuned time", "gain"},
	}
	for _, plat := range hetsim.Platforms() {
		def, err := core.SolveHetero(p, core.Options{Platform: plat, TSwitch: -1, TShare: -1, SkipCompute: true})
		if err != nil {
			return nil, err
		}
		tuned, err := core.Tune(p, core.Options{Platform: plat})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			plat.Name,
			fmt.Sprintf("%d/%d", def.TSwitch, def.TShare), fd(def.Time),
			fmt.Sprintf("%d/%d", tuned.TSwitch, tuned.TShare), fd(tuned.Time),
			ratio(def.Time, tuned.Time),
		})
	}
	return []Table{t}, nil
}

// RunAblationGPUChunking regenerates the GPU half of §IV-A: one thread per
// cell (the paper's choice, "to exploit massively parallel architecture of
// the GPU, creating a large number of light-weight threads is the best
// choice") against threads that serially chunk 8 or 64 cells each, on
// GPU-only anti-diagonal execution.
func RunAblationGPUChunking(cfg Config) ([]Table, error) {
	sizes := figSizes(cfg, []int{1024, 2048, 4096, 8192})
	g := hetsim.HeteroHigh().GPU
	t := Table{
		Title:  "Ablation A6: GPU thread-per-cell vs chunked threads (Levenshtein diagonals, Hetero-High)",
		Header: []string{"size", "thread-per-cell", "chunk=8", "chunk=64", "slowdown(64)"},
	}
	for _, n := range sizes {
		// Sum kernel times over all anti-diagonals of an n x n table.
		var perCell, c8, c64 time.Duration
		for d := 0; d < 2*n-1; d++ {
			w := n - abs(n-1-d)
			perCell += g.KernelDuration(w, true)
			c8 += g.ChunkedKernelDuration(w, 8, true)
			c64 += g.ChunkedKernelDuration(w, 64, true)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", n, n), fd(perCell), fd(c8), fd(c64), ratio(c64, perCell),
		})
	}
	return []Table{t}, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
