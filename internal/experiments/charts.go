package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/hetsim"
	"repro/internal/plot"
	"repro/internal/problems"
	"repro/internal/workload"
)

// Charts regenerates the paper's measured figures as actual SVG line
// charts, keyed by file stem (e.g. "fig10-hetero-high"). cmd/lddpbench
// writes them with -svg.
func Charts(cfg Config) (map[string]*plot.Chart, error) {
	out := map[string]*plot.Chart{}

	// Figure 7: the t_switch sweep curve.
	n := 4096
	if cfg.Quick {
		n = 2048
	}
	a, b := workload.SimilarStrings(cfg.Seed, n-1, workload.DNAAlphabet, 0.3)
	tuned, err := core.Tune(problems.LCS(a, b), core.Options{Platform: hetsim.HeteroHigh()})
	if err != nil {
		return nil, err
	}
	fig7 := &plot.Chart{
		Title:  fmt.Sprintf("Figure 7: LCS %dx%d time vs t_switch (t_share=0)", n, n),
		XLabel: "t_switch (iterations)",
		YLabel: "time (ms)",
	}
	var xs, ys []float64
	for _, pt := range tuned.SwitchCurve {
		xs = append(xs, float64(pt.Value))
		ys = append(ys, pt.Time.Seconds()*1e3)
	}
	fig7.Series = []plot.Series{{Name: "framework", X: xs, Y: ys}}
	out["fig7"] = fig7

	// Case-study figures: one chart per figure and platform.
	for _, fig := range []struct {
		id    string
		title string
		sizes []int
		build func(n int) *core.Problem[int32]
	}{
		{"fig9", "Figure 9: horizontal case-1", []int{1024, 2048, 4096, 8192}, Fig9Problem},
		{"fig10", "Figure 10: Levenshtein distance", []int{1024, 2048, 4096, 8192},
			func(n int) *core.Problem[int32] { return Fig10Problem(cfg.Seed, n) }},
		{"fig12", "Figure 12: Floyd-Steinberg dithering", []int{512, 1024, 2048, 4096},
			func(n int) *core.Problem[int32] { return Fig12Problem(cfg.Seed, n) }},
		{"fig13", "Figure 13: checkerboard problem", []int{1024, 2048, 4096, 8192},
			func(n int) *core.Problem[int32] { return Fig13Problem(cfg.Seed, n) }},
	} {
		sizes := fig.sizes
		if cfg.Quick {
			sizes = []int{128, 256}
		}
		series, err := CaseStudySeries(sizes, fig.build)
		if err != nil {
			return nil, err
		}
		for _, plat := range hetsim.Platforms() {
			var sx, cpu, gpu, fw []float64
			for _, tt := range series[plat.Name] {
				sx = append(sx, float64(tt.Size))
				cpu = append(cpu, tt.CPU.Seconds()*1e3)
				gpu = append(gpu, tt.GPU.Seconds()*1e3)
				fw = append(fw, tt.Framework.Seconds()*1e3)
			}
			key := fig.id + "-" + strings.ToLower(strings.ReplaceAll(plat.Name, "-", ""))
			out[key] = &plot.Chart{
				Title:  fig.title + " — " + plat.Name,
				XLabel: "table side",
				YLabel: "time (ms)",
				LogX:   true,
				LogY:   true,
				Series: []plot.Series{
					{Name: "cpu", X: sx, Y: cpu},
					{Name: "gpu", X: sx, Y: gpu},
					{Name: "framework", X: sx, Y: fw},
				},
			}
		}
	}
	return out, nil
}
