package experiments

import (
	"fmt"

	"repro/internal/hetsim"
)

// RunExtModern asks whether the paper's conclusions survive a decade of
// hardware evolution: the Figure 10 comparison on Hetero-Modern (64-core
// server CPU + A100-class accelerator). Accelerator throughput grew ~17x
// over the K20 but launch latency only halved, so wavefront DP is *more*
// launch-bound than in 2015 — the low-work regions the framework hands to
// the CPU matter more, not less.
func RunExtModern(cfg Config) ([]Table, error) {
	sizes := []int{1024, 2048, 4096, 8192, 16384, 32768}
	if cfg.Quick {
		sizes = []int{256, 512}
	}
	modern := hetsim.HeteroModern()
	high := hetsim.HeteroHigh()
	t := Table{
		Title:  "Extension: a decade later — Levenshtein on Hetero-Modern (EPYC + A100 class)",
		Header: []string{"size", "cpu", "gpu", "framework", "gpu/fw (modern)", "gpu/fw (2015 K20)"},
	}
	for _, n := range sizes {
		p := Fig10Problem(cfg.Seed, n)
		tri, err := triMeasure(p, modern)
		if err != nil {
			return nil, err
		}
		old, err := triMeasure(p, high)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", n, n),
			fd(tri.CPU), fd(tri.GPU), fd(tri.Framework),
			ratio(tri.GPU, tri.Framework),
			ratio(old.GPU, old.Framework),
		})
	}
	return []Table{t}, nil
}
