package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hetsim"
)

// TriTimes holds the three implementations' simulated times at one size,
// the unit every case-study figure plots.
type TriTimes struct {
	Size      int
	CPU       time.Duration
	GPU       time.Duration
	Framework time.Duration
	TSwitch   int
	TShare    int
}

// triMeasure times the CPU-only, GPU-only, and framework solves of one
// problem on one platform, with auto parameters and without evaluating the
// recurrence.
func triMeasure[T any](p *core.Problem[T], plat *hetsim.Platform) (TriTimes, error) {
	o := core.Options{Platform: plat, TSwitch: -1, TShare: -1, SkipCompute: true}
	rc, err := core.SolveCPUOnly(p, o)
	if err != nil {
		return TriTimes{}, err
	}
	rg, err := core.SolveGPUOnly(p, o)
	if err != nil {
		return TriTimes{}, err
	}
	rh, err := core.SolveHetero(p, o)
	if err != nil {
		return TriTimes{}, err
	}
	return TriTimes{
		CPU: rc.Time, GPU: rg.Time, Framework: rh.Time,
		TSwitch: rh.TSwitch, TShare: rh.TShare,
	}, nil
}

// CaseStudySeries runs a case-study sweep: for each platform and size,
// the three implementations' times. build constructs the problem for a
// size.
func CaseStudySeries[T any](sizes []int, build func(size int) *core.Problem[T]) (map[string][]TriTimes, error) {
	out := map[string][]TriTimes{}
	for _, plat := range hetsim.Platforms() {
		for _, n := range sizes {
			tt, err := triMeasure(build(n), plat)
			if err != nil {
				return nil, fmt.Errorf("%s size %d: %w", plat.Name, n, err)
			}
			tt.Size = n
			out[plat.Name] = append(out[plat.Name], tt)
		}
	}
	return out, nil
}

// caseStudyTables renders a CaseStudySeries result in paper form: one table
// per platform with CPU/GPU/Framework columns and the GPU/framework
// speedup.
func caseStudyTables(title string, series map[string][]TriTimes) []Table {
	var tables []Table
	for _, plat := range hetsim.Platforms() {
		t := Table{
			Title:  fmt.Sprintf("%s — %s", title, plat.Name),
			Header: []string{"size", "cpu", "gpu", "framework", "gpu/fw", "t_switch", "t_share"},
		}
		for _, tt := range series[plat.Name] {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dx%d", tt.Size, tt.Size),
				fd(tt.CPU), fd(tt.GPU), fd(tt.Framework),
				ratio(tt.GPU, tt.Framework),
				fmt.Sprintf("%d", tt.TSwitch), fmt.Sprintf("%d", tt.TShare),
			})
		}
		tables = append(tables, t)
	}
	return tables
}

// figSizes returns the sweep sizes for a figure; quick mode shrinks them.
func figSizes(cfg Config, full []int) []int {
	if cfg.Quick {
		return []int{128, 256}
	}
	return full
}
