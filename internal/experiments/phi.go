package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hetsim"
)

// RunExtPhi answers the paper's concluding question — "how does a
// heterogeneous approach impact the implementation if the system has some
// other accelerators like Intel Xeon-Phi" — by re-running the Levenshtein
// (anti-diagonal) and checkerboard (horizontal case-2) sweeps with the
// Hetero-High host paired to a modeled Xeon Phi 5110P instead of the K20.
//
// Expected reading: the Phi's lower peak throughput makes the accelerator-
// only runs slower than the K20's, but its weaker device also makes CPU
// work-sharing relatively *more* valuable, so the framework-over-
// accelerator gain is larger on the Phi platform.
func RunExtPhi(cfg Config) ([]Table, error) {
	sizes := figSizes(cfg, []int{1024, 2048, 4096, 8192})
	k20 := hetsim.HeteroHigh()
	phi := hetsim.HeteroPhi()

	var tables []Table
	for _, workloadRow := range []struct {
		title string
		build func(n int) *core.Problem[int32]
	}{
		{"Levenshtein (anti-diagonal)", func(n int) *core.Problem[int32] { return Fig10Problem(cfg.Seed, n) }},
		{"checkerboard (horizontal case-2)", func(n int) *core.Problem[int32] { return Fig13Problem(cfg.Seed, n) }},
	} {
		t := Table{
			Title:  "Extension: K20 vs Xeon Phi — " + workloadRow.title,
			Header: []string{"size", "cpu", "k20", "fw(k20)", "k20/fw", "phi", "fw(phi)", "phi/fw"},
		}
		for _, n := range sizes {
			p := workloadRow.build(n)
			k, err := triMeasure(p, k20)
			if err != nil {
				return nil, err
			}
			ph, err := triMeasure(p, phi)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dx%d", n, n),
				fd(k.CPU),
				fd(k.GPU), fd(k.Framework), ratio(k.GPU, k.Framework),
				fd(ph.GPU), fd(ph.Framework), ratio(ph.GPU, ph.Framework),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}
