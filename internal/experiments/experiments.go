// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each experiment is a
// named driver producing printable tables; cmd/lddpbench is the CLI front
// end and bench_test.go wraps each driver in a testing.B benchmark.
//
// Timing sweeps run the solvers in SkipCompute mode: the simulated timeline
// is provably identical with and without evaluating the recurrence (see
// TestSolveHeteroSkipCompute), and this keeps full parameter sweeps fast.
// Result *values* are validated separately: every driver with a workload
// also solves one instance for real and cross-checks the answer against the
// problem's independent reference implementation before reporting.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/trace"
)

// Config controls an experiment run.
type Config struct {
	// Quick shrinks workloads for smoke tests and CI.
	Quick bool
	// Seed feeds the workload generators.
	Seed uint64
}

// DefaultConfig returns the configuration used for the published numbers.
func DefaultConfig() Config { return Config{Seed: 20150525} } // IPDPS-W 2015

// Table is one printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Format writes the table with aligned columns.
func (t Table) Format(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// Experiment is a registered driver.
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(Config) ([]Table, error)
	// Live marks experiments that measure real wall-clock execution on the
	// host rather than simulated timelines. Their numbers vary by machine,
	// so the golden-artifact freshness test skips them; the committed
	// results are a record of one reference run, not a reproducible
	// artifact.
	Live bool
}

// Registry returns all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Table I: contributing sets and patterns",
			"All 15 contributing sets mapped to their dependency patterns.", RunTable1, false},
		{"table2", "Table II: patterns and transfer needs",
			"Per-pattern CPU<->GPU data movement during heterogeneous execution.", RunTable2, false},
		{"fig7", "Figure 7: t_switch sweep (LCS 4k x 4k)",
			"Heterogeneous time vs iterations kept on the CPU in the low-work region.", RunFig7, false},
		{"fig8", "Figure 8: inverted-L vs horizontal case-1",
			"CPU and GPU times of both formulations of an {NW} problem.", RunFig8, false},
		{"fig9", "Figure 9: horizontal case-1 times",
			"CPU/GPU/Framework times across table sizes on both platforms.", RunFig9, false},
		{"fig10", "Figure 10: Levenshtein distance (anti-diagonal)",
			"CPU/GPU/Framework times across table sizes on both platforms.", RunFig10, false},
		{"fig12", "Figure 12: Floyd-Steinberg dithering (knight-move)",
			"CPU/GPU/Framework times across image sizes on both platforms.", RunFig12, false},
		{"fig13", "Figure 13: checkerboard problem (horizontal case-2)",
			"CPU/GPU/Framework times across table sizes on both platforms.", RunFig13, false},
		{"ablation-pipeline", "Ablation A1: pipelined vs synchronous transfers",
			"One-way boundary traffic with and without copy/compute overlap (§IV-C case 1).", RunAblationPipeline, false},
		{"ablation-pinned", "Ablation A2: pinned vs pageable boundary transfers",
			"Two-way boundary traffic through pinned and pageable memory (§IV-C case 2).", RunAblationPinned, false},
		{"ablation-coalesce", "Ablation A3: coalesced vs row-major layout",
			"GPU kernels under the pattern layout vs a naive row-major table (§IV-B).", RunAblationCoalesce, false},
		{"ablation-chunking", "Ablation A4: CPU thread-per-chunk vs thread-per-cell",
			"The CPU threading strategies of §IV-A.", RunAblationChunking, false},
		{"ablation-tuning", "Ablation A5: tuned vs heuristic parameters",
			"Autotuned t_switch/t_share against the model-derived defaults (§V-A).", RunAblationTuning, false},
		{"ablation-gpu-chunking", "Ablation A6: GPU thread-per-cell vs chunked threads",
			"The GPU half of the §IV-A threading discussion.", RunAblationGPUChunking, false},
		{"ext-phi", "Extension: Xeon Phi as the accelerator",
			"The paper's future-work question: the Hetero-High host paired with a modeled Xeon Phi 5110P.", RunExtPhi, false},
		{"ext-multi", "Extension: multiple accelerators",
			"Horizontal-pattern rows split across the CPU and up to three accelerators with water-filled shares.", RunExtMulti, false},
		{"ext-3d", "Extension: 3-D LDDP (three-sequence LCS)",
			"The k=3 instantiation of the paper's k>=2 problem class, over anti-diagonal planes.", RunExt3D, false},
		{"ext-sensitivity", "Extension: calibration sensitivity",
			"The Figure 10 ordering re-measured across a 16x range of GPU throughput calibrations.", RunExtSensitivity, false},
		{"ext-scaling", "Extension: scaling exponents",
			"Power-law fits T(n) = C*n^alpha to the Figure 10/13 series.", RunExtScaling, false},
		{"ext-modern", "Extension: modern hardware what-if",
			"The Figure 10 comparison on an EPYC + A100-class platform, a decade past the paper.", RunExtModern, false},
		{"ext-bottleneck", "Extension: critical-path attribution",
			"The makespan of GPU-only vs framework runs decomposed into launch, dispatch, compute and transfer time.", RunExtBottleneck, false},
		{"ext-energy", "Extension: modeled energy",
			"Energy of CPU-only, GPU-only and framework runs under TDP-class power draws.", RunExtEnergy, false},
		{"ablation-native-pool", "Ablation A7: persistent pool vs spawn-per-front native executor",
			"Real wall-clock times of the pool wavefront runtime (dynamic chunking, epoch barrier, row-band lookahead) against the spawn baseline.", RunNativePool, true},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// fd formats a duration for table cells.
func fd(d time.Duration) string { return trace.FormatDuration(d) }

// ratio formats a/b to two decimals; "-" when b is zero.
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}
