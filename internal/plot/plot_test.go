package plot

import (
	"strings"
	"testing"
)

func demoChart() *Chart {
	return &Chart{
		Title:  "Figure 10: Levenshtein <times>",
		XLabel: "table side",
		YLabel: "time (ms)",
		LogX:   true,
		Series: []Series{
			{Name: "cpu", X: []float64{1024, 2048, 4096}, Y: []float64{5.8, 15.2, 44.4}},
			{Name: "gpu", X: []float64{1024, 2048, 4096}, Y: []float64{7.8, 15.6, 31.4}},
			{Name: "framework", X: []float64{1024, 2048, 4096}, Y: []float64{5.9, 13.6, 29.4}},
		},
	}
}

func TestWriteSVG(t *testing.T) {
	var sb strings.Builder
	if err := demoChart().WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "Figure 10: Levenshtein &lt;times&gt;",
		"cpu", "gpu", "framework", "table side", "time (ms)"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 3 {
		t.Errorf("polyline count = %d, want 3", got)
	}
	if got := strings.Count(out, "<circle"); got != 9 {
		t.Errorf("circle count = %d, want 9", got)
	}
}

func TestWriteSVGErrors(t *testing.T) {
	empty := &Chart{Title: "x"}
	if err := empty.WriteSVG(&strings.Builder{}); err == nil {
		t.Error("empty chart should error")
	}
	bad := &Chart{Series: []Series{{Name: "a", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := bad.WriteSVG(&strings.Builder{}); err == nil {
		t.Error("malformed series should error")
	}
	logbad := &Chart{LogY: true, Series: []Series{{Name: "a", X: []float64{1}, Y: []float64{0}}}}
	if err := logbad.WriteSVG(&strings.Builder{}); err == nil {
		t.Error("zero on log axis should error")
	}
}

func TestWriteSVGDegenerateRanges(t *testing.T) {
	flat := &Chart{Series: []Series{{Name: "a", X: []float64{5, 5}, Y: []float64{3, 3}}}}
	var sb strings.Builder
	if err := flat.WriteSVG(&sb); err != nil {
		t.Fatalf("flat chart should render: %v", err)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		2048:   "2048", // small integers render exactly
		16384:  "16.4k",
		3:      "3",
		1.5e6:  "1.5M",
		2.5e9:  "2.5G",
		0.0042: "0.0042",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestYTicksLog(t *testing.T) {
	ticks := yTicks(0.002, 5, true)
	if len(ticks) < 2 {
		t.Fatalf("log ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Errorf("ticks not ascending: %v", ticks)
		}
	}
}
