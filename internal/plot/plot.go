// Package plot renders the experiment series as self-contained SVG line
// charts — the reproduced counterparts of the paper's figures. Pure
// stdlib; the output opens in any browser.
package plot

import (
	"errors"
	"fmt"
	"html"
	"io"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart describes one figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogX/LogY select logarithmic axes (base 2 for X, 10 for Y), the
	// natural scales for size sweeps spanning octaves.
	LogX, LogY bool
	Series     []Series
}

// palette holds the line colors, reused cyclically.
var palette = []string{"#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c"}

const (
	chartW  = 720
	chartH  = 420
	marginL = 70
	marginR = 150
	marginT = 40
	marginB = 50
)

// WriteSVG renders the chart.
func (c *Chart) WriteSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return errors.New("plot: chart has no series")
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			return fmt.Errorf("plot: series %q malformed", s.Name)
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if c.LogX && x <= 0 || c.LogY && y <= 0 {
				return fmt.Errorf("plot: series %q has non-positive values on a log axis", s.Name)
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if xmin == xmax {
		xmax = xmin + 1
	}
	if ymin == ymax {
		ymax = ymin + 1
	}

	tx := func(x float64) float64 {
		lo, hi, v := xmin, xmax, x
		if c.LogX {
			lo, hi, v = math.Log(xmin), math.Log(xmax), math.Log(x)
		}
		return marginL + (v-lo)/(hi-lo)*float64(chartW-marginL-marginR)
	}
	ty := func(y float64) float64 {
		lo, hi, v := ymin, ymax, y
		if c.LogY {
			lo, hi, v = math.Log(ymin), math.Log(ymax), math.Log(y)
		}
		return float64(chartH-marginB) - (v-lo)/(hi-lo)*float64(chartH-marginT-marginB)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", chartW, chartH)
	fmt.Fprintf(&sb, `<text x="%d" y="20" font-size="15">%s</text>`+"\n", marginL, html.EscapeString(c.Title))

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginL, chartH-marginB, chartW-marginR, chartH-marginB)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginL, marginT, marginL, chartH-marginB)
	fmt.Fprintf(&sb, `<text x="%d" y="%d">%s</text>`+"\n",
		(chartW-marginR)/2, chartH-12, html.EscapeString(c.XLabel))
	fmt.Fprintf(&sb, `<text x="14" y="%d" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		chartH/2, chartH/2, html.EscapeString(c.YLabel))

	// X tick marks at each distinct x of the first series.
	for _, x := range c.Series[0].X {
		px := tx(x)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n",
			px, chartH-marginB, px, chartH-marginB+4)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			px, chartH-marginB+18, formatTick(x))
	}
	// Y ticks: min, mid, max.
	for _, y := range yTicks(ymin, ymax, c.LogY) {
		py := ty(y)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, py, chartW-marginR, py)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n",
			marginL-6, py+4, formatTick(y))
	}

	// Lines, points, legend.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", tx(s.X[i]), ty(s.Y[i])))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				tx(s.X[i]), ty(s.Y[i]), color)
		}
		ly := marginT + 18*si
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			chartW-marginR+10, ly, chartW-marginR+34, ly, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d">%s</text>`+"\n",
			chartW-marginR+40, ly+4, html.EscapeString(s.Name))
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// yTicks picks a handful of y grid values.
func yTicks(lo, hi float64, log bool) []float64 {
	if log {
		var out []float64
		start := math.Pow(10, math.Floor(math.Log10(lo)))
		for v := start; v <= hi*1.0001; v *= 10 {
			if v >= lo*0.9999 {
				out = append(out, v)
			}
		}
		if len(out) >= 2 {
			return out
		}
	}
	return []float64{lo, (lo + hi) / 2, hi}
}

// formatTick renders an axis value compactly.
func formatTick(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
