package trace

import (
	"sort"
	"time"
)

// Analyzer for recorded event streams: per-worker utilization timelines,
// barrier-stall breakdown per front, and the critical path through the
// front DAG. Works on either a live Recorder's Events() or a stream read
// back with ReadChrome.

// Report is the analyzed view of one trace.
type Report struct {
	Meta   Meta  `json:"meta"`
	SpanNS int64 `json:"span_ns"` // first event start to last event end
	Events int   `json:"events"`

	Workers []LaneReport `json:"workers"`

	// Util is the per-lane utilization timeline: Util[lane][bucket] is
	// the busy fraction of that bucket of the span. Buckets is the bucket
	// count; BucketNS the bucket width.
	Buckets  int         `json:"buckets"`
	BucketNS int64       `json:"bucket_ns"`
	Util     [][]float64 `json:"util"`

	Stall    StallReport    `json:"stall"`
	Queue    QueueReport    `json:"queue"`
	Critical CriticalReport `json:"critical"`
}

// LaneReport aggregates one lane's work.
type LaneReport struct {
	Worker int    `json:"worker"`
	Name   string `json:"name"`
	BusyNS int64  `json:"busy_ns"`
	Util   float64 `json:"util"`
	Chunks int    `json:"chunks"`
	Cells  int64  `json:"cells"`
}

// StallReport breaks synchronization waits down.
type StallReport struct {
	// BarrierNS is the total time workers spent parked at the epoch
	// barrier; HandoffNS the total time band workers waited for
	// neighbour tokens.
	BarrierNS int64 `json:"barrier_ns"`
	HandoffNS int64 `json:"handoff_ns"`
	// FrontsWithStall counts fronts with at least one barrier wait.
	FrontsWithStall int `json:"fronts_with_stall"`
	// Top lists the worst fronts by accumulated barrier stall.
	Top []FrontStall `json:"top,omitempty"`
}

// QueueReport aggregates the async executor's KindReady queue-depth
// samples. Zero Samples means the trace carries none (every
// level-synchronous executor).
type QueueReport struct {
	Samples   int     `json:"samples"`
	PeakDepth int64   `json:"peak_depth"`
	AvgDepth  float64 `json:"avg_depth"`
}

// FrontStall is one front's barrier-stall aggregate.
type FrontStall struct {
	Front   int32 `json:"front"`
	StallNS int64 `json:"stall_ns"`
	Waiters int   `json:"waiters"`
	WallNS  int64 `json:"wall_ns"` // front span, 0 if no KindFront event
}

// CriticalReport decomposes the critical path through the front DAG.
//
// For barrier-pool traces the front DAG is a chain — every front waits
// on the previous one — so the path visits every KindFront span;
// each step splits into the longest chunk of that front (compute) and
// the rest of the front's wall (overhead: imbalance + barrier). Fronts
// run inline by the advancing worker contribute their serial time.
//
// For band (lookahead) traces the DAG is (row, band) with edges from a
// row to its neighbours' previous row; the path walks actual timestamps
// backwards from the last-finishing row span.
type CriticalReport struct {
	Kind      string `json:"kind"` // "front-chain", "band-path" or "none"
	Steps     int    `json:"steps"`
	ComputeNS int64  `json:"compute_ns"`
	StallNS   int64  `json:"stall_ns"`
	InlineNS  int64  `json:"inline_ns"`
	// Top lists the worst steps by overhead.
	Top []CriticalStep `json:"top,omitempty"`
}

// CriticalStep is one step of the critical path.
type CriticalStep struct {
	Front     int32 `json:"front"`
	ComputeNS int64 `json:"compute_ns"`
	StallNS   int64 `json:"stall_ns"`
}

const topN = 5

// busyKind reports whether spans of this kind occupy their lane.
func busyKind(k Kind) bool {
	switch k {
	case KindChunk, KindInline, KindRow, KindTask, KindPhase, KindXferH2D, KindXferD2H:
		return true
	}
	return false
}

// Analyze computes the full report for an event stream. buckets <= 0
// selects 60 utilization buckets.
func Analyze(meta Meta, events []Event, buckets int) *Report {
	if buckets <= 0 {
		buckets = 60
	}
	rep := &Report{Meta: meta, Events: len(events), Buckets: buckets}
	if len(events) == 0 {
		rep.Critical.Kind = "none"
		return rep
	}

	lo, hi := events[0].TS, int64(0)
	maxLane := 0
	for _, e := range events {
		if e.TS < lo {
			lo = e.TS
		}
		if e.End() > hi {
			hi = e.End()
		}
		if int(e.Worker) > maxLane {
			maxLane = int(e.Worker)
		}
	}
	rep.SpanNS = hi - lo
	if rep.SpanNS <= 0 {
		rep.SpanNS = 1
	}

	// Per-lane busy totals and the bucketed utilization timeline.
	nLanes := maxLane + 1
	rep.Util = make([][]float64, nLanes)
	for i := range rep.Util {
		rep.Util[i] = make([]float64, buckets)
	}
	rep.BucketNS = (rep.SpanNS + int64(buckets) - 1) / int64(buckets)
	lanes := make([]LaneReport, nLanes)
	for i := range lanes {
		lanes[i] = LaneReport{Worker: i, Name: laneName(meta, i)}
	}
	for _, e := range events {
		if !busyKind(e.Kind) {
			continue
		}
		lr := &lanes[e.Worker]
		lr.BusyNS += e.Dur
		if e.Kind == KindChunk || e.Kind == KindInline || e.Kind == KindRow || e.Kind == KindTask {
			lr.Chunks++
			lr.Cells += e.B - e.A
		}
		addSpan(rep.Util[e.Worker], lo, rep.BucketNS, e.TS, e.End())
	}
	for i := range lanes {
		lanes[i].Util = float64(lanes[i].BusyNS) / float64(rep.SpanNS)
	}
	rep.Workers = lanes

	rep.Stall = analyzeStall(events)
	rep.Queue = analyzeQueue(events)
	rep.Critical = analyzeCritical(events)
	return rep
}

// analyzeQueue folds the async executor's ready-queue samples.
func analyzeQueue(events []Event) QueueReport {
	var rep QueueReport
	var sum int64
	for _, e := range events {
		if e.Kind != KindReady {
			continue
		}
		rep.Samples++
		sum += e.A
		if e.A > rep.PeakDepth {
			rep.PeakDepth = e.A
		}
	}
	if rep.Samples > 0 {
		rep.AvgDepth = float64(sum) / float64(rep.Samples)
	}
	return rep
}

// addSpan spreads [s, e) over the bucket array (clamped, proportional).
func addSpan(buckets []float64, lo, width, s, e int64) {
	if width <= 0 || e <= s {
		return
	}
	for b := (s - lo) / width; b < int64(len(buckets)); b++ {
		bLo, bHi := lo+b*width, lo+(b+1)*width
		if s >= bHi {
			continue
		}
		if e <= bLo {
			break
		}
		ov := min64(e, bHi) - max64(s, bLo)
		buckets[b] += float64(ov) / float64(width)
	}
}

func analyzeStall(events []Event) StallReport {
	var rep StallReport
	perFront := map[int32]*FrontStall{}
	for _, e := range events {
		switch e.Kind {
		case KindBarrier:
			rep.BarrierNS += e.Dur
			fs := perFront[e.Front]
			if fs == nil {
				fs = &FrontStall{Front: e.Front}
				perFront[e.Front] = fs
			}
			fs.StallNS += e.Dur
			fs.Waiters++
		case KindHandoff:
			rep.HandoffNS += e.Dur
		case KindFront:
			if fs := perFront[e.Front]; fs != nil {
				fs.WallNS = e.Dur
			} else {
				perFront[e.Front] = &FrontStall{Front: e.Front, WallNS: e.Dur}
			}
		}
	}
	for _, fs := range perFront {
		if fs.StallNS > 0 {
			rep.FrontsWithStall++
			rep.Top = append(rep.Top, *fs)
		}
	}
	sort.Slice(rep.Top, func(i, j int) bool {
		if rep.Top[i].StallNS != rep.Top[j].StallNS {
			return rep.Top[i].StallNS > rep.Top[j].StallNS
		}
		return rep.Top[i].Front < rep.Top[j].Front
	})
	if len(rep.Top) > topN {
		rep.Top = rep.Top[:topN]
	}
	return rep
}

func analyzeCritical(events []Event) CriticalReport {
	// Band traces carry KindRow spans; pool traces KindFront spans;
	// async traces KindTask spans (no front DAG to walk — the chain
	// below reports the busiest lane as a lower bound on the path).
	var rows, fronts, inline []Event
	longestChunk := map[int32]int64{}
	taskNS := map[int32]int64{}
	taskSteps := map[int32]int{}
	for _, e := range events {
		switch e.Kind {
		case KindRow:
			rows = append(rows, e)
		case KindFront:
			fronts = append(fronts, e)
		case KindInline:
			inline = append(inline, e)
		case KindChunk:
			if e.Dur > longestChunk[e.Front] {
				longestChunk[e.Front] = e.Dur
			}
		case KindTask:
			taskNS[e.Worker] += e.Dur
			taskSteps[e.Worker]++
		}
	}
	var rep CriticalReport
	for _, e := range inline {
		rep.InlineNS += e.Dur
	}
	switch {
	case len(rows) > 0:
		rep = bandCritical(rows, rep)
	case len(fronts) > 0:
		rep.Kind = "front-chain"
		sort.Slice(fronts, func(i, j int) bool { return fronts[i].Front < fronts[j].Front })
		for _, f := range fronts {
			comp := longestChunk[f.Front]
			if comp > f.Dur {
				comp = f.Dur
			}
			stall := f.Dur - comp
			rep.Steps++
			rep.ComputeNS += comp
			rep.StallNS += stall
			rep.Top = append(rep.Top, CriticalStep{Front: f.Front, ComputeNS: comp, StallNS: stall})
		}
		sort.Slice(rep.Top, func(i, j int) bool {
			if rep.Top[i].StallNS != rep.Top[j].StallNS {
				return rep.Top[i].StallNS > rep.Top[j].StallNS
			}
			return rep.Top[i].Front < rep.Top[j].Front
		})
		if len(rep.Top) > topN {
			rep.Top = rep.Top[:topN]
		}
	case len(taskNS) > 0:
		// Async dependency-counter traces: no materialized fronts. The
		// busiest lane's task time bounds the path from below.
		rep.Kind = "async"
		for w, ns := range taskNS {
			if ns > rep.ComputeNS {
				rep.ComputeNS = ns
				rep.Steps = taskSteps[w]
			}
		}
	case rep.InlineNS > 0:
		rep.Kind = "serial"
	default:
		rep.Kind = "none"
	}
	return rep
}

// bandCritical walks the (row, band) DAG backwards from the
// last-finishing row span: each step's predecessor is the dependency
// (previous row, same or neighbouring band) that finished last, the gap
// between that finish and the step's start is attributed to stall.
func bandCritical(rows []Event, rep CriticalReport) CriticalReport {
	rep.Kind = "band-path"
	type key struct {
		front  int32
		worker int32
	}
	byKey := make(map[key]Event, len(rows))
	last := rows[0]
	for _, e := range rows {
		byKey[key{e.Front, e.Worker}] = e
		if e.End() > last.End() {
			last = e
		}
	}
	cur := last
	for {
		rep.Steps++
		rep.ComputeNS += cur.Dur
		if cur.Front == 0 {
			break
		}
		var pred Event
		found := false
		for _, dw := range []int32{cur.Worker - 1, cur.Worker, cur.Worker + 1} {
			if p, ok := byKey[key{cur.Front - 1, dw}]; ok && (!found || p.End() > pred.End()) {
				pred, found = p, true
			}
		}
		if !found {
			break
		}
		if gap := cur.TS - pred.End(); gap > 0 {
			rep.StallNS += gap
			rep.Top = append(rep.Top, CriticalStep{Front: cur.Front, ComputeNS: cur.Dur, StallNS: gap})
		}
		cur = pred
	}
	sort.Slice(rep.Top, func(i, j int) bool { return rep.Top[i].StallNS > rep.Top[j].StallNS })
	if len(rep.Top) > topN {
		rep.Top = rep.Top[:topN]
	}
	return rep
}

// Span returns the trace span as a duration.
func (r *Report) Span() time.Duration { return time.Duration(r.SpanNS) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
