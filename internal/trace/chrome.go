package trace

import (
	"encoding/json"
	"io"

	"repro/internal/hetsim"
)

// chromeEvent is one complete event ("ph":"X") of the Chrome trace-event
// format, loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the timeline in the Chrome trace-event JSON
// format: one track (tid) per resource, op kinds as categories, cells and
// bytes as event args. Load the output in chrome://tracing or Perfetto to
// inspect the simulated schedule visually.
func WriteChromeTrace(w io.Writer, t hetsim.Timeline) error {
	events := make([]chromeEvent, 0, len(t.Records))
	for _, r := range t.Records {
		args := map[string]string{}
		if r.Cells > 0 {
			args["cells"] = itoa(r.Cells)
		}
		if r.Bytes > 0 {
			args["bytes"] = itoa(r.Bytes)
		}
		events = append(events, chromeEvent{
			Name: r.FullLabel(),
			Cat:  r.Kind.String(),
			Ph:   "X",
			TS:   float64(r.Start) / 1e3,
			Dur:  float64(r.End-r.Start) / 1e3,
			PID:  1,
			TID:  int(r.Resource),
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ns",
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
