package trace

import (
	"fmt"
	"io"
	"time"
)

// maxFleetSteps bounds the critical-path steps the text summary prints;
// longer paths keep their totals but elide the middle.
const maxFleetSteps = 12

// WriteFleetSummary renders an analyzed fleet report as plain text: the
// fleet header, per-node process lanes, the halo wait/transfer totals,
// and the fleet critical path naming the dominant node and phase. The
// line vocabulary ("node N ...", "halo: ...", "fleet critical path:
// ...") is load-bearing: the fleet smoke test greps for it.
func WriteFleetSummary(w io.Writer, rep *FleetReport) error {
	m := rep.Meta
	if _, err := fmt.Fprintf(w,
		"fleet trace: fleet=%s table=%dx%d bands=%d phases=%d blocks=%d span=%s\n",
		orDash(m.FleetID), m.Rows, m.Cols, rep.Bands, rep.Phases, rep.Blocks,
		formatDuration(time.Duration(rep.SpanNS))); err != nil {
		return err
	}
	if rep.Blocks == 0 {
		_, err := fmt.Fprintln(w, "(no coordinator round-trip spans; was this trace stitched by a fleet coordinator?)")
		return err
	}
	fmt.Fprintf(w, "coordinator: rtt=%s over %d blocks (mean %s/block) halo-wait=%s halo-xfer=%s\n",
		formatDuration(time.Duration(rep.RTTNS)), rep.Blocks,
		formatDuration(time.Duration(rep.RTTNS/int64(rep.Blocks))),
		formatDuration(time.Duration(rep.HaloWaitNS)),
		formatDuration(time.Duration(rep.HaloXferNS)))
	fmt.Fprintf(w, "halo: values=%d bytes=%d\n", rep.HaloCells, rep.HaloBytes)

	for _, n := range rep.Nodes {
		if n.PID == 0 {
			continue // the coordinator's lanes are the rtt/halo lines above
		}
		fmt.Fprintf(w, "node %d %s: busy=%s util=%.0f%% lanes=%d blocks=%d rtt=%s events=%d\n",
			n.PID-1, orDash(n.Name), formatDuration(time.Duration(n.BusyNS)),
			100*n.Util, n.Lanes, n.Blocks,
			formatDuration(time.Duration(n.RTTNS)), n.Events)
	}

	cr := rep.Critical
	fmt.Fprintf(w, "fleet critical path: steps=%d rtt=%s halo-wait=%s dominant=%s\n",
		len(cr.Steps),
		formatDuration(time.Duration(cr.RTTNS)),
		formatDuration(time.Duration(cr.WaitNS)),
		cr.DominantKind)
	if cr.DominantNode >= 0 {
		name := ""
		for _, n := range rep.Nodes {
			if n.PID == cr.DominantNode+1 {
				name = n.Name
			}
		}
		pathNS := cr.RTTNS + cr.WaitNS
		share := 0.0
		if pathNS > 0 {
			share = 100 * float64(cr.DominantNodeNS) / float64(pathNS)
		}
		fmt.Fprintf(w, "  dominant node=%d %s (%s, %.0f%% of path) dominant phase=%d (%s)\n",
			cr.DominantNode, orDash(name),
			formatDuration(time.Duration(cr.DominantNodeNS)), share,
			cr.DominantPhase, formatDuration(time.Duration(cr.DominantPhaseNS)))
	}
	steps := cr.Steps
	elided := 0
	if len(steps) > maxFleetSteps {
		elided = len(steps) - maxFleetSteps
		steps = steps[:maxFleetSteps]
	}
	for _, s := range steps {
		fmt.Fprintf(w, "  band %-4d phase %-4d node=%-3d rtt=%-10s wait=%s\n",
			s.Band, s.Phase, s.Node,
			formatDuration(time.Duration(s.RTTNS)),
			formatDuration(time.Duration(s.WaitNS)))
	}
	if elided > 0 {
		fmt.Fprintf(w, "  ... %d more steps\n", elided)
	}
	return nil
}
