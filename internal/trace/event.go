package trace

// Event-level wavefront tracing. The hetsim-facing renderers in this
// package (Gantt, CSV, HTML) display *simulated* schedules; the Recorder
// below captures what the *native* runtime actually did, event by event,
// for the same kind of analysis: per-worker utilization, barrier stalls,
// and the critical path through the front DAG.

// Kind classifies a trace event.
type Kind uint8

const (
	// KindSolve spans a whole solve, emitted on lane 0 at EndSolve.
	KindSolve Kind = iota
	// KindFront spans one wavefront from barrier release to the last
	// worker's arrival, emitted by the advancing worker. A carries the
	// front's cell count. Fronts executed inline (serial cutoff) have no
	// KindFront event — their work appears as KindInline spans instead.
	KindFront
	// KindChunk spans one dynamically claimed chunk; A and B carry the
	// [lo, hi) cell range within the front.
	KindChunk
	// KindInline spans a front executed inline by the advancing worker
	// (at or below one chunk) or by the serial ramp-in loop; A and B carry
	// the [lo, hi) range, which is the whole front.
	KindInline
	// KindBarrier spans one worker's wait at the epoch barrier, from
	// arrival to gate release. Front is the front the worker arrived from.
	KindBarrier
	// KindHandoff spans a band worker's wait for a neighbour's epoch
	// token in lookahead mode; A is 0 for the left neighbour, 1 for the
	// right.
	KindHandoff
	// KindRow spans one row of one worker's column band in lookahead
	// mode; A and B carry the [lo, hi) column range.
	KindRow
	// KindPhase spans a named execution phase; Label carries the name.
	// Simulated compute ops import as KindPhase with their device:phase
	// label.
	KindPhase
	// KindXferH2D and KindXferD2H span simulated host<->device transfers;
	// A carries cells, B bytes, Label the transfer label.
	KindXferH2D
	KindXferD2H
	// KindQueue spans the time a scheduler submission spent in the
	// admission queue, from Submit to the moment a worker activated it;
	// A carries the queue depth observed at admission.
	KindQueue
	// KindSteal marks a scheduler worker switching to this solve from a
	// different one (a cross-solve steal); emitted as an instant on the
	// stealing worker's lane. A carries the solve ID.
	KindSteal
	// KindTask spans one async worker's run of consecutive
	// dependency-scheduled cells (the async executor has no fronts, so a
	// "task" batch is its busy unit). A and B carry a [0, cells) count so
	// Cells accounting matches the chunk convention; Front is the row of
	// the last cell in the batch (display only).
	KindTask
	// KindReady is an instant sampling the async ready queue: A carries
	// the queue depth (published minus claimed), B the completed-cell
	// count at the sample.
	KindReady
)

var kindNames = [...]string{
	KindSolve:   "solve",
	KindFront:   "front",
	KindChunk:   "chunk",
	KindInline:  "inline",
	KindBarrier: "barrier",
	KindHandoff: "handoff",
	KindRow:     "row",
	KindPhase:   "phase",
	KindXferH2D: "h2d",
	KindXferD2H: "d2h",
	KindQueue:   "queue",
	KindSteal:   "steal",
	KindTask:    "task",
	KindReady:   "ready",
}

// String returns the stable lowercase name of the kind, used as the
// Chrome-trace category and round-tripped by ReadChrome.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts Kind.String; unknown names return ok=false.
func KindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one recorded runtime event. Events are fixed-size values so
// the hot-path ring write is a single slot store with no allocation.
//
// TS is nanoseconds since the recorder's epoch (wall clocks) or since the
// simulated time origin (imported timelines); Dur is the span length, 0
// for instants. The meaning of A and B depends on Kind (see the Kind
// constants). Label is non-empty only for phase and transfer events and
// always references a static string, so storing it does not allocate.
type Event struct {
	TS     int64  `json:"ts_ns"`
	Dur    int64  `json:"dur_ns"`
	A      int64  `json:"a"`
	B      int64  `json:"b"`
	Front  int32  `json:"front"`
	Worker int32  `json:"worker"`
	Kind   Kind   `json:"kind"`
	Label  string `json:"label,omitempty"`
}

// End returns the event's end timestamp.
func (e Event) End() int64 { return e.TS + e.Dur }
