// Package trace renders hetsim timelines for humans and tools: ASCII Gantt
// charts for quick inspection, CSV for plotting, and compact stat lines for
// experiment tables.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/hetsim"
)

// Gantt renders the timeline as an ASCII chart, one lane per resource,
// width columns wide. Each op paints its span with the first letter of its
// label ('c' for cpu ops, 'g' for gpu, 'h'/'d' for transfers); overlapping
// paint within a lane cannot happen (resources are in-order).
func Gantt(t hetsim.Timeline, width int) string {
	if len(t.Records) == 0 {
		return "(empty timeline)\n"
	}
	if width < 20 {
		width = 20
	}
	makespan := t.Makespan()
	if makespan <= 0 {
		return "(zero-length timeline)\n"
	}
	resources := t.Resources()
	var sb strings.Builder
	scale := float64(width) / float64(makespan)
	for _, res := range resources {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = '.'
		}
		for _, r := range t.Records {
			if r.Resource != res {
				continue
			}
			lo := int(float64(r.Start) * scale)
			hi := int(float64(r.End) * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			mark := byte('?')
			if len(r.Label) > 0 {
				mark = r.Label[0]
			}
			for i := lo; i < hi; i++ {
				lane[i] = mark
			}
		}
		fmt.Fprintf(&sb, "%-8s|%s|\n", t.NameOf(res), lane)
	}
	fmt.Fprintf(&sb, "%-8s 0%*s\n", "", width-1, formatDuration(makespan))
	return sb.String()
}

// WriteCSV writes the timeline as CSV rows:
// id,label,resource,kind,start_ns,end_ns,cells,bytes.
func WriteCSV(w io.Writer, t hetsim.Timeline) error {
	if _, err := fmt.Fprintln(w, "id,label,resource,kind,start_ns,end_ns,cells,bytes"); err != nil {
		return err
	}
	for _, r := range t.Records {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%d,%d,%d,%d\n",
			r.ID, r.FullLabel(), t.NameOf(r.Resource), r.Kind, int64(r.Start), int64(r.End), r.Cells, r.Bytes); err != nil {
			return err
		}
	}
	return nil
}

// StatsLine renders the summary of a timeline as a single compact line.
func StatsLine(t hetsim.Timeline) string {
	s := t.Summarize()
	return fmt.Sprintf("time=%s cpu=%.0f%% gpu=%.0f%% cpuCells=%d gpuCells=%d xfers=%d bytes=%d",
		formatDuration(s.Makespan), 100*s.CPUUtil, 100*s.GPUUtil,
		s.CPUCells, s.GPUCells, s.Transfers, s.BytesMoved)
}

// BusiestOps returns the n ops with the longest durations, for hotspot
// inspection.
func BusiestOps(t hetsim.Timeline, n int) []hetsim.OpRecord {
	recs := make([]hetsim.OpRecord, len(t.Records))
	copy(recs, t.Records)
	sort.Slice(recs, func(i, j int) bool {
		if d1, d2 := recs[i].Duration(), recs[j].Duration(); d1 != d2 {
			return d1 > d2
		}
		return recs[i].ID < recs[j].ID
	})
	if n > len(recs) {
		n = len(recs)
	}
	return recs[:n]
}

// formatDuration renders a duration with 3 significant decimals at a
// human-appropriate unit, stable across magnitudes (unlike
// Duration.String, which switches formats).
func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// FormatDuration exposes the stable rendering for experiment tables.
func FormatDuration(d time.Duration) string { return formatDuration(d) }

// PhaseBreakdown aggregates op durations by the phase encoded in their
// labels (the text between the first and second ':', e.g. "cpu:p2:t=9" ->
// "p2"; label without a second ':' uses everything after the first).
// Transfer ops group under their direction prefix ("h2d", "d2h").
func PhaseBreakdown(t hetsim.Timeline) map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, r := range t.Records {
		key := r.Label
		if i := strings.IndexByte(key, ':'); i >= 0 {
			rest := key[i+1:]
			if r.Kind == hetsim.OpTransfer {
				key = key[:i]
			} else if j := strings.IndexByte(rest, ':'); j >= 0 {
				key = rest[:j]
			} else {
				key = rest
			}
		}
		out[key] += r.Duration()
	}
	return out
}

// AttributeCriticalPath decomposes a critical path (hetsim.Sim.CriticalPath)
// into the overhead and work classes that compose the makespan:
//
//	kernel-launch  fixed launch latency of GPU ops on the path
//	gpu-compute    the remainder of those kernels
//	cpu-dispatch   fixed fork/join cost of CPU regions on the path
//	cpu-compute    the remainder of those regions
//	transfer       host<->device copies on the path
//	lead-in        time before the first path op started
//
// The buckets sum exactly to the timeline makespan.
func AttributeCriticalPath(path []hetsim.OpRecord, plat *hetsim.Platform) map[string]time.Duration {
	out := map[string]time.Duration{}
	if len(path) == 0 {
		return out
	}
	out["lead-in"] = path[0].Start
	for _, r := range path {
		d := r.Duration()
		switch {
		case r.Kind == hetsim.OpTransfer:
			out["transfer"] += d
		case r.Resource == hetsim.ResCPU:
			fixed := min(plat.CPU.DispatchOverhead, d)
			out["cpu-dispatch"] += fixed
			out["cpu-compute"] += d - fixed
		default:
			fixed := min(plat.GPU.LaunchLatency, d)
			out["kernel-launch"] += fixed
			out["gpu-compute"] += d - fixed
		}
	}
	return out
}
