package trace

import (
	"fmt"
	"io"
	"time"
)

// WriteSummary renders an analyzed report as a plain-text summary: the
// solve header, per-worker utilization with an ASCII timeline, the
// barrier-stall breakdown, and the critical-path decomposition. This is
// the second exporter next to WriteChrome, for terminals and logs.
func WriteSummary(w io.Writer, rep *Report) error {
	m := rep.Meta
	if _, err := fmt.Fprintf(w,
		"trace: solver=%s problem=%s table=%dx%d pattern=%s executed=%s fronts=%d workers=%d clock=%s\n",
		orDash(m.Solver), orDash(m.Problem), m.Rows, m.Cols, orDash(m.Pattern), orDash(m.Executed),
		m.Fronts, m.Workers, orDash(m.Clock)); err != nil {
		return err
	}
	fmt.Fprintf(w, "span=%s events=%d", formatDuration(rep.Span()), rep.Events)
	if m.Dropped > 0 {
		fmt.Fprintf(w, " dropped=%d (ring overflow: oldest events lost)", m.Dropped)
	}
	fmt.Fprintln(w)
	if rep.Events == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}

	fmt.Fprintf(w, "utilization (%d buckets of %s):\n", rep.Buckets, formatDuration(time.Duration(rep.BucketNS)))
	for _, lr := range rep.Workers {
		if lr.BusyNS == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-10s busy=%-10s util=%4.0f%% spans=%-6d cells=%-10d |%s|\n",
			lr.Name, formatDuration(time.Duration(lr.BusyNS)), 100*lr.Util, lr.Chunks, lr.Cells,
			utilBar(rep.Util[lr.Worker]))
	}

	st := rep.Stall
	if st.BarrierNS > 0 || st.HandoffNS > 0 {
		fmt.Fprintf(w, "stalls: barrier=%s over %d fronts, handoff=%s\n",
			formatDuration(time.Duration(st.BarrierNS)), st.FrontsWithStall,
			formatDuration(time.Duration(st.HandoffNS)))
		for _, fs := range st.Top {
			fmt.Fprintf(w, "  front %-6d stall=%-10s waiters=%-3d wall=%s\n",
				fs.Front, formatDuration(time.Duration(fs.StallNS)), fs.Waiters,
				formatDuration(time.Duration(fs.WallNS)))
		}
	}

	if q := rep.Queue; q.Samples > 0 {
		fmt.Fprintf(w, "ready queue: samples=%d peak=%d avg=%.1f\n",
			q.Samples, q.PeakDepth, q.AvgDepth)
	}

	cr := rep.Critical
	fmt.Fprintf(w, "critical path (%s): steps=%d compute=%s stall=%s inline=%s\n",
		cr.Kind, cr.Steps,
		formatDuration(time.Duration(cr.ComputeNS)),
		formatDuration(time.Duration(cr.StallNS)),
		formatDuration(time.Duration(cr.InlineNS)))
	for _, s := range cr.Top {
		fmt.Fprintf(w, "  front %-6d compute=%-10s stall=%s\n",
			s.Front, formatDuration(time.Duration(s.ComputeNS)), formatDuration(time.Duration(s.StallNS)))
	}
	return nil
}

// utilBar renders one lane's utilization timeline as an ASCII bar, one
// character per bucket on the ramp " .:-=+*#%@" (empty to full).
func utilBar(buckets []float64) string {
	const ramp = " .:-=+*#%@"
	out := make([]byte, len(buckets))
	for i, f := range buckets {
		idx := int(f * float64(len(ramp)))
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		if idx < 0 {
			idx = 0
		}
		out[i] = ramp[idx]
	}
	return string(out)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
