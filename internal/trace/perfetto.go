package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Chrome trace-event export. The emitted document is the JSON Object
// Format of the Chrome trace-event spec — an object with a "traceEvents"
// array — which both chrome://tracing and Perfetto (ui.perfetto.dev)
// load directly. Spans are complete events (ph "X"); every span carries
// its exact nanosecond timestamps in args so ReadChrome can reconstruct
// the original []Event without the microsecond rounding of the ts/dur
// display fields.

// spanEvent is one trace-event record of the recorder export (distinct
// from chrome.go's chromeEvent, which renders hetsim timelines).
type spanEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	TS   float64         `json:"ts"`
	Dur  float64         `json:"dur,omitempty"`
	PID  int             `json:"pid"`
	TID  int             `json:"tid"`
	S    string          `json:"s,omitempty"`
	Args json.RawMessage `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []spanEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       *Meta         `json:"otherData,omitempty"`
}

// eventArgs carries the lossless event payload inside each span's args.
type eventArgs struct {
	Kind  string `json:"kind"`
	Front int32  `json:"front"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
	TSNS  int64  `json:"ts_ns"`
	DurNS int64  `json:"dur_ns"`
	Label string `json:"label,omitempty"`
}

// threadNameArgs is the args payload of a thread_name metadata event.
type threadNameArgs struct {
	Name string `json:"name"`
}

// WriteChrome writes the recorder's retained events as Chrome
// trace-event JSON: one Perfetto track per lane, named from Meta.Lanes
// (or "worker N"), plus the solve metadata under otherData.
func WriteChrome(w io.Writer, r *Recorder) error {
	meta := r.Meta()
	meta.Dropped = r.Dropped()
	return writeChromeEvents(w, meta, r.Events())
}

// WriteChromeEvents is WriteChrome over an explicit meta + event list
// (used by tests and by tools that transform events before export).
func WriteChromeEvents(w io.Writer, meta Meta, events []Event) error {
	return writeChromeEvents(w, meta, events)
}

func writeChromeEvents(w io.Writer, meta Meta, events []Event) error {
	doc := chromeTrace{DisplayTimeUnit: "ms", OtherData: &meta}
	lanes := map[int32]bool{}
	for _, e := range events {
		lanes[e.Worker] = true
	}
	for lane := range lanes {
		name := laneName(meta, int(lane))
		args, err := json.Marshal(threadNameArgs{Name: name})
		if err != nil {
			return err
		}
		doc.TraceEvents = append(doc.TraceEvents, spanEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: int(lane), Args: args,
		})
	}
	// Metadata first, then events in timestamp order for streaming
	// consumers; map iteration order of the lane set is irrelevant to
	// Perfetto but sorted events keep the file diffable.
	sortChromeMeta(doc.TraceEvents)
	for _, e := range events {
		args, err := json.Marshal(eventArgs{
			Kind: e.Kind.String(), Front: e.Front, A: e.A, B: e.B,
			TSNS: e.TS, DurNS: e.Dur, Label: e.Label,
		})
		if err != nil {
			return err
		}
		ce := spanEvent{
			Name: eventName(e),
			Cat:  e.Kind.String(),
			Ph:   "X",
			TS:   float64(e.TS) / 1e3,
			Dur:  float64(e.Dur) / 1e3,
			PID:  0,
			TID:  int(e.Worker),
			Args: args,
		}
		if e.Dur == 0 {
			ce.Ph, ce.S = "i", "t"
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func sortChromeMeta(evs []spanEvent) {
	// Thread-name metadata sorts by tid for stable output.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j-1].TID > evs[j].TID; j-- {
			evs[j-1], evs[j] = evs[j], evs[j-1]
		}
	}
}

// laneName resolves the display name of a lane.
func laneName(meta Meta, lane int) string {
	if lane < len(meta.Lanes) && meta.Lanes[lane] != "" {
		return meta.Lanes[lane]
	}
	return "worker " + strconv.Itoa(lane)
}

// eventName is the Perfetto slice title.
func eventName(e Event) string {
	if e.Label != "" {
		return e.Label
	}
	return e.Kind.String()
}

// ReadChrome parses a document written by WriteChrome back into its meta
// and events. Events are reconstructed from the lossless args payloads;
// records without a recognizable kind (e.g. foreign trace events) are
// skipped rather than rejected, so analyzers tolerate hand-edited files.
func ReadChrome(r io.Reader) (Meta, []Event, error) {
	var doc chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return Meta{}, nil, fmt.Errorf("trace: parsing chrome trace: %w", err)
	}
	var meta Meta
	if doc.OtherData != nil {
		meta = *doc.OtherData
	}
	var events []Event
	for _, ce := range doc.TraceEvents {
		if ce.Ph == "M" || len(ce.Args) == 0 {
			continue
		}
		var args eventArgs
		if err := json.Unmarshal(ce.Args, &args); err != nil {
			continue
		}
		kind, ok := KindFromString(args.Kind)
		if !ok {
			continue
		}
		events = append(events, Event{
			TS: args.TSNS, Dur: args.DurNS, A: args.A, B: args.B,
			Front: args.Front, Worker: int32(ce.TID), Kind: kind, Label: args.Label,
		})
	}
	sortEvents(events)
	return meta, events, nil
}
