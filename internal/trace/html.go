package trace

import (
	"fmt"
	"html"
	"io"

	"repro/internal/hetsim"
)

// WriteHTMLGantt writes a self-contained HTML page with an SVG Gantt chart
// of the timeline: one lane per resource, compute ops in blue shades,
// transfers in orange, with hover tooltips carrying label, span, cells and
// bytes. No external assets; open the file in any browser.
func WriteHTMLGantt(w io.Writer, t hetsim.Timeline, title string) error {
	makespan := t.Makespan()
	resources := t.Resources()
	const (
		width      = 1000
		laneHeight = 28
		leftMargin = 90
		topMargin  = 30
	)
	height := topMargin + laneHeight*len(resources) + 40

	lane := map[hetsim.Resource]int{}
	for i, r := range resources {
		lane[r] = i
	}
	scale := 0.0
	if makespan > 0 {
		scale = float64(width-leftMargin-10) / float64(makespan)
	}

	if _, err := fmt.Fprintf(w, `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%s</title>
<style>body{font:13px sans-serif;margin:16px}rect:hover{opacity:.7}</style>
</head><body>
<h1>%s</h1>
<p>makespan %s, %d operations</p>
<svg width="%d" height="%d" xmlns="http://www.w3.org/2000/svg">
`, html.EscapeString(title), html.EscapeString(title),
		formatDuration(makespan), len(t.Records), width, height); err != nil {
		return err
	}

	for i, r := range resources {
		y := topMargin + i*laneHeight
		fmt.Fprintf(w, `<text x="4" y="%d">%s</text>`+"\n", y+laneHeight-10, html.EscapeString(t.NameOf(r)))
		fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n",
			leftMargin, y+laneHeight-4, width-10, y+laneHeight-4)
	}
	for _, rec := range t.Records {
		x := leftMargin + int(float64(rec.Start)*scale)
		wpx := int(float64(rec.Duration()) * scale)
		if wpx < 1 {
			wpx = 1
		}
		y := topMargin + lane[rec.Resource]*laneHeight
		color := "#4878d0"
		if rec.Kind == hetsim.OpTransfer {
			color = "#ee854a"
		}
		fmt.Fprintf(w,
			`<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%s [%s .. %s] cells=%d bytes=%d</title></rect>`+"\n",
			x, y, wpx, laneHeight-8, color,
			html.EscapeString(rec.FullLabel()), formatDuration(rec.Start), formatDuration(rec.End),
			rec.Cells, rec.Bytes)
	}
	_, err := fmt.Fprint(w, "</svg></body></html>\n")
	return err
}
