package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze(Meta{Solver: "pool"}, nil, 0)
	if rep.Events != 0 || rep.Critical.Kind != "none" {
		t.Fatalf("empty analysis = %+v", rep)
	}
	var buf bytes.Buffer
	if err := WriteSummary(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no events)") {
		t.Errorf("summary of an empty trace: %q", buf.String())
	}
}

func TestAnalyzeUtilization(t *testing.T) {
	// Worker 0 busy for the whole [0, 100] span, worker 1 for half of it.
	events := []Event{
		{TS: 0, Dur: 100, Kind: KindChunk, Worker: 0, Front: 0, A: 0, B: 10},
		{TS: 0, Dur: 50, Kind: KindChunk, Worker: 1, Front: 0, A: 10, B: 30},
	}
	rep := Analyze(Meta{Workers: 2}, events, 10)
	if len(rep.Workers) != 2 {
		t.Fatalf("lanes = %d, want 2", len(rep.Workers))
	}
	w0, w1 := rep.Workers[0], rep.Workers[1]
	if w0.Util < 0.99 || w0.Cells != 10 || w0.Chunks != 1 {
		t.Errorf("worker 0 = %+v, want full utilization, 10 cells", w0)
	}
	if w1.Util < 0.49 || w1.Util > 0.51 || w1.Cells != 20 {
		t.Errorf("worker 1 = %+v, want ~50%% utilization, 20 cells", w1)
	}
	// Bucketed timeline: worker 1's second half must be idle.
	if rep.Util[1][2] < 0.99 || rep.Util[1][7] > 0.01 {
		t.Errorf("worker 1 timeline = %v, want busy first half, idle second", rep.Util[1])
	}
}

func TestAnalyzeBarrierStall(t *testing.T) {
	events := []Event{
		{TS: 0, Dur: 80, Kind: KindChunk, Worker: 0, Front: 0},
		{TS: 0, Dur: 20, Kind: KindChunk, Worker: 1, Front: 0},
		{TS: 20, Dur: 60, Kind: KindBarrier, Worker: 1, Front: 0},
		{TS: 0, Dur: 85, Kind: KindFront, Worker: 0, Front: 0, A: 100},
		{TS: 85, Dur: 10, Kind: KindChunk, Worker: 0, Front: 1},
		{TS: 85, Dur: 10, Kind: KindChunk, Worker: 1, Front: 1},
	}
	rep := Analyze(Meta{Workers: 2}, events, 0)
	st := rep.Stall
	if st.BarrierNS != 60 || st.FrontsWithStall != 1 {
		t.Fatalf("stall = %+v, want 60ns over 1 front", st)
	}
	if len(st.Top) != 1 || st.Top[0].Front != 0 || st.Top[0].Waiters != 1 || st.Top[0].WallNS != 85 {
		t.Fatalf("top stalls = %+v", st.Top)
	}
}

func TestAnalyzeFrontChainCritical(t *testing.T) {
	// Two fronts; front 0's longest chunk is 70 of a 100 wall (30 overhead),
	// front 1's is 40 of 50.
	events := []Event{
		{TS: 0, Dur: 70, Kind: KindChunk, Worker: 0, Front: 0},
		{TS: 0, Dur: 40, Kind: KindChunk, Worker: 1, Front: 0},
		{TS: 0, Dur: 100, Kind: KindFront, Worker: 0, Front: 0},
		{TS: 100, Dur: 40, Kind: KindChunk, Worker: 1, Front: 1},
		{TS: 100, Dur: 50, Kind: KindFront, Worker: 0, Front: 1},
	}
	rep := Analyze(Meta{}, events, 0)
	cr := rep.Critical
	if cr.Kind != "front-chain" || cr.Steps != 2 {
		t.Fatalf("critical = %+v, want 2-step front-chain", cr)
	}
	if cr.ComputeNS != 70+40 || cr.StallNS != 30+10 {
		t.Errorf("critical compute=%d stall=%d, want 110/40", cr.ComputeNS, cr.StallNS)
	}
	if len(cr.Top) == 0 || cr.Top[0].Front != 0 || cr.Top[0].StallNS != 30 {
		t.Errorf("top steps = %+v, want front 0 first (30ns overhead)", cr.Top)
	}
}

func TestAnalyzeBandPathCritical(t *testing.T) {
	// Two bands x three rows. Band 1's row 1 starts 20 after band 0's row 0
	// ends (a handoff stall); everything else is back-to-back.
	events := []Event{
		{TS: 0, Dur: 10, Kind: KindRow, Worker: 0, Front: 0},
		{TS: 10, Dur: 10, Kind: KindRow, Worker: 0, Front: 1},
		{TS: 20, Dur: 10, Kind: KindRow, Worker: 0, Front: 2},
		{TS: 5, Dur: 10, Kind: KindRow, Worker: 1, Front: 0},
		{TS: 30, Dur: 10, Kind: KindRow, Worker: 1, Front: 1},
		{TS: 40, Dur: 20, Kind: KindRow, Worker: 1, Front: 2},
	}
	rep := Analyze(Meta{}, events, 0)
	cr := rep.Critical
	if cr.Kind != "band-path" {
		t.Fatalf("critical kind = %q, want band-path", cr.Kind)
	}
	// Path walks back from worker 1's row 2 (last finisher at 60).
	if cr.Steps != 3 {
		t.Errorf("steps = %d, want 3", cr.Steps)
	}
	if cr.StallNS == 0 {
		t.Errorf("band path found no stall; report = %+v", cr)
	}
}

func TestAnalyzeSerialOnly(t *testing.T) {
	events := []Event{
		{TS: 0, Dur: 10, Kind: KindInline, Worker: 0, Front: 0, B: 4},
		{TS: 10, Dur: 10, Kind: KindInline, Worker: 0, Front: 1, B: 4},
	}
	rep := Analyze(Meta{}, events, 0)
	if rep.Critical.Kind != "serial" || rep.Critical.InlineNS != 20 {
		t.Fatalf("critical = %+v, want serial with 20ns inline", rep.Critical)
	}
}

func TestSummaryRendersSections(t *testing.T) {
	events := []Event{
		{TS: 0, Dur: 70, Kind: KindChunk, Worker: 0, Front: 0, B: 64},
		{TS: 70, Dur: 30, Kind: KindBarrier, Worker: 0, Front: 0},
		{TS: 0, Dur: 100, Kind: KindFront, Worker: 1, Front: 0},
	}
	rep := Analyze(Meta{Solver: "pool", Problem: "t", Rows: 8, Cols: 8, Workers: 2}, events, 12)
	var buf bytes.Buffer
	if err := WriteSummary(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"solver=pool", "utilization", "stalls:", "critical path"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
