package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, sampleTimeline()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	first := doc.TraceEvents[0]
	if first.Name != "cpu:p1" || first.Ph != "X" || first.Cat != "compute" {
		t.Errorf("first event = %+v", first)
	}
	if first.Dur != 10 { // 10us
		t.Errorf("first event dur = %v us, want 10", first.Dur)
	}
	if first.Args["cells"] != "50" {
		t.Errorf("first event cells arg = %q", first.Args["cells"])
	}
	// Distinct resources map to distinct tracks.
	tids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		tids[e.TID] = true
	}
	if len(tids) != 3 {
		t.Errorf("events on %d tracks, want 3", len(tids))
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 5: "5", 123: "123", -42: "-42", 100000: "100000"}
	for n, want := range cases {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestWriteHTMLGantt(t *testing.T) {
	var sb strings.Builder
	if err := WriteHTMLGantt(&sb, sampleTimeline(), "demo <run>"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<!DOCTYPE html>", "demo &lt;run&gt;", "<svg", "cpu:p1", "#ee854a", "</html>"} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML output missing %q", want)
		}
	}
	// One rect per op.
	if got := strings.Count(out, "<rect"); got != 3 {
		t.Errorf("rect count = %d, want 3", got)
	}
}
