package trace

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/hetsim"
)

func TestRecorderLaneCapRoundsUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultLaneCap}, {-5, DefaultLaneCap}, {1, 1}, {3, 4}, {8, 8}, {1000, 1024},
	} {
		r := NewRecorder(tc.in)
		if got := len(r.Lane(0).buf); got != tc.want {
			t.Errorf("NewRecorder(%d): lane cap %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRecorderRingOverflow(t *testing.T) {
	const cap = 8
	r := NewRecorder(cap)
	ln := r.Lane(0)
	const emitted = 20
	for i := 0; i < emitted; i++ {
		ln.Span(KindChunk, i, 0, 1, int64(i))
	}
	if got, want := r.Dropped(), int64(emitted-cap); got != want {
		t.Fatalf("Dropped() = %d, want %d", got, want)
	}
	evs := r.Events()
	if len(evs) != cap {
		t.Fatalf("retained %d events, want %d", len(evs), cap)
	}
	// Overwrite-oldest: the retained window is the newest `cap` events.
	for i, e := range evs {
		if want := int32(emitted - cap + i); e.Front != want {
			t.Errorf("event %d: front %d, want %d (oldest events should be dropped)", i, e.Front, want)
		}
	}
}

func TestRecorderNoOverflowNoDrop(t *testing.T) {
	r := NewRecorder(16)
	ln := r.Lane(0)
	for i := 0; i < 16; i++ {
		ln.Instant(KindChunk, i, 0, 0)
	}
	if d := r.Dropped(); d != 0 {
		t.Fatalf("Dropped() = %d on a full-but-not-overflowed ring", d)
	}
	if got := len(r.Events()); got != 16 {
		t.Fatalf("retained %d events, want 16", got)
	}
}

func TestRecorderEventsSortedAcrossLanes(t *testing.T) {
	r := NewRecorder(16)
	r.Lane(1).Span(KindChunk, 0, 0, 1, 30)
	r.Lane(0).Span(KindChunk, 0, 0, 1, 10)
	r.Lane(2).Span(KindChunk, 0, 0, 1, 20)
	r.Lane(0).Span(KindChunk, 1, 0, 1, 40)
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i-1].TS > evs[i].TS {
			t.Fatalf("events out of order at %d: %d > %d", i, evs[i-1].TS, evs[i].TS)
		}
	}
	if evs[0].Worker != 0 || evs[0].TS != 10 {
		t.Fatalf("first event = %+v, want worker 0 at ts 10", evs[0])
	}
}

func TestLaneWorkerStamped(t *testing.T) {
	r := NewRecorder(8)
	r.Lane(3).Instant(KindChunk, 0, 0, 0)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Worker != 3 {
		t.Fatalf("events = %+v, want one event on worker 3", evs)
	}
}

func TestBeginEndSolve(t *testing.T) {
	r := NewRecorder(8)
	r.BeginSolve(Meta{Solver: "pool", Workers: 2})
	r.Lane(0).SpanFrom(KindChunk, 0, 0, 4, time.Now())
	r.EndSolve()
	meta := r.Meta()
	if meta.Clock != "wall" {
		t.Errorf("Clock defaulted to %q, want wall", meta.Clock)
	}
	var solve *Event
	for _, e := range r.Events() {
		if e.Kind == KindSolve {
			e := e
			solve = &e
		}
	}
	if solve == nil {
		t.Fatal("no KindSolve event after EndSolve")
	}
	if solve.Label != "pool" || solve.Worker != 0 {
		t.Errorf("solve event = %+v, want label pool on lane 0", *solve)
	}
}

func TestImportTimeline(t *testing.T) {
	sim := hetsim.NewSim(hetsim.HeteroHigh())
	cpu := sim.Submit(hetsim.Op{Resource: hetsim.ResCPU, Kind: hetsim.OpCompute,
		Duration: time.Microsecond, Label: "cpu:p1", Cells: 100})
	sim.Submit(hetsim.Op{Resource: hetsim.ResCopyH2D, Kind: hetsim.OpTransfer,
		Duration: time.Microsecond, Label: "h2d:input", Bytes: 64}, cpu)
	sim.Submit(hetsim.Op{Resource: hetsim.ResCopyD2H, Kind: hetsim.OpTransfer,
		Duration: time.Microsecond, Label: "d2h:out", Bytes: 32}, cpu)
	sim.Submit(hetsim.Op{Resource: hetsim.ResGPU, Kind: hetsim.OpCompute,
		Duration: time.Microsecond, Label: "gpu:p2", Cells: 200}, cpu)

	r := NewRecorder(64)
	r.BeginSolve(Meta{Solver: "hetero"})
	r.ImportTimeline(sim.Timeline())

	meta := r.Meta()
	if meta.Clock != "sim" {
		t.Errorf("Clock = %q, want sim", meta.Clock)
	}
	if len(meta.Lanes) < 4 || meta.Lanes[0] != "cpu" {
		t.Errorf("Lanes = %v, want resource names starting with cpu", meta.Lanes)
	}

	counts := map[Kind]int{}
	for _, e := range r.Events() {
		counts[e.Kind]++
	}
	if counts[KindPhase] != 2 {
		t.Errorf("imported %d KindPhase events, want 2", counts[KindPhase])
	}
	if counts[KindXferH2D] != 1 || counts[KindXferD2H] != 1 {
		t.Errorf("transfer kinds = h2d:%d d2h:%d, want 1 each",
			counts[KindXferH2D], counts[KindXferD2H])
	}
}

func TestChromeRoundTrip(t *testing.T) {
	r := NewRecorder(32)
	r.BeginSolve(Meta{
		Solver: "pool", Problem: "lev", Pattern: "Anti-diagonal",
		Executed: "Anti-diagonal", Rows: 8, Cols: 8, Fronts: 15, Workers: 2,
	})
	r.Lane(0).Span(KindChunk, 3, 0, 512, 1000)
	r.Lane(1).Span(KindBarrier, 3, 0, 0, 1500)
	r.Lane(0).Span(KindFront, 3, 512, 0, 900)
	r.Lane(1).Instant(KindInline, 4, 0, 1)
	r.EndSolve()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatal(err)
	}
	meta, events, err := ReadChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	want := r.Meta()
	want.Dropped = 0
	if meta.Solver != want.Solver || meta.Problem != want.Problem ||
		meta.Rows != want.Rows || meta.Cols != want.Cols ||
		meta.Fronts != want.Fronts || meta.Workers != want.Workers ||
		meta.Clock != want.Clock {
		t.Errorf("meta round-trip mismatch: got %+v want %+v", meta, want)
	}

	orig := r.Events()
	if len(events) != len(orig) {
		t.Fatalf("round-trip kept %d events, want %d", len(events), len(orig))
	}
	for i := range orig {
		if events[i] != orig[i] {
			t.Errorf("event %d mismatch:\n got %+v\nwant %+v", i, events[i], orig[i])
		}
	}
}

func TestReadChromeSkipsForeignEvents(t *testing.T) {
	doc := `{"traceEvents":[
		{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"worker 0"}},
		{"name":"foreign","ph":"X","ts":1,"dur":2,"pid":9,"tid":9},
		{"name":"alien","ph":"X","ts":1,"dur":2,"pid":9,"tid":9,"args":{"kind":"martian"}},
		{"name":"chunk","cat":"chunk","ph":"X","ts":1,"dur":2,"pid":0,"tid":1,
		 "args":{"kind":"chunk","front":7,"a":0,"b":64,"ts_ns":1000,"dur_ns":2000}}
	],"displayTimeUnit":"ms"}`
	_, events, err := ReadChrome(bytes.NewReader([]byte(doc)))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("parsed %d events, want 1 (foreign records skipped)", len(events))
	}
	e := events[0]
	if e.Kind != KindChunk || e.Front != 7 || e.TS != 1000 || e.Dur != 2000 || e.Worker != 1 {
		t.Errorf("parsed event = %+v", e)
	}
}

func TestReadChromeRejectsGarbage(t *testing.T) {
	if _, _, err := ReadChrome(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("want error on non-JSON input")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindSolve; k <= KindXferD2H; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("nope"); ok {
		t.Error("KindFromString accepted an unknown name")
	}
}
