package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Fleet trace stitching: one fleet solve produces a coordinator trace
// (one lane per band, spans for halo waits and per-block round trips)
// plus one trace file per block on each executing node. This file merges
// them into a single multi-process Chrome/Perfetto timeline — PID 0 is
// the coordinator, PID n+1 is node n — with every timestamp rebased onto
// the coordinator's wall clock via each recorder's EpochUnixNS, and
// analyzes the result into a fleet critical path. Clock-alignment caveat:
// the rebase trusts each host's wall clock, so cross-node offsets are
// only as good as the fleet's clock sync (NTP-level skew shifts whole
// node lanes, it does not reorder events within one).

// BlockTrace is one block's recorded trace, read back from the node's
// -tracedir file: the solve that executed block (Band, Phase) of a fleet
// solve.
type BlockTrace struct {
	// SolveID is the node-local scheduler solve ID of the block solve.
	SolveID int64 `json:"solve_id"`
	// Band and Phase are the block coordinates within the fleet solve.
	Band  int `json:"band"`
	Phase int `json:"phase"`
	// Meta is the block trace's own meta (carries EpochUnixNS for
	// wall-clock alignment and the fleet tags).
	Meta Meta `json:"meta"`
	// Events are the block solve's recorded events.
	Events []Event `json:"events"`
}

// NodeTrace is the body of GET /v1/trace/{fleetID}: every block trace
// one node recorded for that fleet solve.
type NodeTrace struct {
	FleetID string `json:"fleet_id"`
	// Node names the answering node (its serving address), best-effort.
	Node string `json:"node,omitempty"`
	// Blocks lists the node's block traces in completion order.
	Blocks []BlockTrace `json:"blocks"`
}

// Coordinator-lane span labels. The coordinator records its fleet solve
// on one lane per band: a "halo-wait" KindHandoff span while the band
// waits for its north neighbour's phase, an "rtt" KindPhase span for the
// whole SolveBand round trip (A = node index, B = block cells), and a
// "halo" KindXferH2D span for the halo payload the block shipped
// (A = halo cells, B = halo bytes; its duration is the round trip minus
// the node-reported solve time — the wire + coordination overhead).
const (
	LabelHaloWait = "halo-wait"
	LabelRTT      = "rtt"
	LabelHaloXfer = "halo"
)

// processNameArgs is the args payload of a process_name metadata event.
type processNameArgs struct {
	Name string `json:"name"`
}

// FleetProc is one process lane group of a stitched fleet trace.
type FleetProc struct {
	// PID is the Chrome process ID: 0 for the coordinator, n+1 for
	// node n (fleet node-index order).
	PID int `json:"pid"`
	// Name is the process display name ("coordinator" or the node URL).
	Name string `json:"name"`
	// Events are the process's events, timestamps already rebased onto
	// the stitched document's common clock.
	Events []Event `json:"events"`
}

// FleetDoc is a parsed stitched fleet trace.
type FleetDoc struct {
	Meta  Meta        `json:"meta"`
	Procs []FleetProc `json:"procs"`
}

// WriteFleetChrome writes one stitched multi-process Chrome trace: the
// coordinator's events under PID 0 (one thread per band) and each node's
// block events under PID n+1 (one thread per scheduler worker), all
// timestamps shifted onto the coordinator's clock using the recorders'
// EpochUnixNS. nodes must be in fleet node-index order so PIDs match
// node indices; a node that returned no trace still claims its PID.
func WriteFleetChrome(w io.Writer, meta Meta, coordEvents []Event, nodes []NodeTrace) error {
	doc := chromeTrace{DisplayTimeUnit: "ms", OtherData: &meta}
	emitProcess := func(pid int, name string, lanes map[int]string) error {
		args, err := json.Marshal(processNameArgs{Name: name})
		if err != nil {
			return err
		}
		doc.TraceEvents = append(doc.TraceEvents, spanEvent{
			Name: "process_name", Ph: "M", PID: pid, Args: args,
		})
		tids := make([]int, 0, len(lanes))
		for tid := range lanes {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			args, err := json.Marshal(threadNameArgs{Name: lanes[tid]})
			if err != nil {
				return err
			}
			doc.TraceEvents = append(doc.TraceEvents, spanEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid, Args: args,
			})
		}
		return nil
	}
	emitEvents := func(pid int, shiftNS int64, events []Event) error {
		for _, e := range events {
			ts := e.TS + shiftNS
			args, err := json.Marshal(eventArgs{
				Kind: e.Kind.String(), Front: e.Front, A: e.A, B: e.B,
				TSNS: ts, DurNS: e.Dur, Label: e.Label,
			})
			if err != nil {
				return err
			}
			ce := spanEvent{
				Name: eventName(e),
				Cat:  e.Kind.String(),
				Ph:   "X",
				TS:   float64(ts) / 1e3,
				Dur:  float64(e.Dur) / 1e3,
				PID:  pid,
				TID:  int(e.Worker),
				Args: args,
			}
			if e.Dur == 0 {
				ce.Ph, ce.S = "i", "t"
			}
			doc.TraceEvents = append(doc.TraceEvents, ce)
		}
		return nil
	}

	coordLanes := map[int]string{}
	for _, e := range coordEvents {
		coordLanes[int(e.Worker)] = laneName(meta, int(e.Worker))
	}
	if err := emitProcess(0, "coordinator", coordLanes); err != nil {
		return err
	}
	if err := emitEvents(0, 0, coordEvents); err != nil {
		return err
	}
	base := meta.EpochUnixNS
	for n, nt := range nodes {
		pid := n + 1
		name := nt.Node
		if name == "" {
			name = fmt.Sprintf("node %d", n)
		}
		lanes := map[int]string{}
		for _, b := range nt.Blocks {
			for _, e := range b.Events {
				if _, ok := lanes[int(e.Worker)]; !ok {
					lanes[int(e.Worker)] = laneName(b.Meta, int(e.Worker))
				}
			}
		}
		if err := emitProcess(pid, name, lanes); err != nil {
			return err
		}
		for _, b := range nt.Blocks {
			// Rebase the block's timestamps onto the coordinator clock.
			// A block with no epoch (foreign or hand-built trace) keeps
			// its own zero, which at least preserves internal ordering.
			var shift int64
			if b.Meta.EpochUnixNS != 0 && base != 0 {
				shift = b.Meta.EpochUnixNS - base
			}
			if err := emitEvents(pid, shift, b.Events); err != nil {
				return err
			}
		}
	}
	return json.NewEncoder(w).Encode(doc)
}

// ReadFleetChrome parses a stitched fleet document back into per-process
// event groups, retaining the PID lane structure WriteFleetChrome
// emitted (ReadChrome flattens PIDs away, which is right for single-node
// traces and wrong here).
func ReadFleetChrome(r io.Reader) (*FleetDoc, error) {
	var doc chromeTrace
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: parsing fleet trace: %w", err)
	}
	out := &FleetDoc{}
	if doc.OtherData != nil {
		out.Meta = *doc.OtherData
	}
	byPID := map[int]*FleetProc{}
	proc := func(pid int) *FleetProc {
		p := byPID[pid]
		if p == nil {
			p = &FleetProc{PID: pid}
			byPID[pid] = p
		}
		return p
	}
	for _, ce := range doc.TraceEvents {
		if ce.Ph == "M" {
			if ce.Name == "process_name" {
				var args processNameArgs
				if json.Unmarshal(ce.Args, &args) == nil {
					proc(ce.PID).Name = args.Name
				}
			}
			continue
		}
		if len(ce.Args) == 0 {
			continue
		}
		var args eventArgs
		if err := json.Unmarshal(ce.Args, &args); err != nil {
			continue
		}
		kind, ok := KindFromString(args.Kind)
		if !ok {
			continue
		}
		proc(ce.PID).Events = append(proc(ce.PID).Events, Event{
			TS: args.TSNS, Dur: args.DurNS, A: args.A, B: args.B,
			Front: args.Front, Worker: int32(ce.TID), Kind: kind, Label: args.Label,
		})
	}
	for _, p := range byPID {
		sortEvents(p.Events)
		out.Procs = append(out.Procs, *p)
	}
	sort.Slice(out.Procs, func(i, j int) bool { return out.Procs[i].PID < out.Procs[j].PID })
	return out, nil
}

// IsFleetDoc reports whether a trace meta belongs to a stitched fleet
// document (vs a single-process solve trace) — the lddptrace dispatch
// test.
func IsFleetDoc(meta Meta) bool { return meta.FleetID != "" }

// FleetNodeReport aggregates one process of a stitched trace.
type FleetNodeReport struct {
	PID  int    `json:"pid"`
	Name string `json:"name"`
	// BusyNS sums compute-occupancy spans (chunk/inline/row/phase);
	// Util is BusyNS over (lanes x fleet span).
	BusyNS int64   `json:"busy_ns"`
	Util   float64 `json:"util"`
	Lanes  int     `json:"lanes"`
	Events int     `json:"events"`
	// Blocks counts block round trips the coordinator attributed to this
	// node (0 for the coordinator process itself).
	Blocks int `json:"blocks"`
	// RTTNS sums the coordinator-observed round-trip time of those
	// blocks.
	RTTNS int64 `json:"rtt_ns"`
}

// FleetCriticalStep is one block on the fleet critical path.
type FleetCriticalStep struct {
	Band  int `json:"band"`
	Phase int `json:"phase"`
	// Node is the executing node's index.
	Node int `json:"node"`
	// RTTNS is the block's coordinator round trip; WaitNS the gap
	// between its dependencies finishing and the round trip starting
	// (halo wait + coordination).
	RTTNS  int64 `json:"rtt_ns"`
	WaitNS int64 `json:"wait_ns"`
}

// FleetCritical decomposes the fleet critical path: the chain of block
// round trips walked backwards from the last-finishing block through the
// block DAG ((band, phase) depends on (band-1, phase) and
// (band, phase-1)).
type FleetCritical struct {
	Steps []FleetCriticalStep `json:"steps"`
	// RTTNS and WaitNS split the path into block round trips and
	// dependency gaps.
	RTTNS  int64 `json:"rtt_ns"`
	WaitNS int64 `json:"wait_ns"`
	// DominantNode is the node index carrying the most path RTT (-1 when
	// the path is empty); DominantNodeNS its share.
	DominantNode   int   `json:"dominant_node"`
	DominantNodeNS int64 `json:"dominant_node_ns"`
	// DominantPhase is the phase with the most path time (RTT + wait).
	DominantPhase   int   `json:"dominant_phase"`
	DominantPhaseNS int64 `json:"dominant_phase_ns"`
	// DominantKind names the larger of the two path components:
	// "compute" (block round trips) or "halo-wait" (dependency gaps).
	DominantKind string `json:"dominant_kind"`
}

// FleetReport is the analyzed view of one stitched fleet trace.
type FleetReport struct {
	Meta   Meta  `json:"meta"`
	SpanNS int64 `json:"span_ns"`
	// Blocks, Bands and Phases describe the executed plan as observed on
	// the coordinator lanes.
	Blocks int `json:"blocks"`
	Bands  int `json:"bands"`
	Phases int `json:"phases"`
	// Nodes lists per-process aggregates, coordinator first.
	Nodes []FleetNodeReport `json:"nodes"`
	// HaloWaitNS sums the coordinator's halo-wait spans; HaloCells and
	// HaloBytes the halo payload volume; HaloXferNS the wire +
	// coordination overhead (round trip minus node compute).
	HaloWaitNS int64 `json:"halo_wait_ns"`
	HaloXferNS int64 `json:"halo_xfer_ns"`
	HaloCells  int64 `json:"halo_cells"`
	HaloBytes  int64 `json:"halo_bytes"`
	// RTTNS sums every block round trip.
	RTTNS    int64         `json:"rtt_ns"`
	Critical FleetCritical `json:"critical"`
}

// AnalyzeFleet computes the fleet report of a stitched trace: per-node
// busy/utilization, halo wait and transfer volumes, and the critical
// path through the block DAG, naming the dominant node and phase.
func AnalyzeFleet(doc *FleetDoc) *FleetReport {
	rep := &FleetReport{Meta: doc.Meta}
	rep.Critical.DominantNode = -1
	rep.Critical.DominantPhase = -1

	var lo, hi int64
	first := true
	var rtts []Event
	for _, p := range doc.Procs {
		nr := FleetNodeReport{PID: p.PID, Name: p.Name, Events: len(p.Events)}
		lanes := map[int32]bool{}
		for _, e := range p.Events {
			if first || e.TS < lo {
				lo, first = e.TS, false
			}
			if e.End() > hi {
				hi = e.End()
			}
			lanes[e.Worker] = true
			if busyKind(e.Kind) && !(p.PID == 0 && e.Kind == KindPhase) {
				// Coordinator KindPhase spans are round trips, not local
				// compute; counting them as busy would report the
				// coordinator as saturated.
				nr.BusyNS += e.Dur
			}
			if p.PID == 0 {
				switch e.Label {
				case LabelHaloWait:
					rep.HaloWaitNS += e.Dur
				case LabelHaloXfer:
					rep.HaloXferNS += e.Dur
					rep.HaloCells += e.A
					rep.HaloBytes += e.B
				case LabelRTT:
					rtts = append(rtts, e)
					rep.RTTNS += e.Dur
					if int(e.Worker)+1 > rep.Bands {
						rep.Bands = int(e.Worker) + 1
					}
					if int(e.Front)+1 > rep.Phases {
						rep.Phases = int(e.Front) + 1
					}
				}
			}
		}
		nr.Lanes = len(lanes)
		rep.Nodes = append(rep.Nodes, nr)
	}
	rep.Blocks = len(rtts)
	rep.SpanNS = hi - lo
	if rep.SpanNS <= 0 {
		rep.SpanNS = 1
	}
	for i := range rep.Nodes {
		if n := int64(rep.Nodes[i].Lanes) * rep.SpanNS; n > 0 {
			rep.Nodes[i].Util = float64(rep.Nodes[i].BusyNS) / float64(n)
		}
	}
	// Attribute block round trips to their executing node (A = node
	// index; node n is PID n+1).
	for _, e := range rtts {
		for i := range rep.Nodes {
			if rep.Nodes[i].PID == int(e.A)+1 {
				rep.Nodes[i].Blocks++
				rep.Nodes[i].RTTNS += e.Dur
			}
		}
	}
	rep.Critical = fleetCritical(rtts)
	return rep
}

// fleetCritical walks the block DAG backwards from the last-finishing
// round trip: each block's predecessors are (band-1, phase) — the north
// neighbour whose halo it waited for — and (band, phase-1) — the same
// band's previous phase, serialized on the band lane. The predecessor
// finishing last is the binding dependency; the gap between that finish
// and this round trip's start is the path's wait component.
func fleetCritical(rtts []Event) FleetCritical {
	crit := FleetCritical{DominantNode: -1, DominantPhase: -1}
	if len(rtts) == 0 {
		return crit
	}
	type key struct{ band, phase int32 }
	byBlock := make(map[key]Event, len(rtts))
	last := rtts[0]
	for _, e := range rtts {
		byBlock[key{e.Worker, e.Front}] = e
		if e.End() > last.End() {
			last = e
		}
	}
	nodeNS := map[int]int64{}
	phaseNS := map[int]int64{}
	cur := last
	for {
		step := FleetCriticalStep{
			Band: int(cur.Worker), Phase: int(cur.Front),
			Node: int(cur.A), RTTNS: cur.Dur,
		}
		var pred Event
		found := false
		for _, k := range []key{{cur.Worker - 1, cur.Front}, {cur.Worker, cur.Front - 1}} {
			if p, ok := byBlock[k]; ok && (!found || p.End() > pred.End()) {
				pred, found = p, true
			}
		}
		if found {
			if gap := cur.TS - pred.End(); gap > 0 {
				step.WaitNS = gap
			}
		}
		crit.Steps = append(crit.Steps, step)
		crit.RTTNS += step.RTTNS
		crit.WaitNS += step.WaitNS
		nodeNS[step.Node] += step.RTTNS
		phaseNS[step.Phase] += step.RTTNS + step.WaitNS
		if !found {
			break
		}
		cur = pred
	}
	// Walked tail-first; present the path in execution order.
	for i, j := 0, len(crit.Steps)-1; i < j; i, j = i+1, j-1 {
		crit.Steps[i], crit.Steps[j] = crit.Steps[j], crit.Steps[i]
	}
	for n, ns := range nodeNS {
		if ns > crit.DominantNodeNS || (ns == crit.DominantNodeNS && (crit.DominantNode == -1 || n < crit.DominantNode)) {
			crit.DominantNode, crit.DominantNodeNS = n, ns
		}
	}
	for p, ns := range phaseNS {
		if ns > crit.DominantPhaseNS || (ns == crit.DominantPhaseNS && (crit.DominantPhase == -1 || p < crit.DominantPhase)) {
			crit.DominantPhase, crit.DominantPhaseNS = p, ns
		}
	}
	crit.DominantKind = "compute"
	if crit.WaitNS > crit.RTTNS {
		crit.DominantKind = "halo-wait"
	}
	return crit
}
