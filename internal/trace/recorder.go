package trace

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/hetsim"
)

// DefaultLaneCap is the default per-worker ring capacity (events).
const DefaultLaneCap = 1 << 15

// Meta describes the solve a trace belongs to; it is embedded in the
// Chrome export and round-tripped by ReadChrome.
type Meta struct {
	// Solver is the executor name ("pool", "bands", "tiled", "hetero", ...).
	Solver string `json:"solver"`
	// Problem is the Problem.Name, may be empty.
	Problem string `json:"problem,omitempty"`
	// Pattern is the Table-I pattern; Executed the pattern actually run.
	Pattern  string `json:"pattern,omitempty"`
	Executed string `json:"executed,omitempty"`
	// Rows/Cols/Fronts/Workers describe the executed iteration space.
	Rows    int `json:"rows"`
	Cols    int `json:"cols"`
	Fronts  int `json:"fronts"`
	Workers int `json:"workers"`
	// Clock is "wall" for native executors (nanoseconds since the solve
	// started) or "sim" for imported simulated timelines (nanoseconds on
	// the simulated clock).
	Clock string `json:"clock"`
	// Lanes holds display names per lane; empty entries render as
	// "worker N".
	Lanes []string `json:"lanes,omitempty"`
	// Dropped counts events lost to ring overflow across all lanes
	// (filled in at export time).
	Dropped int64 `json:"dropped,omitempty"`

	// FleetID, Band and Phase tag a trace recorded for one block of a
	// band-sharded fleet solve with its originating solve and block
	// coordinates; empty/zero for standalone solves. Node names the
	// recording process in a stitched multi-node timeline (the node's
	// base URL, or "coordinator").
	FleetID string `json:"fleet_id,omitempty"`
	Band    int    `json:"band,omitempty"`
	Phase   int    `json:"phase,omitempty"`
	Node    string `json:"node,omitempty"`
	// EpochUnixNS is the recorder's epoch on the wall clock (UnixNano).
	// Event timestamps are relative to the epoch, so this is what lets a
	// stitcher align traces recorded on different machines onto one
	// wall-clock axis (modulo clock skew between the hosts).
	EpochUnixNS int64 `json:"epoch_unix_ns,omitempty"`
}

// Recorder is a low-overhead event recorder for the native runtime: one
// fixed-capacity ring buffer per worker, written lock-free because each
// lane is owned by exactly one goroutine during a solve. A nil *Recorder
// disables tracing; the runtime guards every emission behind one nil
// test, the same discipline as a nil Collector.
//
// Rings overwrite their oldest events when full (the newest window is
// the useful one for stall analysis); Dropped reports how many were
// lost. Events, WriteChrome and WriteSummary must only be called after
// the solve has joined — the rings are not synchronized with writers.
//
// A Recorder records one solve at a time and accumulates events across
// solves on one clock (the epoch is fixed at construction); use a fresh
// Recorder per solve for per-solve traces.
type Recorder struct {
	epoch time.Time

	mu         sync.Mutex // guards lanes growth and meta; never on the hot path
	lanes      []*Lane
	laneCap    int
	meta       Meta
	solveStart int64

	// Fleet tags are stored beside meta, not in it: BeginSolve replaces
	// meta wholesale (the scheduler owns that call), and the tags are set
	// by the server before the solve is submitted.
	fleetID     string
	band, phase int
}

// Lane is one worker's private event ring. Emissions are not
// synchronized: a Lane must be written by a single goroutine at a time.
type Lane struct {
	epoch  time.Time
	buf    []Event
	mask   uint64
	n      uint64 // total events ever emitted on this lane
	worker int32
	_      [24]byte // keep hot counters of adjacent lanes off one cache line
}

// NewRecorder returns a Recorder whose lanes hold laneCap events each;
// laneCap <= 0 selects DefaultLaneCap, other values round up to a power
// of two. Lanes are created by BeginSolve / Lane on demand.
func NewRecorder(laneCap int) *Recorder {
	if laneCap <= 0 {
		laneCap = DefaultLaneCap
	}
	capPow := 1
	for capPow < laneCap {
		capPow <<= 1
	}
	return &Recorder{epoch: time.Now(), laneCap: capPow}
}

// BeginSolve records the solve description and pre-creates the lanes for
// its workers (so the pool goroutines never race lane creation). It must
// be called before the solve starts emitting.
func (r *Recorder) BeginSolve(meta Meta) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if meta.Clock == "" {
		meta.Clock = "wall"
	}
	r.meta = meta
	r.growLocked(meta.Workers)
	r.solveStart = int64(time.Since(r.epoch))
}

// EndSolve closes the solve opened by BeginSolve, emitting the KindSolve
// span on lane 0.
func (r *Recorder) EndSolve() {
	r.mu.Lock()
	start := r.solveStart
	r.growLocked(1)
	l := r.lanes[0]
	r.mu.Unlock()
	l.put(Event{
		TS: start, Dur: int64(time.Since(r.epoch)) - start,
		Front: -1, Worker: 0, Kind: KindSolve, Label: r.meta.Solver,
	})
}

// Meta returns the most recent solve description, with the recorder's
// fleet tags and wall-clock epoch merged in.
func (r *Recorder) Meta() Meta {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.meta
	m.FleetID, m.Band, m.Phase = r.fleetID, r.band, r.phase
	m.EpochUnixNS = r.epoch.UnixNano()
	return m
}

// SetFleetTag marks every export of this recorder as belonging to block
// (band, phase) of the named fleet solve. The tags survive BeginSolve,
// which replaces the solve meta wholesale.
func (r *Recorder) SetFleetTag(fleetID string, band, phase int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fleetID, r.band, r.phase = fleetID, band, phase
}

// Epoch returns the recorder's construction time — the zero point of
// every event timestamp.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// Lane returns worker w's lane, creating lanes as needed. Callers fetch
// their lane once per solve, not per event.
func (r *Recorder) Lane(w int) *Lane {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.growLocked(w + 1)
	return r.lanes[w]
}

func (r *Recorder) growLocked(n int) {
	for len(r.lanes) < n {
		r.lanes = append(r.lanes, &Lane{
			epoch:  r.epoch,
			buf:    make([]Event, r.laneCap),
			mask:   uint64(r.laneCap - 1),
			worker: int32(len(r.lanes)),
		})
	}
}

// Dropped returns the number of events lost to ring overflow.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var d int64
	for _, l := range r.lanes {
		if over := int64(l.n) - int64(len(l.buf)); over > 0 {
			d += over
		}
	}
	return d
}

// Events returns every retained event across all lanes, ordered by
// timestamp. Call only after the solve has joined.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	lanes := r.lanes
	r.mu.Unlock()
	var out []Event
	for _, l := range lanes {
		out = append(out, l.events()...)
	}
	sortEvents(out)
	return out
}

func sortEvents(evs []Event) {
	// Stable order: timestamp, then lane for ties.
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		return evs[i].Worker < evs[j].Worker
	})
}

// events returns the lane's retained events in emission order.
func (l *Lane) events() []Event {
	n := l.n
	capN := uint64(len(l.buf))
	lo := uint64(0)
	if n > capN {
		lo = n - capN
	}
	out := make([]Event, 0, n-lo)
	for i := lo; i < n; i++ {
		out = append(out, l.buf[i&l.mask])
	}
	return out
}

// put appends one event; the single-owner contract makes this a plain
// slot store.
func (l *Lane) put(e Event) {
	e.Worker = l.worker
	l.buf[l.n&l.mask] = e
	l.n++
}

// now returns the lane clock: nanoseconds since the recorder epoch.
func (l *Lane) now() int64 { return int64(time.Since(l.epoch)) }

// SpanFrom records a span that started at t0 and ends now. Kept minimal
// on purpose: two monotonic clock reads and one ring store per span.
func (l *Lane) SpanFrom(k Kind, front int, a, b int64, t0 time.Time) {
	l.put(Event{
		TS: int64(t0.Sub(l.epoch)), Dur: int64(time.Since(t0)),
		A: a, B: b, Front: int32(front), Kind: k,
	})
}

// Span records a span from a timestamp previously taken with Clock.
func (l *Lane) Span(k Kind, front int, a, b, startNS int64) {
	l.put(Event{TS: startNS, Dur: l.now() - startNS, A: a, B: b, Front: int32(front), Kind: k})
}

// SpanLabel is Span carrying a (static) label.
func (l *Lane) SpanLabel(k Kind, label string, front int, a, b, startNS int64) {
	l.put(Event{TS: startNS, Dur: l.now() - startNS, A: a, B: b, Front: int32(front), Kind: k, Label: label})
}

// SpanAt records a fully explicit span — caller-supplied start and
// duration on the lane clock — for spans whose extent is derived rather
// than measured, like the fleet coordinator's halo-transfer overhead
// (block round trip minus node-reported compute).
func (l *Lane) SpanAt(k Kind, label string, front int, a, b, startNS, durNS int64) {
	l.put(Event{TS: startNS, Dur: durNS, A: a, B: b, Front: int32(front), Kind: k, Label: label})
}

// Instant records a zero-duration event at the current time.
func (l *Lane) Instant(k Kind, front int, a, b int64) {
	l.put(Event{TS: l.now(), A: a, B: b, Front: int32(front), Kind: k})
}

// Clock returns the current lane timestamp for a later Span call.
func (l *Lane) Clock() int64 { return l.now() }

// ImportTimeline converts a resolved simulated schedule into trace
// events, one lane per simulated resource, timestamps on the simulated
// clock. Compute ops import as KindPhase spans under their device:phase
// label; transfer ops as KindXferH2D/KindXferD2H classified by their DMA
// queue (or by label prefix for transfers forced onto the GPU queue by
// the DisablePipeline ablation).
func (r *Recorder) ImportTimeline(tl hetsim.Timeline) {
	r.mu.Lock()
	r.meta.Clock = "sim"
	maxRes := 0
	for _, rec := range tl.Records {
		if int(rec.Resource) > maxRes {
			maxRes = int(rec.Resource)
		}
	}
	r.growLocked(maxRes + 1)
	names := make([]string, maxRes+1)
	for i := range names {
		names[i] = tl.NameOf(hetsim.Resource(i))
	}
	r.meta.Lanes = names
	lanes := r.lanes
	r.mu.Unlock()

	for _, rec := range tl.Records {
		kind := KindPhase
		if rec.Kind == hetsim.OpTransfer {
			switch {
			case rec.Resource == hetsim.ResCopyH2D || strings.Contains(rec.Label, "h2d"):
				kind = KindXferH2D
			default:
				kind = KindXferD2H
			}
		}
		front := rec.Front
		lanes[rec.Resource].put(Event{
			TS: int64(rec.Start), Dur: int64(rec.End - rec.Start),
			A: int64(rec.Cells), B: int64(rec.Bytes),
			Front: int32(front), Kind: kind, Label: rec.Label,
		})
	}
}
