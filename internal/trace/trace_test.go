package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/hetsim"
)

func sampleTimeline() hetsim.Timeline {
	s := hetsim.NewSim(hetsim.HeteroHigh())
	a := s.Submit(hetsim.Op{Resource: hetsim.ResCPU, Kind: hetsim.OpCompute,
		Duration: 10 * time.Microsecond, Label: "cpu:p1", Cells: 50})
	s.Submit(hetsim.Op{Resource: hetsim.ResGPU, Kind: hetsim.OpCompute,
		Duration: 30 * time.Microsecond, Label: "gpu:p2", Cells: 500}, a)
	s.Submit(hetsim.Op{Resource: hetsim.ResCopyH2D, Kind: hetsim.OpTransfer,
		Duration: 5 * time.Microsecond, Label: "h2d:boundary", Bytes: 8}, a)
	return s.Timeline()
}

func TestGanttRendersLanes(t *testing.T) {
	out := Gantt(sampleTimeline(), 40)
	if !strings.Contains(out, "cpu") || !strings.Contains(out, "gpu") || !strings.Contains(out, "h2d") {
		t.Errorf("missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "c") || !strings.Contains(out, "g") || !strings.Contains(out, "h") {
		t.Errorf("missing op marks:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // three lanes + axis
		t.Errorf("got %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestGanttEmptyAndZero(t *testing.T) {
	if got := Gantt(hetsim.Timeline{}, 40); !strings.Contains(got, "empty") {
		t.Errorf("empty timeline: %q", got)
	}
}

func TestGanttNarrowWidthClamped(t *testing.T) {
	out := Gantt(sampleTimeline(), 1)
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, sampleTimeline()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 { // header + 3 ops
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), sb.String())
	}
	if lines[0] != "id,label,resource,kind,start_ns,end_ns,cells,bytes" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "cpu:p1") || !strings.Contains(lines[1], ",50,") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestStatsLine(t *testing.T) {
	line := StatsLine(sampleTimeline())
	for _, want := range []string{"time=", "cpu=", "gpu=", "cpuCells=50", "gpuCells=500", "xfers=1", "bytes=8"} {
		if !strings.Contains(line, want) {
			t.Errorf("stats line %q missing %q", line, want)
		}
	}
}

func TestBusiestOps(t *testing.T) {
	top := BusiestOps(sampleTimeline(), 2)
	if len(top) != 2 {
		t.Fatalf("got %d ops", len(top))
	}
	if top[0].Label != "gpu:p2" {
		t.Errorf("busiest = %q, want gpu:p2", top[0].Label)
	}
	if top[0].Duration() < top[1].Duration() {
		t.Error("not sorted by duration")
	}
	all := BusiestOps(sampleTimeline(), 99)
	if len(all) != 3 {
		t.Errorf("over-request returned %d", len(all))
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2500 * time.Microsecond, "2.500ms"},
		{3 * time.Second, "3.000s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestPhaseBreakdown(t *testing.T) {
	s := hetsim.NewSim(hetsim.HeteroHigh())
	s.Submit(hetsim.Op{Resource: hetsim.ResCPU, Kind: hetsim.OpCompute, Duration: 10, Label: "cpu:p1:t=0"})
	s.Submit(hetsim.Op{Resource: hetsim.ResCPU, Kind: hetsim.OpCompute, Duration: 20, Label: "cpu:p1:t=1"})
	s.Submit(hetsim.Op{Resource: hetsim.ResGPU, Kind: hetsim.OpCompute, Duration: 30, Label: "gpu:p2:t=2"})
	s.Submit(hetsim.Op{Resource: hetsim.ResCopyH2D, Kind: hetsim.OpTransfer, Duration: 5, Label: "h2d:boundary"})
	s.Submit(hetsim.Op{Resource: hetsim.ResCPU, Kind: hetsim.OpCompute, Duration: 7, Label: "plain"})
	b := PhaseBreakdown(s.Timeline())
	if b["p1"] != 30 || b["p2"] != 30 || b["h2d"] != 5 || b["plain"] != 7 {
		t.Errorf("breakdown = %v", b)
	}
}

func TestGanttUsesStreamNames(t *testing.T) {
	s := hetsim.NewSim(hetsim.HeteroHigh())
	st := s.NewNamedStream("phi")
	s.Submit(hetsim.Op{Resource: st, Kind: hetsim.OpCompute, Duration: time.Microsecond, Label: "phi:k"})
	out := Gantt(s.Timeline(), 30)
	if !strings.Contains(out, "phi") {
		t.Errorf("Gantt missing stream name:\n%s", out)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, s.Timeline()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ",phi,") {
		t.Errorf("CSV missing stream name: %s", sb.String())
	}
}

func TestAttributeCriticalPath(t *testing.T) {
	plat := hetsim.HeteroHigh()
	s := hetsim.NewSim(plat)
	a := s.Submit(hetsim.Op{Resource: hetsim.ResCPU, Kind: hetsim.OpCompute,
		Duration: plat.CPU.DispatchOverhead + 5*time.Microsecond})
	b := s.Submit(hetsim.Op{Resource: hetsim.ResCopyH2D, Kind: hetsim.OpTransfer,
		Duration: 2 * time.Microsecond}, a)
	s.Submit(hetsim.Op{Resource: hetsim.ResGPU, Kind: hetsim.OpCompute,
		Duration: plat.GPU.LaunchLatency + 7*time.Microsecond}, b)
	path := s.CriticalPath()
	attr := AttributeCriticalPath(path, plat)
	var total time.Duration
	for _, v := range attr {
		total += v
	}
	if total != s.Makespan() {
		t.Errorf("attribution sums to %v, makespan %v", total, s.Makespan())
	}
	if attr["cpu-dispatch"] != plat.CPU.DispatchOverhead {
		t.Errorf("cpu-dispatch = %v", attr["cpu-dispatch"])
	}
	if attr["kernel-launch"] != plat.GPU.LaunchLatency {
		t.Errorf("kernel-launch = %v", attr["kernel-launch"])
	}
	if attr["cpu-compute"] != 5*time.Microsecond || attr["gpu-compute"] != 7*time.Microsecond {
		t.Errorf("compute buckets = %v / %v", attr["cpu-compute"], attr["gpu-compute"])
	}
	if attr["transfer"] != 2*time.Microsecond {
		t.Errorf("transfer = %v", attr["transfer"])
	}
	if len(AttributeCriticalPath(nil, plat)) != 0 {
		t.Error("empty path should attribute nothing")
	}
}
