// Package testutil holds test helpers shared across the repo's suites.
// It deliberately does not import testing: the scenario engine
// (internal/sim) runs the same checks from a non-test binary
// (cmd/lddpsim), so every helper reports through error values and the
// caller decides between t.Error and process exit.
package testutil

import (
	"fmt"
	"runtime"
	"time"
)

// LeakCheck is a goroutine-count baseline taken before a test or
// scenario creates its stack, compared again after teardown. It is the
// shared form of the checker the scheduler and server soak suites each
// grew independently: count goroutines before, wait out stragglers
// after, and dump all stacks on a genuine leak.
type LeakCheck struct {
	before int
}

// StartLeakCheck snapshots the current goroutine count. Call it before
// constructing the system under test, and Err after tearing it down.
func StartLeakCheck() *LeakCheck {
	return &LeakCheck{before: runtime.NumGoroutine()}
}

// Err re-checks the goroutine count against the baseline, giving
// stragglers (cancel timers, HTTP connection teardown, pool workers
// parking) up to patience to exit. A count still above the baseline
// afterwards returns an error carrying every goroutine stack; nil
// means the system tore down clean.
func (l *LeakCheck) Err(patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for runtime.NumGoroutine() > l.before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > l.before {
		buf := make([]byte, 1<<20)
		return fmt.Errorf("goroutine leak: %d before, %d after\n%s", l.before, g, buf[:runtime.Stack(buf, true)])
	}
	return nil
}
