// Package fleet coordinates one DP solve across several lddpd nodes.
// The table is cut into horizontal row bands, one per node; each band
// is cut into column phases; and each (band, phase) block is shipped to
// the band's node as a POST /v1/band/solve request carrying the halo
// rows/columns its recurrence reads across block edges. Blocks of the
// same band run in phase order on one node while neighbouring bands
// pipeline one phase behind, the classic wavefront-of-blocks schedule.
// When a node dies mid-solve the failed block is relocated to the next
// node and the band stays there — the halos it needs are sliced from
// the coordinator's assembled table, not from node-local state, so any
// node can take over any block at any time. DESIGN.md §12 documents the
// protocol.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
	"repro/lddp"
	"repro/lddp/api"
	"repro/lddp/client"
)

// Direction is a mask's block-phase processing order.
type Direction int

const (
	// LeftToRight: column phases run west to east. Valid whenever the
	// mask has no NE dependency — every cross-phase read then points
	// west or up, at blocks already done.
	LeftToRight Direction = iota
	// RightToLeft: column phases run east to west. Valid when the mask
	// reads NE but neither W nor NW — the mirror image.
	RightToLeft
	// SinglePhase: the mask reads both eastward (NE) and westward
	// (W/NW), so no column cut has all its cross-edge inputs on one
	// side; each band is one full-width block and the pipeline runs on
	// bands alone.
	SinglePhase
)

func (d Direction) String() string {
	switch d {
	case LeftToRight:
		return "ltr"
	case RightToLeft:
		return "rtl"
	default:
		return "single-phase"
	}
}

// DirectionFor returns the phase order a contributing set admits. The
// choice is forced, not heuristic: under a left-to-right cut a NE
// dependency at a phase's right edge reads a column the same band has
// not reached yet, and symmetrically for W/NW under right-to-left.
func DirectionFor(m lddp.DepMask) Direction {
	switch {
	case m.Has(lddp.DepNE) && m&(lddp.DepW|lddp.DepNW) != 0:
		return SinglePhase
	case m.Has(lddp.DepNE):
		return RightToLeft
	default:
		return LeftToRight
	}
}

// DefaultPhaseCols is the column width of one block phase when the
// config does not set one: wide enough that halo traffic (one row +
// two columns per block) stays a rounding error next to block cells.
const DefaultPhaseCols = 256

// Config configures a Coordinator.
type Config struct {
	// Nodes are the lddpd peers, one client per node. Band k starts on
	// node k mod len(Nodes) and moves only on failure.
	Nodes []*client.Client

	// Bands is the number of row bands (default len(Nodes), clamped to
	// the table's rows).
	Bands int

	// PhaseCols is the column width of one block phase (default
	// DefaultPhaseCols). Single-phase masks ignore it.
	PhaseCols int

	// MaxBlockAttempts bounds how many nodes one block is tried on
	// before the solve fails (counting the first; default
	// 2 * len(Nodes)).
	MaxBlockAttempts int

	// OnBlockDone, when set, runs after each block completes, before
	// its dependents are released — the fleet test suite's fault
	// injection point (e.g. kill a node after its first block).
	OnBlockDone func(band, phase, node int)

	// TraceDir, when non-empty, records a coordinator-side trace of
	// every fleet solve (one lane per band: halo-wait, round-trip and
	// halo-transfer spans), fetches each node's block trace dumps
	// afterwards (GET /v1/trace/{fleetID}), and writes the stitched
	// multi-process timeline as <TraceDir>/fleet-<fleetID>.json — the
	// cmd/lddptrace fleet input. Node lanes appear only for nodes that
	// themselves run with -tracedir; the coordinator lanes never depend
	// on node support. The fetch-and-write runs detached from Solve
	// (a solve never waits on trace collection); Close waits for all
	// outstanding ones.
	TraceDir string
}

// Stats counts one fleet solve's work.
type Stats struct {
	// Bands, Phases and Blocks describe the executed plan
	// (Blocks = Bands * Phases).
	Bands, Phases, Blocks int
	// Direction is the phase order the mask forced.
	Direction Direction
	// Relocations counts blocks moved to another node after a failure.
	Relocations int
	// NodeBlocks[n] counts blocks completed by Nodes[n].
	NodeBlocks []int
}

// Result is one assembled fleet solve.
type Result struct {
	// FleetID is the coordinator-assigned solve identifier, propagated
	// to every block as its trace context. TracePath is the stitched
	// multi-node trace file, written only when the coordinator has a
	// TraceDir; the write is detached from the solve, so the file is
	// guaranteed on disk (or definitively absent) only after
	// Coordinator.Close.
	FleetID   string
	TracePath string

	Rows, Cols int
	// Cells is the full table, row-major.
	Cells []int64
	// Digest is the FNV-1a-64 hex digest of the assembled table — the
	// same fold a single node computes for the whole solve, so fleet
	// and single-node digests are directly comparable.
	Digest string
	// Mask is the resolved contributing set.
	Mask string
	// ElapsedMS is the coordinator wall time.
	ElapsedMS float64
	Stats     Stats
}

// At reads the assembled table.
func (r *Result) At(i, j int) int64 { return r.Cells[i*r.Cols+j] }

// Coordinator runs band-sharded solves over a fixed node set. Safe for
// concurrent use; each Solve builds its own plan and scratch state.
// A traced coordinator detaches its per-solve trace stitching; call
// Close before exiting (or before reading stitched files) to wait for
// those fetches.
type Coordinator struct {
	cfg Config
	// counters is a pointer so the Handler's per-request ?bands= copy
	// keeps accumulating into the same totals. stitches is a pointer for
	// the same reason — the copies must account detached trace fetches
	// into the same wait group (and a WaitGroup must not be copied).
	counters *counters
	stitches *sync.WaitGroup
}

// counters are the coordinator's lifetime totals, exported into the
// metrics snapshot's Fleet section.
type counters struct {
	solves, blocks, relocations atomic.Int64
	haloValues, haloBytes       atomic.Int64
}

// New validates the config and returns a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("fleet: no nodes")
	}
	if cfg.PhaseCols < 0 || cfg.Bands < 0 || cfg.MaxBlockAttempts < 0 {
		return nil, fmt.Errorf("fleet: negative config value")
	}
	if cfg.PhaseCols == 0 {
		cfg.PhaseCols = DefaultPhaseCols
	}
	if cfg.MaxBlockAttempts == 0 {
		cfg.MaxBlockAttempts = 2 * len(cfg.Nodes)
	}
	return &Coordinator{cfg: cfg, counters: &counters{}, stitches: &sync.WaitGroup{}}, nil
}

// Close waits for the coordinator's detached work — the best-effort
// node trace fetches launched after each traced solve — to finish, so
// shutdown paths and leak checks can account for every goroutine and
// stitched files are complete on disk before anyone reads them. Each
// fetch bounds itself to ten seconds, so Close is bounded too. The
// coordinator stays usable afterwards; Close is safe to call again.
func (c *Coordinator) Close() { c.stitches.Wait() }

// MetricsSnapshot returns the coordinator's lifetime counters in the
// metrics snapshot's Fleet shape; cmd/lddpd wires it into the node's
// /v1/metrics through server.Config.ExtraMetrics.
func (c *Coordinator) MetricsSnapshot() lddp.FleetSnapshot {
	return lddp.FleetSnapshot{
		Solves:      c.counters.solves.Load(),
		Blocks:      c.counters.blocks.Load(),
		Relocations: c.counters.relocations.Load(),
		HaloValues:  c.counters.haloValues.Load(),
		HaloBytes:   c.counters.haloBytes.Load(),
	}
}

// fleetSeq disambiguates fleet IDs minted in the same nanosecond.
var fleetSeq atomic.Int64

// newFleetID mints a process-unique fleet solve identifier. It is the
// join key of the whole observability layer: block requests carry it,
// node trace dumps index under it, and the stitched trace file is named
// by it.
func newFleetID() string {
	return fmt.Sprintf("f%x-%x", time.Now().UnixNano(), fleetSeq.Add(1))
}

// PlanError is a request the coordinator itself refused before
// contacting any node — bad table size, unresolvable mask, inline
// cells. Always client-error material (400), unlike node and transport
// failures.
type PlanError struct{ msg string }

func (e *PlanError) Error() string { return e.msg }

func planErrorf(format string, args ...any) error {
	return &PlanError{msg: fmt.Sprintf(format, args...)}
}

// span is a half-open interval of rows or columns.
type span struct{ lo, hi int }

// plan is one solve's static decomposition.
type plan struct {
	mask   lddp.DepMask
	dir    Direction
	bands  []span // row extents, index = band
	phases []span // column extents, index = processing order
}

func (c *Coordinator) planFor(req *api.SolveRequest) (*plan, error) {
	kind := req.Workload.Kind
	if kind == "" {
		kind = api.KindMix
	}
	mask, err := api.ResolveMask(kind, req.Mask)
	if err != nil {
		return nil, planErrorf("fleet: %v", err)
	}
	if req.Rows <= 0 || req.Cols <= 0 {
		return nil, planErrorf("fleet: table size %dx%d invalid", req.Rows, req.Cols)
	}
	if req.Workload.Cells != nil {
		return nil, planErrorf("fleet: inline workload cells cannot be sharded; use a seed-generated workload")
	}
	p := &plan{mask: mask, dir: DirectionFor(mask)}
	nb := c.cfg.Bands
	if nb == 0 {
		nb = len(c.cfg.Nodes)
	}
	if nb > req.Rows {
		nb = req.Rows
	}
	for k := 0; k < nb; k++ {
		p.bands = append(p.bands, span{k * req.Rows / nb, (k + 1) * req.Rows / nb})
	}
	switch p.dir {
	case SinglePhase:
		p.phases = []span{{0, req.Cols}}
	case LeftToRight:
		for lo := 0; lo < req.Cols; lo += c.cfg.PhaseCols {
			p.phases = append(p.phases, span{lo, min(lo+c.cfg.PhaseCols, req.Cols)})
		}
	case RightToLeft:
		for hi := req.Cols; hi > 0; hi -= c.cfg.PhaseCols {
			p.phases = append(p.phases, span{max(hi-c.cfg.PhaseCols, 0), hi})
		}
	}
	return p, nil
}

// Solve runs one band-sharded solve to completion. req has full-table
// SolveRequest semantics (kind, seed, mask, strategy, chunk); its
// DeadlineMS bounds the whole fleet solve coordinator-side, while each
// block travels without a deadline of its own — a block stuck on a dead
// node is handled by relocation, not by waiting out a timer.
func (c *Coordinator) Solve(ctx context.Context, req *api.SolveRequest) (*Result, error) {
	start := time.Now()
	p, err := c.planFor(req)
	if err != nil {
		return nil, err
	}
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	ctx, fail := context.WithCancelCause(ctx)
	defer fail(nil)

	table := make([]int64, req.Rows*req.Cols)
	// done[k][p] closes when block (band k, processing phase p) is in
	// the table; a close happens-before the dependent bands' reads of
	// the block's cells, so halo slicing below needs no extra locking.
	done := make([][]chan struct{}, len(p.bands))
	for k := range done {
		done[k] = make([]chan struct{}, len(p.phases))
		for i := range done[k] {
			done[k][i] = make(chan struct{})
		}
	}

	var mu sync.Mutex // guards stats counters below
	stats := Stats{
		Bands: len(p.bands), Phases: len(p.phases),
		Blocks: len(p.bands) * len(p.phases), Direction: p.dir,
		NodeBlocks: make([]int, len(c.cfg.Nodes)),
	}

	// Every fleet solve gets an ID and propagates it in each block's
	// trace context — nodes running with -tracedir tag and index their
	// dumps under it whether or not the coordinator itself records.
	fleetID := newFleetID()
	var rec *trace.Recorder
	if c.cfg.TraceDir != "" {
		// Coordinator lanes carry ~3 spans per block, so a small ring
		// suffices; lane k is written only by band k's goroutine,
		// preserving the recorder's single-owner contract.
		rec = trace.NewRecorder(4096)
		lanes := make([]string, len(p.bands))
		for k := range lanes {
			lanes[k] = fmt.Sprintf("band %d", k)
		}
		rec.SetFleetTag(fleetID, 0, 0)
		rec.BeginSolve(trace.Meta{
			Solver: "fleet", Rows: req.Rows, Cols: req.Cols,
			Fronts: len(p.phases), Workers: len(p.bands),
			Node: "coordinator", Lanes: lanes,
		})
	}

	var wg sync.WaitGroup
	for k := range p.bands {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var lane *trace.Lane
			if rec != nil {
				lane = rec.Lane(k)
			}
			node := k % len(c.cfg.Nodes) // home node; sticky after relocation
			for ph := range p.phases {
				if k > 0 {
					var t0 int64
					if lane != nil {
						t0 = lane.Clock()
					}
					select {
					case <-done[k-1][ph]:
					case <-ctx.Done():
						return
					}
					if lane != nil {
						lane.SpanLabel(trace.KindHandoff, trace.LabelHaloWait, ph, int64(k-1), 0, t0)
					}
				}
				var err error
				node, err = c.solveBlock(ctx, req, p, table, k, ph, node, fleetID, lane, &mu, &stats)
				if err != nil {
					fail(fmt.Errorf("fleet: band %d phase %d: %w", k, ph, err))
					return
				}
				close(done[k][ph])
				if c.cfg.OnBlockDone != nil {
					c.cfg.OnBlockDone(k, ph, node)
				}
			}
		}(k)
	}
	wg.Wait()
	if err := context.Cause(ctx); err != nil {
		return nil, err
	}
	c.counters.solves.Add(1)
	res := &Result{
		FleetID: fleetID,
		Rows:    req.Rows, Cols: req.Cols, Cells: table,
		Digest:    fmt.Sprintf("%016x", wire.CellsDigest(req.Rows, req.Cols, table)),
		Mask:      p.mask.String(),
		ElapsedMS: float64(time.Since(start).Nanoseconds()) / 1e6,
		Stats:     stats,
	}
	if rec != nil {
		rec.EndSolve()
		// Stitching fetches every node's dumps over the wire — up to ten
		// seconds against a dead node — and the solve's caller should not
		// pay that: detach it, tracked by the stitches group so Close can
		// wait. TracePath is the deterministic destination; the file
		// appears there once the fetch completes (Close synchronizes),
		// and on a write failure not at all — trace collection stays
		// best-effort either way.
		res.TracePath = filepath.Join(c.cfg.TraceDir, fmt.Sprintf("fleet-%s.json", fleetID))
		sctx := context.WithoutCancel(ctx)
		c.stitches.Add(1)
		go func() {
			defer c.stitches.Done()
			c.stitchTrace(sctx, fleetID, rec)
		}()
	}
	return res, nil
}

// stitchTrace fetches every node's block trace dumps for one completed
// fleet solve and writes the merged multi-process timeline into the
// coordinator's TraceDir, best-effort: trace collection must never fail
// the solve it describes. It runs detached from Solve (see the launch
// site) under the stitches group.
func (c *Coordinator) stitchTrace(ctx context.Context, fleetID string, rec *trace.Recorder) {
	// The solve's own deadline may be (nearly) spent; trace collection
	// gets a short budget of its own instead of inheriting cancellation
	// (the caller already detached ctx from the solve's).
	fctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	nodes := make([]trace.NodeTrace, len(c.cfg.Nodes))
	for n, node := range c.cfg.Nodes {
		nodes[n].FleetID = fleetID
		nodes[n].Node = node.Base()
		if nt, err := node.Trace(fctx, fleetID); err == nil {
			nodes[n].Blocks = nt.Blocks
		}
		// A 404 is a node without tracing (or without blocks of this
		// solve): it keeps its (empty) process lane so PIDs stay aligned
		// with node indices.
	}
	path := filepath.Join(c.cfg.TraceDir, fmt.Sprintf("fleet-%s.json", fleetID))
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	if err := trace.WriteFleetChrome(f, rec.Meta(), rec.Events(), nodes); err != nil {
		os.Remove(path)
	}
}

// solveBlock ships one block to its band's node, relocating on failure,
// and writes the returned cells into the assembled table. It returns
// the node that completed the block (the band's node from here on).
// When the coordinator records a trace, lane is band k's lane and gets
// one round-trip span per completed block plus a derived halo-transfer
// span (round trip minus node-reported compute).
func (c *Coordinator) solveBlock(ctx context.Context, req *api.SolveRequest, p *plan, table []int64, k, ph, node int, fleetID string, lane *trace.Lane, mu *sync.Mutex, stats *Stats) (int, error) {
	rows, cols := req.Rows, req.Cols
	b, col := p.bands[k], p.phases[ph]
	breq := &api.BandRequest{
		Rows: rows, Cols: cols,
		Row0: b.lo, Row1: b.hi, Col0: col.lo, Col1: col.hi,
		Mask: req.Mask, Strategy: req.Strategy,
		Workload: req.Workload, Chunk: req.Chunk,
		Trace: &api.TraceContext{FleetID: fleetID, Band: k, Phase: ph},
	}
	h := api.HaloSpec(p.mask, rows, cols, b.lo, b.hi, col.lo, col.hi)
	if h.NorthLen > 0 {
		breq.NorthLo = h.NorthLo
		breq.HaloNorth = table[(b.lo-1)*cols+h.NorthLo : (b.lo-1)*cols+h.NorthLo+h.NorthLen]
	}
	if h.WestLen > 0 {
		breq.HaloWest = make([]int64, h.WestLen)
		for i := range breq.HaloWest {
			breq.HaloWest[i] = table[(b.lo+i)*cols+col.lo-1]
		}
	}
	if h.EastLen > 0 {
		breq.HaloEast = make([]int64, h.EastLen)
		for i := range breq.HaloEast {
			breq.HaloEast[i] = table[(b.lo+i)*cols+col.hi]
		}
	}
	haloValues := int64(h.NorthLen + h.WestLen + h.EastLen)
	if haloValues > 0 {
		c.counters.haloValues.Add(haloValues)
		c.counters.haloBytes.Add(haloValues * 8)
	}
	var last error
	for attempt := 0; attempt < c.cfg.MaxBlockAttempts; attempt++ {
		if attempt > 0 {
			node = (node + 1) % len(c.cfg.Nodes)
			c.counters.relocations.Add(1)
			mu.Lock()
			stats.Relocations++
			mu.Unlock()
		}
		var t0 int64
		if lane != nil {
			t0 = lane.Clock()
		}
		resp, err := c.cfg.Nodes[node].SolveBand(ctx, breq)
		if err != nil {
			last = err
			if ctx.Err() != nil || !relocatable(err) {
				return node, last
			}
			continue
		}
		if lane != nil {
			rtt := lane.Clock() - t0
			blockCells := int64(b.hi-b.lo) * int64(col.hi-col.lo)
			lane.SpanAt(trace.KindPhase, trace.LabelRTT, ph, int64(node), blockCells, t0, rtt)
			// The halo-transfer span is the round trip minus the node's
			// own compute time: wire transfer plus coordination overhead,
			// attributed to the halo payload that crossed it.
			if over := rtt - int64(resp.ElapsedMS*1e6); over > 0 {
				lane.SpanAt(trace.KindXferH2D, trace.LabelHaloXfer, ph, haloValues, haloValues*8, t0, over)
			}
		}
		if len(resp.Cells) != b.hi-b.lo {
			return node, fmt.Errorf("node %d returned %d rows for a %d-row block", node, len(resp.Cells), b.hi-b.lo)
		}
		for i, row := range resp.Cells {
			if len(row) != col.hi-col.lo {
				return node, fmt.Errorf("node %d returned %d cols for a %d-col block", node, len(row), col.hi-col.lo)
			}
			copy(table[(b.lo+i)*cols+col.lo:(b.lo+i)*cols+col.hi], row)
		}
		c.counters.blocks.Add(1)
		mu.Lock()
		stats.NodeBlocks[node]++
		mu.Unlock()
		return node, nil
	}
	return node, fmt.Errorf("block failed on %d nodes: %w", c.cfg.MaxBlockAttempts, last)
}

// relocatable reports whether a SolveBand failure is worth retrying on
// another node: transport errors (the node is gone) and admission
// pushback that outlived the client's own retries are; a request the
// service called invalid, a deadline the caller set, and a wire-version
// mismatch would fail identically everywhere.
func relocatable(err error) bool {
	return !errors.Is(err, client.ErrInvalid) &&
		!errors.Is(err, client.ErrTimeout) &&
		!errors.Is(err, client.ErrWireVersion)
}
