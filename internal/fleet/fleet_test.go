// Fleet differential suite: several full lddpd handler stacks run
// in-process behind httptest, the coordinator shards solves across
// them, and every assembled table must match the sequential oracle of
// the identical instance cell for cell and digest for digest — the
// fleet-level extension of the wire-boundary e2e suite in
// internal/server/e2e_test.go.
package fleet_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/server"
	"repro/lddp"
	"repro/lddp/api"
	"repro/lddp/client"
)

// fleetShapes are the adversarial table shapes: degenerate rows and
// columns (fewer rows than nodes force band clamping), extreme aspect
// ratios, primes, and a square control.
var fleetShapes = [][2]int{
	{1, 1},
	{1, 33},
	{33, 1},
	{2, 40},
	{101, 3},
	{31, 37},
	{40, 40},
}

// testFleet boots n full service stacks and a coordinator over them.
type testFleet struct {
	servers []*httptest.Server
	coord   *fleet.Coordinator
}

func newTestFleet(t *testing.T, n int, cfg fleet.Config, copts ...client.Option) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{Workers: 2, Chunk: 8})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		f.servers = append(f.servers, ts)
		copts = append(copts[:len(copts):len(copts)], client.WithCodec(client.CodecBinary))
		c, err := client.New(ts.URL, copts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		cfg.Nodes = append(cfg.Nodes, c)
	}
	coord, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	return f
}

// checkFleetDifferential solves one instance through the fleet and
// demands exact equality against the sequential oracle.
func checkFleetDifferential(t *testing.T, coord *fleet.Coordinator, req *api.SolveRequest, m lddp.DepMask) *fleet.Result {
	t.Helper()
	res, err := coord.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("fleet solve: mask=%s shape=%dx%d: %v", m, req.Rows, req.Cols, err)
	}
	problem, err := server.BuildProblem(req)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := core.Solve(problem)
	if err != nil {
		t.Fatalf("oracle: mask=%s shape=%dx%d: %v", m, req.Rows, req.Cols, err)
	}
	if want := server.DigestCells(req.Rows, req.Cols, res.Cells); res.Digest != want {
		t.Fatalf("mask=%s shape=%dx%d: result digest %s does not match its own cells %s",
			m, req.Rows, req.Cols, res.Digest, want)
	}
	if want := server.DigestGrid(oracle); res.Digest != want {
		t.Errorf("digest: mask=%s shape=%dx%d: fleet %s, oracle %s", m, req.Rows, req.Cols, res.Digest, want)
	}
	for i := 0; i < req.Rows; i++ {
		for j := 0; j < req.Cols; j++ {
			if res.At(i, j) != oracle.At(i, j) {
				t.Fatalf("mask=%s shape=%dx%d: cell (%d,%d): fleet %d, oracle %d",
					m, req.Rows, req.Cols, i, j, res.At(i, j), oracle.At(i, j))
			}
		}
	}
	return res
}

// TestFleetDifferentialAllMasks is the full fleet matrix: 2- and 3-node
// fleets x all 15 dependency masks x the adversarial shapes, with a
// deliberately tiny phase width so even small tables run many phases
// (halo hand-off on every boundary). Every mask exercises the direction
// policy its contributing set forces.
func TestFleetDifferentialAllMasks(t *testing.T) {
	for _, nodes := range []int{2, 3} {
		f := newTestFleet(t, nodes, fleet.Config{PhaseCols: 7})
		for _, m := range lddp.AllDepMasks() {
			for _, d := range fleetShapes {
				req := &api.SolveRequest{
					Rows: d[0], Cols: d[1], Mask: m.String(),
					Workload: api.WorkloadSpec{Kind: api.KindMix, Seed: 0x5eed_f1ee7},
				}
				res := checkFleetDifferential(t, f.coord, req, m)
				if res.Stats.Direction != fleet.DirectionFor(m) {
					t.Errorf("mask=%s: ran %s, want %s", m, res.Stats.Direction, fleet.DirectionFor(m))
				}
				if res.Stats.Blocks != res.Stats.Bands*res.Stats.Phases {
					t.Errorf("mask=%s: stats blocks %d != %d bands * %d phases",
						m, res.Stats.Blocks, res.Stats.Bands, res.Stats.Phases)
				}
			}
		}
	}
}

// TestFleetWorkloadKinds runs the other seed-generated workload kinds
// (serve, cost, align) through a 3-node fleet. Cost regenerates the
// full seeded grid on every node; align fixes its own mask.
func TestFleetWorkloadKinds(t *testing.T) {
	f := newTestFleet(t, 3, fleet.Config{PhaseCols: 11})
	for _, kind := range []string{api.KindServe, api.KindCost, api.KindAlign} {
		mask := api.DefaultMask
		if kind == api.KindAlign {
			mask = api.AlignMask
		}
		req := &api.SolveRequest{
			Rows: 37, Cols: 29,
			Workload: api.WorkloadSpec{Kind: kind, Seed: 99},
		}
		checkFleetDifferential(t, f.coord, req, mask)
	}
}

// TestFleetSpreadsWork asserts the plan actually shards: on a 3-node
// fleet with three bands every node executes blocks.
func TestFleetSpreadsWork(t *testing.T) {
	f := newTestFleet(t, 3, fleet.Config{PhaseCols: 10})
	req := &api.SolveRequest{
		Rows: 60, Cols: 50, Mask: "W,N",
		Workload: api.WorkloadSpec{Kind: api.KindMix, Seed: 5},
	}
	res := checkFleetDifferential(t, f.coord, req, api.DefaultMask)
	if res.Stats.Bands != 3 || res.Stats.Phases != 5 {
		t.Fatalf("plan = %d bands x %d phases, want 3 x 5", res.Stats.Bands, res.Stats.Phases)
	}
	for n, blocks := range res.Stats.NodeBlocks {
		if blocks != 5 {
			t.Errorf("node %d ran %d blocks, want 5 (no failures injected)", n, blocks)
		}
	}
	if res.Stats.Relocations != 0 {
		t.Errorf("relocations = %d, want 0", res.Stats.Relocations)
	}
}

// TestFleetKillNodeMidSolve is the recovery differential: a 3-node
// fleet starts a solve, and the moment the victim node completes its
// first block its HTTP listener is torn down. The coordinator must
// relocate the victim's remaining blocks to surviving nodes and still
// assemble a table digest-identical to the sequential oracle.
func TestFleetKillNodeMidSolve(t *testing.T) {
	const victim = 1
	var once sync.Once
	var f *testFleet // assigned below; the hook closure reads it at run time
	f = newTestFleet(t, 3,
		fleet.Config{
			PhaseCols: 9,
			OnBlockDone: func(band, phase, node int) {
				if node == victim {
					once.Do(func() {
						f.servers[victim].CloseClientConnections()
						f.servers[victim].Close()
					})
				}
			},
		},
		client.WithRetry(client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}),
	)
	req := &api.SolveRequest{
		Rows: 45, Cols: 36, Mask: "W,N",
		Workload: api.WorkloadSpec{Kind: api.KindMix, Seed: 0xdead},
	}
	res, err := f.coord.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("fleet solve with killed node: %v", err)
	}
	if res.Stats.Relocations == 0 {
		t.Fatalf("no relocations recorded; the kill did not bite (node blocks: %v)", res.Stats.NodeBlocks)
	}
	problem, err := server.BuildProblem(req)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := core.Solve(problem)
	if err != nil {
		t.Fatal(err)
	}
	if want := server.DigestGrid(oracle); res.Digest != want {
		t.Fatalf("digest after recovery: fleet %s, oracle %s", res.Digest, want)
	}
}

// TestFleetFatalErrorAborts pins the non-relocatable path: an invalid
// request must fail the solve without burning relocation attempts.
func TestFleetFatalErrorAborts(t *testing.T) {
	f := newTestFleet(t, 2, fleet.Config{})
	req := &api.SolveRequest{
		Rows: 10, Cols: 10, Mask: "W,N",
		Workload: api.WorkloadSpec{Kind: "bogus"},
	}
	if _, err := f.coord.Solve(context.Background(), req); err == nil {
		t.Fatal("bogus workload kind solved")
	}
	// A kind the plan accepts but the nodes refuse: inline cells are
	// caught coordinator-side too, so use a strategy typo, which only
	// the node validates.
	req = &api.SolveRequest{
		Rows: 10, Cols: 10, Mask: "W,N", Strategy: "bogus",
		Workload: api.WorkloadSpec{Kind: api.KindMix},
	}
	_, err := f.coord.Solve(context.Background(), req)
	if err == nil {
		t.Fatal("bogus strategy solved")
	}
	if !errors.Is(err, client.ErrInvalid) {
		t.Fatalf("got %v, want ErrInvalid", err)
	}
}

// TestDirectionForAllMasks pins the phase-direction policy mask by
// mask: any change here is a protocol change, not a refactor.
func TestDirectionForAllMasks(t *testing.T) {
	for _, m := range lddp.AllDepMasks() {
		want := fleet.LeftToRight
		switch {
		case m.Has(lddp.DepNE) && (m.Has(lddp.DepW) || m.Has(lddp.DepNW)):
			want = fleet.SinglePhase
		case m.Has(lddp.DepNE):
			want = fleet.RightToLeft
		}
		if got := fleet.DirectionFor(m); got != want {
			t.Errorf("mask %s: direction %s, want %s", m, got, want)
		}
	}
}
