// Fleet trace stitching end to end: traced node servers plus a traced
// coordinator produce one stitched multi-node timeline, and the fleet
// analyzer finds the node lanes, halo spans, and a critical path in it.
package fleet_test

import (
	"context"
	"os"
	"testing"

	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/lddp/api"
	"repro/lddp/client"

	"net/http/httptest"
)

// newTracedFleet is newTestFleet with per-node -tracedir wiring: every
// node records block traces, and the coordinator stitches them.
func newTracedFleet(t *testing.T, n int, cfg fleet.Config) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{Workers: 2, Chunk: 8, TraceDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		f.servers = append(f.servers, ts)
		c, err := client.New(ts.URL, client.WithCodec(client.CodecBinary))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		cfg.Nodes = append(cfg.Nodes, c)
	}
	coord, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	return f
}

func TestFleetTraceStitching(t *testing.T) {
	const nodes = 2
	dir := t.TempDir()
	f := newTracedFleet(t, nodes, fleet.Config{TraceDir: dir})

	res, err := f.coord.Solve(context.Background(), &api.SolveRequest{
		Rows: 40, Cols: 40, Mask: "W,N",
		Workload: api.WorkloadSpec{Kind: api.KindMix, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FleetID == "" {
		t.Fatal("fleet solve without a FleetID")
	}
	if res.TracePath == "" {
		t.Fatal("traced coordinator produced no stitched TracePath")
	}
	// Stitching is detached from Solve; Close synchronizes with the
	// write before the file is read.
	f.coord.Close()

	fh, err := os.Open(res.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	doc, err := trace.ReadFleetChrome(fh)
	if err != nil {
		t.Fatalf("stitched timeline does not parse: %v", err)
	}
	if !trace.IsFleetDoc(doc.Meta) {
		t.Fatalf("stitched doc meta carries no fleet_id: %+v", doc.Meta)
	}
	if doc.Meta.FleetID != res.FleetID {
		t.Errorf("doc fleet_id = %q, want %q", doc.Meta.FleetID, res.FleetID)
	}

	// One coordinator process plus one lane per node, PIDs aligned with
	// the node index order.
	if len(doc.Procs) != nodes+1 {
		t.Fatalf("stitched doc has %d procs, want %d", len(doc.Procs), nodes+1)
	}
	if doc.Procs[0].PID != 0 {
		t.Errorf("first proc PID = %d, want 0 (coordinator)", doc.Procs[0].PID)
	}
	for i := 1; i <= nodes; i++ {
		if doc.Procs[i].PID != i {
			t.Errorf("proc %d PID = %d, want %d", i, doc.Procs[i].PID, i)
		}
		if len(doc.Procs[i].Events) == 0 {
			t.Errorf("node proc %d (%s) has no events — node trace not collected", i, doc.Procs[i].Name)
		}
	}

	// The coordinator lane must carry rtt spans for every block and the
	// derived halo-transfer spans for cross-band handoffs.
	var rtts, halos int
	for _, e := range doc.Procs[0].Events {
		switch e.Label {
		case trace.LabelRTT:
			rtts++
		case trace.LabelHaloXfer:
			halos++
		}
	}
	if rtts == 0 {
		t.Error("coordinator lane has no rtt spans")
	}
	if halos == 0 {
		t.Error("coordinator lane has no halo transfer spans")
	}

	rep := trace.AnalyzeFleet(doc)
	if rep.Blocks != rtts {
		t.Errorf("report blocks = %d, coordinator rtt spans = %d", rep.Blocks, rtts)
	}
	if rep.Bands != nodes {
		t.Errorf("report bands = %d, want %d", rep.Bands, nodes)
	}
	if len(rep.Nodes) != nodes+1 {
		t.Errorf("report has %d node lanes, want %d", len(rep.Nodes), nodes+1)
	}
	if rep.RTTNS <= 0 {
		t.Error("report total rtt is zero")
	}
	cr := rep.Critical
	if len(cr.Steps) == 0 {
		t.Fatal("fleet critical path is empty")
	}
	if cr.DominantNode < 0 || cr.DominantNode >= nodes {
		t.Errorf("dominant node = %d, want in [0,%d)", cr.DominantNode, nodes)
	}
	if cr.DominantKind == "" {
		t.Error("critical path has no dominant kind")
	}
	// The path must start at block (0,0) and respect the DAG order.
	first := cr.Steps[0]
	if first.Band != 0 || first.Phase != 0 {
		t.Errorf("critical path starts at band %d phase %d, want (0,0)", first.Band, first.Phase)
	}
	for i := 1; i < len(cr.Steps); i++ {
		p, q := cr.Steps[i-1], cr.Steps[i]
		if !(q.Band == p.Band+1 && q.Phase == p.Phase) && !(q.Band == p.Band && q.Phase == p.Phase+1) {
			t.Errorf("critical path step %d (%d,%d) does not follow (%d,%d)", i, q.Band, q.Phase, p.Band, p.Phase)
		}
	}
}

// TestFleetTraceUntracedNodes pins the degraded mode: the coordinator
// traces but the nodes run without -tracedir, so the stitched doc still
// has every node lane (keeping PID/node-index alignment) — just empty.
func TestFleetTraceUntracedNodes(t *testing.T) {
	dir := t.TempDir()
	f := newTestFleet(t, 2, fleet.Config{TraceDir: dir})
	res, err := f.coord.Solve(context.Background(), &api.SolveRequest{
		Rows: 24, Cols: 24, Mask: "W,N",
		Workload: api.WorkloadSpec{Kind: api.KindMix, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TracePath == "" {
		t.Fatal("no stitched trace written")
	}
	f.coord.Close()
	fh, err := os.Open(res.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	doc, err := trace.ReadFleetChrome(fh)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Procs) != 3 {
		t.Fatalf("procs = %d, want 3 (coordinator + 2 empty node lanes)", len(doc.Procs))
	}
	for _, p := range doc.Procs[1:] {
		if len(p.Events) != 0 {
			t.Errorf("untraced node proc %d unexpectedly has %d events", p.PID, len(p.Events))
		}
	}
	if rep := trace.AnalyzeFleet(doc); rep.Blocks == 0 {
		t.Error("coordinator rtt spans missing from degraded-mode analysis")
	}
}

// TestFleetUntracedCoordinator pins that without a coordinator TraceDir
// no stitched file is written but solves still mint a FleetID for node
// -tracedir tagging.
func TestFleetUntracedCoordinator(t *testing.T) {
	f := newTestFleet(t, 2, fleet.Config{})
	res, err := f.coord.Solve(context.Background(), &api.SolveRequest{
		Rows: 16, Cols: 16, Mask: "W,N",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TracePath != "" {
		t.Errorf("untraced coordinator wrote %q", res.TracePath)
	}
	if res.FleetID == "" {
		t.Error("fleet solve without a FleetID; node traces cannot be tagged")
	}
}
