// Fleet failure-path pins: the detached trace stitch must never block a
// solve and must be waitable (Close), and relocation must exhaust into
// a typed error within its attempt bound — never a hang — when every
// node is gone.
package fleet_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/testutil"
	"repro/internal/trace"
	"repro/lddp/api"
	"repro/lddp/client"
)

// TestFleetStitchDetached is the regression for the PR 8 stitch path:
// trace collection hits every node with a 10s budget, so a node whose
// /v1/trace endpoint hangs must not hold the solve hostage — Solve
// returns as soon as the table is assembled, the stitch runs detached,
// and Close is the only thing that waits for it. Leak-checked: once
// Close returns, the stitch goroutine is fully accounted for.
func TestFleetStitchDetached(t *testing.T) {
	leak := testutil.StartLeakCheck()
	dir := t.TempDir()

	gate := make(chan struct{})
	var servers []*httptest.Server
	var srvs []*server.Server
	var clients []*client.Client
	cfg := fleet.Config{TraceDir: dir}
	for i := 0; i < 2; i++ {
		srv, err := server.New(server.Config{Workers: 2, Chunk: 8, TraceDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		handler := srv.Handler()
		if i == 0 {
			// Node 0's trace endpoint parks until the gate opens — the
			// hung-fetch scenario the detachment exists for.
			inner := handler
			handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasPrefix(r.URL.Path, "/v1/trace/") {
					<-gate
				}
				inner.ServeHTTP(w, r)
			})
		}
		ts := httptest.NewServer(handler)
		c, err := client.New(ts.URL, client.WithCodec(client.CodecBinary))
		if err != nil {
			t.Fatal(err)
		}
		servers, srvs, clients = append(servers, ts), append(srvs, srv), append(clients, c)
		cfg.Nodes = append(cfg.Nodes, c)
	}
	coord, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	type solved struct {
		res *fleet.Result
		err error
	}
	got := make(chan solved, 1)
	go func() {
		res, err := coord.Solve(context.Background(), &api.SolveRequest{
			Rows: 24, Cols: 24, Mask: "W,N",
			Workload: api.WorkloadSpec{Kind: api.KindMix, Seed: 7},
		})
		got <- solved{res, err}
	}()
	var res *fleet.Result
	select {
	case s := <-got:
		if s.err != nil {
			t.Fatal(s.err)
		}
		res = s.res
	case <-time.After(5 * time.Second):
		t.Fatal("Solve blocked behind a hung node trace fetch — stitch not detached")
	}
	if res.TracePath == "" {
		t.Fatal("traced solve announced no TracePath")
	}

	// Release the hung fetch; Close must now wait for the stitch and
	// leave the announced file complete on disk.
	close(gate)
	coord.Close()
	fh, err := os.Open(res.TracePath)
	if err != nil {
		t.Fatalf("stitched file missing after Close: %v", err)
	}
	doc, err := trace.ReadFleetChrome(fh)
	fh.Close()
	if err != nil {
		t.Fatalf("stitched timeline does not parse: %v", err)
	}
	if doc.Meta.FleetID != res.FleetID {
		t.Errorf("stitched doc fleet_id = %q, want %q", doc.Meta.FleetID, res.FleetID)
	}

	for i := range servers {
		servers[i].Close()
		srvs[i].Close()
		clients[i].Close()
	}
	if err := leak.Err(2 * time.Second); err != nil {
		t.Error(err)
	}
}

// TestFleetRelocationExhaustion pins the all-nodes-dead contract: a
// fleet solve whose every relocation target is gone must return a typed
// exhaustion error naming the per-block attempt bound — within the
// bound, never hanging on a dead fleet.
func TestFleetRelocationExhaustion(t *testing.T) {
	cases := []struct {
		name     string
		nodes    int
		attempts int  // MaxBlockAttempts; 0 selects the 2*nodes default
		midSolve bool // kill after the first block instead of before the solve
	}{
		{name: "dead-at-start-2-nodes", nodes: 2},
		{name: "dead-at-start-bounded-attempts", nodes: 3, attempts: 4},
		{name: "dead-mid-solve-2-nodes", nodes: 2, midSolve: true},
		{name: "dead-mid-solve-3-nodes", nodes: 3, midSolve: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var killAll func()
			var once sync.Once
			cfg := fleet.Config{PhaseCols: 5, MaxBlockAttempts: tc.attempts}
			if tc.midSolve {
				cfg.OnBlockDone = func(band, phase, node int) {
					once.Do(func() { killAll() })
				}
			}
			// MaxAttempts 1 keeps each dead-node probe to one connection
			// attempt; the exhaustion bound under test is the
			// coordinator's, not the client's backoff budget.
			f := newTestFleet(t, tc.nodes, cfg, client.WithRetry(client.RetryPolicy{MaxAttempts: 1}))
			killAll = func() {
				for _, ts := range f.servers {
					ts.CloseClientConnections()
					ts.Close()
				}
			}
			if !tc.midSolve {
				once.Do(func() { killAll() })
			}

			wantAttempts := tc.attempts
			if wantAttempts == 0 {
				wantAttempts = 2 * tc.nodes
			}
			errCh := make(chan error, 1)
			go func() {
				_, err := f.coord.Solve(context.Background(), &api.SolveRequest{
					Rows: 20, Cols: 20, Mask: "W,N",
					Workload: api.WorkloadSpec{Kind: api.KindMix, Seed: 11},
				})
				errCh <- err
			}()
			var err error
			select {
			case err = <-errCh:
			case <-time.After(30 * time.Second):
				t.Fatal("fleet solve against a dead fleet hung past the attempt bound")
			}
			if err == nil {
				t.Fatal("fleet solve succeeded with every node dead")
			}
			if want := fmt.Sprintf("block failed on %d nodes", wantAttempts); !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not name the attempt bound %q", err, want)
			}
			if !strings.HasPrefix(err.Error(), "fleet: band ") {
				t.Errorf("error %q is not the typed fleet block failure", err)
			}
		})
	}
}
