package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"

	"repro/lddp/api"
	"repro/lddp/client"
)

// Response headers of POST /v1/fleet/solve reporting the executed plan;
// the body stays a plain api.SolveResponse so any solve client can read
// a fleet answer.
const (
	// BandsHeader reports the number of row bands the solve ran with.
	BandsHeader = "X-Lddp-Fleet-Bands"
	// RelocationsHeader reports how many blocks were moved to another
	// node after a failure.
	RelocationsHeader = "X-Lddp-Fleet-Relocations"
)

// Handler serves POST /v1/fleet/solve over a Coordinator: the body is a
// standard SolveRequest (inline cells refused), the optional ?bands=N
// query overrides the configured band count for this solve, and the 200
// body is a standard SolveResponse whose digest is the assembled-table
// digest — directly comparable to a single-node solve of the same
// request. cmd/lddpd mounts it beside the node mux when -peers is set,
// which keeps the coordinator layered strictly above the node service:
// the server package never learns the fleet exists.
type Handler struct {
	coord    *Coordinator
	errorLog *log.Logger
}

// NewHandler wraps a Coordinator. A nil errorLog selects log.Default().
func NewHandler(coord *Coordinator, errorLog *log.Logger) *Handler {
	if errorLog == nil {
		errorLog = log.Default()
	}
	return &Handler{coord: coord, errorLog: errorLog}
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		h.writeError(w, http.StatusMethodNotAllowed, "invalid", "POST required")
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req api.SolveRequest
	if err := dec.Decode(&req); err != nil {
		h.writeError(w, http.StatusBadRequest, "invalid", fmt.Sprintf("decoding request: %v", err))
		return
	}
	coord := h.coord
	if v := r.URL.Query().Get("bands"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			h.writeError(w, http.StatusBadRequest, "invalid", fmt.Sprintf("bands=%q is not a positive integer", v))
			return
		}
		c2 := *coord
		c2.cfg.Bands = n
		coord = &c2
	}
	res, err := coord.Solve(r.Context(), &req)
	if err != nil {
		h.writeSolveError(w, r, err)
		return
	}
	w.Header().Set(BandsHeader, strconv.Itoa(res.Stats.Bands))
	w.Header().Set(RelocationsHeader, strconv.Itoa(res.Stats.Relocations))
	resp := &api.SolveResponse{
		Status: "done", Rows: res.Rows, Cols: res.Cols,
		Mask: res.Mask, Digest: res.Digest, ElapsedMS: res.ElapsedMS,
	}
	if req.ReturnCells {
		resp.Cells = make([][]int64, res.Rows)
		for i := range resp.Cells {
			resp.Cells[i] = res.Cells[i*res.Cols : (i+1)*res.Cols]
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		h.errorLog.Printf("fleet: writing response: %v", err)
	}
}

// writeSolveError maps a coordinator failure onto the wire: request
// mistakes stay 400, a deadline the caller set maps to 408, and
// anything else — nodes unreachable, relocation budget exhausted — is
// 503, the fleet-level "try again later".
func (h *Handler) writeSolveError(w http.ResponseWriter, r *http.Request, err error) {
	var planErr *PlanError
	switch {
	case errors.As(err, &planErr), errors.Is(err, client.ErrInvalid):
		h.writeError(w, http.StatusBadRequest, "invalid", err.Error())
	case errors.Is(err, client.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		h.writeError(w, http.StatusRequestTimeout, "canceled", err.Error())
	case r.Context().Err() != nil:
		h.writeError(w, 499, "canceled", err.Error())
	default:
		h.writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
	}
}

func (h *Handler) writeError(w http.ResponseWriter, code int, status, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(api.ErrorBody{Status: status, Error: msg}); err != nil {
		h.errorLog.Printf("fleet: writing %d error body: %v", code, err)
	}
}
