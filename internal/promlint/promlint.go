// Package promlint is a strict checker for the Prometheus text
// exposition format (version 0.0.4), used by the server's metrics tests
// and by cmd/lddppromlint in the fleet smoke test. It is deliberately
// stricter than a Prometheus scraper: every sample must belong to a
// metric family with a preceding # TYPE line, duplicate series fail,
// histogram buckets must be cumulative and agree with their _count, and
// malformed names, labels or values fail instead of being skipped —
// lddpd produces this output, so any deviation is a bug, not input
// noise.
package promlint

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Problem is one lint finding.
type Problem struct {
	// Line is the 1-based line number; 0 for document-level findings.
	Line int
	Msg  string
}

func (p Problem) String() string {
	if p.Line == 0 {
		return p.Msg
	}
	return fmt.Sprintf("line %d: %s", p.Line, p.Msg)
}

// Result summarizes a linted document.
type Result struct {
	// Families maps metric family name to its declared TYPE.
	Families map[string]string
	// Samples counts sample lines.
	Samples int
	// Problems lists every finding; empty means the document passed.
	Problems []Problem
}

// Err folds the problems into a single error, nil when clean.
func (r *Result) Err() error {
	if len(r.Problems) == 0 {
		return nil
	}
	msgs := make([]string, len(r.Problems))
	for i, p := range r.Problems {
		msgs[i] = p.String()
	}
	return fmt.Errorf("promlint: %d problem(s):\n  %s", len(r.Problems), strings.Join(msgs, "\n  "))
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

type series struct {
	line   int
	family string
	labels string // canonical sorted label rendering
	le     string // value of the le label, histograms only
	value  float64
}

// Lint checks one exposition document.
func Lint(r io.Reader) (*Result, error) {
	res := &Result{Families: map[string]string{}}
	helps := map[string]bool{}
	var samples []series
	seen := map[string]int{} // family + canonical labels -> first line

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			lintComment(res, helps, n, line)
			continue
		}
		s, ok := lintSample(res, n, line)
		if !ok {
			continue
		}
		family := sampleFamily(res.Families, s.family)
		if res.Families[family] == "" {
			res.add(n, fmt.Sprintf("sample %q precedes its # TYPE line (or the family was never declared)", s.family))
		}
		key := s.family + "{" + s.labels + "}"
		if first, dup := seen[key]; dup {
			res.add(n, fmt.Sprintf("duplicate series %s (first at line %d)", key, first))
		} else {
			seen[key] = n
		}
		s.line = n
		samples = append(samples, s)
		res.Samples++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		res.add(0, "empty document")
	}
	lintHistograms(res, samples)
	return res, nil
}

func (r *Result) add(line int, msg string) {
	r.Problems = append(r.Problems, Problem{Line: line, Msg: msg})
}

func lintComment(res *Result, helps map[string]bool, n int, line string) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		// "#..." without a space is a plain comment; the format allows it.
		return
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			res.add(n, "malformed # TYPE line (want \"# TYPE <name> <type>\")")
			return
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			res.add(n, fmt.Sprintf("invalid metric name %q in # TYPE", name))
		}
		if !validTypes[typ] {
			res.add(n, fmt.Sprintf("invalid metric type %q for %q", typ, name))
		}
		if _, dup := res.Families[name]; dup {
			res.add(n, fmt.Sprintf("duplicate # TYPE for %q", name))
			return
		}
		res.Families[name] = typ
	case "HELP":
		if len(fields) < 3 {
			res.add(n, "malformed # HELP line (want \"# HELP <name> <text>\")")
			return
		}
		name := fields[2]
		if !validMetricName(name) {
			res.add(n, fmt.Sprintf("invalid metric name %q in # HELP", name))
		}
		if helps[name] {
			res.add(n, fmt.Sprintf("duplicate # HELP for %q", name))
		}
		helps[name] = true
	}
}

// lintSample parses one sample line: name[{labels}] value [timestamp].
func lintSample(res *Result, n int, line string) (series, bool) {
	var s series
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		res.add(n, fmt.Sprintf("malformed sample line %q", line))
		return s, false
	}
	s.family = rest[:i]
	if !validMetricName(s.family) {
		res.add(n, fmt.Sprintf("invalid metric name %q", s.family))
		return s, false
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			res.add(n, fmt.Sprintf("unterminated label set in %q", line))
			return s, false
		}
		labels, ok := lintLabels(res, n, rest[1:end])
		if !ok {
			return s, false
		}
		pairs := make([]string, 0, len(labels))
		for k, v := range labels {
			if k == "le" {
				s.le = v
			}
			pairs = append(pairs, k+"="+strconv.Quote(v))
		}
		sort.Strings(pairs)
		s.labels = strings.Join(pairs, ",")
		rest = rest[end+1:]
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		res.add(n, fmt.Sprintf("want \"value [timestamp]\" after metric in %q", line))
		return s, false
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		res.add(n, fmt.Sprintf("invalid sample value %q: %v", fields[0], err))
		return s, false
	}
	s.value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			res.add(n, fmt.Sprintf("invalid timestamp %q", fields[1]))
			return s, false
		}
	}
	return s, true
}

// lintLabels parses `k="v",k2="v2"` strictly (quoted values, \\ \" \n
// escapes only).
func lintLabels(res *Result, n int, body string) (map[string]string, bool) {
	labels := map[string]string{}
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			res.add(n, fmt.Sprintf("malformed label pair near %q", body))
			return nil, false
		}
		name := body[:eq]
		if !validLabelName(name) {
			res.add(n, fmt.Sprintf("invalid label name %q", name))
			return nil, false
		}
		if _, dup := labels[name]; dup {
			res.add(n, fmt.Sprintf("duplicate label %q", name))
			return nil, false
		}
		body = body[eq+1:]
		if body == "" || body[0] != '"' {
			res.add(n, fmt.Sprintf("label %q value must be quoted", name))
			return nil, false
		}
		val, rest, ok := scanQuoted(body)
		if !ok {
			res.add(n, fmt.Sprintf("bad quoted value for label %q", name))
			return nil, false
		}
		labels[name] = val
		body = rest
		if body != "" {
			if body[0] != ',' {
				res.add(n, fmt.Sprintf("want ',' between labels, got %q", body))
				return nil, false
			}
			body = body[1:]
		}
	}
	return labels, true
}

// scanQuoted consumes a leading quoted string with the exposition
// format's three escapes and returns its value and the remainder.
func scanQuoted(s string) (val, rest string, ok bool) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", false
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", false
			}
		case '"':
			return b.String(), s[i+1:], true
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", false
}

// parsePromValue parses a Prometheus sample value (Go float syntax plus
// +Inf/-Inf/NaN).
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// sampleFamily maps a sample name to its metric family: histogram and
// summary samples append _bucket/_sum/_count to the declared family
// name.
func sampleFamily(families map[string]string, name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if t := families[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// lintHistograms checks every histogram family: le labels parse, bucket
// counts are cumulative (non-decreasing in le order), a +Inf bucket
// exists, and _count equals it.
func lintHistograms(res *Result, samples []series) {
	type hist struct {
		buckets []series
		count   *series
		line    int
	}
	hists := map[string]*hist{}
	famOf := func(s series) (string, string) {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(s.family, suffix); base != s.family {
				return base, suffix
			}
		}
		return s.family, ""
	}
	for _, s := range samples {
		base, suffix := famOf(s)
		if res.Families[base] != "histogram" {
			continue
		}
		h := hists[base]
		if h == nil {
			h = &hist{line: s.line}
			hists[base] = h
		}
		switch suffix {
		case "_bucket":
			h.buckets = append(h.buckets, s)
		case "_count":
			c := s
			h.count = &c
		}
	}
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := hists[name]
		var inf *series
		bounds := make([]float64, len(h.buckets))
		for i, b := range h.buckets {
			if b.le == "" {
				res.add(b.line, fmt.Sprintf("histogram %s bucket without le label", name))
				continue
			}
			v, err := parsePromValue(b.le)
			if err != nil {
				res.add(b.line, fmt.Sprintf("histogram %s le=%q does not parse", name, b.le))
				continue
			}
			bounds[i] = v
			if math.IsInf(v, 1) {
				b := h.buckets[i]
				inf = &b
			}
		}
		for i := 1; i < len(h.buckets); i++ {
			if bounds[i] < bounds[i-1] {
				res.add(h.buckets[i].line, fmt.Sprintf("histogram %s buckets out of le order", name))
			}
			if h.buckets[i].value < h.buckets[i-1].value {
				res.add(h.buckets[i].line, fmt.Sprintf("histogram %s bucket counts not cumulative", name))
			}
		}
		if inf == nil {
			res.add(h.line, fmt.Sprintf("histogram %s missing le=\"+Inf\" bucket", name))
			continue
		}
		if h.count == nil {
			res.add(h.line, fmt.Sprintf("histogram %s missing _count", name))
		} else if h.count.value != inf.value {
			res.add(h.count.line, fmt.Sprintf("histogram %s _count %v != +Inf bucket %v", name, h.count.value, inf.value))
		}
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
