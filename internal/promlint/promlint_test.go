package promlint

import (
	"strings"
	"testing"
)

func lint(t *testing.T, doc string) *Result {
	t.Helper()
	res, err := Lint(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	return res
}

func TestLintClean(t *testing.T) {
	doc := `# HELP lddpd_solves_total Completed solves.
# TYPE lddpd_solves_total counter
lddpd_solves_total 4
# HELP lddpd_wire_requests_total Requests per codec.
# TYPE lddpd_wire_requests_total counter
lddpd_wire_requests_total{codec="json"} 1
lddpd_wire_requests_total{codec="binary"} 3
# HELP lddpd_queue_wait_seconds Queue wait.
# TYPE lddpd_queue_wait_seconds histogram
lddpd_queue_wait_seconds_bucket{le="0.001"} 2
lddpd_queue_wait_seconds_bucket{le="1"} 3
lddpd_queue_wait_seconds_bucket{le="+Inf"} 4
lddpd_queue_wait_seconds_sum 2.5
lddpd_queue_wait_seconds_count 4
# HELP lddpd_inflight_solves In-flight solves.
# TYPE lddpd_inflight_solves gauge
lddpd_inflight_solves 0
`
	res := lint(t, doc)
	if err := res.Err(); err != nil {
		t.Fatalf("clean document flagged: %v", err)
	}
	if res.Samples != 9 {
		t.Fatalf("Samples = %d, want 9", res.Samples)
	}
	if res.Families["lddpd_queue_wait_seconds"] != "histogram" {
		t.Fatalf("family types = %v", res.Families)
	}
}

func TestLintFindings(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"duplicate series",
			"# TYPE a counter\na 1\na 2\n",
			"duplicate series"},
		{"duplicate series with labels",
			"# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n",
			"duplicate series"},
		{"missing TYPE",
			"a 1\n",
			"precedes its # TYPE"},
		{"duplicate TYPE",
			"# TYPE a counter\n# TYPE a counter\na 1\n",
			"duplicate # TYPE"},
		{"bad type name",
			"# TYPE a histo\na 1\n",
			"invalid metric type"},
		{"bad metric name",
			"# TYPE a counter\n0a 1\n",
			"invalid metric name"},
		{"bad value",
			"# TYPE a counter\na x\n",
			"invalid sample value"},
		{"unquoted label",
			"# TYPE a counter\na{x=1} 1\n",
			"must be quoted"},
		{"reserved label name",
			"# TYPE a counter\na{__x=\"1\"} 1\n",
			"invalid label name"},
		{"bucket order",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"out of le order"},
		{"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative"},
		{"missing inf bucket",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
			"missing le=\"+Inf\""},
		{"count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
			"_count 4 != +Inf bucket 5"},
		{"empty", "", "empty document"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := lint(t, tc.doc)
			err := res.Err()
			if err == nil {
				t.Fatalf("document passed, want %q finding", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("findings = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestLintEscapes(t *testing.T) {
	res := lint(t, "# TYPE a counter\na{x=\"q\\\"uo\\\\te\\n\"} 1\n")
	if err := res.Err(); err != nil {
		t.Fatalf("escaped labels flagged: %v", err)
	}
	if res2 := lint(t, "# TYPE a counter\na{x=\"bad\\q\"} 1\n"); res2.Err() == nil {
		t.Fatal("invalid escape passed")
	}
}
