package table

import (
	"testing"
	"testing/quick"
)

func TestGrid3RoundTrip(t *testing.T) {
	for _, layout := range []Layout3{Lex3{}, NewPlaneMajor3(4, 5, 6)} {
		g := NewGrid3[int](4, 5, 6, layout)
		for i := 0; i < 4; i++ {
			for j := 0; j < 5; j++ {
				for k := 0; k < 6; k++ {
					g.Set(i, j, k, i*100+j*10+k)
				}
			}
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 5; j++ {
				for k := 0; k < 6; k++ {
					if got := g.At(i, j, k); got != i*100+j*10+k {
						t.Fatalf("%s: At(%d,%d,%d) = %d", layout.Name(), i, j, k, got)
					}
				}
			}
		}
	}
}

func TestGrid3Dims(t *testing.T) {
	g := NewGrid3[int8](2, 3, 4, nil)
	if g.NX() != 2 || g.NY() != 3 || g.NZ() != 4 || g.Len() != 24 {
		t.Error("dims wrong")
	}
	if g.Layout().Name() != "lex3" {
		t.Error("default layout should be lex3")
	}
	if !g.InBounds(1, 2, 3) || g.InBounds(2, 0, 0) || g.InBounds(0, -1, 0) {
		t.Error("InBounds wrong")
	}
}

func TestGrid3PanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGrid3[int](0, 2, 2, nil)
}

// Property: both layouts are bijections and PlaneSize partitions the box.
func TestLayout3BijectionProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		nx := int(a%7) + 1
		ny := int(b%7) + 1
		nz := int(c%7) + 1
		for _, l := range []Layout3{Lex3{}, NewPlaneMajor3(nx, ny, nz)} {
			seen := make([]bool, nx*ny*nz)
			for i := 0; i < nx; i++ {
				for j := 0; j < ny; j++ {
					for k := 0; k < nz; k++ {
						idx := l.Index3(nx, ny, nz, i, j, k)
						if idx < 0 || idx >= len(seen) || seen[idx] {
							return false
						}
						seen[idx] = true
					}
				}
			}
		}
		total := 0
		for s := 0; s <= nx+ny+nz-3; s++ {
			total += PlaneSize(nx, ny, nz, s)
		}
		return total == nx*ny*nz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Plane-major must store each plane contiguously in (i, j) order.
func TestPlaneMajor3Contiguity(t *testing.T) {
	nx, ny, nz := 4, 6, 5
	l := NewPlaneMajor3(nx, ny, nz)
	next := 0
	for s := 0; s <= nx+ny+nz-3; s++ {
		for i := max(0, s-(ny-1)-(nz-1)); i <= min(nx-1, s); i++ {
			firstJ, count := PlaneRowSpan(ny, nz, s, i)
			for jj := 0; jj < count; jj++ {
				j := firstJ + jj
				k := s - i - j
				if got := l.Index3(nx, ny, nz, i, j, k); got != next {
					t.Fatalf("plane %d cell (%d,%d,%d): index %d, want %d", s, i, j, k, got, next)
				}
				next++
			}
		}
	}
	if next != nx*ny*nz {
		t.Errorf("covered %d cells, want %d", next, nx*ny*nz)
	}
}

func TestPlaneMajor3DimensionMismatchPanics(t *testing.T) {
	l := NewPlaneMajor3(3, 3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Index3(4, 3, 3, 0, 0, 0)
}

func TestEqual3(t *testing.T) {
	a := NewGrid3[int](2, 2, 2, nil)
	b := NewGrid3[int](2, 2, 2, NewPlaneMajor3(2, 2, 2))
	a.Set(1, 1, 0, 7)
	b.Set(1, 1, 0, 7)
	if !Equal3(a, b) {
		t.Error("equal grids reported unequal")
	}
	b.Set(0, 0, 1, 9)
	if Equal3(a, b) {
		t.Error("unequal grids reported equal")
	}
	c := NewGrid3[int](2, 2, 3, nil)
	if Equal3(a, c) {
		t.Error("different shapes reported equal")
	}
}
