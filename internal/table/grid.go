// Package table provides the DP-table storage used by the LDDP framework:
// a generic dense 2-D grid plus pattern-aware memory layouts.
//
// Paper §IV-B observes that GPU global-memory access is only efficient when
// the threads of one iteration touch contiguous addresses, and therefore
// stores "all the cells marked with the same number ... together in a one
// dimensional array". The Layout types implement exactly that: bijective
// maps from (row, col) to a position in a flat array such that each
// wavefront of the corresponding pattern occupies a contiguous span.
package table

import "fmt"

// Grid is a dense rows x cols table of T backed by a single flat slice in
// the order defined by its Layout.
type Grid[T any] struct {
	rows, cols int
	layout     Layout
	data       []T
}

// NewGrid allocates a zeroed grid with the given layout. A nil layout means
// RowMajor. NewGrid panics on non-positive dimensions: every LDDP problem
// has at least one cell, so this is a programming error.
func NewGrid[T any](rows, cols int, layout Layout) *Grid[T] {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("table: invalid grid size %dx%d", rows, cols))
	}
	if layout == nil {
		layout = RowMajor{}
	}
	return &Grid[T]{
		rows:   rows,
		cols:   cols,
		layout: layout,
		data:   make([]T, rows*cols),
	}
}

// Rows returns the number of rows.
func (g *Grid[T]) Rows() int { return g.rows }

// Cols returns the number of columns.
func (g *Grid[T]) Cols() int { return g.cols }

// Len returns the total number of cells.
func (g *Grid[T]) Len() int { return g.rows * g.cols }

// Layout returns the grid's memory layout.
func (g *Grid[T]) Layout() Layout { return g.layout }

// At returns the value at (i, j). Bounds are checked by the slice access
// after the layout map; layouts are bijections onto [0, rows*cols).
func (g *Grid[T]) At(i, j int) T {
	return g.data[g.layout.Index(g.rows, g.cols, i, j)]
}

// Set stores v at (i, j).
func (g *Grid[T]) Set(i, j int, v T) {
	g.data[g.layout.Index(g.rows, g.cols, i, j)] = v
}

// RowMajorData returns the backing slice when the grid uses the RowMajor
// layout, in which cell (i, j) lives at data[i*cols+j]; it returns nil for
// any other layout. Hot kernels use it to bypass the per-cell Layout.Index
// dispatch of At/Set.
func (g *Grid[T]) RowMajorData() []T {
	if _, ok := g.layout.(RowMajor); ok {
		return g.data
	}
	return nil
}

// InBounds reports whether (i, j) is a valid cell.
func (g *Grid[T]) InBounds(i, j int) bool {
	return i >= 0 && i < g.rows && j >= 0 && j < g.cols
}

// Fill sets every cell to f(i, j). A nil f zeroes the grid.
func (g *Grid[T]) Fill(f func(i, j int) T) {
	if f == nil {
		clear(g.data)
		return
	}
	for i := 0; i < g.rows; i++ {
		for j := 0; j < g.cols; j++ {
			g.Set(i, j, f(i, j))
		}
	}
}

// Clone returns a deep copy with the same layout.
func (g *Grid[T]) Clone() *Grid[T] {
	c := &Grid[T]{rows: g.rows, cols: g.cols, layout: g.layout, data: make([]T, len(g.data))}
	copy(c.data, g.data)
	return c
}

// Relayout returns a copy of the grid stored under a different layout.
// Cell values are preserved; only the flat order changes.
func (g *Grid[T]) Relayout(layout Layout) *Grid[T] {
	out := NewGrid[T](g.rows, g.cols, layout)
	for i := 0; i < g.rows; i++ {
		for j := 0; j < g.cols; j++ {
			out.Set(i, j, g.At(i, j))
		}
	}
	return out
}

// Row returns a freshly allocated copy of row i in column order.
func (g *Grid[T]) Row(i int) []T {
	out := make([]T, g.cols)
	for j := 0; j < g.cols; j++ {
		out[j] = g.At(i, j)
	}
	return out
}

// Col returns a freshly allocated copy of column j in row order.
func (g *Grid[T]) Col(j int) []T {
	out := make([]T, g.rows)
	for i := 0; i < g.rows; i++ {
		out[i] = g.At(i, j)
	}
	return out
}

// Equal reports whether two grids have identical dimensions and cell
// values under eq, regardless of layout.
func Equal[T any](a, b *Grid[T], eq func(x, y T) bool) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			if !eq(a.At(i, j), b.At(i, j)) {
				return false
			}
		}
	}
	return true
}

// EqualComparable is Equal specialized for comparable cell types.
func EqualComparable[T comparable](a, b *Grid[T]) bool {
	return Equal(a, b, func(x, y T) bool { return x == y })
}
