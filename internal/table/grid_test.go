package table

import (
	"testing"
)

func TestNewGridZeroed(t *testing.T) {
	g := NewGrid[int](3, 4, nil)
	if g.Rows() != 3 || g.Cols() != 4 || g.Len() != 12 {
		t.Fatalf("dims = %dx%d len %d", g.Rows(), g.Cols(), g.Len())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if g.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %d, want 0", i, j, g.At(i, j))
			}
		}
	}
	if g.Layout().Name() != "row-major" {
		t.Errorf("default layout = %q, want row-major", g.Layout().Name())
	}
}

func TestNewGridPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid(%d,%d) should panic", dims[0], dims[1])
				}
			}()
			NewGrid[int](dims[0], dims[1], nil)
		}()
	}
}

func TestGridSetAtRoundTrip(t *testing.T) {
	layouts := []Layout{RowMajor{}, ColMajor{}, AntiDiagMajor{}, LMajor{}, NewKnightMajor(5, 7)}
	for _, l := range layouts {
		g := NewGrid[int](5, 7, l)
		for i := 0; i < 5; i++ {
			for j := 0; j < 7; j++ {
				g.Set(i, j, 100*i+j)
			}
		}
		for i := 0; i < 5; i++ {
			for j := 0; j < 7; j++ {
				if got := g.At(i, j); got != 100*i+j {
					t.Errorf("%s: At(%d,%d) = %d, want %d", l.Name(), i, j, got, 100*i+j)
				}
			}
		}
	}
}

func TestGridFill(t *testing.T) {
	g := NewGrid[int](4, 4, AntiDiagMajor{})
	g.Fill(func(i, j int) int { return i*10 + j })
	if g.At(2, 3) != 23 {
		t.Errorf("Fill: At(2,3) = %d, want 23", g.At(2, 3))
	}
	g.Fill(nil)
	if g.At(2, 3) != 0 {
		t.Errorf("Fill(nil): At(2,3) = %d, want 0", g.At(2, 3))
	}
}

func TestGridCloneIndependent(t *testing.T) {
	g := NewGrid[int](2, 2, nil)
	g.Set(0, 0, 9)
	c := g.Clone()
	c.Set(0, 0, 5)
	if g.At(0, 0) != 9 {
		t.Errorf("Clone aliases original: %d", g.At(0, 0))
	}
	if c.At(0, 0) != 5 || c.At(1, 1) != 0 {
		t.Error("Clone did not copy values")
	}
}

func TestGridRelayoutPreservesValues(t *testing.T) {
	g := NewGrid[int](6, 5, RowMajor{})
	g.Fill(func(i, j int) int { return i*31 + j*7 })
	for _, l := range []Layout{ColMajor{}, AntiDiagMajor{}, LMajor{}, NewKnightMajor(6, 5)} {
		r := g.Relayout(l)
		if !EqualComparable(g, r) {
			t.Errorf("Relayout(%s) changed cell values", l.Name())
		}
		if r.Layout().Name() != l.Name() {
			t.Errorf("Relayout(%s) kept old layout", l.Name())
		}
	}
}

func TestGridRowCol(t *testing.T) {
	g := NewGrid[int](3, 4, LMajor{})
	g.Fill(func(i, j int) int { return i*4 + j })
	row := g.Row(1)
	want := []int{4, 5, 6, 7}
	for k := range want {
		if row[k] != want[k] {
			t.Errorf("Row(1)[%d] = %d, want %d", k, row[k], want[k])
		}
	}
	col := g.Col(2)
	wantCol := []int{2, 6, 10}
	for k := range wantCol {
		if col[k] != wantCol[k] {
			t.Errorf("Col(2)[%d] = %d, want %d", k, col[k], wantCol[k])
		}
	}
}

func TestGridInBounds(t *testing.T) {
	g := NewGrid[int](2, 3, nil)
	cases := []struct {
		i, j int
		want bool
	}{
		{0, 0, true}, {1, 2, true}, {-1, 0, false}, {0, -1, false},
		{2, 0, false}, {0, 3, false},
	}
	for _, c := range cases {
		if got := g.InBounds(c.i, c.j); got != c.want {
			t.Errorf("InBounds(%d,%d) = %v, want %v", c.i, c.j, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	a := NewGrid[int](2, 2, RowMajor{})
	b := NewGrid[int](2, 2, ColMajor{})
	a.Fill(func(i, j int) int { return i + j })
	b.Fill(func(i, j int) int { return i + j })
	if !EqualComparable(a, b) {
		t.Error("grids with equal values under different layouts should be Equal")
	}
	b.Set(1, 1, 99)
	if EqualComparable(a, b) {
		t.Error("differing grids reported Equal")
	}
	c := NewGrid[int](2, 3, nil)
	if EqualComparable(a, c) {
		t.Error("different-shape grids reported Equal")
	}
}
