package table

import "fmt"

// Layout3 maps 3-D cell coordinates to positions in a flat backing array:
// a bijection from the box onto [0, nx*ny*nz).
type Layout3 interface {
	Index3(nx, ny, nz, i, j, k int) int
	Name() string
}

// Lex3 is lexicographic (i, then j, then k) storage: the natural layout
// for sequential fills.
type Lex3 struct{}

// Index3 implements Layout3.
func (Lex3) Index3(nx, ny, nz, i, j, k int) int { return (i*ny+j)*nz + k }

// Name implements Layout3.
func (Lex3) Name() string { return "lex3" }

// PlaneMajor3 stores the anti-diagonal planes i+j+k = s contiguously, each
// plane ordered by (i, then j): the coalescing-friendly layout for
// plane-wavefront execution of 3-D LDDP problems, the direct analogue of
// AntiDiagMajor. Built for specific dimensions because the plane prefix
// sums have no convenient closed form.
type PlaneMajor3 struct {
	nx, ny, nz int
	// planeOff[s] is the flat position of the first cell of plane s.
	planeOff []int
	// rowOff[s*nx+i] is the offset within plane s of the first cell with
	// first coordinate i (0 when the pair is empty).
	rowOff []int
}

// NewPlaneMajor3 builds the plane-major layout for an nx x ny x nz box.
func NewPlaneMajor3(nx, ny, nz int) *PlaneMajor3 {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("table: invalid 3-D layout size %dx%dx%d", nx, ny, nz))
	}
	planes := nx + ny + nz - 2
	l := &PlaneMajor3{
		nx: nx, ny: ny, nz: nz,
		planeOff: make([]int, planes+1),
		rowOff:   make([]int, planes*nx),
	}
	for s := 0; s < planes; s++ {
		cells := 0
		for i := maxInt(0, s-(ny-1)-(nz-1)); i <= minInt(nx-1, s); i++ {
			l.rowOff[s*nx+i] = cells
			_, n := AntiDiagSpan(ny, nz, s-i)
			cells += n
		}
		l.planeOff[s+1] = l.planeOff[s] + cells
	}
	return l
}

// Name implements Layout3.
func (l *PlaneMajor3) Name() string { return "plane-major3" }

// Index3 implements Layout3.
func (l *PlaneMajor3) Index3(nx, ny, nz, i, j, k int) int {
	if nx != l.nx || ny != l.ny || nz != l.nz {
		panic(fmt.Sprintf("table: plane layout built for %dx%dx%d used with %dx%dx%d",
			l.nx, l.ny, l.nz, nx, ny, nz))
	}
	s := i + j + k
	first, _ := AntiDiagSpan(ny, nz, s-i)
	return l.planeOff[s] + l.rowOff[s*nx+i] + (j - first)
}

// PlaneSize returns the number of cells on plane s of an nx x ny x nz box.
func PlaneSize(nx, ny, nz, s int) int {
	total := 0
	for i := maxInt(0, s-(ny-1)-(nz-1)); i <= minInt(nx-1, s); i++ {
		_, n := AntiDiagSpan(ny, nz, s-i)
		total += n
	}
	return total
}

// PlaneRowSpan returns, for plane s and first coordinate i, the first j
// and the count of cells (i, j, s-i-j) within the box.
func PlaneRowSpan(ny, nz, s, i int) (firstJ, count int) {
	return AntiDiagSpan(ny, nz, s-i)
}

// Grid3 is a dense nx x ny x nz table of T.
type Grid3[T any] struct {
	nx, ny, nz int
	layout     Layout3
	data       []T
}

// NewGrid3 allocates a zeroed 3-D grid; nil layout means Lex3.
func NewGrid3[T any](nx, ny, nz int, layout Layout3) *Grid3[T] {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("table: invalid grid size %dx%dx%d", nx, ny, nz))
	}
	if layout == nil {
		layout = Lex3{}
	}
	return &Grid3[T]{nx: nx, ny: ny, nz: nz, layout: layout, data: make([]T, nx*ny*nz)}
}

// NX returns the first dimension.
func (g *Grid3[T]) NX() int { return g.nx }

// NY returns the second dimension.
func (g *Grid3[T]) NY() int { return g.ny }

// NZ returns the third dimension.
func (g *Grid3[T]) NZ() int { return g.nz }

// Len returns the total cell count.
func (g *Grid3[T]) Len() int { return g.nx * g.ny * g.nz }

// Layout returns the grid's memory layout.
func (g *Grid3[T]) Layout() Layout3 { return g.layout }

// At returns the value at (i, j, k).
func (g *Grid3[T]) At(i, j, k int) T {
	return g.data[g.layout.Index3(g.nx, g.ny, g.nz, i, j, k)]
}

// Set stores v at (i, j, k).
func (g *Grid3[T]) Set(i, j, k int, v T) {
	g.data[g.layout.Index3(g.nx, g.ny, g.nz, i, j, k)] = v
}

// InBounds reports whether (i, j, k) is a valid cell.
func (g *Grid3[T]) InBounds(i, j, k int) bool {
	return i >= 0 && i < g.nx && j >= 0 && j < g.ny && k >= 0 && k < g.nz
}

// Equal3 reports whether two 3-D grids hold identical values.
func Equal3[T comparable](a, b *Grid3[T]) bool {
	if a.nx != b.nx || a.ny != b.ny || a.nz != b.nz {
		return false
	}
	for i := 0; i < a.nx; i++ {
		for j := 0; j < a.ny; j++ {
			for k := 0; k < a.nz; k++ {
				if a.At(i, j, k) != b.At(i, j, k) {
					return false
				}
			}
		}
	}
	return true
}
