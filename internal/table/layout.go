package table

import "fmt"

// Layout maps 2-D cell coordinates to positions in a flat backing array.
// Implementations are bijections from [0,rows) x [0,cols) onto
// [0, rows*cols). A layout is chosen so that the cells of one wavefront of
// the target dependency pattern occupy a contiguous span, which is what
// makes GPU global-memory accesses coalesced (paper §IV-B).
type Layout interface {
	// Index returns the flat position of cell (i, j) in a rows x cols grid.
	Index(rows, cols, i, j int) int
	// Name returns a short identifier ("row-major", "antidiag-major", ...).
	Name() string
}

// RowMajor stores rows contiguously: the natural layout for the Horizontal
// pattern, whose wavefronts are rows.
type RowMajor struct{}

// Index implements Layout.
func (RowMajor) Index(rows, cols, i, j int) int { return i*cols + j }

// Name implements Layout.
func (RowMajor) Name() string { return "row-major" }

// ColMajor stores columns contiguously: the natural layout for the Vertical
// pattern, whose wavefronts are columns.
type ColMajor struct{}

// Index implements Layout.
func (ColMajor) Index(rows, cols, i, j int) int { return j*rows + i }

// Name implements Layout.
func (ColMajor) Name() string { return "col-major" }

// AntiDiagMajor stores anti-diagonals (cells with equal i+j) contiguously,
// each diagonal ordered by increasing row. This is the coalescing-friendly
// layout for the Anti-Diagonal pattern.
type AntiDiagMajor struct{}

// Name implements Layout.
func (AntiDiagMajor) Name() string { return "antidiag-major" }

// Index implements Layout.
func (AntiDiagMajor) Index(rows, cols, i, j int) int {
	d := i + j
	return antiDiagOffset(rows, cols, d) + (i - maxInt(0, d-(cols-1)))
}

// antiDiagOffset returns the flat position of the first cell of
// anti-diagonal d in a rows x cols grid. Derivation: diagonal d holds
// min(d, rows-1, cols-1, rows+cols-2-d)+1 cells; the cumulative count has a
// closed form in three regimes (growing, constant-width, shrinking).
func antiDiagOffset(rows, cols, d int) int {
	m, bigM := rows, cols
	if m > bigM {
		m, bigM = bigM, m
	}
	switch {
	case d < m:
		return d * (d + 1) / 2
	case d < bigM:
		return m*(m-1)/2 + (d-(m-1))*m
	default:
		// Count cells in diagonals >= d: they shrink 1 per step down to 1
		// cell at d = rows+cols-2.
		remaining := rows + cols - 1 - d
		suffix := remaining * (remaining + 1) / 2
		return rows*cols - suffix
	}
}

// AntiDiagSpan returns the first row and the cell count of anti-diagonal d.
func AntiDiagSpan(rows, cols, d int) (firstRow, count int) {
	firstRow = maxInt(0, d-(cols-1))
	lastRow := minInt(rows-1, d)
	if lastRow < firstRow {
		return firstRow, 0
	}
	return firstRow, lastRow - firstRow + 1
}

// LMajor stores inverted-L wavefronts (cells with equal min(i, j))
// contiguously: front k is the row segment (k, k..cols-1) followed by the
// column segment (k+1..rows-1, k). This is the coalescing-friendly layout
// for the Inverted-L pattern.
type LMajor struct{}

// Name implements Layout.
func (LMajor) Name() string { return "l-major" }

// Index implements Layout.
func (LMajor) Index(rows, cols, i, j int) int {
	k := minInt(i, j)
	off := lOffset(rows, cols, k)
	if i == k {
		return off + (j - k)
	}
	return off + (cols - k) + (i - k - 1)
}

// lOffset returns the flat position of the first cell of front k. Front e
// holds (cols-e) + (rows-e-1) cells, so the prefix sum telescopes to
// k*(rows+cols-1) - k*(k-1).
func lOffset(rows, cols, k int) int {
	return k*(rows+cols-1) - k*(k-1)
}

// LSpan returns the number of cells on inverted-L front k.
func LSpan(rows, cols, k int) int {
	if k < 0 || k >= minInt(rows, cols) {
		return 0
	}
	return (cols - k) + (rows - k - 1)
}

// KnightMajor stores knight-move wavefronts (cells with equal 2i+j)
// contiguously, each front ordered by increasing row. Unlike the other
// layouts the prefix sums have no convenient closed form, so a KnightMajor
// is constructed for specific dimensions with NewKnightMajor.
type KnightMajor struct {
	rows, cols int
	offsets    []int // offsets[t] = flat position of first cell of front t
}

// NewKnightMajor builds the knight-move layout for a rows x cols grid.
func NewKnightMajor(rows, cols int) *KnightMajor {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("table: invalid knight layout size %dx%d", rows, cols))
	}
	fronts := KnightFronts(rows, cols)
	offsets := make([]int, fronts+1)
	for t := 0; t < fronts; t++ {
		_, count := KnightSpan(rows, cols, t)
		offsets[t+1] = offsets[t] + count
	}
	return &KnightMajor{rows: rows, cols: cols, offsets: offsets}
}

// Name implements Layout.
func (k *KnightMajor) Name() string { return "knight-major" }

// Index implements Layout.
func (k *KnightMajor) Index(rows, cols, i, j int) int {
	if rows != k.rows || cols != k.cols {
		panic(fmt.Sprintf("table: knight layout built for %dx%d used with %dx%d",
			k.rows, k.cols, rows, cols))
	}
	t := 2*i + j
	firstRow, _ := KnightSpan(rows, cols, t)
	return k.offsets[t] + (i - firstRow)
}

// KnightFronts returns the number of knight-move wavefronts in a rows x
// cols grid: t = 2i+j ranges over [0, 2(rows-1)+cols-1].
func KnightFronts(rows, cols int) int { return 2*(rows-1) + cols }

// KnightSpan returns the first row and cell count of knight front t: the
// cells (i, t-2i) with both coordinates in bounds.
func KnightSpan(rows, cols, t int) (firstRow, count int) {
	// Need 0 <= t-2i <= cols-1  =>  (t-cols+1)/2 <= i <= t/2.
	firstRow = maxInt(0, ceilDivInt(t-(cols-1), 2))
	lastRow := minInt(rows-1, t/2)
	if lastRow < firstRow {
		return firstRow, 0
	}
	return firstRow, lastRow - firstRow + 1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ceilDivInt returns ceil(a/b) for positive b and any a.
func ceilDivInt(a, b int) int {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}
