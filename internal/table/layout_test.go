package table

import (
	"testing"
	"testing/quick"
)

// checkBijection verifies a layout maps the grid onto [0, rows*cols)
// exactly once.
func checkBijection(t *testing.T, l Layout, rows, cols int) {
	t.Helper()
	seen := make([]bool, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			idx := l.Index(rows, cols, i, j)
			if idx < 0 || idx >= rows*cols {
				t.Fatalf("%s %dx%d: Index(%d,%d) = %d out of range", l.Name(), rows, cols, i, j, idx)
			}
			if seen[idx] {
				t.Fatalf("%s %dx%d: Index(%d,%d) = %d collides", l.Name(), rows, cols, i, j, idx)
			}
			seen[idx] = true
		}
	}
}

func TestLayoutBijections(t *testing.T) {
	dims := [][2]int{{1, 1}, {1, 7}, {7, 1}, {3, 3}, {4, 9}, {9, 4}, {16, 16}, {5, 32}}
	for _, d := range dims {
		rows, cols := d[0], d[1]
		layouts := []Layout{RowMajor{}, ColMajor{}, AntiDiagMajor{}, LMajor{}, NewKnightMajor(rows, cols)}
		for _, l := range layouts {
			checkBijection(t, l, rows, cols)
		}
	}
}

// Property: bijection holds for arbitrary small dimensions.
func TestLayoutBijectionProperty(t *testing.T) {
	f := func(r, c uint8) bool {
		rows := int(r%20) + 1
		cols := int(c%20) + 1
		layouts := []Layout{RowMajor{}, ColMajor{}, AntiDiagMajor{}, LMajor{}, NewKnightMajor(rows, cols)}
		for _, l := range layouts {
			seen := make([]bool, rows*cols)
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					idx := l.Index(rows, cols, i, j)
					if idx < 0 || idx >= rows*cols || seen[idx] {
						return false
					}
					seen[idx] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Wavefront contiguity is the whole point of the specialized layouts: the
// cells of front k must occupy a contiguous ascending span.
func TestAntiDiagMajorFrontsContiguous(t *testing.T) {
	rows, cols := 7, 5
	l := AntiDiagMajor{}
	next := 0
	for d := 0; d <= rows+cols-2; d++ {
		firstRow, count := AntiDiagSpan(rows, cols, d)
		for k := 0; k < count; k++ {
			i := firstRow + k
			j := d - i
			if got := l.Index(rows, cols, i, j); got != next {
				t.Fatalf("diag %d cell %d: index %d, want %d", d, k, got, next)
			}
			next++
		}
	}
	if next != rows*cols {
		t.Errorf("covered %d cells, want %d", next, rows*cols)
	}
}

func TestLMajorFrontsContiguous(t *testing.T) {
	rows, cols := 6, 8
	l := LMajor{}
	next := 0
	for k := 0; k < minInt(rows, cols); k++ {
		// Row segment of the inverted-L.
		for j := k; j < cols; j++ {
			if got := l.Index(rows, cols, k, j); got != next {
				t.Fatalf("front %d row cell j=%d: index %d, want %d", k, j, got, next)
			}
			next++
		}
		// Column segment.
		for i := k + 1; i < rows; i++ {
			if got := l.Index(rows, cols, i, k); got != next {
				t.Fatalf("front %d col cell i=%d: index %d, want %d", k, i, got, next)
			}
			next++
		}
	}
	if next != rows*cols {
		t.Errorf("covered %d cells, want %d", next, rows*cols)
	}
}

func TestKnightMajorFrontsContiguous(t *testing.T) {
	rows, cols := 5, 9
	l := NewKnightMajor(rows, cols)
	next := 0
	for tt := 0; tt < KnightFronts(rows, cols); tt++ {
		firstRow, count := KnightSpan(rows, cols, tt)
		for k := 0; k < count; k++ {
			i := firstRow + k
			j := tt - 2*i
			if got := l.Index(rows, cols, i, j); got != next {
				t.Fatalf("front %d cell %d: index %d, want %d", tt, k, got, next)
			}
			next++
		}
	}
	if next != rows*cols {
		t.Errorf("covered %d cells, want %d", next, rows*cols)
	}
}

func TestAntiDiagSpan(t *testing.T) {
	// 3x4 grid: diagonals have sizes 1,2,3,3,2,1.
	wantCounts := []int{1, 2, 3, 3, 2, 1}
	for d, want := range wantCounts {
		_, count := AntiDiagSpan(3, 4, d)
		if count != want {
			t.Errorf("AntiDiagSpan(3,4,%d) count = %d, want %d", d, count, want)
		}
	}
	if _, count := AntiDiagSpan(3, 4, 99); count != 0 {
		t.Error("out-of-range diagonal should have count 0")
	}
}

func TestLSpan(t *testing.T) {
	// 4x6: front k holds (6-k)+(4-k-1) cells.
	want := []int{9, 7, 5, 3}
	for k, w := range want {
		if got := LSpan(4, 6, k); got != w {
			t.Errorf("LSpan(4,6,%d) = %d, want %d", k, got, w)
		}
	}
	if LSpan(4, 6, 4) != 0 || LSpan(4, 6, -1) != 0 {
		t.Error("out-of-range L front should have count 0")
	}
}

func TestKnightSpan(t *testing.T) {
	// 3x3 grid, fronts t = 2i+j in [0, 6]:
	// t=0: (0,0); t=1: (0,1); t=2: (0,2),(1,0); t=3: (1,1); t=4: (1,2),(2,0);
	// t=5: (2,1); t=6: (2,2).
	wantCounts := []int{1, 1, 2, 1, 2, 1, 1}
	if got := KnightFronts(3, 3); got != len(wantCounts) {
		t.Fatalf("KnightFronts(3,3) = %d, want %d", got, len(wantCounts))
	}
	total := 0
	for tt, want := range wantCounts {
		_, count := KnightSpan(3, 3, tt)
		if count != want {
			t.Errorf("KnightSpan(3,3,%d) count = %d, want %d", tt, count, want)
		}
		total += count
	}
	if total != 9 {
		t.Errorf("knight fronts cover %d cells, want 9", total)
	}
}

// Property: spans partition the grid for every pattern helper.
func TestSpanPartitionProperty(t *testing.T) {
	f := func(r, c uint8) bool {
		rows := int(r%15) + 1
		cols := int(c%15) + 1
		total := 0
		for d := 0; d <= rows+cols-2; d++ {
			_, n := AntiDiagSpan(rows, cols, d)
			total += n
		}
		if total != rows*cols {
			return false
		}
		total = 0
		for k := 0; k < minInt(rows, cols); k++ {
			total += LSpan(rows, cols, k)
		}
		if total != rows*cols {
			return false
		}
		total = 0
		for tt := 0; tt < KnightFronts(rows, cols); tt++ {
			_, n := KnightSpan(rows, cols, tt)
			total += n
		}
		return total == rows*cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestKnightMajorDimensionMismatchPanics(t *testing.T) {
	l := NewKnightMajor(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	l.Index(5, 5, 0, 0)
}

func TestNewKnightMajorPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKnightMajor(0, 3)
}

func TestCeilDivInt(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 2, 0}, {1, 2, 1}, {2, 2, 1}, {3, 2, 2}, {-1, 2, 0}, {-3, 2, -1}, {-4, 2, -2},
	}
	for _, c := range cases {
		if got := ceilDivInt(c.a, c.b); got != c.want {
			t.Errorf("ceilDivInt(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLayoutNames(t *testing.T) {
	names := map[string]Layout{
		"row-major":      RowMajor{},
		"col-major":      ColMajor{},
		"antidiag-major": AntiDiagMajor{},
		"l-major":        LMajor{},
		"knight-major":   NewKnightMajor(2, 2),
	}
	for want, l := range names {
		if l.Name() != want {
			t.Errorf("Name() = %q, want %q", l.Name(), want)
		}
	}
}
