// Replay determinism: the schedule is the reproducibility contract, so
// generation must be a pure function of its config, the op log must
// round-trip byte-for-byte, and a replayed run must execute the exact
// recorded operation sequence.
package sim

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestGenerateDeterministic: same config, same schedule — field for
// field and byte for byte.
func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 42, Nodes: 3, Ops: 60, Kills: 1, Drains: 1, Arms: 1}
	a, b := Generate(cfg), Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Generate calls with one config disagree")
	}
	var ba, bb bytes.Buffer
	if err := WriteSchedule(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteSchedule(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("marshaled schedules differ byte-wise")
	}
	// Different seeds must actually differ (the generator reads its rand
	// stream, not a constant).
	if c := Generate(GenConfig{Seed: 43, Nodes: 3, Ops: 60}); reflect.DeepEqual(a.Ops, c.Ops) {
		t.Fatal("seeds 42 and 43 generated identical op sequences")
	}
}

// TestGenerateIncludesAsyncStrategy: schedule generation must route a
// deterministic subset of solve ops through the async executor, so the
// scenario engine exercises it under faults like every other strategy.
func TestGenerateIncludesAsyncStrategy(t *testing.T) {
	s := Generate(GenConfig{Seed: 42, Nodes: 3, Ops: 200})
	counts := map[string]int{}
	for _, op := range s.Ops {
		if op.Kind == OpSolve {
			counts[op.Strategy]++
		}
	}
	if counts["async"] == 0 {
		t.Fatalf("200 ops at seed 42 picked no async solves (strategies: %v)", counts)
	}
	if counts["parallel"] == 0 || counts[""]+counts["auto"] == 0 {
		t.Fatalf("async must ride alongside the other strategies, not replace them (strategies: %v)", counts)
	}
}

// TestScheduleRoundTrip: save + load preserves the schedule exactly.
func TestScheduleRoundTrip(t *testing.T) {
	s := Generate(GenConfig{Seed: 7, Nodes: 2, Ops: 40, Kills: 1})
	path := filepath.Join(t.TempDir(), "oplog.json")
	if err := SaveSchedule(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSchedule(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("schedule did not survive the op-log round trip")
	}
}

// TestValidateRejects: the guards hand-edited op logs hit.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
	}{
		{"no nodes", Schedule{Nodes: 0}},
		{"node out of range", Schedule{Nodes: 2, Ops: []Op{{ID: 1, Kind: OpSolve, Node: 5}}}},
		{"missing id", Schedule{Nodes: 1, Ops: []Op{{Kind: OpSolve}}}},
		{"duplicate id", Schedule{Nodes: 1, Ops: []Op{{ID: 1, Kind: OpSolve}, {ID: 1, Kind: OpSolve}}}},
		{"dangling replay", Schedule{Nodes: 1, Ops: []Op{{ID: 1, Kind: OpReplay, ReplayOf: 9}}}},
		{"trace of non-fleet", Schedule{Nodes: 1, Ops: []Op{{ID: 1, Kind: OpSolve}, {ID: 2, Kind: OpTrace, ReplayOf: 1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.s.Validate() == nil {
				t.Error("invalid schedule passed Validate")
			}
		})
	}
}

// TestReplayExecutesRecordedSchedule is the acceptance criterion: a
// recorded op log replays the identical operation schedule — the
// replayed run reports the very schedule it was handed, every op
// executes, and the run stays violation-free.
func TestReplayExecutesRecordedSchedule(t *testing.T) {
	recorded := Generate(GenConfig{Seed: 11, Nodes: 2, Ops: 25, Arms: -1})
	path := filepath.Join(t.TempDir(), "oplog.json")
	if err := SaveSchedule(path, recorded); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSchedule(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recorded, loaded) {
		t.Fatal("loaded op log differs from the recorded schedule")
	}
	rep, err := Run(context.Background(), Config{
		Schedule: loaded,
		TraceDir: t.TempDir(),
		Timeout:  90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Schedule, recorded) {
		t.Fatal("replayed run did not execute the recorded schedule verbatim")
	}
	total := 0
	for _, n := range rep.Classes {
		total += n
	}
	if total != len(recorded.Ops) {
		t.Fatalf("replay classified %d ops, schedule has %d", total, len(recorded.Ops))
	}
}
