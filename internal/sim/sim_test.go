// Seeded scenario runs: each test executes one full schedule against a
// real in-process cluster and requires a violation-free Report. These
// are the `make sim-smoke` scenarios — quick enough for -race CI, broad
// enough to cross every op kind and fault type.
package sim

import (
	"context"
	"testing"
	"time"
)

// runScenario executes one generated scenario and fails on any
// invariant violation, printing the seed and the op log path would-be
// reproducers need.
func runScenario(t *testing.T, cfg GenConfig) *Report {
	t.Helper()
	rep, err := Run(context.Background(), Config{
		Gen:      cfg,
		TraceDir: t.TempDir(),
		Timeout:  90 * time.Second,
	})
	if err != nil {
		t.Fatalf("seed %d: run failed to start: %v", cfg.Seed, err)
	}
	if err := rep.Err(); err != nil {
		path := t.TempDir() + "/oplog.json"
		if serr := SaveSchedule(path, rep.Schedule); serr == nil {
			t.Logf("op log written to %s (replay with lddpsim -replay)", path)
		}
		t.Fatal(err)
	}
	if got := len(rep.Schedule.Ops); got == 0 {
		t.Fatal("scenario ran zero ops")
	}
	t.Logf("seed %d: %d ops, classes %v, relocations %d, 429s %d, %s",
		cfg.Seed, len(rep.Schedule.Ops), rep.Classes, rep.Relocations,
		rep.Rejected429, rep.Elapsed.Round(time.Millisecond))
	return rep
}

// TestScenarioBaseline: no structural faults — every op must land in a
// benign class and the coordinator must count zero relocations.
func TestScenarioBaseline(t *testing.T) {
	rep := runScenario(t, GenConfig{Seed: 1, Nodes: 2, Ops: 30, Arms: -1})
	if rep.Relocations != 0 {
		t.Errorf("baseline run recorded %d relocations", rep.Relocations)
	}
	if rep.Classes[classOK] == 0 {
		t.Error("baseline run produced no successful ops")
	}
}

// TestScenarioSaturation: the armed-gate run must actually produce
// wire-level 429 pushback (checked again here on top of the engine's
// own arm invariant).
func TestScenarioSaturation(t *testing.T) {
	rep := runScenario(t, GenConfig{Seed: 2, Nodes: 2, Ops: 40, Arms: 1})
	if rep.Rejected429 == 0 {
		t.Error("saturation run recorded no 429 attempts")
	}
}

// TestScenarioKillAndDrain: one node dies, one drains, fleet solves
// keep succeeding via relocation.
func TestScenarioKillAndDrain(t *testing.T) {
	rep := runScenario(t, GenConfig{Seed: 3, Nodes: 3, Ops: 50, Kills: 1, Drains: 1})
	if rep.Classes[classOK] == 0 {
		t.Error("faulted run produced no successful ops")
	}
}

// TestScenarioEverything: the full mix at once — saturation, a kill, a
// drain, wire faults — across more ops.
func TestScenarioEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full-mix scenario skipped in -short")
	}
	runScenario(t, GenConfig{Seed: 4, Nodes: 3, Ops: 80, Kills: 1, Drains: 1, Arms: 1})
}
