//go:build soak

// Long-haul scenario sweep (make soak-sim): many seeds, bigger
// clusters and op counts than the sim-smoke scenarios. Excluded from
// tier-1 by the soak build tag.
package sim

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestScenarioSweepSoak runs a spread of seeds across cluster shapes,
// each with the full fault mix. Any violation fails with the seed and
// a saved op log to replay.
func TestScenarioSweepSoak(t *testing.T) {
	shapes := []GenConfig{
		{Nodes: 2, Ops: 120, Kills: 1, Arms: 1},
		{Nodes: 3, Ops: 150, Kills: 1, Drains: 1, Arms: 1},
		{Nodes: 4, Ops: 200, Kills: 2, Drains: 1, Arms: 2},
		{Nodes: 5, Ops: 250, Kills: 2, Drains: 2, Arms: 2, MaxDim: 48},
	}
	for seed := int64(100); seed < 112; seed++ {
		for _, shape := range shapes {
			shape.Seed = seed
			t.Run(fmt.Sprintf("seed-%d-nodes-%d", seed, shape.Nodes), func(t *testing.T) {
				rep, err := Run(context.Background(), Config{
					Gen:      shape,
					TraceDir: t.TempDir(),
					Timeout:  3 * time.Minute,
				})
				if err != nil {
					t.Fatalf("run failed to start: %v", err)
				}
				if err := rep.Err(); err != nil {
					path := t.TempDir() + "/oplog.json"
					if serr := SaveSchedule(path, rep.Schedule); serr == nil {
						t.Logf("op log written to %s", path)
					}
					t.Fatal(err)
				}
			})
		}
	}
}
