// The wire-level fault injector: one http.RoundTripper shared by every
// sim client, keyed by the op ID riding the request context. It applies
// an op's scheduled faults to exact retry attempts and records every
// POST /v1/solve attempt (op, node, receipt time, status), which is the
// evidence the Retry-After invariant is checked against after the run.
package sim

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// opIDKey carries the scheduled op's ID from the engine's dispatch
// context into the injector (http.NewRequestWithContext propagates it
// through the client's retry loop unchanged).
type opIDKey struct{}

// withOpID tags ctx with the op the resulting requests belong to.
func withOpID(ctx context.Context, id int) context.Context {
	return context.WithValue(ctx, opIDKey{}, id)
}

// attempt is one recorded /v1/solve exchange. Status is the HTTP
// status, or -1 when the attempt died in transport (drop fault, dead
// node). T is the injector receipt time — before any injected delay,
// so inter-attempt gaps measure the client's sleep, not the fault's.
type attempt struct {
	op     int
	node   int
	t      time.Time
	status int
	// band marks a /v1/band/solve exchange (fleet block): recorded as
	// relocation-cause evidence, excluded from the per-op backoff and
	// saturation checks (parallel bands of one op interleave freely).
	band bool
}

// injector wraps the base transport for every sim client.
type injector struct {
	base http.RoundTripper
	// nodeOf maps a request's URL host (the 127.0.0.1:port the node
	// bound) to its node index.
	nodeOf map[string]int

	mu       sync.Mutex
	faults   map[int][]Fault // op ID -> scheduled faults
	attempts map[int]int     // op ID -> next attempt index
	log      []attempt
}

func newInjector(base http.RoundTripper) *injector {
	return &injector{
		base:     base,
		nodeOf:   make(map[string]int),
		faults:   make(map[int][]Fault),
		attempts: make(map[int]int),
	}
}

func (in *injector) addNode(host string, node int) {
	in.mu.Lock()
	in.nodeOf[host] = node
	in.mu.Unlock()
}

func (in *injector) armFaults(opID int, faults []Fault) {
	if len(faults) == 0 {
		return
	}
	in.mu.Lock()
	in.faults[opID] = faults
	in.mu.Unlock()
}

// record appends one attempt to the wire log.
func (in *injector) record(opID, node, status int, t time.Time, band bool) {
	in.mu.Lock()
	in.log = append(in.log, attempt{op: opID, node: node, t: t, status: status, band: band})
	in.mu.Unlock()
}

// nextAttempt claims the op's next attempt index and the faults
// scheduled for it.
func (in *injector) nextAttempt(opID int) (int, []Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.attempts[opID]
	in.attempts[opID] = n + 1
	var hit []Fault
	for _, f := range in.faults[opID] {
		if f.Attempt == n {
			hit = append(hit, f)
		}
	}
	return n, hit
}

// snapshot returns the attempt log (the run is over; no copy races).
func (in *injector) snapshot() []attempt {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]attempt(nil), in.log...)
}

const maxInjectedDelay = 20 * time.Millisecond

// closeRequestBody honors the RoundTripper contract on paths that never
// hand the request to the base transport: the body must be consumed and
// closed so the client's pooled request buffer sees a finished attempt.
func closeRequestBody(req *http.Request) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body) //nolint:errcheck
		req.Body.Close()
	}
}

func (in *injector) RoundTrip(req *http.Request) (*http.Response, error) {
	in.mu.Lock()
	node, known := in.nodeOf[req.URL.Host]
	in.mu.Unlock()
	opID, _ := req.Context().Value(opIDKey{}).(int)
	if known && req.URL.Path == "/v1/band/solve" {
		// Fleet blocks are recorded (status only) as relocation-cause
		// evidence, but never faulted: the fleet's failure modes come
		// from node kills and drains, not from the wire injector.
		t0 := time.Now()
		resp, err := in.base.RoundTrip(req)
		if err != nil {
			in.record(opID, node, -1, t0, true)
			return nil, err
		}
		in.record(opID, node, resp.StatusCode, t0, true)
		return resp, nil
	}
	if !known || opID == 0 || req.URL.Path != "/v1/solve" {
		// Scrapes and health checks pass through untouched.
		return in.base.RoundTrip(req)
	}
	t0 := time.Now()
	_, faults := in.nextAttempt(opID)
	for _, f := range faults {
		switch f.Kind {
		case FaultDelay:
			d := time.Duration(f.DelayUS) * time.Microsecond
			if d > maxInjectedDelay {
				d = maxInjectedDelay
			}
			t := time.NewTimer(d)
			select {
			case <-req.Context().Done():
				t.Stop()
				in.record(opID, node, -1, t0, false)
				closeRequestBody(req)
				return nil, req.Context().Err()
			case <-t.C:
			}
		case FaultDrop:
			in.record(opID, node, -1, t0, false)
			closeRequestBody(req)
			return nil, fmt.Errorf("sim: injected drop (op %d attempt)", opID)
		}
	}
	resp, err := in.base.RoundTrip(req)
	if err != nil {
		in.record(opID, node, -1, t0, false)
		return nil, err
	}
	in.record(opID, node, resp.StatusCode, t0, false)
	for _, f := range faults {
		// Truncation only mangles successful bodies: halving an error
		// body would turn a typed 429/503 into a decode error and void
		// the Retry-After contract the run is checking.
		if f.Kind == FaultTruncate && resp.StatusCode == http.StatusOK {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				return nil, rerr
			}
			half := body[:len(body)/2]
			// Content-Length stays at the full size: the client sees a
			// connection that died mid-body, not a short-but-complete
			// response.
			resp.Body = io.NopCloser(bytes.NewReader(half))
			break
		}
	}
	return resp, nil
}
