// The in-process fleet: each node is the real lddpd serving stack —
// internal/server behind a real TCP listener and http.Server — so the
// scenario engine exercises the same admission limiter, drain sequence,
// codec negotiation, cache and trace plumbing production runs. Kill
// closes the HTTP server out from under live connections; drain runs
// the documented readiness-first sequence.
package sim

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// gate is the deterministic admission-saturation device behind OpArm:
// while armed, the first `holds` non-band solves that clear the
// in-flight limiter park inside the handler until release, keeping the
// limiter pinned full so concurrent solves meet honest 429s.
type gate struct {
	mu     sync.Mutex
	armed  chan struct{} // closed on release; nil when disarmed
	holds  int
	timer  *time.Timer
	parked sync.WaitGroup
	parks  atomic.Int64
}

// gateSafety bounds a park even if release never comes (engine bug,
// aborted run): a stuck gate must degrade to slow solves, not a hang.
const gateSafety = 2 * time.Second

// arm admits the next `holds` solves into a parked state for up to
// holdFor, then self-releases.
func (g *gate) arm(holds int, holdFor time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.releaseLocked()
	g.armed = make(chan struct{})
	g.holds = holds
	ch := g.armed
	g.timer = time.AfterFunc(holdFor, func() { g.releaseCh(ch) })
}

// admitted is the server hook body: park if armed and holds remain.
func (g *gate) admitted(band bool) {
	if band {
		// Fleet band solves pass: the saturation scenario targets the
		// direct-solve path, and a parked band would count relocations
		// against the wrong cause.
		return
	}
	g.mu.Lock()
	if g.armed == nil || g.holds <= 0 {
		g.mu.Unlock()
		return
	}
	g.holds--
	ch := g.armed
	g.parked.Add(1)
	g.parks.Add(1)
	g.mu.Unlock()
	t := time.NewTimer(gateSafety)
	defer t.Stop()
	defer g.parked.Done()
	select {
	case <-ch:
	case <-t.C:
	}
}

func (g *gate) releaseCh(ch chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.armed == ch {
		g.releaseLocked()
	}
}

// release disarms immediately and unparks everything.
func (g *gate) release() {
	g.mu.Lock()
	g.releaseLocked()
	g.mu.Unlock()
	g.parked.Wait()
}

func (g *gate) releaseLocked() {
	if g.armed != nil {
		close(g.armed)
		g.armed = nil
	}
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	g.holds = 0
}

// node is one booted lddpd stack.
type node struct {
	idx  int
	srv  *server.Server
	hs   *http.Server
	addr string // host:port the listener bound
	gate *gate

	killed  atomic.Bool
	drained atomic.Bool
	// killedAt orders kill completion against fleet dispatches for the
	// relocation invariant (nanoseconds since run start; 0 = alive).
	killedAt atomic.Int64

	serveErr chan error
}

func (n *node) base() string { return "http://" + n.addr }

// cluster owns the run's nodes and their teardown.
type cluster struct {
	nodes []*node
	t0    time.Time
}

// bootCluster starts s.Nodes real serving stacks on loopback. traceDir
// gives each node its own trace directory (node-<i> subdirectories) so
// fleet trace stitching has real node dumps to fetch.
func bootCluster(s *Schedule, traceDir string) (*cluster, error) {
	c := &cluster{t0: time.Now()}
	for i := 0; i < s.Nodes; i++ {
		g := &gate{}
		if err := os.MkdirAll(filepath.Join(traceDir, fmt.Sprintf("node-%d", i)), 0o755); err != nil {
			c.shutdown(nil)
			return nil, err
		}
		cfg := server.Config{
			Workers:     s.Workers,
			Chunk:       8,
			MaxInflight: s.MaxInflight,
			RetryAfter:  time.Duration(s.RetryAfterMS) * time.Millisecond,
			TraceDir:    filepath.Join(traceDir, fmt.Sprintf("node-%d", i)),
			Hooks:       server.Hooks{OnSolveAdmitted: g.admitted},
			// Killed connections and canceled clients make response
			// writes fail by design here; the default logger would spray
			// that expected fallout over the scenario report.
			ErrorLog: log.New(io.Discard, "", 0),
		}
		srv, err := server.New(cfg)
		if err != nil {
			c.shutdown(nil)
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			c.shutdown(nil)
			return nil, err
		}
		n := &node{
			idx: i, srv: srv, addr: ln.Addr().String(), gate: g,
			hs:       &http.Server{Handler: srv.Handler()},
			serveErr: make(chan error, 1),
		}
		go func() { n.serveErr <- n.hs.Serve(ln) }()
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// sinceStart stamps an event on the cluster clock.
func (c *cluster) sinceStart() int64 { return int64(time.Since(c.t0)) }

// kill closes the node's HTTP server immediately: the listener stops
// accepting and live connections are torn down mid-exchange — the
// crashed-node scenario fleet relocation exists for.
func (c *cluster) kill(i int) {
	n := c.nodes[i]
	if n.killed.Swap(true) {
		return
	}
	n.hs.Close() //nolint:errcheck // teardown path; Serve's return is collected at shutdown
	n.killedAt.Store(c.sinceStart())
}

// drain flips the node into graceful drain (readiness 503s, solves
// refuse) while its listener keeps answering.
func (c *cluster) drain(i int) {
	n := c.nodes[i]
	if n.drained.Swap(true) {
		return
	}
	n.srv.BeginDrain()
}

// firstKillAt returns the earliest kill completion on the cluster
// clock, or 0 when no node was killed.
func (c *cluster) firstKillAt() int64 {
	var first int64
	for _, n := range c.nodes {
		if at := n.killedAt.Load(); at != 0 && (first == 0 || at < first) {
			first = at
		}
	}
	return first
}

// shutdown tears the cluster down in the documented order and checks
// the readiness contract on every live node: readyz must answer 503
// (drain visible) while the listener still accepts, before the listener
// closes. Violations are reported through violate. probe does a plain
// HTTP GET and returns the status (0 on transport failure).
func (c *cluster) shutdown(violate func(string, ...any)) {
	for _, n := range c.nodes {
		n.gate.release()
	}
	for _, n := range c.nodes {
		if n == nil || n.killed.Load() {
			continue
		}
		n.srv.BeginDrain()
		if violate != nil {
			if st := probe(n.base() + "/readyz"); st != http.StatusServiceUnavailable {
				violate("node %d: readyz = %d after BeginDrain with listener open, want 503", n.idx, st)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := n.hs.Shutdown(ctx)
		cancel()
		if err != nil && violate != nil {
			violate("node %d: listener did not drain: %v", n.idx, err)
		}
	}
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		select {
		case <-n.serveErr:
		case <-time.After(5 * time.Second):
		}
		n.srv.Close()
	}
}

// probe is the raw readiness check (no typed client: the invariant is
// about the HTTP surface itself).
func probe(url string) int {
	cl := &http.Client{Timeout: 2 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		return 0
	}
	resp.Body.Close()
	cl.CloseIdleConnections()
	return resp.StatusCode
}
