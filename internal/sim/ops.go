// Package sim is the scenario engine: it boots N in-process lddpd
// stacks (real listeners, the real internal/server pipeline), drives a
// seeded randomized operation mix through the typed lddp/client and the
// fleet coordinator, injects faults at exact points (response delay,
// drop, truncation, node kill, drain, admission saturation), and checks
// hard invariants after every run — digest equality against the
// sequential oracle, typed errors only, Retry-After honored on the
// wire, readiness flipping before listeners close, lint-clean
// Prometheus exposition, relocation accounting, zero goroutine leaks.
//
// Every run is a pure function of its seed: Generate builds the whole
// operation schedule (targets, shapes, timing, faults) from one seed
// before anything executes, so a failing run is reproduced exactly by
// replaying its recorded Schedule (cmd/lddpsim -replay).
package sim

import (
	"fmt"
	"math/rand"

	"repro/lddp"
	"repro/lddp/api"
)

// Fixed per-run service parameters. They are recorded in the Schedule
// (replays must not depend on compiled-in values drifting) and kept
// deliberately tight: a 4-slot in-flight limiter and a 25ms Retry-After
// make admission pushback cheap to trigger and fast to verify.
const (
	DefaultWorkers      = 2
	DefaultMaxInflight  = 4
	DefaultRetryAfterMS = 25
	DefaultMaxAttempts  = 4
	DefaultPhaseCols    = 16
)

// OpKind enumerates the operations a schedule can carry.
type OpKind string

const (
	// OpSolve is one typed-client solve against a single node.
	OpSolve OpKind = "solve"
	// OpFleet is one band-sharded solve through the fleet coordinator.
	OpFleet OpKind = "fleet"
	// OpReplay re-sends an earlier solve op's exact request and expects
	// a result-cache hit when both runs completed.
	OpReplay OpKind = "replay"
	// OpMetrics scrapes the typed /v1/metrics snapshot.
	OpMetrics OpKind = "metrics"
	// OpProm scrapes the Prometheus text exposition and lints it.
	OpProm OpKind = "prom"
	// OpTrace fetches an earlier fleet op's node trace dump.
	OpTrace OpKind = "trace"
	// OpKill closes a node's HTTP server mid-run (connections die).
	OpKill OpKind = "kill"
	// OpDrain flips a node into graceful drain and asserts /readyz
	// answers 503 while the listener still accepts.
	OpDrain OpKind = "drain"
	// OpArm arms a node's admission gate: the next Holds admitted
	// solves park inside the handler for HoldUS, pinning the in-flight
	// limiter full so concurrent solves collect deterministic 429s.
	OpArm OpKind = "arm"
)

// FaultKind enumerates injector actions on one solve attempt.
type FaultKind string

const (
	// FaultDelay holds the request before forwarding.
	FaultDelay FaultKind = "delay"
	// FaultDrop fails the attempt with a transport error, never
	// reaching the node.
	FaultDrop FaultKind = "drop"
	// FaultTruncate forwards the exchange but hands the client only
	// half of a 200 response body, forcing a decode error and a retry.
	FaultTruncate FaultKind = "truncate"
)

// Fault is one injected failure, pinned to a specific retry attempt of
// a specific op. Generate never faults an op's last possible attempt,
// so a fault-only op still has a clean path to success.
type Fault struct {
	Kind    FaultKind `json:"kind"`
	Attempt int       `json:"attempt"`
	DelayUS int       `json:"delay_us,omitempty"`
}

// Op is one scheduled operation. Fields are a union over the op kinds;
// unused fields stay zero and are omitted from the JSON op log.
type Op struct {
	ID   int    `json:"id"`
	Kind OpKind `json:"kind"`
	// Node is the target node index (solve/replay/metrics/prom/trace/
	// kill/drain/arm). Fleet ops address the whole fleet.
	Node int `json:"node,omitempty"`
	// DelayUS schedules the op's dispatch relative to run start.
	DelayUS int `json:"delay_us,omitempty"`

	// Solve shape (solve/replay/fleet).
	Codec       string `json:"codec,omitempty"` // "json" | "binary"
	Rows        int    `json:"rows,omitempty"`
	Cols        int    `json:"cols,omitempty"`
	Mask        string `json:"mask,omitempty"`
	Workload    string `json:"workload,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	Strategy    string `json:"strategy,omitempty"`
	ReturnCells bool   `json:"return_cells,omitempty"`
	DeadlineMS  int    `json:"deadline_ms,omitempty"`
	// CancelAfterUS cancels the op's context this long after dispatch.
	CancelAfterUS int `json:"cancel_after_us,omitempty"`
	// Burst marks the solves of an arm group racing a pinned limiter.
	Burst bool `json:"burst,omitempty"`

	// ReplayOf names the earlier op a replay duplicates or the fleet op
	// a trace fetch inspects.
	ReplayOf int `json:"replay_of,omitempty"`

	// Arm gate shape.
	Holds  int `json:"holds,omitempty"`
	HoldUS int `json:"hold_us,omitempty"`

	Faults []Fault `json:"faults,omitempty"`
}

// Schedule is one complete, self-describing run: the seed and knobs
// that generated it plus every op in dispatch order. Replaying a
// Schedule re-executes the identical operation sequence.
type Schedule struct {
	Seed         int64 `json:"seed"`
	Nodes        int   `json:"nodes"`
	Workers      int   `json:"workers"`
	MaxInflight  int   `json:"max_inflight"`
	RetryAfterMS int   `json:"retry_after_ms"`
	MaxAttempts  int   `json:"max_attempts"`
	PhaseCols    int   `json:"phase_cols"`
	Ops          []Op  `json:"ops"`
}

// GenConfig shapes Generate's output. Zero fields select defaults.
type GenConfig struct {
	Seed   int64
	Nodes  int // node count (default 3)
	Ops    int // regular op count before structural inserts (default 60)
	MaxDim int // max rows/cols of one solve (default 24)
	Kills  int // nodes killed mid-run (clamped to keep one healthy)
	Drains int // nodes drained mid-run (clamped with Kills)
	// Arms is the admission-saturation burst count: 0 selects one when
	// the run is big enough (Ops >= 20), negative disables entirely.
	Arms int
}

func (g GenConfig) withDefaults() GenConfig {
	if g.Nodes <= 0 {
		g.Nodes = 3
	}
	if g.Ops <= 0 {
		g.Ops = 60
	}
	if g.MaxDim <= 0 {
		g.MaxDim = 24
	}
	if g.MaxDim < 4 {
		g.MaxDim = 4
	}
	// At least one node must stay alive and admitting for the run's
	// invariants (teardown readyz checks, fleet relocation targets).
	if g.Kills+g.Drains > g.Nodes-1 {
		if g.Kills > g.Nodes-1 {
			g.Kills = g.Nodes - 1
		}
		g.Drains = g.Nodes - 1 - g.Kills
	}
	return g
}

// Generate builds a Schedule as a pure function of cfg: the same config
// always yields byte-identical output (no map iteration, no clock, one
// rand stream). Execution is concurrent and timing-dependent; the
// schedule is not.
func Generate(cfg GenConfig) *Schedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Schedule{
		Seed:         cfg.Seed,
		Nodes:        cfg.Nodes,
		Workers:      DefaultWorkers,
		MaxInflight:  DefaultMaxInflight,
		RetryAfterMS: DefaultRetryAfterMS,
		MaxAttempts:  DefaultMaxAttempts,
		PhaseCols:    DefaultPhaseCols,
	}
	g := &generator{cfg: cfg, rng: rng, s: s,
		killed:  make([]bool, cfg.Nodes),
		drained: make([]bool, cfg.Nodes),
	}
	g.run()
	return s
}

type generator struct {
	cfg GenConfig
	rng *rand.Rand
	s   *Schedule

	killed, drained []bool
	delayUS         int
	nextID          int

	// replayable collects earlier solve ops safe to replay (clean path,
	// no deadline/cancel, target still healthy when the replay fires);
	// fleetOps collects fleet op IDs for trace fetches.
	replayable []Op
	fleetOps   []int
}

func (g *generator) id() int { g.nextID++; return g.nextID }

// healthyNode picks a node that is neither killed nor drained at this
// point of the schedule. At least one always exists (withDefaults).
func (g *generator) healthyNode() int {
	for {
		n := g.rng.Intn(g.cfg.Nodes)
		if !g.killed[n] && !g.drained[n] {
			return n
		}
	}
}

// liveNode picks a node whose listener is still up (drained is fine:
// metrics, prom and trace endpoints keep answering through a drain).
func (g *generator) liveNode() int {
	for {
		n := g.rng.Intn(g.cfg.Nodes)
		if !g.killed[n] {
			return n
		}
	}
}

// step advances the schedule clock by a small random stride so ops
// overlap without stampeding.
func (g *generator) step() int {
	g.delayUS += 200 + g.rng.Intn(2300)
	return g.delayUS
}

func (g *generator) run() {
	cfg := g.cfg
	// Structural ops (kills, drains, arms) land at fixed fractions of
	// the regular-op count: arms early enough that later traffic still
	// exercises recovered nodes, kills and drains through the middle.
	type structural struct {
		kind OpKind
		at   int
	}
	var structs []structural
	n := cfg.Arms
	if n == 0 && cfg.Ops >= 20 {
		n = 1
	}
	if n < 0 {
		n = 0
	}
	total := n + cfg.Kills + cfg.Drains
	var order []OpKind
	for i := 0; i < n; i++ {
		order = append(order, OpArm)
	}
	for i := 0; i < cfg.Kills; i++ {
		order = append(order, OpKill)
	}
	for i := 0; i < cfg.Drains; i++ {
		order = append(order, OpDrain)
	}
	for i, k := range order {
		structs = append(structs, structural{k, (i + 1) * cfg.Ops / (total + 1)})
	}

	masks := lddp.AllDepMasks()
	for i := 0; i < cfg.Ops; i++ {
		for len(structs) > 0 && structs[0].at == i {
			g.emitStructural(structs[0].kind)
			structs = structs[1:]
		}
		switch r := g.rng.Intn(100); {
		case r < 55:
			g.emitSolve(masks)
		case r < 67:
			g.emitFleet(masks)
		case r < 77:
			g.emitReplay()
		case r < 84:
			g.emitScrape(OpMetrics)
		case r < 93:
			g.emitScrape(OpProm)
		default:
			g.emitTrace()
		}
	}
	for _, st := range structs {
		g.emitStructural(st.kind)
	}
}

func (g *generator) emitStructural(kind OpKind) {
	switch kind {
	case OpArm:
		g.emitArmGroup()
	case OpKill:
		n := g.healthyNode()
		g.killed[n] = true
		g.s.Ops = append(g.s.Ops, Op{ID: g.id(), Kind: OpKill, Node: n, DelayUS: g.step()})
		g.pruneReplayable()
	case OpDrain:
		n := g.healthyNode()
		g.drained[n] = true
		g.s.Ops = append(g.s.Ops, Op{ID: g.id(), Kind: OpDrain, Node: n, DelayUS: g.step()})
		g.pruneReplayable()
	}
}

// pruneReplayable drops replay candidates whose target just lost its
// clean path (killed or draining nodes cannot produce a cache hit).
func (g *generator) pruneReplayable() {
	kept := g.replayable[:0]
	for _, op := range g.replayable {
		if !g.killed[op.Node] && !g.drained[op.Node] {
			kept = append(kept, op)
		}
	}
	g.replayable = kept
}

func (g *generator) solveShape(masks []lddp.DepMask) (kind, mask, strategy string, rows, cols int, seed int64) {
	kind = []string{api.KindMix, api.KindServe, api.KindCost, api.KindAlign}[g.rng.Intn(4)]
	mask = masks[g.rng.Intn(len(masks))].String()
	if _, err := api.ResolveMask(kind, mask); err != nil {
		mask = "" // align rejects everything but its fixed mask
	}
	// The async dependency-counter executor rides a deterministic subset
	// of solves (seeded rng, so recorded schedules replay identically),
	// putting it under the same kills, drains, cancels and wire faults
	// as the barrier executors.
	strategy = []string{"", "auto", "parallel", "async"}[g.rng.Intn(4)]
	rows = 2 + g.rng.Intn(g.cfg.MaxDim-1)
	cols = 2 + g.rng.Intn(g.cfg.MaxDim-1)
	seed = g.rng.Int63()
	return
}

func (g *generator) emitSolve(masks []lddp.DepMask) {
	kind, mask, strategy, rows, cols, seed := g.solveShape(masks)
	op := Op{
		ID: g.id(), Kind: OpSolve, Node: g.healthyNode(), DelayUS: g.step(),
		Codec: []string{"json", "binary"}[g.rng.Intn(2)],
		Rows:  rows, Cols: cols, Mask: mask, Workload: kind, Seed: seed,
		Strategy:    strategy,
		ReturnCells: rows*cols <= 2048 && g.rng.Intn(4) > 0,
	}
	clean := true
	switch r := g.rng.Intn(100); {
	case r < 5:
		// A 1ms budget on the largest shape the run allows: usually a
		// 408/timeout, occasionally a win — both are legal outcomes.
		op.DeadlineMS = 1
		op.Rows, op.Cols = g.cfg.MaxDim, g.cfg.MaxDim
		clean = false
	case r < 10:
		op.CancelAfterUS = 200 + g.rng.Intn(2000)
		clean = false
	case r < 30:
		// Wire faults on early attempts only: the last attempt always
		// runs clean, so the retry loop can recover.
		nf := 1 + g.rng.Intn(2)
		for f := 0; f < nf; f++ {
			fault := Fault{Attempt: g.rng.Intn(g.s.MaxAttempts - 1)}
			switch g.rng.Intn(3) {
			case 0:
				fault.Kind = FaultDelay
				fault.DelayUS = 500 + g.rng.Intn(5000)
			case 1:
				fault.Kind = FaultDrop
			default:
				fault.Kind = FaultTruncate
			}
			op.Faults = append(op.Faults, fault)
		}
		clean = false
	}
	g.s.Ops = append(g.s.Ops, op)
	if clean {
		g.replayable = append(g.replayable, op)
	}
}

func (g *generator) emitFleet(masks []lddp.DepMask) {
	kind, mask, strategy, _, cols, seed := g.solveShape(masks)
	// Rows at least 2x the node count so the default banding (one band
	// per node, dead ones included) gives every node real work — the
	// shape the relocation invariant needs.
	rows := 2*g.cfg.Nodes + g.rng.Intn(g.cfg.MaxDim)
	op := Op{
		ID: g.id(), Kind: OpFleet, DelayUS: g.step(),
		Rows: rows, Cols: cols, Mask: mask, Workload: kind, Seed: seed,
		Strategy: strategy,
	}
	g.s.Ops = append(g.s.Ops, op)
	g.fleetOps = append(g.fleetOps, op.ID)
}

func (g *generator) emitReplay() {
	if len(g.replayable) == 0 {
		g.emitScrape(OpMetrics)
		return
	}
	src := g.replayable[g.rng.Intn(len(g.replayable))]
	op := src // identical request — the cache key must match exactly
	op.ID = g.id()
	op.Kind = OpReplay
	op.ReplayOf = src.ID
	op.DelayUS = g.step()
	g.s.Ops = append(g.s.Ops, op)
}

func (g *generator) emitScrape(kind OpKind) {
	g.s.Ops = append(g.s.Ops, Op{ID: g.id(), Kind: kind, Node: g.liveNode(), DelayUS: g.step()})
}

func (g *generator) emitTrace() {
	if len(g.fleetOps) == 0 {
		g.emitScrape(OpProm)
		return
	}
	g.s.Ops = append(g.s.Ops, Op{
		ID: g.id(), Kind: OpTrace, Node: g.liveNode(), DelayUS: g.step(),
		ReplayOf: g.fleetOps[g.rng.Intn(len(g.fleetOps))],
	})
}

// emitArmGroup schedules the deterministic 429 scenario: arm the gate
// on one node, then throw MaxInflight fillers plus a burst at it. The
// gate parks the first MaxInflight admitted solves for HoldUS, so the
// overflow is guaranteed to meet a full limiter and collect 429s while
// the Retry-After clock is checked on the wire.
func (g *generator) emitArmGroup() {
	node := g.healthyNode()
	base := g.step()
	const holdUS = 120_000 // outlasts a full retry budget at 25ms Retry-After
	g.s.Ops = append(g.s.Ops, Op{
		ID: g.id(), Kind: OpArm, Node: node, DelayUS: base,
		Holds: g.s.MaxInflight, HoldUS: holdUS,
	})
	for i := 0; i < g.s.MaxInflight; i++ {
		g.s.Ops = append(g.s.Ops, Op{
			ID: g.id(), Kind: OpSolve, Node: node, DelayUS: base + 500 + i*300,
			Codec: "binary", Rows: 6, Cols: 6, Workload: api.KindMix,
			Seed: g.rng.Int63(), Burst: true,
		})
	}
	for i := 0; i < 3; i++ {
		g.s.Ops = append(g.s.Ops, Op{
			ID: g.id(), Kind: OpSolve, Node: node, DelayUS: base + 8_000 + i*200,
			Codec: "json", Rows: 6, Cols: 6, Workload: api.KindMix,
			Seed: g.rng.Int63(), Burst: true,
		})
	}
	// Resume regular scheduling after the hold window so unrelated ops
	// don't pile onto the pinned node.
	g.delayUS = base + holdUS
}

// Validate rejects schedules the engine cannot run (out-of-range nodes,
// dangling replay references) — the guard for hand-edited op logs.
func (s *Schedule) Validate() error {
	if s.Nodes <= 0 {
		return fmt.Errorf("sim: schedule has %d nodes", s.Nodes)
	}
	ids := make(map[int]OpKind, len(s.Ops))
	for i, op := range s.Ops {
		if op.ID == 0 {
			return fmt.Errorf("sim: op %d has no id", i)
		}
		if _, dup := ids[op.ID]; dup {
			return fmt.Errorf("sim: duplicate op id %d", op.ID)
		}
		ids[op.ID] = op.Kind
		if op.Kind != OpFleet && (op.Node < 0 || op.Node >= s.Nodes) {
			return fmt.Errorf("sim: op %d targets node %d of %d", op.ID, op.Node, s.Nodes)
		}
	}
	for _, op := range s.Ops {
		if op.Kind == OpReplay {
			if k, ok := ids[op.ReplayOf]; !ok || k != OpSolve {
				return fmt.Errorf("sim: replay op %d references op %d (%s)", op.ID, op.ReplayOf, k)
			}
		}
		if op.Kind == OpTrace {
			if k, ok := ids[op.ReplayOf]; !ok || k != OpFleet {
				return fmt.Errorf("sim: trace op %d references op %d (%s)", op.ID, op.ReplayOf, k)
			}
		}
	}
	return nil
}
