// The scenario engine's run loop: dispatch every scheduled op at its
// offset through real clients against the booted cluster, classify
// each outcome against the op's legal outcome set, check result
// integrity against the in-process sequential oracle, and close the
// run with the cross-op invariants (Retry-After spacing on the wire,
// saturation evidence, relocation accounting, drain ordering, goroutine
// accounting).
package sim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/promlint"
	"repro/internal/server"
	"repro/internal/testutil"
	"repro/lddp/api"
	"repro/lddp/client"
)

// Config shapes one Run. Schedule, when set, is replayed verbatim;
// otherwise Generate builds one from the Gen knobs.
type Config struct {
	Gen      GenConfig
	Schedule *Schedule
	// TraceDir receives node and fleet trace files; empty selects a
	// temporary directory removed after the run.
	TraceDir string
	// Timeout bounds the whole run; expiry is itself an invariant
	// violation ("hang"). Zero selects 2 minutes.
	Timeout time.Duration
	// Verbose streams per-op lines to Out (default: silent).
	Verbose bool
	Out     io.Writer
}

// Report is one run's outcome: the schedule that ran (replay input),
// outcome class counts, and every invariant violation in detail.
type Report struct {
	Schedule   *Schedule
	Classes    map[string]int
	Violations []string
	// Relocations is the coordinator's cumulative relocation count.
	Relocations int64
	// Rejected429 counts recorded 429 solve attempts across the run.
	Rejected429 int
	Elapsed     time.Duration
}

// Err returns nil for a clean run, or one error naming every violation.
func (r *Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("sim: seed %d: %d invariant violations:\n  %s",
		r.Schedule.Seed, len(r.Violations), strings.Join(r.Violations, "\n  "))
}

// Outcome classes. "ok" carries the digest obligations; every other
// class is legal only under the conditions classify documents.
const (
	classOK         = "ok"
	classOverloaded = "overloaded"
	classUnavail    = "unavailable"
	classTimeout    = "timeout"
	classCanceled   = "canceled"
	classTransport  = "transport"
	classSkipped    = "skipped"
	classAborted    = "aborted"
)

type opResult struct {
	op    Op
	class string
	resp  *api.SolveResponse
	fres  *fleet.Result
	err   error
	// startedNS is the dispatch time on the cluster clock — ordered
	// against kill completion for the relocation invariant.
	startedNS int64
	done      chan struct{}
}

type engine struct {
	s        *Schedule
	cfg      Config
	cluster  *cluster
	injector *injector
	// clients[node] holds the op-facing typed clients by codec.
	clients map[string][]*client.Client
	fleetCl []*client.Client
	coord   *fleet.Coordinator
	scrape  *http.Client

	results map[int]*opResult

	mu         sync.Mutex
	violations []string
	classes    map[string]int
	oracle     map[string]string

	// Planned structural facts (from the schedule, not runtime state):
	// classification must not depend on racy runtime ordering.
	planKilled  []bool
	planDrained []bool
	planArms    []int
	// hangAborted flags that the run blew its time budget and was
	// cancelled: the ensuing context.Canceled errors are fallout of the
	// already-reported hang, not fresh violations.
	hangAborted bool
}

const maxViolations = 100

func (e *engine) violate(format string, args ...any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.violations) < maxViolations {
		e.violations = append(e.violations, fmt.Sprintf(format, args...))
	}
}

func (e *engine) logf(format string, args ...any) {
	if e.cfg.Verbose && e.cfg.Out != nil {
		fmt.Fprintf(e.cfg.Out, "sim: "+format+"\n", args...)
	}
}

// Run executes one scenario and reports. The error return is for setup
// failures only (port exhaustion, bad schedule); invariant violations
// travel in the Report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	leak := testutil.StartLeakCheck()
	s := cfg.Schedule
	if s == nil {
		s = Generate(cfg.Gen)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	traceDir := cfg.TraceDir
	ownTrace := false
	if traceDir == "" {
		td, err := os.MkdirTemp("", "lddpsim-")
		if err != nil {
			return nil, err
		}
		traceDir, ownTrace = td, true
	}
	start := time.Now()

	e := &engine{
		s: s, cfg: cfg,
		clients:     make(map[string][]*client.Client),
		results:     make(map[int]*opResult, len(s.Ops)),
		classes:     make(map[string]int),
		oracle:      make(map[string]string),
		planKilled:  make([]bool, s.Nodes),
		planDrained: make([]bool, s.Nodes),
	}
	for _, op := range s.Ops {
		e.results[op.ID] = &opResult{op: op, done: make(chan struct{})}
		switch op.Kind {
		case OpKill:
			e.planKilled[op.Node] = true
		case OpDrain:
			e.planDrained[op.Node] = true
		case OpArm:
			e.planArms = append(e.planArms, op.Node)
		}
	}

	cl, err := bootCluster(s, traceDir)
	if err != nil {
		return nil, err
	}
	e.cluster = cl
	base := &http.Transport{}
	e.injector = newInjector(base)
	e.scrape = &http.Client{Transport: e.injector, Timeout: 5 * time.Second}
	opPolicy := client.RetryPolicy{
		MaxAttempts: s.MaxAttempts,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    60 * time.Millisecond,
	}
	// Fleet band clients keep a short budget: relocation, not client
	// backoff, is the fleet's recovery mechanism, and long per-block
	// retries against a killed node would stall every post-kill solve.
	fleetPolicy := client.RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
	}
	teardownClients := func() {
		for _, cs := range e.clients {
			for _, c := range cs {
				c.Close()
			}
		}
		for _, c := range e.fleetCl {
			c.Close()
		}
		base.CloseIdleConnections()
	}
	fail := func(err error) (*Report, error) {
		teardownClients()
		cl.shutdown(nil)
		if ownTrace {
			os.RemoveAll(traceDir)
		}
		return nil, err
	}
	for i, n := range cl.nodes {
		e.injector.addNode(n.addr, i)
		for _, codec := range []client.Codec{client.CodecJSON, client.CodecBinary} {
			c, err := client.New(n.base(), client.WithCodec(codec),
				client.WithTransport(e.injector), client.WithRetry(opPolicy))
			if err != nil {
				return fail(err)
			}
			e.clients[n.base()] = append(e.clients[n.base()], c)
		}
		fc, err := client.New(n.base(), client.WithCodec(client.CodecBinary),
			client.WithTransport(e.injector), client.WithRetry(fleetPolicy))
		if err != nil {
			return fail(err)
		}
		e.fleetCl = append(e.fleetCl, fc)
	}
	fleetTraceDir := filepath.Join(traceDir, "fleet")
	if err := os.MkdirAll(fleetTraceDir, 0o755); err != nil {
		return fail(err)
	}
	coord, err := fleet.New(fleet.Config{
		Nodes: e.fleetCl, PhaseCols: s.PhaseCols, TraceDir: fleetTraceDir,
	})
	if err != nil {
		return fail(err)
	}
	e.coord = coord

	// Dispatch: every op sleeps out its schedule offset, then runs
	// under a concurrency cap generous enough to never serialize the
	// schedule but bounded against pathological replays.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, 32)
	var wg sync.WaitGroup
	t0 := time.Now()
	for _, op := range s.Ops {
		op := op
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := e.results[op.ID]
			defer close(res.done)
			t := time.NewTimer(time.Duration(op.DelayUS)*time.Microsecond - time.Since(t0))
			defer t.Stop()
			select {
			case <-runCtx.Done():
				e.finish(res, classAborted, nil, nil, runCtx.Err())
				return
			case <-t.C:
			}
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-runCtx.Done():
				e.finish(res, classAborted, nil, nil, runCtx.Err())
				return
			}
			res.startedNS = e.cluster.sinceStart()
			e.execute(runCtx, res)
		}()
	}
	allDone := make(chan struct{})
	go func() { wg.Wait(); close(allDone) }()
	select {
	case <-allDone:
	case <-time.After(timeout):
		e.violate("hang: ops still in flight after %s — run aborted", timeout)
		e.mu.Lock()
		e.hangAborted = true
		e.mu.Unlock()
		cancel()
		select {
		case <-allDone:
		case <-time.After(15 * time.Second):
			e.violate("hang: ops did not unwind after cancellation")
		}
	}
	// Teardown order matters: gates release first (cluster.shutdown),
	// the coordinator's detached trace stitches finish while nodes
	// still answer /v1/trace, then clients drop their keep-alive
	// connections (a lingering client-held conn would stall the
	// listener drain), and finally every live node drains with its
	// readiness contract checked.
	coord.Close()
	teardownClients()
	cl.shutdown(e.violate)

	e.checkWire()
	relocs := coord.MetricsSnapshot().Relocations
	if !anyTrue(e.planKilled) && !anyTrue(e.planDrained) && relocs != 0 {
		// Without kills or drains a relocation can still be legitimate:
		// honest admission contention 429s a fleet block. But then the
		// wire log must hold the rejected band attempt — a relocation
		// with every recorded block exchange clean has no cause.
		rejected := false
		for _, a := range e.injector.snapshot() {
			if a.band && a.status != http.StatusOK {
				rejected = true
				break
			}
		}
		if !rejected {
			e.violate("relocations: %d with no kills, no drains and no failed block exchange on the wire", relocs)
		}
	}
	if err := leak.Err(2 * time.Second); err != nil {
		e.violate("%v", err)
	}
	if ownTrace {
		os.RemoveAll(traceDir)
	}

	rep := &Report{
		Schedule:    s,
		Classes:     e.classes,
		Violations:  e.violations,
		Relocations: relocs,
		Elapsed:     time.Since(start),
	}
	for _, a := range e.injector.snapshot() {
		if !a.band && a.status == http.StatusTooManyRequests {
			rep.Rejected429++
		}
	}
	return rep, nil
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// finish records an op's outcome class exactly once.
func (e *engine) finish(res *opResult, class string, resp *api.SolveResponse, fres *fleet.Result, err error) {
	e.mu.Lock()
	res.class, res.resp, res.fres, res.err = class, resp, fres, err
	e.classes[class]++
	e.mu.Unlock()
	e.logf("op %d %s -> %s (err=%v)", res.op.ID, res.op.Kind, class, err)
}

func (e *engine) execute(ctx context.Context, res *opResult) {
	op := res.op
	switch op.Kind {
	case OpSolve, OpReplay:
		e.runSolve(ctx, res)
	case OpFleet:
		e.runFleet(ctx, res)
	case OpMetrics:
		e.runMetrics(ctx, res)
	case OpProm:
		e.runProm(ctx, res)
	case OpTrace:
		e.runTrace(ctx, res)
	case OpKill:
		e.cluster.kill(op.Node)
		e.finish(res, classOK, nil, nil, nil)
	case OpDrain:
		e.cluster.drain(op.Node)
		// The contract under test: readiness flips while the listener
		// still answers.
		if st := probe(e.cluster.nodes[op.Node].base() + "/readyz"); st != http.StatusServiceUnavailable {
			e.violate("op %d: node %d readyz = %d right after BeginDrain, want 503", op.ID, op.Node, st)
		}
		e.finish(res, classOK, nil, nil, nil)
	case OpArm:
		e.cluster.nodes[op.Node].gate.arm(op.Holds, time.Duration(op.HoldUS)*time.Microsecond)
		e.finish(res, classOK, nil, nil, nil)
	default:
		e.violate("op %d: unknown kind %q", op.ID, op.Kind)
		e.finish(res, classSkipped, nil, nil, nil)
	}
}

func (e *engine) solveRequest(op Op) *api.SolveRequest {
	return &api.SolveRequest{
		Rows: op.Rows, Cols: op.Cols, Mask: op.Mask, Strategy: op.Strategy,
		Workload:    api.WorkloadSpec{Kind: op.Workload, Seed: op.Seed},
		DeadlineMS:  int64(op.DeadlineMS),
		ReturnCells: op.ReturnCells,
	}
}

func (e *engine) clientFor(op Op) *client.Client {
	cs := e.clients[e.cluster.nodes[op.Node].base()]
	if op.Codec == "binary" {
		return cs[1]
	}
	return cs[0]
}

func (e *engine) runSolve(ctx context.Context, res *opResult) {
	op := res.op
	if op.Kind == OpReplay {
		// A replay races its original only in dispatch; the exchange
		// waits, so a hit/miss assertion on the result cache is sound.
		select {
		case <-e.results[op.ReplayOf].done:
		case <-ctx.Done():
			e.finish(res, classAborted, nil, nil, ctx.Err())
			return
		}
	}
	e.injector.armFaults(op.ID, op.Faults)
	cctx := withOpID(ctx, op.ID)
	var cancelFn context.CancelFunc
	if op.CancelAfterUS > 0 {
		cctx, cancelFn = context.WithCancel(cctx)
		stop := time.AfterFunc(time.Duration(op.CancelAfterUS)*time.Microsecond, cancelFn)
		defer stop.Stop()
		defer cancelFn()
	}
	resp, err := e.clientFor(op).Solve(cctx, e.solveRequest(op))
	class := e.classify(res, err)
	if class == classOK {
		e.checkSolveResult(op, resp)
		if op.Kind == OpReplay {
			orig := e.results[op.ReplayOf]
			if orig.class == classOK && !resp.Cached {
				e.violate("op %d: replay of op %d missed the result cache", op.ID, op.ReplayOf)
			}
		}
	}
	e.finish(res, class, resp, nil, err)
}

func (e *engine) runFleet(ctx context.Context, res *opResult) {
	op := res.op
	fres, err := e.coord.Solve(withOpID(ctx, op.ID), e.solveRequest(op))
	class := e.classify(res, err)
	if class == classOK {
		want := e.oracleDigest(op)
		if want != "" && fres.Digest != want {
			e.violate("op %d: fleet digest %s, oracle %s (%s %dx%d mask %q seed %d)",
				op.ID, fres.Digest, want, op.Workload, op.Rows, op.Cols, op.Mask, op.Seed)
		}
		if want != "" && server.DigestCells(fres.Rows, fres.Cols, fres.Cells) != want {
			e.violate("op %d: fleet assembled cells do not match the oracle table", op.ID)
		}
		// A fleet solve dispatched after a node died has a band homed
		// on the corpse (default banding covers every node), so a clean
		// result without a single relocation means the failover path
		// was never taken.
		if first := e.cluster.firstKillAt(); first > 0 && res.startedNS > first &&
			op.Rows >= e.s.Nodes && fres.Stats.Relocations == 0 {
			e.violate("op %d: fleet solve after node death reported zero relocations", op.ID)
		}
	}
	e.finish(res, class, nil, fres, err)
}

func (e *engine) runMetrics(ctx context.Context, res *opResult) {
	op := res.op
	snap, err := e.clients[e.cluster.nodes[op.Node].base()][0].Metrics(ctx)
	class := e.classify(res, err)
	if class == classOK && snap == nil {
		e.violate("op %d: metrics scrape returned a nil snapshot", op.ID)
	}
	e.finish(res, class, nil, nil, err)
}

func (e *engine) runProm(ctx context.Context, res *opResult) {
	op := res.op
	url := e.cluster.nodes[op.Node].base() + "/v1/metrics?format=prometheus"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		e.finish(res, classSkipped, nil, nil, err)
		return
	}
	resp, err := e.scrape.Do(req)
	if err != nil {
		class := classTransport
		if !e.allowedTransport(op) {
			e.violate("op %d: prom scrape of healthy node %d failed in transport: %v", op.ID, op.Node, err)
		}
		e.finish(res, class, nil, nil, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		e.violate("op %d: prom scrape status %d", op.ID, resp.StatusCode)
		e.finish(res, classTransport, nil, nil, fmt.Errorf("prom status %d", resp.StatusCode))
		return
	}
	lint, err := promlint.Lint(resp.Body)
	if err != nil {
		e.violate("op %d: prom exposition unreadable: %v", op.ID, err)
	} else if lerr := lint.Err(); lerr != nil {
		e.violate("op %d: prom exposition fails lint: %v", op.ID, lerr)
	}
	e.finish(res, classOK, nil, nil, nil)
}

func (e *engine) runTrace(ctx context.Context, res *opResult) {
	op := res.op
	select {
	case <-e.results[op.ReplayOf].done:
	case <-ctx.Done():
		e.finish(res, classAborted, nil, nil, ctx.Err())
		return
	}
	orig := e.results[op.ReplayOf]
	if orig.class != classOK || orig.fres == nil || orig.fres.FleetID == "" {
		e.finish(res, classSkipped, nil, nil, nil)
		return
	}
	nt, err := e.clients[e.cluster.nodes[op.Node].base()][0].Trace(ctx, orig.fres.FleetID)
	if err != nil {
		// 404 is legal: relocation or banding may have kept this fleet
		// solve's blocks off the probed node entirely.
		if errors.Is(err, client.ErrInvalid) {
			e.finish(res, classOK, nil, nil, nil)
			return
		}
		class := e.classify(res, err)
		e.finish(res, class, nil, nil, err)
		return
	}
	if nt == nil {
		e.violate("op %d: trace fetch returned no document", op.ID)
	}
	e.finish(res, classOK, nil, nil, nil)
}

// classify maps an op's error to its outcome class and flags classes
// the op's schedule position does not permit. The conditions are
// schedule-derived (planned kills/drains, declared faults), never racy
// runtime state, so a legal interleaving can never produce a spurious
// violation.
func (e *engine) classify(res *opResult, err error) string {
	op := res.op
	if err == nil {
		return classOK
	}
	var apiErr *client.APIError
	switch {
	case errors.Is(err, context.Canceled) && op.CancelAfterUS > 0:
		return classCanceled
	case errors.Is(err, client.ErrOverloaded):
		if errors.As(err, &apiErr) && apiErr.RetryAfter <= 0 {
			e.violate("op %d: 429 without a Retry-After hint", op.ID)
		}
		return classOverloaded
	case errors.Is(err, client.ErrUnavailable):
		if !e.allowedUnavailable(op) {
			e.violate("op %d (%s): unavailable with no kill or drain scheduled: %v", op.ID, op.Kind, err)
		}
		return classUnavail
	case errors.Is(err, client.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		if op.DeadlineMS == 0 && op.CancelAfterUS == 0 {
			e.violate("op %d (%s): timeout without a deadline or cancellation: %v", op.ID, op.Kind, err)
		}
		return classTimeout
	case errors.Is(err, client.ErrWireVersion):
		e.violate("op %d (%s): wire version rejection: %v", op.ID, op.Kind, err)
		return classTransport
	case errors.Is(err, client.ErrInvalid):
		e.violate("op %d (%s): request rejected as invalid: %v", op.ID, op.Kind, err)
		return classTransport
	case errors.Is(err, context.Canceled):
		if e.aborted() {
			return classAborted
		}
		e.violate("op %d (%s): canceled without a scheduled cancellation: %v", op.ID, op.Kind, err)
		return classCanceled
	default:
		if !e.allowedTransport(op) {
			e.violate("op %d (%s): untyped transport error with no fault or kill scheduled: %v", op.ID, op.Kind, err)
		}
		return classTransport
	}
}

func (e *engine) aborted() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hangAborted
}

// allowedUnavailable: a 503 needs a scheduled drain or kill — of the
// op's target for single-node ops, of any node for fleet ops (bands
// visit everyone).
func (e *engine) allowedUnavailable(op Op) bool {
	if op.Kind == OpFleet {
		return anyTrue(e.planKilled) || anyTrue(e.planDrained)
	}
	return e.planKilled[op.Node] || e.planDrained[op.Node]
}

// allowedTransport: a raw transport failure needs a declared wire fault
// or a scheduled kill in the op's blast radius.
func (e *engine) allowedTransport(op Op) bool {
	if len(op.Faults) > 0 {
		return true
	}
	if op.Kind == OpFleet {
		return anyTrue(e.planKilled)
	}
	return e.planKilled[op.Node]
}

// oracleDigest computes (memoized) the sequential oracle's digest for
// an op's declarative workload. Empty on a workload the oracle cannot
// build — which is itself a violation, since the server accepted it.
func (e *engine) oracleDigest(op Op) string {
	key := fmt.Sprintf("%s|%d|%d|%d|%s", op.Workload, op.Seed, op.Rows, op.Cols, op.Mask)
	e.mu.Lock()
	if d, ok := e.oracle[key]; ok {
		e.mu.Unlock()
		return d
	}
	e.mu.Unlock()
	p, err := server.BuildProblem(e.solveRequest(op))
	if err != nil {
		e.violate("op %d: oracle cannot build accepted workload: %v", op.ID, err)
		return ""
	}
	g, err := core.Solve(p)
	if err != nil {
		e.violate("op %d: oracle solve failed: %v", op.ID, err)
		return ""
	}
	d := server.DigestGrid(g)
	e.mu.Lock()
	e.oracle[key] = d
	e.mu.Unlock()
	return d
}

// checkSolveResult holds every 200 to the oracle: digest equality
// always, cell-for-cell equality when the response carries the table.
func (e *engine) checkSolveResult(op Op, resp *api.SolveResponse) {
	if resp.Status != "done" {
		e.violate("op %d: 200 with status %q", op.ID, resp.Status)
	}
	want := e.oracleDigest(op)
	if want == "" {
		return
	}
	if resp.Digest != want {
		e.violate("op %d: digest %s, oracle %s (%s %dx%d mask %q seed %d cached=%v)",
			op.ID, resp.Digest, want, op.Workload, op.Rows, op.Cols, op.Mask, op.Seed, resp.Cached)
	}
	if op.ReturnCells {
		if len(resp.Cells) != op.Rows {
			e.violate("op %d: asked for cells, got %d rows of %d", op.ID, len(resp.Cells), op.Rows)
			return
		}
		flat := make([]int64, 0, op.Rows*op.Cols)
		for i, row := range resp.Cells {
			if len(row) != op.Cols {
				e.violate("op %d: returned cells row %d has %d values, want %d", op.ID, i, len(row), op.Cols)
				return
			}
			flat = append(flat, row...)
		}
		if server.DigestCells(resp.Rows, resp.Cols, flat) != want {
			e.violate("op %d: returned cells do not match the oracle table", op.ID)
		}
	}
}

// checkWire closes the loop on the recorded /v1/solve attempts: after
// any 429/503 the next attempt of the same op must sit at least the
// server's Retry-After hint away, and an armed run must actually have
// produced pushback on the armed node.
func (e *engine) checkWire() {
	log := e.injector.snapshot()
	byOp := make(map[int][]attempt)
	var opIDs []int
	for _, a := range log {
		if a.band {
			continue // parallel bands carry no per-op backoff ordering
		}
		if _, seen := byOp[a.op]; !seen {
			opIDs = append(opIDs, a.op)
		}
		byOp[a.op] = append(byOp[a.op], a)
	}
	sort.Ints(opIDs)
	retryAfter := time.Duration(e.s.RetryAfterMS) * time.Millisecond
	for _, id := range opIDs {
		atts := byOp[id]
		sort.Slice(atts, func(i, j int) bool { return atts[i].t.Before(atts[j].t) })
		for i := 1; i < len(atts); i++ {
			prev := atts[i-1]
			if prev.status != http.StatusTooManyRequests && prev.status != http.StatusServiceUnavailable {
				continue
			}
			if gap := atts[i].t.Sub(prev.t); gap < retryAfter {
				e.violate("op %d: retried %s after a %d, Retry-After is %s — backoff not honored",
					id, gap, prev.status, retryAfter)
			}
		}
	}
	for _, armNode := range e.planArms {
		n429 := 0
		for _, a := range log {
			if !a.band && a.node == armNode && a.status == http.StatusTooManyRequests {
				n429++
			}
		}
		if n429 == 0 {
			e.violate("arm: node %d saturated but no solve attempt was pushed back with 429", armNode)
		}
		if parks := e.cluster.nodes[armNode].gate.parks.Load(); parks == 0 {
			e.violate("arm: node %d gate armed but parked no admitted solves", armNode)
		}
	}
}
