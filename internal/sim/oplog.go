// Op-log persistence: a failing run writes its Schedule as JSON so
// `lddpsim -replay=oplog.json` re-executes the identical operation
// sequence. The format is the Schedule struct verbatim — stable field
// names, omitted zero fields — and marshaling is deterministic (struct
// order, no maps), so equal schedules produce equal bytes.
package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteSchedule writes s as indented JSON to w.
func WriteSchedule(w io.Writer, s *Schedule) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// SaveSchedule writes s to path (0644, truncating).
func SaveSchedule(path string, s *Schedule) error {
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadSchedule decodes and validates one schedule.
func ReadSchedule(r io.Reader) (*Schedule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	s := new(Schedule)
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("sim: decoding op log: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadSchedule reads a schedule from path.
func LoadSchedule(path string) (*Schedule, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return ReadSchedule(fh)
}
