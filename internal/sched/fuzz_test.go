package sched_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// FuzzConfig throws arbitrary configurations at Validate and New: an
// invalid configuration must be reported by Validate and refused by New,
// and any configuration New accepts must yield a scheduler that can run a
// tiny submission and close without panicking or deadlocking. Workers is
// folded into a small positive range before New so the fuzzer cannot ask
// for millions of OS threads; everything else is passed through raw.
func FuzzConfig(f *testing.F) {
	f.Add(0, 0, 0, 0, int64(0), 0)
	f.Add(4, 256, 8, 512, int64(1<<16), 8)
	f.Add(-1, -1, -1, -1, int64(-1), -1)
	f.Add(sched.MaxWorkers+1, sched.MaxQueueBound+1, sched.MaxActiveBound+1,
		sched.MaxChunk+1, int64(1), sched.MaxSmallBoost+1)
	f.Fuzz(func(t *testing.T, workers, queue, active, chunk int, smallCells int64, boost int) {
		cfg := sched.Config{
			Workers:    workers,
			QueueBound: queue,
			MaxActive:  active,
			Chunk:      chunk,
			SmallCells: smallCells,
			SmallBoost: boost,
		}
		verr := cfg.Validate()
		if workers > 0 {
			cfg.Workers = 1 + workers%4
		}
		s, nerr := sched.New(cfg)
		if verr != nil {
			// Workers folding cannot fix the other fields, and an
			// over-limit Workers stays invalid only if it was the sole
			// problem; re-validate the folded config for the comparison.
			if cfg.Validate() != nil && nerr == nil {
				t.Fatalf("Validate rejected %+v but New accepted it", cfg)
			}
			if nerr != nil {
				return
			}
		}
		if nerr != nil {
			if cfg.Validate() == nil {
				t.Fatalf("Validate accepted %+v but New rejected it: %v", cfg, nerr)
			}
			return
		}
		defer s.Close()
		p := &core.Problem[int64]{
			Rows: 3, Cols: 3, Deps: core.DepW | core.DepN,
			F: func(i, j int, nb core.Neighbors[int64]) int64 { return nb.W + nb.N + 1 },
		}
		g, err := sched.Solve(context.Background(), s, p, sched.SubmitOptions{})
		if err != nil {
			t.Fatalf("solve on accepted config %+v: %v", cfg, err)
		}
		if g.At(2, 2) == 0 {
			t.Fatal("solve produced an untouched grid")
		}
	})
}
