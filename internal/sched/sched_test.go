package sched_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/table"
	"repro/internal/trace"
)

// testProblem mirrors the core test recurrence: every contributing
// neighbour feeds the cell with a position-dependent term, so any
// mis-scheduled read changes the output.
func testProblem(m core.DepMask, rows, cols int) *core.Problem[int64] {
	return &core.Problem[int64]{
		Name: "sched-" + m.String(),
		Rows: rows,
		Cols: cols,
		Deps: m,
		F: func(i, j int, nb core.Neighbors[int64]) int64 {
			v := int64(i*31+j*17) % 13
			if m.Has(core.DepW) {
				v += 2*nb.W + 1
			}
			if m.Has(core.DepNW) {
				v += 3 * nb.NW
			}
			if m.Has(core.DepN) {
				v += max(nb.N, v)
			}
			if m.Has(core.DepNE) {
				v += nb.NE ^ 5
			}
			return v % 1_000_003
		},
		Boundary:     func(i, j int) int64 { return int64(i + 2*j) },
		BytesPerCell: 8,
	}
}

// gateWorkload is a one-front workload whose Run blocks on gate; started
// is closed when the worker enters it. It pins a worker deterministically.
func gateWorkload(started, gate chan struct{}) *core.Workload {
	var once sync.Once
	return &core.Workload{
		Info:       core.SolveInfo{Solver: "sched", Problem: "gate", Rows: 1, Cols: 1, Fronts: 1},
		Fronts:     1,
		TotalCells: 1,
		Size:       func(int) int { return 1 },
		Run: func(int, int, int) {
			once.Do(func() { close(started) })
			<-gate
		},
	}
}

// sizedWorkload is a trivial workload whose only interesting property is
// its TotalCells (for admission-priority tests).
func sizedWorkload(name string, cells int64) *core.Workload {
	return &core.Workload{
		Info:       core.SolveInfo{Solver: "sched", Problem: name, Rows: 1, Cols: 1, Fronts: 1},
		Fronts:     1,
		TotalCells: cells,
		Size:       func(int) int { return 1 },
		Run:        func(int, int, int) {},
	}
}

// eventCollector records SolveStart order and the SchedEvent stream.
type eventCollector struct {
	mu     sync.Mutex
	starts []core.SolveInfo
	ends   []error
	events []core.SchedEvent
}

func (c *eventCollector) SolveStart(info core.SolveInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.starts = append(c.starts, info)
}
func (c *eventCollector) Phase(string, time.Duration)     {}
func (c *eventCollector) FrontSize(int)                   {}
func (c *eventCollector) WorkerStats(core.WorkerStats)    {}
func (c *eventCollector) Transfer(core.TransferStats)     {}
func (c *eventCollector) SolveEnd(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ends = append(c.ends, err)
}
func (c *eventCollector) SchedEvent(ev core.SchedEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
}

func (c *eventCollector) kinds(id int64) []core.SchedEventKind {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ks []core.SchedEventKind
	for _, ev := range c.events {
		if ev.ID == id {
			ks = append(ks, ev.Kind)
		}
	}
	return ks
}

func newScheduler(t *testing.T, cfg sched.Config) *sched.Scheduler {
	t.Helper()
	s, err := sched.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// Every mask through the scheduler must agree exactly with the sequential
// oracle, with a chunk small enough to force multi-chunk fronts and
// cross-front claims.
func TestSchedulerSolveMatchesSequential(t *testing.T) {
	s := newScheduler(t, sched.Config{Workers: 4, Chunk: 8})
	dims := [][2]int{{1, 1}, {1, 9}, {9, 1}, {8, 8}, {13, 37}, {37, 13}}
	for _, m := range core.AllDepMasks() {
		for _, d := range dims {
			p := testProblem(m, d[0], d[1])
			want, err := core.Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sched.Solve(context.Background(), s, p, sched.SubmitOptions{})
			if err != nil {
				t.Fatalf("%s %v: %v", m, d, err)
			}
			if !table.EqualComparable(want, got) {
				t.Errorf("%s %dx%d: scheduler solve differs from sequential", m, d[0], d[1])
			}
		}
	}
}

// A single-column knight-pattern table has zero-size fronts at odd t, so
// once the inline budget runs out the advance loop lands on empty fronts.
// Publishing one would wedge the solve forever (an empty front is never
// claimable and has no pending chunks); the scheduler must skip them.
// Regression test: 34x1 used to hang at the t=65 publish point.
func TestSchedulerEmptyKnightFronts(t *testing.T) {
	s := newScheduler(t, sched.Config{Workers: 2, Chunk: 8})
	for _, rows := range []int{34, 101} {
		p := testProblem(core.DepW|core.DepNE, rows, 1)
		want, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		got, err := sched.Solve(ctx, s, p, sched.SubmitOptions{})
		cancel()
		if err != nil {
			t.Fatalf("%dx1 knight solve: %v", rows, err)
		}
		if !table.EqualComparable(want, got) {
			t.Errorf("%dx1 knight solve differs from sequential", rows)
		}
	}
}

// Many concurrent submissions on a small shared pool must all complete
// correctly — the scheduler's whole reason to exist.
func TestSchedulerConcurrentSubmissions(t *testing.T) {
	s := newScheduler(t, sched.Config{Workers: 4, Chunk: 16, MaxActive: 6})
	masks := core.AllDepMasks()
	const n = 30
	var wg sync.WaitGroup
	errs := make([]error, n)
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			m := masks[k%len(masks)]
			p := testProblem(m, 20+k, 35-k%10)
			want, err := core.Solve(p)
			if err != nil {
				errs[k] = err
				return
			}
			got, err := sched.Solve(context.Background(), s, p, sched.SubmitOptions{})
			if err != nil {
				errs[k] = err
				return
			}
			if !table.EqualComparable(want, got) {
				errs[k] = fmt.Errorf("%s: result differs from sequential", m)
			}
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Errorf("submission %d: %v", k, err)
		}
	}
	st := s.Stats()
	if st.Submitted != n || st.Done != n {
		t.Errorf("stats: submitted=%d done=%d, want %d/%d", st.Submitted, st.Done, n, n)
	}
	if st.Canceled != 0 || st.Rejected != 0 {
		t.Errorf("stats: canceled=%d rejected=%d, want 0/0", st.Canceled, st.Rejected)
	}
}

func TestSchedulerRejectsAfterClose(t *testing.T) {
	s, err := sched.New(sched.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, err = sched.Solve(context.Background(), s, testProblem(core.DepN, 3, 3), sched.SubmitOptions{})
	var rej *sched.Rejected
	if !errors.As(err, &rej) || !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("submit after close: got %v, want *Rejected wrapping ErrClosed", err)
	}
}

func TestSchedulerRejectsExpiredContext(t *testing.T) {
	s := newScheduler(t, sched.Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sched.Solve(ctx, s, testProblem(core.DepN, 3, 3), sched.SubmitOptions{})
	var rej *sched.Rejected
	if !errors.As(err, &rej) || !errors.Is(err, context.Canceled) {
		t.Fatalf("submit with dead ctx: got %v, want *Rejected wrapping context.Canceled", err)
	}
}

func TestSchedulerQueueFull(t *testing.T) {
	s := newScheduler(t, sched.Config{Workers: 1, QueueBound: 1, MaxActive: 1})
	started, gate := make(chan struct{}), make(chan struct{})
	hGate, err := s.Submit(context.Background(), gateWorkload(started, gate), sched.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the only worker is now pinned inside the gate solve
	hQ, err := s.Submit(context.Background(), sizedWorkload("queued", 1), sched.SubmitOptions{})
	if err != nil {
		t.Fatalf("first queued submission: %v", err)
	}
	_, err = s.Submit(context.Background(), sizedWorkload("overflow", 1), sched.SubmitOptions{})
	var rej *sched.Rejected
	if !errors.As(err, &rej) || !errors.Is(err, sched.ErrQueueFull) {
		t.Fatalf("overflow submission: got %v, want *Rejected wrapping ErrQueueFull", err)
	}
	if rej.QueueDepth != 1 {
		t.Errorf("rejection queue depth = %d, want 1", rej.QueueDepth)
	}
	close(gate)
	if err := hGate.Wait(); err != nil {
		t.Errorf("gate solve: %v", err)
	}
	if err := hQ.Wait(); err != nil {
		t.Errorf("queued solve: %v", err)
	}
}

// A submission whose context expires while still queued is rejected (it
// never ran); one canceled mid-run returns *core.Canceled. The two types
// partition the non-success outcomes.
func TestSchedulerCancelWhileQueued(t *testing.T) {
	s := newScheduler(t, sched.Config{Workers: 1, MaxActive: 1})
	started, gate := make(chan struct{}), make(chan struct{})
	hGate, err := s.Submit(context.Background(), gateWorkload(started, gate), sched.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cause := errors.New("deadline for the test")
	ctx, cancel := context.WithCancelCause(context.Background())
	hQ, err := s.Submit(ctx, sizedWorkload("queued", 1), sched.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cancel(cause)
	err = hQ.Wait() // must return without the gate ever opening
	var rej *sched.Rejected
	if !errors.As(err, &rej) || !errors.Is(err, cause) {
		t.Fatalf("queued cancel: got %v, want *Rejected wrapping the cause", err)
	}
	close(gate)
	if err := hGate.Wait(); err != nil {
		t.Errorf("gate solve: %v", err)
	}
}

func TestSchedulerCancelWhileRunning(t *testing.T) {
	s := newScheduler(t, sched.Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	wl := &core.Workload{
		Info:       core.SolveInfo{Solver: "sched", Problem: "cancel-mid-run", Rows: 1, Cols: 10, Fronts: 10},
		Fronts:     10,
		TotalCells: 10,
		Size:       func(int) int { return 1 },
		Run: func(t, _, _ int) {
			once.Do(func() { close(started) })
			if t > 0 {
				<-ctx.Done() // later fronts stall until the cancel lands
			}
		},
	}
	h, err := s.Submit(ctx, wl, sched.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel()
	err = h.Wait()
	var canceled *core.Canceled
	if !errors.As(err, &canceled) {
		t.Fatalf("mid-run cancel: got %v, want *core.Canceled", err)
	}
	if canceled.Solver != "sched" {
		t.Errorf("canceled.Solver = %q, want \"sched\"", canceled.Solver)
	}
}

// With the only worker pinned, a small solve queued after a large one must
// be admitted first (bounded jump), and the collector must see the full
// lifecycle with matching solve IDs.
func TestSchedulerSmallSolvePriorityAndCollector(t *testing.T) {
	coll := &eventCollector{}
	s := newScheduler(t, sched.Config{
		Workers: 1, MaxActive: 1, SmallCells: 100, SmallBoost: 8, Collector: coll,
	})
	started, gate := make(chan struct{}), make(chan struct{})
	hGate, err := s.Submit(context.Background(), gateWorkload(started, gate), sched.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	hBig, err := s.Submit(context.Background(), sizedWorkload("big", 1_000_000), sched.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hSmall, err := s.Submit(context.Background(), sizedWorkload("small", 10), sched.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	for _, h := range []*sched.Handle{hGate, hBig, hSmall} {
		if err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	mu := coll.kinds(hSmall.ID())
	coll.mu.Lock()
	defer coll.mu.Unlock()
	if len(coll.starts) != 3 || len(coll.ends) != 3 {
		t.Fatalf("collector saw %d starts / %d ends, want 3/3", len(coll.starts), len(coll.ends))
	}
	// Admission order: gate first, then the small solve jumps the big one.
	if got := []string{coll.starts[0].Problem, coll.starts[1].Problem, coll.starts[2].Problem}; got[1] != "small" || got[2] != "big" {
		t.Errorf("admission order %v, want gate, small, big", got)
	}
	for i, info := range coll.starts {
		if info.ID == 0 {
			t.Errorf("start %d: SolveInfo.ID is 0, want scheduler-assigned ID", i)
		}
	}
	if hSmall.ID() == hBig.ID() || hSmall.ID() == 0 {
		t.Errorf("handle IDs not distinct: small=%d big=%d", hSmall.ID(), hBig.ID())
	}
	// Per-submission lifecycle in the SchedEvent stream.
	want := []core.SchedEventKind{core.SchedEnqueued, core.SchedStarted, core.SchedDone}
	if len(mu) != len(want) {
		t.Fatalf("small solve events %v, want %v", mu, want)
	}
	for i := range want {
		if mu[i] != want[i] {
			t.Fatalf("small solve events %v, want %v", mu, want)
		}
	}
}

// A large submission is passed by at most SmallBoost later small ones:
// the boost is a bounded jump, not a separate priority class.
func TestSchedulerSmallBoostIsBounded(t *testing.T) {
	coll := &eventCollector{}
	s := newScheduler(t, sched.Config{
		Workers: 1, MaxActive: 1, SmallCells: 100, SmallBoost: 2, Collector: coll,
	})
	started, gate := make(chan struct{}), make(chan struct{})
	hGate, err := s.Submit(context.Background(), gateWorkload(started, gate), sched.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var handles []*sched.Handle
	hBig, err := s.Submit(context.Background(), sizedWorkload("big", 1_000_000), sched.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	handles = append(handles, hBig)
	for k := 0; k < 4; k++ {
		h, err := s.Submit(context.Background(), sizedWorkload(fmt.Sprintf("small%d", k), 10), sched.SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	close(gate)
	if err := hGate.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, h := range handles {
		if err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	coll.mu.Lock()
	defer coll.mu.Unlock()
	pos := -1
	for i, info := range coll.starts {
		if info.Problem == "big" {
			pos = i
		}
	}
	// starts[0] is the gate; with boost 2, only small0 (arrival distance
	// 1, strictly inside the boost) jumps the big solve — small1 ties on
	// score and the tie goes to the earlier arrival.
	if pos != 2 {
		order := make([]string, len(coll.starts))
		for i, info := range coll.starts {
			order[i] = info.Problem
		}
		t.Errorf("big solve admitted at position %d (order %v), want 2", pos, order)
	}
}

// The per-submission tracer must carry the queue span and chunk/inline
// events of its own solve only.
func TestSchedulerTracer(t *testing.T) {
	s := newScheduler(t, sched.Config{Workers: 2, Chunk: 8})
	rec := trace.NewRecorder(0)
	p := testProblem(core.DepW|core.DepN, 40, 40)
	got, err := sched.Solve(context.Background(), s, p, sched.SubmitOptions{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, got) {
		t.Fatal("traced solve differs from sequential")
	}
	events := rec.Events()
	counts := map[trace.Kind]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	if counts[trace.KindQueue] != 1 {
		t.Errorf("queue spans = %d, want 1", counts[trace.KindQueue])
	}
	if counts[trace.KindChunk]+counts[trace.KindInline] == 0 {
		t.Error("no chunk or inline events recorded")
	}
	if rec.Meta().Solver != "sched" {
		t.Errorf("trace meta solver = %q, want \"sched\"", rec.Meta().Solver)
	}
}

func TestSchedulerStatsAndWorkerLoads(t *testing.T) {
	s := newScheduler(t, sched.Config{Workers: 2, Chunk: 8})
	p := testProblem(core.DepW|core.DepN, 64, 64)
	for k := 0; k < 3; k++ {
		if _, err := sched.Solve(context.Background(), s, p, sched.SubmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Submitted != 3 || st.Done != 3 {
		t.Errorf("submitted=%d done=%d, want 3/3", st.Submitted, st.Done)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("worker loads = %d entries, want 2", len(st.Workers))
	}
	var cells int64
	for _, wl := range st.Workers {
		cells += wl.Cells
	}
	if want := int64(3 * 64 * 64); cells != want {
		t.Errorf("total cells across workers = %d, want %d", cells, want)
	}
	if st.QueueDepth != 0 || st.Active != 0 {
		t.Errorf("idle scheduler reports queue=%d active=%d", st.QueueDepth, st.Active)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []sched.Config{
		{Workers: sched.MaxWorkers + 1},
		{QueueBound: sched.MaxQueueBound + 1},
		{MaxActive: sched.MaxActiveBound + 1},
		{Chunk: sched.MaxChunk + 1},
		{SmallBoost: sched.MaxSmallBoost + 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d: Validate accepted an out-of-range value", i)
		}
		if _, err := sched.New(cfg); err == nil {
			t.Errorf("config %d: New accepted an out-of-range value", i)
		}
	}
	// Zero and negative values select defaults.
	for _, cfg := range []sched.Config{{}, {Workers: -1, QueueBound: -1, MaxActive: -1, Chunk: -1, SmallCells: -1, SmallBoost: -1}} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("default-selecting config rejected: %v", err)
		}
	}
}

func TestSubmitRejectsInvalidWorkload(t *testing.T) {
	s := newScheduler(t, sched.Config{Workers: 1})
	if _, err := s.Submit(context.Background(), nil, sched.SubmitOptions{}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := s.Submit(context.Background(), &core.Workload{Fronts: 1}, sched.SubmitOptions{}); err == nil {
		t.Error("workload without Size/Run accepted")
	}
	wl := sizedWorkload("chunk", 1)
	if _, err := s.Submit(context.Background(), wl, sched.SubmitOptions{Chunk: sched.MaxChunk + 1}); err == nil {
		t.Error("oversized submission chunk accepted")
	}
}
