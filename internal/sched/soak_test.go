package sched_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/table"
	"repro/internal/testutil"
)

// runSoak drives a shared scheduler with n concurrent submissions of
// randomized shapes, masks, deadlines, and cancellations, and checks the
// three invariants the scheduler promises:
//
//  1. every submission ends in exactly one of {done, canceled, rejected},
//  2. a done submission's table matches the sequential oracle exactly,
//  3. closing the scheduler leaks no goroutines.
//
// The randomness is seeded, so a failure reproduces with the same seed.
func runSoak(t *testing.T, n, maxDim int, seed int64) {
	t.Helper()
	leak := testutil.StartLeakCheck()
	s, err := sched.New(sched.Config{Workers: 4, MaxActive: 8, QueueBound: 32, Chunk: 16})
	if err != nil {
		t.Fatal(err)
	}
	masks := core.AllDepMasks()
	var (
		wg                       sync.WaitGroup
		mu                       sync.Mutex
		done, canceled, rejected int64
		failures                 []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(k)))
			m := masks[rng.Intn(len(masks))]
			rows := 1 + rng.Intn(maxDim)
			cols := 1 + rng.Intn(maxDim)
			p := testProblem(m, rows, cols)
			ctx := context.Background()
			var cancel context.CancelFunc
			switch rng.Intn(4) {
			case 0: // tight deadline: may expire queued, mid-run, or never
				ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3_000_000)))
			case 1: // explicit cancel racing the solve
				ctx, cancel = context.WithCancel(ctx)
				delay := time.Duration(rng.Intn(2_000_000))
				go func() { time.Sleep(delay); cancel() }()
			}
			if cancel != nil {
				defer cancel()
			}
			g, err := sched.Solve(ctx, s, p, sched.SubmitOptions{})
			var rej *sched.Rejected
			var can *core.Canceled
			switch {
			case err == nil:
				if g == nil {
					fail("submission %d: done with nil grid", k)
					return
				}
				want, serr := core.Solve(p)
				if serr != nil {
					fail("submission %d: oracle failed: %v", k, serr)
					return
				}
				if !table.EqualComparable(want, g) {
					fail("submission %d: %s %dx%d differs from sequential (seed %d)", k, m, rows, cols, seed)
					return
				}
				mu.Lock()
				done++
				mu.Unlock()
			case errors.As(err, &rej):
				if g != nil {
					fail("submission %d: rejected but grid returned", k)
					return
				}
				mu.Lock()
				rejected++
				mu.Unlock()
			case errors.As(err, &can):
				if g != nil {
					fail("submission %d: canceled but grid returned", k)
					return
				}
				mu.Lock()
				canceled++
				mu.Unlock()
			default:
				fail("submission %d: unexpected error type %T: %v", k, err, err)
			}
		}(k)
	}
	wg.Wait()
	s.Close()
	for _, f := range failures {
		t.Error(f)
	}
	if total := done + canceled + rejected + int64(len(failures)); total != int64(n) {
		t.Errorf("outcomes %d done + %d canceled + %d rejected != %d submissions", done, canceled, rejected, n)
	}
	st := s.Stats()
	if st.Done != done || st.Canceled != canceled || st.Rejected != rejected {
		t.Errorf("stats done/canceled/rejected = %d/%d/%d, observed %d/%d/%d",
			st.Done, st.Canceled, st.Rejected, done, canceled, rejected)
	}
	if st.QueueDepth != 0 || st.Active != 0 {
		t.Errorf("closed scheduler reports queue=%d active=%d", st.QueueDepth, st.Active)
	}
	t.Logf("soak: %d done, %d canceled, %d rejected, %d steals, peak queue %d, peak active %d",
		done, canceled, rejected, st.Steals, st.PeakQueueDepth, st.PeakActive)
	// Workers exited at Close; give stragglers (test-side cancel timers)
	// a moment before declaring a leak.
	if err := leak.Err(time.Second); err != nil {
		t.Error(err)
	}
}

// TestSchedulerSoak is the short always-on soak (a couple of seconds).
// The long variant runs under -tags soak.
func TestSchedulerSoak(t *testing.T) {
	runSoak(t, 60, 48, 1)
}
