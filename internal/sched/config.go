// Package sched implements the process-wide solver scheduler: one
// long-lived worker pool shared by many concurrent LDDP solves.
//
// The per-solve pool of internal/core (pool.go) saturates a machine for a
// single wide solve but serves a solve-heavy service badly: every Solve
// call spins workers up and tears them down, and the narrow fronts at the
// start and end of every grow-shrink pattern leave most of the pool idle
// behind a barrier. The scheduler inverts the structure, following the
// pipelined/processor-aware DP scheduling line of work (Matsumae &
// Miyazaki; Tang): workers are started once per scheduler and pull chunks
// from *whichever* admitted solve has claimable work, so one solve's
// narrow-front region is covered by another solve's bulk. There is no
// per-front barrier at all — a worker that cannot claim from solve A
// steals from solve B, and only parks when no admitted solve has work.
//
// Admission control protects the pool: submissions wait in a bounded FIFO
// queue (overflow is a typed *Rejected error, not a block), a submission
// whose context expires while still queued is rejected without running,
// and small solves may jump a bounded number of queue positions so an 8k
// x 8k table does not starve interactive-sized tables (fairness is
// preserved: the jump is bounded, so every submission is admitted after
// at most SmallBoost later-arriving small solves).
package sched

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
)

// Config field ceilings enforced by Validate. Values past these are
// configuration mistakes rather than tuning choices and are rejected, not
// clamped: a silent clamp would hide the mistake from the service
// operator.
const (
	// MaxWorkers bounds the shared pool size.
	MaxWorkers = 1 << 10
	// MaxQueueBound bounds the admission queue depth.
	MaxQueueBound = 1 << 20
	// MaxActiveBound bounds the concurrently-executing solve count.
	MaxActiveBound = 1 << 14
	// MaxChunk bounds the cells-per-claim chunk (scheduler-wide and
	// per-submission).
	MaxChunk = core.MaxNativeChunk
	// MaxSmallBoost bounds the queue positions a small solve may jump.
	MaxSmallBoost = 1 << 20
)

// Defaults selected by zero/negative Config fields.
const (
	// DefaultQueueBound is the admission queue depth.
	DefaultQueueBound = 256
	// DefaultSmallCells is the cell count at or below which a submission
	// counts as small for admission priority (a 256 x 256 table).
	DefaultSmallCells = 1 << 16
	// DefaultSmallBoost is the number of queue positions a small
	// submission may jump.
	DefaultSmallBoost = 8
	// defaultChunk matches the per-solve pool's chunk default.
	defaultChunk = 512
)

// Config configures a Scheduler. The zero value selects all defaults:
// min(GOMAXPROCS, NumCPU) workers, twice that many concurrently active
// solves, a 256-deep admission queue, 512-cell chunks, and small-solve
// priority at the 256x256 threshold with a bounded 8-position jump.
type Config struct {
	// Workers is the shared pool size. <= 0 selects
	// min(runtime.GOMAXPROCS(0), runtime.NumCPU()), the same default as
	// the per-solve pool.
	Workers int

	// QueueBound is the admission queue depth; a Submit that would exceed
	// it returns a *Rejected wrapping ErrQueueFull. <= 0 selects
	// DefaultQueueBound.
	QueueBound int

	// MaxActive is the maximum number of solves executing concurrently.
	// More active solves than workers keeps workers busy across one
	// solve's narrow-front regions, so the default is 2*Workers. <= 0
	// selects the default.
	MaxActive int

	// Chunk is the default cells-per-claim chunk for submissions that do
	// not set their own; it doubles as the inline cutoff below which a
	// front is executed by the advancing worker without publication.
	// <= 0 selects 512 (the per-solve pool default).
	Chunk int

	// SmallCells is the total-cell threshold at or below which a
	// submission counts as small for admission priority. <= 0 selects
	// DefaultSmallCells.
	SmallCells int64

	// SmallBoost is the number of arrival positions a small submission
	// may jump in the admission queue; 0 or negative selects
	// DefaultSmallBoost. Fairness bound: a large submission is passed by
	// at most the small solves that arrive within SmallBoost positions
	// of it.
	SmallBoost int

	// Collector receives the per-solve Collector events of every
	// admitted solve (SolveStart with the scheduler-assigned SolveInfo.ID,
	// FrontSize, SolveEnd). A Collector that also implements
	// core.SchedCollector additionally receives the SchedEvent lifecycle
	// stream (queue depth, time-in-queue, cross-solve steals). Nil
	// disables instrumentation.
	Collector core.Collector
}

// Validate checks the configuration. Zero and negative values are legal
// (they select the documented defaults); values beyond the Max ceilings
// return an error. Validate never panics for any input.
func (c Config) Validate() error {
	if c.Workers > MaxWorkers {
		return fmt.Errorf("sched: Workers %d exceeds limit %d", c.Workers, MaxWorkers)
	}
	if c.QueueBound > MaxQueueBound {
		return fmt.Errorf("sched: QueueBound %d exceeds limit %d", c.QueueBound, MaxQueueBound)
	}
	if c.MaxActive > MaxActiveBound {
		return fmt.Errorf("sched: MaxActive %d exceeds limit %d", c.MaxActive, MaxActiveBound)
	}
	if c.Chunk > MaxChunk {
		return fmt.Errorf("sched: Chunk %d exceeds limit %d", c.Chunk, MaxChunk)
	}
	if c.SmallBoost > MaxSmallBoost {
		return fmt.Errorf("sched: SmallBoost %d exceeds limit %d", c.SmallBoost, MaxSmallBoost)
	}
	return nil
}

// withDefaults resolves zero/negative fields to the documented defaults.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = min(runtime.GOMAXPROCS(0), runtime.NumCPU())
	}
	if c.QueueBound <= 0 {
		c.QueueBound = DefaultQueueBound
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 2 * c.Workers
	}
	if c.Chunk <= 0 {
		c.Chunk = defaultChunk
	}
	if c.SmallCells <= 0 {
		c.SmallCells = DefaultSmallCells
	}
	if c.SmallBoost <= 0 {
		c.SmallBoost = DefaultSmallBoost
	}
	return c
}

// Rejection causes, surfaced through Rejected.Err (use errors.Is on the
// returned error).
var (
	// ErrQueueFull: the admission queue was at QueueBound.
	ErrQueueFull = errors.New("sched: admission queue full")
	// ErrClosed: the scheduler had been closed.
	ErrClosed = errors.New("sched: scheduler closed")
)

// Rejected is the error of a submission that was refused admission and
// never ran: the queue was full, the scheduler was closed, or the
// submission's context ended while it was still queued (Err then wraps
// the context cause). A solve interrupted *after* admission returns
// *core.Canceled instead — the two types partition the non-success
// outcomes into "never ran" and "partially ran".
type Rejected struct {
	// ID is the submission's scheduler-assigned ID (0 when rejected
	// before one was assigned).
	ID int64
	// QueueDepth is the admission-queue depth observed at rejection.
	QueueDepth int
	// Err is the cause: ErrQueueFull, ErrClosed, or the submission
	// context's cause for queue expiry.
	Err error
}

func (r *Rejected) Error() string {
	return fmt.Sprintf("sched: submission %d rejected (queue depth %d): %v", r.ID, r.QueueDepth, r.Err)
}

// Unwrap exposes the cause for errors.Is chains.
func (r *Rejected) Unwrap() error { return r.Err }

// Stats is a point-in-time snapshot of a Scheduler's counters.
type Stats struct {
	// Submitted counts accepted submissions; Rejected refused ones
	// (including queue expiries). Done and Canceled count finished
	// admitted solves. Submitted = Done + Canceled + queued + active +
	// (Rejected - synchronous rejections).
	Submitted, Done, Canceled, Rejected int64
	// Steals counts cross-solve steals: a worker claiming work from a
	// different solve than its previous claim while both were admitted.
	Steals int64
	// QueueDepth and Active are the instantaneous queue and running-set
	// sizes; PeakQueueDepth and PeakActive their high-water marks.
	QueueDepth, Active         int
	PeakQueueDepth, PeakActive int
	// Workers reports each worker's cumulative load across all solves.
	Workers []WorkerLoad
}

// WorkerLoad is one scheduler worker's cumulative load.
type WorkerLoad struct {
	// Chunks counts claimed chunks plus inline-advanced fronts; Cells
	// the cells computed; Busy the time inside the compute kernel.
	Chunks, Cells int64
	Busy          time.Duration
}
