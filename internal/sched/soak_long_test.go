//go:build soak

package sched_test

import "testing"

// TestSchedulerSoakLong is the extended soak, opt-in via -tags soak:
// hundreds of randomized concurrent submissions against one shared
// scheduler, intended to run under -race in CI's scheduled job or locally
// before a release. Same invariants as the short soak, more exposure.
func TestSchedulerSoakLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak skipped in -short mode")
	}
	for seed := int64(2); seed < 6; seed++ {
		runSoak(t, 250, 96, seed)
	}
}
