package sched

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/table"
	"repro/internal/trace"
)

// The execution model, in one paragraph: every admitted solve exposes its
// current wavefront as an atomic-ish cursor (guarded, like all scheduler
// state, by one mutex — a chunk is hundreds of cells, so the critical
// sections are a vanishing fraction of the work). Workers claim
// [cursor, cursor+chunk) spans from whichever admitted solve has claimable
// work, preferring the solve they claimed from last (cache affinity) and
// counting a cross-solve steal when they switch. The worker that completes
// the last outstanding chunk of a front advances the solve: fronts at or
// below one chunk are executed inline (with a budget, so one narrow solve
// cannot monopolize a worker), and the first front wide enough to share is
// published for claiming. There is no barrier and no parked-worker
// protocol — a front boundary in solve A costs A's workers nothing, they
// just claim from solve B until A's next front opens.

// inlineBudget is the number of at-or-below-chunk fronts one advance call
// may execute before it must publish the next front for claiming. The
// publication point lets other workers (or this one, after a scheduling
// round) interleave other solves, which keeps narrow solves from pinning
// a worker on few-core hosts.
const inlineBudget = 32

type jobState uint8

const (
	stateQueued jobState = iota
	stateActive
	stateFinal
)

// job is one submission's scheduler state. Immutable fields are set at
// Submit; everything below the marker is guarded by the scheduler mutex.
type job struct {
	id    int64
	seq   int64
	small bool
	chunk int

	wl      *core.Workload
	ctx     context.Context
	ctxDone <-chan struct{}
	tracer  *trace.Recorder
	enq     time.Time
	done    chan struct{}

	// Guarded by Scheduler.mu.
	state     jobState
	err       error
	lanes     []*trace.Lane
	front     int
	size      int
	cursor    int
	pending   int  // chunks of the current front still in flight
	advancing bool // a worker is running the inline ramp / publishing
	canceled  bool
	frontT0   time.Time
}

// Scheduler is the process-wide solver scheduler: a long-lived shared
// worker pool accepting concurrent solve submissions. Create one with New,
// submit with Submit (or the generic Solve helper), and Close it to drain.
// All methods are safe for concurrent use.
type Scheduler struct {
	cfg       Config
	schedColl core.SchedCollector // cfg.Collector, if it implements the extension

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*job // admission queue, picked by score (FIFO + small boost)
	active []*job // solves currently executing
	loads  []WorkerLoad
	stats  Stats // counters only; Stats() fills the instantaneous fields
	nextID int64
	rr     int // round-robin start of the claim scan
	closed bool
	wg     sync.WaitGroup
}

// New starts a Scheduler with cfg.Workers long-lived workers. The
// configuration is validated first; a Scheduler is always returned with a
// nil error otherwise, already accepting submissions.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rcfg := cfg.withDefaults()
	s := &Scheduler{cfg: rcfg, loads: make([]WorkerLoad, rcfg.Workers)}
	s.schedColl, _ = rcfg.Collector.(core.SchedCollector)
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(rcfg.Workers)
	for w := 0; w < rcfg.Workers; w++ {
		go s.worker(w)
	}
	return s, nil
}

// Config returns the resolved configuration (defaults filled in).
func (s *Scheduler) Config() Config { return s.cfg }

// Close stops admission and drains: queued and active solves still run to
// completion (or cancellation), and Close returns once every worker has
// exited. Submissions after Close are rejected with ErrClosed. Close is
// idempotent only in effect — call it once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns a point-in-time snapshot of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.QueueDepth = len(s.queue)
	st.Active = len(s.active)
	st.Workers = append([]WorkerLoad(nil), s.loads...)
	return st
}

// SubmitOptions are the per-submission knobs.
type SubmitOptions struct {
	// Chunk overrides the scheduler's cells-per-claim chunk (and inline
	// cutoff) for this submission; <= 0 inherits Config.Chunk.
	Chunk int
	// Tracer records this submission's runtime events: the queue wait
	// (KindQueue), chunk claims, inline fronts, front completions, and
	// cross-solve steals (KindSteal). Lanes index the scheduler's global
	// workers. Nil disables tracing. The tracer must not be read until
	// the submission has finished.
	Tracer *trace.Recorder
}

// Handle tracks one accepted submission.
type Handle struct {
	s *Scheduler
	j *job
}

// ID returns the scheduler-assigned solve ID (matches SolveInfo.ID and
// the SchedEvent stream).
func (h *Handle) ID() int64 { return h.j.id }

// Done returns a channel closed when the submission reaches its end
// state; Err is valid after that.
func (h *Handle) Done() <-chan struct{} { return h.j.done }

// Err returns the submission's outcome: nil (done), *core.Canceled
// (interrupted mid-run), or *Rejected (never ran). Only valid after Done
// is closed.
func (h *Handle) Err() error { return h.j.err }

// Wait blocks until the submission reaches its end state and returns its
// outcome. If the submission's context ends first, Wait cancels the
// submission (a queued one is rejected immediately; a running one stops
// at chunk granularity) and still waits for the end state, so the result
// is always one of {nil, *core.Canceled, *Rejected}.
func (h *Handle) Wait() error {
	j := h.j
	select {
	case <-j.done:
	case <-j.ctxDone:
		h.s.cancel(j)
		<-j.done
	}
	return j.err
}

// Submit enqueues a workload for execution. The returned Handle reports
// the outcome; a nil Handle and a *Rejected error mean the submission was
// refused synchronously (queue full, scheduler closed, or the context
// already ended). ctx governs both the queue wait and the run: a deadline
// or cancellation while queued rejects the submission without running it,
// and one mid-run cancels the solve at chunk granularity.
func (s *Scheduler) Submit(ctx context.Context, wl *core.Workload, opts SubmitOptions) (*Handle, error) {
	if wl == nil || wl.Size == nil || wl.Run == nil || wl.Fronts < 0 {
		return nil, fmt.Errorf("sched: invalid workload")
	}
	chunk := opts.Chunk
	if chunk <= 0 {
		chunk = s.cfg.Chunk
	}
	if chunk > MaxChunk {
		return nil, fmt.Errorf("sched: submission chunk %d exceeds limit %d", chunk, MaxChunk)
	}
	j := &job{
		chunk:   chunk,
		wl:      wl,
		ctx:     ctx,
		ctxDone: ctxDoneChan(ctx),
		tracer:  opts.Tracer,
		enq:     time.Now(),
		done:    make(chan struct{}),
	}
	s.mu.Lock()
	s.nextID++
	j.id = s.nextID
	j.seq = s.nextID
	j.small = wl.TotalCells <= s.cfg.SmallCells
	if reason := s.refusalLocked(j); reason != nil {
		depth := len(s.queue)
		s.stats.Rejected++
		s.schedEventLocked(j, core.SchedRejected, time.Since(j.enq))
		s.mu.Unlock()
		return nil, &Rejected{ID: j.id, QueueDepth: depth, Err: reason}
	}
	s.queue = append(s.queue, j)
	s.stats.Submitted++
	if d := len(s.queue); d > s.stats.PeakQueueDepth {
		s.stats.PeakQueueDepth = d
	}
	s.schedEventLocked(j, core.SchedEnqueued, 0)
	s.cond.Signal()
	s.mu.Unlock()
	return &Handle{s: s, j: j}, nil
}

// refusalLocked returns the reason a new submission cannot be queued, or
// nil if it can.
func (s *Scheduler) refusalLocked(j *job) error {
	if s.closed {
		return ErrClosed
	}
	if len(s.queue) >= s.cfg.QueueBound {
		return ErrQueueFull
	}
	if isDone(j.ctxDone) {
		return ctxCause(j.ctx)
	}
	return nil
}

// Solve submits p to the scheduler and waits for the computed grid: the
// scheduler-side analogue of core.SolveParallelContext. The error is nil,
// *core.Canceled, *Rejected, or a validation error from the problem
// itself.
func Solve[T any](ctx context.Context, s *Scheduler, p *core.Problem[T], opts SubmitOptions) (*table.Grid[T], error) {
	wl, finish, err := core.NewWorkload(p, core.Options{})
	if err != nil {
		return nil, err
	}
	h, err := s.Submit(ctx, wl, opts)
	if err != nil {
		return nil, err
	}
	if err := h.Wait(); err != nil {
		return nil, err
	}
	return finish(), nil
}

// cancel transitions a submission toward its end state after its context
// ended: a queued submission is rejected on the spot (it never ran), an
// active one is marked canceled and finalized once its in-flight chunks
// drain (the workers running them notice at completion).
func (s *Scheduler) cancel(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch j.state {
	case stateQueued:
		s.finalizeLocked(j, &Rejected{ID: j.id, QueueDepth: len(s.queue) - 1, Err: ctxCause(j.ctx)})
	case stateActive:
		j.canceled = true
		if j.pending == 0 && !j.advancing {
			s.finalizeLocked(j, s.canceledErr(j, j.front))
		}
	}
}

// worker is the shared pool worker loop: admit, claim, run, advance —
// parking only when no admitted solve has claimable work.
func (s *Scheduler) worker(w int) {
	defer s.wg.Done()
	var last *job // affinity: the solve this worker last claimed from
	s.mu.Lock()
	for {
		s.sweepLocked()
		if len(s.queue) > 0 && len(s.active) < s.cfg.MaxActive {
			if j := s.admitLocked(w); j != nil {
				last = j
			}
			continue
		}
		if j, t, lo, hi := s.claimLocked(w, last); j != nil {
			last = j
			s.mu.Unlock()
			t0 := time.Now()
			j.wl.Run(t, lo, hi)
			dur := time.Since(t0)
			if j.lanes != nil {
				j.lanes[w].SpanFrom(trace.KindChunk, t, int64(lo), int64(hi), t0)
			}
			s.mu.Lock()
			s.loads[w].Chunks++
			s.loads[w].Cells += int64(hi - lo)
			s.loads[w].Busy += dur
			s.completeLocked(j, w)
			continue
		}
		if s.closed && len(s.queue) == 0 && len(s.active) == 0 {
			break
		}
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// sweepLocked retires active solves whose context ended while they had no
// chunks in flight (nobody would otherwise notice a dead solve that no
// worker is touching).
func (s *Scheduler) sweepLocked() {
	for i := 0; i < len(s.active); {
		j := s.active[i]
		if j.state == stateActive && !j.advancing && (j.canceled || isDone(j.ctxDone)) {
			j.canceled = true
			if j.pending == 0 {
				s.finalizeLocked(j, s.canceledErr(j, j.front))
				continue // finalize swap-removed index i; re-examine it
			}
		}
		i++
	}
}

// admitLocked activates the best queued submission, discarding queued
// submissions whose context already ended. Returns the admitted job, or
// nil when the queue held only dead entries.
func (s *Scheduler) admitLocked(w int) *job {
	for {
		j := s.pickLocked()
		if j == nil {
			return nil
		}
		if isDone(j.ctxDone) {
			s.finalizeLocked(j, &Rejected{ID: j.id, QueueDepth: len(s.queue), Err: ctxCause(j.ctx)})
			continue
		}
		s.activateLocked(j, w)
		return j
	}
}

// pickLocked removes and returns the queued submission with the smallest
// admission score: arrival order, minus a bounded jump for small solves.
// A large solve is therefore passed by at most the small solves arriving
// within SmallBoost positions of it — FIFO with bounded inversion, never
// starvation.
func (s *Scheduler) pickLocked() *job {
	if len(s.queue) == 0 {
		return nil
	}
	best := 0
	bestKey := s.queue[0].score(s.cfg.SmallBoost)
	for i := 1; i < len(s.queue); i++ {
		if k := s.queue[i].score(s.cfg.SmallBoost); k < bestKey {
			best, bestKey = i, k
		}
	}
	j := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return j
}

// score is the admission priority key (smaller runs sooner).
func (j *job) score(boost int) int64 {
	k := j.seq
	if j.small {
		k -= int64(boost)
	}
	return k
}

// activateLocked moves a picked submission into the running set, emits
// its Collector/trace bookkeeping, and runs its ramp-in via advanceLocked
// (which may complete the whole solve inline for narrow problems).
func (s *Scheduler) activateLocked(j *job, w int) {
	j.state = stateActive
	wait := time.Since(j.enq)
	s.active = append(s.active, j)
	if a := len(s.active); a > s.stats.PeakActive {
		s.stats.PeakActive = a
	}
	j.front, j.size, j.cursor, j.pending = -1, 0, 0, 0
	if c := s.cfg.Collector; c != nil {
		// Emit SolveStart and the O(Fronts) FrontSize loop outside the
		// mutex: the Collector is user code and must not stall every
		// worker and Submit behind one admission. j.advancing keeps the
		// solve off the finalize paths (sweep, cancel) while unlocked,
		// and with size == 0 it is not claimable, so only this worker
		// touches j until advanceLocked below.
		j.advancing = true
		s.mu.Unlock()
		info := j.wl.Info
		info.ID = j.id
		info.Workers = s.cfg.Workers
		c.SolveStart(info)
		for t := 0; t < j.wl.Fronts; t++ {
			c.FrontSize(j.wl.Size(t))
		}
		s.mu.Lock()
	}
	if j.tracer != nil {
		j.tracer.BeginSolve(trace.Meta{
			Solver: j.wl.Info.Solver, Problem: j.wl.Info.Problem,
			Pattern: j.wl.Info.Pattern, Executed: j.wl.Info.Executed,
			Rows: j.wl.Info.Rows, Cols: j.wl.Info.Cols,
			Fronts: j.wl.Fronts, Workers: s.cfg.Workers,
		})
		j.lanes = make([]*trace.Lane, s.cfg.Workers)
		for i := range j.lanes {
			j.lanes[i] = j.tracer.Lane(i)
		}
		j.lanes[w].SpanFrom(trace.KindQueue, -1, int64(len(s.queue)), 0, j.enq)
	}
	s.schedEventLocked(j, core.SchedStarted, wait)
	s.advanceLocked(j, w)
}

// claimLocked hands worker w a chunk from some admitted solve: the one it
// last claimed from if that still has claimable work (cache affinity),
// otherwise the next claimable solve round-robin — a cross-solve steal.
func (s *Scheduler) claimLocked(w int, last *job) (j *job, t, lo, hi int) {
	n := len(s.active)
	if n == 0 {
		return nil, 0, 0, 0
	}
	if last != nil && claimable(last) {
		return s.takeLocked(last, w, false)
	}
	for k := 0; k < n; k++ {
		cand := s.active[(s.rr+k)%n]
		if claimable(cand) {
			s.rr = (s.rr + k + 1) % n
			steal := last != nil && cand != last && last.state == stateActive
			return s.takeLocked(cand, w, steal)
		}
	}
	return nil, 0, 0, 0
}

// claimable reports whether a solve has an unclaimed span on a published
// front. Pure — the cancellation sweep is sweepLocked's job.
func claimable(j *job) bool {
	return j.state == stateActive && !j.advancing && !j.canceled && j.cursor < j.size
}

// takeLocked claims the next chunk of j's current front for worker w.
func (s *Scheduler) takeLocked(j *job, w int, steal bool) (*job, int, int, int) {
	lo := j.cursor
	hi := lo + j.chunk
	if hi > j.size {
		hi = j.size
	}
	j.cursor = hi
	j.pending++
	if steal {
		s.stats.Steals++
		s.schedEventLocked(j, core.SchedSteal, 0)
		if j.lanes != nil {
			j.lanes[w].Instant(trace.KindSteal, j.front, j.id, 0)
		}
	}
	return j, j.front, lo, hi
}

// completeLocked retires one finished chunk of j. The worker completing
// the last outstanding chunk of a fully-claimed front advances the solve.
func (s *Scheduler) completeLocked(j *job, w int) {
	j.pending--
	if j.pending > 0 || j.state != stateActive || j.advancing {
		return
	}
	if j.canceled || isDone(j.ctxDone) {
		j.canceled = true
		s.finalizeLocked(j, s.canceledErr(j, j.front))
		return
	}
	if j.cursor >= j.size {
		if j.lanes != nil {
			j.lanes[w].SpanFrom(trace.KindFront, j.front, int64(j.size), 0, j.frontT0)
		}
		s.advanceLocked(j, w)
	}
}

// advanceLocked moves j past its completed front: fronts at or below one
// chunk run inline on this worker (up to inlineBudget per call, so one
// narrow solve cannot pin a worker), and the first front that is either
// wide enough to share or over budget is published for claiming. On
// return j has either a published front or is finalized; the scheduler
// mutex is released around each inline front's compute. Callers must not
// touch j after advanceLocked returns.
func (s *Scheduler) advanceLocked(j *job, w int) {
	j.advancing = true
	j.size, j.cursor = 0, 0
	t := j.front + 1
	for budget := inlineBudget; ; {
		if j.canceled || isDone(j.ctxDone) {
			j.canceled = true
			j.advancing = false
			s.finalizeLocked(j, s.canceledErr(j, t))
			return
		}
		if t >= j.wl.Fronts {
			j.advancing = false
			s.finalizeLocked(j, nil)
			return
		}
		size := j.wl.Size(t)
		if size == 0 {
			// An empty front (e.g. knight-move fronts on a 1-column table
			// at odd t) has nothing to run or publish. Publishing it would
			// wedge the solve — no chunk is ever claimable, so no worker
			// would advance past it. Skip it; it costs no inline budget.
			t++
			continue
		}
		if size > j.chunk || budget <= 0 {
			j.front, j.size, j.cursor, j.pending = t, size, 0, 0
			j.frontT0 = time.Now()
			j.advancing = false
			s.cond.Broadcast()
			return
		}
		s.mu.Unlock()
		t0 := time.Now()
		j.wl.Run(t, 0, size)
		dur := time.Since(t0)
		if j.lanes != nil {
			j.lanes[w].SpanFrom(trace.KindInline, t, 0, int64(size), t0)
		}
		s.mu.Lock()
		s.loads[w].Chunks++
		s.loads[w].Cells += int64(size)
		s.loads[w].Busy += dur
		budget--
		t++
	}
}

// finalizeLocked moves j to its end state: removes it from its set,
// counts the outcome, emits the Collector/trace closing events, and —
// strictly last, so waiters observe a quiescent collector and tracer —
// releases waiters by closing j.done.
func (s *Scheduler) finalizeLocked(j *job, err error) {
	wasActive := j.state == stateActive
	switch j.state {
	case stateQueued:
		s.queue = removeJob(s.queue, j)
	case stateActive:
		s.active = removeJob(s.active, j)
	}
	j.state = stateFinal
	j.err = err
	kind := core.SchedDone
	switch err.(type) {
	case nil:
		s.stats.Done++
	case *Rejected:
		s.stats.Rejected++
		kind = core.SchedRejected
	default:
		s.stats.Canceled++
		kind = core.SchedCanceled
	}
	if wasActive {
		if c := s.cfg.Collector; c != nil {
			c.SolveEnd(err)
		}
		if j.tracer != nil {
			j.tracer.EndSolve()
		}
	}
	// The terminal event's Wait is the full submit-to-terminal latency
	// (j.enq is the Submit timestamp) — SchedCollectors derive their
	// solve-latency histograms from exactly this value, so it must stay
	// the end-to-end elapsed, not the queued portion.
	s.schedEventLocked(j, kind, time.Since(j.enq))
	close(j.done)
	s.cond.Broadcast()
}

// removeJob removes j from list by swap (order is irrelevant: the queue
// is picked by score, the active set scanned round-robin).
func removeJob(list []*job, j *job) []*job {
	for i, q := range list {
		if q == j {
			last := len(list) - 1
			list[i] = list[last]
			list[last] = nil
			return list[:last]
		}
	}
	return list
}

// schedEventLocked reports one lifecycle event to the configured
// SchedCollector, if any.
func (s *Scheduler) schedEventLocked(j *job, kind core.SchedEventKind, wait time.Duration) {
	if s.schedColl == nil {
		return
	}
	s.schedColl.SchedEvent(core.SchedEvent{
		ID: j.id, Kind: kind,
		QueueDepth: len(s.queue), Active: len(s.active),
		Wait: wait, Cells: j.wl.TotalCells,
	})
}

// canceledErr builds the *core.Canceled for a solve interrupted at front.
func (s *Scheduler) canceledErr(j *job, front int) error {
	return &core.Canceled{Solver: "sched", Front: front, Err: ctxCause(j.ctx)}
}

// ctxCause returns the context's cause, defaulting to context.Canceled.
func ctxCause(ctx context.Context) error {
	if ctx == nil {
		return context.Canceled
	}
	if err := context.Cause(ctx); err != nil {
		return err
	}
	return context.Canceled
}

// ctxDoneChan returns the context's done channel; nil contexts (and
// contexts that can never be canceled) yield nil, which blocks forever in
// selects and makes every poll free.
func ctxDoneChan(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// isDone is a non-blocking poll of a done channel; nil is never done.
func isDone(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}
