package core

import (
	"repro/internal/table"
)

// Workload is the untyped execution view of a native solve: a wavefront
// iteration space plus the chunk kernel that computes it, with the cell
// type erased behind closures. It is what the process-wide scheduler
// (internal/sched) consumes — the scheduler interleaves chunks of many
// Workloads on one worker set and cannot be generic over every
// submission's cell type.
//
// The contract mirrors runWavefronts: Size(t) is the cell count of front
// t for t in [0, Fronts); Run(t, lo, hi) computes cells [lo, hi) of front
// t and is safe for concurrent calls on disjoint ranges of one front;
// fronts must be executed in order, and front t+1 may only start after
// every cell of front t has been computed.
type Workload struct {
	// Info describes the solve for Collector wiring. Solver is "sched";
	// ID and Workers are filled in by the scheduler at admission.
	Info SolveInfo
	// Fronts is the number of wavefronts.
	Fronts int
	// TotalCells is the table's cell count, used for size-aware admission
	// priority.
	TotalCells int64
	// Size returns the cell count of front t.
	Size func(t int) int
	// Run computes cells [lo, hi) of front t.
	Run func(t, lo, hi int)
}

// NewWorkload builds the Workload of a problem's native solve together
// with the finish function that returns the computed grid (applying the
// symmetry-reduction undo). The grid is only valid after the scheduler
// reports the submission done; an abandoned or canceled workload's grid
// must be discarded.
func NewWorkload[T any](p *Problem[T], opts Options) (*Workload, func() *table.Grid[T], error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	cp, canonical, _, undo := canonicalize(p)
	w := NewWavefronts(canonical, cp.Rows, cp.Cols)
	g := table.NewGrid[T](cp.Rows, cp.Cols, nil)
	run := frontRunner(cp, w, g)
	wl := &Workload{
		Info: SolveInfo{
			Solver: "sched", Problem: p.Name,
			Pattern: Classify(p.Deps).String(), Executed: canonical.String(),
			Rows: cp.Rows, Cols: cp.Cols, Fronts: w.Fronts,
		},
		Fronts:     w.Fronts,
		TotalCells: int64(cp.Rows) * int64(cp.Cols),
		Size:       w.Size,
		Run:        run,
	}
	return wl, func() *table.Grid[T] { return undo(g) }, nil
}
