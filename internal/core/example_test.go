package core_test

import (
	"fmt"

	"repro/internal/core"
)

// Classifying a contributing set reproduces paper Table I.
func ExampleClassify() {
	fmt.Println(core.Classify(core.DepW | core.DepN))
	fmt.Println(core.Classify(core.DepNW | core.DepN | core.DepNE))
	fmt.Println(core.Classify(core.DepW | core.DepNE))
	// Output:
	// Anti-diagonal
	// Horizontal
	// Knight-Move
}

// TransferNeed reproduces paper Table II.
func ExampleTransferNeed() {
	fmt.Println(core.TransferNeed(core.DepW | core.DepNW | core.DepN))
	fmt.Println(core.TransferNeed(core.DepNW | core.DepN | core.DepNE))
	fmt.Println(core.TransferNeed(core.DepN))
	// Output:
	// 1 way
	// 2 way
	// none
}

// A complete problem needs only its recurrence, contributing set, and
// table size; Solve fills the table sequentially.
func ExampleSolve() {
	p := &core.Problem[int32]{
		Rows: 3, Cols: 3,
		Deps: core.DepW | core.DepN,
		F: func(i, j int, nb core.Neighbors[int32]) int32 {
			return nb.W + nb.N + 1
		},
	}
	g, err := core.Solve(p)
	if err != nil {
		panic(err)
	}
	fmt.Println(g.At(2, 2))
	// Output:
	// 19
}

// SolveHetero runs the paper's framework against the simulated platform:
// the values are computed for real, the schedule is simulated.
func ExampleSolveHetero() {
	p := &core.Problem[int32]{
		Rows: 64, Cols: 64,
		Deps: core.DepNW | core.DepN,
		F: func(i, j int, nb core.Neighbors[int32]) int32 {
			return max(nb.NW, nb.N) + 1
		},
	}
	res, err := core.SolveHetero(p, core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Pattern, res.Executed, res.Transfer)
	fmt.Println(res.Grid.At(63, 63))
	// Output:
	// Horizontal Horizontal 1 way
	// 64
}

// ParseDepMask accepts the notation used throughout the paper.
func ExampleParseDepMask() {
	m, err := core.ParseDepMask("{W,NW,N}")
	if err != nil {
		panic(err)
	}
	fmt.Println(m, core.Classify(m))
	// Output:
	// {W,NW,N} Anti-diagonal
}
