package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/table"
)

// 3-D LDDP-Plus. The paper defines the class for k >= 2 dimensional tables
// and then restricts its treatment to k = 2 "for simplicity"; this file
// carries the framework to k = 3. The representative set generalizes to
// the seven predecessor corners of the unit cube — the offsets in
// {0,-1}^3 minus the origin — all of which strictly decrease the plane
// index s = i+j+k, so anti-diagonal planes are a dependency-safe wavefront
// for every contributing set, the direct analogue of the 2-D
// anti-diagonal pattern.

// Dep3Mask is the 3-D contributing set over the seven predecessor corners.
type Dep3Mask uint8

const (
	// Dep3X is (i-1, j, k).
	Dep3X Dep3Mask = 1 << iota
	// Dep3Y is (i, j-1, k).
	Dep3Y
	// Dep3Z is (i, j, k-1).
	Dep3Z
	// Dep3XY is (i-1, j-1, k).
	Dep3XY
	// Dep3XZ is (i-1, j, k-1).
	Dep3XZ
	// Dep3YZ is (i, j-1, k-1).
	Dep3YZ
	// Dep3XYZ is (i-1, j-1, k-1).
	Dep3XYZ
)

const dep3All = Dep3X | Dep3Y | Dep3Z | Dep3XY | Dep3XZ | Dep3YZ | Dep3XYZ

// dep3Offsets maps each bit to its coordinate offset.
var dep3Offsets = map[Dep3Mask][3]int{
	Dep3X: {-1, 0, 0}, Dep3Y: {0, -1, 0}, Dep3Z: {0, 0, -1},
	Dep3XY: {-1, -1, 0}, Dep3XZ: {-1, 0, -1}, Dep3YZ: {0, -1, -1},
	Dep3XYZ: {-1, -1, -1},
}

// Has reports whether all bits of q are present.
func (m Dep3Mask) Has(q Dep3Mask) bool { return m&q == q }

// Valid reports whether the mask is a non-empty subset of the seven
// predecessor corners.
func (m Dep3Mask) Valid() bool { return m != 0 && m&^dep3All == 0 }

// String renders the mask, e.g. "{X,Y,XYZ}".
func (m Dep3Mask) String() string {
	names := []struct {
		bit  Dep3Mask
		name string
	}{
		{Dep3X, "X"}, {Dep3Y, "Y"}, {Dep3Z, "Z"},
		{Dep3XY, "XY"}, {Dep3XZ, "XZ"}, {Dep3YZ, "YZ"}, {Dep3XYZ, "XYZ"},
	}
	var parts []string
	for _, n := range names {
		if m.Has(n.bit) {
			parts = append(parts, n.name)
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Neighbors3 carries the resolved predecessor values for one evaluation.
type Neighbors3[T any] struct {
	X, Y, Z, XY, XZ, YZ, XYZ T
}

// Problem3 is a 3-D LDDP-Plus problem instance.
type Problem3[T any] struct {
	Name       string
	NX, NY, NZ int
	Deps       Dep3Mask
	F          func(i, j, k int, nb Neighbors3[T]) T
	// Boundary resolves out-of-box neighbour reads; nil means zero T.
	Boundary     func(i, j, k int) T
	BytesPerCell int
	InputBytes   int
}

// Validate reports whether the problem is well-formed.
func (p *Problem3[T]) Validate() error {
	var errs []error
	if p.NX <= 0 || p.NY <= 0 || p.NZ <= 0 {
		errs = append(errs, fmt.Errorf("core: box %dx%dx%d invalid", p.NX, p.NY, p.NZ))
	}
	if !p.Deps.Valid() {
		errs = append(errs, fmt.Errorf("core: 3-D contributing set %s invalid", p.Deps))
	}
	if p.F == nil {
		errs = append(errs, errors.New("core: recurrence F is nil"))
	}
	return errors.Join(errs...)
}

func (p *Problem3[T]) bytesPerCell() int {
	if p.BytesPerCell <= 0 {
		return 8
	}
	return p.BytesPerCell
}

func (p *Problem3[T]) boundary(i, j, k int) T {
	if p.Boundary == nil {
		var zero T
		return zero
	}
	return p.Boundary(i, j, k)
}

// gather3 resolves the contributing predecessors of (i, j, k).
func gather3[T any](p *Problem3[T], g *table.Grid3[T], i, j, k int) Neighbors3[T] {
	var nb Neighbors3[T]
	read := func(off [3]int) T {
		ni, nj, nk := i+off[0], j+off[1], k+off[2]
		if g.InBounds(ni, nj, nk) {
			return g.At(ni, nj, nk)
		}
		return p.boundary(ni, nj, nk)
	}
	if p.Deps.Has(Dep3X) {
		nb.X = read(dep3Offsets[Dep3X])
	}
	if p.Deps.Has(Dep3Y) {
		nb.Y = read(dep3Offsets[Dep3Y])
	}
	if p.Deps.Has(Dep3Z) {
		nb.Z = read(dep3Offsets[Dep3Z])
	}
	if p.Deps.Has(Dep3XY) {
		nb.XY = read(dep3Offsets[Dep3XY])
	}
	if p.Deps.Has(Dep3XZ) {
		nb.XZ = read(dep3Offsets[Dep3XZ])
	}
	if p.Deps.Has(Dep3YZ) {
		nb.YZ = read(dep3Offsets[Dep3YZ])
	}
	if p.Deps.Has(Dep3XYZ) {
		nb.XYZ = read(dep3Offsets[Dep3XYZ])
	}
	return nb
}

// Planes returns the number of anti-diagonal planes of the box.
func (p *Problem3[T]) Planes() int { return p.NX + p.NY + p.NZ - 2 }
