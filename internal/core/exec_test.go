package core

import (
	"context"
	"testing"

	"repro/internal/hetsim"
	"repro/internal/table"
)

func newTestExec(t *testing.T, opts Options) *heteroExec[int64] {
	t.Helper()
	p := testProblem(DepW|DepN, 10, 10)
	w := NewWavefronts(AntiDiagonal, 10, 10)
	opts = opts.withDefaults(w, TransferOneWay)
	return newHeteroExec(context.Background(), p, w, opts)
}

func TestExecCoalescedFlag(t *testing.T) {
	e := newTestExec(t, Options{TSwitch: 0, TShare: 0})
	if !e.coalesced {
		t.Error("pattern-default layout should be coalesced")
	}
	e2 := newTestExec(t, Options{TSwitch: 0, TShare: 0, Layout: table.RowMajor{}})
	if e2.coalesced {
		t.Error("row-major layout on an anti-diagonal problem should be uncoalesced")
	}
}

func TestExecEmptyRangesAreNoOps(t *testing.T) {
	e := newTestExec(t, Options{TSwitch: 0, TShare: 0})
	if id := e.cpuOp(0, 3, 3, "x"); id != hetsim.NoOp {
		t.Error("empty CPU range should be NoOp")
	}
	if id := e.gpuOp(0, 5, 2, "x"); id != hetsim.NoOp {
		t.Error("inverted GPU range should be NoOp")
	}
	if id := e.boundary(hetsim.ResCopyH2D, 0, "x"); id != hetsim.NoOp {
		t.Error("zero-cell boundary should be NoOp")
	}
	if id := e.bulk(hetsim.ResCopyD2H, 0, "x"); id != hetsim.NoOp {
		t.Error("zero-byte bulk should be NoOp")
	}
	if e.sim.NumOps() != 0 {
		t.Errorf("no-ops submitted %d operations", e.sim.NumOps())
	}
}

func TestExecUploadInputRespectsInputBytes(t *testing.T) {
	e := newTestExec(t, Options{TSwitch: 0, TShare: 0})
	if id := e.uploadInput(); id != hetsim.NoOp {
		t.Error("zero InputBytes should skip the upload")
	}
	e.p.InputBytes = 1 << 20
	if id := e.uploadInput(); id == hetsim.NoOp {
		t.Error("nonzero InputBytes should upload")
	}
	tl := e.sim.Timeline()
	if tl.BytesTransferred() != 1<<20 {
		t.Errorf("uploaded %d bytes, want %d", tl.BytesTransferred(), 1<<20)
	}
}

func TestExecBoundaryUsesPinnedByDefault(t *testing.T) {
	e := newTestExec(t, Options{TSwitch: 0, TShare: 0})
	e.boundary(hetsim.ResCopyH2D, 1, "b")
	pinnedDur := e.sim.Timeline().Records[0].Duration()

	e2 := newTestExec(t, Options{TSwitch: 0, TShare: 0, UsePageable: true})
	e2.boundary(hetsim.ResCopyH2D, 1, "b")
	pageableDur := e2.sim.Timeline().Records[0].Duration()

	if pinnedDur >= pageableDur {
		t.Errorf("pinned boundary %v should beat pageable %v", pinnedDur, pageableDur)
	}
}

func TestExecDisablePipelineMovesTransfersToGPU(t *testing.T) {
	e := newTestExec(t, Options{TSwitch: 0, TShare: 0, DisablePipeline: true})
	e.boundary(hetsim.ResCopyH2D, 1, "b")
	e.bulk(hetsim.ResCopyD2H, 100, "d")
	for _, r := range e.sim.Timeline().Records {
		if r.Resource != hetsim.ResGPU {
			t.Errorf("transfer %q on %s, want gpu queue", r.Label, r.Resource)
		}
	}
}

func TestExecSkipComputeLeavesGridNil(t *testing.T) {
	e := newTestExec(t, Options{TSwitch: 0, TShare: 0, SkipCompute: true})
	if e.g != nil {
		t.Error("SkipCompute should not allocate a grid")
	}
	// compute must be a no-op, not a crash.
	e.compute(0, 0, 1)
}

func TestOptionsWithDefaults(t *testing.T) {
	w := NewWavefronts(AntiDiagonal, 2048, 2048)
	o := Options{TSwitch: -1, TShare: -1}.withDefaults(w, TransferOneWay)
	if o.Platform == nil || o.Platform.Name != "Hetero-High" {
		t.Error("default platform should be Hetero-High")
	}
	if o.TSwitch < 0 || o.TShare < 0 {
		t.Error("auto parameters not resolved")
	}
	if o.Layout == nil || o.Layout.Name() != "antidiag-major" {
		t.Errorf("default layout = %v, want antidiag-major", o.Layout)
	}
	// Explicit values survive.
	o2 := Options{TSwitch: 7, TShare: 9, Layout: table.RowMajor{}}.withDefaults(w, TransferOneWay)
	if o2.TSwitch != 7 || o2.TShare != 9 || o2.Layout.Name() != "row-major" {
		t.Error("explicit options overwritten by defaults")
	}
}

func TestResultStats(t *testing.T) {
	p := testProblem(DepW|DepN, 64, 64)
	res, err := SolveHetero(p, Options{TSwitch: 10, TShare: 8})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if st.Makespan != res.Time {
		t.Errorf("Stats.Makespan %v != Result.Time %v", st.Makespan, res.Time)
	}
	if st.CPUCells+st.GPUCells != 64*64 {
		t.Errorf("stats account for %d cells, want %d", st.CPUCells+st.GPUCells, 64*64)
	}
}

func TestPreferredLayoutFor(t *testing.T) {
	cases := []struct {
		m        DepMask
		preferIL bool
		want     string
	}{
		{DepW | DepN, false, "antidiag-major"},
		{DepNW, false, "row-major"}, // inverted-L routed through horizontal
		{DepNW, true, "l-major"},
		{DepW | DepNE, false, "knight-major"},
		{DepW, false, "row-major"}, // vertical transposed to horizontal
	}
	for _, c := range cases {
		p := testProblem(c.m, 8, 8)
		if got := PreferredLayoutFor(p, c.preferIL).Name(); got != c.want {
			t.Errorf("PreferredLayoutFor(%s, %v) = %q, want %q", c.m, c.preferIL, got, c.want)
		}
	}
}
