package core

import (
	"context"

	"repro/internal/hetsim"
	"repro/internal/table"
)

// heteroExec carries the state shared by all strategy implementations: the
// (canonicalized) problem, its wavefront space, the real DP grid being
// filled, and the simulator collecting the timing DAG.
//
// Correctness and timing are decoupled by construction: every cpuOp/gpuOp
// first evaluates the recurrence for its cell range (in front order, which
// is dependency-safe) and then submits a timed operation describing what
// the corresponding device would have done.
type heteroExec[T any] struct {
	p         *Problem[T]
	w         Wavefronts
	g         *table.Grid[T] // nil when Options.SkipCompute
	sim       *hetsim.Sim
	opts      Options
	coalesced bool // layout stores fronts contiguously
	bpc       int
	ctx       context.Context
	done      <-chan struct{} // solve context's done channel; nil = uncancellable
}

func newHeteroExec[T any](ctx context.Context, p *Problem[T], w Wavefronts, opts Options) *heteroExec[T] {
	var g *table.Grid[T]
	if !opts.SkipCompute {
		g = table.NewGrid[T](p.Rows, p.Cols, opts.Layout)
	}
	return &heteroExec[T]{
		p:         p,
		w:         w,
		g:         g,
		sim:       hetsim.NewSim(opts.Platform),
		opts:      opts,
		coalesced: opts.Layout.Name() == w.PreferredLayout().Name(),
		bpc:       p.bytesPerCell(),
		ctx:       ctx,
		done:      ctxDone(ctx),
	}
}

// canceled polls the solve context; the strategies check it once per front,
// which bounds the cancellation latency to one front's work.
func (e *heteroExec[T]) canceled() bool { return isDone(e.done) }

// cancelErr builds the *Canceled error for a strategy interrupted at front.
func (e *heteroExec[T]) cancelErr(solver string, front int) error {
	return canceledErr(e.ctx, solver, front)
}

// compute evaluates cells [lo, hi) of front t into the grid.
func (e *heteroExec[T]) compute(t, lo, hi int) {
	if e.g == nil {
		return
	}
	rd := gridReader[T]{e.g}
	for k := lo; k < hi; k++ {
		i, j := e.w.Cell(t, k)
		e.g.Set(i, j, e.p.F(i, j, gatherNeighbors(e.p, rd, i, j)))
	}
}

// cpuOp computes cells [lo, hi) of front t and submits the corresponding
// CPU parallel region. label is the static phase label ("cpu:p1", ...);
// the front index is carried as a tag and only rendered into the label by
// trace sinks (OpRecord.FullLabel), so the per-front hot path submits ops
// without any string formatting or allocation.
func (e *heteroExec[T]) cpuOp(t, lo, hi int, label string, deps ...hetsim.OpID) hetsim.OpID {
	if hi <= lo {
		return hetsim.NoOp
	}
	e.compute(t, lo, hi)
	cells := hi - lo
	cpu := e.opts.Platform.CPU
	var dur = cpu.RegionDuration(cells, e.coalesced)
	if e.opts.CPUThreadPerCell {
		dur = cpu.ThreadPerCellDuration(cells, e.coalesced)
	}
	return e.sim.SubmitFront(hetsim.Op{
		Resource: hetsim.ResCPU,
		Kind:     hetsim.OpCompute,
		Duration: dur,
		Label:    label,
		Cells:    cells,
	}, t, deps...)
}

// gpuOp computes cells [lo, hi) of front t and submits the corresponding
// kernel launch. label is the static phase label ("gpu:p2", ...); see cpuOp
// for the lazy front tagging.
func (e *heteroExec[T]) gpuOp(t, lo, hi int, label string, deps ...hetsim.OpID) hetsim.OpID {
	if hi <= lo {
		return hetsim.NoOp
	}
	e.compute(t, lo, hi)
	cells := hi - lo
	dur := e.opts.Platform.GPU.KernelDuration(cells, e.coalesced)
	return e.sim.SubmitFront(hetsim.Op{
		Resource: hetsim.ResGPU,
		Kind:     hetsim.OpCompute,
		Duration: dur,
		Label:    label,
		Cells:    cells,
	}, t, deps...)
}

// transferResource selects the queue a boundary transfer runs on: a DMA
// engine when pipelining is enabled (paper §IV-C case 1), or the GPU's own
// queue when disabled, which models a synchronous default-stream copy that
// blocks kernel execution.
func (e *heteroExec[T]) transferResource(res hetsim.Resource) hetsim.Resource {
	if e.opts.DisablePipeline {
		return hetsim.ResGPU
	}
	return res
}

// boundary submits the per-iteration exchange of cells boundary cells.
// Boundary transfers use pinned memory by default (paper §IV-C case 2:
// "we only transfer a few cells ... we use pinned memory"); the UsePageable
// ablation reverts them.
func (e *heteroExec[T]) boundary(res hetsim.Resource, cells int, label string, deps ...hetsim.OpID) hetsim.OpID {
	if cells <= 0 {
		return hetsim.NoOp
	}
	bytes := cells * e.bpc
	pinned := !e.opts.UsePageable
	dur := e.opts.Platform.Bus.TransferDuration(bytes, pinned)
	if c := e.opts.Collector; c != nil {
		c.Transfer(TransferStats{Boundary: true, ToDevice: res == hetsim.ResCopyH2D, Bytes: bytes, Cells: cells})
	}
	return e.sim.Submit(hetsim.Op{
		Resource: e.transferResource(res),
		Kind:     hetsim.OpTransfer,
		Duration: dur,
		Label:    label,
		Cells:    cells,
		Bytes:    bytes,
	}, deps...)
}

// bulk submits a large pageable transfer (input upload, phase-boundary
// synchronization, result extraction).
func (e *heteroExec[T]) bulk(res hetsim.Resource, bytes int, label string, deps ...hetsim.OpID) hetsim.OpID {
	if bytes <= 0 {
		return hetsim.NoOp
	}
	dur := e.opts.Platform.Bus.TransferDuration(bytes, false)
	if c := e.opts.Collector; c != nil {
		c.Transfer(TransferStats{Boundary: false, ToDevice: res == hetsim.ResCopyH2D, Bytes: bytes})
	}
	return e.sim.Submit(hetsim.Op{
		Resource: e.transferResource(res),
		Kind:     hetsim.OpTransfer,
		Duration: dur,
		Label:    label,
		Bytes:    bytes,
	}, deps...)
}

// uploadInput submits the initial host-to-device copy of the problem input
// (cost grids, images, ...). Returns NoOp for negligible inputs.
func (e *heteroExec[T]) uploadInput() hetsim.OpID {
	return e.bulk(hetsim.ResCopyH2D, e.p.InputBytes, "h2d:input")
}

// extract submits the final device-to-host copy of cells result cells.
func (e *heteroExec[T]) extract(cells int, deps ...hetsim.OpID) hetsim.OpID {
	return e.bulk(hetsim.ResCopyD2H, cells*e.bpc, "d2h:result", deps...)
}

// clampTSwitch bounds t_switch to at most half the fronts so the prefix
// and suffix low-work regions never overlap.
func clampTSwitch(tSwitch, fronts int) int {
	if tSwitch < 0 {
		return 0
	}
	if tSwitch > fronts/2 {
		return fronts / 2
	}
	return tSwitch
}
