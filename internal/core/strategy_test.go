package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hetsim"
	"repro/internal/table"
)

// Structural tests of the heterogeneous strategies: the timelines they
// build must have the op mix the paper's phase diagrams prescribe.

func countOps(tl hetsim.Timeline, prefix string) int {
	n := 0
	for _, r := range tl.Records {
		if strings.HasPrefix(r.Label, prefix) {
			n++
		}
	}
	return n
}

func TestAntiDiagonalPhaseStructure(t *testing.T) {
	p := testProblem(DepW|DepN, 60, 60) // 119 fronts
	res, err := SolveHetero(p, Options{TSwitch: 20, TShare: 10})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	// Phases 1 and 3: exactly tSwitch CPU-only regions each.
	if got := countOps(tl, "cpu:p1"); got != 20 {
		t.Errorf("phase-1 CPU regions = %d, want 20", got)
	}
	if got := countOps(tl, "cpu:p3"); got != 20 {
		t.Errorf("phase-3 CPU regions = %d, want 20", got)
	}
	// Phase 2: one kernel per front (the CPU band vanishes once diagonals
	// leave the top rows, but the GPU side persists).
	if got := countOps(tl, "gpu:p2"); got != 119-40 {
		t.Errorf("phase-2 kernels = %d, want %d", got, 119-40)
	}
	// Exactly one bulk upstream sync and one bulk downstream sync.
	if got := countOps(tl, "h2d:phase1-sync"); got != 1 {
		t.Errorf("phase1-sync ops = %d, want 1", got)
	}
	if got := countOps(tl, "d2h:phase2-sync"); got != 1 {
		t.Errorf("phase2-sync ops = %d, want 1", got)
	}
	// Anti-diagonal is one-way: no per-iteration d2h boundary ops.
	if got := countOps(tl, "d2h:boundary"); got != 0 {
		t.Errorf("anti-diagonal produced %d d2h boundary transfers, want 0", got)
	}
}

func TestKnightPhaseStructure(t *testing.T) {
	p := testProblem(DepW|DepNE, 40, 40) // knight: 2*39+40 = 118 fronts
	res, err := SolveHetero(p, Options{TSwitch: 30, TShare: 8})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	if got := countOps(tl, "cpu:p1"); got != 30 {
		t.Errorf("phase-1 CPU regions = %d, want 30", got)
	}
	if got := countOps(tl, "cpu:p3"); got != 30 {
		t.Errorf("phase-3 CPU regions = %d, want 30", got)
	}
	// Knight-move is two-way: both boundary directions appear, equally.
	up, down := countOps(tl, "h2d:boundary"), countOps(tl, "d2h:boundary")
	if up == 0 || up != down {
		t.Errorf("knight boundary transfers = %d up / %d down, want equal and > 0", up, down)
	}
}

func TestInvertedLPhaseStructure(t *testing.T) {
	p := testProblem(DepNW, 50, 50)
	res, err := SolveHetero(p, Options{TSwitch: 15, TShare: 10, PreferInvertedL: true})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	// Phase 1 covers fronts-15 iterations with both devices, phase 2 the
	// CPU-only tail.
	if got := countOps(tl, "cpu:p2"); got != 15 {
		t.Errorf("phase-2 CPU regions = %d, want 15", got)
	}
	if got := countOps(tl, "gpu:p1"); got != 50-15 {
		t.Errorf("phase-1 kernels = %d, want %d", got, 35)
	}
	if got := countOps(tl, "d2h:phase1-sync"); got != 1 {
		t.Errorf("phase1-sync ops = %d, want 1", got)
	}
}

func TestHorizontalSinglePhase(t *testing.T) {
	p := testProblem(DepNW|DepN, 30, 50)
	res, err := SolveHetero(p, Options{TShare: 12, TSwitch: 0})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	if got := countOps(tl, "cpu:p1"); got != 30 {
		t.Errorf("CPU regions = %d, want 30 (one per row)", got)
	}
	if got := countOps(tl, "gpu:p1"); got != 30 {
		t.Errorf("kernels = %d, want 30 (one per row)", got)
	}
	if got := countOps(tl, "cpu:p2") + countOps(tl, "cpu:p3"); got != 0 {
		t.Errorf("horizontal has extra phases: %d ops", got)
	}
}

// Pipelining must actually overlap: with DMA engines, at least one boundary
// transfer runs concurrently with a compute op; with DisablePipeline all
// transfers serialize on the GPU queue.
func TestPipelineOverlapObservable(t *testing.T) {
	p := testProblem(DepNW|DepN, 200, 4000)
	res, err := SolveHetero(p, Options{TShare: 500, TSwitch: 0})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	overlapped := false
	var computes, transfers []hetsim.OpRecord
	for _, r := range tl.Records {
		switch r.Kind {
		case hetsim.OpCompute:
			computes = append(computes, r)
		case hetsim.OpTransfer:
			transfers = append(transfers, r)
		}
	}
	for _, x := range transfers {
		for _, c := range computes {
			if x.Start < c.End && c.Start < x.End {
				overlapped = true
			}
		}
	}
	if !overlapped {
		t.Error("no transfer overlapped any compute; pipelining is not happening")
	}

	off, err := SolveHetero(p, Options{TShare: 500, TSwitch: 0, DisablePipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range off.Timeline.Records {
		if r.Kind == hetsim.OpTransfer && r.Resource != hetsim.ResGPU {
			t.Errorf("unpipelined transfer %q ran on %s, want gpu queue", r.Label, r.Resource)
		}
	}
}

// Devices never compute the same cell twice and cover the table exactly.
func TestHeteroCellAccountingProperty(t *testing.T) {
	masks := AllDepMasks()
	f := func(mi, r, c, tsw, tsh uint8) bool {
		m := masks[int(mi)%len(masks)]
		rows := int(r%40) + 2
		cols := int(c%40) + 2
		p := testProblem(m, rows, cols)
		res, err := SolveHetero(p, Options{
			TSwitch:     int(tsw % 30),
			TShare:      int(tsh % 30),
			SkipCompute: true,
		})
		if err != nil {
			return false
		}
		st := res.Stats()
		return st.CPUCells+st.GPUCells == rows*cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Fuzz across masks, shapes and parameters: the heterogeneous solver must
// agree with the sequential reference cell-for-cell.
func TestHeteroEquivalenceFuzz(t *testing.T) {
	masks := AllDepMasks()
	f := func(mi, r, c, tsw, tsh uint8, preferIL bool) bool {
		m := masks[int(mi)%len(masks)]
		rows := int(r%30) + 1
		cols := int(c%30) + 1
		p := testProblem(m, rows, cols)
		want, err := Solve(p)
		if err != nil {
			return false
		}
		res, err := SolveHetero(p, Options{
			TSwitch:         int(tsw % 25),
			TShare:          int(tsh % 25),
			PreferInvertedL: preferIL,
		})
		if err != nil {
			return false
		}
		return table.EqualComparable(want, res.Grid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// A *tuned* framework never loses meaningfully to either single-device
// baseline: the §V-A sweep reaches the degenerate configurations
// (t_share = width keeps everything on the CPU, t_share = 0 everything on
// the GPU), so the tuner's optimum is at most the better baseline plus
// phase-transition slack.
func TestTunedHeteroNeverCatastrophic(t *testing.T) {
	for _, m := range []DepMask{DepW | DepN, DepNW | DepN, DepNW | DepN | DepNE, DepW | DepNE} {
		p := testProblem(m, 600, 600)
		o := Options{SkipCompute: true}
		tuned, err := Tune(p, o)
		if err != nil {
			t.Fatal(err)
		}
		cpu, err := SolveCPUOnly(p, Options{SkipCompute: true})
		if err != nil {
			t.Fatal(err)
		}
		gpu, err := SolveGPUOnly(p, Options{SkipCompute: true})
		if err != nil {
			t.Fatal(err)
		}
		best := min(cpu.Time, gpu.Time)
		if tuned.Time > best+best/20 {
			t.Errorf("%s: tuned hetero %v exceeds best baseline %v by >5%%", m, tuned.Time, best)
		}
	}
}
