// Metamorphic tests for the Table-I symmetry relations the solvers rely
// on: Vertical is transposed Horizontal, and mirrored-Inverted-L is
// column-mirrored Inverted-L. Each relation is checked on randomized
// instances through both the sequential oracle and a parallel executor,
// so a bug in the reduction machinery (Transposed/MirroredColumns or the
// canonicalize step that uses them) cannot hide behind a matching bug in
// one executor.
package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/table"
)

// metaDims draws a random shape including degenerate rows/columns.
func metaDims(rng *rand.Rand) (int, int) {
	return 1 + rng.Intn(40), 1 + rng.Intn(40)
}

// TestMetamorphicVerticalIsTransposedHorizontal: for a Vertical-pattern
// problem p, solving p directly must equal solving Transposed(p) — a
// Horizontal-pattern problem — and mapping the grid back. Both Vertical
// masks ({W} and {W,NW}) are exercised.
func TestMetamorphicVerticalIsTransposedHorizontal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	masks := []core.DepMask{core.DepW, core.DepW | core.DepNW}
	for iter := 0; iter < 12; iter++ {
		m := masks[iter%len(masks)]
		rows, cols := metaDims(rng)
		seed := rng.Int63()
		p := confProblem(seed, m, rows, cols)
		if got := core.Classify(p.Deps); got != core.Vertical {
			t.Fatalf("mask %s classifies as %s, want Vertical", m, got)
		}
		tp, undo := core.Transposed(p)
		if got := core.Classify(tp.Deps); got != core.Horizontal {
			t.Fatalf("transposed mask %s classifies as %s, want Horizontal", tp.Deps, got)
		}
		direct, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		viaT, err := core.Solve(tp)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(direct, undo(viaT)) {
			t.Errorf("mask=%s shape=%dx%d seed=%d: sequential Vertical != transposed Horizontal", m, rows, cols, seed)
		}
		parT, err := core.SolveParallel(tp, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(direct, undo(parT)) {
			t.Errorf("mask=%s shape=%dx%d seed=%d: parallel transposed Horizontal differs from direct Vertical", m, rows, cols, seed)
		}
	}
}

// TestMetamorphicMInvertedLIsMirroredInvertedL: for a mirrored-Inverted-L
// problem ({NE}), solving directly must equal solving the column-mirrored
// problem — an Inverted-L ({NW}) — and mirroring the grid back.
func TestMetamorphicMInvertedLIsMirroredInvertedL(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 12; iter++ {
		rows, cols := metaDims(rng)
		seed := rng.Int63()
		p := confProblem(seed, core.DepNE, rows, cols)
		if got := core.Classify(p.Deps); got != core.MInvertedL {
			t.Fatalf("mask NE classifies as %s, want MInvertedL", got)
		}
		mp, undo := core.MirroredColumns(p)
		if got := core.Classify(mp.Deps); got != core.InvertedL {
			t.Fatalf("mirrored mask %s classifies as %s, want InvertedL", mp.Deps, got)
		}
		direct, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		viaM, err := core.Solve(mp)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(direct, undo(viaM)) {
			t.Errorf("shape=%dx%d seed=%d: sequential mInverted-L != mirrored Inverted-L", rows, cols, seed)
		}
		parM, err := core.SolveParallel(mp, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(direct, undo(parM)) {
			t.Errorf("shape=%dx%d seed=%d: parallel mirrored Inverted-L differs from direct mInverted-L", rows, cols, seed)
		}
	}
}

// TestMetamorphicReductionsAreInvolutions: applying a reduction twice
// returns to the original problem — transposing a transposed problem (or
// mirroring a mirrored one) and solving must reproduce the direct solve.
func TestMetamorphicReductionsAreInvolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 6; iter++ {
		rows, cols := metaDims(rng)
		seed := rng.Int63()
		p := confProblem(seed, core.DepW|core.DepN, rows, cols)
		direct, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		tp, undo1 := core.Transposed(p)
		tpp, undo2 := core.Transposed(tp)
		g, err := core.Solve(tpp)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(direct, undo1(undo2(g))) {
			t.Errorf("shape=%dx%d seed=%d: double transpose is not the identity", rows, cols, seed)
		}
		// Mirroring is only defined for W-free masks (a mirrored W would
		// be a forward dependency), so the mirror half uses {N,NE}.
		pm := confProblem(seed, core.DepN|core.DepNE, rows, cols)
		mdirect, err := core.Solve(pm)
		if err != nil {
			t.Fatal(err)
		}
		mp, mundo1 := core.MirroredColumns(pm)
		mpp, mundo2 := core.MirroredColumns(mp)
		mg, err := core.Solve(mpp)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(mdirect, mundo1(mundo2(mg))) {
			t.Errorf("shape=%dx%d seed=%d: double mirror is not the identity", rows, cols, seed)
		}
	}
}
