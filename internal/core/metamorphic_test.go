// Metamorphic tests for the Table-I symmetry relations the solvers rely
// on: Vertical is transposed Horizontal, and mirrored-Inverted-L is
// column-mirrored Inverted-L. Each relation is checked on randomized
// instances through both the sequential oracle and a parallel executor,
// so a bug in the reduction machinery (Transposed/MirroredColumns or the
// canonicalize step that uses them) cannot hide behind a matching bug in
// one executor.
package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/table"
)

// metaDims draws a random shape including degenerate rows/columns.
func metaDims(rng *rand.Rand) (int, int) {
	return 1 + rng.Intn(40), 1 + rng.Intn(40)
}

// TestMetamorphicVerticalIsTransposedHorizontal: for a Vertical-pattern
// problem p, solving p directly must equal solving Transposed(p) — a
// Horizontal-pattern problem — and mapping the grid back. Both Vertical
// masks ({W} and {W,NW}) are exercised.
func TestMetamorphicVerticalIsTransposedHorizontal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	masks := []core.DepMask{core.DepW, core.DepW | core.DepNW}
	for iter := 0; iter < 12; iter++ {
		m := masks[iter%len(masks)]
		rows, cols := metaDims(rng)
		seed := rng.Int63()
		p := confProblem(seed, m, rows, cols)
		if got := core.Classify(p.Deps); got != core.Vertical {
			t.Fatalf("mask %s classifies as %s, want Vertical", m, got)
		}
		tp, undo := core.Transposed(p)
		if got := core.Classify(tp.Deps); got != core.Horizontal {
			t.Fatalf("transposed mask %s classifies as %s, want Horizontal", tp.Deps, got)
		}
		direct, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		viaT, err := core.Solve(tp)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(direct, undo(viaT)) {
			t.Errorf("mask=%s shape=%dx%d seed=%d: sequential Vertical != transposed Horizontal", m, rows, cols, seed)
		}
		parT, err := core.SolveParallel(tp, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(direct, undo(parT)) {
			t.Errorf("mask=%s shape=%dx%d seed=%d: parallel transposed Horizontal differs from direct Vertical", m, rows, cols, seed)
		}
	}
}

// TestMetamorphicMInvertedLIsMirroredInvertedL: for a mirrored-Inverted-L
// problem ({NE}), solving directly must equal solving the column-mirrored
// problem — an Inverted-L ({NW}) — and mirroring the grid back.
func TestMetamorphicMInvertedLIsMirroredInvertedL(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 12; iter++ {
		rows, cols := metaDims(rng)
		seed := rng.Int63()
		p := confProblem(seed, core.DepNE, rows, cols)
		if got := core.Classify(p.Deps); got != core.MInvertedL {
			t.Fatalf("mask NE classifies as %s, want MInvertedL", got)
		}
		mp, undo := core.MirroredColumns(p)
		if got := core.Classify(mp.Deps); got != core.InvertedL {
			t.Fatalf("mirrored mask %s classifies as %s, want InvertedL", mp.Deps, got)
		}
		direct, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		viaM, err := core.Solve(mp)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(direct, undo(viaM)) {
			t.Errorf("shape=%dx%d seed=%d: sequential mInverted-L != mirrored Inverted-L", rows, cols, seed)
		}
		parM, err := core.SolveParallel(mp, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(direct, undo(parM)) {
			t.Errorf("shape=%dx%d seed=%d: parallel mirrored Inverted-L differs from direct mInverted-L", rows, cols, seed)
		}
	}
}

// TestMetamorphicAsyncSymmetry runs both Table-I symmetry relations
// through the async dependency-counter executor: solving the transposed
// (or column-mirrored) problem asynchronously and mapping the grid back
// must reproduce the direct sequential solve. The async executor performs
// no canonicalization of its own, so this catches any disagreement
// between its raw-mask dependency graph and the reduction machinery.
func TestMetamorphicAsyncSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 12; iter++ {
		rows, cols := metaDims(rng)
		seed := rng.Int63()

		// Vertical {W} vs its transposed Horizontal, both async.
		p := confProblem(seed, core.DepW, rows, cols)
		direct, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		asyncDirect, err := core.SolveAsync(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(direct, asyncDirect) {
			t.Errorf("shape=%dx%d seed=%d: async Vertical differs from sequential", rows, cols, seed)
		}
		tp, undo := core.Transposed(p)
		viaT, err := core.SolveAsync(tp, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(direct, undo(viaT)) {
			t.Errorf("shape=%dx%d seed=%d: async transposed Horizontal differs from direct Vertical", rows, cols, seed)
		}

		// Mirrored-Inverted-L {NE} vs its column-mirrored Inverted-L.
		pm := confProblem(seed, core.DepNE, rows, cols)
		mdirect, err := core.Solve(pm)
		if err != nil {
			t.Fatal(err)
		}
		mp, mundo := core.MirroredColumns(pm)
		viaM, err := core.SolveAsync(mp, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(mdirect, mundo(viaM)) {
			t.Errorf("shape=%dx%d seed=%d: async mirrored Inverted-L differs from direct mInverted-L", rows, cols, seed)
		}
	}
}

// gridDigest folds a grid into an FNV-1a digest in row-major order, the
// canonical fingerprint for the determinism check below.
func gridDigest(g *table.Grid[int64]) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			v := uint64(g.At(i, j))
			for s := 0; s < 64; s += 8 {
				h ^= (v >> s) & 0xff
				h *= prime64
			}
		}
	}
	return h
}

// TestMetamorphicAsyncDeterminism: the async completion order is
// nondeterministic (whichever worker's decrement lands last wins the
// cell), but the computed table must not be — repeated solves of the same
// instance must produce bit-identical digests. Run across several masks
// including the full mask, whose cells race on four counters at once.
func TestMetamorphicAsyncDeterminism(t *testing.T) {
	masks := []core.DepMask{
		core.DepW | core.DepN,
		core.DepN,
		core.DepW | core.DepNE,
		core.DepW | core.DepNW | core.DepN | core.DepNE,
	}
	for _, m := range masks {
		p := confProblem(0xd1ce, m, 67, 59)
		want, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		wantDigest := gridDigest(want)
		for rep := 0; rep < 8; rep++ {
			g, err := core.SolveAsync(p, 4)
			if err != nil {
				t.Fatal(err)
			}
			if d := gridDigest(g); d != wantDigest {
				t.Fatalf("mask=%s rep=%d: async digest %#x differs from oracle %#x", m, rep, d, wantDigest)
			}
		}
	}
}

// TestMetamorphicReductionsAreInvolutions: applying a reduction twice
// returns to the original problem — transposing a transposed problem (or
// mirroring a mirrored one) and solving must reproduce the direct solve.
func TestMetamorphicReductionsAreInvolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 6; iter++ {
		rows, cols := metaDims(rng)
		seed := rng.Int63()
		p := confProblem(seed, core.DepW|core.DepN, rows, cols)
		direct, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		tp, undo1 := core.Transposed(p)
		tpp, undo2 := core.Transposed(tp)
		g, err := core.Solve(tpp)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(direct, undo1(undo2(g))) {
			t.Errorf("shape=%dx%d seed=%d: double transpose is not the identity", rows, cols, seed)
		}
		// Mirroring is only defined for W-free masks (a mirrored W would
		// be a forward dependency), so the mirror half uses {N,NE}.
		pm := confProblem(seed, core.DepN|core.DepNE, rows, cols)
		mdirect, err := core.Solve(pm)
		if err != nil {
			t.Fatal(err)
		}
		mp, mundo1 := core.MirroredColumns(pm)
		mpp, mundo2 := core.MirroredColumns(mp)
		mg, err := core.Solve(mpp)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(mdirect, mundo1(mundo2(mg))) {
			t.Errorf("shape=%dx%d seed=%d: double mirror is not the identity", rows, cols, seed)
		}
	}
}
