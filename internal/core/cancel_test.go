package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// wantCanceled asserts err is a *Canceled unwrapping to context.Canceled
// (or the given cause).
func wantCanceled(t *testing.T, err error, cause error) *Canceled {
	t.Helper()
	if err == nil {
		t.Fatal("expected a cancellation error, got nil")
	}
	var c *Canceled
	if !errors.As(err, &c) {
		t.Fatalf("error %v (%T) is not a *Canceled", err, err)
	}
	if cause == nil {
		cause = context.Canceled
	}
	if !errors.Is(err, cause) {
		t.Fatalf("error %v does not unwrap to %v", err, cause)
	}
	if c.Solver == "" {
		t.Error("Canceled.Solver is empty")
	}
	if c.Front < 0 {
		t.Errorf("Canceled.Front = %d, want >= 0", c.Front)
	}
	return c
}

// TestExpiredContextAllExecutors checks that every context-honoring entry
// point returns promptly with a *Canceled error when handed an
// already-expired context, without computing the table.
func TestExpiredContextAllExecutors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	p := testProblem(DepW|DepNW|DepN, 64, 64) // anti-diagonal
	ph := testProblem(DepNW|DepN|DepNE, 64, 64)
	opts := Options{TSwitch: -1, TShare: -1}

	accel := Accelerator{Name: "k20", Model: opts.withDefaults(NewWavefronts(Horizontal, 64, 64), TransferTwoWay).Platform.GPU}

	cases := []struct {
		name string
		run  func() error
	}{
		{"sequential", func() error { _, err := SolveContext(ctx, p); return err }},
		{"pool", func() error { _, err := SolveParallelContext(ctx, p, Options{NativeWorkers: 4}); return err }},
		{"pool-1worker", func() error { _, err := SolveParallelContext(ctx, p, Options{NativeWorkers: 1}); return err }},
		{"bands", func() error { _, err := SolveParallelContext(ctx, ph, Options{NativeWorkers: 4}); return err }},
		{"hetero-antidiag", func() error { _, err := SolveHeteroContext(ctx, p, opts); return err }},
		{"hetero-horizontal", func() error { _, err := SolveHeteroContext(ctx, ph, opts); return err }},
		{"hetero-invertedl", func() error {
			_, err := SolveHeteroContext(ctx, testProblem(DepNW, 64, 64), Options{TSwitch: -1, TShare: -1, PreferInvertedL: true})
			return err
		}},
		{"hetero-knight", func() error { _, err := SolveHeteroContext(ctx, testProblem(DepW|DepNE, 64, 64), opts); return err }},
		{"cpu-only", func() error { _, err := SolveCPUOnlyContext(ctx, p, opts); return err }},
		{"gpu-only", func() error { _, err := SolveGPUOnlyContext(ctx, p, opts); return err }},
		{"multi", func() error { _, err := SolveHeteroMultiContext(ctx, ph, opts, []Accelerator{accel}, nil); return err }},
		{"tiled", func() error { _, err := SolveTiledContext(ctx, p, 8, Options{NativeWorkers: 2}); return err }},
		{"banded", func() error {
			_, err := SolveBandedContext(ctx, p, 8, func(i, j int) int64 { return 1 << 30 })
			return err
		}},
		{"resilient", func() error { _, _, err := SolveResilientContext(ctx, p, 3, nil); return err }},
		{"lastrow", func() error { _, err := SolveLastRowContext(ctx, p); return err }},
		{"seq3", func() error { _, err := Solve3Context(ctx, testProblem3(Dep3X|Dep3Y|Dep3Z, 12, 12, 12)); return err }},
		{"pool3", func() error { _, err := SolveParallel3Context(ctx, testProblem3(Dep3X|Dep3Y|Dep3Z, 12, 12, 12), 4); return err }},
		{"hetero3", func() error {
			_, err := SolveHetero3Context(ctx, testProblem3(Dep3X|Dep3Y|Dep3Z, 12, 12, 12), Options{TSwitch: -1, TShare: -1})
			return err
		}},
		{"cpu-only3", func() error {
			_, err := SolveCPUOnly3Context(ctx, testProblem3(Dep3X, 12, 12, 12), Options{TSwitch: -1, TShare: -1})
			return err
		}},
		{"gpu-only3", func() error {
			_, err := SolveGPUOnly3Context(ctx, testProblem3(Dep3X, 12, 12, 12), Options{TSwitch: -1, TShare: -1})
			return err
		}},
		{"tiled3", func() error { _, err := SolveTiled3Context(ctx, testProblem3(Dep3X|Dep3Y, 12, 12, 12), 4, 2); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCanceled(t, tc.run(), nil)
		})
	}
}

// TestMidSolveCancelPool cancels from inside the recurrence on an
// anti-diagonal problem and checks the pool aborts mid-table.
func TestMidSolveCancelPool(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var cells atomic.Int64
	p := testProblem(DepW|DepNW|DepN, 256, 256)
	inner := p.F
	p.F = func(i, j int, nb Neighbors[int64]) int64 {
		if cells.Add(1) == 1000 {
			cancel()
		}
		return inner(i, j, nb)
	}
	g, err := SolveParallelContext(ctx, p, Options{NativeWorkers: 4, NativeChunk: 16})
	c := wantCanceled(t, err, nil)
	if g != nil {
		t.Error("canceled solve returned a non-nil grid")
	}
	if c.Solver != "pool" {
		t.Errorf("Canceled.Solver = %q, want pool", c.Solver)
	}
	if total := cells.Load(); total >= 256*256 {
		t.Errorf("solve computed all %d cells despite cancellation", total)
	}
}

// TestMidSolveCancelBands cancels inside a horizontal-pattern solve, which
// runs the lookahead band runtime with point-to-point token handoff; the
// blocked token waits must observe the cancel rather than deadlock.
func TestMidSolveCancelBands(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var cells atomic.Int64
	p := testProblem(DepNW|DepN|DepNE, 512, 512)
	inner := p.F
	p.F = func(i, j int, nb Neighbors[int64]) int64 {
		if cells.Add(1) == 5000 {
			cancel()
		}
		return inner(i, j, nb)
	}
	_, err := SolveParallelContext(ctx, p, Options{NativeWorkers: 4})
	wantCanceled(t, err, nil)
	if total := cells.Load(); total >= 512*512 {
		t.Errorf("solve computed all %d cells despite cancellation", total)
	}
}

// TestMidSolveCancelHetero cancels inside a simulated heterogeneous solve.
func TestMidSolveCancelHetero(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var cells atomic.Int64
	p := testProblem(DepW|DepNW|DepN, 256, 256)
	inner := p.F
	p.F = func(i, j int, nb Neighbors[int64]) int64 {
		if cells.Add(1) == 1000 {
			cancel()
		}
		return inner(i, j, nb)
	}
	_, err := SolveHeteroContext(ctx, p, Options{TSwitch: -1, TShare: -1})
	c := wantCanceled(t, err, nil)
	if c.Solver != "hetero" {
		t.Errorf("Canceled.Solver = %q, want hetero", c.Solver)
	}
	if total := cells.Load(); total >= 256*256 {
		t.Errorf("solve computed all %d cells despite cancellation", total)
	}
}

// TestCancelCausePropagates checks the *Canceled error unwraps to the
// context's cause, not just context.Canceled.
func TestCancelCausePropagates(t *testing.T) {
	cause := errors.New("operator pulled the plug")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)

	_, err := SolveParallelContext(ctx, testProblem(DepW|DepN, 64, 64), Options{NativeWorkers: 2})
	wantCanceled(t, err, cause)
}

// TestDeadlineExpiryIsCanceled checks deadline expiry surfaces the same
// way, unwrapping to context.DeadlineExceeded.
func TestDeadlineExpiryIsCanceled(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // guarantee expiry

	_, err := SolveParallelContext(ctx, testProblem(DepW|DepN, 64, 64), Options{NativeWorkers: 2})
	wantCanceled(t, err, context.DeadlineExceeded)
}

// TestCanceledSolvesLeakNoGoroutines runs many mid-solve cancellations and
// checks the goroutine count returns to its baseline: canceled workers
// must ride the barrier protocol down, not park forever.
func TestCanceledSolvesLeakNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	for iter := 0; iter < 20; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		var cells atomic.Int64
		deps := DepW | DepNW | DepN
		if iter%2 == 1 {
			deps = DepNW | DepN | DepNE // band runtime
		}
		p := testProblem(deps, 128, 128)
		inner := p.F
		p.F = func(i, j int, nb Neighbors[int64]) int64 {
			if cells.Add(1) == int64(100*(iter+1)) {
				cancel()
			}
			return inner(i, j, nb)
		}
		if _, err := SolveParallelContext(ctx, p, Options{NativeWorkers: 4, NativeChunk: 8}); err == nil {
			t.Fatalf("iter %d: expected cancellation error", iter)
		}
		cancel()
	}

	// Workers exit through the barrier after the error returns; give the
	// scheduler a moment before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after canceled solves", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCanceledErrorMessage pins the documented error shape.
func TestCanceledErrorMessage(t *testing.T) {
	err := &Canceled{Solver: "pool", Front: 7, Err: context.Canceled}
	want := fmt.Sprintf("core: pool solve canceled at front 7: %v", context.Canceled)
	if err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
}
