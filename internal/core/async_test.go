package core

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/table"
	"repro/internal/trace"
)

// asyncSink records the full Collector stream of one async solve.
type asyncSink struct {
	starts  []SolveInfo
	workers []WorkerStats
	phases  []string
	ends    []error
}

func (s *asyncSink) SolveStart(info SolveInfo)         { s.starts = append(s.starts, info) }
func (s *asyncSink) FrontSize(int)                     {}
func (s *asyncSink) WorkerStats(ws WorkerStats)        { s.workers = append(s.workers, ws) }
func (s *asyncSink) Transfer(TransferStats)            {}
func (s *asyncSink) Phase(name string, _ time.Duration) { s.phases = append(s.phases, name) }
func (s *asyncSink) SolveEnd(err error)                { s.ends = append(s.ends, err) }

// TestAsyncExpiredContext checks the async entry point returns promptly
// with a *Canceled when handed an already-expired context.
func TestAsyncExpiredContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, err := SolveAsyncContext(ctx, testProblem(DepW|DepN, 64, 64), Options{NativeWorkers: 4})
	c := wantCanceled(t, err, nil)
	if g != nil {
		t.Error("canceled solve returned a non-nil grid")
	}
	if c.Solver != "async" {
		t.Errorf("Canceled.Solver = %q, want async", c.Solver)
	}
}

// TestMidSolveCancelAsync cancels from inside the recurrence and checks
// the async workers abort mid-table with a row-based Front.
func TestMidSolveCancelAsync(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var cells atomic.Int64
	p := testProblem(DepW|DepNW|DepN, 256, 256)
	inner := p.F
	p.F = func(i, j int, nb Neighbors[int64]) int64 {
		if cells.Add(1) == 1000 {
			cancel()
		}
		return inner(i, j, nb)
	}
	g, err := SolveAsyncContext(ctx, p, Options{NativeWorkers: 4})
	c := wantCanceled(t, err, nil)
	if g != nil {
		t.Error("canceled solve returned a non-nil grid")
	}
	if c.Solver != "async" {
		t.Errorf("Canceled.Solver = %q, want async", c.Solver)
	}
	if c.Front < 0 || c.Front > 256 {
		t.Errorf("Canceled.Front = %d, want a row index in [0, 256]", c.Front)
	}
	if total := cells.Load(); total >= 256*256 {
		t.Errorf("solve computed all %d cells despite cancellation", total)
	}
}

// TestAsyncCanceledSolvesLeakNoGoroutines runs repeated mid-solve
// cancellations and checks the goroutine count returns to baseline: a
// worker spinning in dequeue must observe the canceled flag and exit.
func TestAsyncCanceledSolvesLeakNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for iter := 0; iter < 20; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		var cells atomic.Int64
		p := testProblem(DepW|DepNW|DepN|DepNE, 128, 128)
		inner := p.F
		p.F = func(i, j int, nb Neighbors[int64]) int64 {
			if cells.Add(1) == int64(100*(iter+1)) {
				cancel()
			}
			return inner(i, j, nb)
		}
		if _, err := SolveAsyncContext(ctx, p, Options{NativeWorkers: 4}); err == nil {
			t.Fatalf("iter %d: expected cancellation error", iter)
		}
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after canceled solves", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAsyncCollectorEvents checks the Collector wiring: one SolveStart
// naming the async executor, per-worker stats whose cells sum to the
// table, the async phase, and a nil SolveEnd.
func TestAsyncCollectorEvents(t *testing.T) {
	sink := &asyncSink{}
	p := testProblem(DepW|DepN, 96, 83)
	want, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveAsyncOpt(p, Options{NativeWorkers: 4, Collector: sink})
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, got) {
		t.Fatal("collected solve computed a different table")
	}
	if len(sink.starts) != 1 {
		t.Fatalf("SolveStart count = %d, want 1", len(sink.starts))
	}
	info := sink.starts[0]
	if info.Solver != "async" || info.Executed != "async" || info.Workers != 4 {
		t.Errorf("SolveInfo = %+v, want solver/executed async with 4 workers", info)
	}
	if len(sink.workers) != 4 {
		t.Fatalf("WorkerStats count = %d, want 4", len(sink.workers))
	}
	cells := 0
	for _, ws := range sink.workers {
		cells += ws.Cells
	}
	if cells != 96*83 {
		t.Errorf("worker cells sum to %d, want %d", cells, 96*83)
	}
	if len(sink.phases) != 1 || sink.phases[0] != "async" {
		t.Errorf("phases = %v, want [async]", sink.phases)
	}
	if len(sink.ends) != 1 || sink.ends[0] != nil {
		t.Errorf("SolveEnd = %v, want one nil", sink.ends)
	}
}

// TestAsyncTraceEvents checks the Recorder wiring: KindTask spans account
// for every cell exactly once, KindReady queue-depth samples appear, and
// — the point of the executor — not a single barrier or front event.
func TestAsyncTraceEvents(t *testing.T) {
	p := testProblem(DepW|DepNW|DepN, 256, 256)
	want, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(1 << 14)
	got, err := SolveAsyncOpt(p, Options{NativeWorkers: 4, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, got) {
		t.Fatal("traced solve computed a different table")
	}
	evs := rec.Events()
	if rec.Dropped() != 0 {
		t.Fatalf("trace dropped %d events; grow the test ring", rec.Dropped())
	}
	kinds := traceKinds(evs)
	if kinds[trace.KindBarrier] != 0 || kinds[trace.KindFront] != 0 {
		t.Errorf("async trace kinds = %v, want zero barrier and front events", kinds)
	}
	if kinds[trace.KindTask] == 0 {
		t.Errorf("async trace kinds = %v, want task spans", kinds)
	}
	if kinds[trace.KindReady] == 0 {
		t.Errorf("async trace kinds = %v, want ready-queue samples on a %d-cell solve", kinds, 256*256)
	}
	var cells int64
	for _, e := range evs {
		if e.Kind == trace.KindTask {
			cells += e.B - e.A
		}
	}
	if cells != 256*256 {
		t.Errorf("task spans cover %d cells, want %d", cells, 256*256)
	}
	if meta := rec.Meta(); meta.Solver != "async" || meta.Workers != 4 {
		t.Errorf("meta = %+v, want async solver with 4 workers", meta)
	}
	rep := trace.Analyze(rec.Meta(), evs, 0)
	if rep.Stall.BarrierNS != 0 {
		t.Errorf("analyzer reports %dns barrier stall on an async trace", rep.Stall.BarrierNS)
	}
	if rep.Queue.Samples == 0 {
		t.Error("analyzer folded no ready-queue samples")
	}
}

// TestAsyncWorkloadRunsOnForeignWorkers drives NewAsyncWorkload the way
// the scheduler does — worker loops claimed unit by unit by goroutines
// the engine does not own — and checks the assembled grid, plus that
// loops claimed after completion return immediately.
func TestAsyncWorkloadRunsOnForeignWorkers(t *testing.T) {
	p := testProblem(DepW|DepNW|DepN|DepNE, 128, 97)
	want, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	wl, finish, err := NewAsyncWorkload(context.Background(), p, Options{NativeWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if wl.Fronts != 1 || wl.Size(0) != 4 {
		t.Fatalf("workload shape fronts=%d size=%d, want 1 front of 4 units", wl.Fronts, wl.Size(0))
	}
	if !strings.Contains(wl.Info.Solver, "async") {
		t.Errorf("workload solver = %q, want an async name", wl.Info.Solver)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wl.Run(0, w, w+1)
		}(w)
	}
	wg.Wait()
	// A straggler claim after completion must be a no-op, not a hang.
	done := make(chan struct{})
	go func() {
		wl.Run(0, 0, 4)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-completion Run did not return")
	}
	if got := finish(); !table.EqualComparable(want, got) {
		t.Error("workload grid differs from sequential oracle")
	}
}

// TestAsyncWorkloadCancelUnblocksLoops cancels the workload's context
// mid-solve and checks every claimed loop returns.
func TestAsyncWorkloadCancelUnblocksLoops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cells atomic.Int64
	p := testProblem(DepW|DepNW|DepN, 256, 256)
	inner := p.F
	p.F = func(i, j int, nb Neighbors[int64]) int64 {
		if cells.Add(1) == 2000 {
			cancel()
		}
		return inner(i, j, nb)
	}
	wl, _, err := NewAsyncWorkload(ctx, p, Options{NativeWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wl.Run(0, w, w+1)
			}(w)
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled workload loops did not return")
	}
	if total := cells.Load(); total >= 256*256 {
		t.Errorf("workload computed all %d cells despite cancellation", total)
	}
}

// TestAsyncRejectsOversizedTables pins the int32 cell-index ceiling: the
// engine must refuse, with a clear error, tables whose cell count does
// not fit the queue's int32 slots — before allocating anything.
func TestAsyncRejectsOversizedTables(t *testing.T) {
	p := testProblem(DepW|DepN, 1, 1)
	p.Rows, p.Cols = 1<<16, 1<<16 // 2^32 cells
	_, err := SolveAsync(p, 2)
	if err == nil {
		t.Fatal("expected an error for a 2^32-cell table")
	}
	if !strings.Contains(err.Error(), "async executor supports at most") {
		t.Errorf("error = %v, want the documented cell-count ceiling", err)
	}
}
