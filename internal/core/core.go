// Package core implements the heterogeneous LDDP framework of Kumar &
// Kothapalli, "A Novel Heterogeneous Framework for Local Dependency Dynamic
// Programming Problems" (2015).
//
// An LDDP-Plus problem fills a 2-D table where cell (i,j) is a function of
// some subset of its four non-conflicting earlier neighbours — the
// representative set {W, NW, N, NE}. The subset actually read (the
// contributing set, a DepMask here) determines the dependency pattern
// (Classify, paper Table I), the pattern determines the wavefront iteration
// space and the CPU/GPU execution strategy, and the strategy determines the
// data-transfer scheme (TransferNeed, paper Table II).
//
// The package offers four solvers over a user-supplied Problem:
//
//   - Solve: sequential reference (row-major fill).
//   - SolveParallel: real goroutine wavefront solver for multicore hosts.
//   - SolveHetero: the paper's heterogeneous framework, executed against a
//     simulated CPU+GPU platform (internal/hetsim); computes real cell
//     values and a deterministic simulated timeline.
//   - SolveCPUOnly / SolveGPUOnly: simulated single-device baselines used
//     by the paper's figures.
//
// A user supplies only the recurrence F, the dependency mask, and the
// boundary condition — exactly the interface the paper prescribes in §V-C
// ("a user has to provide ... Function f ... [and] Initialization").
package core
