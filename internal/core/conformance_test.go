// Differential conformance suite: every public executor path must produce
// the byte-identical table for every dependency mask on every adversarial
// shape. The sequential solver is the oracle; SolveParallel (pool),
// SolveParallelSpawn, SolveTiled, and scheduler-submitted solves are the
// candidates. Instances are drawn from a seeded wraparound-mixing
// generator, so a failure report (mask, shape, executor, seed, first
// mismatching cell) reproduces the instance exactly.
//
// The suite lives in package core_test (not core) because the scheduler
// path imports internal/sched, which imports core.
package core_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/table"
)

// confProblem builds a seeded adversarial instance: the recurrence mixes
// every contributing neighbour and the cell position through wraparound
// multiply-xor steps (splitmix-style), so reordered or repeated reads and
// torn fronts change the output with overwhelming probability, unlike
// recurrences built from associative-commutative ops alone.
func confProblem(seed int64, m core.DepMask, rows, cols int) *core.Problem[int64] {
	mix := func(v int64) int64 {
		v *= -7046029254386353131 // odd constant; wraparound is the point
		v ^= int64(uint64(v) >> 29)
		v *= -4658895280553007687
		v ^= int64(uint64(v) >> 32)
		return v
	}
	return &core.Problem[int64]{
		Name: fmt.Sprintf("conf-%s-%dx%d", m, rows, cols),
		Rows: rows,
		Cols: cols,
		Deps: m,
		F: func(i, j int, nb core.Neighbors[int64]) int64 {
			v := seed + int64(i)*1_000_003 + int64(j)
			if m.Has(core.DepW) {
				v = mix(v + 3*nb.W)
			}
			if m.Has(core.DepNW) {
				v = mix(v ^ nb.NW)
			}
			if m.Has(core.DepN) {
				v = mix(v + nb.N<<1)
			}
			if m.Has(core.DepNE) {
				v = mix(v - nb.NE)
			}
			return v
		},
		Boundary: func(i, j int) int64 {
			return mix(seed ^ (int64(i) << 20) ^ int64(j))
		},
		BytesPerCell: 8,
	}
}

// conformanceShapes are the adversarial dimensions: degenerate rows and
// columns, extreme aspect ratios in both directions, prime dimensions
// (no alignment with chunk or tile sizes), and a square control.
var conformanceShapes = [][2]int{
	{1, 1},
	{1, 33},
	{1, 257}, // single row wider than every chunk/inline cutoff in the matrix
	{33, 1},
	{101, 1}, // knight fronts past the scheduler publish boundary are empty at odd t
	{3, 101}, // rows << cols
	{101, 3}, // cols << rows
	{31, 37}, // primes
	{48, 48},
}

// executorCase is one candidate executor path under test.
type executorCase struct {
	name string
	run  func(p *core.Problem[int64]) (*table.Grid[int64], error)
}

// conformanceExecutors builds the candidate list. Worker counts above the
// machine's core count and tiny chunks/tiles are deliberate: they force
// multi-chunk fronts and cross-front handoff even on small tables.
func conformanceExecutors(s *sched.Scheduler) []executorCase {
	return []executorCase{
		{"SolveParallel", func(p *core.Problem[int64]) (*table.Grid[int64], error) {
			return core.SolveParallel(p, 4)
		}},
		{"SolveParallelOpt/chunk7", func(p *core.Problem[int64]) (*table.Grid[int64], error) {
			return core.SolveParallelOpt(p, core.Options{NativeWorkers: 3, NativeChunk: 7})
		}},
		{"SolveParallelSpawn", func(p *core.Problem[int64]) (*table.Grid[int64], error) {
			return core.SolveParallelSpawn(p, 4)
		}},
		{"SolveTiled", func(p *core.Problem[int64]) (*table.Grid[int64], error) {
			return core.SolveTiled(p, 8, 4)
		}},
		{"Scheduler", func(p *core.Problem[int64]) (*table.Grid[int64], error) {
			return sched.Solve(context.Background(), s, p, sched.SubmitOptions{Chunk: 8})
		}},
		{"SolveAsync", func(p *core.Problem[int64]) (*table.Grid[int64], error) {
			return core.SolveAsync(p, 4)
		}},
		{"SolveAsync/1worker", func(p *core.Problem[int64]) (*table.Grid[int64], error) {
			return core.SolveAsync(p, 1)
		}},
		{"SchedulerAsync", func(p *core.Problem[int64]) (*table.Grid[int64], error) {
			wl, finish, err := core.NewAsyncWorkload(context.Background(), p, core.Options{NativeWorkers: 3})
			if err != nil {
				return nil, err
			}
			h, err := s.Submit(context.Background(), wl, sched.SubmitOptions{Chunk: 1})
			if err != nil {
				return nil, err
			}
			if err := h.Wait(); err != nil {
				return nil, err
			}
			return finish(), nil
		}},
	}
}

// reportMismatch renders a reproducible failure: the instance coordinates
// plus the first differing cell.
func reportMismatch(t *testing.T, exec string, seed int64, m core.DepMask, rows, cols int, want, got *table.Grid[int64]) {
	t.Helper()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if want.At(i, j) != got.At(i, j) {
				t.Errorf("%s: mask=%s shape=%dx%d seed=%d: first mismatch at (%d,%d): got %d, want %d",
					exec, m, rows, cols, seed, i, j, got.At(i, j), want.At(i, j))
				return
			}
		}
	}
	t.Errorf("%s: mask=%s shape=%dx%d seed=%d: grids differ but no cell mismatch (dimension mismatch?)",
		exec, m, rows, cols, seed)
}

// TestConformanceAllMasksAllExecutors is the full differential matrix:
// 15 masks x 9 shapes x every executor path, exact table equality.
func TestConformanceAllMasksAllExecutors(t *testing.T) {
	s, err := sched.New(sched.Config{Workers: 4, Chunk: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	execs := conformanceExecutors(s)
	const seed = int64(0x5eed_1dd9)
	for _, m := range core.AllDepMasks() {
		for _, d := range conformanceShapes {
			rows, cols := d[0], d[1]
			p := confProblem(seed, m, rows, cols)
			want, err := core.Solve(p)
			if err != nil {
				t.Fatalf("oracle: mask=%s shape=%dx%d: %v", m, rows, cols, err)
			}
			for _, ex := range execs {
				got, err := ex.run(p)
				if err != nil {
					t.Errorf("%s: mask=%s shape=%dx%d seed=%d: %v", ex.name, m, rows, cols, seed, err)
					continue
				}
				if !table.EqualComparable(want, got) {
					reportMismatch(t, ex.name, seed, m, rows, cols, want, got)
				}
			}
		}
	}
}

// TestConformanceSeedSweep re-runs a reduced matrix over several seeds so
// the suite is not blind to a value-dependent bug that a single seed
// happens to miss.
func TestConformanceSeedSweep(t *testing.T) {
	s, err := sched.New(sched.Config{Workers: 4, Chunk: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	execs := conformanceExecutors(s)
	masks := []core.DepMask{
		core.DepW | core.DepN,                            // anti-diagonal
		core.DepN,                                        // horizontal
		core.DepW,                                        // vertical (transposed)
		core.DepNW,                                       // inverted-L
		core.DepNE,                                       // mirrored inverted-L
		core.DepW | core.DepNE,                           // knight-move
		core.DepW | core.DepNW | core.DepN | core.DepNE,  // full mask
	}
	for seed := int64(1); seed <= 5; seed++ {
		for _, m := range masks {
			p := confProblem(seed, m, 29, 43)
			want, err := core.Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, ex := range execs {
				got, err := ex.run(p)
				if err != nil {
					t.Errorf("%s: mask=%s seed=%d: %v", ex.name, m, seed, err)
					continue
				}
				if !table.EqualComparable(want, got) {
					reportMismatch(t, ex.name, seed, m, 29, 43, want, got)
				}
			}
		}
	}
}
