package core

import (
	"strings"
	"testing"

	"repro/internal/hetsim"
	"repro/internal/table"
)

func testAccels() []Accelerator {
	return []Accelerator{
		{Name: "k20", Model: hetsim.HeteroHigh().GPU},
		{Name: "gt650m", Model: hetsim.HeteroLow().GPU},
	}
}

func TestSolveHeteroMultiMatchesSequential(t *testing.T) {
	// Every mask that executes as horizontal: direct, via transpose, via
	// mirror, and via the inverted-L preference.
	masks := []DepMask{
		DepN, DepNW | DepN, DepN | DepNE, DepNW | DepN | DepNE, DepNW | DepNE,
		DepNW,        // inverted-L -> horizontal
		DepNE,        // mInverted-L -> mirror -> horizontal
		DepW,         // vertical -> transpose -> horizontal
		DepW | DepNW, // vertical -> transpose -> horizontal case-1
	}
	for _, m := range masks {
		p := testProblem(m, 24, 60)
		want, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveHeteroMulti(p, Options{TShare: -1, TSwitch: -1}, testAccels(), nil)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !table.EqualComparable(want, res.Grid) {
			t.Errorf("%s: multi-accelerator solve differs from sequential", m)
		}
		if len(res.Shares) != 3 {
			t.Errorf("%s: %d shares, want 3", m, len(res.Shares))
		}
	}
}

func TestSolveHeteroMultiRejectsNonHorizontal(t *testing.T) {
	for _, m := range []DepMask{DepW | DepN, DepW | DepNE} {
		p := testProblem(m, 10, 10)
		if _, err := SolveHeteroMulti(p, Options{}, testAccels(), nil); err == nil {
			t.Errorf("%s: expected rejection of non-horizontal pattern", m)
		}
	}
}

func TestSolveHeteroMultiShareValidation(t *testing.T) {
	p := testProblem(DepN, 8, 20)
	if _, err := SolveHeteroMulti(p, Options{}, testAccels(), []int{5, 5}); err == nil {
		t.Error("wrong share count should error")
	}
	if _, err := SolveHeteroMulti(p, Options{}, testAccels(), []int{5, 5, 5}); err == nil {
		t.Error("shares not summing to cols should error")
	}
	if _, err := SolveHeteroMulti(p, Options{}, testAccels(), []int{-1, 11, 10}); err == nil {
		t.Error("negative share should error")
	}
	if _, err := SolveHeteroMulti(p, Options{}, nil, nil); err == nil {
		t.Error("no accelerators should error")
	}
}

func TestDefaultMultiShares(t *testing.T) {
	cpu := hetsim.HeteroHigh().CPU
	for _, cols := range []int{1000, 100_000} {
		shares := DefaultMultiShares(cpu, testAccels(), cols)
		if len(shares) != 3 {
			t.Fatalf("got %d shares", len(shares))
		}
		total := 0
		for _, s := range shares {
			total += s
			if s < 0 {
				t.Fatalf("negative share %d", s)
			}
		}
		if total != cols {
			t.Errorf("shares sum to %d, want %d", total, cols)
		}
	}
	// On wide rows the K20's throughput dominates and it gets the largest
	// share; on narrow rows the CPU's cheaper fixed cost wins instead.
	wide := DefaultMultiShares(cpu, testAccels(), 100_000)
	if !(wide[1] > wide[0] && wide[1] > wide[2]) {
		t.Errorf("wide rows: K20 share %d should dominate cpu %d and gt650m %d", wide[1], wide[0], wide[2])
	}
	narrow := DefaultMultiShares(cpu, testAccels(), 1000)
	if narrow[0] <= narrow[1] {
		t.Errorf("narrow rows: CPU share %d should exceed K20 %d (launch latency dominates)", narrow[0], narrow[1])
	}
}

func TestSolveHeteroMultiUsesAllDevices(t *testing.T) {
	p := testProblem(DepNW|DepN, 50, 3000)
	res, err := SolveHeteroMulti(p, Options{SkipCompute: true}, testAccels(), []int{500, 1500, 1000})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	// Named accelerator streams must each carry kernels.
	var sawK20, saw650 bool
	for _, r := range tl.Records {
		if strings.HasPrefix(r.Label, "k20:") {
			sawK20 = true
		}
		if strings.HasPrefix(r.Label, "gt650m:") {
			saw650 = true
		}
	}
	if !sawK20 || !saw650 {
		t.Errorf("missing accelerator kernels: k20=%v gt650m=%v", sawK20, saw650)
	}
	// Cell accounting: every cell computed exactly once.
	cells := 0
	for _, r := range tl.Records {
		if r.Kind == hetsim.OpCompute {
			cells += r.Cells
		}
	}
	if cells != 50*3000 {
		t.Errorf("computed %d cells, want %d", cells, 50*3000)
	}
	// Timeline names resolve.
	names := map[string]bool{}
	for _, r := range tl.Records {
		names[tl.NameOf(r.Resource)] = true
	}
	if !names["k20"] || !names["gt650m"] {
		t.Errorf("stream names not registered: %v", names)
	}
}

func TestSolveHeteroMultiAccelToAccelStaging(t *testing.T) {
	// With NW deps, the boundary between accelerator 1 and accelerator 2
	// must stage through the host: a d2h followed by an h2d per row.
	p := testProblem(DepNW|DepN, 20, 3000)
	res, err := SolveHeteroMulti(p, Options{SkipCompute: true}, testAccels(), []int{500, 1500, 1000})
	if err != nil {
		t.Fatal(err)
	}
	var staged int
	for _, r := range res.Timeline.Records {
		if strings.HasPrefix(r.Label, "xfer:right:d1:d2h") {
			staged++
		}
	}
	if staged != 20 {
		t.Errorf("accel-to-accel staged transfers = %d, want 20 (one per row)", staged)
	}
}

func TestDefaultMultiSharesDropsWeakDeviceOnNarrowRows(t *testing.T) {
	// Water-filling: at row widths where the strong devices finish before
	// the GT650M's kernel launch would even complete, the weak accelerator
	// gets nothing rather than becoming the bottleneck.
	cpu := hetsim.HeteroHigh().CPU
	shares := DefaultMultiShares(cpu, testAccels(), 3000)
	if shares[2] != 0 {
		t.Errorf("GT650M share = %d on 3000-wide rows, want 0 (launch-bound)", shares[2])
	}
	// On very wide rows it participates.
	wide := DefaultMultiShares(cpu, testAccels(), 500_000)
	if wide[2] == 0 {
		t.Error("GT650M share = 0 on 500k-wide rows, want > 0")
	}
}

func TestSolveHeteroMultiSecondAcceleratorHelps(t *testing.T) {
	// On a wide two-way workload, adding the second accelerator must not
	// slow things down, and should help once rows are wide enough.
	p := testProblem(DepNW|DepN|DepNE, 400, 20000)
	one, err := SolveHeteroMulti(p, Options{SkipCompute: true}, testAccels()[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	two, err := SolveHeteroMulti(p, Options{SkipCompute: true}, testAccels(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if two.Timeline.Makespan() > one.Timeline.Makespan() {
		t.Errorf("second accelerator slowed the solve: %v -> %v",
			one.Timeline.Makespan(), two.Timeline.Makespan())
	}
}

func TestSolveHeteroMultiExplicitShares(t *testing.T) {
	p := testProblem(DepN, 10, 30)
	want, _ := Solve(p)
	res, err := SolveHeteroMulti(p, Options{}, testAccels(), []int{10, 15, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, res.Grid) {
		t.Error("explicit-share solve differs")
	}
	// A zero share for a device is allowed.
	res2, err := SolveHeteroMulti(p, Options{}, testAccels(), []int{0, 30, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, res2.Grid) {
		t.Error("zero-share solve differs")
	}
}

func TestMultiResultDuration(t *testing.T) {
	p := testProblem(DepN, 5, 10)
	res, err := SolveHeteroMulti(p, Options{SkipCompute: true}, testAccels(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration() != res.Timeline.Makespan() {
		t.Error("Duration should equal the timeline makespan")
	}
	if p.Pattern() != Horizontal {
		t.Error("Pattern accessor wrong")
	}
}
