package core

import (
	"time"
)

// TunePoint is one sample of a parameter sweep.
type TunePoint struct {
	Value int
	Time  time.Duration
}

// TuneResult holds the outcome of the empirical parameter search of paper
// §V-A, including both sweep curves (Figure 7 plots the first one).
type TuneResult struct {
	TSwitch, TShare int
	// Time is the simulated duration at the chosen parameters.
	Time time.Duration
	// SwitchCurve is the t_switch sweep at t_share = 0.
	SwitchCurve []TunePoint
	// ShareCurve is the t_share sweep at the chosen t_switch.
	ShareCurve []TunePoint
}

// Tune finds good t_switch and t_share values exactly the way the paper
// does (§V-A): first fix t_share = 0 and sweep t_switch — the running time
// traces a concave-up curve whose minimum is the chosen t_switch (Figure
// 7) — then fix that t_switch and sweep t_share the same way. Sweeps run
// with Options.SkipCompute, so only the timing model is evaluated; the
// sweep is a coarse grid followed by a local refinement around the best
// coarse point.
func Tune[T any](p *Problem[T], opts Options) (*TuneResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cp, canonical, _, _ := canonicalize(p)
	executed := canonical
	if canonical == InvertedL && !opts.PreferInvertedL {
		executed = Horizontal
	}
	w := NewWavefronts(executed, cp.Rows, cp.Cols)

	probe := opts
	probe.SkipCompute = true

	eval := func(tSwitch, tShare int) (time.Duration, error) {
		o := probe
		o.TSwitch = tSwitch
		o.TShare = tShare
		r, err := SolveHetero(p, o)
		if err != nil {
			return 0, err
		}
		return r.Time, nil
	}

	res := &TuneResult{}

	// t_switch sweep at t_share = 0. Horizontal patterns have no low-work
	// region; their curve is the single point 0.
	maxSwitch := w.Fronts / 2
	if executed == Horizontal {
		maxSwitch = 0
	}
	best, curve, err := sweep(maxSwitch, func(v int) (time.Duration, error) {
		return eval(v, 0)
	})
	if err != nil {
		return nil, err
	}
	res.TSwitch = best
	res.SwitchCurve = curve

	// t_share sweep at the chosen t_switch.
	maxShare := w.MaxWidth()
	bestShare, shareCurve, err := sweep(maxShare, func(v int) (time.Duration, error) {
		return eval(res.TSwitch, v)
	})
	if err != nil {
		return nil, err
	}
	res.TShare = bestShare
	res.ShareCurve = shareCurve

	res.Time, err = eval(res.TSwitch, res.TShare)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// sweep samples f on a coarse grid over [0, max], then refines linearly
// around the best coarse point. It returns the best value found and every
// sampled point in ascending parameter order.
func sweep(max int, f func(int) (time.Duration, error)) (int, []TunePoint, error) {
	if max <= 0 {
		t, err := f(0)
		if err != nil {
			return 0, nil, err
		}
		return 0, []TunePoint{{0, t}}, nil
	}
	const coarsePoints = 17
	step := max / (coarsePoints - 1)
	if step < 1 {
		step = 1
	}
	sampled := map[int]time.Duration{}
	sample := func(v int) (time.Duration, error) {
		if v < 0 {
			v = 0
		}
		if v > max {
			v = max
		}
		if t, ok := sampled[v]; ok {
			return t, nil
		}
		t, err := f(v)
		if err != nil {
			return 0, err
		}
		sampled[v] = t
		return t, nil
	}

	bestV, bestT := 0, time.Duration(1<<62)
	for v := 0; v <= max; v += step {
		t, err := sample(v)
		if err != nil {
			return 0, nil, err
		}
		if t < bestT {
			bestV, bestT = v, t
		}
	}
	// The coarse grid can step over max; sample the endpoint explicitly —
	// it is the degenerate all-on-CPU configuration for t_share sweeps and
	// must always be reachable.
	if t, err := sample(max); err != nil {
		return 0, nil, err
	} else if t < bestT {
		bestV, bestT = max, t
	}
	// Refine around the coarse optimum with ~8 finer samples per side.
	fine := step / 8
	if fine < 1 {
		fine = 1
	}
	for v := bestV - step + fine; v < bestV+step; v += fine {
		if v < 0 || v > max {
			continue
		}
		t, err := sample(v)
		if err != nil {
			return 0, nil, err
		}
		if t < bestT {
			bestV, bestT = v, t
		}
	}

	curve := make([]TunePoint, 0, len(sampled))
	for v, t := range sampled {
		curve = append(curve, TunePoint{v, t})
	}
	sortTunePoints(curve)
	return bestV, curve, nil
}

func sortTunePoints(ps []TunePoint) {
	// Insertion sort: curves are small and this avoids an import.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Value < ps[j-1].Value; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
