package core

import (
	"testing"

	"repro/internal/table"
)

func TestTransposedProblemSolvesEquivalently(t *testing.T) {
	p := testProblem(DepW|DepNW, 7, 11) // Vertical pattern
	want, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	tp, undo := Transposed(p)
	if tp.Rows != 11 || tp.Cols != 7 {
		t.Fatalf("transposed dims = %dx%d", tp.Rows, tp.Cols)
	}
	if tp.Deps != (DepN | DepNW) {
		t.Fatalf("transposed deps = %s, want {NW,N}", tp.Deps)
	}
	got, err := Solve(tp)
	if err != nil {
		t.Fatal(err)
	}
	back := undo(got)
	if !table.EqualComparable(want, back) {
		t.Error("transposed solve round trip differs")
	}
}

func TestMirroredProblemSolvesEquivalently(t *testing.T) {
	p := testProblem(DepNE, 6, 9) // mInverted-L pattern
	want, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	mp, undo := MirroredColumns(p)
	if mp.Deps != DepNW {
		t.Fatalf("mirrored deps = %s, want {NW}", mp.Deps)
	}
	got, err := Solve(mp)
	if err != nil {
		t.Fatal(err)
	}
	back := undo(got)
	if !table.EqualComparable(want, back) {
		t.Error("mirrored solve round trip differs")
	}
}

func TestMirrorBoundaryMapping(t *testing.T) {
	// A boundary function asymmetric in j must be observed through the
	// mirror correctly: reading past the right edge of the mirrored problem
	// is reading past the left edge of the original.
	p := &Problem[int64]{
		Rows: 3, Cols: 4, Deps: DepNE,
		F:        func(i, j int, nb Neighbors[int64]) int64 { return nb.NE + 1 },
		Boundary: func(i, j int) int64 { return int64(100*i + j) },
	}
	want, _ := Solve(p)
	mp, undo := MirroredColumns(p)
	got, _ := Solve(mp)
	if !table.EqualComparable(want, undo(got)) {
		t.Error("mirrored boundary mapping wrong")
	}
}

func TestTransposeBoundaryMapping(t *testing.T) {
	p := &Problem[int64]{
		Rows: 3, Cols: 5, Deps: DepW,
		F:        func(i, j int, nb Neighbors[int64]) int64 { return 2*nb.W + int64(j) },
		Boundary: func(i, j int) int64 { return int64(10*i - j) },
	}
	want, _ := Solve(p)
	tp, undo := Transposed(p)
	got, _ := Solve(tp)
	if !table.EqualComparable(want, undo(got)) {
		t.Error("transposed boundary mapping wrong")
	}
}

func TestCanonicalizeIdentityForCanonicalPatterns(t *testing.T) {
	for _, m := range []DepMask{DepW | DepN, DepN, DepNW, DepW | DepNE} {
		p := testProblem(m, 5, 5)
		cp, _, reduction, undo := canonicalize(p)
		if reduction != ReduceNone {
			t.Errorf("%s: unexpected reduction %s", m, reduction)
		}
		if cp != p {
			t.Errorf("%s: canonicalize should return the problem unchanged", m)
		}
		g := table.NewGrid[int64](5, 5, nil)
		if undo(g) != g {
			t.Errorf("%s: identity undo should return the same grid", m)
		}
	}
}
