package core

import (
	"testing"
	"testing/quick"
)

var canonicalPatterns = []Pattern{AntiDiagonal, Horizontal, InvertedL, KnightMove}

func TestWavefrontsFrontCounts(t *testing.T) {
	cases := []struct {
		p          Pattern
		rows, cols int
		want       int
	}{
		{AntiDiagonal, 4, 6, 9}, // rows+cols-1
		{Horizontal, 4, 6, 4},   // rows
		{InvertedL, 4, 6, 4},    // min
		{InvertedL, 9, 3, 3},    // min
		{KnightMove, 4, 6, 12},  // 2(rows-1)+cols
		{AntiDiagonal, 1, 1, 1},
		{KnightMove, 1, 1, 1},
	}
	for _, c := range cases {
		w := NewWavefronts(c.p, c.rows, c.cols)
		if w.Fronts != c.want {
			t.Errorf("%s %dx%d fronts = %d, want %d", c.p, c.rows, c.cols, w.Fronts, c.want)
		}
	}
}

func TestWavefrontsPanicOnNonCanonical(t *testing.T) {
	for _, p := range []Pattern{Vertical, MInvertedL} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWavefronts(%s) should panic", p)
				}
			}()
			NewWavefronts(p, 3, 3)
		}()
	}
}

// Fronts must partition the table: every cell appears on exactly one front
// at the index Cell reports, and FrontOf agrees.
func TestWavefrontsPartition(t *testing.T) {
	for _, p := range canonicalPatterns {
		for _, dims := range [][2]int{{1, 1}, {1, 6}, {6, 1}, {5, 5}, {4, 9}, {9, 4}} {
			rows, cols := dims[0], dims[1]
			w := NewWavefronts(p, rows, cols)
			seen := make(map[[2]int]bool, rows*cols)
			total := 0
			for ft := 0; ft < w.Fronts; ft++ {
				size := w.Size(ft)
				for k := 0; k < size; k++ {
					i, j := w.Cell(ft, k)
					if i < 0 || i >= rows || j < 0 || j >= cols {
						t.Fatalf("%s %dx%d: Cell(%d,%d) = (%d,%d) out of range", p, rows, cols, ft, k, i, j)
					}
					if seen[[2]int{i, j}] {
						t.Fatalf("%s %dx%d: cell (%d,%d) appears twice", p, rows, cols, i, j)
					}
					seen[[2]int{i, j}] = true
					if got := w.FrontOf(i, j); got != ft {
						t.Fatalf("%s: FrontOf(%d,%d) = %d, want %d", p, i, j, got, ft)
					}
					total++
				}
			}
			if total != rows*cols {
				t.Errorf("%s %dx%d: fronts cover %d cells, want %d", p, rows, cols, total, rows*cols)
			}
		}
	}
}

// The defining safety property: every contributing neighbour of a front-t
// cell lies on an earlier front. Checked for every canonical pattern
// against every legal mask of that pattern.
func TestWavefrontsRespectDependencies(t *testing.T) {
	// Masks are mapped through their symmetry reduction first, exactly as
	// the framework does before executing: the raw Vertical mask {W} never
	// runs on Horizontal wavefronts, its transpose {N} does.
	patternMasks := map[Pattern][]DepMask{}
	for _, m := range AllDepMasks() {
		canon, reduction := CanonicalPattern(Classify(m))
		exec := m
		switch reduction {
		case ReduceTranspose:
			exec = m.Transpose()
		case ReduceMirror:
			exec = m.MirrorColumns()
		}
		patternMasks[canon] = append(patternMasks[canon], exec)
	}
	// Horizontal must also be safe for inverted-L masks, since the
	// framework executes {NW} through horizontal case-1 (§V-B).
	patternMasks[Horizontal] = append(patternMasks[Horizontal], DepNW)

	offsets := map[DepMask][2]int{
		DepW:  {0, -1},
		DepNW: {-1, -1},
		DepN:  {-1, 0},
		DepNE: {-1, 1},
	}
	for _, p := range canonicalPatterns {
		masks := patternMasks[p]
		if len(masks) == 0 {
			t.Fatalf("no masks recorded for %s", p)
		}
		w := NewWavefronts(p, 7, 8)
		for _, m := range masks {
			// Skip masks whose canonical form doesn't match p, except the
			// deliberate horizontal/inverted-L overlap above.
			for ft := 0; ft < w.Fronts; ft++ {
				for k := 0; k < w.Size(ft); k++ {
					i, j := w.Cell(ft, k)
					for bit, off := range offsets {
						if !m.Has(bit) {
							continue
						}
						ni, nj := i+off[0], j+off[1]
						if ni < 0 || ni >= 7 || nj < 0 || nj >= 8 {
							continue
						}
						if nf := w.FrontOf(ni, nj); nf >= ft {
							t.Fatalf("%s with %s: cell (%d,%d) front %d depends on (%d,%d) front %d",
								p, m, i, j, ft, ni, nj, nf)
						}
					}
				}
			}
		}
	}
}

// Property: partition holds for random dimensions.
func TestWavefrontsPartitionProperty(t *testing.T) {
	f := func(pr, r, c uint8) bool {
		p := canonicalPatterns[int(pr)%len(canonicalPatterns)]
		rows := int(r%12) + 1
		cols := int(c%12) + 1
		w := NewWavefronts(p, rows, cols)
		total := 0
		for ft := 0; ft < w.Fronts; ft++ {
			total += w.Size(ft)
		}
		return total == rows*cols && w.TotalCells() == rows*cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWavefrontsMaxWidth(t *testing.T) {
	cases := []struct {
		p          Pattern
		rows, cols int
		want       int
	}{
		{AntiDiagonal, 5, 5, 5},
		{AntiDiagonal, 3, 7, 3},
		{Horizontal, 5, 9, 9},
		{InvertedL, 5, 5, 9},  // first L: 5 + 4
		{KnightMove, 6, 4, 2}, // fronts hold at most ceil(min(rows, cols/2+1)) cells
	}
	for _, c := range cases {
		w := NewWavefronts(c.p, c.rows, c.cols)
		if got := w.MaxWidth(); got != c.want {
			t.Errorf("%s %dx%d MaxWidth = %d, want %d", c.p, c.rows, c.cols, got, c.want)
		}
	}
}

func TestWavefrontsSizeOutOfRange(t *testing.T) {
	w := NewWavefronts(AntiDiagonal, 3, 3)
	if w.Size(-1) != 0 || w.Size(99) != 0 {
		t.Error("out-of-range fronts should have size 0")
	}
}

func TestPreferredLayouts(t *testing.T) {
	want := map[Pattern]string{
		AntiDiagonal: "antidiag-major",
		Horizontal:   "row-major",
		InvertedL:    "l-major",
		KnightMove:   "knight-major",
	}
	for p, name := range want {
		w := NewWavefronts(p, 4, 5)
		if got := w.PreferredLayout().Name(); got != name {
			t.Errorf("%s preferred layout = %q, want %q", p, got, name)
		}
	}
}

// The parallelism profiles of §III: anti-diagonal and knight-move grow then
// shrink; horizontal is constant; inverted-L strictly shrinks.
func TestParallelismProfiles(t *testing.T) {
	wA := NewWavefronts(AntiDiagonal, 16, 16)
	peak := false
	for ft := 1; ft < wA.Fronts; ft++ {
		d := wA.Size(ft) - wA.Size(ft-1)
		if d < 0 {
			peak = true
		}
		if peak && d > 0 {
			t.Fatal("anti-diagonal profile is not unimodal")
		}
	}

	wH := NewWavefronts(Horizontal, 16, 16)
	for ft := 0; ft < wH.Fronts; ft++ {
		if wH.Size(ft) != 16 {
			t.Fatal("horizontal profile is not constant")
		}
	}

	wL := NewWavefronts(InvertedL, 16, 16)
	for ft := 1; ft < wL.Fronts; ft++ {
		if wL.Size(ft) >= wL.Size(ft-1) {
			t.Fatal("inverted-L profile is not strictly shrinking")
		}
	}

	wK := NewWavefronts(KnightMove, 16, 16)
	peak = false
	for ft := 1; ft < wK.Fronts; ft++ {
		d := wK.Size(ft) - wK.Size(ft-1)
		if d < 0 {
			peak = true
		}
		if peak && d > 0 {
			t.Fatal("knight-move profile is not unimodal")
		}
	}
}
