package core

import (
	"context"
	"testing"

	"repro/internal/table"
	"repro/internal/trace"
)

// traceKinds aggregates an event stream by kind.
func traceKinds(evs []trace.Event) map[trace.Kind]int {
	m := map[trace.Kind]int{}
	for _, e := range evs {
		m[e.Kind]++
	}
	return m
}

// TestPoolTraceCoversAllCells checks the pool's chunk/inline spans
// account for every cell exactly once, and that the traced solve still
// computes the right table.
func TestPoolTraceCoversAllCells(t *testing.T) {
	p := testProblem(DepW|DepN, 64, 57)
	want, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(1 << 12)
	got, err := SolveParallelContext(context.Background(), p,
		Options{NativeWorkers: 4, NativeChunk: 16, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, got) {
		t.Fatal("traced solve computed a different table")
	}

	evs := rec.Events()
	if rec.Dropped() != 0 {
		t.Fatalf("trace dropped %d events; grow the test ring", rec.Dropped())
	}
	var cells int64
	perFront := map[int32]int64{}
	for _, e := range evs {
		if e.Kind == trace.KindChunk || e.Kind == trace.KindInline {
			cells += e.B - e.A
			perFront[e.Front] += e.B - e.A
		}
	}
	w := NewWavefronts(AntiDiagonal, 64, 57)
	var wantCells int64
	for ft := 0; ft < w.Fronts; ft++ {
		if got := perFront[int32(ft)]; got != int64(w.Size(ft)) {
			t.Errorf("front %d traced %d cells, want %d", ft, got, w.Size(ft))
		}
		wantCells += int64(w.Size(ft))
	}
	if cells != wantCells {
		t.Errorf("traced %d cells total, want %d", cells, wantCells)
	}

	kinds := traceKinds(evs)
	if kinds[trace.KindSolve] != 1 {
		t.Errorf("KindSolve count = %d, want 1", kinds[trace.KindSolve])
	}
	if kinds[trace.KindFront] == 0 || kinds[trace.KindBarrier] == 0 {
		t.Errorf("pool trace kinds = %v, want front and barrier events", kinds)
	}
	meta := rec.Meta()
	if meta.Solver != "pool" || meta.Workers != 4 || meta.Clock != "wall" {
		t.Errorf("meta = %+v", meta)
	}
}

// TestBandsTraceEmitsRowsAndHandoffs checks the lookahead executor's
// trace carries row spans for every (row, band) and handoff waits.
func TestBandsTraceEmitsRowsAndHandoffs(t *testing.T) {
	p := testProblem(DepNW|DepN|DepNE, 48, 96)
	rec := trace.NewRecorder(1 << 12)
	if _, err := SolveParallelContext(context.Background(), p,
		Options{NativeWorkers: 3, Tracer: rec}); err != nil {
		t.Fatal(err)
	}
	kinds := traceKinds(rec.Events())
	if got, want := kinds[trace.KindRow], 48*3; got != want {
		t.Errorf("KindRow count = %d, want %d (rows x bands)", got, want)
	}
	if kinds[trace.KindHandoff] == 0 {
		t.Errorf("bands trace kinds = %v, want handoff waits", kinds)
	}
	if meta := rec.Meta(); meta.Solver != "bands" {
		t.Errorf("meta.Solver = %q, want bands", meta.Solver)
	}
}

// TestTiledTraceSolves checks the tiled executor wires the tracer.
func TestTiledTraceSolves(t *testing.T) {
	p := testProblem(DepW|DepNW|DepN, 64, 64)
	rec := trace.NewRecorder(1 << 12)
	if _, err := SolveTiledContext(context.Background(), p, 16,
		Options{NativeWorkers: 2, Tracer: rec}); err != nil {
		t.Fatal(err)
	}
	kinds := traceKinds(rec.Events())
	if kinds[trace.KindChunk]+kinds[trace.KindInline] == 0 {
		t.Errorf("tiled trace kinds = %v, want chunk or inline block spans", kinds)
	}
	if meta := rec.Meta(); meta.Solver != "tiled" {
		t.Errorf("meta.Solver = %q, want tiled", meta.Solver)
	}
}

// TestSimTraceImportsTimeline checks a simulated solve imports its
// timeline onto the tracer with the simulated clock.
func TestSimTraceImportsTimeline(t *testing.T) {
	p := testProblem(DepW|DepNW|DepN, 64, 64)
	rec := trace.NewRecorder(1 << 12)
	if _, err := SolveHetero(p, Options{TSwitch: -1, TShare: -1, Tracer: rec}); err != nil {
		t.Fatal(err)
	}
	if meta := rec.Meta(); meta.Clock != "sim" || meta.Solver != "hetero" {
		t.Errorf("meta = %+v, want sim-clock hetero trace", rec.Meta())
	}
	kinds := traceKinds(rec.Events())
	if kinds[trace.KindPhase] == 0 {
		t.Errorf("sim trace kinds = %v, want imported phase spans", kinds)
	}
}
