package core

import (
	"context"
	"fmt"

	"repro/internal/table"
	"repro/internal/trace"
)

// SolveTiled fills the DP table with the cache-efficient tiled scheme of
// the CPU-only line of work the paper builds on (Chowdhury & Ramachandran's
// CMP algorithms): the table is partitioned into blocks, blocks are
// scheduled along *block-level* wavefronts, blocks on a front run on
// separate goroutines, and each block is filled sequentially in row-major
// order for locality.
//
// Block-level dependencies are coarser than cell-level ones: a cell's NW
// neighbour can live in the block to the *west* (same block row), so the
// block mask must be derived from the cell mask (deriveBlockMask), not
// copied. Masks containing NE are special: a non-top-row cell's NE
// neighbour can live in the block to the *east*, which no forward block
// order satisfies — those problems tile into 1-row-high strips instead,
// under which every dependency points to the current or previous row of
// blocks.
//
// This is the framework's multicore *baseline*: SolveParallel
// barrier-synchronizes every cell wavefront, while SolveTiled barriers once
// per block wavefront and touches memory block by block.
func SolveTiled[T any](p *Problem[T], tile, workers int) (*table.Grid[T], error) {
	return SolveTiledContext(context.Background(), p, tile, Options{NativeWorkers: workers})
}

// SolveTiledContext is SolveTiled honoring a context (polled by the block
// pool once per claim) and an Options carrying the worker count
// (Options.NativeWorkers) and an optional Collector. A canceled solve
// returns a nil grid and a *Canceled error.
func SolveTiledContext[T any](ctx context.Context, p *Problem[T], tile int, opts Options) (grid *table.Grid[T], err error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if tile < 1 {
		return nil, fmt.Errorf("core: tile size %d < 1", tile)
	}
	workers := opts.NativeWorkers
	if workers <= 0 {
		workers = defaultPoolWorkers()
	}
	cp, _, _, undo := canonicalize(p)

	g := table.NewGrid[T](cp.Rows, cp.Cols, nil)
	rd := gridReader[T]{g}

	tileRows, tileCols := tile, tile
	if cp.Deps.Has(DepNE) {
		tileRows = 1
	}
	blockRows := (cp.Rows + tileRows - 1) / tileRows
	blockCols := (cp.Cols + tileCols - 1) / tileCols

	blockMask := deriveBlockMask(cp.Deps, tileRows)
	blockPattern, _ := CanonicalPattern(Classify(blockMask))
	bw := NewWavefronts(blockPattern, blockRows, blockCols)

	if c := opts.Collector; c != nil {
		c.SolveStart(SolveInfo{
			Solver: "tiled", Problem: p.Name,
			Pattern: Classify(p.Deps).String(), Executed: blockPattern.String(),
			Rows: cp.Rows, Cols: cp.Cols, Fronts: bw.Fronts, Workers: workers,
		})
		for t := 0; t < bw.Fronts; t++ {
			c.FrontSize(bw.Size(t))
		}
		defer func() { c.SolveEnd(err) }()
	}
	if tr := opts.Tracer; tr != nil {
		tr.BeginSolve(trace.Meta{
			Solver: "tiled", Problem: p.Name,
			Pattern: Classify(p.Deps).String(), Executed: blockPattern.String(),
			Rows: cp.Rows, Cols: cp.Cols, Fronts: bw.Fronts, Workers: workers,
		})
		defer tr.EndSolve()
	}

	fillBlock := func(bi, bj int) {
		iLo, iHi := bi*tileRows, min((bi+1)*tileRows, cp.Rows)
		jLo, jHi := bj*tileCols, min((bj+1)*tileCols, cp.Cols)
		for i := iLo; i < iHi; i++ {
			for j := jLo; j < jHi; j++ {
				g.Set(i, j, cp.F(i, j, gatherNeighbors(cp, rd, i, j)))
			}
		}
	}

	// Blocks are coarse units, so the pool claims one block per cursor bump
	// (chunk=1); the chunk doubling as serial cutoff means single-block
	// fronts run inline on the advancing worker.
	cfg := poolConfig{
		solver: "tiled", phase: "blocks", workers: workers, chunk: 1,
		coll: opts.Collector, rec: opts.Tracer,
	}
	err = runWavefronts(ctx, cfg, bw.Fronts, bw.Size, func(t, lo, hi int) {
		for k := lo; k < hi; k++ {
			bi, bj := bw.Cell(t, k)
			fillBlock(bi, bj)
		}
	})
	if err != nil {
		return nil, err
	}
	return undo(g), nil
}

// deriveBlockMask lifts a cell-level contributing set to block
// granularity: for each cell dependency offset, the union of block offsets
// it can land in, excluding the block itself. tileRows == 1 guarantees the
// NE offset never lands in the same block row's east block (the caller
// enforces this for NE-containing masks).
//
//	cell W  (0,-1)  -> block W
//	cell NW (-1,-1) -> blocks W, NW, N   (W only when tileRows > 1)
//	cell N  (-1,0)  -> block N
//	cell NE (-1,1)  -> blocks N, NE      (requires tileRows == 1)
func deriveBlockMask(m DepMask, tileRows int) DepMask {
	var out DepMask
	if m.Has(DepW) {
		out |= DepW
	}
	if m.Has(DepNW) {
		out |= DepNW | DepN
		if tileRows > 1 {
			out |= DepW
		}
	}
	if m.Has(DepN) {
		out |= DepN
	}
	if m.Has(DepNE) {
		if tileRows > 1 {
			panic("core: NE-containing masks require 1-row tiles")
		}
		out |= DepN | DepNE
	}
	return out
}

// DefaultTile returns the largest tile size whose block (tile x tile cells
// at bytesPerCell each) still fits a typical per-core L2 slice of 256 KiB.
func DefaultTile(bytesPerCell int) int {
	if bytesPerCell <= 0 {
		bytesPerCell = 8
	}
	const budget = 256 << 10
	t := 1
	for (t+1)*(t+1)*bytesPerCell <= budget {
		t++
	}
	return t
}
