package core

import (
	"context"
	"fmt"
)

// SolveLastRow computes only the final row of the DP table using a
// two-row rolling buffer: O(cols) memory instead of O(rows*cols). Every
// contributing set drawn from {W, NW, N, NE} reads at most the previous
// and current rows, so the rolling fill is exact for the whole class.
//
// This serves problems whose answer lives in the last row (edit distances,
// alignment scores, checkerboard minima) when the table would not fit in
// memory; it cannot support traceback — use Solve (full table) or
// problem-specific linear-space reconstructions like HirschbergLCS for
// that.
func SolveLastRow[T any](p *Problem[T]) ([]T, error) {
	return SolveLastRowContext(context.Background(), p)
}

// SolveLastRowContext is SolveLastRow honoring a context, polled once per
// row. A canceled solve returns a nil slice and a *Canceled error.
func SolveLastRowContext[T any](ctx context.Context, p *Problem[T]) ([]T, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	done := ctxDone(ctx)
	prev := make([]T, p.Cols)
	cur := make([]T, p.Cols)
	rd := rollingReader[T]{p: p, prev: prev, cur: cur}
	for i := 0; i < p.Rows; i++ {
		if isDone(done) {
			return nil, canceledErr(ctx, "lastrow", i)
		}
		rd.row = i
		for j := 0; j < p.Cols; j++ {
			cur[j] = p.F(i, j, gatherNeighbors(p, rd, i, j))
		}
		prev, cur = cur, prev
		rd.prev, rd.cur = prev, cur
	}
	return prev, nil
}

// rollingReader resolves neighbour reads against the two-row window. The
// solver only ever asks for cells on rows row and row-1 with column offsets
// -1..+1; anything else is a misuse of the window and panics loudly rather
// than returning stale data.
type rollingReader[T any] struct {
	p         *Problem[T]
	prev, cur []T
	row       int
}

func (r rollingReader[T]) at(i, j int) T {
	switch i {
	case r.row:
		return r.cur[j]
	case r.row - 1:
		return r.prev[j]
	default:
		panic(fmt.Sprintf("core: rolling reader asked for row %d while filling row %d", i, r.row))
	}
}

func (r rollingReader[T]) inBounds(i, j int) bool {
	return i >= 0 && i < r.p.Rows && j >= 0 && j < r.p.Cols
}
