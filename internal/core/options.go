package core

import (
	"fmt"

	"repro/internal/hetsim"
	"repro/internal/table"
	"repro/internal/trace"
)

// Options configures the heterogeneous solver and the simulated baselines.
// The zero value selects the Hetero-High platform, auto-tuned parameters,
// the pattern's coalescing-friendly layout, and all of the paper's
// optimizations enabled.
type Options struct {
	// Platform is the simulated CPU+GPU node. Nil selects Hetero-High.
	Platform *hetsim.Platform

	// TSwitch is the number of low-work iterations handled entirely by the
	// CPU at the start and end of grow-shrink patterns (paper §III, §V-A).
	// Negative selects the model-derived default (DefaultTSwitch).
	TSwitch int

	// TShare is the number of cells per iteration assigned to the CPU in
	// the high-work region (paper §III, §V-A). Negative selects the
	// model-derived default (DefaultTShare). Zero disables CPU sharing.
	TShare int

	// Layout overrides the DP-table memory layout. Nil selects the executed
	// pattern's coalescing-friendly layout (paper §IV-B); choosing a
	// mismatched layout makes GPU kernels uncoalesced and CPU fronts
	// strided, which is the coalescing ablation.
	Layout table.Layout

	// PreferInvertedL forces contributing sets that classify as Inverted-L
	// to run the genuine inverted-L strategy. By default the framework
	// solves them with horizontal case-1, which §V-B shows is faster
	// ("uniformity ... and coalescing-friendly layout makes the horizontal
	// pattern a better choice").
	PreferInvertedL bool

	// DisablePipeline places boundary transfers on the GPU's own queue
	// instead of the DMA engines, modeling synchronous default-stream
	// copies: the copy/compute overlap of paper §IV-C case 1 is lost.
	DisablePipeline bool

	// UsePageable routes per-iteration boundary transfers through pageable
	// instead of pinned memory, the ablation for paper §IV-C case 2.
	UsePageable bool

	// CPUThreadPerCell spawns one task per cell on the CPU instead of
	// chunking, the rejected strategy of paper §IV-A.
	CPUThreadPerCell bool

	// SkipCompute runs only the timing model without evaluating the
	// recurrence; Result.Grid is nil. The autotuner uses this to sweep
	// parameters quickly.
	SkipCompute bool

	// NativeWorkers is the worker count of the native pool runtime
	// (SolveParallel / SolveParallelOpt). Zero or negative selects the
	// default min(runtime.GOMAXPROCS(0), runtime.NumCPU()): the pool is
	// compute-bound, so workers beyond the physical cores only lengthen
	// the per-front barrier.
	NativeWorkers int

	// NativeChunk is the number of cells a pool worker claims per atomic
	// cursor bump; it doubles as the serial cutoff below which a front runs
	// inline on the advancing worker. Zero or negative selects the default
	// (512). Smaller chunks balance ragged fronts better; larger chunks
	// amortize the cursor traffic.
	NativeChunk int

	// NativeNoLookahead disables the row-band lookahead mode for
	// Horizontal-pattern problems, forcing the global epoch barrier between
	// rows. The ablation knob for the barrier-vs-handoff comparison.
	NativeNoLookahead bool

	// Collector receives runtime observability events (phase wall times,
	// front-size histogram, pool worker utilization and chunk claims,
	// simulated transfer volumes). Nil — the default — disables all
	// instrumentation at zero overhead.
	Collector Collector

	// Tracer records per-event runtime traces (front begin/end, chunk
	// claims, barrier waits, band handoffs, simulated transfers) into
	// per-worker ring buffers for Perfetto export and stall analysis.
	// Nil — the default — disables tracing; the hot paths guard every
	// emission behind one nil test, like Collector.
	Tracer *trace.Recorder
}

// Native-runtime knob ceilings enforced by Validate. Values past these are
// configuration mistakes, not tuning choices: no host has 2^10 physical
// cores to keep busy, and a chunk past 2^26 cells stops being a chunk.
const (
	MaxNativeWorkers = 1 << 10
	MaxNativeChunk   = 1 << 26
)

// Validate checks the native runtime knobs. Zero and negative values are
// legal (they select the documented defaults, matching the rest of the
// Options convention); values beyond the Max ceilings return an error.
// The simulated-platform knobs (TSwitch, TShare) are clamped rather than
// validated — see the range note at the bottom of this file.
func (o Options) Validate() error {
	if o.NativeWorkers > MaxNativeWorkers {
		return fmt.Errorf("core: NativeWorkers %d exceeds limit %d", o.NativeWorkers, MaxNativeWorkers)
	}
	if o.NativeChunk > MaxNativeChunk {
		return fmt.Errorf("core: NativeChunk %d exceeds limit %d", o.NativeChunk, MaxNativeChunk)
	}
	return nil
}

// withDefaults resolves nil/auto fields against a problem's executed
// wavefront space.
func (o Options) withDefaults(w Wavefronts, transfer TransferKind) Options {
	if o.Platform == nil {
		o.Platform = hetsim.HeteroHigh()
	}
	if o.TSwitch < 0 {
		o.TSwitch = DefaultTSwitch(o.Platform, w)
	}
	if o.TShare < 0 {
		o.TShare = DefaultTShare(o.Platform, w, transfer)
	}
	if o.Layout == nil {
		o.Layout = w.PreferredLayout()
	}
	return o
}

// Note on ranges: TSwitch and TShare are clamped, not rejected — a TSwitch
// past half the fronts degenerates to the CPU handling everything, and a
// TShare past the front width simply assigns whole fronts to the CPU. The
// tuner relies on sweeping these freely.
