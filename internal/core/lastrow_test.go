package core

import (
	"testing"
	"testing/quick"
)

func TestSolveLastRowMatchesFullSolveAllMasks(t *testing.T) {
	for _, m := range AllDepMasks() {
		p := testProblem(m, 23, 17)
		full, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		row, err := SolveLastRow(p)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(row) != 17 {
			t.Fatalf("%s: row length %d", m, len(row))
		}
		for j := 0; j < 17; j++ {
			if row[j] != full.At(22, j) {
				t.Errorf("%s: last-row cell %d = %d, full table %d", m, j, row[j], full.At(22, j))
			}
		}
	}
}

func TestSolveLastRowSingleRow(t *testing.T) {
	p := testProblem(DepN|DepNW, 1, 9)
	full, _ := Solve(p)
	row, err := SolveLastRow(p)
	if err != nil {
		t.Fatal(err)
	}
	for j := range row {
		if row[j] != full.At(0, j) {
			t.Fatalf("cell %d differs", j)
		}
	}
}

func TestSolveLastRowValidates(t *testing.T) {
	if _, err := SolveLastRow(&Problem[int64]{Rows: 0, Cols: 3, Deps: DepN}); err == nil {
		t.Error("expected validation error")
	}
}

// Property: rolling and full solves agree on the last row for random
// masks and shapes.
func TestSolveLastRowProperty(t *testing.T) {
	masks := AllDepMasks()
	f := func(mi, r, c uint8) bool {
		m := masks[int(mi)%len(masks)]
		rows := int(r%30) + 1
		cols := int(c%30) + 1
		p := testProblem(m, rows, cols)
		full, err := Solve(p)
		if err != nil {
			return false
		}
		row, err := SolveLastRow(p)
		if err != nil {
			return false
		}
		for j := 0; j < cols; j++ {
			if row[j] != full.At(rows-1, j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
