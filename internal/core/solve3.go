package core

import (
	"context"
	"time"

	"repro/internal/hetsim"
	"repro/internal/table"
	"repro/internal/trace"
)

// Solve3 fills the 3-D table sequentially in lexicographic order, which is
// dependency-safe for every subset of the seven predecessor corners (no
// offset has a positive component).
func Solve3[T any](p *Problem3[T]) (*table.Grid3[T], error) {
	return Solve3Context(context.Background(), p)
}

// Solve3Context is Solve3 honoring a context, polled once per i-slab. A
// canceled solve returns a nil grid and a *Canceled error.
func Solve3Context[T any](ctx context.Context, p *Problem3[T]) (*table.Grid3[T], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	done := ctxDone(ctx)
	g := table.NewGrid3[T](p.NX, p.NY, p.NZ, nil)
	for i := 0; i < p.NX; i++ {
		if isDone(done) {
			return nil, canceledErr(ctx, "sequential3", i)
		}
		for j := 0; j < p.NY; j++ {
			for k := 0; k < p.NZ; k++ {
				g.Set(i, j, k, p.F(i, j, k, gather3(p, g, i, j, k)))
			}
		}
	}
	return g, nil
}

// forEachPlaneCell enumerates the cells of plane s (i+j+k = s) in
// (i, then j) order, calling fn for the cell range [lo, hi) of the plane.
func forEachPlaneCell[T any](p *Problem3[T], s, lo, hi int, fn func(i, j, k int)) {
	idx := 0
	for i := max(0, s-(p.NY-1)-(p.NZ-1)); i <= min(p.NX-1, s); i++ {
		firstJ, count := table.PlaneRowSpan(p.NY, p.NZ, s, i)
		if idx+count <= lo {
			idx += count
			continue
		}
		for jj := 0; jj < count; jj++ {
			if idx >= hi {
				return
			}
			if idx >= lo {
				j := firstJ + jj
				fn(i, j, s-i-j)
			}
			idx++
		}
	}
}

// SolveParallel3 fills the table with real goroutines over anti-diagonal
// planes: all cells of a plane are mutually independent for every
// contributing set (each predecessor lowers i+j+k by at least 1).
func SolveParallel3[T any](p *Problem3[T], workers int) (*table.Grid3[T], error) {
	return SolveParallel3Context(context.Background(), p, workers)
}

// SolveParallel3Context is SolveParallel3 honoring a context, polled by the
// pool once per chunk claim. A canceled solve returns a nil grid and a
// *Canceled error.
func SolveParallel3Context[T any](ctx context.Context, p *Problem3[T], workers int) (*table.Grid3[T], error) {
	return SolveParallel3Opt(ctx, p, Options{NativeWorkers: workers})
}

// SolveParallel3Opt is SolveParallel3Context with the full Options set:
// NativeWorkers/NativeChunk sizing plus the Collector and Tracer sinks
// wired through the pool runtime exactly as in the 2-D executors.
func SolveParallel3Opt[T any](ctx context.Context, p *Problem3[T], opts Options) (grid *table.Grid3[T], err error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	workers := opts.NativeWorkers
	if workers <= 0 {
		workers = defaultPoolWorkers()
	}
	planes := p.Planes()
	planeSize := func(s int) int { return table.PlaneSize(p.NX, p.NY, p.NZ, s) }
	if c := opts.Collector; c != nil {
		c.SolveStart(SolveInfo{
			Solver: "pool3", Problem: p.Name,
			Rows: p.NX, Cols: p.NY * p.NZ, Fronts: planes, Workers: workers,
		})
		for s := 0; s < planes; s++ {
			c.FrontSize(planeSize(s))
		}
		defer func() { c.SolveEnd(err) }()
	}
	if tr := opts.Tracer; tr != nil {
		tr.BeginSolve(trace.Meta{
			Solver: "pool3", Problem: p.Name,
			Rows: p.NX, Cols: p.NY * p.NZ, Fronts: planes, Workers: workers,
		})
		defer tr.EndSolve()
	}
	g := table.NewGrid3[T](p.NX, p.NY, p.NZ, nil)
	chunk := opts.NativeChunk
	if chunk <= 0 {
		chunk = defaultNativeChunk
	}
	// Planes grow and shrink like 2-D anti-diagonals; the pool runtime's
	// serial cutoff keeps the small end planes on the advancing worker.
	cfg := poolConfig{
		solver: "pool3", phase: "planes", workers: workers, chunk: chunk,
		coll: opts.Collector, rec: opts.Tracer,
	}
	err = runWavefronts(ctx, cfg, planes, planeSize, func(s, lo, hi int) {
		forEachPlaneCell(p, s, lo, hi, func(i, j, k int) {
			g.Set(i, j, k, p.F(i, j, k, gather3(p, g, i, j, k)))
		})
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Result3 is the outcome of a simulated 3-D solve.
type Result3[T any] struct {
	Grid     *table.Grid3[T]
	TSwitch  int
	TShare   int
	Timeline hetsim.Timeline
}

// Duration returns the simulated wall-clock time of the solve.
func (r *Result3[T]) Duration() time.Duration { return r.Timeline.Makespan() }

// SolveHetero3 runs the 3-D analogue of the anti-diagonal strategy: planes
// grow then shrink, so the first and last tSwitch planes stay on the CPU,
// and in between the CPU takes the cells of the top tShare i-layers of
// each plane while the GPU takes the rest. All dependencies point toward
// smaller coordinates, so — exactly as in 2-D — the CPU band never reads
// GPU cells and the boundary traffic is strictly one-way CPU->GPU.
// The simulated kernels assume the plane-major layout (coalesced fronts).
func SolveHetero3[T any](p *Problem3[T], opts Options) (*Result3[T], error) {
	return solveSim3(context.Background(), p, opts, modeHetero)
}

// SolveHetero3Context is SolveHetero3 honoring a context, polled once per
// plane. A canceled solve returns a nil result and a *Canceled error.
func SolveHetero3Context[T any](ctx context.Context, p *Problem3[T], opts Options) (*Result3[T], error) {
	return solveSim3(ctx, p, opts, modeHetero)
}

// SolveCPUOnly3 is the 3-D multicore baseline.
func SolveCPUOnly3[T any](p *Problem3[T], opts Options) (*Result3[T], error) {
	return solveSim3(context.Background(), p, opts, modeCPUOnly)
}

// SolveCPUOnly3Context is SolveCPUOnly3 honoring a context.
func SolveCPUOnly3Context[T any](ctx context.Context, p *Problem3[T], opts Options) (*Result3[T], error) {
	return solveSim3(ctx, p, opts, modeCPUOnly)
}

// SolveGPUOnly3 is the 3-D pure-accelerator baseline.
func SolveGPUOnly3[T any](p *Problem3[T], opts Options) (*Result3[T], error) {
	return solveSim3(context.Background(), p, opts, modeGPUOnly)
}

// SolveGPUOnly3Context is SolveGPUOnly3 honoring a context.
func SolveGPUOnly3Context[T any](ctx context.Context, p *Problem3[T], opts Options) (*Result3[T], error) {
	return solveSim3(ctx, p, opts, modeGPUOnly)
}

func solveSim3[T any](ctx context.Context, p *Problem3[T], opts Options, mode solveMode) (res *Result3[T], err error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.Platform == nil {
		opts.Platform = hetsim.HeteroHigh()
	}
	planes := p.Planes()
	planeSize := func(s int) int { return table.PlaneSize(p.NX, p.NY, p.NZ, s) }

	if opts.TSwitch < 0 {
		breakEven := breakEvenWidth(opts.Platform)
		opts.TSwitch = 0
		for s := 0; s < planes/2 && planeSize(s) < breakEven; s++ {
			opts.TSwitch++
		}
	}
	// bandCells returns how many leading cells of plane s lie in the top
	// `layers` i-layers (plane cells are ordered by i first). The i-band is
	// the dependency-closed CPU region: every predecessor offset keeps or
	// decreases i, so a band cell never reads a GPU cell.
	bandCells := func(s, layers int) int {
		n := 0
		for i := max(0, s-(p.NY-1)-(p.NZ-1)); i <= min(p.NX-1, min(s, layers-1)); i++ {
			_, c := table.PlaneRowSpan(p.NY, p.NZ, s, i)
			n += c
		}
		return n
	}
	if opts.TShare < 0 {
		// tShare counts top i-layers. Unlike the 2-D row band (at most one
		// cell per row per diagonal), an i-layer's share of a plane grows
		// with the plane width, so a fixed layer count must be feasible on
		// *every* phase-2 plane: pick the largest band whose CPU region
		// never outlasts the residual GPU kernel. Feasibility is monotone
		// in the band, so binary search applies.
		tSwitch := clampTSwitch(opts.TSwitch, planes)
		feasible := func(layers int) bool {
			for s := tSwitch; s < planes-tSwitch; s++ {
				size := planeSize(s)
				nCPU := min(bandCells(s, layers), size)
				if nCPU == 0 || nCPU == size {
					continue
				}
				cpuT := opts.Platform.CPU.RegionDuration(nCPU, true)
				gpuT := opts.Platform.GPU.KernelDuration(size-nCPU, true)
				if float64(cpuT) > 0.85*float64(gpuT) {
					return false
				}
			}
			return true
		}
		lo, hi := 0, p.NX
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if feasible(mid) {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		opts.TShare = lo
	}

	var g *table.Grid3[T]
	if !opts.SkipCompute {
		g = table.NewGrid3[T](p.NX, p.NY, p.NZ, nil)
	}
	sim := hetsim.NewSim(opts.Platform)
	bpc := p.bytesPerCell()

	done := ctxDone(ctx)
	solver := mode.String() + "-3d"
	coll := opts.Collector
	if coll != nil {
		coll.SolveStart(SolveInfo{
			Solver: solver, Problem: p.Name,
			Rows: p.NX, Cols: p.NY * p.NZ, Fronts: planes,
		})
		for s := 0; s < planes; s++ {
			coll.FrontSize(planeSize(s))
		}
		defer func() { coll.SolveEnd(err) }()
	}

	compute := func(s, lo, hi int) {
		if g == nil {
			return
		}
		forEachPlaneCell(p, s, lo, hi, func(i, j, k int) {
			g.Set(i, j, k, p.F(i, j, k, gather3(p, g, i, j, k)))
		})
	}
	cpuOp := func(s, lo, hi int, deps ...hetsim.OpID) hetsim.OpID {
		if hi <= lo {
			return hetsim.NoOp
		}
		compute(s, lo, hi)
		return sim.Submit(hetsim.Op{
			Resource: hetsim.ResCPU, Kind: hetsim.OpCompute,
			Duration: opts.Platform.CPU.RegionDuration(hi-lo, true),
			Label:    "cpu:plane", Cells: hi - lo,
		}, deps...)
	}
	gpuOp := func(s, lo, hi int, deps ...hetsim.OpID) hetsim.OpID {
		if hi <= lo {
			return hetsim.NoOp
		}
		compute(s, lo, hi)
		return sim.Submit(hetsim.Op{
			Resource: hetsim.ResGPU, Kind: hetsim.OpCompute,
			Duration: opts.Platform.GPU.KernelDuration(hi-lo, true),
			Label:    "gpu:plane", Cells: hi - lo,
		}, deps...)
	}

	cpuCells := func(s int) int { return bandCells(s, opts.TShare) }

	switch mode {
	case modeCPUOnly:
		last := hetsim.NoOp
		for s := 0; s < planes; s++ {
			if isDone(done) {
				return nil, canceledErr(ctx, solver, s)
			}
			last = cpuOp(s, 0, planeSize(s), last)
		}
	case modeGPUOnly:
		upload := hetsim.NoOp
		if p.InputBytes > 0 {
			if coll != nil {
				coll.Transfer(TransferStats{ToDevice: true, Bytes: p.InputBytes})
			}
			upload = sim.Submit(hetsim.Op{
				Resource: hetsim.ResCopyH2D, Kind: hetsim.OpTransfer,
				Duration: opts.Platform.Bus.TransferDuration(p.InputBytes, false),
				Label:    "h2d:input", Bytes: p.InputBytes,
			})
		}
		last := hetsim.NoOp
		for s := 0; s < planes; s++ {
			if isDone(done) {
				return nil, canceledErr(ctx, solver, s)
			}
			last = gpuOp(s, 0, planeSize(s), last, upload)
		}
	default:
		tSwitch := clampTSwitch(opts.TSwitch, planes)
		p2Start, p3Start := tSwitch, planes-tSwitch
		lastCPU, lastGPU := hetsim.NoOp, hetsim.NoOp
		prevBoundary := hetsim.NoOp
		syncUp, syncDown := hetsim.NoOp, hetsim.NoOp
		for s := 0; s < planes; s++ {
			if isDone(done) {
				return nil, canceledErr(ctx, solver, s)
			}
			size := planeSize(s)
			switch {
			case s < p2Start || s >= p3Start:
				if s == p3Start && lastGPU != hetsim.NoOp {
					// Phase 2 -> 3: pull the GPU parts of the last two
					// planes down for the CPU tail.
					bytes := (planeSize(s-1) + planeSize(max(0, s-2))) * bpc
					if coll != nil {
						coll.Transfer(TransferStats{Bytes: bytes})
					}
					syncDown = sim.Submit(hetsim.Op{
						Resource: hetsim.ResCopyD2H, Kind: hetsim.OpTransfer,
						Duration: opts.Platform.Bus.TransferDuration(bytes, false),
						Label:    "d2h:phase2-sync", Bytes: bytes,
					}, lastGPU)
				}
				lastCPU = cpuOp(s, 0, size, lastCPU, syncDown)
			default:
				if s == p2Start && s > 0 {
					bytes := (planeSize(s-1) + planeSize(max(0, s-2))) * bpc
					if coll != nil {
						coll.Transfer(TransferStats{ToDevice: true, Bytes: bytes})
					}
					syncUp = sim.Submit(hetsim.Op{
						Resource: hetsim.ResCopyH2D, Kind: hetsim.OpTransfer,
						Duration: opts.Platform.Bus.TransferDuration(bytes, false),
						Label:    "h2d:phase1-sync", Bytes: bytes,
					}, lastCPU)
				}
				nCPU := min(cpuCells(s), size)
				if nCPU > 0 {
					lastCPU = cpuOp(s, 0, nCPU, lastCPU)
				}
				if nCPU < size {
					lastGPU = gpuOp(s, nCPU, size, lastGPU, syncUp, prevBoundary)
				}
				if nCPU > 0 && nCPU < size {
					if coll != nil {
						coll.Transfer(TransferStats{Boundary: true, ToDevice: true, Bytes: bpc, Cells: 1})
					}
					prevBoundary = sim.Submit(hetsim.Op{
						Resource: hetsim.ResCopyH2D, Kind: hetsim.OpTransfer,
						Duration: opts.Platform.Bus.TransferDuration(bpc, true),
						Label:    "h2d:boundary", Bytes: bpc, Cells: 1,
					}, lastCPU)
				}
			}
		}
	}

	res = &Result3[T]{
		Grid:     g,
		TSwitch:  opts.TSwitch,
		TShare:   opts.TShare,
		Timeline: sim.Timeline(),
	}
	if coll != nil {
		emitTimelinePhases(coll, res.Timeline)
	}
	if tr := opts.Tracer; tr != nil {
		// No EndSolve: imported events live on the simulated clock, and a
		// wall-clock solve span would pollute the analysis.
		tr.BeginSolve(trace.Meta{
			Solver: solver, Problem: p.Name,
			Rows: p.NX, Cols: p.NY * p.NZ, Fronts: planes, Clock: "sim",
		})
		tr.ImportTimeline(res.Timeline)
	}
	return res, nil
}
