package core

import (
	"testing"

	"repro/internal/hetsim"
	"repro/internal/table"
)

// testProblem builds an int64 problem for a mask whose recurrence mixes
// every contributing neighbour with a position-dependent term, so any
// mis-scheduled read changes the output.
func testProblem(m DepMask, rows, cols int) *Problem[int64] {
	return &Problem[int64]{
		Name: "test-" + m.String(),
		Rows: rows,
		Cols: cols,
		Deps: m,
		F: func(i, j int, nb Neighbors[int64]) int64 {
			v := int64(i*31+j*17) % 13
			if m.Has(DepW) {
				v += 2*nb.W + 1
			}
			if m.Has(DepNW) {
				v += 3 * nb.NW
			}
			if m.Has(DepN) {
				v += max(nb.N, v)
			}
			if m.Has(DepNE) {
				v += nb.NE ^ 5
			}
			return v % 1_000_003
		},
		Boundary:     func(i, j int) int64 { return int64(i + 2*j) },
		BytesPerCell: 8,
	}
}

func TestSolveTinyByHand(t *testing.T) {
	// f = N + W + 1 with zero boundary on a 2x2 grid:
	// (0,0): 0+0+1 = 1; (0,1): 0+1+1 = 2; (1,0): 1+0+1 = 2; (1,1): 2+2+1 = 5.
	p := &Problem[int64]{
		Rows: 2, Cols: 2, Deps: DepW | DepN,
		F: func(i, j int, nb Neighbors[int64]) int64 { return nb.N + nb.W + 1 },
	}
	g, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{1, 2}, {2, 5}}
	for i := range want {
		for j := range want[i] {
			if g.At(i, j) != want[i][j] {
				t.Errorf("cell (%d,%d) = %d, want %d", i, j, g.At(i, j), want[i][j])
			}
		}
	}
}

func TestSolveValidates(t *testing.T) {
	if _, err := Solve(&Problem[int64]{Rows: 0, Cols: 3, Deps: DepN}); err == nil {
		t.Error("expected error for zero rows")
	}
	if _, err := Solve(&Problem[int64]{Rows: 3, Cols: 3, Deps: 0,
		F: func(int, int, Neighbors[int64]) int64 { return 0 }}); err == nil {
		t.Error("expected error for empty mask")
	}
	if _, err := Solve(&Problem[int64]{Rows: 3, Cols: 3, Deps: DepN}); err == nil {
		t.Error("expected error for nil F")
	}
}

func TestSolveIntoMismatch(t *testing.T) {
	p := testProblem(DepN, 3, 3)
	g := table.NewGrid[int64](2, 3, nil)
	if err := SolveInto(p, g); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestSolveIntoMatchesSolve(t *testing.T) {
	p := testProblem(DepW|DepN, 7, 9)
	want, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	g := table.NewGrid[int64](7, 9, table.AntiDiagMajor{})
	if err := SolveInto(p, g); err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, g) {
		t.Error("SolveInto differs from Solve")
	}
}

// SolveParallel must agree with Solve for every contributing set (which
// exercises every canonical pattern and both symmetry reductions) and for
// shapes wider, taller, and degenerate.
func TestSolveParallelMatchesSequential(t *testing.T) {
	dims := [][2]int{{1, 1}, {1, 9}, {9, 1}, {8, 8}, {5, 13}, {13, 5}, {40, 40}}
	for _, m := range AllDepMasks() {
		for _, d := range dims {
			p := testProblem(m, d[0], d[1])
			want, err := Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SolveParallel(p, 4)
			if err != nil {
				t.Fatalf("%s %v: %v", m, d, err)
			}
			if !table.EqualComparable(want, got) {
				t.Errorf("%s %dx%d: SolveParallel differs from Solve", m, d[0], d[1])
			}
		}
	}
}

func TestSolveParallelSingleWorker(t *testing.T) {
	p := testProblem(DepW|DepNE, 20, 20)
	want, _ := Solve(p)
	got, err := SolveParallel(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, got) {
		t.Error("single-worker parallel solve differs")
	}
}

func TestSolveParallelLargeFronts(t *testing.T) {
	// Large enough that fronts exceed the internal chunking threshold and
	// real goroutine fan-out happens.
	p := testProblem(DepNW|DepN|DepNE, 40, 2000)
	want, _ := Solve(p)
	got, err := SolveParallel(p, 0) // GOMAXPROCS default
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, got) {
		t.Error("chunked parallel solve differs")
	}
}

// SolveHetero (and both simulated baselines) must agree cell-for-cell with
// the sequential reference for every contributing set.
func TestSolveHeteroMatchesSequentialAllMasks(t *testing.T) {
	for _, m := range AllDepMasks() {
		p := testProblem(m, 17, 23)
		want, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		for name, solver := range map[string]func(*Problem[int64], Options) (*Result[int64], error){
			"hetero": SolveHetero[int64], "cpu": SolveCPUOnly[int64], "gpu": SolveGPUOnly[int64],
		} {
			res, err := solver(p, Options{TSwitch: -1, TShare: -1})
			if err != nil {
				t.Fatalf("%s %s: %v", m, name, err)
			}
			if res.Grid == nil {
				t.Fatalf("%s %s: nil grid", m, name)
			}
			if !table.EqualComparable(want, res.Grid) {
				t.Errorf("%s %s: values differ from sequential", m, name)
			}
			if res.Time <= 0 {
				t.Errorf("%s %s: non-positive simulated time %v", m, name, res.Time)
			}
		}
	}
}

func TestSolveHeteroExplicitParams(t *testing.T) {
	// Force a nontrivial split on every canonical pattern.
	for _, m := range []DepMask{DepW | DepN, DepNW | DepN | DepNE, DepNW, DepW | DepNE} {
		p := testProblem(m, 30, 30)
		want, _ := Solve(p)
		res, err := SolveHetero(p, Options{TSwitch: 5, TShare: 7})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !table.EqualComparable(want, res.Grid) {
			t.Errorf("%s: explicit-params hetero differs from sequential", m)
		}
	}
}

func TestSolveHeteroPreferInvertedL(t *testing.T) {
	p := testProblem(DepNW, 25, 25)
	want, _ := Solve(p)

	def, err := SolveHetero(p, Options{TSwitch: -1, TShare: -1})
	if err != nil {
		t.Fatal(err)
	}
	if def.Executed != Horizontal {
		t.Errorf("default executed pattern = %s, want Horizontal (§V-B preference)", def.Executed)
	}
	forced, err := SolveHetero(p, Options{TSwitch: 4, TShare: 6, PreferInvertedL: true})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Executed != InvertedL {
		t.Errorf("forced executed pattern = %s, want Inverted-L", forced.Executed)
	}
	for _, r := range []*Result[int64]{def, forced} {
		if !table.EqualComparable(want, r.Grid) {
			t.Error("inverted-L routing changed cell values")
		}
	}
}

func TestSolveHeteroSymmetryMetadata(t *testing.T) {
	vert, err := SolveHetero(testProblem(DepW|DepNW, 12, 18), Options{TShare: 3, TSwitch: 0})
	if err != nil {
		t.Fatal(err)
	}
	if vert.Pattern != Vertical || vert.Executed != Horizontal || vert.Reduction != ReduceTranspose {
		t.Errorf("vertical metadata = %s/%s/%s", vert.Pattern, vert.Executed, vert.Reduction)
	}
	mirror, err := SolveHetero(testProblem(DepNE, 12, 18), Options{TShare: 3, TSwitch: 0})
	if err != nil {
		t.Fatal(err)
	}
	if mirror.Pattern != MInvertedL || mirror.Reduction != ReduceMirror {
		t.Errorf("mInverted-L metadata = %s/%s", mirror.Pattern, mirror.Reduction)
	}
}

func TestSolveHeteroSkipCompute(t *testing.T) {
	p := testProblem(DepW|DepN, 50, 50)
	res, err := SolveHetero(p, Options{TSwitch: -1, TShare: -1, SkipCompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grid != nil {
		t.Error("SkipCompute should leave Grid nil")
	}
	if res.Time <= 0 {
		t.Error("SkipCompute should still produce a timeline")
	}
	// Timing must be identical with and without computation.
	full, err := SolveHetero(p, Options{TSwitch: res.TSwitch, TShare: res.TShare})
	if err != nil {
		t.Fatal(err)
	}
	if full.Time != res.Time {
		t.Errorf("SkipCompute time %v != full time %v", res.Time, full.Time)
	}
}

func TestTransferCountsByPattern(t *testing.T) {
	// {N}-only horizontal needs zero boundary transfers (Table II).
	resN, err := SolveHetero(testProblem(DepN, 20, 40), Options{TShare: 10, TSwitch: 0})
	if err != nil {
		t.Fatal(err)
	}
	if n := resN.Timeline.TransferCount(); n > 1 { // at most result extraction
		t.Errorf("{N} horizontal made %d transfers, want <= 1", n)
	}

	// Case-1 {NW,N}: one boundary transfer per row except the last.
	res1, err := SolveHetero(testProblem(DepNW|DepN, 20, 40), Options{TShare: 10, TSwitch: 0})
	if err != nil {
		t.Fatal(err)
	}
	h2d := 0
	for _, r := range res1.Timeline.Records {
		if r.Kind == hetsim.OpTransfer && r.Label == "h2d:boundary" {
			h2d++
		}
	}
	if h2d != 20 {
		t.Errorf("case-1 boundary transfers = %d, want 20 (one per row)", h2d)
	}

	// Case-2 {NW,N,NE}: both directions every row.
	res2, err := SolveHetero(testProblem(DepNW|DepN|DepNE, 20, 40), Options{TShare: 10, TSwitch: 0})
	if err != nil {
		t.Fatal(err)
	}
	var up, down int
	for _, r := range res2.Timeline.Records {
		switch r.Label {
		case "h2d:boundary":
			up++
		case "d2h:boundary":
			down++
		}
	}
	if up != 20 || down != 20 {
		t.Errorf("case-2 transfers = %d up / %d down, want 20/20", up, down)
	}

	// CPU-only baseline never transfers.
	resCPU, err := SolveCPUOnly(testProblem(DepW|DepNE, 20, 20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resCPU.Timeline.TransferCount() != 0 {
		t.Error("CPU-only baseline should not transfer")
	}
}

func TestHeteroUsesBothDevices(t *testing.T) {
	p := testProblem(DepW|DepN, 300, 300)
	res, err := SolveHetero(p, Options{TSwitch: 50, TShare: 20})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if st.CPUCells == 0 || st.GPUCells == 0 {
		t.Errorf("hetero run used cpu=%d gpu=%d cells; want both > 0", st.CPUCells, st.GPUCells)
	}
	if st.CPUCells+st.GPUCells != 300*300 {
		t.Errorf("devices computed %d cells, want %d", st.CPUCells+st.GPUCells, 300*300)
	}
}

func TestGPUOnlyCountsAllCells(t *testing.T) {
	p := testProblem(DepW|DepN, 40, 25)
	res, err := SolveGPUOnly(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats().GPUCells; got != 1000 {
		t.Errorf("GPU computed %d cells, want 1000", got)
	}
}

func TestSolveHeteroLowPlatform(t *testing.T) {
	p := testProblem(DepW|DepN, 60, 60)
	want, _ := Solve(p)
	res, err := SolveHetero(p, Options{Platform: hetsim.HeteroLow(), TSwitch: -1, TShare: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, res.Grid) {
		t.Error("Hetero-Low run differs from sequential")
	}
}

func TestSolveHeteroCustomLayoutStillCorrect(t *testing.T) {
	p := testProblem(DepW|DepN, 30, 30)
	want, _ := Solve(p)
	res, err := SolveHetero(p, Options{TSwitch: 5, TShare: 5, Layout: table.RowMajor{}})
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, res.Grid) {
		t.Error("row-major (uncoalesced) run differs from sequential")
	}
}
