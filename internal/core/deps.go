package core

import (
	"fmt"
	"strings"
)

// DepMask is the contributing set of an LDDP-Plus problem: the subset of
// the representative set {W, NW, N, NE} that the recurrence actually reads.
//
// Cell coordinates follow the paper: for cell (i, j),
//
//	W  = (i, j-1)    the cell to the left
//	NW = (i-1, j-1)  the cell up-left
//	N  = (i-1, j)    the cell above
//	NE = (i-1, j+1)  the cell up-right
type DepMask uint8

const (
	// DepW is cell(i, j-1).
	DepW DepMask = 1 << iota
	// DepNW is cell(i-1, j-1).
	DepNW
	// DepN is cell(i-1, j).
	DepN
	// DepNE is cell(i-1, j+1).
	DepNE
)

// depMaskAll is the full representative set.
const depMaskAll = DepW | DepNW | DepN | DepNE

// Has reports whether all bits of q are present in m.
func (m DepMask) Has(q DepMask) bool { return m&q == q }

// Count returns the number of contributing cells.
func (m DepMask) Count() int {
	n := 0
	for b := DepW; b <= DepNE; b <<= 1 {
		if m.Has(b) {
			n++
		}
	}
	return n
}

// Valid reports whether the mask is a legal contributing set: non-empty and
// within the representative set. (Conflicting-cell pairs are excluded by
// construction: the representative set contains no two cells collinear
// through (i,j), per paper Figure 1.)
func (m DepMask) Valid() bool {
	return m != 0 && m&^depMaskAll == 0
}

// String renders the mask as a set, e.g. "{W,NW,N}".
func (m DepMask) String() string {
	if m == 0 {
		return "{}"
	}
	var parts []string
	if m.Has(DepW) {
		parts = append(parts, "W")
	}
	if m.Has(DepNW) {
		parts = append(parts, "NW")
	}
	if m.Has(DepN) {
		parts = append(parts, "N")
	}
	if m.Has(DepNE) {
		parts = append(parts, "NE")
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ParseDepMask parses a set like "{W,NW}" or "W,NW" (case-insensitive).
func ParseDepMask(s string) (DepMask, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	var m DepMask
	for _, tok := range strings.Split(s, ",") {
		tok = strings.ToUpper(strings.TrimSpace(tok))
		switch tok {
		case "":
			continue
		case "W":
			m |= DepW
		case "NW":
			m |= DepNW
		case "N":
			m |= DepN
		case "NE":
			m |= DepNE
		default:
			return 0, fmt.Errorf("core: unknown representative cell %q", tok)
		}
	}
	if !m.Valid() {
		return 0, fmt.Errorf("core: empty contributing set %q", s)
	}
	return m, nil
}

// AllDepMasks returns the 15 non-empty contributing sets in ascending mask
// order, matching the row order of paper Table I (which enumerates
// (W, NW, N, NE) presence combinations).
func AllDepMasks() []DepMask {
	out := make([]DepMask, 0, 15)
	for m := DepMask(1); m <= depMaskAll; m++ {
		if m.Valid() {
			out = append(out, m)
		}
	}
	return out
}

// Transpose maps the mask through the (i,j) -> (j,i) reflection: W <-> N,
// NW fixed. NE has no image inside the representative set, so Transpose
// panics if NE is present; the framework only transposes Vertical-pattern
// masks, which never contain NE.
func (m DepMask) Transpose() DepMask {
	if m.Has(DepNE) {
		panic("core: cannot transpose a mask containing NE")
	}
	var out DepMask
	if m.Has(DepW) {
		out |= DepN
	}
	if m.Has(DepN) {
		out |= DepW
	}
	if m.Has(DepNW) {
		out |= DepNW
	}
	return out
}

// MirrorColumns maps the mask through the j -> cols-1-j reflection:
// NW <-> NE, N fixed. W has no image inside the representative set, so
// MirrorColumns panics if W is present; the framework only mirrors
// mInverted-L masks, which never contain W.
func (m DepMask) MirrorColumns() DepMask {
	if m.Has(DepW) {
		panic("core: cannot mirror a mask containing W")
	}
	var out DepMask
	if m.Has(DepNW) {
		out |= DepNE
	}
	if m.Has(DepNE) {
		out |= DepNW
	}
	if m.Has(DepN) {
		out |= DepN
	}
	return out
}
