package core

import (
	"testing"
	"time"

	"repro/internal/hetsim"
)

// phaseSink records Phase events and ignores the rest of the Collector
// contract.
type phaseSink struct {
	names []string
	walls []time.Duration
}

func (p *phaseSink) SolveStart(SolveInfo)                 {}
func (p *phaseSink) FrontSize(int)                        {}
func (p *phaseSink) WorkerStats(WorkerStats)              {}
func (p *phaseSink) Transfer(TransferStats)               {}
func (p *phaseSink) SolveEnd(error)                       {}
func (p *phaseSink) Phase(name string, w time.Duration) {
	p.names = append(p.names, name)
	p.walls = append(p.walls, w)
}

// tl builds a timeline straight from records; emitTimelinePhases only
// reads Label, Kind, Start and End.
func tl(records ...hetsim.OpRecord) hetsim.Timeline {
	return hetsim.Timeline{Records: records}
}

func rec(label string, kind hetsim.OpKind, start, end time.Duration) hetsim.OpRecord {
	return hetsim.OpRecord{Label: label, Kind: kind, Start: start, End: end}
}

func TestEmitTimelinePhasesMergesDevices(t *testing.T) {
	// One phase split across two devices: the phase wall is the span from
	// the earliest start to the latest end, not the sum of op durations.
	sink := &phaseSink{}
	emitTimelinePhases(sink, tl(
		rec("cpu:p1", hetsim.OpCompute, 0, 10*time.Microsecond),
		rec("gpu:p1", hetsim.OpCompute, 5*time.Microsecond, 20*time.Microsecond),
	))
	if len(sink.names) != 1 || sink.names[0] != "p1" {
		t.Fatalf("phases = %v, want [p1]", sink.names)
	}
	if sink.walls[0] != 20*time.Microsecond {
		t.Errorf("p1 wall = %v, want 20us (merged span, not summed durations)", sink.walls[0])
	}
}

func TestEmitTimelinePhasesStripsDevicePrefix(t *testing.T) {
	sink := &phaseSink{}
	emitTimelinePhases(sink, tl(
		rec("k20:p2", hetsim.OpCompute, 0, time.Microsecond),
		rec("bare", hetsim.OpCompute, time.Microsecond, 2*time.Microsecond),
	))
	if len(sink.names) != 2 || sink.names[0] != "p2" || sink.names[1] != "bare" {
		t.Fatalf("phases = %v, want [p2 bare] (prefix stripped, colon-less label kept)", sink.names)
	}
}

func TestEmitTimelinePhasesFirstSeenOrder(t *testing.T) {
	// Phases report in first-op order even when later ops interleave.
	sink := &phaseSink{}
	emitTimelinePhases(sink, tl(
		rec("cpu:p1", hetsim.OpCompute, 0, time.Microsecond),
		rec("cpu:p2", hetsim.OpCompute, time.Microsecond, 2*time.Microsecond),
		rec("gpu:p1", hetsim.OpCompute, 2*time.Microsecond, 3*time.Microsecond),
		rec("cpu:p3", hetsim.OpCompute, 3*time.Microsecond, 4*time.Microsecond),
	))
	want := []string{"p1", "p2", "p3"}
	if len(sink.names) != len(want) {
		t.Fatalf("phases = %v, want %v", sink.names, want)
	}
	for i := range want {
		if sink.names[i] != want[i] {
			t.Fatalf("phases = %v, want %v", sink.names, want)
		}
	}
	// p1's wall grew to cover the late gpu op.
	if sink.walls[0] != 3*time.Microsecond {
		t.Errorf("p1 wall = %v, want 3us", sink.walls[0])
	}
}

func TestEmitTimelinePhasesIgnoresTransfers(t *testing.T) {
	sink := &phaseSink{}
	emitTimelinePhases(sink, tl(
		rec("h2d:input", hetsim.OpTransfer, 0, time.Microsecond),
		rec("cpu:p1", hetsim.OpCompute, 0, time.Microsecond),
		rec("d2h:result", hetsim.OpTransfer, time.Microsecond, 2*time.Microsecond),
	))
	if len(sink.names) != 1 || sink.names[0] != "p1" {
		t.Fatalf("phases = %v, want [p1] (transfers excluded)", sink.names)
	}
}
