package core

import (
	"fmt"

	"repro/internal/table"
)

// Wavefronts describes the iteration space of a canonical pattern on a
// rows x cols table: an ordered sequence of fronts, each a set of mutually
// independent cells identified by a dense in-front index.
//
// For every pattern the fronts partition the table and respect the
// dependency order: every contributing neighbour of a front-t cell lies on
// a front strictly before t (property-tested in wavefront_test.go).
type Wavefronts struct {
	Pattern    Pattern
	Rows, Cols int
	// Fronts is the number of iterations.
	Fronts int
}

// NewWavefronts builds the iteration space for a canonical pattern.
// Vertical and MInvertedL must be symmetry-reduced first; passing them
// panics.
func NewWavefronts(p Pattern, rows, cols int) Wavefronts {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("core: wavefronts on invalid table %dx%d", rows, cols))
	}
	w := Wavefronts{Pattern: p, Rows: rows, Cols: cols}
	switch p {
	case AntiDiagonal:
		w.Fronts = rows + cols - 1
	case Horizontal:
		w.Fronts = rows
	case InvertedL:
		w.Fronts = min(rows, cols)
	case KnightMove:
		w.Fronts = table.KnightFronts(rows, cols)
	default:
		panic(fmt.Sprintf("core: wavefronts for non-canonical pattern %s", p))
	}
	return w
}

// Size returns the number of cells on front t, zero outside [0, Fronts).
func (w Wavefronts) Size(t int) int {
	if t < 0 || t >= w.Fronts {
		return 0
	}
	switch w.Pattern {
	case AntiDiagonal:
		_, n := table.AntiDiagSpan(w.Rows, w.Cols, t)
		return n
	case Horizontal:
		return w.Cols
	case InvertedL:
		return table.LSpan(w.Rows, w.Cols, t)
	case KnightMove:
		_, n := table.KnightSpan(w.Rows, w.Cols, t)
		return n
	default:
		return 0
	}
}

// Cell returns the coordinates of the k-th cell of front t. Cells within a
// front are ordered as their coalescing-friendly layout stores them:
// anti-diagonal and knight fronts by increasing row, horizontal fronts by
// increasing column, inverted-L fronts row segment first then column
// segment.
func (w Wavefronts) Cell(t, k int) (i, j int) {
	switch w.Pattern {
	case AntiDiagonal:
		first, _ := table.AntiDiagSpan(w.Rows, w.Cols, t)
		i = first + k
		return i, t - i
	case Horizontal:
		return t, k
	case InvertedL:
		rowLen := w.Cols - t
		if k < rowLen {
			return t, t + k
		}
		return t + 1 + (k - rowLen), t
	case KnightMove:
		first, _ := table.KnightSpan(w.Rows, w.Cols, t)
		i = first + k
		return i, t - 2*i
	default:
		panic(fmt.Sprintf("core: Cell on non-canonical pattern %s", w.Pattern))
	}
}

// FrontOf returns the front index containing cell (i, j).
func (w Wavefronts) FrontOf(i, j int) int {
	switch w.Pattern {
	case AntiDiagonal:
		return i + j
	case Horizontal:
		return i
	case InvertedL:
		return min(i, j)
	case KnightMove:
		return 2*i + j
	default:
		panic(fmt.Sprintf("core: FrontOf on non-canonical pattern %s", w.Pattern))
	}
}

// TotalCells returns rows*cols; fronts always partition the table.
func (w Wavefronts) TotalCells() int { return w.Rows * w.Cols }

// MaxWidth returns the size of the widest front: the peak degree of
// parallelism of the pattern's profile (paper §III).
func (w Wavefronts) MaxWidth() int {
	widest := 0
	for t := 0; t < w.Fronts; t++ {
		if s := w.Size(t); s > widest {
			widest = s
		}
	}
	return widest
}

// PreferredLayout returns the memory layout that stores this pattern's
// fronts contiguously (paper §IV-B).
func (w Wavefronts) PreferredLayout() table.Layout {
	switch w.Pattern {
	case AntiDiagonal:
		return table.AntiDiagMajor{}
	case Horizontal:
		return table.RowMajor{}
	case InvertedL:
		return table.LMajor{}
	case KnightMove:
		return table.NewKnightMajor(w.Rows, w.Cols)
	default:
		return table.RowMajor{}
	}
}
