package core

import (
	"repro/internal/hetsim"
	"repro/internal/table"
)

// runKnightMove executes the three-phase heterogeneous strategy of paper
// §III-D for knight-move problems (contributing sets containing both W and
// NE), mirroring the scheme Deshpande et al. used for Floyd-Steinberg
// dithering.
//
// Fronts are the lines 2i+j = t. Like the anti-diagonal pattern, the
// parallelism profile grows then shrinks, so phases 1 and 3 keep the CPU
// alone on the narrow fronts. In phase 2 the CPU owns the left column band
// j < tShare and the GPU the rest. Both boundary directions are live
// (paper Figure 6): the GPU's leftmost cell reads the CPU's W (front t-1)
// and NW (front t-3) boundary cells, while the CPU's rightmost cell reads
// the GPU's NE boundary cell (front t-1) — a two-way exchange through
// pinned memory (Table II).
//
// The solve context is polled once per front; an observed cancellation
// aborts the plan and surfaces as *Canceled.
func runKnightMove[T any](e *heteroExec[T], tSwitch, tShare int) error {
	fronts := e.w.Fronts
	tSwitch = clampTSwitch(tSwitch, fronts)
	p2Start, p3Start := tSwitch, fronts-tSwitch

	lastCPU, lastGPU := hetsim.NoOp, hetsim.NoOp
	upload := e.uploadInput()

	h2d := make([]hetsim.OpID, fronts)
	d2h := make([]hetsim.OpID, fronts)
	for i := range h2d {
		h2d[i], d2h[i] = hetsim.NoOp, hetsim.NoOp
	}

	// split returns the in-front index separating the GPU part (low k,
	// small rows, j >= tShare) from the CPU part (high k, j < tShare).
	split := func(t int) (gpuCount, cpuCount int) {
		firstRow, size := table.KnightSpan(e.w.Rows, e.w.Cols, t)
		if size == 0 {
			return 0, 0
		}
		lastRow := firstRow + size - 1
		// Cells are (i, t-2i); j < tShare means i > (t-tShare)/2.
		cpuFirstRow := ceilDivInt(t-tShare+1, 2)
		if cpuFirstRow < firstRow {
			cpuFirstRow = firstRow
		}
		if cpuFirstRow > lastRow+1 {
			cpuFirstRow = lastRow + 1
		}
		cpuCount = lastRow - cpuFirstRow + 1
		return size - cpuCount, cpuCount
	}

	// Phase 1: CPU only.
	for t := 0; t < p2Start; t++ {
		if e.canceled() {
			return e.cancelErr("hetero", t)
		}
		lastCPU = e.cpuOp(t, 0, e.w.Size(t), "cpu:p1", lastCPU)
	}

	// Phase 1 -> 2 synchronization: knight dependencies reach back three
	// fronts (W,NE: t-1; N: t-2; NW: t-3), all CPU-computed at the seam.
	syncUp := hetsim.NoOp
	if p2Start > 0 && p3Start > p2Start {
		bytes := 0
		for back := 1; back <= 3; back++ {
			if t := p2Start - back; t >= 0 {
				bytes += e.w.Size(t) * e.bpc
			}
		}
		syncUp = e.bulk(hetsim.ResCopyH2D, bytes, "h2d:phase1-sync", lastCPU)
	}

	// Phase 2: split fronts with two-way boundary exchange.
	for t := p2Start; t < p3Start; t++ {
		if e.canceled() {
			return e.cancelErr("hetero", t)
		}
		size := e.w.Size(t)
		gpuCount, cpuCount := split(t)

		if gpuCount > 0 {
			// Fixed-arity deps (NoOp ignored) keep the slice stack-allocated;
			// appending past a literal's capacity costs one heap allocation
			// per front.
			b1, b3 := hetsim.NoOp, hetsim.NoOp
			if t-1 >= 0 {
				b1 = h2d[t-1]
			}
			if t-3 >= 0 {
				b3 = h2d[t-3]
			}
			lastGPU = e.gpuOp(t, 0, gpuCount, "gpu:p2", lastGPU, upload, syncUp, b1, b3)
		}
		if cpuCount > 0 {
			down := hetsim.NoOp
			if t-1 >= 0 {
				down = d2h[t-1]
			}
			lastCPU = e.cpuOp(t, gpuCount, size, "cpu:p2", lastCPU, down)
		}
		if cpuCount > 0 && gpuCount > 0 {
			h2d[t] = e.boundary(hetsim.ResCopyH2D, 1, "h2d:boundary", lastCPU)
			d2h[t] = e.boundary(hetsim.ResCopyD2H, 1, "d2h:boundary", lastGPU)
		}
	}

	// Phase 2 -> 3 synchronization: download the GPU parts of the last
	// three fronts for the CPU tail.
	syncDown := hetsim.NoOp
	if p3Start < fronts && p3Start > p2Start {
		bytes := 0
		for back := 1; back <= 3; back++ {
			if t := p3Start - back; t >= p2Start {
				gpuCount, _ := split(t)
				bytes += gpuCount * e.bpc
			}
		}
		syncDown = e.bulk(hetsim.ResCopyD2H, bytes, "d2h:phase2-sync", lastGPU)
	}

	// Phase 3: CPU only.
	for t := p3Start; t < fronts; t++ {
		if e.canceled() {
			return e.cancelErr("hetero", t)
		}
		lastCPU = e.cpuOp(t, 0, e.w.Size(t), "cpu:p3", lastCPU, syncDown)
	}

	if tSwitch == 0 && lastGPU != hetsim.NoOp {
		e.extract(e.w.Size(fronts-1), lastGPU)
	}
	return nil
}

// ceilDivInt returns ceil(a/b) for positive b and any a.
func ceilDivInt(a, b int) int {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}
