package core

import (
	"strings"
	"time"

	"repro/internal/hetsim"
)

// Collector receives runtime observability events from the solvers: phase
// wall times, front sizes, pool worker utilization and chunk-claim counts,
// and simulated transfer volumes split by boundary/bulk and direction.
//
// A nil Collector (the Options default) disables all instrumentation at
// zero cost: the hot paths guard every event behind one nil test that is
// hoisted out of the per-cell loops, so the uninstrumented solve executes
// the same code it did before collectors existed.
//
// Implementations must be safe for concurrent use only if shared across
// concurrent solves; within one solve, events arrive from the solving
// goroutine sequentially (worker statistics are aggregated by the pool and
// reported after the workers have joined).
type Collector interface {
	// SolveStart opens a solve; every other event belongs to the most
	// recently started solve on this collector.
	SolveStart(info SolveInfo)
	// Phase reports the wall time of one named execution phase. Native
	// solves report real elapsed time; simulated solves report the span of
	// the phase on the simulated timeline (e.g. "p1", "p2", "p3" for the
	// anti-diagonal strategy's three phases).
	Phase(name string, wall time.Duration)
	// FrontSize reports the cell count of one wavefront, in front order;
	// collectors typically aggregate these into a histogram.
	FrontSize(cells int)
	// WorkerStats reports one pool worker's totals after the pool joined.
	WorkerStats(ws WorkerStats)
	// Transfer reports one simulated CPU<->GPU data movement.
	Transfer(ts TransferStats)
	// SolveEnd closes the solve; err is nil on success, the solver's error
	// (including *Canceled) otherwise.
	SolveEnd(err error)
}

// SolveInfo describes a starting solve.
type SolveInfo struct {
	// Solver is the executor name: "sequential", "pool", "bands", "tiled",
	// "hetero", "cpu-only", "gpu-only", "multi", "sched", ...
	Solver string
	// ID is the per-solve identifier assigned by the shared scheduler
	// (internal/sched); 0 for solves run directly through an executor.
	// It ties a solve's Collector events to its SchedEvent lifecycle and
	// to its trace.
	ID int64
	// Problem is the Problem.Name (may be empty).
	Problem string
	// Pattern is the problem's Table-I dependency pattern; Executed is the
	// pattern actually run after symmetry reduction and the inverted-L
	// preference. Empty for solvers that do not classify (sequential).
	Pattern, Executed string
	// Rows and Cols are the DP-table dimensions (canonical orientation).
	Rows, Cols int
	// Fronts is the number of wavefronts of the executed iteration space.
	Fronts int
	// Workers is the resolved worker count for native executors, 0 for
	// simulated ones.
	Workers int
}

// WorkerStats carries one pool worker's per-solve totals.
type WorkerStats struct {
	// Worker is the worker index in [0, Workers).
	Worker int
	// Chunks counts the dynamic chunks the worker claimed off the front
	// cursors (plus the fronts it ran inline as the advancing worker).
	Chunks int
	// Cells is the total number of cells the worker computed.
	Cells int
	// Busy is the time the worker spent inside the compute kernel.
	Busy time.Duration
	// Wall is the lifetime of the pool; Busy/Wall is the worker's
	// utilization.
	Wall time.Duration
}

// TransferStats describes one simulated CPU<->GPU transfer.
type TransferStats struct {
	// Boundary marks the per-iteration boundary-cell exchanges (pinned
	// memory, paper §IV-C case 2); false marks bulk transfers (input
	// upload, phase synchronization, result extraction).
	Boundary bool
	// ToDevice is true for host-to-device (H2D) movement, false for
	// device-to-host.
	ToDevice bool
	// Bytes is the transfer size; Cells the cell count for boundary
	// exchanges (0 for pure byte-sized bulk moves).
	Bytes, Cells int
}

// SchedEventKind classifies a scheduler lifecycle event.
type SchedEventKind uint8

const (
	// SchedEnqueued: the submission entered the admission queue.
	SchedEnqueued SchedEventKind = iota
	// SchedStarted: a worker admitted the submission; Wait carries its
	// time in queue.
	SchedStarted
	// SchedDone: the solve completed successfully.
	SchedDone
	// SchedCanceled: the solve was interrupted mid-run by its context.
	SchedCanceled
	// SchedRejected: the submission was refused admission (queue full,
	// scheduler closed, or its context expired while still queued).
	SchedRejected
	// SchedSteal: a worker switched to this solve from a different one
	// (a cross-solve steal).
	SchedSteal
)

var schedEventNames = [...]string{
	SchedEnqueued: "enqueued",
	SchedStarted:  "started",
	SchedDone:     "done",
	SchedCanceled: "canceled",
	SchedRejected: "rejected",
	SchedSteal:    "steal",
}

// String returns the stable lowercase name of the event kind.
func (k SchedEventKind) String() string {
	if int(k) < len(schedEventNames) {
		return schedEventNames[k]
	}
	return "unknown"
}

// SchedEvent is one scheduler lifecycle event for one submission.
type SchedEvent struct {
	// ID is the submission's scheduler-assigned solve ID (matches
	// SolveInfo.ID of the corresponding SolveStart).
	ID int64
	// Kind classifies the event.
	Kind SchedEventKind
	// QueueDepth is the admission-queue depth observed when the event
	// fired (after the event's own enqueue/dequeue took effect).
	QueueDepth int
	// Active is the number of concurrently executing solves at the event.
	Active int
	// Wait carries the event's elapsed-time measurement: on SchedStarted
	// it is the submission's time in queue (and likewise on synchronous
	// and queue-expiry rejections, where queued time is all there is); on
	// the terminal events of an admitted solve (SchedDone, SchedCanceled)
	// it is the full submit-to-terminal latency. Latency and queue-wait
	// histograms therefore need no extra bookkeeping beyond observing
	// Wait per Kind.
	Wait time.Duration
	// Cells is the submission's total cell count.
	Cells int64
}

// SchedCollector is optionally implemented by Collectors that want the
// shared scheduler's lifecycle events (queue depth, time-in-queue,
// cross-solve steals) in addition to the per-solve events of Collector.
// The scheduler type-asserts its configured Collector against this
// interface; plain Collectors just miss the SchedEvent stream.
type SchedCollector interface {
	Collector
	// SchedEvent reports one scheduler lifecycle event. Events for one
	// submission arrive in lifecycle order, but events of different
	// submissions interleave; implementations must synchronize.
	SchedEvent(ev SchedEvent)
}

// emitTimelinePhases reports the simulated wall-clock span of each
// execution phase of a resolved timeline. Compute-op labels follow the
// "device:phase" convention ("cpu:p1", "gpu:p2", "k20:p1", ...); ops of one
// phase across all devices group together, and the phase's wall time is the
// span from its first op start to its last op end on the simulated clock.
// The resulting phase count is exactly the paper's Table-II phase structure
// for the executed pattern (three for anti-diagonal and knight-move, two
// for inverted-L, one for horizontal).
func emitTimelinePhases(c Collector, tl hetsim.Timeline) {
	type span struct {
		start, end time.Duration
	}
	spans := map[string]*span{}
	var order []string
	for _, r := range tl.Records {
		if r.Kind != hetsim.OpCompute {
			continue
		}
		name := r.Label
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name = name[i+1:]
		}
		s, ok := spans[name]
		if !ok {
			spans[name] = &span{start: r.Start, end: r.End}
			order = append(order, name)
			continue
		}
		if r.Start < s.start {
			s.start = r.Start
		}
		if r.End > s.end {
			s.end = r.End
		}
	}
	for _, name := range order {
		s := spans[name]
		c.Phase(name, s.end-s.start)
	}
}
