package core

import "repro/internal/hetsim"

// runHorizontal executes the single-phase heterogeneous strategy of paper
// §III-B for horizontal problems (all contributing sets within {NW,N,NE}).
//
// Every front is a row, so parallelism is constant and the same split works
// for all iterations: the CPU takes the left tShare columns, the GPU the
// rest. Data movement follows §III-B's case analysis:
//
//   - NW in the contributing set: the GPU's leftmost cell reads the CPU's
//     rightmost cell of the previous row -> CPU->GPU transfer;
//   - NE in the contributing set: the CPU's rightmost cell reads the GPU's
//     leftmost cell of the previous row -> GPU->CPU transfer;
//   - both: two-way (case 2, pinned memory);
//   - {N} only: the split line is never crossed and no transfer happens.
//
// The solve context is polled once per row; an observed cancellation
// aborts the plan and surfaces as *Canceled.
func runHorizontal[T any](e *heteroExec[T], tShare int) error {
	fronts := e.w.Fronts
	cols := e.w.Cols
	needH2D := e.p.Deps.Has(DepNW)
	needD2H := e.p.Deps.Has(DepNE)

	cpuCount := tShare
	if cpuCount < 0 {
		cpuCount = 0
	}
	if cpuCount > cols {
		cpuCount = cols
	}
	gpuCount := cols - cpuCount

	lastCPU, lastGPU := hetsim.NoOp, hetsim.NoOp
	upload := e.uploadInput()
	prevH2D, prevD2H := hetsim.NoOp, hetsim.NoOp

	for t := 0; t < fronts; t++ {
		if e.canceled() {
			return e.cancelErr("hetero", t)
		}
		if cpuCount > 0 {
			lastCPU = e.cpuOp(t, 0, cpuCount, "cpu:p1", lastCPU, prevD2H)
		}
		if gpuCount > 0 {
			lastGPU = e.gpuOp(t, cpuCount, cols, "gpu:p1", lastGPU, upload, prevH2D)
		}
		if cpuCount > 0 && gpuCount > 0 {
			if needH2D {
				prevH2D = e.boundary(hetsim.ResCopyH2D, 1, "h2d:boundary", lastCPU)
			}
			if needD2H {
				prevD2H = e.boundary(hetsim.ResCopyD2H, 1, "d2h:boundary", lastGPU)
			}
		}
	}

	if gpuCount > 0 && lastGPU != hetsim.NoOp {
		e.extract(gpuCount, lastGPU)
	}
	return nil
}
