package core

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/table"
)

// SolveParallel fills the DP table using real goroutines on the host: the
// problem is symmetry-reduced to its canonical pattern and each wavefront
// is split across workers. This is the framework's native multicore
// executor — it produces the same values as Solve and is what the examples
// use to solve problems for real.
//
// Execution runs on the persistent worker-pool runtime of pool.go:
// workers start once per solve, pull dynamic chunks off each front, and
// cross fronts through a reusable epoch barrier (or, for
// Horizontal-pattern problems, per-row neighbour handoff). See
// SolveParallelOpt for the tuning knobs.
//
// workers <= 0 selects min(runtime.GOMAXPROCS(0), runtime.NumCPU()), the
// documented NativeWorkers default.
func SolveParallel[T any](p *Problem[T], workers int) (*table.Grid[T], error) {
	return solveParallelPool(context.Background(), p, Options{NativeWorkers: workers})
}

// SolveParallelOpt is SolveParallel with the native-runtime knobs of
// Options exposed: NativeWorkers, NativeChunk, NativeNoLookahead, and
// Collector. All other Options fields are ignored — the native executor
// computes real values on the host and involves no simulated platform.
func SolveParallelOpt[T any](p *Problem[T], opts Options) (*table.Grid[T], error) {
	return solveParallelPool(context.Background(), p, opts)
}

// SolveParallelContext is SolveParallelOpt honoring a context: the pool
// polls ctx at chunk granularity and a cancel or deadline expiry shuts the
// workers down promptly. The interrupted solve returns a nil grid and a
// *Canceled error (unwrapping to the context's cause); the partially
// filled table is discarded. An uncancellable context costs nothing on the
// hot path.
func SolveParallelContext[T any](ctx context.Context, p *Problem[T], opts Options) (*table.Grid[T], error) {
	return solveParallelPool(ctx, p, opts)
}

// SolveParallelSpawn is the pre-pool native executor, kept as the
// measurement baseline for the pool runtime (ablation-native-pool): it
// spawns fresh goroutines for every front and joins them with a WaitGroup
// barrier, paying one spawn/barrier cycle per wavefront.
//
// workers <= 0 selects runtime.GOMAXPROCS(0).
func SolveParallelSpawn[T any](p *Problem[T], workers int) (*table.Grid[T], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cp, canonical, _, undo := canonicalize(p)
	w := NewWavefronts(canonical, cp.Rows, cp.Cols)
	g := table.NewGrid[T](cp.Rows, cp.Cols, nil)
	rd := gridReader[T]{g}

	// minChunk keeps tiny fronts on the calling goroutine: below this size
	// the barrier cost exceeds any parallel gain (the same observation that
	// motivates the paper's t_switch low-work regions).
	const minChunk = 256

	var wg sync.WaitGroup
	for t := 0; t < w.Fronts; t++ {
		size := w.Size(t)
		if size <= minChunk || workers == 1 {
			computeFrontRange(cp, rd, g, w, t, 0, size)
			continue
		}
		chunks := workers
		if chunks > size/minChunk {
			chunks = size / minChunk
		}
		if chunks < 2 {
			computeFrontRange(cp, rd, g, w, t, 0, size)
			continue
		}
		per := (size + chunks - 1) / chunks
		for c := 0; c < chunks; c++ {
			lo := c * per
			hi := lo + per
			if hi > size {
				hi = size
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				computeFrontRange(cp, rd, g, w, t, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	return undo(g), nil
}

// computeFrontRange evaluates cells [lo, hi) of front t. Within a front all
// cells are independent, and all contributing neighbours lie on earlier
// fronts, so concurrent writers never touch a cell another worker reads.
func computeFrontRange[T any](p *Problem[T], rd gridReader[T], g *table.Grid[T], w Wavefronts, t, lo, hi int) {
	for k := lo; k < hi; k++ {
		i, j := w.Cell(t, k)
		g.Set(i, j, p.F(i, j, gatherNeighbors(p, rd, i, j)))
	}
}
