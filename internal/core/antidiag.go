package core

import (
	"repro/internal/hetsim"
	"repro/internal/table"
)

// runAntiDiagonal executes the three-phase heterogeneous strategy of paper
// §III-A for anti-diagonal problems (contributing sets {W,N}, {W,NW,N}).
//
// Phase 1: the first tSwitch fronts run entirely on the CPU (low work).
// Phase 2: each front is split; the CPU takes the cells in the top tShare
// rows ("the first t_share cells of the corresponding anti-diagonal", which
// under the by-increasing-row front order is exactly the band i < tShare),
// the GPU takes the rest. Because all dependencies point up-left, the GPU's
// topmost cell needs the CPU's bottom boundary cell from the previous two
// fronts, and the CPU needs nothing back: the transfer is strictly one-way
// CPU->GPU (Table II), so the DMA copy pipelines under the running kernel.
// Phase 3: the last tSwitch fronts run entirely on the CPU again.
//
// The solve context is polled once per front; an observed cancellation
// aborts the plan and surfaces as *Canceled.
func runAntiDiagonal[T any](e *heteroExec[T], tSwitch, tShare int) error {
	fronts := e.w.Fronts
	tSwitch = clampTSwitch(tSwitch, fronts)
	p2Start, p3Start := tSwitch, fronts-tSwitch

	lastCPU, lastGPU := hetsim.NoOp, hetsim.NoOp
	upload := e.uploadInput()

	// h2d[t] is the boundary transfer carrying front t's CPU boundary cell.
	h2d := make([]hetsim.OpID, fronts)
	for i := range h2d {
		h2d[i] = hetsim.NoOp
	}

	// Phase 1: CPU only.
	for t := 0; t < p2Start; t++ {
		if e.canceled() {
			return e.cancelErr("hetero", t)
		}
		lastCPU = e.cpuOp(t, 0, e.w.Size(t), "cpu:p1", lastCPU)
	}

	// Phase 1 -> 2 synchronization: the GPU's first kernels read cells of
	// the two preceding fronts, all CPU-computed; upload them in bulk.
	syncUp := hetsim.NoOp
	if p2Start > 0 && p3Start > p2Start {
		bytes := 0
		for _, t := range []int{p2Start - 1, p2Start - 2} {
			if t >= 0 {
				bytes += e.w.Size(t) * e.bpc
			}
		}
		syncUp = e.bulk(hetsim.ResCopyH2D, bytes, "h2d:phase1-sync", lastCPU)
	}

	// Phase 2: split fronts.
	for t := p2Start; t < p3Start; t++ {
		if e.canceled() {
			return e.cancelErr("hetero", t)
		}
		size := e.w.Size(t)
		firstRow, _ := table.AntiDiagSpan(e.w.Rows, e.w.Cols, t)
		cpuCount := tShare - firstRow
		if cpuCount < 0 {
			cpuCount = 0
		}
		if cpuCount > size {
			cpuCount = size
		}
		gpuCount := size - cpuCount

		if cpuCount > 0 {
			lastCPU = e.cpuOp(t, 0, cpuCount, "cpu:p2", lastCPU)
		}
		if gpuCount > 0 {
			// Fixed-arity deps (NoOp entries are skipped by the simulator)
			// keep the slice on the stack: an append past the literal's
			// capacity here would heap-allocate once per front.
			b1, b2 := hetsim.NoOp, hetsim.NoOp
			if t-1 >= 0 {
				b1 = h2d[t-1]
			}
			if t-2 >= 0 {
				b2 = h2d[t-2]
			}
			lastGPU = e.gpuOp(t, cpuCount, size, "gpu:p2", lastGPU, upload, syncUp, b1, b2)
		}
		if cpuCount > 0 && gpuCount > 0 {
			// One boundary cell (row tShare-1) feeds the GPU's W/NW/N reads
			// on the next two fronts.
			h2d[t] = e.boundary(hetsim.ResCopyH2D, 1, "h2d:boundary", lastCPU)
		}
	}

	// Phase 2 -> 3 synchronization: the CPU's first tail fronts read GPU
	// cells of the two preceding fronts; download their GPU parts.
	syncDown := hetsim.NoOp
	if p3Start < fronts && p3Start > p2Start {
		bytes := 0
		for _, t := range []int{p3Start - 1, p3Start - 2} {
			if t >= p2Start {
				size := e.w.Size(t)
				firstRow, _ := table.AntiDiagSpan(e.w.Rows, e.w.Cols, t)
				cpuCount := max(0, min(tShare-firstRow, size))
				bytes += (size - cpuCount) * e.bpc
			}
		}
		syncDown = e.bulk(hetsim.ResCopyD2H, bytes, "d2h:phase2-sync", lastGPU)
	}

	// Phase 3: CPU only.
	for t := p3Start; t < fronts; t++ {
		if e.canceled() {
			return e.cancelErr("hetero", t)
		}
		lastCPU = e.cpuOp(t, 0, e.w.Size(t), "cpu:p3", lastCPU, syncDown)
	}

	// Result extraction: with a CPU tail phase the answer is already on the
	// host; otherwise pull the GPU part of the final front.
	if tSwitch == 0 && lastGPU != hetsim.NoOp {
		e.extract(e.w.Size(fronts-1), lastGPU)
	}
	return nil
}
