package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/table"
)

// SolveTiled3 is the 3-D analogue of SolveTiled: the box is partitioned
// into tile^3 blocks, blocks are scheduled along block-level anti-diagonal
// planes (bi+bj+bk = s), blocks on a plane run on separate goroutines, and
// each block fills lexicographically for locality.
//
// Block-level safety holds for every 3-D contributing set: each cell
// predecessor offset is component-wise <= 0, so a cell in block B can only
// read cells in blocks that are component-wise <= B — all on strictly
// earlier block planes or equal to B itself (and within a block,
// lexicographic fill order is safe for the same reason).
func SolveTiled3[T any](p *Problem3[T], tile, workers int) (*table.Grid3[T], error) {
	return SolveTiled3Context(context.Background(), p, tile, workers)
}

// SolveTiled3Context is SolveTiled3 honoring a context, polled once per
// block plane (between barriers, so no goroutine is abandoned mid-flight).
// A canceled solve returns a nil grid and a *Canceled error.
func SolveTiled3Context[T any](ctx context.Context, p *Problem3[T], tile, workers int) (*table.Grid3[T], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if tile < 1 {
		return nil, fmt.Errorf("core: tile size %d < 1", tile)
	}
	if workers <= 0 {
		workers = defaultPoolWorkers()
	}
	done := ctxDone(ctx)
	g := table.NewGrid3[T](p.NX, p.NY, p.NZ, nil)

	bx := (p.NX + tile - 1) / tile
	by := (p.NY + tile - 1) / tile
	bz := (p.NZ + tile - 1) / tile

	fillBlock := func(bi, bj, bk int) {
		iHi := min((bi+1)*tile, p.NX)
		jHi := min((bj+1)*tile, p.NY)
		kHi := min((bk+1)*tile, p.NZ)
		for i := bi * tile; i < iHi; i++ {
			for j := bj * tile; j < jHi; j++ {
				for k := bk * tile; k < kHi; k++ {
					g.Set(i, j, k, p.F(i, j, k, gather3(p, g, i, j, k)))
				}
			}
		}
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for s := 0; s <= bx+by+bz-3; s++ {
		if isDone(done) {
			return nil, canceledErr(ctx, "tiled3", s)
		}
		// Enumerate blocks on plane s.
		type blk struct{ bi, bj, bk int }
		var blocks []blk
		for bi := max(0, s-(by-1)-(bz-1)); bi <= min(bx-1, s); bi++ {
			firstJ, count := table.PlaneRowSpan(by, bz, s, bi)
			for jj := 0; jj < count; jj++ {
				bj := firstJ + jj
				blocks = append(blocks, blk{bi, bj, s - bi - bj})
			}
		}
		if len(blocks) == 1 || workers == 1 {
			for _, b := range blocks {
				fillBlock(b.bi, b.bj, b.bk)
			}
			continue
		}
		for _, b := range blocks {
			wg.Add(1)
			sem <- struct{}{}
			go func(b blk) {
				defer wg.Done()
				fillBlock(b.bi, b.bj, b.bk)
				<-sem
			}(b)
		}
		wg.Wait()
	}
	return g, nil
}
