package core

import "fmt"

// Pattern is the dependency pattern of an LDDP-Plus problem (paper §III,
// Figure 2). The pattern fixes the wavefront iteration space: all cells on
// one wavefront can be computed in parallel, and wavefronts execute in
// order.
type Pattern uint8

const (
	// AntiDiagonal processes cells with equal i+j together (Figure 2a).
	AntiDiagonal Pattern = iota
	// Horizontal processes rows together (Figure 2b).
	Horizontal
	// InvertedL processes cells with equal min(i,j) together (Figure 2c).
	InvertedL
	// KnightMove processes cells with equal 2i+j together (Figure 2d).
	KnightMove
	// Vertical processes columns together (Figure 2e). Symmetric to
	// Horizontal under transposition.
	Vertical
	// MInvertedL is the mirrored Inverted-L (Figure 2f): cells with equal
	// min(i, cols-1-j). Symmetric to InvertedL under column reflection.
	MInvertedL

	numPatterns
)

// String returns the paper's name for the pattern.
func (p Pattern) String() string {
	switch p {
	case AntiDiagonal:
		return "Anti-diagonal"
	case Horizontal:
		return "Horizontal"
	case InvertedL:
		return "Inverted-L"
	case KnightMove:
		return "Knight-Move"
	case Vertical:
		return "Vertical"
	case MInvertedL:
		return "mInverted-L"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}

// Classify maps a contributing set to its pattern, reproducing paper
// Table I exactly. It panics on an invalid (empty) mask; callers validate
// problems first.
//
// The decision structure mirrors the table's underlying logic:
//
//   - W together with NE forces the knight-move spacing 2i+j;
//   - W with N (but no NE) forces anti-diagonals i+j;
//   - W alone (possibly with NW) leaves columns independent: Vertical;
//   - without W, any N — or the NW+NE pair — confines dependencies to the
//     previous row: Horizontal;
//   - NW alone yields Inverted-L; NE alone its mirror.
func Classify(m DepMask) Pattern {
	if !m.Valid() {
		panic(fmt.Sprintf("core: Classify on invalid mask %s", m))
	}
	switch {
	case m.Has(DepW) && m.Has(DepNE):
		return KnightMove
	case m.Has(DepW) && m.Has(DepN):
		return AntiDiagonal
	case m.Has(DepW):
		return Vertical
	case m.Has(DepN), m.Has(DepNW) && m.Has(DepNE):
		return Horizontal
	case m.Has(DepNW):
		return InvertedL
	default:
		return MInvertedL
	}
}

// TransferKind describes the per-iteration CPU<->GPU data movement a
// pattern requires during heterogeneous execution (paper Table II).
type TransferKind uint8

const (
	// TransferNone means the devices never exchange boundary cells
	// (Horizontal with contributing set {N}).
	TransferNone TransferKind = iota
	// TransferOneWay means boundary cells flow in one direction only, which
	// admits the pipelined stream scheme of paper §IV-C case 1.
	TransferOneWay
	// TransferTwoWay means both devices need the other's boundary cells
	// every iteration, requiring the pinned-memory scheme of §IV-C case 2.
	TransferTwoWay
)

// String returns the paper's wording for the transfer kind.
func (k TransferKind) String() string {
	switch k {
	case TransferNone:
		return "none"
	case TransferOneWay:
		return "1 way"
	case TransferTwoWay:
		return "2 way"
	default:
		return fmt.Sprintf("TransferKind(%d)", uint8(k))
	}
}

// TransferNeed returns the data-transfer requirement for a contributing
// set under its pattern's heterogeneous strategy, reproducing paper
// Table II. The split orientation is the one fixed by each strategy: a
// left-columns CPU block for Horizontal/Vertical/Knight-Move, a top-rows
// CPU block for Anti-Diagonal, and a leading-cells block for Inverted-L.
func TransferNeed(m DepMask) TransferKind {
	switch Classify(m) {
	case KnightMove:
		return TransferTwoWay
	case AntiDiagonal, InvertedL, MInvertedL:
		return TransferOneWay
	case Horizontal:
		// Case-2 (two-way) iff both NW and NE cross the column split;
		// {N} alone needs no transfer at all.
		switch {
		case m.Has(DepNW) && m.Has(DepNE):
			return TransferTwoWay
		case m.Has(DepNW) || m.Has(DepNE):
			return TransferOneWay
		default:
			return TransferNone
		}
	case Vertical:
		// Transposed horizontal: {W}->{N} (none), {W,NW}->{N,NW} (one-way).
		if m.Has(DepNW) {
			return TransferOneWay
		}
		return TransferNone
	default:
		panic("core: unreachable pattern in TransferNeed")
	}
}

// CanonicalPattern returns the pattern the framework actually executes
// after symmetry reduction (paper §III: Vertical and mInverted-L reduce to
// Horizontal and Inverted-L), plus the reduction applied.
func CanonicalPattern(p Pattern) (canonical Pattern, reduction Reduction) {
	switch p {
	case Vertical:
		return Horizontal, ReduceTranspose
	case MInvertedL:
		return InvertedL, ReduceMirror
	default:
		return p, ReduceNone
	}
}

// Reduction identifies the symmetry transform used to canonicalize a
// pattern.
type Reduction uint8

const (
	// ReduceNone means the pattern is executed directly.
	ReduceNone Reduction = iota
	// ReduceTranspose means the problem is solved transposed.
	ReduceTranspose
	// ReduceMirror means the problem is solved with mirrored columns.
	ReduceMirror
)

// String names the reduction.
func (r Reduction) String() string {
	switch r {
	case ReduceNone:
		return "none"
	case ReduceTranspose:
		return "transpose"
	case ReduceMirror:
		return "mirror"
	default:
		return fmt.Sprintf("Reduction(%d)", uint8(r))
	}
}
