package core

import (
	"context"
	"testing"

	"repro/internal/table"
)

// FuzzParseDepMask checks that the parser never panics and that anything
// it accepts round-trips through String.
func FuzzParseDepMask(f *testing.F) {
	for _, seed := range []string{"{W}", "{W,NW,N,NE}", "w, n", "", "{X}", "{,}", "NW"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseDepMask(s)
		if err != nil {
			return
		}
		if !m.Valid() {
			t.Fatalf("parser accepted invalid mask %08b from %q", m, s)
		}
		back, err := ParseDepMask(m.String())
		if err != nil || back != m {
			t.Fatalf("round trip failed for %q: %v %v", s, back, err)
		}
	})
}

// FuzzHeteroEquivalence drives the full pipeline — classification,
// symmetry reduction, strategy selection, simulated execution — on
// arbitrary masks, shapes and parameters, and checks cell-for-cell
// equality with the sequential reference.
func FuzzHeteroEquivalence(f *testing.F) {
	f.Add(uint8(3), uint8(9), uint8(9), int16(2), int16(3))
	f.Add(uint8(14), uint8(1), uint8(20), int16(-1), int16(-1))
	f.Fuzz(func(t *testing.T, mi, r, c uint8, tsw, tsh int16) {
		masks := AllDepMasks()
		m := masks[int(mi)%len(masks)]
		rows := int(r%24) + 1
		cols := int(c%24) + 1
		p := testProblem(m, rows, cols)
		want, err := Solve(p)
		if err != nil {
			t.Skip()
		}
		res, err := SolveHetero(p, Options{TSwitch: int(tsw), TShare: int(tsh)})
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(want, res.Grid) {
			t.Fatalf("mask %s %dx%d tsw=%d tsh=%d: hetero differs", m, rows, cols, tsw, tsh)
		}
	})
}

// FuzzAsyncDeps fuzzes the async executor's dependency-counter
// initialization over arbitrary (mask, rows, cols): construction must
// never panic, the counter totals must equal the brute-force edge count
// of the mask's dependency graph (and the seeded ready queue must hold
// exactly the zero-in-degree cells), and a full solve on the same
// small table must match the sequential oracle cell for cell.
func FuzzAsyncDeps(f *testing.F) {
	f.Add(uint8(3), uint8(9), uint8(9), uint8(4))
	f.Add(uint8(6), uint8(1), uint8(64), uint8(1))  // 1xN row
	f.Add(uint8(12), uint8(64), uint8(1), uint8(3)) // Nx1 column
	f.Add(uint8(9), uint8(2), uint8(2), uint8(7))   // 2x2 minimal
	f.Add(uint8(14), uint8(33), uint8(17), uint8(0))
	f.Fuzz(func(t *testing.T, mi, r, c, workers uint8) {
		masks := AllDepMasks()
		m := masks[int(mi)%len(masks)]
		rows := int(r%64) + 1
		cols := int(c%64) + 1
		p := testProblem(m, rows, cols)

		e, _, _, err := newAsyncEngine(context.Background(), p, Options{NativeWorkers: int(workers % 9)})
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force edge count: each cell contributes one edge per
		// in-bounds dependency under the mask.
		edges, sources := int64(0), int64(0)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				d := int64(0)
				if m.Has(DepW) && j > 0 {
					d++
				}
				if i > 0 {
					if m.Has(DepNW) && j > 0 {
						d++
					}
					if m.Has(DepN) {
						d++
					}
					if m.Has(DepNE) && j+1 < cols {
						d++
					}
				}
				edges += d
				if d == 0 {
					sources++
				}
			}
		}
		var got int64
		for idx := range e.counters {
			got += int64(e.counters[idx].Load())
		}
		if got != edges {
			t.Fatalf("mask %s %dx%d: counter total %d, want edge count %d", m, rows, cols, got, edges)
		}
		if q := e.tail.Load(); q != sources {
			t.Fatalf("mask %s %dx%d: %d cells seeded ready, want %d zero-in-degree cells", m, rows, cols, q, sources)
		}

		want, err := Solve(p)
		if err != nil {
			t.Skip()
		}
		gotGrid, err := SolveAsync(p, int(workers%9))
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(want, gotGrid) {
			t.Fatalf("mask %s %dx%d workers=%d: async differs from oracle", m, rows, cols, workers%9)
		}
	})
}

// FuzzPoolEquivalence drives the pool runtime — flat kernels, dynamic
// chunking, epoch barrier, band lookahead, symmetry adapters — with
// arbitrary masks, grid shapes (including the 1xN, Nx1 and 2x2
// degenerates), worker counts and chunk sizes, and checks cell-for-cell
// equality with the sequential reference.
func FuzzPoolEquivalence(f *testing.F) {
	f.Add(uint8(3), uint8(9), uint8(9), uint8(4), uint8(8), false)
	f.Add(uint8(6), uint8(1), uint8(64), uint8(3), uint8(1), true)   // 1xN row
	f.Add(uint8(12), uint8(64), uint8(1), uint8(2), uint8(0), false) // Nx1 column
	f.Add(uint8(9), uint8(2), uint8(2), uint8(7), uint8(255), false) // 2x2 minimal
	f.Fuzz(func(t *testing.T, mi, r, c, workers, chunk uint8, noLookahead bool) {
		masks := AllDepMasks()
		m := masks[int(mi)%len(masks)]
		rows := int(r%64) + 1
		cols := int(c%64) + 1
		p := testProblem(m, rows, cols)
		want, err := Solve(p)
		if err != nil {
			t.Skip()
		}
		got, err := SolveParallelOpt(p, Options{
			NativeWorkers:     int(workers % 9),
			NativeChunk:       int(chunk),
			NativeNoLookahead: noLookahead,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(want, got) {
			t.Fatalf("mask %s %dx%d workers=%d chunk=%d nolook=%v: pool differs",
				m, rows, cols, workers%9, chunk, noLookahead)
		}
	})
}
