package core

import (
	"testing"

	"repro/internal/table"
)

// FuzzParseDepMask checks that the parser never panics and that anything
// it accepts round-trips through String.
func FuzzParseDepMask(f *testing.F) {
	for _, seed := range []string{"{W}", "{W,NW,N,NE}", "w, n", "", "{X}", "{,}", "NW"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseDepMask(s)
		if err != nil {
			return
		}
		if !m.Valid() {
			t.Fatalf("parser accepted invalid mask %08b from %q", m, s)
		}
		back, err := ParseDepMask(m.String())
		if err != nil || back != m {
			t.Fatalf("round trip failed for %q: %v %v", s, back, err)
		}
	})
}

// FuzzHeteroEquivalence drives the full pipeline — classification,
// symmetry reduction, strategy selection, simulated execution — on
// arbitrary masks, shapes and parameters, and checks cell-for-cell
// equality with the sequential reference.
func FuzzHeteroEquivalence(f *testing.F) {
	f.Add(uint8(3), uint8(9), uint8(9), int16(2), int16(3))
	f.Add(uint8(14), uint8(1), uint8(20), int16(-1), int16(-1))
	f.Fuzz(func(t *testing.T, mi, r, c uint8, tsw, tsh int16) {
		masks := AllDepMasks()
		m := masks[int(mi)%len(masks)]
		rows := int(r%24) + 1
		cols := int(c%24) + 1
		p := testProblem(m, rows, cols)
		want, err := Solve(p)
		if err != nil {
			t.Skip()
		}
		res, err := SolveHetero(p, Options{TSwitch: int(tsw), TShare: int(tsh)})
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(want, res.Grid) {
			t.Fatalf("mask %s %dx%d tsw=%d tsh=%d: hetero differs", m, rows, cols, tsw, tsh)
		}
	})
}

// FuzzPoolEquivalence drives the pool runtime — flat kernels, dynamic
// chunking, epoch barrier, band lookahead, symmetry adapters — with
// arbitrary masks, grid shapes (including the 1xN, Nx1 and 2x2
// degenerates), worker counts and chunk sizes, and checks cell-for-cell
// equality with the sequential reference.
func FuzzPoolEquivalence(f *testing.F) {
	f.Add(uint8(3), uint8(9), uint8(9), uint8(4), uint8(8), false)
	f.Add(uint8(6), uint8(1), uint8(64), uint8(3), uint8(1), true)   // 1xN row
	f.Add(uint8(12), uint8(64), uint8(1), uint8(2), uint8(0), false) // Nx1 column
	f.Add(uint8(9), uint8(2), uint8(2), uint8(7), uint8(255), false) // 2x2 minimal
	f.Fuzz(func(t *testing.T, mi, r, c, workers, chunk uint8, noLookahead bool) {
		masks := AllDepMasks()
		m := masks[int(mi)%len(masks)]
		rows := int(r%64) + 1
		cols := int(c%64) + 1
		p := testProblem(m, rows, cols)
		want, err := Solve(p)
		if err != nil {
			t.Skip()
		}
		got, err := SolveParallelOpt(p, Options{
			NativeWorkers:     int(workers % 9),
			NativeChunk:       int(chunk),
			NativeNoLookahead: noLookahead,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(want, got) {
			t.Fatalf("mask %s %dx%d workers=%d chunk=%d nolook=%v: pool differs",
				m, rows, cols, workers%9, chunk, noLookahead)
		}
	})
}
