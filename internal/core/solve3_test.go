package core

import (
	"testing"
	"testing/quick"

	"repro/internal/table"
)

// all3Masks enumerates the 127 non-empty 3-D contributing sets.
func all3Masks() []Dep3Mask {
	var out []Dep3Mask
	for m := Dep3Mask(1); m <= dep3All; m++ {
		if m.Valid() {
			out = append(out, m)
		}
	}
	return out
}

// testProblem3 mixes every contributing predecessor with a positional term.
func testProblem3(m Dep3Mask, nx, ny, nz int) *Problem3[int64] {
	return &Problem3[int64]{
		Name: "test3-" + m.String(),
		NX:   nx, NY: ny, NZ: nz,
		Deps: m,
		F: func(i, j, k int, nb Neighbors3[int64]) int64 {
			v := int64(i*29+j*17+k*11) % 23
			if m.Has(Dep3X) {
				v += 2*nb.X + 1
			}
			if m.Has(Dep3Y) {
				v += 3 * nb.Y
			}
			if m.Has(Dep3Z) {
				v += nb.Z ^ 3
			}
			if m.Has(Dep3XY) {
				v += nb.XY % 97
			}
			if m.Has(Dep3XZ) {
				v += max(nb.XZ, v)
			}
			if m.Has(Dep3YZ) {
				v += nb.YZ / 2
			}
			if m.Has(Dep3XYZ) {
				v += nb.XYZ + 5
			}
			return v % 1_000_003
		},
		Boundary: func(i, j, k int) int64 { return int64(i + 2*j + 3*k) },
	}
}

func TestDep3MaskBasics(t *testing.T) {
	if len(all3Masks()) != 127 {
		t.Fatalf("3-D masks = %d, want 127 (2^7 - 1)", len(all3Masks()))
	}
	m := Dep3X | Dep3XYZ
	if m.String() != "{X,XYZ}" {
		t.Errorf("String = %q", m.String())
	}
	if !m.Valid() || Dep3Mask(0).Valid() || Dep3Mask(0x80).Valid() {
		t.Error("Valid wrong")
	}
}

func TestSolve3TinyByHand(t *testing.T) {
	// f = X + Y + Z + 1 with zero boundary counts weighted paths:
	// cell (1,1,1) = sum over the three axis predecessors.
	p := &Problem3[int64]{
		NX: 2, NY: 2, NZ: 2, Deps: Dep3X | Dep3Y | Dep3Z,
		F: func(i, j, k int, nb Neighbors3[int64]) int64 {
			return nb.X + nb.Y + nb.Z + 1
		},
	}
	g, err := Solve3(p)
	if err != nil {
		t.Fatal(err)
	}
	// (0,0,0)=1; (1,0,0)=(0,1,0)=(0,0,1)=2; (1,1,0)=(1,0,1)=(0,1,1)=5;
	// (1,1,1)=5+5+5+1=16.
	if got := g.At(1, 1, 1); got != 16 {
		t.Errorf("corner = %d, want 16", got)
	}
}

func TestSolve3Validates(t *testing.T) {
	if _, err := Solve3(&Problem3[int64]{NX: 0, NY: 1, NZ: 1, Deps: Dep3X}); err == nil {
		t.Error("bad dims should error")
	}
	if _, err := Solve3(&Problem3[int64]{NX: 1, NY: 1, NZ: 1, Deps: 0,
		F: func(int, int, int, Neighbors3[int64]) int64 { return 0 }}); err == nil {
		t.Error("empty mask should error")
	}
}

// Planes must respect every 3-D dependency: each predecessor of a plane-s
// cell lies on a strictly earlier plane.
func TestPlanesRespectAllDependencies(t *testing.T) {
	for bit, off := range dep3Offsets {
		s := off[0] + off[1] + off[2]
		if s >= 0 {
			t.Errorf("offset %s does not decrease the plane index", Dep3Mask(bit).String())
		}
	}
}

func TestSolveParallel3MatchesSequential(t *testing.T) {
	dims := [][3]int{{1, 1, 1}, {1, 5, 7}, {6, 1, 4}, {5, 5, 5}, {3, 8, 2}}
	// Exercise the axis masks, corner mask, full mask, and a mixed one.
	masks := []Dep3Mask{Dep3X, Dep3Z, Dep3X | Dep3Y | Dep3Z, Dep3XYZ, dep3All,
		Dep3X | Dep3YZ | Dep3XYZ}
	for _, m := range masks {
		for _, d := range dims {
			p := testProblem3(m, d[0], d[1], d[2])
			want, err := Solve3(p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SolveParallel3(p, 4)
			if err != nil {
				t.Fatalf("%s %v: %v", m, d, err)
			}
			if !table.Equal3(want, got) {
				t.Errorf("%s %v: parallel differs from sequential", m, d)
			}
		}
	}
}

func TestSolveHetero3MatchesSequential(t *testing.T) {
	for _, m := range []Dep3Mask{Dep3X | Dep3Y | Dep3Z, dep3All, Dep3XYZ} {
		p := testProblem3(m, 9, 11, 8)
		want, err := Solve3(p)
		if err != nil {
			t.Fatal(err)
		}
		for name, solver := range map[string]func(*Problem3[int64], Options) (*Result3[int64], error){
			"hetero": SolveHetero3[int64], "cpu": SolveCPUOnly3[int64], "gpu": SolveGPUOnly3[int64],
		} {
			res, err := solver(p, Options{TSwitch: 3, TShare: 2})
			if err != nil {
				t.Fatalf("%s %s: %v", m, name, err)
			}
			if !table.Equal3(want, res.Grid) {
				t.Errorf("%s %s: values differ", m, name)
			}
			if res.Duration() <= 0 {
				t.Errorf("%s %s: non-positive duration", m, name)
			}
		}
	}
}

func TestSolveHetero3AutoParams(t *testing.T) {
	p := testProblem3(Dep3X|Dep3Y|Dep3Z, 20, 20, 20)
	want, _ := Solve3(p)
	res, err := SolveHetero3(p, Options{TSwitch: -1, TShare: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal3(want, res.Grid) {
		t.Error("auto-param hetero3 differs")
	}
}

func TestSolveHetero3CellAccounting(t *testing.T) {
	p := testProblem3(dep3All, 12, 13, 14)
	res, err := SolveHetero3(p, Options{TSwitch: 5, TShare: 4, SkipCompute: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Timeline.Summarize()
	if st.CPUCells+st.GPUCells != 12*13*14 {
		t.Errorf("devices computed %d cells, want %d", st.CPUCells+st.GPUCells, 12*13*14)
	}
	if res.Grid != nil {
		t.Error("SkipCompute should leave Grid nil")
	}
}

// Fuzz across masks, shapes and parameters.
func TestSolve3EquivalenceFuzz(t *testing.T) {
	masks := all3Masks()
	f := func(mi, a, b, c, tsw, tsh uint8) bool {
		m := masks[int(mi)%len(masks)]
		nx := int(a%8) + 1
		ny := int(b%8) + 1
		nz := int(c%8) + 1
		p := testProblem3(m, nx, ny, nz)
		want, err := Solve3(p)
		if err != nil {
			return false
		}
		par, err := SolveParallel3(p, 2)
		if err != nil || !table.Equal3(want, par) {
			return false
		}
		het, err := SolveHetero3(p, Options{TSwitch: int(tsw % 10), TShare: int(tsh % 10)})
		if err != nil {
			return false
		}
		return table.Equal3(want, het.Grid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Shape test: the 3-D anti-diagonal strategy inherits the 2-D result —
// hetero beats GPU-only (launch-bound narrow planes go to the CPU).
func TestSolveHetero3BeatsGPUOnly(t *testing.T) {
	p := testProblem3(Dep3X|Dep3Y|Dep3Z, 192, 192, 192)
	o := Options{TSwitch: -1, TShare: -1, SkipCompute: true}
	het, err := SolveHetero3(p, o)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := SolveGPUOnly3(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if het.Duration() > gpu.Duration() {
		t.Errorf("hetero3 %v should not lose to gpu-only %v", het.Duration(), gpu.Duration())
	}
}

func TestSolveTiled3MatchesSequential(t *testing.T) {
	for _, m := range []Dep3Mask{Dep3X | Dep3Y | Dep3Z, dep3All, Dep3XYZ, Dep3YZ | Dep3X} {
		for _, tile := range []int{1, 3, 8} {
			p := testProblem3(m, 9, 7, 11)
			want, err := Solve3(p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SolveTiled3(p, tile, 3)
			if err != nil {
				t.Fatalf("%s tile=%d: %v", m, tile, err)
			}
			if !table.Equal3(want, got) {
				t.Errorf("%s tile=%d: tiled differs from sequential", m, tile)
			}
		}
	}
}

func TestSolveTiled3Errors(t *testing.T) {
	p := testProblem3(Dep3X, 3, 3, 3)
	if _, err := SolveTiled3(p, 0, 2); err == nil {
		t.Error("tile 0 should error")
	}
	if _, err := SolveTiled3(&Problem3[int64]{NX: 0, NY: 1, NZ: 1, Deps: Dep3X}, 2, 2); err == nil {
		t.Error("invalid problem should error")
	}
}

// Property: 3-D tiled and sequential agree for random masks, dims and tiles.
func TestSolveTiled3Property(t *testing.T) {
	masks := all3Masks()
	f := func(mi, a, b, c, tl uint8) bool {
		m := masks[int(mi)%len(masks)]
		p := testProblem3(m, int(a%7)+1, int(b%7)+1, int(c%7)+1)
		want, err := Solve3(p)
		if err != nil {
			return false
		}
		got, err := SolveTiled3(p, int(tl%5)+1, 2)
		if err != nil {
			return false
		}
		return table.Equal3(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveParallel3LargePlanesChunked(t *testing.T) {
	// Planes large enough to exceed the internal chunk threshold so real
	// goroutine fan-out happens.
	p := testProblem3(Dep3X|Dep3Y|Dep3Z, 40, 40, 40)
	want, err := Solve3(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveParallel3(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal3(want, got) {
		t.Error("chunked parallel3 differs from sequential")
	}
}
