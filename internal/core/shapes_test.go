package core

import (
	"testing"

	"repro/internal/hetsim"
	"repro/internal/table"
)

// These tests pin the qualitative performance relationships the paper's
// figures report, using the timing model alone (SkipCompute). They are the
// contract the experiment harness relies on; absolute numbers are free to
// drift with recalibration, the orderings are not.

func levenshteinLike(n int) *Problem[int64] {
	return &Problem[int64]{
		Name: "lev", Rows: n, Cols: n, Deps: DepW | DepNW | DepN,
		F: func(i, j int, nb Neighbors[int64]) int64 {
			return min(nb.W, nb.NW, nb.N) + 1
		},
		BytesPerCell: 4,
	}
}

func horizontalCase2(n int) *Problem[int64] {
	return &Problem[int64]{
		Name: "h2", Rows: n, Cols: n, Deps: DepNW | DepN | DepNE,
		F: func(i, j int, nb Neighbors[int64]) int64 {
			return min(nb.NW, nb.N, nb.NE) + 1
		},
		BytesPerCell: 4,
		InputBytes:   n * n * 4,
	}
}

func knightLike(n int) *Problem[int64] {
	return &Problem[int64]{
		Name: "kn", Rows: n, Cols: n, Deps: DepW | DepNW | DepN | DepNE,
		F: func(i, j int, nb Neighbors[int64]) int64 {
			return nb.W + nb.NW + nb.N + nb.NE + 1
		},
		BytesPerCell: 4,
		InputBytes:   n * n,
	}
}

func simTimes(t *testing.T, p *Problem[int64], plat *hetsim.Platform) (cpu, gpu, het int64) {
	t.Helper()
	o := Options{Platform: plat, TSwitch: -1, TShare: -1, SkipCompute: true}
	rc, err := SolveCPUOnly(p, o)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := SolveGPUOnly(p, o)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := SolveHetero(p, o)
	if err != nil {
		t.Fatal(err)
	}
	return int64(rc.Time), int64(rg.Time), int64(rh.Time)
}

// Fig 10 shape: for anti-diagonal Levenshtein the heterogeneous framework
// beats the pure GPU at every size (low-work regions cost the GPU dearly),
// and the margin grows with the table.
func TestShapeFig10LevenshteinHeteroBeatsGPU(t *testing.T) {
	for _, plat := range hetsim.Platforms() {
		var prevGap int64 = -1 << 62
		for _, n := range []int{1024, 2048, 4096, 8192} {
			cpu, gpu, het := simTimes(t, levenshteinLike(n), plat)
			if het > gpu {
				t.Errorf("%s n=%d: hetero %d > gpu %d", plat.Name, n, het, gpu)
			}
			// On tables so small that t_switch degenerates to CPU-only, the
			// phase plumbing may cost a fraction of a percent over pure CPU.
			if het > cpu+cpu/100 {
				t.Errorf("%s n=%d: hetero %d > cpu %d", plat.Name, n, het, cpu)
			}
			if n >= 4096 {
				gap := gpu - het
				if gap < prevGap/2 {
					t.Errorf("%s n=%d: gpu-hetero gap shrank sharply: %d after %d", plat.Name, n, gap, prevGap)
				}
				prevGap = gap
			}
		}
	}
}

// Fig 10 shape: the GPU overtakes the multicore CPU as tables grow.
func TestShapeFig10GPUOvertakesCPU(t *testing.T) {
	for _, plat := range hetsim.Platforms() {
		cpuS, gpuS, _ := simTimes(t, levenshteinLike(1024), plat)
		cpuL, gpuL, _ := simTimes(t, levenshteinLike(8192), plat)
		if gpuL >= cpuL {
			t.Errorf("%s: at 8192 gpu %d should beat cpu %d", plat.Name, gpuL, cpuL)
		}
		// Relative GPU advantage must improve with size.
		if float64(gpuL)/float64(cpuL) >= float64(gpuS)/float64(cpuS) {
			t.Errorf("%s: GPU/CPU ratio did not improve with size", plat.Name)
		}
	}
}

// Fig 13 shape: for horizontal case-2 the per-iteration pinned exchanges
// make the framework no better than the GPU on small tables, but work
// partitioning pulls it ahead as tables grow.
func TestShapeFig13CheckerboardCrossover(t *testing.T) {
	plat := hetsim.HeteroHigh()
	_, gpuSmall, hetSmall := simTimes(t, horizontalCase2(1024), plat)
	if hetSmall < gpuSmall*99/100 {
		t.Errorf("small table: hetero %d clearly beats gpu %d; paper expects overheads to dominate", hetSmall, gpuSmall)
	}
	_, gpuLarge, hetLarge := simTimes(t, horizontalCase2(8192), plat)
	if hetLarge >= gpuLarge {
		t.Errorf("large table: hetero %d should beat gpu %d", hetLarge, gpuLarge)
	}
}

// Fig 12 shape: for knight-move dithering the CPU wins small images (the
// framework matches it by degenerating to CPU-only), the GPU improves with
// size, and the framework is strictly best at large sizes.
func TestShapeFig12DitherShapes(t *testing.T) {
	for _, plat := range hetsim.Platforms() {
		cpuS, gpuS, hetS := simTimes(t, knightLike(512), plat)
		if cpuS >= gpuS {
			t.Errorf("%s small: cpu %d should beat gpu %d", plat.Name, cpuS, gpuS)
		}
		if hetS > cpuS*101/100 {
			t.Errorf("%s small: hetero %d should track cpu %d", plat.Name, hetS, cpuS)
		}
		cpuL, gpuL, hetL := simTimes(t, knightLike(4096), plat)
		if hetL >= cpuL || hetL >= gpuL {
			t.Errorf("%s large: hetero %d should beat cpu %d and gpu %d", plat.Name, hetL, cpuL, gpuL)
		}
	}
}

// Fig 8 shape: executing an {NW} problem via the genuine inverted-L
// strategy is slower than via horizontal case-1, on CPU-only, GPU-only and
// heterogeneous execution alike — uniform fronts and a coalescing-friendly
// row layout win (§V-B).
func TestShapeFig8InvertedLSlowerThanHorizontal(t *testing.T) {
	p := &Problem[int64]{
		Name: "il", Rows: 4096, Cols: 4096, Deps: DepNW,
		F:            func(i, j int, nb Neighbors[int64]) int64 { return max(nb.NW, 0) + 1 },
		BytesPerCell: 4,
	}
	plat := hetsim.HeteroHigh()
	for name, solver := range map[string]func(*Problem[int64], Options) (*Result[int64], error){
		"cpu": SolveCPUOnly[int64], "gpu": SolveGPUOnly[int64], "hetero": SolveHetero[int64],
	} {
		// The inverted-L arm reproduces the paper's implementation: a naive
		// row-major table, under which L-shaped fronts are strided on the
		// CPU and uncoalesced on the GPU — which is precisely why §V-B
		// prefers horizontal case-1 with its naturally coalescing-friendly
		// row layout.
		oi := Options{Platform: plat, TSwitch: -1, TShare: -1, SkipCompute: true,
			PreferInvertedL: true, Layout: table.RowMajor{}}
		oh := Options{Platform: plat, TSwitch: -1, TShare: -1, SkipCompute: true}
		ri, err := solver(p, oi)
		if err != nil {
			t.Fatal(err)
		}
		rh, err := solver(p, oh)
		if err != nil {
			t.Fatal(err)
		}
		if ri.Time <= rh.Time {
			t.Errorf("%s: inverted-L %v should be slower than horizontal %v", name, ri.Time, rh.Time)
		}
	}
}

// §IV-C ablation: disabling the transfer pipeline cannot make anything
// faster, and must hurt one-way horizontal sharing.
func TestShapePipelineAblation(t *testing.T) {
	p := &Problem[int64]{
		Name: "h1", Rows: 4096, Cols: 4096, Deps: DepNW | DepN,
		F:            func(i, j int, nb Neighbors[int64]) int64 { return min(nb.NW, nb.N) + 1 },
		BytesPerCell: 4,
	}
	base := Options{TSwitch: -1, TShare: -1, SkipCompute: true}
	on, err := SolveHetero(p, base)
	if err != nil {
		t.Fatal(err)
	}
	off := base
	off.DisablePipeline = true
	offRes, err := SolveHetero(p, off)
	if err != nil {
		t.Fatal(err)
	}
	if offRes.Time <= on.Time {
		t.Errorf("unpipelined %v should be slower than pipelined %v", offRes.Time, on.Time)
	}
}

// §IV-C case-2 ablation: pageable boundary transfers slow two-way patterns.
func TestShapePinnedAblation(t *testing.T) {
	p := horizontalCase2(4096)
	base := Options{TSwitch: -1, TShare: -1, SkipCompute: true}
	pinned, err := SolveHetero(p, base)
	if err != nil {
		t.Fatal(err)
	}
	pageable := base
	pageable.UsePageable = true
	pg, err := SolveHetero(p, pageable)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Time < pinned.Time {
		t.Errorf("pageable %v should not beat pinned %v", pg.Time, pinned.Time)
	}
}

// §IV-B ablation: a mismatched (row-major) layout slows the GPU on
// anti-diagonal problems via uncoalesced access.
func TestShapeCoalescingAblation(t *testing.T) {
	p := levenshteinLike(2048)
	base := Options{TSwitch: 0, TShare: 0, SkipCompute: true}
	coalesced, err := SolveGPUOnly(p, base)
	if err != nil {
		t.Fatal(err)
	}
	bad := base
	bad.Layout = table.RowMajor{}
	uncoalesced, err := SolveGPUOnly(p, bad)
	if err != nil {
		t.Fatal(err)
	}
	if uncoalesced.Time <= coalesced.Time {
		t.Errorf("uncoalesced %v should be slower than coalesced %v", uncoalesced.Time, coalesced.Time)
	}
}

// §IV-A ablation: thread-per-cell CPU execution loses to chunking.
func TestShapeThreadPerCellAblation(t *testing.T) {
	p := levenshteinLike(1024)
	base := Options{TSwitch: -1, TShare: -1, SkipCompute: true}
	chunked, err := SolveCPUOnly(p, base)
	if err != nil {
		t.Fatal(err)
	}
	tpc := base
	tpc.CPUThreadPerCell = true
	perCell, err := SolveCPUOnly(p, tpc)
	if err != nil {
		t.Fatal(err)
	}
	if perCell.Time <= chunked.Time {
		t.Errorf("thread-per-cell %v should be slower than chunked %v", perCell.Time, chunked.Time)
	}
}
