package core

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/table"
	"repro/internal/trace"
)

// Persistent worker-pool wavefront runtime.
//
// The seed SolveParallel spawned fresh goroutines and took a full
// sync.WaitGroup barrier on every wavefront: for an 8k x 8k anti-diagonal
// problem that is ~16k spawn/barrier cycles, exactly the dispatch-overhead
// regime the paper's t_switch analysis warns about on the GPU side. This
// file replaces it with a pool that is started once per solve:
//
//   - workers pull chunks off the current front through an atomic cursor
//     (dynamic chunking), so ragged fronts from the Inverted-L and
//     Knight-Move patterns balance automatically;
//   - fronts are separated by a reusable epoch barrier — the last worker
//     to arrive advances the front state and releases the others by
//     closing a gate channel (channel close gives the happens-before edge
//     that publishes the new front state);
//   - runs of fronts at or below one chunk are executed inline by the
//     advancing worker without waking anyone: the low-work triangles at
//     the start and end of grow-shrink patterns degenerate to pure serial
//     execution with zero synchronization, the native analogue of the
//     paper's t_switch low-work regions;
//   - Horizontal-pattern problems (constant-width fronts, no W
//     dependency) can skip the global barrier entirely: each worker owns
//     a column band and hands an epoch token to its neighbours after each
//     row, so synchronization is O(1) point-to-point waits per row — the
//     native analogue of the paper's pipelined one-way transfers
//     (runBands).
//
// Cancellation: the runtime polls the context's done channel at chunk
// granularity (a non-blocking receive per cursor bump, skipped entirely for
// uncancellable contexts). A worker that observes cancellation stops
// claiming chunks and arrives at the barrier as usual; the last arriver
// sees the flag, closes the gate with the stop bit set, and every worker
// exits promptly — the barrier protocol itself is the shutdown path, so no
// goroutine can be left parked. The interrupted solve returns *Canceled.
//
// Instrumentation: with a non-nil Collector the pool counts chunk claims,
// cells, and kernel time per worker (accumulated in worker-local state and
// reported once after the join). With a nil Collector the only residue is
// one nil test per chunk claim.

// defaultNativeChunk is the number of cells a worker claims per cursor
// bump. It doubles as the serial cutoff: fronts that fit in one chunk run
// inline on the advancing worker.
const defaultNativeChunk = 512

// defaultPoolWorkers resolves the pool worker count: the native runtime is
// compute-bound, so the default is capped at the physical core count —
// workers beyond the hardware only lengthen the per-front barrier (every
// extra worker is one more scheduler round-trip per epoch with zero added
// throughput). This is the documented Options.NativeWorkers default:
// min(GOMAXPROCS, NumCPU).
func defaultPoolWorkers() int {
	return min(runtime.GOMAXPROCS(0), runtime.NumCPU())
}

// poolWorkerStat is one worker's instrumentation state, local to the worker
// during the solve (no sharing, no atomics) and reported after the join.
type poolWorkerStat struct {
	chunks int
	cells  int
	busy   time.Duration
}

// workerPool is the reusable barrier state shared by the pool workers.
// Front-describing fields (front, size, frontT0) are written only by the
// advancing worker between epochs and published to the others by the gate
// close.
type workerPool struct {
	workers int
	chunk   int64
	fronts  int
	sizeOf  func(t int) int
	run     func(t, lo, hi int)

	done  <-chan struct{}  // context done channel; nil = uncancellable
	stats []poolWorkerStat // per-worker instrumentation; nil = collector off
	lanes []*trace.Lane    // per-worker trace lanes; nil = tracer off

	front   int       // current front index
	size    int64     // current front size
	frontT0 time.Time // when the current front opened (tracer on only)

	cursor    atomic.Int64  // next unclaimed cell of the current front
	remaining atomic.Int64  // workers still computing the current front
	canceled  atomic.Bool   // set by any worker that observes ctx done
	gate      chan struct{} // closed to release parked workers into the next epoch
	stop      bool          // set by the advancer before the final gate close
}

// poolConfig bundles the cross-cutting knobs of the pool runtime: the
// executor name (error messages, pprof labels), worker/chunk sizing, and
// the two observability sinks. The zero values of workers and chunk select
// the documented defaults.
type poolConfig struct {
	solver  string
	phase   string // pprof label: executed pattern / "blocks" / "planes"
	workers int
	chunk   int
	coll    Collector
	rec     *trace.Recorder
}

// poolLabels builds the pprof label set attached to every pool goroutine,
// so CPU profiles segment by solver, wavefront phase, and worker.
func (cfg *poolConfig) poolLabels(w int) pprof.LabelSet {
	return pprof.Labels(
		"lddp_solver", cfg.solver,
		"lddp_phase", cfg.phase,
		"lddp_worker", strconv.Itoa(w),
	)
}

// runWavefronts executes fronts [0, fronts) of a wavefront space on a
// persistent pool: size(t) is the cell count of front t and run(t, lo, hi)
// computes its cells [lo, hi). run must be safe for concurrent calls on
// disjoint ranges of one front. cfg.workers <= 1 degenerates to a serial
// sweep with no goroutines; cfg.chunk <= 0 selects defaultNativeChunk;
// cfg.workers <= 0 selects the documented default min(GOMAXPROCS, NumCPU).
//
// On cancellation runWavefronts returns *Canceled (solver names the
// interrupted executor in the error); the computed prefix of the table is
// left in place but the caller must treat the solve as failed.
func runWavefronts(ctx context.Context, cfg poolConfig, fronts int, size func(t int) int, run func(t, lo, hi int)) error {
	if fronts <= 0 {
		return nil
	}
	chunk := cfg.chunk
	if chunk <= 0 {
		chunk = defaultNativeChunk
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = defaultPoolWorkers()
	}
	done := ctxDone(ctx)
	var lane0 *trace.Lane
	if cfg.rec != nil {
		lane0 = cfg.rec.Lane(0)
	}
	// A front is worth parallelizing only when it exceeds one chunk, so a
	// problem whose widest front fits in a chunk never starts a worker.
	t := 0
	for ; t < fronts; t++ {
		if isDone(done) {
			return canceledErr(ctx, cfg.solver, t)
		}
		s := size(t)
		if workers > 1 && s > chunk {
			break
		}
		if lane0 == nil {
			run(t, 0, s)
		} else {
			t0 := time.Now()
			run(t, 0, s)
			lane0.SpanFrom(trace.KindInline, t, 0, int64(s), t0)
		}
	}
	if t == fronts {
		return nil
	}

	p := &workerPool{
		workers: workers,
		chunk:   int64(chunk),
		fronts:  fronts,
		sizeOf:  size,
		run:     run,
		done:    done,
		front:   t,
		size:    int64(size(t)),
		gate:    make(chan struct{}),
	}
	if cfg.coll != nil {
		p.stats = make([]poolWorkerStat, workers)
	}
	if cfg.rec != nil {
		p.lanes = make([]*trace.Lane, workers)
		for w := range p.lanes {
			p.lanes[w] = cfg.rec.Lane(w)
		}
		p.frontT0 = time.Now()
	}
	p.remaining.Store(int64(workers))

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for i := 1; i < workers; i++ {
		go func(w int) {
			defer wg.Done()
			pprof.Do(ctx, cfg.poolLabels(w), func(context.Context) { p.work(w) })
		}(i)
	}
	// The caller participates as worker 0 (labels restored by pprof.Do).
	pprof.Do(ctx, cfg.poolLabels(0), func(context.Context) { p.work(0) })
	wg.Wait()

	if cfg.coll != nil {
		wall := time.Since(start)
		for w := range p.stats {
			st := &p.stats[w]
			cfg.coll.WorkerStats(WorkerStats{
				Worker: w, Chunks: st.chunks, Cells: st.cells,
				Busy: st.busy, Wall: wall,
			})
		}
	}
	if p.canceled.Load() {
		return canceledErr(ctx, cfg.solver, p.front)
	}
	return nil
}

// work is the pool worker loop: claim chunks, arrive at the barrier, and
// either advance the epoch (last arriver) or park on the gate.
func (p *workerPool) work(w int) {
	var st *poolWorkerStat
	if p.stats != nil {
		st = &p.stats[w]
	}
	var ln *trace.Lane
	if p.lanes != nil {
		ln = p.lanes[w]
	}
	runSpan := func(kind trace.Kind, t, lo, hi int) {
		if st == nil && ln == nil {
			p.run(t, lo, hi)
			return
		}
		t0 := time.Now()
		p.run(t, lo, hi)
		if st != nil {
			st.busy += time.Since(t0)
			st.chunks++
			st.cells += hi - lo
		}
		if ln != nil {
			ln.SpanFrom(kind, t, int64(lo), int64(hi), t0)
		}
	}
	for {
		// Claim chunks of the current front until the cursor runs past its
		// size. Add returns the cursor after the bump, so lo is the start
		// of the span this worker just claimed. A canceled worker stops
		// claiming and falls through to the barrier — the shutdown rides
		// the normal epoch protocol.
		size := p.size
		for !p.canceled.Load() {
			if isDone(p.done) {
				p.canceled.Store(true)
				break
			}
			lo := p.cursor.Add(p.chunk) - p.chunk
			if lo >= size {
				break
			}
			hi := lo + p.chunk
			if hi > size {
				hi = size
			}
			runSpan(trace.KindChunk, p.front, int(lo), int(hi))
		}

		// Capture the gate and the front before announcing arrival: once
		// remaining hits zero the advancer may swap p.gate for the next
		// epoch, and a worker that loaded the new gate would park for a
		// close that already happened (likewise p.front for the barrier
		// span's front attribution).
		gate := p.gate
		arrivedFront := p.front
		var barrierT0 time.Time
		if ln != nil {
			barrierT0 = time.Now()
		}
		if p.remaining.Add(-1) > 0 {
			<-gate
			if ln != nil {
				ln.SpanFrom(trace.KindBarrier, arrivedFront, 0, 0, barrierT0)
			}
			if p.stop {
				return
			}
			continue
		}

		// Last arriver: advance. A pending cancellation terminates the pool
		// here, with every other worker parked and p.front recording the
		// first front not known to be fully computed. Otherwise fronts at
		// or below one chunk are executed inline — the others are parked,
		// so no synchronization is needed — until a front wide enough to
		// share shows up.
		if p.canceled.Load() {
			p.stop = true
			close(gate)
			return
		}
		if ln != nil {
			// The completed front's wall span, from gate open to last
			// arrival.
			ln.SpanFrom(trace.KindFront, arrivedFront, int64(size), 0, p.frontT0)
		}
		t := p.front + 1
		for ; t < p.fronts; t++ {
			if isDone(p.done) {
				p.canceled.Store(true)
				p.front = t
				p.stop = true
				close(gate)
				return
			}
			s := p.sizeOf(t)
			if s > int(p.chunk) {
				break
			}
			runSpan(trace.KindInline, t, 0, s)
		}
		if t == p.fronts {
			p.stop = true
			close(gate)
			return
		}
		p.front = t
		p.size = int64(p.sizeOf(t))
		if ln != nil {
			p.frontT0 = time.Now()
		}
		p.cursor.Store(0)
		p.remaining.Store(int64(p.workers))
		p.gate = make(chan struct{})
		close(gate) // publishes every write above to the woken workers
	}
}

// runBands executes a Horizontal-pattern space (rows fronts of constant
// width cols) without any global barrier: worker w owns the column band
// [bandStart(w), bandStart(w+1)) and sweeps it top to bottom, synchronizing
// only with its immediate neighbours. After finishing a row, a worker
// deposits a token for its right neighbour (when needLeft: the neighbour's
// NW reads cross the shared boundary) and its left neighbour (when
// needRight: NE reads); before starting row t > 0 it consumes one token
// from each side it depends on, which guarantees the neighbour has finished
// row t-1. Token channels are buffered to rows so producers never block;
// channel communication provides the happens-before edges for the boundary
// cells. With neither flag set ({N}-only problems) workers run completely
// independently.
//
// Cancellation: every token wait also selects on the context's done
// channel, and each worker polls it once per row, so a canceled solve
// unwinds without any worker blocking on a token its neighbour will never
// send. The lowest unfinished row across the workers is reported as
// Canceled.Front.
func runBands(ctx context.Context, cfg poolConfig, rows, cols int, needLeft, needRight bool, run func(t, lo, hi int)) error {
	workers := cfg.workers
	if workers <= 0 {
		workers = defaultPoolWorkers()
	}
	if workers > cols {
		workers = cols
	}
	done := ctxDone(ctx)
	if workers <= 1 {
		for t := 0; t < rows; t++ {
			if isDone(done) {
				return canceledErr(ctx, "bands", t)
			}
			run(t, 0, cols)
		}
		return nil
	}
	lanes := make([]*trace.Lane, workers)
	if cfg.rec != nil {
		for w := range lanes {
			lanes[w] = cfg.rec.Lane(w)
		}
	}
	// fromLeft[w] carries tokens from worker w-1 to w; fromRight[w] from
	// w+1 to w. Only the channels a worker will consume are allocated.
	fromLeft := make([]chan struct{}, workers)
	fromRight := make([]chan struct{}, workers)
	for w := 1; w < workers; w++ {
		if needLeft {
			fromLeft[w] = make(chan struct{}, rows)
		}
		if needRight {
			fromRight[w-1] = make(chan struct{}, rows)
		}
	}
	bandStart := func(w int) int { return w * cols / workers }

	// lowRow tracks min(first unfinished row) across canceled workers.
	var lowRow atomic.Int64
	lowRow.Store(int64(rows))

	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			pprof.Do(ctx, cfg.poolLabels(w), func(context.Context) {
				bandWork(w, workers, rows, bandStart(w), bandStart(w+1), needLeft, needRight, fromLeft, fromRight, done, &lowRow, lanes[w], run)
			})
		}(w)
	}
	pprof.Do(ctx, cfg.poolLabels(0), func(context.Context) {
		bandWork(0, workers, rows, bandStart(0), bandStart(1), needLeft, needRight, fromLeft, fromRight, done, &lowRow, lanes[0], run)
	})
	wg.Wait()

	if low := lowRow.Load(); low < int64(rows) {
		return canceledErr(ctx, "bands", int(low))
	}
	return nil
}

// bandWork sweeps one worker's column band down all rows, exchanging epoch
// tokens with its neighbours. On cancellation it records its first
// unfinished row into lowRow and returns. A non-nil lane records one
// KindRow span per row plus KindHandoff spans for the token waits.
func bandWork(w, workers, rows, lo, hi int, needLeft, needRight bool, fromLeft, fromRight []chan struct{}, done <-chan struct{}, lowRow *atomic.Int64, ln *trace.Lane, run func(t, lo, hi int)) {
	waitLeft := needLeft && w > 0
	waitRight := needRight && w < workers-1
	sendRight := needLeft && w < workers-1
	sendLeft := needRight && w > 0
	abort := func(t int) {
		// CAS-min: remember the lowest unfinished row across all workers.
		for {
			cur := lowRow.Load()
			if int64(t) >= cur || lowRow.CompareAndSwap(cur, int64(t)) {
				return
			}
		}
	}
	for t := 0; t < rows; t++ {
		if isDone(done) {
			abort(t)
			return
		}
		if t > 0 {
			// One token per row: t tokens consumed means the neighbour has
			// finished rows [0, t), covering every NW/NE read of row t.
			if waitLeft {
				var t0 time.Time
				if ln != nil {
					t0 = time.Now()
				}
				select {
				case <-fromLeft[w]:
				case <-done:
					abort(t)
					return
				}
				if ln != nil {
					ln.SpanFrom(trace.KindHandoff, t, 0, 0, t0)
				}
			}
			if waitRight {
				var t0 time.Time
				if ln != nil {
					t0 = time.Now()
				}
				select {
				case <-fromRight[w]:
				case <-done:
					abort(t)
					return
				}
				if ln != nil {
					ln.SpanFrom(trace.KindHandoff, t, 1, 0, t0)
				}
			}
		}
		if ln == nil {
			run(t, lo, hi)
		} else {
			t0 := time.Now()
			run(t, lo, hi)
			ln.SpanFrom(trace.KindRow, t, int64(lo), int64(hi), t0)
		}
		if sendRight {
			fromLeft[w+1] <- struct{}{}
		}
		if sendLeft {
			fromRight[w-1] <- struct{}{}
		}
	}
}

// solveParallelPool is the pool-backed native solve shared by SolveParallel
// and SolveParallelOpt: canonicalize, build the flat kernel, and drive it
// with the band runtime (Horizontal, unless disabled) or the barrier pool.
func solveParallelPool[T any](ctx context.Context, p *Problem[T], opts Options) (grid *table.Grid[T], err error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	workers := opts.NativeWorkers
	if workers <= 0 {
		workers = defaultPoolWorkers()
	}
	cp, canonical, _, undo := canonicalize(p)
	w := NewWavefronts(canonical, cp.Rows, cp.Cols)
	g := table.NewGrid[T](cp.Rows, cp.Cols, nil)

	coll := opts.Collector
	useBands := canonical == Horizontal && !opts.NativeNoLookahead && workers > 1
	solver := "pool"
	if useBands {
		solver = "bands"
	} else if workers == 1 {
		solver = "sequential"
	}
	var start time.Time
	if coll != nil {
		coll.SolveStart(SolveInfo{
			Solver: solver, Problem: p.Name,
			Pattern: Classify(p.Deps).String(), Executed: canonical.String(),
			Rows: cp.Rows, Cols: cp.Cols, Fronts: w.Fronts, Workers: workers,
		})
		for t := 0; t < w.Fronts; t++ {
			coll.FrontSize(w.Size(t))
		}
		start = time.Now()
		defer func() {
			coll.Phase("native", time.Since(start))
			coll.SolveEnd(err)
		}()
	}
	tr := opts.Tracer
	if tr != nil {
		tr.BeginSolve(trace.Meta{
			Solver: solver, Problem: p.Name,
			Pattern: Classify(p.Deps).String(), Executed: canonical.String(),
			Rows: cp.Rows, Cols: cp.Cols, Fronts: w.Fronts, Workers: workers,
		})
		defer tr.EndSolve()
	}
	cfg := poolConfig{
		solver: solver, phase: canonical.String(),
		workers: workers, chunk: opts.NativeChunk,
		coll: coll, rec: tr,
	}

	if workers == 1 {
		if flat := g.RowMajorData(); flat != nil {
			// Serial degenerate case: wavefront order buys nothing without
			// concurrency, so sweep row-major (cache-optimal, and
			// dependency-safe for every contributing set, as in Solve).
			var t0 int64
			var lane *trace.Lane
			if tr != nil {
				lane = tr.Lane(0)
				t0 = lane.Clock()
			}
			row, ok := newFlatKernel(cp, flat, cp.Rows, cp.Cols).fillRowMajor(ctxDone(ctx))
			if lane != nil {
				lane.SpanLabel(trace.KindPhase, "fill:row-major", -1, int64(cp.Rows)*int64(cp.Cols), 0, t0)
			}
			if !ok {
				return nil, canceledErr(ctx, "sequential", row)
			}
			return undo(g), nil
		}
	}

	run := frontRunner(cp, w, g)
	if useBands {
		// Constant-width fronts with no W dependency: column bands with
		// point-to-point neighbour handoff instead of a global barrier.
		needLeft := cp.Deps.Has(DepNW)
		needRight := cp.Deps.Has(DepNE)
		if err := runBands(ctx, cfg, w.Fronts, cp.Cols, needLeft, needRight, run); err != nil {
			return nil, err
		}
		return undo(g), nil
	}
	if err := runWavefronts(ctx, cfg, w.Fronts, w.Size, run); err != nil {
		return nil, err
	}
	return undo(g), nil
}
