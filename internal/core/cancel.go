package core

import (
	"context"
	"fmt"
)

// Canceled is the error every solver returns when its context is canceled
// or its deadline expires mid-solve. It unwraps to the context's cause, so
// errors.Is(err, context.Canceled) and errors.Is(err, context.DeadlineExceeded)
// work as expected.
//
// Cancellation discards partial results: the solver returns a nil grid (or
// nil result) alongside the error, because a partially filled DP table has
// no well-defined answer cell. Front records how far the sweep got — the
// index of the first wavefront (or row, or plane) that is not known to be
// fully computed — which callers can use for progress accounting or
// checkpoint-restart policies.
type Canceled struct {
	// Solver names the executor that was interrupted ("pool", "bands",
	// "hetero", "tiled", ...).
	Solver string
	// Front is the index of the first front not known to be fully computed.
	Front int
	// Err is the context's cause (context.Canceled, context.DeadlineExceeded,
	// or a custom cause).
	Err error
}

func (c *Canceled) Error() string {
	return fmt.Sprintf("core: %s solve canceled at front %d: %v", c.Solver, c.Front, c.Err)
}

// Unwrap exposes the context error for errors.Is / errors.As chains.
func (c *Canceled) Unwrap() error { return c.Err }

// canceledErr builds the Canceled error for a solve interrupted at front.
func canceledErr(ctx context.Context, solver string, front int) error {
	err := context.Cause(ctx)
	if err == nil {
		err = context.Canceled
	}
	return &Canceled{Solver: solver, Front: front, Err: err}
}

// ctxDone returns the context's done channel, or nil for contexts that can
// never be canceled (context.Background, context.TODO, nil). A nil channel
// lets the hot paths skip every cancellation check with one pointer test.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// isDone is the polling primitive of the cancellation checks: a non-blocking
// receive on the done channel. done == nil (uncancellable context) is free.
func isDone(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}
