package core

import (
	"context"
	"fmt"

	"repro/internal/table"
)

// SolveBanded fills only the cells within |i-j| <= band of the DP table,
// the classic Ukkonen band restriction for alignment-style anti-diagonal
// problems. Cells outside the band are set to outOfBand(i, j), and in-band
// cells observe that value when a contributing neighbour falls outside the
// band (out-of-table neighbours still resolve through p.Boundary).
//
// For contracting recurrences like edit distance, the banded result equals
// the full solve whenever the true answer stays within the band (distance
// <= band), at O(rows x band) cost instead of O(rows x cols). The caller
// chooses outOfBand to be absorbing for the recurrence (+infinity for
// minimizations).
func SolveBanded[T any](p *Problem[T], band int, outOfBand BoundaryFunc[T]) (*table.Grid[T], error) {
	return SolveBandedContext(context.Background(), p, band, outOfBand)
}

// SolveBandedContext is SolveBanded honoring a context, polled once per
// row. A canceled solve returns a nil grid and a *Canceled error.
func SolveBandedContext[T any](ctx context.Context, p *Problem[T], band int, outOfBand BoundaryFunc[T]) (*table.Grid[T], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if band < 0 {
		return nil, fmt.Errorf("core: band %d negative", band)
	}
	if outOfBand == nil {
		return nil, fmt.Errorf("core: outOfBand function required (an absorbing value for the recurrence)")
	}
	done := ctxDone(ctx)
	g := table.NewGrid[T](p.Rows, p.Cols, nil)
	g.Fill(func(i, j int) T { return outOfBand(i, j) })

	rd := bandReader[T]{g: g, band: band, outOfBand: outOfBand}
	for i := 0; i < p.Rows; i++ {
		if isDone(done) {
			return nil, canceledErr(ctx, "banded", i)
		}
		jLo := max(0, i-band)
		jHi := min(p.Cols-1, i+band)
		for j := jLo; j <= jHi; j++ {
			g.Set(i, j, p.F(i, j, gatherNeighbors(p, rd, i, j)))
		}
	}
	return g, nil
}

// bandReader reads in-band cells from the grid and resolves out-of-band
// cells to the absorbing value. Out-of-table reads still fall through to
// the problem's Boundary (inBounds returns false).
type bandReader[T any] struct {
	g         *table.Grid[T]
	band      int
	outOfBand BoundaryFunc[T]
}

func (r bandReader[T]) at(i, j int) T {
	d := i - j
	if d < 0 {
		d = -d
	}
	if d > r.band {
		return r.outOfBand(i, j)
	}
	return r.g.At(i, j)
}

func (r bandReader[T]) inBounds(i, j int) bool { return r.g.InBounds(i, j) }

// BandWidth returns the number of in-band cells of row i, for cost
// accounting.
func BandWidth(rows, cols, band, i int) int {
	jLo := max(0, i-band)
	jHi := min(cols-1, i+band)
	if jHi < jLo {
		return 0
	}
	return jHi - jLo + 1
}
