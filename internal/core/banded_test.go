package core

import (
	"math"
	"testing"
	"testing/quick"
)

// bandedMinProblem is a Levenshtein-like minimization used to exercise the
// band: the absorbing value is a large constant.
func bandedMinProblem(rows, cols int) *Problem[int64] {
	return &Problem[int64]{
		Name: "banded-min", Rows: rows, Cols: cols, Deps: DepW | DepNW | DepN,
		F: func(i, j int, nb Neighbors[int64]) int64 {
			if i == 0 || j == 0 {
				return int64(max(i, j))
			}
			d := int64(0)
			if (i*7+j*13)%5 == 0 {
				d = 1
			}
			return min(nb.NW+d, nb.N+1, nb.W+1)
		},
	}
}

const bandedInf = int64(math.MaxInt64 / 4)

func bandedAbsorb(i, j int) int64 { return bandedInf }

func TestSolveBandedWideBandMatchesFull(t *testing.T) {
	p := bandedMinProblem(40, 40)
	full, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Band covering the whole table: identical everywhere.
	banded, err := SolveBanded(p, 40, bandedAbsorb)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			if banded.At(i, j) != full.At(i, j) {
				t.Fatalf("cell (%d,%d): banded %d != full %d", i, j, banded.At(i, j), full.At(i, j))
			}
		}
	}
}

func TestSolveBandedNeverBelowFull(t *testing.T) {
	// Restricting paths can only increase a minimization's answer.
	p := bandedMinProblem(50, 50)
	full, _ := Solve(p)
	for _, band := range []int{0, 1, 3, 10} {
		banded, err := SolveBanded(p, band, bandedAbsorb)
		if err != nil {
			t.Fatal(err)
		}
		if banded.At(49, 49) < full.At(49, 49) {
			t.Errorf("band %d: banded answer %d below full %d", band, banded.At(49, 49), full.At(49, 49))
		}
	}
}

func TestSolveBandedExactWhenAnswerFits(t *testing.T) {
	p := bandedMinProblem(60, 60)
	full, _ := Solve(p)
	answer := full.At(59, 59)
	// The square table's optimal path deviates at most `answer` cells from
	// the diagonal, so a band of that width is exact.
	banded, err := SolveBanded(p, int(answer), bandedAbsorb)
	if err != nil {
		t.Fatal(err)
	}
	if got := banded.At(59, 59); got != answer {
		t.Errorf("band %d: banded answer %d != full %d", answer, got, answer)
	}
}

func TestSolveBandedOutOfBandCellsHoldAbsorbingValue(t *testing.T) {
	p := bandedMinProblem(20, 20)
	banded, err := SolveBanded(p, 2, bandedAbsorb)
	if err != nil {
		t.Fatal(err)
	}
	if got := banded.At(0, 19); got != bandedInf {
		t.Errorf("out-of-band cell = %d, want absorbing value", got)
	}
	if got := banded.At(19, 0); got != bandedInf {
		t.Errorf("out-of-band cell = %d, want absorbing value", got)
	}
}

func TestSolveBandedErrors(t *testing.T) {
	p := bandedMinProblem(4, 4)
	if _, err := SolveBanded(p, -1, bandedAbsorb); err == nil {
		t.Error("negative band should error")
	}
	if _, err := SolveBanded(p, 2, nil); err == nil {
		t.Error("nil outOfBand should error")
	}
	bad := &Problem[int64]{Rows: 0, Cols: 1, Deps: DepN}
	if _, err := SolveBanded(bad, 2, bandedAbsorb); err == nil {
		t.Error("invalid problem should error")
	}
}

func TestBandWidth(t *testing.T) {
	cases := []struct {
		rows, cols, band, i, want int
	}{
		{10, 10, 2, 0, 3},   // j in [0,2]
		{10, 10, 2, 5, 5},   // j in [3,7]
		{10, 10, 2, 9, 3},   // j in [7,9]
		{10, 10, 0, 4, 1},   // diagonal only
		{10, 3, 2, 9, 0},    // band entirely right of the table
		{10, 10, 20, 5, 10}, // band wider than the table
	}
	for _, c := range cases {
		if got := BandWidth(c.rows, c.cols, c.band, c.i); got != c.want {
			t.Errorf("BandWidth(%d,%d,%d,%d) = %d, want %d", c.rows, c.cols, c.band, c.i, got, c.want)
		}
	}
}

// Property: banded answers are monotone non-increasing in the band width
// and reach the full answer once the band covers the table.
func TestSolveBandedMonotoneProperty(t *testing.T) {
	f := func(r, c uint8) bool {
		rows := int(r%20) + 2
		cols := int(c%20) + 2
		p := bandedMinProblem(rows, cols)
		full, err := Solve(p)
		if err != nil {
			return false
		}
		prev := int64(math.MaxInt64)
		for band := 0; band <= rows+cols; band += 3 {
			banded, err := SolveBanded(p, band, bandedAbsorb)
			if err != nil {
				return false
			}
			v := banded.At(rows-1, cols-1)
			if v > prev || v < full.At(rows-1, cols-1) {
				return false
			}
			prev = v
		}
		return prev == full.At(rows-1, cols-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
