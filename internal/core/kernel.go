package core

import (
	"repro/internal/table"
)

// Chunk kernels shared by the native runtimes. Historically this code
// lived inside pool.go, the per-solve worker pool; the process-wide
// scheduler (internal/sched) runs chunks of many solves on one worker set,
// so the kernel construction — flat-slice cell evaluation and the
// front-indexed run(t, lo, hi) closures — is extracted here where both
// runtimes (and Workload, the untyped handle the scheduler consumes) can
// build on it without going through a *Problem-typed executor.

// flatKernel evaluates cells straight on a row-major backing slice. The
// generic gatherNeighbors path costs four non-inlined shape-generic calls
// per cell; here the neighbour loads are written out by hand against the
// flat slice, with the contributing-set flags hoisted out of the Deps mask
// and an interior fast path that skips the per-neighbour bounds checks.
type flatKernel[T any] struct {
	data                     []T
	rows, cols               int
	p                        *Problem[T]
	hasW, hasNW, hasN, hasNE bool
}

func newFlatKernel[T any](p *Problem[T], data []T, rows, cols int) *flatKernel[T] {
	return &flatKernel[T]{
		data: data, rows: rows, cols: cols, p: p,
		hasW:  p.Deps.Has(DepW),
		hasNW: p.Deps.Has(DepNW),
		hasN:  p.Deps.Has(DepN),
		hasNE: p.Deps.Has(DepNE),
	}
}

// cell evaluates (i, j). Interior cells (every neighbour in the table)
// read the flat slice directly; edge cells fall back to edgeCell.
func (k *flatKernel[T]) cell(i, j int) {
	base := i*k.cols + j
	if i > 0 && j > 0 && j+1 < k.cols {
		var nb Neighbors[T]
		up := base - k.cols
		if k.hasW {
			nb.W = k.data[base-1]
		}
		if k.hasNW {
			nb.NW = k.data[up-1]
		}
		if k.hasN {
			nb.N = k.data[up]
		}
		if k.hasNE {
			nb.NE = k.data[up+1]
		}
		k.data[base] = k.p.F(i, j, nb)
		return
	}
	k.edgeCell(i, j, base)
}

// edgeCell evaluates a cell on the table's top, left, or right edge, where
// at least one neighbour read resolves through the boundary function.
func (k *flatKernel[T]) edgeCell(i, j, base int) {
	var nb Neighbors[T]
	if k.hasW {
		if j > 0 {
			nb.W = k.data[base-1]
		} else {
			nb.W = k.p.boundary(i, j-1)
		}
	}
	if k.hasNW {
		if i > 0 && j > 0 {
			nb.NW = k.data[base-k.cols-1]
		} else {
			nb.NW = k.p.boundary(i-1, j-1)
		}
	}
	if k.hasN {
		if i > 0 {
			nb.N = k.data[base-k.cols]
		} else {
			nb.N = k.p.boundary(i-1, j)
		}
	}
	if k.hasNE {
		if i > 0 && j+1 < k.cols {
			nb.NE = k.data[base-k.cols+1]
		} else {
			nb.NE = k.p.boundary(i-1, j+1)
		}
	}
	k.data[base] = k.p.F(i, j, nb)
}

// fillRowMajor sweeps the whole table in row-major order, the cache-optimal
// serial schedule (dependency-safe for every contributing set, as in
// Solve). The single-worker degenerate case of the pool uses it: wavefront
// order buys nothing without concurrency and walks the row-major slice with
// a cols-sized stride. Cancellation is polled once per row.
func (k *flatKernel[T]) fillRowMajor(done <-chan struct{}) (int, bool) {
	for i := 0; i < k.rows; i++ {
		if isDone(done) {
			return i, false
		}
		for j := 0; j < k.cols; j++ {
			k.cell(i, j)
		}
	}
	return k.rows, true
}

// frontRunner builds the run(t, lo, hi) kernel for a canonical wavefront
// space over a grid. When the grid is row-major the kernel walks the front
// with an incremental (i, j) cursor over the flat kernel — the per-cell
// Wavefronts.Cell call of the generic path recomputes the front span for
// every cell, which dominates the per-cell budget for cheap recurrences.
//
// The returned closure is safe for concurrent calls on disjoint ranges of
// one front, which is what lets the pool and the scheduler run chunks of
// the same front on different workers.
func frontRunner[T any](p *Problem[T], w Wavefronts, g *table.Grid[T]) func(t, lo, hi int) {
	if flat := g.RowMajorData(); flat != nil {
		k := newFlatKernel(p, flat, g.Rows(), g.Cols())
		switch w.Pattern {
		case AntiDiagonal:
			return func(t, lo, hi int) {
				first, _ := table.AntiDiagSpan(w.Rows, w.Cols, t)
				i, j := first+lo, t-first-lo
				for n := hi - lo; n > 0; n-- {
					k.cell(i, j)
					i++
					j--
				}
			}
		case Horizontal:
			return func(t, lo, hi int) {
				for j := lo; j < hi; j++ {
					k.cell(t, j)
				}
			}
		case InvertedL:
			return func(t, lo, hi int) {
				rowLen := w.Cols - t
				for n := lo; n < hi; n++ {
					if n < rowLen {
						k.cell(t, t+n)
					} else {
						k.cell(t+1+(n-rowLen), t)
					}
				}
			}
		case KnightMove:
			return func(t, lo, hi int) {
				first, _ := table.KnightSpan(w.Rows, w.Cols, t)
				i, j := first+lo, t-2*(first+lo)
				for n := hi - lo; n > 0; n-- {
					k.cell(i, j)
					i++
					j -= 2
				}
			}
		}
	}
	rd := gridReader[T]{g}
	return func(t, lo, hi int) {
		computeFrontRange(p, rd, g, w, t, lo, hi)
	}
}
