package core

import (
	"time"

	"repro/internal/hetsim"
	"repro/internal/table"
)

// Result is the outcome of a simulated solve (SolveHetero, SolveCPUOnly,
// SolveGPUOnly).
type Result[T any] struct {
	// Grid holds the computed table in the original problem orientation.
	// Nil when Options.SkipCompute was set.
	Grid *table.Grid[T]

	// Pattern is the problem's Table-I pattern.
	Pattern Pattern
	// Executed is the canonical pattern the strategy actually ran after
	// symmetry reduction and the inverted-L -> horizontal preference.
	Executed Pattern
	// Reduction is the symmetry transform applied (none/transpose/mirror).
	Reduction Reduction
	// Transfer is the Table-II transfer requirement of the problem.
	Transfer TransferKind

	// TSwitch and TShare are the work-division parameters actually used.
	TSwitch, TShare int

	// Time is the simulated wall-clock duration (the timeline makespan).
	Time time.Duration
	// Timeline is the full resolved schedule.
	Timeline hetsim.Timeline
	// Critical is the chain of operations whose waits compose the
	// makespan, in execution order (see hetsim.Sim.CriticalPath).
	Critical []hetsim.OpRecord
}

// Stats summarizes the timeline.
func (r *Result[T]) Stats() hetsim.Stats { return r.Timeline.Summarize() }
