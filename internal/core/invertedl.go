package core

import "repro/internal/hetsim"

// runInvertedL executes the two-phase heterogeneous strategy of paper
// §III-C for inverted-L problems (contributing set {NW}).
//
// Fronts shrink with time, so work is shared from the first iteration and
// the CPU takes over completely for the final tSwitch fronts. Within a
// front the CPU takes the first tShare cells (the leading row-segment of
// the L); the boundary cell is shipped to the GPU each iteration, per the
// paper's one-way transfer scheme (Table II).
//
// Note: with {NW} as the only dependency the diagonally sliding split is in
// fact communication-free, since NW chains never cross it; the per-front
// transfer here reproduces the paper's stated scheme rather than exploiting
// that. The framework's default is anyway to solve this class through
// horizontal case-1, which §V-B measures as faster.
//
// The solve context is polled once per front; an observed cancellation
// aborts the plan and surfaces as *Canceled.
func runInvertedL[T any](e *heteroExec[T], tSwitch, tShare int) error {
	fronts := e.w.Fronts
	tSwitch = clampTSwitch(tSwitch, 2*fronts) // phase 2 may cover everything
	if tSwitch > fronts {
		tSwitch = fronts
	}
	p2Start := fronts - tSwitch

	lastCPU, lastGPU := hetsim.NoOp, hetsim.NoOp
	upload := e.uploadInput()
	prevH2D := hetsim.NoOp

	var lastGPUCells int
	for t := 0; t < p2Start; t++ {
		if e.canceled() {
			return e.cancelErr("hetero", t)
		}
		size := e.w.Size(t)
		cpuCount := tShare
		if cpuCount < 0 {
			cpuCount = 0
		}
		if cpuCount > size {
			cpuCount = size
		}
		gpuCount := size - cpuCount

		if cpuCount > 0 {
			lastCPU = e.cpuOp(t, 0, cpuCount, "cpu:p1", lastCPU)
		}
		if gpuCount > 0 {
			lastGPU = e.gpuOp(t, cpuCount, size, "gpu:p1", lastGPU, upload, prevH2D)
			lastGPUCells = gpuCount
		}
		if cpuCount > 0 && gpuCount > 0 {
			prevH2D = e.boundary(hetsim.ResCopyH2D, 1, "h2d:boundary", lastCPU)
		}
	}

	// Phase 1 -> 2 synchronization: the CPU's first full front reads NW
	// cells of the previous front's GPU part.
	syncDown := hetsim.NoOp
	if p2Start > 0 && p2Start < fronts && lastGPU != hetsim.NoOp {
		syncDown = e.bulk(hetsim.ResCopyD2H, lastGPUCells*e.bpc, "d2h:phase1-sync", lastGPU)
	}

	// Phase 2: CPU only over the shrinking tail.
	for t := p2Start; t < fronts; t++ {
		if e.canceled() {
			return e.cancelErr("hetero", t)
		}
		lastCPU = e.cpuOp(t, 0, e.w.Size(t), "cpu:p2", lastCPU, syncDown)
	}

	if tSwitch == 0 && lastGPU != hetsim.NoOp {
		e.extract(e.w.Size(fronts-1), lastGPU)
	}
	return nil
}
