package core

import (
	"context"
	"fmt"

	"repro/internal/table"
)

// gridReader adapts a Grid to the cellReader used by gatherNeighbors.
type gridReader[T any] struct{ g *table.Grid[T] }

func (r gridReader[T]) at(i, j int) T          { return r.g.At(i, j) }
func (r gridReader[T]) inBounds(i, j int) bool { return r.g.InBounds(i, j) }

// Solve fills the problem's DP table sequentially in row-major order and
// returns the completed grid. Row-major order is dependency-safe for every
// contributing set drawn from {W, NW, N, NE}: W precedes (i,j) within the
// row, and the other three lie on the previous row. This is the reference
// implementation every other solver is tested against.
func Solve[T any](p *Problem[T]) (*table.Grid[T], error) {
	return SolveContext(context.Background(), p)
}

// SolveContext is Solve honoring a context, polled once per row. A
// canceled solve returns a nil grid and a *Canceled error.
func SolveContext[T any](ctx context.Context, p *Problem[T]) (*table.Grid[T], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := table.NewGrid[T](p.Rows, p.Cols, nil)
	if err := fillRowMajorInto(ctx, p, g); err != nil {
		return nil, err
	}
	return g, nil
}

// SolveInto is Solve writing into a caller-provided grid (any layout),
// avoiding the allocation; the grid dimensions must match the problem.
func SolveInto[T any](p *Problem[T], g *table.Grid[T]) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if g.Rows() != p.Rows || g.Cols() != p.Cols {
		return fmt.Errorf("core: grid %dx%d does not match problem %dx%d",
			g.Rows(), g.Cols(), p.Rows, p.Cols)
	}
	return fillRowMajorInto(context.Background(), p, g)
}

// fillRowMajorInto is the shared row-major sweep of the sequential solvers,
// polling the context once per row.
func fillRowMajorInto[T any](ctx context.Context, p *Problem[T], g *table.Grid[T]) error {
	done := ctxDone(ctx)
	rd := gridReader[T]{g}
	for i := 0; i < p.Rows; i++ {
		if isDone(done) {
			return canceledErr(ctx, "sequential", i)
		}
		for j := 0; j < p.Cols; j++ {
			g.Set(i, j, p.F(i, j, gatherNeighbors(p, rd, i, j)))
		}
	}
	return nil
}
