package core

import (
	"fmt"

	"repro/internal/table"
)

// gridReader adapts a Grid to the cellReader used by gatherNeighbors.
type gridReader[T any] struct{ g *table.Grid[T] }

func (r gridReader[T]) at(i, j int) T          { return r.g.At(i, j) }
func (r gridReader[T]) inBounds(i, j int) bool { return r.g.InBounds(i, j) }

// Solve fills the problem's DP table sequentially in row-major order and
// returns the completed grid. Row-major order is dependency-safe for every
// contributing set drawn from {W, NW, N, NE}: W precedes (i,j) within the
// row, and the other three lie on the previous row. This is the reference
// implementation every other solver is tested against.
func Solve[T any](p *Problem[T]) (*table.Grid[T], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := table.NewGrid[T](p.Rows, p.Cols, nil)
	rd := gridReader[T]{g}
	for i := 0; i < p.Rows; i++ {
		for j := 0; j < p.Cols; j++ {
			g.Set(i, j, p.F(i, j, gatherNeighbors(p, rd, i, j)))
		}
	}
	return g, nil
}

// SolveInto is Solve writing into a caller-provided grid (any layout),
// avoiding the allocation; the grid dimensions must match the problem.
func SolveInto[T any](p *Problem[T], g *table.Grid[T]) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if g.Rows() != p.Rows || g.Cols() != p.Cols {
		return fmt.Errorf("core: grid %dx%d does not match problem %dx%d",
			g.Rows(), g.Cols(), p.Rows, p.Cols)
	}
	rd := gridReader[T]{g}
	for i := 0; i < p.Rows; i++ {
		for j := 0; j < p.Cols; j++ {
			g.Set(i, j, p.F(i, j, gatherNeighbors(p, rd, i, j)))
		}
	}
	return nil
}
