package core

import "repro/internal/table"

// Transposed returns the problem reflected through (i,j) -> (j,i), together
// with a function mapping a solved transposed grid back to the original
// orientation. Transposition turns the Vertical pattern into Horizontal
// (paper §III: "Vertical and Horizontal are symmetric in nature").
func Transposed[T any](p *Problem[T]) (*Problem[T], func(*table.Grid[T]) *table.Grid[T]) {
	orig := *p
	tp := &Problem[T]{
		Name:         p.Name + " (transposed)",
		Rows:         p.Cols,
		Cols:         p.Rows,
		Deps:         p.Deps.Transpose(),
		BytesPerCell: p.BytesPerCell,
		InputBytes:   p.InputBytes,
		F: func(i, j int, nb Neighbors[T]) T {
			// In transposed space: W'=(i,j-1) is the original (j-1,i) = N;
			// N'=(i-1,j) is the original (j,i-1) = W; NW' stays NW.
			return orig.F(j, i, Neighbors[T]{W: nb.N, N: nb.W, NW: nb.NW})
		},
	}
	if orig.Boundary != nil {
		tp.Boundary = func(i, j int) T { return orig.Boundary(j, i) }
	}
	undo := func(g *table.Grid[T]) *table.Grid[T] {
		out := table.NewGrid[T](orig.Rows, orig.Cols, nil)
		for i := 0; i < orig.Rows; i++ {
			for j := 0; j < orig.Cols; j++ {
				out.Set(i, j, g.At(j, i))
			}
		}
		return out
	}
	return tp, undo
}

// MirroredColumns returns the problem reflected through j -> cols-1-j,
// together with a function mapping a solved mirrored grid back. Mirroring
// turns the mInverted-L pattern into Inverted-L (paper §III: "patterns
// Inverted-L and mirrored Inverted-L are also symmetric").
func MirroredColumns[T any](p *Problem[T]) (*Problem[T], func(*table.Grid[T]) *table.Grid[T]) {
	orig := *p
	last := p.Cols - 1
	mp := &Problem[T]{
		Name:         p.Name + " (mirrored)",
		Rows:         p.Rows,
		Cols:         p.Cols,
		Deps:         p.Deps.MirrorColumns(),
		BytesPerCell: p.BytesPerCell,
		InputBytes:   p.InputBytes,
		F: func(i, j int, nb Neighbors[T]) T {
			// In mirrored space: NW'=(i-1,j-1) is the original
			// (i-1, last-j+1) = NE; NE' is the original NW; N' stays N.
			return orig.F(i, last-j, Neighbors[T]{NW: nb.NE, NE: nb.NW, N: nb.N})
		},
	}
	if orig.Boundary != nil {
		mp.Boundary = func(i, j int) T { return orig.Boundary(i, last-j) }
	}
	undo := func(g *table.Grid[T]) *table.Grid[T] {
		out := table.NewGrid[T](orig.Rows, orig.Cols, nil)
		for i := 0; i < orig.Rows; i++ {
			for j := 0; j < orig.Cols; j++ {
				out.Set(i, j, g.At(i, last-j))
			}
		}
		return out
	}
	return mp, undo
}

// canonicalize reduces a problem to its canonical pattern, returning the
// problem to execute, the canonical pattern, the reduction applied, and
// the grid restorer (identity when no reduction applies).
func canonicalize[T any](p *Problem[T]) (*Problem[T], Pattern, Reduction, func(*table.Grid[T]) *table.Grid[T]) {
	pattern := Classify(p.Deps)
	canonical, reduction := CanonicalPattern(pattern)
	switch reduction {
	case ReduceTranspose:
		tp, undo := Transposed(p)
		return tp, canonical, reduction, undo
	case ReduceMirror:
		mp, undo := MirroredColumns(p)
		return mp, canonical, reduction, undo
	default:
		return p, canonical, reduction, func(g *table.Grid[T]) *table.Grid[T] { return g }
	}
}
