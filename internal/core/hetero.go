package core

import (
	"fmt"

	"repro/internal/hetsim"
	"repro/internal/table"
)

// SolveHetero runs the paper's heterogeneous framework on the problem: it
// classifies the contributing set (Table I), symmetry-reduces the pattern,
// selects the execution strategy and work-division parameters, and executes
// the plan against the simulated platform while computing real cell values.
func SolveHetero[T any](p *Problem[T], opts Options) (*Result[T], error) {
	return solveSim(p, opts, modeHetero)
}

// SolveCPUOnly runs the multicore-CPU baseline on the simulated platform:
// one parallel region per wavefront, no GPU, no transfers.
func SolveCPUOnly[T any](p *Problem[T], opts Options) (*Result[T], error) {
	return solveSim(p, opts, modeCPUOnly)
}

// SolveGPUOnly runs the pure-GPU baseline on the simulated platform: one
// kernel per wavefront, plus input upload and result extraction.
func SolveGPUOnly[T any](p *Problem[T], opts Options) (*Result[T], error) {
	return solveSim(p, opts, modeGPUOnly)
}

type solveMode uint8

const (
	modeHetero solveMode = iota
	modeCPUOnly
	modeGPUOnly
)

func solveSim[T any](p *Problem[T], opts Options, mode solveMode) (*Result[T], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cp, canonical, reduction, undo := canonicalize(p)

	executed := canonical
	if canonical == InvertedL && !opts.PreferInvertedL {
		// §V-B: inverted-L problems run faster through horizontal case-1.
		executed = Horizontal
	}
	w := NewWavefronts(executed, cp.Rows, cp.Cols)
	o := opts.withDefaults(w, TransferNeed(p.Deps))
	if o.Layout == nil {
		return nil, fmt.Errorf("core: nil layout after defaulting")
	}

	e := newHeteroExec(cp, w, o)

	switch mode {
	case modeCPUOnly:
		runDeviceOnly(e, hetsim.ResCPU)
	case modeGPUOnly:
		runDeviceOnly(e, hetsim.ResGPU)
	default:
		switch executed {
		case AntiDiagonal:
			runAntiDiagonal(e, o.TSwitch, o.TShare)
		case Horizontal:
			runHorizontal(e, o.TShare)
		case InvertedL:
			runInvertedL(e, o.TSwitch, o.TShare)
		case KnightMove:
			runKnightMove(e, o.TSwitch, o.TShare)
		default:
			return nil, fmt.Errorf("core: no strategy for executed pattern %s", executed)
		}
	}

	res := &Result[T]{
		Pattern:   Classify(p.Deps),
		Executed:  executed,
		Reduction: reduction,
		Transfer:  TransferNeed(p.Deps),
		TSwitch:   o.TSwitch,
		TShare:    o.TShare,
		Time:      e.sim.Makespan(),
		Timeline:  e.sim.Timeline(),
		Critical:  e.sim.CriticalPath(),
	}
	if mode != modeHetero {
		res.TSwitch, res.TShare = 0, 0
	}
	if e.g != nil {
		res.Grid = undo(e.g)
	}
	return res, nil
}

// runDeviceOnly executes every wavefront on a single device: the pure-CPU
// and pure-GPU baselines of the paper's figures.
func runDeviceOnly[T any](e *heteroExec[T], dev hetsim.Resource) {
	last := hetsim.NoOp
	if dev == hetsim.ResGPU {
		upload := e.uploadInput()
		for t := 0; t < e.w.Fronts; t++ {
			last = e.gpuOp(t, 0, e.w.Size(t), "gpu:only", last, upload)
		}
		e.extract(e.w.Size(e.w.Fronts-1), last)
		return
	}
	for t := 0; t < e.w.Fronts; t++ {
		last = e.cpuOp(t, 0, e.w.Size(t), "cpu:only", last)
	}
}

// PreferredLayoutFor returns the coalescing-friendly layout the framework
// would select for a problem, after symmetry reduction and the inverted-L
// preference. Exposed for experiments that override Options.Layout.
func PreferredLayoutFor[T any](p *Problem[T], preferInvertedL bool) table.Layout {
	cp, canonical, _, _ := canonicalize(p)
	executed := canonical
	if canonical == InvertedL && !preferInvertedL {
		executed = Horizontal
	}
	return NewWavefronts(executed, cp.Rows, cp.Cols).PreferredLayout()
}
