package core

import (
	"context"
	"fmt"

	"repro/internal/hetsim"
	"repro/internal/table"
	"repro/internal/trace"
)

// SolveHetero runs the paper's heterogeneous framework on the problem: it
// classifies the contributing set (Table I), symmetry-reduces the pattern,
// selects the execution strategy and work-division parameters, and executes
// the plan against the simulated platform while computing real cell values.
func SolveHetero[T any](p *Problem[T], opts Options) (*Result[T], error) {
	return solveSim(context.Background(), p, opts, modeHetero)
}

// SolveHeteroContext is SolveHetero honoring a context, polled once per
// wavefront. A canceled solve returns a nil result and a *Canceled error.
func SolveHeteroContext[T any](ctx context.Context, p *Problem[T], opts Options) (*Result[T], error) {
	return solveSim(ctx, p, opts, modeHetero)
}

// SolveCPUOnly runs the multicore-CPU baseline on the simulated platform:
// one parallel region per wavefront, no GPU, no transfers.
func SolveCPUOnly[T any](p *Problem[T], opts Options) (*Result[T], error) {
	return solveSim(context.Background(), p, opts, modeCPUOnly)
}

// SolveCPUOnlyContext is SolveCPUOnly honoring a context.
func SolveCPUOnlyContext[T any](ctx context.Context, p *Problem[T], opts Options) (*Result[T], error) {
	return solveSim(ctx, p, opts, modeCPUOnly)
}

// SolveGPUOnly runs the pure-GPU baseline on the simulated platform: one
// kernel per wavefront, plus input upload and result extraction.
func SolveGPUOnly[T any](p *Problem[T], opts Options) (*Result[T], error) {
	return solveSim(context.Background(), p, opts, modeGPUOnly)
}

// SolveGPUOnlyContext is SolveGPUOnly honoring a context.
func SolveGPUOnlyContext[T any](ctx context.Context, p *Problem[T], opts Options) (*Result[T], error) {
	return solveSim(ctx, p, opts, modeGPUOnly)
}

type solveMode uint8

const (
	modeHetero solveMode = iota
	modeCPUOnly
	modeGPUOnly
)

func (m solveMode) String() string {
	switch m {
	case modeCPUOnly:
		return "cpu-only"
	case modeGPUOnly:
		return "gpu-only"
	default:
		return "hetero"
	}
}

func solveSim[T any](ctx context.Context, p *Problem[T], opts Options, mode solveMode) (res *Result[T], err error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cp, canonical, reduction, undo := canonicalize(p)

	executed := canonical
	if canonical == InvertedL && !opts.PreferInvertedL {
		// §V-B: inverted-L problems run faster through horizontal case-1.
		executed = Horizontal
	}
	w := NewWavefronts(executed, cp.Rows, cp.Cols)
	o := opts.withDefaults(w, TransferNeed(p.Deps))
	if o.Layout == nil {
		return nil, fmt.Errorf("core: nil layout after defaulting")
	}

	if c := o.Collector; c != nil {
		c.SolveStart(SolveInfo{
			Solver: mode.String(), Problem: p.Name,
			Pattern: Classify(p.Deps).String(), Executed: executed.String(),
			Rows: cp.Rows, Cols: cp.Cols, Fronts: w.Fronts,
		})
		for t := 0; t < w.Fronts; t++ {
			c.FrontSize(w.Size(t))
		}
		defer func() { c.SolveEnd(err) }()
	}

	e := newHeteroExec(ctx, cp, w, o)

	switch mode {
	case modeCPUOnly:
		err = runDeviceOnly(e, hetsim.ResCPU)
	case modeGPUOnly:
		err = runDeviceOnly(e, hetsim.ResGPU)
	default:
		switch executed {
		case AntiDiagonal:
			err = runAntiDiagonal(e, o.TSwitch, o.TShare)
		case Horizontal:
			err = runHorizontal(e, o.TShare)
		case InvertedL:
			err = runInvertedL(e, o.TSwitch, o.TShare)
		case KnightMove:
			err = runKnightMove(e, o.TSwitch, o.TShare)
		default:
			err = fmt.Errorf("core: no strategy for executed pattern %s", executed)
		}
	}
	if err != nil {
		return nil, err
	}

	res = &Result[T]{
		Pattern:   Classify(p.Deps),
		Executed:  executed,
		Reduction: reduction,
		Transfer:  TransferNeed(p.Deps),
		TSwitch:   o.TSwitch,
		TShare:    o.TShare,
		Time:      e.sim.Makespan(),
		Timeline:  e.sim.Timeline(),
		Critical:  e.sim.CriticalPath(),
	}
	if c := o.Collector; c != nil {
		emitTimelinePhases(c, res.Timeline)
	}
	if tr := o.Tracer; tr != nil {
		// No EndSolve: imported events live on the simulated clock.
		tr.BeginSolve(trace.Meta{
			Solver: mode.String(), Problem: p.Name,
			Pattern: Classify(p.Deps).String(), Executed: executed.String(),
			Rows: cp.Rows, Cols: cp.Cols, Fronts: w.Fronts, Clock: "sim",
		})
		tr.ImportTimeline(res.Timeline)
	}
	if mode != modeHetero {
		res.TSwitch, res.TShare = 0, 0
	}
	if e.g != nil {
		res.Grid = undo(e.g)
	}
	return res, nil
}

// runDeviceOnly executes every wavefront on a single device: the pure-CPU
// and pure-GPU baselines of the paper's figures.
func runDeviceOnly[T any](e *heteroExec[T], dev hetsim.Resource) error {
	last := hetsim.NoOp
	if dev == hetsim.ResGPU {
		upload := e.uploadInput()
		for t := 0; t < e.w.Fronts; t++ {
			if e.canceled() {
				return e.cancelErr("gpu-only", t)
			}
			last = e.gpuOp(t, 0, e.w.Size(t), "gpu:only", last, upload)
		}
		e.extract(e.w.Size(e.w.Fronts-1), last)
		return nil
	}
	for t := 0; t < e.w.Fronts; t++ {
		if e.canceled() {
			return e.cancelErr("cpu-only", t)
		}
		last = e.cpuOp(t, 0, e.w.Size(t), "cpu:only", last)
	}
	return nil
}

// PreferredLayoutFor returns the coalescing-friendly layout the framework
// would select for a problem, after symmetry reduction and the inverted-L
// preference. Exposed for experiments that override Options.Layout.
func PreferredLayoutFor[T any](p *Problem[T], preferInvertedL bool) table.Layout {
	cp, canonical, _, _ := canonicalize(p)
	executed := canonical
	if canonical == InvertedL && !preferInvertedL {
		executed = Horizontal
	}
	return NewWavefronts(executed, cp.Rows, cp.Cols).PreferredLayout()
}
