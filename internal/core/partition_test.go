package core

import (
	"testing"

	"repro/internal/hetsim"
)

func TestDefaultTSwitchHorizontalIsZero(t *testing.T) {
	w := NewWavefronts(Horizontal, 100, 100)
	if got := DefaultTSwitch(hetsim.HeteroHigh(), w); got != 0 {
		t.Errorf("horizontal t_switch = %d, want 0 (no low-work region, §VI-C)", got)
	}
}

func TestDefaultTSwitchAntiDiagonal(t *testing.T) {
	p := hetsim.HeteroHigh()
	w := NewWavefronts(AntiDiagonal, 4096, 4096)
	got := DefaultTSwitch(p, w)
	if got <= 0 {
		t.Fatalf("anti-diagonal t_switch = %d, want > 0", got)
	}
	if got > w.Fronts/2 {
		t.Fatalf("t_switch %d exceeds half the fronts %d", got, w.Fronts/2)
	}
	// At the switch point the GPU should be at least competitive.
	width := w.Size(got)
	gpu := p.GPU.KernelDuration(width, true)
	cpu := p.CPU.RegionDuration(width, true)
	if gpu >= cpu {
		t.Errorf("at t_switch width %d: gpu %v >= cpu %v; switch point too early", width, gpu, cpu)
	}
}

func TestDefaultTSwitchSmallTableDegeneratesToCPU(t *testing.T) {
	p := hetsim.HeteroHigh()
	w := NewWavefronts(AntiDiagonal, 64, 64)
	got := DefaultTSwitch(p, w)
	if got != w.Fronts/2 {
		t.Errorf("tiny table t_switch = %d, want cap %d (fronts never wide enough for the GPU)",
			got, w.Fronts/2)
	}
}

func TestBreakEvenWidthOrdering(t *testing.T) {
	p := hetsim.HeteroHigh()
	be := breakEvenWidth(p)
	if be <= 1 {
		t.Fatalf("break-even width = %d; the launch floor must make tiny kernels lose", be)
	}
	if p.GPU.KernelDuration(be, true) >= p.CPU.RegionDuration(be, true) {
		t.Error("GPU should win at the break-even width")
	}
	if be > 1 && p.GPU.KernelDuration(be-1, true) < p.CPU.RegionDuration(be-1, true) {
		t.Error("GPU should lose just below the break-even width")
	}
}

func TestDefaultTShareBounds(t *testing.T) {
	p := hetsim.HeteroHigh()
	for _, dims := range [][2]int{{512, 512}, {4096, 4096}, {64, 8192}} {
		w := NewWavefronts(Horizontal, dims[0], dims[1])
		s := DefaultTShare(p, w, TransferOneWay)
		if s < 0 || s > w.MaxWidth()/2 {
			t.Errorf("%v: t_share = %d outside [0, width/2]", dims, s)
		}
	}
}

func TestDefaultTShareBalances(t *testing.T) {
	p := hetsim.HeteroHigh()
	w := NewWavefronts(Horizontal, 4096, 4096)
	s := DefaultTShare(p, w, TransferOneWay)
	if s == 0 {
		t.Fatal("t_share = 0 on a wide table; CPU should get a slice")
	}
	// The CPU's slice must finish no later than the GPU's kernel: the share
	// may not turn the CPU into the per-iteration bottleneck.
	cpu := p.CPU.RegionDuration(s, true)
	gpu := p.GPU.KernelDuration(w.MaxWidth()-s, true)
	if cpu > gpu {
		t.Errorf("cpu slice %v exceeds gpu kernel %v at share %d", cpu, gpu, s)
	}
}

func TestDefaultTShareTwoWaySmaller(t *testing.T) {
	p := hetsim.HeteroHigh()
	w := NewWavefronts(Horizontal, 4096, 4096)
	one := DefaultTShare(p, w, TransferOneWay)
	two := DefaultTShare(p, w, TransferTwoWay)
	if two > one {
		t.Errorf("two-way share %d > one-way share %d; two-way must be more conservative", two, one)
	}
}

func TestDefaultTShareTinyFront(t *testing.T) {
	p := hetsim.HeteroLow()
	w := NewWavefronts(Horizontal, 4, 1)
	if s := DefaultTShare(p, w, TransferNone); s != 0 {
		t.Errorf("width-1 t_share = %d, want 0", s)
	}
}

func TestClampTSwitch(t *testing.T) {
	cases := []struct{ in, fronts, want int }{
		{-3, 10, 0}, {0, 10, 0}, {4, 10, 4}, {5, 10, 5}, {6, 10, 5}, {100, 10, 5},
	}
	for _, c := range cases {
		if got := clampTSwitch(c.in, c.fronts); got != c.want {
			t.Errorf("clampTSwitch(%d,%d) = %d, want %d", c.in, c.fronts, got, c.want)
		}
	}
}
