package core

import (
	"testing"
	"testing/quick"
)

func TestDepMaskHasCount(t *testing.T) {
	m := DepW | DepN
	if !m.Has(DepW) || !m.Has(DepN) || m.Has(DepNW) || m.Has(DepNE) {
		t.Error("Has results wrong")
	}
	if !m.Has(DepW | DepN) {
		t.Error("Has should accept multi-bit queries")
	}
	if m.Count() != 2 {
		t.Errorf("Count = %d, want 2", m.Count())
	}
	if depMaskAll.Count() != 4 {
		t.Errorf("full mask Count = %d, want 4", depMaskAll.Count())
	}
}

func TestDepMaskValid(t *testing.T) {
	if DepMask(0).Valid() {
		t.Error("empty mask should be invalid")
	}
	if !DepW.Valid() || !depMaskAll.Valid() {
		t.Error("legal masks reported invalid")
	}
	if DepMask(0x10).Valid() {
		t.Error("out-of-range bit should be invalid")
	}
}

func TestDepMaskString(t *testing.T) {
	cases := []struct {
		m    DepMask
		want string
	}{
		{0, "{}"},
		{DepW, "{W}"},
		{DepNW | DepNE, "{NW,NE}"},
		{depMaskAll, "{W,NW,N,NE}"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("String(%08b) = %q, want %q", c.m, got, c.want)
		}
	}
}

func TestParseDepMask(t *testing.T) {
	cases := []struct {
		in   string
		want DepMask
	}{
		{"{W}", DepW},
		{"w, nw", DepW | DepNW},
		{"{NW,N,NE}", DepNW | DepN | DepNE},
		{" N ", DepN},
	}
	for _, c := range cases {
		got, err := ParseDepMask(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseDepMask(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "{}", "{X}", "W,Q"} {
		if _, err := ParseDepMask(bad); err == nil {
			t.Errorf("ParseDepMask(%q) should fail", bad)
		}
	}
}

func TestParseDepMaskRoundTrip(t *testing.T) {
	for _, m := range AllDepMasks() {
		got, err := ParseDepMask(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %s -> %v, %v", m, got, err)
		}
	}
}

func TestAllDepMasks(t *testing.T) {
	all := AllDepMasks()
	if len(all) != 15 {
		t.Fatalf("AllDepMasks returned %d masks, want 15 (2^4 - 1, paper §III)", len(all))
	}
	seen := map[DepMask]bool{}
	for _, m := range all {
		if !m.Valid() || seen[m] {
			t.Errorf("mask %s invalid or duplicated", m)
		}
		seen[m] = true
	}
}

func TestTranspose(t *testing.T) {
	cases := []struct{ in, want DepMask }{
		{DepW, DepN},
		{DepN, DepW},
		{DepNW, DepNW},
		{DepW | DepNW, DepN | DepNW},
		{DepW | DepN, DepW | DepN},
	}
	for _, c := range cases {
		if got := c.in.Transpose(); got != c.want {
			t.Errorf("Transpose(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestTransposeIsInvolution(t *testing.T) {
	f := func(raw uint8) bool {
		m := DepMask(raw) & (DepW | DepNW | DepN)
		if m == 0 {
			return true
		}
		return m.Transpose().Transpose() == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransposePanicsOnNE(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(DepW | DepNE).Transpose()
}

func TestMirrorColumns(t *testing.T) {
	cases := []struct{ in, want DepMask }{
		{DepNE, DepNW},
		{DepNW, DepNE},
		{DepN, DepN},
		{DepNW | DepN | DepNE, DepNW | DepN | DepNE},
	}
	for _, c := range cases {
		if got := c.in.MirrorColumns(); got != c.want {
			t.Errorf("MirrorColumns(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestMirrorIsInvolution(t *testing.T) {
	f := func(raw uint8) bool {
		m := DepMask(raw) & (DepNW | DepN | DepNE)
		if m == 0 {
			return true
		}
		return m.MirrorColumns().MirrorColumns() == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMirrorPanicsOnW(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(DepW | DepN).MirrorColumns()
}
