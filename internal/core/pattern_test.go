package core

import "testing"

// TestTableI reproduces paper Table I verbatim: all 15 contributing sets
// (columns W=cell[i][j-1], NW=cell[i-1][j-1], N=cell[i-1][j],
// NE=cell[i-1][j+1]) and their patterns, in the paper's row order.
func TestTableI(t *testing.T) {
	rows := []struct {
		w, nw, n, ne bool
		want         Pattern
	}{
		{false, false, false, true, MInvertedL},
		{false, false, true, false, Horizontal},
		{false, false, true, true, Horizontal},
		{false, true, false, false, InvertedL},
		{false, true, false, true, Horizontal},
		{false, true, true, false, Horizontal},
		{false, true, true, true, Horizontal},
		{true, false, false, false, Vertical},
		{true, false, false, true, KnightMove},
		{true, false, true, false, AntiDiagonal},
		{true, false, true, true, KnightMove},
		{true, true, false, false, Vertical},
		{true, true, false, true, KnightMove},
		{true, true, true, false, AntiDiagonal},
		{true, true, true, true, KnightMove},
	}
	if len(rows) != 15 {
		t.Fatal("Table I must have 15 rows")
	}
	for _, r := range rows {
		var m DepMask
		if r.w {
			m |= DepW
		}
		if r.nw {
			m |= DepNW
		}
		if r.n {
			m |= DepN
		}
		if r.ne {
			m |= DepNE
		}
		if got := Classify(m); got != r.want {
			t.Errorf("Classify(%s) = %s, want %s", m, got, r.want)
		}
	}
}

// TestTableII reproduces paper Table II: the transfer need per pattern.
// The table lists one row per pattern; we check every mask of each pattern
// against its row, with horizontal's three sub-cases resolved per §III-B.
func TestTableII(t *testing.T) {
	for _, m := range AllDepMasks() {
		var want TransferKind
		switch Classify(m) {
		case AntiDiagonal, InvertedL, MInvertedL:
			want = TransferOneWay
		case KnightMove:
			want = TransferTwoWay
		case Horizontal:
			switch {
			case m.Has(DepNW) && m.Has(DepNE):
				want = TransferTwoWay
			case m == DepN:
				want = TransferNone
			default:
				want = TransferOneWay
			}
		case Vertical:
			if m == DepW {
				want = TransferNone
			} else {
				want = TransferOneWay
			}
		}
		if got := TransferNeed(m); got != want {
			t.Errorf("TransferNeed(%s) = %s, want %s", m, got, want)
		}
	}
}

func TestTableIIRepresentativeRows(t *testing.T) {
	// The literal rows of Table II, one representative mask per pattern.
	cases := []struct {
		m    DepMask
		want TransferKind
	}{
		{DepW | DepN, TransferOneWay},                 // Anti-diagonal: 1 way
		{DepNW | DepN, TransferOneWay},                // Horizontal case-1: 1 way
		{DepNW | DepN | DepNE, TransferTwoWay},        // Horizontal case-2: 2 way
		{DepNW, TransferOneWay},                       // Inverted-L: 1 way
		{DepW | DepNE, TransferTwoWay},                // Knight-Move: 2 way
		{DepN, TransferNone},                          // Horizontal {N}: no transfer (§III-B)
		{DepW | DepNW | DepN | DepNE, TransferTwoWay}, // full set is knight
	}
	for _, c := range cases {
		if got := TransferNeed(c.m); got != c.want {
			t.Errorf("TransferNeed(%s) = %s, want %s", c.m, got, c.want)
		}
	}
}

func TestClassifyPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Classify(0)
}

func TestCanonicalPattern(t *testing.T) {
	cases := []struct {
		in        Pattern
		canonical Pattern
		reduction Reduction
	}{
		{AntiDiagonal, AntiDiagonal, ReduceNone},
		{Horizontal, Horizontal, ReduceNone},
		{InvertedL, InvertedL, ReduceNone},
		{KnightMove, KnightMove, ReduceNone},
		{Vertical, Horizontal, ReduceTranspose},
		{MInvertedL, InvertedL, ReduceMirror},
	}
	for _, c := range cases {
		canon, red := CanonicalPattern(c.in)
		if canon != c.canonical || red != c.reduction {
			t.Errorf("CanonicalPattern(%s) = %s, %s; want %s, %s",
				c.in, canon, red, c.canonical, c.reduction)
		}
	}
}

// The paper reduces six patterns to four distinct execution strategies.
func TestFourDistinctCanonicalPatterns(t *testing.T) {
	seen := map[Pattern]bool{}
	for _, m := range AllDepMasks() {
		canon, _ := CanonicalPattern(Classify(m))
		seen[canon] = true
	}
	if len(seen) != 4 {
		t.Fatalf("canonical patterns = %v, want exactly 4", seen)
	}
	for _, want := range []Pattern{AntiDiagonal, Horizontal, InvertedL, KnightMove} {
		if !seen[want] {
			t.Errorf("canonical pattern %s missing", want)
		}
	}
}

// Symmetry consistency: classifying a transposed mask gives the pattern's
// transposed partner, and likewise for mirroring.
func TestClassifySymmetryConsistency(t *testing.T) {
	if Classify(DepW.Transpose()) != Horizontal {
		t.Error("transposed Vertical mask should classify Horizontal")
	}
	if Classify((DepW | DepNW).Transpose()) != Horizontal {
		t.Error("transposed {W,NW} should classify Horizontal")
	}
	if Classify(DepNE.MirrorColumns()) != InvertedL {
		t.Error("mirrored mInverted-L mask should classify Inverted-L")
	}
}

func TestPatternString(t *testing.T) {
	names := map[Pattern]string{
		AntiDiagonal: "Anti-diagonal",
		Horizontal:   "Horizontal",
		InvertedL:    "Inverted-L",
		KnightMove:   "Knight-Move",
		Vertical:     "Vertical",
		MInvertedL:   "mInverted-L",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("Pattern(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestTransferKindString(t *testing.T) {
	if TransferNone.String() != "none" || TransferOneWay.String() != "1 way" || TransferTwoWay.String() != "2 way" {
		t.Error("TransferKind strings wrong")
	}
}

func TestReductionString(t *testing.T) {
	if ReduceNone.String() != "none" || ReduceTranspose.String() != "transpose" || ReduceMirror.String() != "mirror" {
		t.Error("Reduction strings wrong")
	}
}
