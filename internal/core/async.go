package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/table"
	"repro/internal/trace"
)

// Asynchronous work-efficient executor: dependency counters instead of
// front barriers.
//
// The pool runtime (pool.go) is level-synchronous — every wavefront ends
// in an epoch barrier, and the trace analyzer quantifies what those
// barriers cost (stall.barrier_ns). Following the dependency-counter
// scheme of "Parallel and (Nearly) Work-Efficient Dynamic Programming"
// (arXiv 2404.16314) and Shen et al. (arXiv 2205.13077), this executor
// drops the barrier entirely:
//
//   - every cell carries an atomic in-degree counter initialized to its
//     number of in-bounds dependencies under the raw mask;
//   - a worker that computes a cell decrements the counter of each
//     dependent; the decrement that reaches zero makes the dependent
//     ready — it is either kept as the worker's own continuation
//     (depth-first, so serial chains never touch the queue) or pushed on
//     a lock-free MPMC ready queue;
//   - workers loop: take a ready cell, compute it, publish. No fronts are
//     ever materialized and no worker waits for stragglers of a front it
//     has no dependency on.
//
// No canonicalization is needed: all four neighbour offsets of every
// valid mask point to an earlier row or left in the same row, so the raw
// dependency graph is acyclic for each of the 15 masks, and topological
// progress is guaranteed no matter the completion order.
//
// The ready queue is a fixed array of one slot per cell. Each cell is
// enqueued at most once (only the decrement that hits zero enqueues), so
// producers reserve a slot with one atomic tail bump and publish with one
// atomic slot store; consumers claim with a CAS on head, bounded by tail.
// Go atomics are sequentially consistent, which gives the happens-before
// chain a dependent needs: each dependency's grid write precedes its
// counter decrement, the decrements form a total order on the counter,
// and the zero-observing decrementer's enqueue (or continuation) precedes
// the dependent's neighbour reads. DESIGN.md §15 states this as a
// lattice-linear-predicate argument.
//
// Cost: two O(cells) int32 arrays (counters + queue slots), the same
// order as the table itself. The trade is explicit — barrier-free
// scheduling needs per-cell state where the pool needs per-front state.

const (
	// asyncCancelEvery is how many computed cells a worker goes between
	// polls of the context's done channel (same granularity class as the
	// pool's per-chunk poll).
	asyncCancelEvery = 256
	// asyncSampleEvery is how many computed cells a worker goes between
	// KindReady queue-depth samples when tracing.
	asyncSampleEvery = 1024
	// asyncFlushCells caps one KindTask span so long-running workers
	// still produce a timeline with visible structure.
	asyncFlushCells = 8192
)

// asyncEngine is the shared state of one async solve. It is built once
// (counters initialized, initially-ready cells enqueued) and then driven
// by worker loops — either the engine's own goroutines (SolveAsync*) or
// scheduler workers running NewAsyncWorkload chunks.
type asyncEngine[T any] struct {
	k          *flatKernel[T]
	rows, cols int
	total      int64

	hasW, hasNW, hasN, hasNE bool

	// counters[c] is the number of not-yet-published dependencies of cell
	// c (row-major index). The decrement to zero transfers ownership of
	// the cell to exactly one worker.
	counters []atomic.Int32
	// slots is the MPMC ready ring: one slot per cell, each written at
	// most once, holding cell+1 so zero means "not yet published".
	slots []atomic.Int32
	head  atomic.Int64 // next slot to claim
	tail  atomic.Int64 // next slot to reserve

	completed atomic.Int64
	// rowLeft[i] counts the cells of row i not yet computed; the first
	// row with a nonzero count is Canceled.Front on cancellation.
	rowLeft  []atomic.Int32
	finished atomic.Bool
	canceled atomic.Bool
	done     <-chan struct{}

	stats []poolWorkerStat
	lanes []*trace.Lane
}

// newAsyncEngine validates the problem, allocates the grid and the
// per-cell scheduling state, and seeds the ready queue with every cell
// whose in-degree is zero under the mask. It returns the engine, the
// grid it fills, and the resolved worker count.
func newAsyncEngine[T any](ctx context.Context, p *Problem[T], opts Options) (*asyncEngine[T], *table.Grid[T], int, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, 0, err
	}
	if err := opts.Validate(); err != nil {
		return nil, nil, 0, err
	}
	total := int64(p.Rows) * int64(p.Cols)
	if total > math.MaxInt32 {
		// Cell indices live in the int32 queue slots and counters.
		return nil, nil, 0, fmt.Errorf("core: async executor supports at most %d cells, got %d", math.MaxInt32, total)
	}
	workers := opts.NativeWorkers
	if workers <= 0 {
		workers = defaultPoolWorkers()
	}
	if int64(workers) > total {
		workers = int(total)
	}
	g := table.NewGrid[T](p.Rows, p.Cols, nil) // nil layout = row-major
	e := &asyncEngine[T]{
		k:    newFlatKernel(p, g.RowMajorData(), p.Rows, p.Cols),
		rows: p.Rows, cols: p.Cols, total: total,
		hasW:  p.Deps.Has(DepW),
		hasNW: p.Deps.Has(DepNW),
		hasN:  p.Deps.Has(DepN),
		hasNE: p.Deps.Has(DepNE),
		counters: make([]atomic.Int32, total),
		slots:    make([]atomic.Int32, total),
		rowLeft:  make([]atomic.Int32, p.Rows),
		done:     ctxDone(ctx),
	}
	// Single-threaded init: plain stores into the atomics are fine, the
	// worker spawn publishes them.
	ready := int64(0)
	idx := int32(0)
	for i := 0; i < e.rows; i++ {
		e.rowLeft[i].Store(int32(e.cols))
		for j := 0; j < e.cols; j++ {
			c := int32(0)
			if e.hasW && j > 0 {
				c++
			}
			if i > 0 {
				if e.hasNW && j > 0 {
					c++
				}
				if e.hasN {
					c++
				}
				if e.hasNE && j+1 < e.cols {
					c++
				}
			}
			e.counters[idx].Store(c)
			if c == 0 {
				e.slots[ready].Store(idx + 1)
				ready++
			}
			idx++
		}
	}
	e.tail.Store(ready)
	return e, g, workers, nil
}

// enqueue publishes a ready cell. Called by at most one worker per cell
// (the zero-observing decrementer), so every slot is written exactly once
// and tail never outruns the slot array.
func (e *asyncEngine[T]) enqueue(cell int32) {
	s := e.tail.Add(1) - 1
	e.slots[s].Store(cell + 1)
}

// dequeue claims the next ready cell, spinning through the transient
// empty-queue states where all remaining work is in flight on other
// workers. Returns -1 when the solve is finished or canceled. Progress
// argument: if every worker sits in dequeue, no cell is in flight, so
// every computed cell has fully published; the topologically next
// uncomputed cell then has in-degree zero and is in the queue — the
// queue cannot be empty unless the solve is complete.
func (e *asyncEngine[T]) dequeue() int32 {
	spins := 0
	for {
		if e.finished.Load() || e.canceled.Load() {
			return -1
		}
		h := e.head.Load()
		if h < e.tail.Load() {
			if !e.head.CompareAndSwap(h, h+1) {
				continue
			}
			// The producer bumps tail before storing the slot; the store
			// is at most a few instructions behind.
			for {
				if v := e.slots[h].Load(); v != 0 {
					return v - 1
				}
				runtime.Gosched()
			}
		}
		spins++
		if spins&63 == 0 {
			if isDone(e.done) {
				e.canceled.Store(true)
				return -1
			}
			runtime.Gosched()
		}
		if spins > 1<<16 {
			// Long drought: another worker is deep in a serial chain.
			// Back off the CPU instead of burning it.
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// work is the async worker loop: claim a ready cell, compute it, publish
// to its dependents, repeat. One newly-ready dependent is kept as the
// local continuation — depth-first execution that keeps serial chains
// (e.g. Nx1 knight tables) off the shared queue entirely.
func (e *asyncEngine[T]) work(w int) {
	var st *poolWorkerStat
	if e.stats != nil {
		st = &e.stats[w]
	}
	var ln *trace.Lane
	if e.lanes != nil {
		ln = e.lanes[w]
	}
	instrumented := st != nil || ln != nil

	var batchT0 time.Time
	batchCells := 0
	lastRow := 0
	flush := func() {
		if batchCells == 0 {
			return
		}
		if st != nil {
			st.busy += time.Since(batchT0)
			st.chunks++
			st.cells += batchCells
		}
		if ln != nil {
			ln.SpanFrom(trace.KindTask, lastRow, 0, int64(batchCells), batchT0)
		}
		batchCells = 0
	}

	local := int32(-1)
	ready := func(d int32) {
		if local < 0 {
			local = d
		} else {
			e.enqueue(d)
		}
	}
	sincePoll, sinceSample := 0, 0
	for {
		cell := local
		local = -1
		if cell < 0 {
			flush()
			cell = e.dequeue()
			if cell < 0 {
				return
			}
		}
		if instrumented && batchCells == 0 {
			batchT0 = time.Now()
		}
		i := int(cell) / e.cols
		j := int(cell) - i*e.cols
		e.k.cell(i, j)
		batchCells++
		lastRow = i

		// Publish: decrement the in-degree of each in-bounds dependent.
		// The reverse edges of (i, j) are the mask's offsets mirrored:
		// W feeds (i, j+1), NW feeds (i+1, j+1), N feeds (i+1, j),
		// NE feeds (i+1, j-1).
		if e.hasW && j+1 < e.cols {
			if e.counters[cell+1].Add(-1) == 0 {
				ready(cell + 1)
			}
		}
		if i+1 < e.rows {
			down := cell + int32(e.cols)
			if e.hasN {
				if e.counters[down].Add(-1) == 0 {
					ready(down)
				}
			}
			if e.hasNW && j+1 < e.cols {
				if e.counters[down+1].Add(-1) == 0 {
					ready(down + 1)
				}
			}
			if e.hasNE && j > 0 {
				if e.counters[down-1].Add(-1) == 0 {
					ready(down - 1)
				}
			}
		}

		e.rowLeft[i].Add(-1)
		if e.completed.Add(1) == e.total {
			e.finished.Store(true)
			flush()
			return
		}

		sincePoll++
		if sincePoll >= asyncCancelEvery {
			sincePoll = 0
			if isDone(e.done) {
				e.canceled.Store(true)
				flush()
				return
			}
		}
		if ln != nil {
			sinceSample++
			if sinceSample >= asyncSampleEvery {
				sinceSample = 0
				ln.Instant(trace.KindReady, i, e.tail.Load()-e.head.Load(), e.completed.Load())
			}
		}
		if batchCells >= asyncFlushCells {
			flush()
		}
	}
}

// firstIncompleteRow is Canceled.Front for the async executor: the async
// schedule has no fronts, so progress is reported in row terms — the
// index of the first row not known to be fully computed. Only called
// after the worker join, when all rowLeft decrements are visible.
func (e *asyncEngine[T]) firstIncompleteRow() int {
	for i := range e.rowLeft {
		if e.rowLeft[i].Load() > 0 {
			return i
		}
	}
	return e.rows
}

// SolveAsync fills the DP table with the asynchronous dependency-counter
// executor: no wavefronts, no barriers — cells are scheduled the moment
// their last dependency publishes. workers <= 0 selects the documented
// default min(GOMAXPROCS, NumCPU).
func SolveAsync[T any](p *Problem[T], workers int) (*table.Grid[T], error) {
	return SolveAsyncOpt(p, Options{NativeWorkers: workers})
}

// SolveAsyncOpt is SolveAsync with the full native-runtime knobs of
// Options (NativeWorkers, Collector, Tracer; NativeChunk has no meaning
// here — the async schedule has no chunks).
func SolveAsyncOpt[T any](p *Problem[T], opts Options) (*table.Grid[T], error) {
	return SolveAsyncContext(context.Background(), p, opts)
}

// SolveAsyncContext is SolveAsyncOpt honoring a context: workers poll the
// done channel at cell granularity and the interrupted solve returns
// *Canceled with Front naming the first incomplete row (the async
// schedule's progress unit — it has no wavefronts).
func SolveAsyncContext[T any](ctx context.Context, p *Problem[T], opts Options) (grid *table.Grid[T], err error) {
	e, g, workers, err := newAsyncEngine(ctx, p, opts)
	if err != nil {
		return nil, err
	}
	if isDone(e.done) {
		return nil, canceledErr(ctx, "async", 0)
	}

	coll := opts.Collector
	if coll != nil {
		e.stats = make([]poolWorkerStat, workers)
		coll.SolveStart(SolveInfo{
			Solver: "async", Problem: p.Name,
			Pattern: Classify(p.Deps).String(), Executed: "async",
			Rows: p.Rows, Cols: p.Cols, Fronts: p.Rows, Workers: workers,
		})
		start := time.Now()
		defer func() {
			coll.Phase("async", time.Since(start))
			coll.SolveEnd(err)
		}()
	}
	tr := opts.Tracer
	if tr != nil {
		tr.BeginSolve(trace.Meta{
			Solver: "async", Problem: p.Name,
			Pattern: Classify(p.Deps).String(), Executed: "async",
			Rows: p.Rows, Cols: p.Cols, Fronts: p.Rows, Workers: workers,
		})
		defer tr.EndSolve()
		e.lanes = make([]*trace.Lane, workers)
		for w := range e.lanes {
			e.lanes[w] = tr.Lane(w)
		}
	}

	cfg := poolConfig{solver: "async", phase: "async", workers: workers}
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for i := 1; i < workers; i++ {
		go func(w int) {
			defer wg.Done()
			pprof.Do(ctx, cfg.poolLabels(w), func(context.Context) { e.work(w) })
		}(i)
	}
	pprof.Do(ctx, cfg.poolLabels(0), func(context.Context) { e.work(0) })
	wg.Wait()

	if coll != nil {
		wall := time.Since(start)
		for w := range e.stats {
			st := &e.stats[w]
			coll.WorkerStats(WorkerStats{
				Worker: w, Chunks: st.chunks, Cells: st.cells,
				Busy: st.busy, Wall: wall,
			})
		}
	}
	if e.canceled.Load() {
		return nil, canceledErr(ctx, "async", e.firstIncompleteRow())
	}
	return g, nil
}

// NewAsyncWorkload adapts an async solve to the scheduler's Workload
// contract. The async schedule has no fronts, so the workload is a single
// front of `workers` independent units, each of which runs one async
// worker loop to completion on the shared engine — the Workload contract
// (cells of one front are concurrency-safe and order-free) holds exactly.
// Submit it with SubmitOptions.Chunk = 1 so scheduler workers claim one
// loop each; a loop claimed after the solve finishes observes the
// finished flag and returns immediately, so stragglers cost nothing.
//
// ctx is captured by the engine for in-loop cancellation: scheduler
// workers running the loops poll it at cell granularity, exactly like
// SolveAsyncContext.
func NewAsyncWorkload[T any](ctx context.Context, p *Problem[T], opts Options) (*Workload, func() *table.Grid[T], error) {
	e, g, workers, err := newAsyncEngine(ctx, p, opts)
	if err != nil {
		return nil, nil, err
	}
	wl := &Workload{
		Info: SolveInfo{
			Solver: "sched-async", Problem: p.Name,
			Pattern: Classify(p.Deps).String(), Executed: "async",
			Rows: p.Rows, Cols: p.Cols, Fronts: 1,
		},
		Fronts:     1,
		TotalCells: e.total,
		Size:       func(int) int { return workers },
		Run: func(_, lo, hi int) {
			for w := lo; w < hi; w++ {
				e.work(w)
			}
		},
	}
	return wl, func() *table.Grid[T] { return g }, nil
}
