package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/table"
)

// patternMasks picks one representative contributing set per dependency
// pattern, covering all six paper patterns including the two that execute
// through symmetry adapters (Vertical -> transposed Horizontal,
// mInverted-L -> mirrored Inverted-L).
var patternMasks = map[string]DepMask{
	"anti-diagonal": DepW | DepNW | DepN,
	"horizontal":    DepNW | DepN | DepNE,
	"vertical":      DepW | DepNW,
	"inverted-l":    DepNW,
	"m-inverted-l":  DepNE,
	"knight-move":   DepW | DepNE,
}

// checkPoolMatchesSolve cross-checks the pool runtime against the
// sequential reference cell-for-cell under the given options.
func checkPoolMatchesSolve(t *testing.T, m DepMask, rows, cols int, opts Options) {
	t.Helper()
	p := testProblem(m, rows, cols)
	want, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveParallelOpt(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, got) {
		t.Fatalf("mask %s %dx%d opts %+v: pool differs from Solve", m, rows, cols, opts)
	}
}

// TestPoolMatchesSolveAllPatterns stress-tests the pool runtime across all
// six dependency patterns with worker counts and chunk sizes chosen to
// force every execution shape: serial cutoff only, dynamic chunk claiming,
// barrier reuse across many fronts, and the horizontal band handoff. Run
// under -race this doubles as the synchronization soundness test.
func TestPoolMatchesSolveAllPatterns(t *testing.T) {
	for name, m := range patternMasks {
		t.Run(name, func(t *testing.T) {
			for _, dims := range [][2]int{{61, 67}, {128, 31}, {37, 128}} {
				for _, workers := range []int{1, 2, 3, 7} {
					for _, chunk := range []int{0, 1, 16} {
						checkPoolMatchesSolve(t, m, dims[0], dims[1], Options{
							NativeWorkers: workers,
							NativeChunk:   chunk,
						})
					}
				}
			}
		})
	}
}

// TestPoolBandLookahead exercises the point-to-point handoff mode on every
// horizontal-class contributing set: left-only (NW), right-only (NE),
// both, and none ({N}, where bands run fully independently). Vertical
// masks reach the band runtime through the transpose adapter.
func TestPoolBandLookahead(t *testing.T) {
	masks := []DepMask{DepN, DepNW | DepN, DepN | DepNE, DepNW | DepN | DepNE, DepNW | DepNE,
		DepW, DepW | DepNW} // last two are Vertical: transposed onto the band runtime
	for _, m := range masks {
		for _, workers := range []int{2, 4, 9} {
			checkPoolMatchesSolve(t, m, 95, 83, Options{NativeWorkers: workers})
			// And the ablation path: same masks through the global barrier.
			checkPoolMatchesSolve(t, m, 95, 83, Options{NativeWorkers: workers, NativeNoLookahead: true})
		}
	}
}

// TestPoolChunkingEdgeCases pins the chunking regressions called out for
// the seed executor: fronts smaller than the worker count, fronts one cell
// past a chunk boundary, and the single-worker degenerate case.
func TestPoolChunkingEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		rows, cols int
		opts       Options
	}{
		{"size-smaller-than-workers", 3, 4, Options{NativeWorkers: 16}},
		{"size-eq-chunk-plus-one", 17, 17, Options{NativeWorkers: 3, NativeChunk: 16}},
		{"workers-one", 40, 40, Options{NativeWorkers: 1}},
		{"chunk-one", 12, 19, Options{NativeWorkers: 5, NativeChunk: 1}},
		{"chunk-larger-than-any-front", 30, 30, Options{NativeWorkers: 4, NativeChunk: 4096}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, m := range patternMasks {
				checkPoolMatchesSolve(t, m, tc.rows, tc.cols, tc.opts)
			}
		})
	}
}

// TestPoolOddShapes drives degenerate grid geometries through every
// pattern: single-row, single-column, and minimal square tables.
func TestPoolOddShapes(t *testing.T) {
	for _, dims := range [][2]int{{1, 64}, {64, 1}, {2, 2}, {1, 1}, {2, 63}} {
		for _, m := range patternMasks {
			checkPoolMatchesSolve(t, m, dims[0], dims[1], Options{NativeWorkers: 4})
			checkPoolMatchesSolve(t, m, dims[0], dims[1], Options{NativeWorkers: 4, NativeChunk: 1})
		}
	}
}

// TestPoolAllMasks sweeps all 15 contributing sets through the default
// pool configuration, the same coverage net the hetero fuzz target uses.
func TestPoolAllMasks(t *testing.T) {
	for _, m := range AllDepMasks() {
		checkPoolMatchesSolve(t, m, 33, 45, Options{NativeWorkers: 3})
	}
}

// TestSolveParallelSpawnStillMatches keeps the legacy spawn executor
// honest while it serves as the ablation baseline.
func TestSolveParallelSpawnStillMatches(t *testing.T) {
	for _, m := range patternMasks {
		p := testProblem(m, 70, 59)
		want, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveParallelSpawn(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualComparable(want, got) {
			t.Fatalf("mask %s: spawn executor differs from Solve", m)
		}
	}
}

// TestRunWavefrontsCoverage checks the raw pool driver claims every cell
// of every front exactly once, independent of any grid.
func TestRunWavefrontsCoverage(t *testing.T) {
	sizes := []int{0, 1, 3, 700, 513, 512, 2, 1025, 0, 9}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{0, 1, 7, 512} {
			var mu sync.Mutex
			seen := make([][]bool, len(sizes))
			for t := range sizes {
				seen[t] = make([]bool, sizes[t])
			}
			cfg := poolConfig{solver: "pool", phase: "fill", workers: workers, chunk: chunk}
			runWavefronts(context.Background(), cfg, len(sizes), func(t int) int { return sizes[t] },
				func(ft, lo, hi int) {
					mu.Lock()
					for k := lo; k < hi; k++ {
						if seen[ft][k] {
							t.Errorf("workers=%d chunk=%d: cell (%d,%d) computed twice", workers, chunk, ft, k)
						}
						seen[ft][k] = true
					}
					mu.Unlock()
				})
			for ft := range seen {
				for k, ok := range seen[ft] {
					if !ok {
						t.Fatalf("workers=%d chunk=%d: cell (%d,%d) never computed", workers, chunk, ft, k)
					}
				}
			}
		}
	}
}
