package core

import (
	"context"
	"fmt"

	"repro/internal/table"
)

// Resilient execution in unreliable memory, after the fault model of the
// LDDP line of work the paper cites (Caminiti, Finocchi & Fusco: "Local
// dependency dynamic programming in the presence of memory faults").
//
// Model: computation (registers) is safe, but values stored in the large
// DP table may be corrupted at rest. The resilient solver writes every
// computed cell to `replicas` independent grids — each write passing
// through a caller-supplied fault injector — and resolves each later read
// by majority vote across the replicas. With r replicas the solve
// tolerates any pattern of faults that corrupts fewer than ceil(r/2)
// replicas of the same cell.

// FaultFunc models unreliable memory: it receives the replica index, the
// cell coordinates, and the value being stored, and returns the value the
// memory actually retains. A nil FaultFunc is perfect memory.
type FaultFunc[T any] func(replica, i, j int, v T) T

// SolveResilient fills the DP table with replicated, majority-voted
// storage. The returned grid is the majority-reconstructed table; the
// second result counts cells at which at least one replica disagreed with
// the majority (detected-and-corrected faults).
func SolveResilient[T comparable](p *Problem[T], replicas int, fault FaultFunc[T]) (*table.Grid[T], int, error) {
	return SolveResilientContext(context.Background(), p, replicas, fault)
}

// SolveResilientContext is SolveResilient honoring a context, polled once
// per row. A canceled solve returns a nil grid and a *Canceled error.
func SolveResilientContext[T comparable](ctx context.Context, p *Problem[T], replicas int, fault FaultFunc[T]) (*table.Grid[T], int, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if replicas < 1 {
		return nil, 0, fmt.Errorf("core: replicas %d < 1", replicas)
	}
	if fault == nil {
		fault = func(_, _, _ int, v T) T { return v }
	}
	done := ctxDone(ctx)
	grids := make([]*table.Grid[T], replicas)
	for r := range grids {
		grids[r] = table.NewGrid[T](p.Rows, p.Cols, nil)
	}
	rd := majorityReader[T]{grids: grids}
	corrected := 0
	for i := 0; i < p.Rows; i++ {
		if isDone(done) {
			return nil, 0, canceledErr(ctx, "resilient", i)
		}
		for j := 0; j < p.Cols; j++ {
			v := p.F(i, j, gatherNeighbors(p, rd, i, j))
			for r := range grids {
				grids[r].Set(i, j, fault(r, i, j, v))
			}
			// Fault accounting: compare what memory retained to the
			// computed value.
			for r := range grids {
				if grids[r].At(i, j) != v {
					corrected++
					break
				}
			}
		}
	}
	// Reconstruct the majority view once more for the returned grid, so
	// the caller sees exactly what later reads would have seen.
	out := table.NewGrid[T](p.Rows, p.Cols, nil)
	for i := 0; i < p.Rows; i++ {
		for j := 0; j < p.Cols; j++ {
			out.Set(i, j, rd.at(i, j))
		}
	}
	return out, corrected, nil
}

// majorityReader resolves reads by majority vote across replicas; with no
// strict majority it falls back to the first replica (detectable but not
// correctable corruption).
type majorityReader[T comparable] struct {
	grids []*table.Grid[T]
}

func (m majorityReader[T]) at(i, j int) T {
	if len(m.grids) == 1 {
		return m.grids[0].At(i, j)
	}
	// Boyer-Moore majority vote over the replica values.
	var candidate T
	count := 0
	for _, g := range m.grids {
		v := g.At(i, j)
		switch {
		case count == 0:
			candidate, count = v, 1
		case v == candidate:
			count++
		default:
			count--
		}
	}
	// Verify the candidate actually holds a strict majority.
	n := 0
	for _, g := range m.grids {
		if g.At(i, j) == candidate {
			n++
		}
	}
	if 2*n > len(m.grids) {
		return candidate
	}
	return m.grids[0].At(i, j)
}

func (m majorityReader[T]) inBounds(i, j int) bool { return m.grids[0].InBounds(i, j) }
