package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/hetsim"
	"repro/internal/table"
	"repro/internal/trace"
)

// Multi-accelerator execution: the extension the paper's conclusion asks
// about, generalized past a single extra device. A horizontal-pattern
// problem's rows are split into a CPU span followed by one contiguous span
// per accelerator; every device advances row by row, exchanging boundary
// cells with its neighbours exactly as the two-device horizontal strategy
// does (NW dependencies flow left-to-right, NE right-to-left).
// Accelerator-to-accelerator boundary traffic is staged through the host
// (a D2H followed by an H2D), as PCIe peer-to-peer copies were not
// dependable on 2013-era platforms.
//
// Patterns other than Horizontal (after symmetry reduction and the
// inverted-L preference) are rejected: grow-shrink patterns need per-phase
// repartitioning that the paper leaves to future work.

// Accelerator pairs a device model with a display name for multi-device
// configurations.
type Accelerator struct {
	Name  string
	Model hetsim.GPUModel
}

// MultiResult is the outcome of a multi-accelerator solve.
type MultiResult[T any] struct {
	Grid *table.Grid[T]
	// Shares holds the column span of each device, CPU first, then the
	// accelerators in order.
	Shares   []int
	Timeline hetsim.Timeline
}

// Duration returns the simulated wall-clock time of the solve.
func (r *MultiResult[T]) Duration() time.Duration { return r.Timeline.Makespan() }

// SolveHeteroMulti executes a horizontal-pattern problem across the
// platform CPU plus the given accelerators. shares assigns a column span
// per device (CPU first); nil derives spans proportional to each device's
// asymptotic throughput.
func SolveHeteroMulti[T any](p *Problem[T], opts Options, accels []Accelerator, shares []int) (*MultiResult[T], error) {
	return SolveHeteroMultiContext(context.Background(), p, opts, accels, shares)
}

// SolveHeteroMultiContext is SolveHeteroMulti honoring a context, polled
// once per row. A canceled solve returns a nil result and a *Canceled error.
func SolveHeteroMultiContext[T any](ctx context.Context, p *Problem[T], opts Options, accels []Accelerator, shares []int) (res *MultiResult[T], err error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(accels) == 0 {
		return nil, fmt.Errorf("core: multi solve needs at least one accelerator")
	}
	cp, canonical, _, undo := canonicalize(p)
	executed := canonical
	if canonical == InvertedL {
		executed = Horizontal
	}
	if executed != Horizontal {
		return nil, fmt.Errorf("core: multi-accelerator execution supports horizontal-pattern problems only, got %s", canonical)
	}
	w := NewWavefronts(Horizontal, cp.Rows, cp.Cols)
	o := opts.withDefaults(w, TransferNeed(p.Deps))

	if shares == nil {
		shares = DefaultMultiShares(o.Platform.CPU, accels, cp.Cols)
	}
	if len(shares) != len(accels)+1 {
		return nil, fmt.Errorf("core: %d shares for %d devices", len(shares), len(accels)+1)
	}
	total := 0
	for i, s := range shares {
		if s < 0 {
			return nil, fmt.Errorf("core: share %d negative", i)
		}
		total += s
	}
	if total != cp.Cols {
		return nil, fmt.Errorf("core: shares sum to %d, want %d columns", total, cp.Cols)
	}

	if c := o.Collector; c != nil {
		c.SolveStart(SolveInfo{
			Solver: "multi", Problem: p.Name,
			Pattern: Classify(p.Deps).String(), Executed: Horizontal.String(),
			Rows: cp.Rows, Cols: cp.Cols, Fronts: w.Fronts,
		})
		for t := 0; t < w.Fronts; t++ {
			c.FrontSize(w.Size(t))
		}
		defer func() { c.SolveEnd(err) }()
	}

	e := newHeteroExec(ctx, cp, w, o)
	if err = runHorizontalMulti(e, accels, shares); err != nil {
		return nil, err
	}

	res = &MultiResult[T]{
		Shares:   shares,
		Timeline: e.sim.Timeline(),
	}
	if c := o.Collector; c != nil {
		emitTimelinePhases(c, res.Timeline)
	}
	if tr := o.Tracer; tr != nil {
		// No EndSolve: imported events live on the simulated clock.
		tr.BeginSolve(trace.Meta{
			Solver: "multi", Problem: p.Name,
			Pattern: Classify(p.Deps).String(), Executed: Horizontal.String(),
			Rows: cp.Rows, Cols: cp.Cols, Fronts: w.Fronts, Clock: "sim",
		})
		tr.ImportTimeline(res.Timeline)
	}
	if e.g != nil {
		res.Grid = undo(e.g)
	}
	return res, nil
}

// DefaultMultiShares splits cols across the CPU and accelerators by
// water-filling on per-row completion time: find the smallest deadline T
// at which the devices can jointly finish a row, where a device
// contributes max(0, (T - fixed_d) * throughput_d) cells (fixed_d is the
// CPU's dispatch overhead or an accelerator's kernel-launch latency).
//
// Throughput-proportional splitting is wrong here: a weak accelerator with
// a high launch latency would receive a slice it cannot finish within the
// strong devices' row time and become the bottleneck. Water-filling
// assigns such a device nothing until rows are wide enough to amortize its
// launch cost.
func DefaultMultiShares(cpu hetsim.CPUModel, accels []Accelerator, cols int) []int {
	type dev struct {
		fixed float64 // seconds
		thr   float64 // cells per second
	}
	devs := make([]dev, len(accels)+1)
	devs[0] = dev{fixed: cpu.DispatchOverhead.Seconds(), thr: cpu.Throughput()}
	for i, a := range accels {
		devs[i+1] = dev{fixed: a.Model.LaunchLatency.Seconds(), thr: a.Model.Throughput()}
	}
	capacity := func(T float64) float64 {
		var c float64
		for _, d := range devs {
			if T > d.fixed {
				c += (T - d.fixed) * d.thr
			}
		}
		return c
	}
	lo, hi := 0.0, 1e-6
	for capacity(hi) < float64(cols) {
		hi *= 2
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if capacity(mid) < float64(cols) {
			lo = mid
		} else {
			hi = mid
		}
	}
	shares := make([]int, len(devs))
	assigned := 0
	widest := 0
	for i, d := range devs {
		if hi > d.fixed {
			shares[i] = int((hi - d.fixed) * d.thr)
		}
		assigned += shares[i]
		if shares[i] > shares[widest] {
			widest = i
		}
	}
	// Rounding leftovers go to the widest device.
	shares[widest] += cols - assigned
	return shares
}

// runHorizontalMulti is the n-device generalization of runHorizontal. The
// solve context is polled once per row; an observed cancellation aborts the
// plan and surfaces as *Canceled.
func runHorizontalMulti[T any](e *heteroExec[T], accels []Accelerator, shares []int) error {
	needRight := e.p.Deps.Has(DepNW) // boundary values flow left -> right
	needLeft := e.p.Deps.Has(DepNE)  // boundary values flow right -> left

	// Device d spans columns [starts[d], starts[d+1]).
	nDev := len(shares)
	starts := make([]int, nDev+1)
	for d := 0; d < nDev; d++ {
		starts[d+1] = starts[d] + shares[d]
	}

	// Device 0 is the CPU on ResCPU; device d>0 is accels[d-1] on its own
	// named stream.
	queues := make([]hetsim.Resource, nDev)
	queues[0] = hetsim.ResCPU
	for d := 1; d < nDev; d++ {
		queues[d] = e.sim.NewNamedStream(accels[d-1].Name)
	}

	// Every accelerator that received work needs the input uploaded before
	// its first kernel; idle devices cost nothing.
	uploads := make([]hetsim.OpID, nDev)
	uploads[0] = hetsim.NoOp
	for d := 1; d < nDev; d++ {
		uploads[d] = hetsim.NoOp
		if shares[d] > 0 {
			uploads[d] = e.bulk(hetsim.ResCopyH2D, e.p.InputBytes, "h2d:input:"+accels[d-1].Name)
		}
	}

	last := make([]hetsim.OpID, nDev)
	// rightXfer[d] is the transfer delivering device d's right-boundary
	// cell to device d+1; leftXfer[d] delivers device d's left-boundary
	// cell to device d-1.
	rightXfer := make([]hetsim.OpID, nDev)
	leftXfer := make([]hetsim.OpID, nDev)
	for d := range last {
		last[d] = hetsim.NoOp
		rightXfer[d] = hetsim.NoOp
		leftXfer[d] = hetsim.NoOp
	}

	// Per-device static labels, built once; the row index rides along as
	// the SubmitFront tag so the per-row loop formats no strings.
	kernelLabel := make([]string, nDev)
	xferRightLabel := make([]string, nDev)
	xferLeftLabel := make([]string, nDev)
	for d := 1; d < nDev; d++ {
		kernelLabel[d] = accels[d-1].Name + ":p1"
	}
	for d := 0; d < nDev; d++ {
		ds := strconv.Itoa(d)
		xferRightLabel[d] = "xfer:right:d" + ds
		xferLeftLabel[d] = "xfer:left:d" + ds
	}

	computeOp := func(d, row int, deps ...hetsim.OpID) hetsim.OpID {
		lo, hi := starts[d], starts[d+1]
		if hi <= lo {
			return hetsim.NoOp
		}
		if d == 0 {
			return e.cpuOp(row, lo, hi, "cpu:p1", deps...)
		}
		e.compute(row, lo, hi)
		dur := accels[d-1].Model.KernelDuration(hi-lo, e.coalesced)
		return e.sim.SubmitFront(hetsim.Op{
			Resource: queues[d],
			Kind:     hetsim.OpCompute,
			Duration: dur,
			Label:    kernelLabel[d],
			Cells:    hi - lo,
		}, row, deps...)
	}

	// xferBetween ships one boundary cell from device a to device b and
	// returns the op the consumer must wait on. CPU<->accelerator moves are
	// single DMA hops; accelerator<->accelerator moves stage through the
	// host as D2H then H2D.
	xferBetween := func(a, b int, producer hetsim.OpID, label string) hetsim.OpID {
		if a == 0 || b == 0 {
			res := hetsim.ResCopyH2D
			if b == 0 {
				res = hetsim.ResCopyD2H
			}
			return e.boundary(res, 1, label, producer)
		}
		down := e.boundary(hetsim.ResCopyD2H, 1, label+":d2h", producer)
		return e.boundary(hetsim.ResCopyH2D, 1, label+":h2d", down)
	}

	newRight := make([]hetsim.OpID, nDev)
	newLeft := make([]hetsim.OpID, nDev)
	ops := make([]hetsim.OpID, nDev)
	for row := 0; row < e.w.Fronts; row++ {
		if e.canceled() {
			return e.cancelErr("multi", row)
		}
		for d := 0; d < nDev; d++ {
			newRight[d], newLeft[d] = hetsim.NoOp, hetsim.NoOp
		}
		for d := 0; d < nDev; d++ {
			// Fixed-arity deps (NoOp ignored) avoid a per-device append.
			fromLeft, fromRight := hetsim.NoOp, hetsim.NoOp
			if needRight && d > 0 {
				fromLeft = rightXfer[d-1]
			}
			if needLeft && d < nDev-1 {
				fromRight = leftXfer[d+1]
			}
			ops[d] = computeOp(d, row, last[d], uploads[d], fromLeft, fromRight)
			if ops[d] != hetsim.NoOp {
				last[d] = ops[d]
			}
		}
		// Emit this row's boundary transfers for the next row's consumers.
		for d := 0; d < nDev; d++ {
			if ops[d] == hetsim.NoOp {
				continue
			}
			if needRight && d < nDev-1 && shares[d] > 0 && shares[d+1] > 0 {
				newRight[d] = xferBetween(d, d+1, ops[d], xferRightLabel[d])
			}
			if needLeft && d > 0 && shares[d] > 0 && shares[d-1] > 0 {
				newLeft[d] = xferBetween(d, d-1, ops[d], xferLeftLabel[d])
			}
		}
		copy(rightXfer, newRight)
		copy(leftXfer, newLeft)
	}

	// Pull each accelerator's slice of the final row back to the host.
	for d := 1; d < nDev; d++ {
		if shares[d] > 0 && last[d] != hetsim.NoOp {
			e.bulk(hetsim.ResCopyD2H, shares[d]*e.bpc, "d2h:result:"+accels[d-1].Name, last[d])
		}
	}
	return nil
}
