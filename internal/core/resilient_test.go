package core

import (
	"testing"
	"testing/quick"

	"repro/internal/table"
	"repro/internal/workload"
)

// flipFault corrupts roughly `ratePercent`% of writes by XOR-ing a bit
// into the value, independently per replica, deterministically seeded.
func flipFault(seed uint64, ratePercent int) FaultFunc[int64] {
	rngs := map[int]*workload.RNG{}
	return func(replica, i, j int, v int64) int64 {
		r, ok := rngs[replica]
		if !ok {
			r = workload.NewRNG(seed + uint64(replica)*0x9e37)
			rngs[replica] = r
		}
		if r.Intn(100) < ratePercent {
			return v ^ (1 << (r.Intn(16)))
		}
		return v
	}
}

func TestSolveResilientPerfectMemory(t *testing.T) {
	p := testProblem(DepW|DepN, 20, 20)
	want, _ := Solve(p)
	for _, replicas := range []int{1, 3, 5} {
		got, corrected, err := SolveResilient(p, replicas, nil)
		if err != nil {
			t.Fatal(err)
		}
		if corrected != 0 {
			t.Errorf("replicas=%d: %d corrections with perfect memory", replicas, corrected)
		}
		if !table.EqualComparable(want, got) {
			t.Errorf("replicas=%d: resilient differs under perfect memory", replicas)
		}
	}
}

func TestSolveResilientMasksFaultsWithTripleRedundancy(t *testing.T) {
	// Triple redundancy masks any cell with at most one corrupted replica;
	// the rate is chosen so the (deterministic, seeded) injection produces
	// plenty of single faults and no double ones: at 1% per write over 900
	// cells the expected double-fault count is 900 * 3 * 0.01^2 ~ 0.27.
	p := testProblem(DepW|DepNW|DepN, 30, 30)
	want, _ := Solve(p)
	got, corrected, err := SolveResilient(p, 3, flipFault(11, 1))
	if err != nil {
		t.Fatal(err)
	}
	if corrected == 0 {
		t.Fatal("fault injector never fired; the test is vacuous")
	}
	if !table.EqualComparable(want, got) {
		t.Error("triple redundancy failed to mask 1% write faults")
	}
}

func TestSolveResilientSingleReplicaCorrupts(t *testing.T) {
	p := testProblem(DepW|DepNW|DepN, 40, 40)
	want, _ := Solve(p)
	got, corrected, err := SolveResilient(p, 1, flipFault(11, 5))
	if err != nil {
		t.Fatal(err)
	}
	if corrected == 0 {
		t.Fatal("fault injector never fired")
	}
	if table.EqualComparable(want, got) {
		t.Error("unprotected single-replica solve should corrupt under 5% faults")
	}
}

func TestSolveResilientValidates(t *testing.T) {
	p := testProblem(DepN, 4, 4)
	if _, _, err := SolveResilient(p, 0, nil); err == nil {
		t.Error("replicas=0 should error")
	}
	bad := &Problem[int64]{Rows: 0, Cols: 1, Deps: DepN}
	if _, _, err := SolveResilient(bad, 3, nil); err == nil {
		t.Error("invalid problem should error")
	}
}

// Property: with fault rates low enough that no cell has two corrupted
// replicas, the majority always reconstructs the clean table. We force the
// premise by corrupting only replica 0.
func TestSolveResilientSingleReplicaFaultsAlwaysMasked(t *testing.T) {
	masks := AllDepMasks()
	f := func(mi, r, c uint8, seed uint64) bool {
		m := masks[int(mi)%len(masks)]
		rows := int(r%15) + 1
		cols := int(c%15) + 1
		p := testProblem(m, rows, cols)
		want, err := Solve(p)
		if err != nil {
			return false
		}
		rng := workload.NewRNG(seed)
		onlyFirst := func(replica, i, j int, v int64) int64 {
			if replica == 0 && rng.Intn(3) == 0 {
				return v ^ 0xff
			}
			return v
		}
		got, _, err := SolveResilient(p, 3, onlyFirst)
		if err != nil {
			return false
		}
		return table.EqualComparable(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// The detected-fault count roughly tracks the injection rate.
func TestSolveResilientCorrectionAccounting(t *testing.T) {
	p := testProblem(DepN, 50, 50)
	_, corrected, err := SolveResilient(p, 3, flipFault(99, 10))
	if err != nil {
		t.Fatal(err)
	}
	// 2500 cells, 3 replicas, 10% per write: P(cell has >=1 fault) ~ 27%.
	if corrected < 400 || corrected > 1100 {
		t.Errorf("corrected = %d, want roughly 675 of 2500", corrected)
	}
}
