package core

import (
	"testing"
	"testing/quick"

	"repro/internal/table"
)

func TestSolveTiledMatchesSequentialAllMasks(t *testing.T) {
	for _, m := range AllDepMasks() {
		for _, tile := range []int{1, 3, 8, 64} {
			p := testProblem(m, 19, 27)
			want, err := Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SolveTiled(p, tile, 4)
			if err != nil {
				t.Fatalf("%s tile=%d: %v", m, tile, err)
			}
			if !table.EqualComparable(want, got) {
				t.Errorf("%s tile=%d: tiled solve differs from sequential", m, tile)
			}
		}
	}
}

func TestSolveTiledOversizedTile(t *testing.T) {
	p := testProblem(DepW|DepN, 10, 10)
	want, _ := Solve(p)
	got, err := SolveTiled(p, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, got) {
		t.Error("tile larger than table differs")
	}
}

func TestSolveTiledSingleWorker(t *testing.T) {
	p := testProblem(DepW|DepNE, 33, 17)
	want, _ := Solve(p)
	got, err := SolveTiled(p, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualComparable(want, got) {
		t.Error("single-worker tiled solve differs")
	}
}

func TestSolveTiledRejectsBadTile(t *testing.T) {
	p := testProblem(DepN, 4, 4)
	if _, err := SolveTiled(p, 0, 2); err == nil {
		t.Error("tile 0 should error")
	}
}

func TestSolveTiledValidates(t *testing.T) {
	if _, err := SolveTiled(&Problem[int64]{Rows: 0, Cols: 1, Deps: DepN}, 4, 2); err == nil {
		t.Error("invalid problem should error")
	}
}

// Property: tiled and sequential solves agree for random masks, dims, and
// tile sizes.
func TestSolveTiledProperty(t *testing.T) {
	masks := AllDepMasks()
	f := func(mi, r, c, tl uint8) bool {
		m := masks[int(mi)%len(masks)]
		rows := int(r%25) + 1
		cols := int(c%25) + 1
		tile := int(tl%9) + 1
		p := testProblem(m, rows, cols)
		want, err := Solve(p)
		if err != nil {
			return false
		}
		got, err := SolveTiled(p, tile, 3)
		if err != nil {
			return false
		}
		return table.EqualComparable(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDefaultTile(t *testing.T) {
	t4 := DefaultTile(4)
	t8 := DefaultTile(8)
	if t4 <= t8 {
		t.Errorf("smaller cells should allow bigger tiles: %d vs %d", t4, t8)
	}
	for _, bpc := range []int{0, 4, 8, 16} {
		tile := DefaultTile(bpc)
		if tile < 8 {
			t.Errorf("DefaultTile(%d) = %d implausibly small", bpc, tile)
		}
		eff := bpc
		if eff == 0 {
			eff = 8
		}
		if tile*tile*eff > 256<<10 {
			t.Errorf("DefaultTile(%d) = %d exceeds the L2 budget", bpc, tile)
		}
		if (tile+1)*(tile+1)*eff <= 256<<10 {
			t.Errorf("DefaultTile(%d) = %d is not maximal", bpc, tile)
		}
	}
}

func TestDeriveBlockMask(t *testing.T) {
	cases := []struct {
		in       DepMask
		tileRows int
		want     DepMask
	}{
		{DepN, 8, DepN},
		{DepW | DepN, 8, DepW | DepN},
		{DepNW, 8, DepW | DepNW | DepN},
		{DepNW | DepN, 8, DepW | DepNW | DepN},
		{DepNW, 1, DepNW | DepN},
		{DepN | DepNE, 1, DepN | DepNE},
		{DepW | DepNE, 1, DepW | DepN | DepNE},
		{DepW | DepNW | DepN | DepNE, 1, DepW | DepNW | DepN | DepNE},
	}
	for _, c := range cases {
		if got := deriveBlockMask(c.in, c.tileRows); got != c.want {
			t.Errorf("deriveBlockMask(%s, %d) = %s, want %s", c.in, c.tileRows, got, c.want)
		}
	}
}

func TestDeriveBlockMaskPanicsOnTallNETiles(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	deriveBlockMask(DepNE, 4)
}
