package core

import (
	"testing"
	"time"
)

func TestTuneLevenshteinConcaveCurve(t *testing.T) {
	// Paper Figure 7: the t_switch sweep (t_share = 0) of an anti-diagonal
	// problem traces a concave-up curve whose interior minimum beats both
	// extremes.
	p := levenshteinLike(1024)
	res, err := Tune(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SwitchCurve) < 5 {
		t.Fatalf("switch curve has only %d points", len(res.SwitchCurve))
	}
	first := res.SwitchCurve[0]
	last := res.SwitchCurve[len(res.SwitchCurve)-1]
	var best TunePoint
	best.Time = time.Duration(1 << 62)
	for _, pt := range res.SwitchCurve {
		if pt.Time < best.Time {
			best = pt
		}
	}
	if first.Value != 0 {
		t.Errorf("curve should start at t_switch=0, got %d", first.Value)
	}
	if best.Time >= first.Time || best.Time > last.Time {
		t.Errorf("minimum %v@%d does not beat endpoints %v@%d / %v@%d",
			best.Time, best.Value, first.Time, first.Value, last.Time, last.Value)
	}
	if res.TSwitch != best.Value {
		t.Errorf("Tune chose t_switch=%d, curve minimum is %d", res.TSwitch, best.Value)
	}
}

func TestTuneBeatsDefaults(t *testing.T) {
	p := levenshteinLike(2048)
	tuned, err := Tune(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	def, err := SolveHetero(p, Options{TSwitch: -1, TShare: -1, SkipCompute: true})
	if err != nil {
		t.Fatal(err)
	}
	// The tuner sampled the whole space; it must not lose to the heuristic.
	if tuned.Time > def.Time {
		t.Errorf("tuned %v worse than heuristic default %v", tuned.Time, def.Time)
	}
}

func TestTuneHorizontalSkipsSwitchSweep(t *testing.T) {
	p := horizontalCase2(512)
	res, err := Tune(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TSwitch != 0 {
		t.Errorf("horizontal tune chose t_switch=%d, want 0", res.TSwitch)
	}
	if len(res.SwitchCurve) != 1 {
		t.Errorf("horizontal switch curve has %d points, want 1", len(res.SwitchCurve))
	}
	if len(res.ShareCurve) < 5 {
		t.Errorf("share curve has only %d points", len(res.ShareCurve))
	}
}

func TestTuneCurveSorted(t *testing.T) {
	p := knightLike(256)
	res, err := Tune(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, curve := range [][]TunePoint{res.SwitchCurve, res.ShareCurve} {
		for i := 1; i < len(curve); i++ {
			if curve[i].Value <= curve[i-1].Value {
				t.Fatalf("curve not strictly ascending at %d: %v", i, curve[i-1:i+1])
			}
		}
	}
}

func TestTuneValidates(t *testing.T) {
	if _, err := Tune(&Problem[int64]{Rows: 0, Cols: 1, Deps: DepN}, Options{}); err == nil {
		t.Error("expected validation error")
	}
}

func TestTuneResultTimeMatchesChosenParams(t *testing.T) {
	p := levenshteinLike(512)
	res, err := Tune(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	check, err := SolveHetero(p, Options{TSwitch: res.TSwitch, TShare: res.TShare, SkipCompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if check.Time != res.Time {
		t.Errorf("Tune.Time %v != re-run %v at chosen params", res.Time, check.Time)
	}
}
