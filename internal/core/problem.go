package core

import (
	"errors"
	"fmt"
)

// Neighbors carries the resolved values of the representative cells for one
// evaluation of the recurrence. Out-of-table neighbours are resolved
// through the problem's Boundary function; neighbours outside the
// contributing set hold unspecified values and must not be read.
type Neighbors[T any] struct {
	W, NW, N, NE T
}

// CellFunc is the user-supplied recurrence: the value of cell (i, j) given
// its contributing neighbours. It corresponds to the "function f" of the
// paper's framework interface (§V-C).
type CellFunc[T any] func(i, j int, nb Neighbors[T]) T

// BoundaryFunc supplies the value observed when a contributing neighbour
// falls outside the table (i < 0, j < 0 or j >= cols). It corresponds to
// the "Initialization" half of the framework interface (§V-C).
type BoundaryFunc[T any] func(i, j int) T

// Problem is a complete LDDP-Plus problem instance.
type Problem[T any] struct {
	// Name is used in reports.
	Name string
	// Rows and Cols give the DP-table dimensions.
	Rows, Cols int
	// Deps is the contributing set read by F.
	Deps DepMask
	// F computes cell (i, j) from its contributing neighbours.
	F CellFunc[T]
	// Boundary resolves out-of-table neighbour reads. Nil means the zero
	// value of T.
	Boundary BoundaryFunc[T]
	// BytesPerCell sizes boundary and bulk transfers in the simulated
	// platform. Zero means 8 (one 64-bit word per cell).
	BytesPerCell int
	// InputBytes is the size of the problem input that must be uploaded to
	// the device before GPU execution (e.g. the cost grid of the
	// checkerboard problem or the source image for dithering). Zero means
	// the input is negligibly small (e.g. two strings).
	InputBytes int
}

// Validate reports whether the problem is well-formed.
func (p *Problem[T]) Validate() error {
	var errs []error
	if p.Rows <= 0 || p.Cols <= 0 {
		errs = append(errs, fmt.Errorf("core: table size %dx%d invalid", p.Rows, p.Cols))
	}
	if !p.Deps.Valid() {
		errs = append(errs, fmt.Errorf("core: contributing set %s invalid", p.Deps))
	}
	if p.F == nil {
		errs = append(errs, errors.New("core: recurrence F is nil"))
	}
	if p.BytesPerCell < 0 {
		errs = append(errs, fmt.Errorf("core: BytesPerCell %d negative", p.BytesPerCell))
	}
	if p.InputBytes < 0 {
		errs = append(errs, fmt.Errorf("core: InputBytes %d negative", p.InputBytes))
	}
	return errors.Join(errs...)
}

// Pattern returns the problem's dependency pattern per paper Table I.
func (p *Problem[T]) Pattern() Pattern { return Classify(p.Deps) }

// bytesPerCell returns the effective cell size for transfer modeling.
func (p *Problem[T]) bytesPerCell() int {
	if p.BytesPerCell <= 0 {
		return 8
	}
	return p.BytesPerCell
}

// boundary resolves the boundary function, defaulting to the zero value.
func (p *Problem[T]) boundary(i, j int) T {
	if p.Boundary == nil {
		var zero T
		return zero
	}
	return p.Boundary(i, j)
}

// cellReader abstracts reading already-computed cells; implemented by the
// grid wrappers in the solvers.
type cellReader[T any] interface {
	at(i, j int) T
	inBounds(i, j int) bool
}

// gatherNeighbors resolves the contributing neighbours of (i, j), reading
// computed cells from rd and boundary values from the problem. Only the
// neighbours present in Deps are filled; the rest stay zero.
//
// The reader is a type parameter rather than an interface value so each
// instantiation dispatches its at/inBounds methods statically: this is the
// innermost loop of every solver and an interface call per neighbour read
// would defeat inlining.
func gatherNeighbors[T any, R cellReader[T]](p *Problem[T], rd R, i, j int) Neighbors[T] {
	var nb Neighbors[T]
	deps := p.Deps
	if deps.Has(DepW) {
		nb.W = readCell[T](p, rd, i, j-1)
	}
	if deps.Has(DepNW) {
		nb.NW = readCell[T](p, rd, i-1, j-1)
	}
	if deps.Has(DepN) {
		nb.N = readCell[T](p, rd, i-1, j)
	}
	if deps.Has(DepNE) {
		nb.NE = readCell[T](p, rd, i-1, j+1)
	}
	return nb
}

// readCell reads a computed cell, falling back to the boundary function for
// out-of-table coordinates.
func readCell[T any, R cellReader[T]](p *Problem[T], rd R, ni, nj int) T {
	if rd.inBounds(ni, nj) {
		return rd.at(ni, nj)
	}
	return p.boundary(ni, nj)
}
