package core

import (
	"repro/internal/hetsim"
)

// DefaultTSwitch derives the low-work threshold from the platform model:
// the CPU keeps an iteration entirely to itself while its parallel region
// finishes before a GPU kernel of the same width would (the kernel-launch
// floor makes the GPU a net loss on narrow fronts). t_switch is the number
// of leading fronts narrower than that break-even width, capped at half the
// fronts so the low-work prefix and suffix never overlap.
//
// Patterns with constant parallelism (Horizontal) have no low-work region
// and get 0, as in the paper ("A low work region does not exist in this
// pattern", §VI-C).
func DefaultTSwitch(p *hetsim.Platform, w Wavefronts) int {
	if w.Pattern == Horizontal {
		return 0
	}
	breakEven := breakEvenWidth(p)
	n := 0
	for t := 0; t < w.Fronts/2; t++ {
		if w.Size(t) >= breakEven {
			break
		}
		n++
	}
	return n
}

// breakEvenWidth returns the smallest front width for which a GPU kernel
// outruns a CPU parallel region, by direct evaluation of the two cost
// models (both are monotone in width).
func breakEvenWidth(p *hetsim.Platform) int {
	lo, hi := 1, 1
	// Exponential search for an upper bound, then binary search.
	for p.GPU.KernelDuration(hi, true) >= p.CPU.RegionDuration(hi, true) {
		hi *= 2
		if hi > 1<<24 {
			return hi // CPU wins at any realistic width
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if p.GPU.KernelDuration(mid, true) < p.CPU.RegionDuration(mid, true) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// DefaultTShare picks the CPU's fixed per-iteration slice. A single
// t_share must serve every high-work front (the paper's parameter is one
// number per problem, found empirically in §V-A), so the heuristic
// evaluates candidate values against an analytic per-front cost estimate
// summed over the whole high-work region and keeps the best. Balancing
// against the widest front alone — the obvious shortcut — overshoots badly
// on grow-shrink patterns, where a share sized for the peak width turns
// the CPU into the bottleneck on the mid-width fronts that dominate the
// run.
func DefaultTShare(p *hetsim.Platform, w Wavefronts, transfer TransferKind) int {
	width := w.MaxWidth()
	if width <= 1 {
		return 0
	}
	tSwitch := DefaultTSwitch(p, w)
	// Per-front cost of a fixed share s: both devices run concurrently;
	// the CPU is held to a slack fraction of the iteration so boundary
	// transfers hide under the kernel's tail (what makes two-way sharing
	// profitable at all; see the Figure 13 discussion).
	slack := 1 / 0.85
	if transfer == TransferTwoWay {
		slack = 1 / 0.75
	}
	estimate := func(s int) float64 {
		var total float64
		for t := tSwitch; t < w.Fronts-tSwitch; t++ {
			size := w.Size(t)
			nCPU := min(s, size)
			cpuT := float64(p.CPU.RegionDuration(nCPU, true)) * slack
			gpuT := float64(p.GPU.KernelDuration(size-nCPU, true))
			total += max(cpuT, gpuT)
		}
		return total
	}
	// Candidates: a coarse grid over [0, width/2] plus the widest-front
	// balance point; evaluate and keep the argmin.
	best, bestCost := 0, estimate(0)
	try := func(s int) {
		if s <= 0 || s > width/2 {
			return
		}
		if c := estimate(s); c < bestCost {
			best, bestCost = s, c
		}
	}
	for i := 1; i <= 16; i++ {
		try(width / 2 * i / 16)
	}
	try(balancedShare(p, width))
	return best
	// Note: on fronts so narrow that a CPU region alone beats the best
	// split iteration, t_share = width (the whole front on the CPU) would
	// be optimal. The heuristic deliberately stops at width/2 — the paper's
	// horizontal strategy always splits, which is exactly what its Figure
	// 13 measures at small sizes — but the §V-A tuner sweeps t_share up to
	// the full front width and discovers the degenerate optimum when it
	// exists (see TestTunedHeteroNeverCatastrophic).
}

// balancedShare solves cpuTime(s) ~= 0.85 * gpuTime(width - s) by
// fixed-point iteration: the share at which both devices finish a front of
// the given width together.
func balancedShare(p *hetsim.Platform, width int) int {
	const slack = 0.85
	s := 0
	for iter := 0; iter < 8; iter++ {
		gpuTime := p.GPU.KernelDuration(width-s, true)
		budget := float64(gpuTime)*slack - float64(p.CPU.DispatchOverhead)
		if budget <= 0 {
			return 0
		}
		threads := p.CPU.Threads
		if threads < 1 {
			threads = 1
		}
		next := int(budget / float64(p.CPU.CellCost) * float64(threads))
		if next > width/2 {
			next = width / 2
		}
		if next == s {
			break
		}
		s = next
	}
	return s
}
