package problems

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestHirschbergLCSClassic(t *testing.T) {
	got := HirschbergLCS("ABCBDAB", "BDCABA")
	if len(got) != 4 {
		t.Errorf("LCS %q has length %d, want 4", got, len(got))
	}
	if !isSubsequence(got, "ABCBDAB") || !isSubsequence(got, "BDCABA") {
		t.Errorf("%q is not a common subsequence", got)
	}
}

func TestHirschbergLCSEdgeCases(t *testing.T) {
	cases := []struct {
		a, b, want string
	}{
		{"", "", ""},
		{"", "abc", ""},
		{"abc", "", ""},
		{"a", "a", "a"},
		{"a", "b", ""},
		{"abc", "abc", "abc"},
	}
	for _, c := range cases {
		if got := HirschbergLCS(c.a, c.b); got != c.want {
			t.Errorf("HirschbergLCS(%q,%q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}

// Property: the linear-space LCS always has the optimal length and is a
// common subsequence — and so agrees in length with both the framework's
// full-table traceback and the reference.
func TestHirschbergLCSProperty(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		a := workload.RandomString(seedA, int(seedA%30)+1, "ABC")
		b := workload.RandomString(seedB, int(seedB%30)+1, "ABC")
		got := HirschbergLCS(a, b)
		if !isSubsequence(got, a) || !isSubsequence(got, b) {
			return false
		}
		return int32(len(got)) == LCSRef(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHirschbergMatchesFullTableTraceback(t *testing.T) {
	a, b := workload.SimilarStrings(31, 300, workload.DNAAlphabet, 0.3)
	g, err := core.Solve(LCS(a, b))
	if err != nil {
		t.Fatal(err)
	}
	full := LCSString(g, a, b)
	linear := HirschbergLCS(a, b)
	// Both must be optimal; the strings themselves may differ when several
	// LCSs exist.
	if len(full) != len(linear) {
		t.Errorf("full-table LCS length %d != linear-space length %d", len(full), len(linear))
	}
	if !isSubsequence(linear, a) || !isSubsequence(linear, b) {
		t.Error("linear-space LCS is not a common subsequence")
	}
}
