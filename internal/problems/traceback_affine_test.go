package problems

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestAffineAlignmentRecovery(t *testing.T) {
	s := DefaultAffineScores()
	a := "AAAATTTT"
	b := "AAAACCCCCTTTT"
	g := solvedGrid(t, AffineAlign(a, b, s))
	al := AffineAlignment(g, a, b, s)
	if strings.ReplaceAll(al.A, "-", "") != a || strings.ReplaceAll(al.B, "-", "") != b {
		t.Fatalf("alignment does not spell the inputs: %q / %q", al.A, al.B)
	}
	if got, want := AffineScoreOf(al, s), AffineScore(g, a, b); got != want {
		t.Errorf("recovered alignment scores %d, DP optimum %d", got, want)
	}
	// The optimal solution uses one contiguous 5-gap, not scattered gaps.
	if !strings.Contains(al.A, "-----") {
		t.Errorf("expected one contiguous 5-gap in %q", al.A)
	}
}

func TestAffineAlignmentEdgeCases(t *testing.T) {
	s := DefaultAffineScores()
	for _, c := range []struct{ a, b string }{
		{"", ""}, {"", "ACG"}, {"ACG", ""}, {"A", "A"}, {"ACGT", "TGCA"},
	} {
		if c.a == "" && c.b == "" {
			continue // empty alignment trivially scores 0
		}
		g := solvedGrid(t, AffineAlign(c.a, c.b, s))
		al := AffineAlignment(g, c.a, c.b, s)
		if strings.ReplaceAll(al.A, "-", "") != c.a || strings.ReplaceAll(al.B, "-", "") != c.b {
			t.Errorf("(%q,%q): alignment %q/%q does not spell inputs", c.a, c.b, al.A, al.B)
		}
		if got, want := AffineScoreOf(al, s), AffineScore(g, c.a, c.b); got != want {
			t.Errorf("(%q,%q): score %d != optimum %d", c.a, c.b, got, want)
		}
	}
}

// Property: the recovered affine alignment always re-scores to the DP
// optimum — the traceback never takes an inconsistent branch.
func TestAffineAlignmentScoreProperty(t *testing.T) {
	s := DefaultAffineScores()
	f := func(seedA, seedB uint64) bool {
		a := workload.RandomString(seedA, int(seedA%15)+1, workload.DNAAlphabet)
		b := workload.RandomString(seedB, int(seedB%15)+1, workload.DNAAlphabet)
		g, err := core.Solve(AffineAlign(a, b, s))
		if err != nil {
			return false
		}
		al := AffineAlignment(g, a, b, s)
		return AffineScoreOf(al, s) == AffineScore(g, a, b) &&
			strings.ReplaceAll(al.A, "-", "") == a &&
			strings.ReplaceAll(al.B, "-", "") == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestLocalAlignmentRecovery(t *testing.T) {
	s := DefaultAlignScores()
	a := "xxxxACGTACGTxxxx"
	b := "yyACGTACGTyy"
	g := solvedGrid(t, SmithWaterman(a, b, s))
	al, endA, endB := LocalAlignment(g, a, b, s)
	if al.A != "ACGTACGT" || al.B != "ACGTACGT" {
		t.Errorf("local alignment = %q/%q, want the embedded ACGTACGT", al.A, al.B)
	}
	if endA != 12 || endB != 10 {
		t.Errorf("end positions = %d/%d, want 12/10", endA, endB)
	}
	if got, want := al.Score(s), LocalBestScore(g); got != want {
		t.Errorf("fragment scores %d, DP best %d", got, want)
	}
}

// Property: the local fragment's linear score equals the table maximum.
func TestLocalAlignmentScoreProperty(t *testing.T) {
	s := DefaultAlignScores()
	f := func(seedA, seedB uint64) bool {
		a := workload.RandomString(seedA, int(seedA%20)+1, workload.DNAAlphabet)
		b := workload.RandomString(seedB, int(seedB%20)+1, workload.DNAAlphabet)
		g, err := core.Solve(SmithWaterman(a, b, s))
		if err != nil {
			return false
		}
		al, _, _ := LocalAlignment(g, a, b, s)
		return al.Score(s) == LocalBestScore(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
