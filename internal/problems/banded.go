package problems

import (
	"math"

	"repro/internal/core"
	"repro/internal/table"
)

// levBandInf is the absorbing value of the banded edit-distance recurrence.
const levBandInf = int32(math.MaxInt32 / 4)

// BandedLevenshtein computes the edit distance of a and b with an Ukkonen
// band of half-width band: cells with |i-j| > band are treated as
// unreachable. The result equals the true distance whenever it is at most
// band (and also requires |len(a)-len(b)| <= band for the final cell to be
// in band); otherwise it is an upper bound of at least band.
//
// Cost is O(max(len(a),len(b)) * band) instead of O(len(a)*len(b)).
func BandedLevenshtein(a, b string, band int) (int32, *table.Grid[int32], error) {
	p := Levenshtein(a, b)
	g, err := core.SolveBanded(p, band, func(i, j int) int32 { return levBandInf })
	if err != nil {
		return 0, nil, err
	}
	return g.At(len(a), len(b)), g, nil
}

// LevenshteinAdaptive doubles the band until the answer stabilizes below
// it: exact edit distance in O(n*d) time for distance d, the standard
// Ukkonen refinement loop.
func LevenshteinAdaptive(a, b string) (int32, error) {
	diff := len(a) - len(b)
	if diff < 0 {
		diff = -diff
	}
	band := diff + 1
	for {
		d, _, err := BandedLevenshtein(a, b, band)
		if err != nil {
			return 0, err
		}
		// The band is conclusive once the answer fits strictly inside it.
		if int(d) <= band {
			return d, nil
		}
		band *= 2
		if band > len(a)+len(b)+1 {
			d, _, err := BandedLevenshtein(a, b, band)
			return d, err
		}
	}
}
