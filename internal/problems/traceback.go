package problems

import (
	"repro/internal/table"
)

// Solution recovery ("traceback") over solved DP tables. The framework
// fills full tables, so optimal solutions — not just their scores — can be
// reconstructed by walking each recurrence backwards. These walks are
// O(rows+cols) and run on the host after the solve.

// EditOp is one operation of an edit script.
type EditOp struct {
	// Kind is one of "match", "substitute", "insert", "delete".
	Kind string
	// I and J are the 1-based positions in a and b the operation consumes
	// (0 when the respective string is not consumed).
	I, J int
}

// LevenshteinScript reconstructs a minimal edit script from a solved
// Levenshtein table. Insertions insert b's characters into a; deletions
// remove a's characters. The script length equals len(a) matches plus the
// edit distance... more precisely: the number of non-match operations
// equals the distance.
func LevenshteinScript(g *table.Grid[int32], a, b string) []EditOp {
	var ops []EditOp
	i, j := len(a), len(b)
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && a[i-1] == b[j-1] && g.At(i, j) == g.At(i-1, j-1):
			ops = append(ops, EditOp{Kind: "match", I: i, J: j})
			i, j = i-1, j-1
		case i > 0 && j > 0 && g.At(i, j) == g.At(i-1, j-1)+1:
			ops = append(ops, EditOp{Kind: "substitute", I: i, J: j})
			i, j = i-1, j-1
		case i > 0 && g.At(i, j) == g.At(i-1, j)+1:
			ops = append(ops, EditOp{Kind: "delete", I: i})
			i--
		default:
			ops = append(ops, EditOp{Kind: "insert", J: j})
			j--
		}
	}
	reverseOps(ops)
	return ops
}

// ApplyScript replays an edit script produced by LevenshteinScript on a,
// returning the transformed string (which must equal b).
func ApplyScript(a, b string, ops []EditOp) string {
	out := make([]byte, 0, len(b))
	for _, op := range ops {
		switch op.Kind {
		case "match":
			out = append(out, a[op.I-1])
		case "substitute", "insert":
			out = append(out, b[op.J-1])
		case "delete":
			// consumes a[op.I-1], emits nothing
		}
	}
	return string(out)
}

// ScriptCost counts the non-match operations of a script: its edit cost.
func ScriptCost(ops []EditOp) int {
	n := 0
	for _, op := range ops {
		if op.Kind != "match" {
			n++
		}
	}
	return n
}

// LCSString reconstructs one longest common subsequence from a solved LCS
// table.
func LCSString(g *table.Grid[int32], a, b string) string {
	var out []byte
	i, j := len(a), len(b)
	for i > 0 && j > 0 {
		switch {
		case a[i-1] == b[j-1] && g.At(i, j) == g.At(i-1, j-1)+1:
			out = append(out, a[i-1])
			i, j = i-1, j-1
		case g.At(i-1, j) >= g.At(i, j-1):
			i--
		default:
			j--
		}
	}
	reverseBytes(out)
	return string(out)
}

// Alignment is a pair of gapped strings of equal length.
type Alignment struct {
	A, B string
}

// GlobalAlignment reconstructs one optimal global alignment from a solved
// Needleman-Wunsch table. Gaps render as '-'.
func GlobalAlignment(g *table.Grid[int32], a, b string, s AlignScores) Alignment {
	var outA, outB []byte
	i, j := len(a), len(b)
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && g.At(i, j) == g.At(i-1, j-1)+s.sub(a[i-1], b[j-1]):
			outA = append(outA, a[i-1])
			outB = append(outB, b[j-1])
			i, j = i-1, j-1
		case i > 0 && g.At(i, j) == g.At(i-1, j)+s.Gap:
			outA = append(outA, a[i-1])
			outB = append(outB, '-')
			i--
		default:
			outA = append(outA, '-')
			outB = append(outB, b[j-1])
			j--
		}
	}
	reverseBytes(outA)
	reverseBytes(outB)
	return Alignment{A: string(outA), B: string(outB)}
}

// Score computes the score of an alignment under s, for verification.
func (al Alignment) Score(s AlignScores) int32 {
	var total int32
	for k := 0; k < len(al.A); k++ {
		x, y := al.A[k], al.B[k]
		switch {
		case x == '-' || y == '-':
			total += s.Gap
		default:
			total += s.sub(x, y)
		}
	}
	return total
}

// CheckerboardPath reconstructs a cheapest path from a solved checkerboard
// table: one column index per row, top to bottom, each step moving at most
// one column.
func CheckerboardPath(g *table.Grid[int32], cost [][]int32) []int {
	rows, cols := g.Rows(), g.Cols()
	path := make([]int, rows)
	best := 0
	for j := 1; j < cols; j++ {
		if g.At(rows-1, j) < g.At(rows-1, best) {
			best = j
		}
	}
	path[rows-1] = best
	for i := rows - 1; i > 0; i-- {
		j := path[i]
		// The parent is whichever in-range neighbour of the previous row
		// yields this cell's value.
		parent := -1
		for _, cand := range []int{j - 1, j, j + 1} {
			if cand < 0 || cand >= cols {
				continue
			}
			if g.At(i, j) == cost[i][j]+g.At(i-1, cand) {
				parent = cand
				break
			}
		}
		path[i-1] = parent
	}
	return path
}

// PathCost sums the costs along a checkerboard path.
func PathCost(cost [][]int32, path []int) int32 {
	var total int32
	for i, j := range path {
		total += cost[i][j]
	}
	return total
}

func reverseOps(ops []EditOp) {
	for l, r := 0, len(ops)-1; l < r; l, r = l+1, r-1 {
		ops[l], ops[r] = ops[r], ops[l]
	}
}

func reverseBytes(b []byte) {
	for l, r := 0, len(b)-1; l < r; l, r = l+1, r-1 {
		b[l], b[r] = b[r], b[l]
	}
}
