package problems

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/table"
	"repro/internal/workload"
)

func solvedGrid[T any](t *testing.T, p *core.Problem[T]) *table.Grid[T] {
	t.Helper()
	g, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLevenshteinScriptKitten(t *testing.T) {
	a, b := "kitten", "sitting"
	g := solvedGrid(t, Levenshtein(a, b))
	ops := LevenshteinScript(g, a, b)
	if got := ScriptCost(ops); got != 3 {
		t.Errorf("script cost = %d, want 3", got)
	}
	if got := ApplyScript(a, b, ops); got != b {
		t.Errorf("ApplyScript = %q, want %q", got, b)
	}
}

func TestLevenshteinScriptEdgeCases(t *testing.T) {
	cases := []struct{ a, b string }{
		{"", ""}, {"", "abc"}, {"abc", ""}, {"same", "same"}, {"ab", "ba"},
	}
	for _, c := range cases {
		g := solvedGrid(t, Levenshtein(c.a, c.b))
		ops := LevenshteinScript(g, c.a, c.b)
		if got := ApplyScript(c.a, c.b, ops); got != c.b {
			t.Errorf("(%q,%q): ApplyScript = %q", c.a, c.b, got)
		}
		if int32(ScriptCost(ops)) != LevenshteinRef(c.a, c.b) {
			t.Errorf("(%q,%q): cost %d != distance %d", c.a, c.b, ScriptCost(ops), LevenshteinRef(c.a, c.b))
		}
	}
}

// Property: for random string pairs the recovered script transforms a into
// b with exactly distance non-match operations.
func TestLevenshteinScriptProperty(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		a := workload.RandomString(seedA, int(seedA%23)+1, workload.DNAAlphabet)
		b := workload.RandomString(seedB, int(seedB%23)+1, workload.DNAAlphabet)
		g, err := core.Solve(Levenshtein(a, b))
		if err != nil {
			return false
		}
		ops := LevenshteinScript(g, a, b)
		return ApplyScript(a, b, ops) == b &&
			int32(ScriptCost(ops)) == LevenshteinRef(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func isSubsequence(sub, s string) bool {
	i := 0
	for j := 0; j < len(s) && i < len(sub); j++ {
		if s[j] == sub[i] {
			i++
		}
	}
	return i == len(sub)
}

func TestLCSStringClassic(t *testing.T) {
	a, b := "ABCBDAB", "BDCABA"
	g := solvedGrid(t, LCS(a, b))
	lcs := LCSString(g, a, b)
	if len(lcs) != 4 {
		t.Errorf("LCS %q has length %d, want 4", lcs, len(lcs))
	}
	if !isSubsequence(lcs, a) || !isSubsequence(lcs, b) {
		t.Errorf("LCS %q is not a common subsequence of %q and %q", lcs, a, b)
	}
}

// Property: the recovered string is a common subsequence of both inputs
// with length equal to the DP answer.
func TestLCSStringProperty(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		a := workload.RandomString(seedA, int(seedA%20)+1, "AB")
		b := workload.RandomString(seedB, int(seedB%20)+1, "AB")
		g, err := core.Solve(LCS(a, b))
		if err != nil {
			return false
		}
		lcs := LCSString(g, a, b)
		return isSubsequence(lcs, a) && isSubsequence(lcs, b) &&
			int32(len(lcs)) == LCSRef(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGlobalAlignmentRecovery(t *testing.T) {
	s := DefaultAlignScores()
	a, b := "GATTACA", "GCATGCU"
	g := solvedGrid(t, NeedlemanWunsch(a, b, s))
	al := GlobalAlignment(g, a, b, s)
	if len(al.A) != len(al.B) {
		t.Fatalf("alignment rows differ in length: %q / %q", al.A, al.B)
	}
	if strings.ReplaceAll(al.A, "-", "") != a || strings.ReplaceAll(al.B, "-", "") != b {
		t.Errorf("alignment does not spell the inputs: %q / %q", al.A, al.B)
	}
	if got, want := al.Score(s), GlobalScore(g, a, b); got != want {
		t.Errorf("alignment score %d != DP score %d", got, want)
	}
}

// Property: recovered alignments always re-score to the DP optimum.
func TestGlobalAlignmentScoreProperty(t *testing.T) {
	s := DefaultAlignScores()
	f := func(seedA, seedB uint64) bool {
		a := workload.RandomString(seedA, int(seedA%18)+1, workload.DNAAlphabet)
		b := workload.RandomString(seedB, int(seedB%18)+1, workload.DNAAlphabet)
		g, err := core.Solve(NeedlemanWunsch(a, b, s))
		if err != nil {
			return false
		}
		al := GlobalAlignment(g, a, b, s)
		return al.Score(s) == GlobalScore(g, a, b) &&
			strings.ReplaceAll(al.A, "-", "") == a &&
			strings.ReplaceAll(al.B, "-", "") == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCheckerboardPathRecovery(t *testing.T) {
	cost := workload.CostGrid(31, 40, 25, 30)
	g := solvedGrid(t, Checkerboard(cost))
	path := CheckerboardPath(g, cost)
	if len(path) != 40 {
		t.Fatalf("path length %d, want 40", len(path))
	}
	for i := 1; i < len(path); i++ {
		if path[i] < 0 || path[i] >= 25 {
			t.Fatalf("path[%d] = %d out of range", i, path[i])
		}
		d := path[i] - path[i-1]
		if d < -1 || d > 1 {
			t.Fatalf("path jumps %d columns between rows %d and %d", d, i-1, i)
		}
	}
	if got, want := PathCost(cost, path), CheckerboardBest(g); got != want {
		t.Errorf("path cost %d != DP best %d", got, want)
	}
}

// Property: the recovered path is always valid and achieves the optimum.
func TestCheckerboardPathProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rows := int(seed%12) + 2
		cols := int(seed/7%12) + 2
		cost := workload.CostGrid(seed, rows, cols, 9)
		g, err := core.Solve(Checkerboard(cost))
		if err != nil {
			return false
		}
		path := CheckerboardPath(g, cost)
		for i := 1; i < len(path); i++ {
			if path[i] < 0 || path[i] >= cols || path[i]-path[i-1] < -1 || path[i]-path[i-1] > 1 {
				return false
			}
		}
		return PathCost(cost, path) == CheckerboardBest(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestTracebackWorksOnHeteroSolvedGrids(t *testing.T) {
	// The traceback routines must work on grids produced by any solver,
	// including the heterogeneous one with its pattern-specific layout.
	a, b := workload.SimilarStrings(3, 120, workload.ASCIIAlphabet, 0.2)
	res, err := core.SolveHetero(Levenshtein(a, b), core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		t.Fatal(err)
	}
	ops := LevenshteinScript(res.Grid, a, b)
	if got := ApplyScript(a, b, ops); got != b {
		t.Errorf("script from hetero grid fails to transform a into b")
	}
}
