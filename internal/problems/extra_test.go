package problems

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/workload"
)

func binaryGrid(seed uint64, rows, cols int, onesPercent int) [][]uint8 {
	r := workload.NewRNG(seed)
	g := make([][]uint8, rows)
	for i := range g {
		g[i] = make([]uint8, cols)
		for j := range g[i] {
			if r.Intn(100) < onesPercent {
				g[i][j] = 1
			}
		}
	}
	return g
}

func TestMaximalSquareKnown(t *testing.T) {
	grid := [][]uint8{
		{1, 0, 1, 1, 1},
		{1, 0, 1, 1, 1},
		{1, 1, 1, 1, 1},
		{1, 0, 0, 1, 0},
	}
	g, err := core.Solve(MaximalSquare(grid))
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0-2, columns 2-4 form the largest all-ones square (side 3).
	if got := MaximalSquareSide(g); got != 3 {
		t.Errorf("maximal square side = %d, want 3", got)
	}
	if got := MaximalSquareRef(grid); got != 3 {
		t.Errorf("brute force side = %d, want 3", got)
	}
}

func TestMaximalSquareAllOnes(t *testing.T) {
	grid := binaryGrid(1, 12, 9, 100)
	g, err := core.Solve(MaximalSquare(grid))
	if err != nil {
		t.Fatal(err)
	}
	if got := MaximalSquareSide(g); got != 9 {
		t.Errorf("all-ones 12x9 square side = %d, want 9", got)
	}
}

// Property: the DP result matches the brute-force oracle on random grids.
func TestMaximalSquareMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, density uint8) bool {
		rows := int(seed%12) + 1
		cols := int(seed/13%12) + 1
		grid := binaryGrid(seed, rows, cols, int(density%101))
		g, err := core.Solve(MaximalSquare(grid))
		if err != nil {
			return false
		}
		return MaximalSquareSide(g) == MaximalSquareRef(grid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMaximalSquareHeteroAgrees(t *testing.T) {
	grid := binaryGrid(77, 60, 80, 85)
	p := MaximalSquare(grid)
	want, _ := core.Solve(p)
	res, err := core.SolveHetero(p, core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		t.Fatal(err)
	}
	if MaximalSquareSide(res.Grid) != MaximalSquareSide(want) {
		t.Error("hetero maximal square differs")
	}
}

func TestDelannoyCentralNumbers(t *testing.T) {
	n := len(CentralDelannoyFirst12)
	g, err := core.Solve(Delannoy(n, n))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range CentralDelannoyFirst12 {
		if got := g.At(i, i); got != want {
			t.Errorf("D(%d,%d) = %d, want %d (OEIS A001850)", i, i, got, want)
		}
	}
}

func TestDelannoySymmetry(t *testing.T) {
	g, err := core.SolveParallel(Delannoy(30, 30), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		for j := 0; j < i; j++ {
			if g.At(i, j) != g.At(j, i) {
				t.Fatalf("Delannoy table not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestDelannoyAllSolversAgree(t *testing.T) {
	p := Delannoy(40, 50)
	want, _ := core.Solve(p)
	res, err := core.SolveHetero(p, core.Options{TSwitch: 6, TShare: 4})
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := core.SolveTiled(p, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		for j := 0; j < 50; j++ {
			if res.Grid.At(i, j) != want.At(i, j) || tiled.At(i, j) != want.At(i, j) {
				t.Fatalf("solvers disagree at (%d,%d)", i, j)
			}
		}
	}
}

func TestSCSIdentityWithLCS(t *testing.T) {
	// |SCS(a,b)| = len(a) + len(b) - |LCS(a,b)|.
	a, b := workload.SimilarStrings(5, 150, workload.DNAAlphabet, 0.3)
	gs, err := core.Solve(SCS(a, b))
	if err != nil {
		t.Fatal(err)
	}
	scs := SCSLength(gs, a, b)
	lcs := LCSRef(a, b)
	if scs != int32(len(a)+len(b))-lcs {
		t.Errorf("SCS %d != %d + %d - %d", scs, len(a), len(b), lcs)
	}
}

// Property: the SCS/LCS identity holds for arbitrary string pairs.
func TestSCSIdentityProperty(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		a := workload.RandomString(seedA, int(seedA%25), "AB")
		b := workload.RandomString(seedB, int(seedB%25), "AB")
		g, err := core.Solve(SCS(a, b))
		if err != nil {
			return false
		}
		return SCSLength(g, a, b) == int32(len(a)+len(b))-LCSRef(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSCSEdgeCases(t *testing.T) {
	g, _ := core.Solve(SCS("", "abc"))
	if SCSLength(g, "", "abc") != 3 {
		t.Error("SCS with empty a wrong")
	}
	g2, _ := core.Solve(SCS("same", "same"))
	if SCSLength(g2, "same", "same") != 4 {
		t.Error("SCS of identical strings wrong")
	}
}

func TestLongestPalindromicSubsequence(t *testing.T) {
	cases := []struct {
		s    string
		want int32
	}{
		{"", 0},
		{"a", 1},
		{"ab", 1},
		{"racecar", 7},
		{"bbbab", 4},     // "bbbb"
		{"character", 5}, // "carac"
	}
	for _, c := range cases {
		got, err := LongestPalindromicSubsequence(c.s)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("LPS(%q) = %d, want %d", c.s, got, c.want)
		}
	}
}

// Property: palindromes score their full length, and appending a character
// never decreases the LPS.
func TestLPSProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := workload.RandomString(seed, int(seed%20)+1, "AB")
		pal := s + reverseString(s)
		full, err := LongestPalindromicSubsequence(pal)
		if err != nil || full != int32(len(pal)) {
			return false
		}
		base, err := LongestPalindromicSubsequence(s)
		if err != nil {
			return false
		}
		ext, err := LongestPalindromicSubsequence(s + "A")
		return err == nil && ext >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
