package problems

// Hirschberg's divide-and-conquer LCS: recovers a longest common
// subsequence string in O(min(m,n)) working space instead of the full
// O(mn) table, the classic answer to "the table does not fit". It pairs
// with the framework's full-table traceback (LCSString) as the two ends of
// the space/time trade-off and cross-checks it in tests.

// lcsLastRow returns the final row of the LCS length table of a vs b,
// in O(len(b)) space.
func lcsLastRow(a, b string) []int32 {
	prev := make([]int32, len(b)+1)
	cur := make([]int32, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else {
				cur[j] = max(cur[j-1], prev[j])
			}
		}
		prev, cur = cur, prev
		clear(cur)
	}
	return prev
}

// reverseString returns s reversed.
func reverseString(s string) string {
	b := []byte(s)
	reverseBytes(b)
	return string(b)
}

// HirschbergLCS returns one longest common subsequence of a and b using
// linear space.
func HirschbergLCS(a, b string) string {
	switch {
	case len(a) == 0 || len(b) == 0:
		return ""
	case len(a) == 1:
		for i := 0; i < len(b); i++ {
			if b[i] == a[0] {
				return a
			}
		}
		return ""
	}
	mid := len(a) / 2
	// Score of pairing a[:mid] with b[:j], and a[mid:] with b[j:], for
	// every split point j; the optimal j maximizes their sum.
	left := lcsLastRow(a[:mid], b)
	right := lcsLastRow(reverseString(a[mid:]), reverseString(b))
	bestJ, bestScore := 0, int32(-1)
	for j := 0; j <= len(b); j++ {
		if s := left[j] + right[len(b)-j]; s > bestScore {
			bestJ, bestScore = j, s
		}
	}
	return HirschbergLCS(a[:mid], b[:bestJ]) + HirschbergLCS(a[mid:], b[bestJ:])
}
