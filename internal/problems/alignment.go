package problems

import (
	"repro/internal/core"
)

// AlignScores parameterizes sequence-alignment recurrences.
type AlignScores struct {
	Match    int32 // added when characters agree (positive)
	Mismatch int32 // added when characters disagree (negative)
	Gap      int32 // added per gap position (negative)
}

// DefaultAlignScores returns the common +2/-1/-2 scoring.
func DefaultAlignScores() AlignScores {
	return AlignScores{Match: 2, Mismatch: -1, Gap: -2}
}

func (s AlignScores) sub(x, y byte) int32 {
	if x == y {
		return s.Match
	}
	return s.Mismatch
}

// NeedlemanWunsch builds the global-alignment score table for a and b with
// linear gap cost. Contributing set {W, NW, N}: anti-diagonal — the
// "pairwise sequence alignment" workload the paper's introduction cites as
// a canonical LDDP problem.
func NeedlemanWunsch(a, b string, s AlignScores) *core.Problem[int32] {
	return &core.Problem[int32]{
		Name: "needleman-wunsch",
		Rows: len(a) + 1,
		Cols: len(b) + 1,
		Deps: core.DepW | core.DepNW | core.DepN,
		F: func(i, j int, nb core.Neighbors[int32]) int32 {
			switch {
			case i == 0 && j == 0:
				return 0
			case i == 0:
				return int32(j) * s.Gap
			case j == 0:
				return int32(i) * s.Gap
			}
			return max(nb.NW+s.sub(a[i-1], b[j-1]), nb.N+s.Gap, nb.W+s.Gap)
		},
		BytesPerCell: 4,
		InputBytes:   len(a) + len(b),
	}
}

// GlobalScore extracts the optimal global alignment score.
func GlobalScore(g interface{ At(i, j int) int32 }, a, b string) int32 {
	return g.At(len(a), len(b))
}

// NeedlemanWunschRef computes the global alignment score independently.
func NeedlemanWunschRef(a, b string, s AlignScores) int32 {
	prev := make([]int32, len(b)+1)
	cur := make([]int32, len(b)+1)
	for j := range prev {
		prev[j] = int32(j) * s.Gap
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = int32(i) * s.Gap
		for j := 1; j <= len(b); j++ {
			cur[j] = max(prev[j-1]+s.sub(a[i-1], b[j-1]), prev[j]+s.Gap, cur[j-1]+s.Gap)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// SmithWaterman builds the local-alignment score table (scores clamped at
// zero). Contributing set {W, NW, N}: anti-diagonal.
func SmithWaterman(a, b string, s AlignScores) *core.Problem[int32] {
	return &core.Problem[int32]{
		Name: "smith-waterman",
		Rows: len(a) + 1,
		Cols: len(b) + 1,
		Deps: core.DepW | core.DepNW | core.DepN,
		F: func(i, j int, nb core.Neighbors[int32]) int32 {
			if i == 0 || j == 0 {
				return 0
			}
			return max(0, nb.NW+s.sub(a[i-1], b[j-1]), nb.N+s.Gap, nb.W+s.Gap)
		},
		BytesPerCell: 4,
		InputBytes:   len(a) + len(b),
	}
}

// LocalBestScore scans a solved Smith-Waterman table for the best local
// alignment score.
func LocalBestScore(g interface {
	At(i, j int) int32
	Rows() int
	Cols() int
}) int32 {
	var best int32
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			if v := g.At(i, j); v > best {
				best = v
			}
		}
	}
	return best
}

// SmithWatermanRef computes the best local alignment score independently.
func SmithWatermanRef(a, b string, s AlignScores) int32 {
	prev := make([]int32, len(b)+1)
	cur := make([]int32, len(b)+1)
	var best int32
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			cur[j] = max(0, prev[j-1]+s.sub(a[i-1], b[j-1]), prev[j]+s.Gap, cur[j-1]+s.Gap)
			if cur[j] > best {
				best = cur[j]
			}
		}
		prev, cur = cur, prev
		clear(cur)
	}
	return best
}
