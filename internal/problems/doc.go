// Package problems contains the LDDP-Plus case studies of the paper —
// Levenshtein distance (anti-diagonal, §VI-A), Floyd-Steinberg dithering
// (knight-move, §VI-B), and the checkerboard problem (horizontal case-2,
// §VI-C) — together with further classic LDDP instances that exercise the
// remaining patterns: longest common subsequence, Needleman-Wunsch and
// Smith-Waterman alignment, dynamic time warping, and seam carving.
//
// Every problem ships in two forms:
//
//   - a constructor returning a core.Problem, the framework formulation
//     (recurrence + contributing set + boundary), and
//   - an independent straight-line reference implementation (the *Ref
//     functions), written without the framework, against which the
//     framework's output is tested cell-for-cell.
package problems
