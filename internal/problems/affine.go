package problems

import (
	"math"

	"repro/internal/core"
)

// Gotoh's affine-gap pairwise alignment — "pairwise sequence alignment
// with affine gap cost", which the paper's introduction lists among the
// canonical LDDP problems. Each DP cell carries the three interleaved
// state tables of the recurrence, demonstrating that the framework's
// generic cell type handles multi-valued recurrences:
//
//	M(i,j) = sub(a_i, b_j) + max(M, X, Y)(i-1, j-1)
//	X(i,j) = max(M(i-1,j) + open, X(i-1,j) + extend)   gap in b
//	Y(i,j) = max(M(i,j-1) + open, Y(i,j-1) + extend)   gap in a
//
// M reads NW, X reads N, Y reads W: the contributing set is {W, NW, N} and
// the pattern anti-diagonal, exactly like the linear-gap alignments.

// AffineCell is the three-state DP value of the Gotoh recurrence.
type AffineCell struct {
	M, X, Y int32
}

// affineNegInf is the "minus infinity" of the recurrence, deep enough that
// summing scores can never overflow back into the valid range.
const affineNegInf = int32(math.MinInt32 / 4)

// AffineScores parameterizes the affine-gap model. Open is charged for the
// first position of a gap, Extend for each subsequent one (both negative).
type AffineScores struct {
	Match    int32
	Mismatch int32
	Open     int32
	Extend   int32
}

// DefaultAffineScores returns the common +2/-1/-5/-1 scoring.
func DefaultAffineScores() AffineScores {
	return AffineScores{Match: 2, Mismatch: -1, Open: -5, Extend: -1}
}

func (s AffineScores) sub(x, y byte) int32 {
	if x == y {
		return s.Match
	}
	return s.Mismatch
}

// AffineAlign builds the Gotoh global-alignment problem for a and b.
func AffineAlign(a, b string, s AffineScores) *core.Problem[AffineCell] {
	return &core.Problem[AffineCell]{
		Name: "affine-align",
		Rows: len(a) + 1,
		Cols: len(b) + 1,
		Deps: core.DepW | core.DepNW | core.DepN,
		F: func(i, j int, nb core.Neighbors[AffineCell]) AffineCell {
			switch {
			case i == 0 && j == 0:
				return AffineCell{M: 0, X: affineNegInf, Y: affineNegInf}
			case i == 0:
				return AffineCell{
					M: affineNegInf,
					X: affineNegInf,
					Y: s.Open + int32(j-1)*s.Extend,
				}
			case j == 0:
				return AffineCell{
					M: affineNegInf,
					X: s.Open + int32(i-1)*s.Extend,
					Y: affineNegInf,
				}
			}
			return AffineCell{
				M: s.sub(a[i-1], b[j-1]) + max(nb.NW.M, nb.NW.X, nb.NW.Y),
				X: max(nb.N.M+s.Open, nb.N.X+s.Extend),
				Y: max(nb.W.M+s.Open, nb.W.Y+s.Extend),
			}
		},
		BytesPerCell: 12, // three int32 states per cell
		InputBytes:   len(a) + len(b),
	}
}

// AffineScore extracts the optimal global affine-gap score.
func AffineScore(g interface{ At(i, j int) AffineCell }, a, b string) int32 {
	c := g.At(len(a), len(b))
	return max(c.M, c.X, c.Y)
}

// AffineAlignRef computes the Gotoh score with an independent rolling-array
// implementation.
func AffineAlignRef(a, b string, s AffineScores) int32 {
	m := len(b)
	type row struct{ M, X, Y []int32 }
	mk := func() row {
		return row{M: make([]int32, m+1), X: make([]int32, m+1), Y: make([]int32, m+1)}
	}
	prev, cur := mk(), mk()
	prev.M[0] = 0
	prev.X[0], prev.Y[0] = affineNegInf, affineNegInf
	for j := 1; j <= m; j++ {
		prev.M[j] = affineNegInf
		prev.X[j] = affineNegInf
		prev.Y[j] = s.Open + int32(j-1)*s.Extend
	}
	for i := 1; i <= len(a); i++ {
		cur.M[0] = affineNegInf
		cur.X[0] = s.Open + int32(i-1)*s.Extend
		cur.Y[0] = affineNegInf
		for j := 1; j <= m; j++ {
			cur.M[j] = s.sub(a[i-1], b[j-1]) + max(prev.M[j-1], prev.X[j-1], prev.Y[j-1])
			cur.X[j] = max(prev.M[j]+s.Open, prev.X[j]+s.Extend)
			cur.Y[j] = max(cur.M[j-1]+s.Open, cur.Y[j-1]+s.Extend)
		}
		prev, cur = cur, prev
	}
	return max(prev.M[m], prev.X[m], prev.Y[m])
}
