package problems

import (
	"math"

	"repro/internal/core"
)

// DTW builds the dynamic-time-warping cost table for series x and y — the
// speech-processing workload the paper's introduction cites. With d(i,j) =
// |x[i]-y[j]|,
//
//	D(i,j) = d(i,j) + min(D(i-1,j), D(i,j-1), D(i-1,j-1))
//
// over a (len(x)+1) x (len(y)+1) table whose first row and column are
// +Inf except D(0,0) = 0. Contributing set {W, NW, N}: anti-diagonal.
func DTW(x, y []float64) *core.Problem[float64] {
	return &core.Problem[float64]{
		Name: "dtw",
		Rows: len(x) + 1,
		Cols: len(y) + 1,
		Deps: core.DepW | core.DepNW | core.DepN,
		F: func(i, j int, nb core.Neighbors[float64]) float64 {
			switch {
			case i == 0 && j == 0:
				return 0
			case i == 0 || j == 0:
				return math.Inf(1)
			}
			return math.Abs(x[i-1]-y[j-1]) + min(nb.W, nb.NW, nb.N)
		},
		BytesPerCell: 8,
		InputBytes:   8 * (len(x) + len(y)),
	}
}

// DTWDistance extracts the warping distance from a solved table.
func DTWDistance(g interface{ At(i, j int) float64 }, x, y []float64) float64 {
	return g.At(len(x), len(y))
}

// DTWRef computes the warping distance independently.
func DTWRef(x, y []float64) float64 {
	n, m := len(x), len(y)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = math.Inf(1)
	}
	for i := 1; i <= n; i++ {
		cur[0] = math.Inf(1)
		for j := 1; j <= m; j++ {
			cur[j] = math.Abs(x[i-1]-y[j-1]) + min(cur[j-1], prev[j-1], prev[j])
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// DTWBanded computes the warping distance under a Sakoe-Chiba band of
// half-width band: warping paths may deviate at most band steps from the
// diagonal, the standard constraint in speech processing. The result is
// exact when the unconstrained optimal path stays within the band, and an
// upper bound otherwise; cost drops to O(n*band).
func DTWBanded(x, y []float64, band int) (float64, error) {
	p := DTW(x, y)
	g, err := core.SolveBanded(p, band, func(i, j int) float64 { return math.Inf(1) })
	if err != nil {
		return 0, err
	}
	return g.At(len(x), len(y)), nil
}
