package problems

import (
	"repro/internal/core"
)

// Further classic LDDP-Plus instances exercising the anti-diagonal
// pattern, with independent verification paths: a combinatorial identity
// (Delannoy numbers), a geometric invariant (maximal square), and a
// complementary-problem identity (shortest common supersequence).

// MaximalSquare builds the classic maximal-square DP over a binary grid:
// side(i,j) = 0 when grid[i][j] = 0, else 1 + min(W, NW, N). The largest
// all-ones square's side is the table maximum. Contributing set {W,NW,N}:
// anti-diagonal.
func MaximalSquare(grid [][]uint8) *core.Problem[int32] {
	rows, cols := len(grid), len(grid[0])
	return &core.Problem[int32]{
		Name: "maximal-square",
		Rows: rows,
		Cols: cols,
		Deps: core.DepW | core.DepNW | core.DepN,
		F: func(i, j int, nb core.Neighbors[int32]) int32 {
			if grid[i][j] == 0 {
				return 0
			}
			return 1 + min(nb.W, nb.NW, nb.N)
		},
		// Out-of-table neighbours act as side 0.
		BytesPerCell: 4,
		InputBytes:   rows * cols,
	}
}

// MaximalSquareSide extracts the side length of the largest all-ones
// square.
func MaximalSquareSide(g interface {
	At(i, j int) int32
	Rows() int
	Cols() int
}) int32 {
	var best int32
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			if v := g.At(i, j); v > best {
				best = v
			}
		}
	}
	return best
}

// MaximalSquareRef finds the largest all-ones square by brute force,
// O(rows*cols*min^2): an independent oracle for small grids.
func MaximalSquareRef(grid [][]uint8) int32 {
	rows, cols := len(grid), len(grid[0])
	allOnes := func(i, j, side int) bool {
		for di := 0; di < side; di++ {
			for dj := 0; dj < side; dj++ {
				if grid[i+di][j+dj] == 0 {
					return false
				}
			}
		}
		return true
	}
	best := 0
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			for side := best + 1; i+side <= rows && j+side <= cols; side++ {
				if !allOnes(i, j, side) {
					break
				}
				best = side
			}
		}
	}
	return int32(best)
}

// Delannoy builds the Delannoy-number table: D(i,j) counts lattice paths
// from (0,0) to (i,j) using east, north, and north-east steps, with the
// recurrence D(i,j) = D(i-1,j) + D(i,j-1) + D(i-1,j-1) and D(i,0) =
// D(0,j) = 1. Contributing set {W,NW,N}: anti-diagonal. Values are taken
// modulo 1e9+7 so large tables stay exact in int64.
func Delannoy(rows, cols int) *core.Problem[int64] {
	const mod = 1_000_000_007
	return &core.Problem[int64]{
		Name: "delannoy",
		Rows: rows,
		Cols: cols,
		Deps: core.DepW | core.DepNW | core.DepN,
		F: func(i, j int, nb core.Neighbors[int64]) int64 {
			if i == 0 || j == 0 {
				return 1
			}
			return (nb.W + nb.NW + nb.N) % mod
		},
		BytesPerCell: 8,
	}
}

// CentralDelannoyFirst12 are D(n,n) for n = 0..11 (OEIS A001850), the
// closed-form oracle for the Delannoy table.
var CentralDelannoyFirst12 = []int64{
	1, 3, 13, 63, 321, 1683, 8989, 48639, 265729, 1462563, 8097453, 45046719,
}

// SCS builds the shortest-common-supersequence length table:
// scs(i,j) = i or j on the boundary; NW+1 when characters match; else
// 1 + min(W, N). Contributing set {W,NW,N}: anti-diagonal. The classic
// identity |SCS(a,b)| = len(a) + len(b) - |LCS(a,b)| verifies it against
// the LCS problem.
func SCS(a, b string) *core.Problem[int32] {
	return &core.Problem[int32]{
		Name: "scs",
		Rows: len(a) + 1,
		Cols: len(b) + 1,
		Deps: core.DepW | core.DepNW | core.DepN,
		F: func(i, j int, nb core.Neighbors[int32]) int32 {
			switch {
			case i == 0:
				return int32(j)
			case j == 0:
				return int32(i)
			case a[i-1] == b[j-1]:
				return nb.NW + 1
			}
			return 1 + min(nb.W, nb.N)
		},
		BytesPerCell: 4,
		InputBytes:   len(a) + len(b),
	}
}

// SCSLength extracts the shortest-common-supersequence length.
func SCSLength(g interface{ At(i, j int) int32 }, a, b string) int32 {
	return g.At(len(a), len(b))
}

// LongestPalindromicSubsequence returns the length of the longest
// palindromic subsequence of s, via the classic identity
// LPS(s) = |LCS(s, reverse(s))| — another anti-diagonal problem for free.
func LongestPalindromicSubsequence(s string) (int32, error) {
	r := reverseString(s)
	g, err := core.Solve(LCS(s, r))
	if err != nil {
		return 0, err
	}
	return LCSLength(g, s, r), nil
}
