package problems

import (
	"repro/internal/core"
)

// Levenshtein builds the paper's §VI-A case study: the edit-distance table
// for strings a and b. The recurrence
//
//	f(i,j) = max(i,j)                                  if min(i,j) = 0
//	f(i,j) = f(i-1,j-1)                                if a[i] = b[j]
//	f(i,j) = 1 + min(f(i-1,j), f(i,j-1), f(i-1,j-1))   otherwise
//
// reads {W, NW, N} and therefore follows the anti-diagonal pattern.
// The table is (len(a)+1) x (len(b)+1).
func Levenshtein(a, b string) *core.Problem[int32] {
	return &core.Problem[int32]{
		Name: "levenshtein",
		Rows: len(a) + 1,
		Cols: len(b) + 1,
		Deps: core.DepW | core.DepNW | core.DepN,
		F: func(i, j int, nb core.Neighbors[int32]) int32 {
			if i == 0 || j == 0 {
				return int32(max(i, j))
			}
			if a[i-1] == b[j-1] {
				return nb.NW
			}
			return 1 + min(nb.W, nb.NW, nb.N)
		},
		BytesPerCell: 4,
		// The inputs are two strings; their upload is negligible next to
		// the table (the paper's Fig 10 discussion attributes the GPU's
		// small-size losses to kernel setup, not input transfer).
		InputBytes: len(a) + len(b),
	}
}

// LevenshteinDistance extracts the edit distance from a solved table.
func LevenshteinDistance(g interface{ At(i, j int) int32 }, a, b string) int32 {
	return g.At(len(a), len(b))
}

// LevenshteinRef computes the edit distance with an independent two-row
// implementation (no framework types).
func LevenshteinRef(a, b string) int32 {
	prev := make([]int32, len(b)+1)
	cur := make([]int32, len(b)+1)
	for j := range prev {
		prev[j] = int32(j)
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = int32(i)
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1]
			} else {
				cur[j] = 1 + min(cur[j-1], prev[j-1], prev[j])
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// LCS builds the longest-common-subsequence table for a and b — the
// problem Figure 1(c) uses to illustrate contributing cells, and the
// workload of the paper's Figure 7 tuning experiment. Contributing set
// {W, NW, N}: anti-diagonal.
func LCS(a, b string) *core.Problem[int32] {
	return &core.Problem[int32]{
		Name: "lcs",
		Rows: len(a) + 1,
		Cols: len(b) + 1,
		Deps: core.DepW | core.DepNW | core.DepN,
		F: func(i, j int, nb core.Neighbors[int32]) int32 {
			if i == 0 || j == 0 {
				return 0
			}
			if a[i-1] == b[j-1] {
				return nb.NW + 1
			}
			return max(nb.W, nb.N)
		},
		BytesPerCell: 4,
		InputBytes:   len(a) + len(b),
	}
}

// LCSLength extracts the LCS length from a solved table.
func LCSLength(g interface{ At(i, j int) int32 }, a, b string) int32 {
	return g.At(len(a), len(b))
}

// LCSRef computes the LCS length independently.
func LCSRef(a, b string) int32 {
	prev := make([]int32, len(b)+1)
	cur := make([]int32, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else {
				cur[j] = max(cur[j-1], prev[j])
			}
		}
		prev, cur = cur, prev
		clear(cur)
	}
	return prev[len(b)]
}
