package problems

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestAffineAlignSelf(t *testing.T) {
	s := DefaultAffineScores()
	g, err := core.Solve(AffineAlign("ACGTACGT", "ACGTACGT", s))
	if err != nil {
		t.Fatal(err)
	}
	if got := AffineScore(g, "ACGTACGT", "ACGTACGT"); got != 16 {
		t.Errorf("self alignment = %d, want 16 (8 matches)", got)
	}
}

func TestAffineAlignSingleLongGap(t *testing.T) {
	// Affine gaps make one long gap cheaper than scattered short ones:
	// aligning "AAAA" against "AACCCCAA"... rather, against a copy with an
	// inserted run should cost Open + (k-1)*Extend, not k*Open.
	s := DefaultAffineScores()
	a := "AAAATTTT"
	b := "AAAACCCCCTTTT" // 5-base insertion
	g, err := core.Solve(AffineAlign(a, b, s))
	if err != nil {
		t.Fatal(err)
	}
	got := AffineScore(g, a, b)
	want := int32(8)*s.Match + s.Open + 4*s.Extend // 8 matches + one 5-gap
	if got != want {
		t.Errorf("score = %d, want %d", got, want)
	}
}

func TestAffineAlignEmpty(t *testing.T) {
	s := DefaultAffineScores()
	g, err := core.Solve(AffineAlign("ACG", "", s))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := AffineScore(g, "ACG", ""), s.Open+2*s.Extend; got != want {
		t.Errorf("gap-only = %d, want %d", got, want)
	}
}

func TestAffineAlignMatchesRef(t *testing.T) {
	s := DefaultAffineScores()
	a, b := workload.SimilarStrings(55, 200, workload.DNAAlphabet, 0.2)
	g, err := core.Solve(AffineAlign(a, b, s))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := AffineScore(g, a, b), AffineAlignRef(a, b, s); got != want {
		t.Errorf("framework %d != ref %d", got, want)
	}
}

func TestAffineAlignAllSolversAgree(t *testing.T) {
	s := DefaultAffineScores()
	a, b := workload.SimilarStrings(77, 80, workload.DNAAlphabet, 0.25)
	p := AffineAlign(a, b, s)
	if p.Pattern() != core.AntiDiagonal {
		t.Fatalf("pattern = %s, want Anti-diagonal", p.Pattern())
	}
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.SolveParallel(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	het, err := core.SolveHetero(p, core.Options{TSwitch: 5, TShare: 9})
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := core.SolveTiled(p, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= len(a); i++ {
		for j := 0; j <= len(b); j++ {
			w := want.At(i, j)
			if par.At(i, j) != w || het.Grid.At(i, j) != w || tiled.At(i, j) != w {
				t.Fatalf("solvers disagree at (%d,%d)", i, j)
			}
		}
	}
}

// Property: the affine score with Extend == Open degenerates to the linear
// model, matching Needleman-Wunsch with Gap = Open.
func TestAffineDegeneratesToLinearProperty(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		a := workload.RandomString(seedA, int(seedA%15)+1, workload.DNAAlphabet)
		b := workload.RandomString(seedB, int(seedB%15)+1, workload.DNAAlphabet)
		aff := AffineScores{Match: 2, Mismatch: -1, Open: -2, Extend: -2}
		lin := AlignScores{Match: 2, Mismatch: -1, Gap: -2}
		return AffineAlignRef(a, b, aff) == NeedlemanWunschRef(a, b, lin)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: affine score with cheaper extensions never loses to the linear
// model at the same open cost.
func TestAffineExtendNoWorseProperty(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		a := workload.RandomString(seedA, int(seedA%15)+1, workload.DNAAlphabet)
		b := workload.RandomString(seedB, int(seedB%15)+1, workload.DNAAlphabet)
		aff := AffineScores{Match: 2, Mismatch: -1, Open: -3, Extend: -1}
		lin := AlignScores{Match: 2, Mismatch: -1, Gap: -3}
		return AffineAlignRef(a, b, aff) >= NeedlemanWunschRef(a, b, lin)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
