package problems

import (
	"math"

	"repro/internal/core"
)

// checkerInf is the "infinity" of the checkerboard recurrence; a quarter of
// the int32 range so that adding per-cell costs can never overflow.
const checkerInf = int32(math.MaxInt32 / 4)

// Checkerboard builds the paper's §VI-C case study: the shortest path from
// any cell of row 0 to any cell of the last row, moving diagonally left
// forward, straight forward, or diagonally right forward. With the paper's
// orientation flipped to top-down tables,
//
//	f(i,j) = inf                                        if j out of range
//	f(i,j) = c(i,j)                                     if i = 0
//	f(i,j) = c(i,j) + min(f(i-1,j-1), f(i-1,j), f(i-1,j+1)) otherwise
//
// reads {NW, N, NE}: horizontal pattern case-2, the two-way-transfer case.
// cost must be rectangular and non-empty.
func Checkerboard(cost [][]int32) *core.Problem[int32] {
	rows, cols := len(cost), len(cost[0])
	return &core.Problem[int32]{
		Name: "checkerboard",
		Rows: rows,
		Cols: cols,
		Deps: core.DepNW | core.DepN | core.DepNE,
		F: func(i, j int, nb core.Neighbors[int32]) int32 {
			if i == 0 {
				return cost[0][j]
			}
			return cost[i][j] + min(nb.NW, nb.N, nb.NE)
		},
		// Out-of-range lateral neighbours read as infinity.
		Boundary:     func(i, j int) int32 { return checkerInf },
		BytesPerCell: 4,
		InputBytes:   rows * cols * 4,
	}
}

// CheckerboardBest extracts the cost of the cheapest full path: the minimum
// of the last row.
func CheckerboardBest(g interface {
	At(i, j int) int32
	Rows() int
	Cols() int
}) int32 {
	best := checkerInf
	last := g.Rows() - 1
	for j := 0; j < g.Cols(); j++ {
		if v := g.At(last, j); v < best {
			best = v
		}
	}
	return best
}

// CheckerboardRef computes the full DP table independently, returning the
// last row and the best path cost.
func CheckerboardRef(cost [][]int32) ([]int32, int32) {
	rows, cols := len(cost), len(cost[0])
	prev := make([]int32, cols)
	cur := make([]int32, cols)
	copy(prev, cost[0])
	for i := 1; i < rows; i++ {
		for j := 0; j < cols; j++ {
			best := prev[j]
			if j > 0 && prev[j-1] < best {
				best = prev[j-1]
			}
			if j+1 < cols && prev[j+1] < best {
				best = prev[j+1]
			}
			cur[j] = cost[i][j] + best
		}
		prev, cur = cur, prev
	}
	best := prev[0]
	for _, v := range prev[1:] {
		if v < best {
			best = v
		}
	}
	out := make([]int32, cols)
	copy(out, prev)
	return out, best
}

// SeamCarve builds the accumulated-energy table of content-aware image
// resizing: M(i,j) = e(i,j) + min(M(i-1,j-1), M(i-1,j), M(i-1,j+1)).
// Structurally the checkerboard recurrence on pixel energies; horizontal
// case-2.
func SeamCarve(energy [][]int32) *core.Problem[int32] {
	p := Checkerboard(energy)
	p.Name = "seamcarve"
	return p
}

// SeamCost extracts the total energy of the cheapest vertical seam.
func SeamCost(g interface {
	At(i, j int) int32
	Rows() int
	Cols() int
}) int32 {
	return CheckerboardBest(g)
}
