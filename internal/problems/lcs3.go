package problems

import (
	"repro/internal/core"
)

// LCS3 builds the longest-common-subsequence table of three strings — the
// canonical k = 3 LDDP-Plus instance:
//
//	L(i,j,k) = L(i-1,j-1,k-1) + 1                   if a[i] = b[j] = c[k]
//	L(i,j,k) = max(L(i-1,j,k), L(i,j-1,k), L(i,j,k-1)) otherwise
//
// over an (len(a)+1) x (len(b)+1) x (len(c)+1) box with zero boundaries.
// The contributing set {X, Y, Z, XYZ} draws on the 3-D representative set
// (the predecessor corners of the unit cube).
func LCS3(a, b, c string) *core.Problem3[int32] {
	return &core.Problem3[int32]{
		Name: "lcs3",
		NX:   len(a) + 1,
		NY:   len(b) + 1,
		NZ:   len(c) + 1,
		Deps: core.Dep3X | core.Dep3Y | core.Dep3Z | core.Dep3XYZ,
		F: func(i, j, k int, nb core.Neighbors3[int32]) int32 {
			if i == 0 || j == 0 || k == 0 {
				return 0
			}
			if a[i-1] == b[j-1] && b[j-1] == c[k-1] {
				return nb.XYZ + 1
			}
			return max(nb.X, nb.Y, nb.Z)
		},
		BytesPerCell: 4,
		InputBytes:   len(a) + len(b) + len(c),
	}
}

// LCS3Length extracts the three-way LCS length from a solved box.
func LCS3Length(g interface{ At(i, j, k int) int32 }, a, b, c string) int32 {
	return g.At(len(a), len(b), len(c))
}

// LCS3Ref computes the three-way LCS length with an independent
// rolling-plane implementation.
func LCS3Ref(a, b, c string) int32 {
	ny, nz := len(b)+1, len(c)+1
	prev := make([]int32, ny*nz)
	cur := make([]int32, ny*nz)
	at := func(p []int32, j, k int) int32 { return p[j*nz+k] }
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			for k := 1; k <= len(c); k++ {
				var v int32
				if a[i-1] == b[j-1] && b[j-1] == c[k-1] {
					v = at(prev, j-1, k-1) + 1
				} else {
					v = max(at(prev, j, k), at(cur, j-1, k), at(cur, j, k-1))
				}
				cur[j*nz+k] = v
			}
		}
		prev, cur = cur, prev
		clear(cur)
	}
	return at(prev, len(b), len(c))
}
