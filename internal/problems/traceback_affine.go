package problems

import (
	"repro/internal/table"
)

// Affine-gap (Gotoh) traceback: reconstruct an optimal alignment from the
// solved three-state table. The walk tracks which state (M, X or Y) the
// optimum passes through — the part linear-gap tracebacks don't need — and
// is verified by re-scoring the recovered alignment under the affine model.

// affineState identifies the recurrence state the traceback is in.
type affineState uint8

const (
	stateM affineState = iota // diagonal (match/mismatch)
	stateX                    // gap in b (consumes a)
	stateY                    // gap in a (consumes b)
)

// AffineAlignment reconstructs one optimal global affine-gap alignment
// from a solved Gotoh table.
func AffineAlignment(g *table.Grid[AffineCell], a, b string, s AffineScores) Alignment {
	var outA, outB []byte
	i, j := len(a), len(b)

	// Start in whichever state attains the optimum at the corner.
	cur := g.At(i, j)
	st := stateM
	best := cur.M
	if cur.X > best {
		st, best = stateX, cur.X
	}
	if cur.Y > best {
		st = stateY
	}

	for i > 0 || j > 0 {
		cell := g.At(i, j)
		switch {
		case st == stateM && i > 0 && j > 0:
			outA = append(outA, a[i-1])
			outB = append(outB, b[j-1])
			prev := g.At(i-1, j-1)
			sub := s.sub(a[i-1], b[j-1])
			switch {
			case cell.M == prev.M+sub:
				st = stateM
			case cell.M == prev.X+sub:
				st = stateX
			default:
				st = stateY
			}
			i, j = i-1, j-1
		case st == stateX && i > 0:
			outA = append(outA, a[i-1])
			outB = append(outB, '-')
			prev := g.At(i-1, j)
			if cell.X == prev.M+s.Open {
				st = stateM
			} else {
				st = stateX
			}
			i--
		case st == stateY && j > 0:
			outA = append(outA, '-')
			outB = append(outB, b[j-1])
			prev := g.At(i, j-1)
			if cell.Y == prev.M+s.Open {
				st = stateM
			} else {
				st = stateY
			}
			j--
		case i > 0:
			// Boundary column: only X (gap in b) continues.
			st = stateX
		default:
			st = stateY
		}
	}
	reverseBytes(outA)
	reverseBytes(outB)
	return Alignment{A: string(outA), B: string(outB)}
}

// AffineScoreOf re-scores an alignment under the affine model, charging
// Open for each gap opening and Extend for each further gap position: the
// verification oracle for AffineAlignment.
func AffineScoreOf(al Alignment, s AffineScores) int32 {
	var total int32
	inGapA, inGapB := false, false
	for k := 0; k < len(al.A); k++ {
		x, y := al.A[k], al.B[k]
		switch {
		case x == '-':
			if inGapA {
				total += s.Extend
			} else {
				total += s.Open
			}
			inGapA, inGapB = true, false
		case y == '-':
			if inGapB {
				total += s.Extend
			} else {
				total += s.Open
			}
			inGapB, inGapA = true, false
		default:
			total += s.sub(x, y)
			inGapA, inGapB = false, false
		}
	}
	return total
}

// LocalAlignment reconstructs one optimal local (Smith-Waterman) alignment
// from a solved table: the walk starts at the table maximum and stops at
// the first zero cell. It returns the aligned fragments and their 1-based
// end positions in a and b.
func LocalAlignment(g *table.Grid[int32], a, b string, s AlignScores) (al Alignment, endA, endB int) {
	bi, bj := 0, 0
	for i := 0; i <= len(a); i++ {
		for j := 0; j <= len(b); j++ {
			if g.At(i, j) > g.At(bi, bj) {
				bi, bj = i, j
			}
		}
	}
	var outA, outB []byte
	i, j := bi, bj
	for i > 0 && j > 0 && g.At(i, j) > 0 {
		v := g.At(i, j)
		switch {
		case v == g.At(i-1, j-1)+s.sub(a[i-1], b[j-1]):
			outA = append(outA, a[i-1])
			outB = append(outB, b[j-1])
			i, j = i-1, j-1
		case v == g.At(i-1, j)+s.Gap:
			outA = append(outA, a[i-1])
			outB = append(outB, '-')
			i--
		default:
			outA = append(outA, '-')
			outB = append(outB, b[j-1])
			j--
		}
	}
	reverseBytes(outA)
	reverseBytes(outB)
	return Alignment{A: string(outA), B: string(outB)}, bi, bj
}
